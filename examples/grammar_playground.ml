(* Grammar playground: load a canonical-form grammar (from a file or the
   built-in paper grammar), apply designer rule-toggles, and sample random
   expressions that conform to it.

   The paper's prototype "defined the grammar in a separate text file and
   parsed it by the CAFFEINE system"; this example demonstrates the same
   workflow.

   Usage:
     dune exec examples/grammar_playground.exe                 (built-in grammar)
     dune exec examples/grammar_playground.exe -- my_grammar.txt
     dune exec examples/grammar_playground.exe -- --no-trig --no-lte *)

module Grammar = Caffeine_grammar.Grammar
module Expr = Caffeine_expr.Expr
module Rng = Caffeine_util.Rng
module Opset = Caffeine.Opset
module Gen = Caffeine.Gen

let () =
  let grammar = ref Grammar.caffeine in
  let toggles = ref [] in
  List.iter
    (fun arg ->
      match arg with
      | "--no-trig" -> toggles := [ "SIN"; "COS"; "TAN" ] @ !toggles
      | "--no-lte" -> toggles := "LTE" :: !toggles
      | "--no-pow" -> toggles := "POW" :: !toggles
      | path when Sys.file_exists path ->
          let channel = open_in path in
          let length = in_channel_length channel in
          let text = really_input_string channel length in
          close_in channel;
          (match Grammar.parse text with
          | Ok g -> grammar := g
          | Error msg ->
              Printf.eprintf "cannot parse %s: %s\n" path msg;
              exit 2)
      | other ->
          Printf.eprintf "unknown argument %s\n" other;
          exit 2)
    (List.tl (Array.to_list Sys.argv));

  (* Apply the designer's rule-toggles. *)
  let grammar =
    List.fold_left (fun g terminal -> Grammar.remove_terminal g terminal) !grammar !toggles
  in
  print_endline "grammar in use:";
  print_endline (Grammar.to_text grammar);
  (match Grammar.validate grammar with
  | Ok () -> print_endline "validation: ok"
  | Error msgs ->
      print_endline "validation problems:";
      List.iter (fun m -> print_endline ("  " ^ m)) msgs;
      exit 1);

  let opset = Opset.of_grammar grammar in
  Printf.printf "\nderived operator set: %d unary, %d binary, lte=%b, vc=%b\n\n"
    (Array.length opset.Opset.unops)
    (Array.length opset.Opset.binops)
    opset.Opset.allow_lte opset.Opset.allow_vc;

  let rng = Rng.create ~seed:1234 () in
  let var_names = [| "id1"; "id2"; "vsg1"; "vgs2"; "vds2" |] in
  print_endline "random canonical-form expressions from this grammar:";
  for i = 1 to 12 do
    let basis = Gen.random_basis rng opset ~dims:5 ~depth:(2 + (i mod 4)) ~max_vc_vars:2 in
    Printf.printf "%2d. %s\n" i (Expr.basis_to_string ~var_names basis);
    match Expr.check ~dims:5 basis with
    | Ok () -> ()
    | Error msg -> Printf.printf "    INVALID: %s\n" msg
  done

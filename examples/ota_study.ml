(* The paper's flow end-to-end on the simulated OTA (Figure 1):

     SPICE-style simulation data -> CAFFEINE -> set of symbolic models
     trading off error and complexity -> SAG post-processing -> models
     filtered on testing data.

   Usage:
     dune exec examples/ota_study.exe                 (models PM)
     dune exec examples/ota_study.exe -- fu --gens 300 --pop 150
*)

module Ota = Caffeine_ota.Ota
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Dataset = Caffeine_io.Dataset

let parse_arguments () =
  let performance = ref Ota.Pm in
  let pop_size = ref 120 in
  let generations = ref 150 in
  let rec scan = function
    | [] -> ()
    | "--pop" :: v :: rest ->
        pop_size := int_of_string v;
        scan rest
    | "--gens" :: v :: rest ->
        generations := int_of_string v;
        scan rest
    | name :: rest -> (
        match Ota.performance_of_name name with
        | Some p ->
            performance := p;
            scan rest
        | None ->
            Printf.eprintf "unknown performance %S (use ALF, fu, PM, voffset, SRp or SRn)\n" name;
            exit 2)
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!performance, !pop_size, !generations)

let () =
  let performance, pop_size, generations = parse_arguments () in
  let name = Ota.performance_name performance in
  Printf.printf "== CAFFEINE study of the OTA performance %s ==\n\n" name;

  (* 1. "SPICE" simulation data: full orthogonal-hypercube DOE around the
     nominal operating point, dx = 0.10 for training, 0.03 for testing. *)
  Printf.printf "sampling design points (243-run orthogonal array, 13 variables)...\n%!";
  let train = Ota.doe_dataset ~dx:0.10 in
  let test = Ota.doe_dataset ~dx:0.03 in
  let y_train = Array.map (Ota.modeling_target performance) (Ota.targets train performance) in
  let y_test = Array.map (Ota.modeling_target performance) (Ota.targets test performance) in
  Printf.printf "  %d training and %d testing samples\n\n" (Array.length y_train)
    (Array.length y_test);

  (* 2. Evolve the model set. *)
  let train_data = Dataset.of_rows ~var_names:Ota.var_names train.Ota.inputs in
  let test_data = Dataset.of_rows ~var_names:Ota.var_names test.Ota.inputs in
  let config = Config.scaled ~pop_size ~generations Config.paper in
  Printf.printf "evolving (population %d, %d generations)...\n%!" pop_size generations;
  let outcome =
    Search.run ~seed:2005
      ~on_generation:(fun (g : Caffeine_obs.Trace.generation) ->
        if g.Caffeine_obs.Trace.gen mod 25 = 0 then
          Printf.printf "  generation %4d: best train error %.2f%%, front size %d\n%!"
            g.Caffeine_obs.Trace.gen
            (100. *. g.Caffeine_obs.Trace.best_nmse)
            g.Caffeine_obs.Trace.front_size)
      config ~data:train_data ~targets:y_train
  in

  (* 3. Simplification after generation + testing-data filtering. *)
  let wb = config.Config.wb and wvc = config.Config.wvc in
  let front = Sag.process_front ~wb ~wvc outcome.Search.front ~data:train_data ~targets:y_train in
  let scored = Sag.test_tradeoff front ~data:test_data ~targets:y_test in

  Printf.printf "\nmodels on the (test error, complexity) tradeoff:\n";
  Printf.printf "%-10s  %-10s  expression\n" "train err" "test err";
  List.iter
    (fun (s : Sag.scored) ->
      let rendered = Model.to_string ~var_names:Ota.var_names s.Sag.model in
      let rendered =
        match performance with
        | Ota.Fu -> "10^( " ^ rendered ^ " )"
        | Ota.Alf | Ota.Pm | Ota.Voffset | Ota.Srp | Ota.Srn -> rendered
      in
      Printf.printf "%9.2f%%  %9.2f%%  %s\n"
        (100. *. s.Sag.model.Model.train_error)
        (100. *. s.Sag.test_error) rendered)
    scored;

  (* 4. The paper's Table-I query: the simplest model below 10% on both. *)
  match Sag.best_within scored ~train_cap:0.10 ~test_cap:0.10 with
  | None -> Printf.printf "\nno model met the 10%%/10%% caps\n"
  | Some s ->
      Printf.printf "\nsimplest model within 10%% train and test error:\n  %s = %s\n" name
        (Model.to_string ~var_names:Ota.var_names s.Sag.model)

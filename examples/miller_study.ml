(* Template-free modeling of a different topology: a Miller-compensated
   two-stage op-amp.  The paper's claim is that the approach handles "any
   nonlinear circuits and circuit characteristics"; here the target is the
   phase margin of a pole-split amplifier, whose dependence on the
   compensation capacitor and stage currents is decidedly non-posynomial.

   Usage: dune exec examples/miller_study.exe -- [ALF|fu|PM|power] *)

module Miller = Caffeine_ota.Miller
module Rng = Caffeine_util.Rng
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Insight = Caffeine.Insight
module Dataset = Caffeine_io.Dataset

let () =
  let performance =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> Miller.Pm
    | name :: _ -> (
        match
          List.find_opt (fun p -> Miller.performance_name p = name) Miller.all_performances
        with
        | Some p -> p
        | None ->
            Printf.eprintf "unknown performance %S (ALF, fu, PM, power)\n" name;
            exit 2)
  in
  let name = Miller.performance_name performance in
  Printf.printf "== CAFFEINE on the Miller two-stage op-amp: %s ==\n\n%!" name;
  let rng = Rng.create ~seed:77 () in
  let inputs, outputs = Miller.dataset rng ~samples:200 ~spread:0.15 in
  let test_inputs, test_outputs = Miller.dataset rng ~samples:200 ~spread:0.05 in
  let column p rows =
    let rec index i = function
      | [] -> assert false
      | q :: rest -> if q = p then i else index (i + 1) rest
    in
    let j = index 0 Miller.all_performances in
    Array.map (fun row -> row.(j)) rows
  in
  let transform = match performance with Miller.Fu -> log10 | Miller.Alf | Miller.Pm | Miller.Power -> Fun.id in
  let targets = Array.map transform (column performance outputs) in
  let test_targets = Array.map transform (column performance test_outputs) in
  Printf.printf "%d training / %d testing samples over %d variables\n%!"
    (Array.length targets) (Array.length test_targets) Miller.dims;

  let config = Config.scaled ~pop_size:100 ~generations:120 Config.paper in
  let train_data = Dataset.of_rows ~var_names:Miller.var_names inputs in
  let test_data = Dataset.of_rows ~var_names:Miller.var_names test_inputs in
  let outcome = Search.run ~seed:9 config ~data:train_data ~targets in
  let front =
    Sag.process_front ~wb:config.Config.wb ~wvc:config.Config.wvc outcome.Search.front
      ~data:train_data ~targets
  in
  let scored = Sag.test_tradeoff front ~data:test_data ~targets:test_targets in
  Printf.printf "\n%-10s %-10s expression\n" "train err" "test err";
  List.iter
    (fun (s : Sag.scored) ->
      Printf.printf "%9.2f%% %9.2f%% %s\n"
        (100. *. s.Sag.model.Model.train_error)
        (100. *. s.Sag.test_error)
        (Model.to_string ~var_names:Miller.var_names s.Sag.model))
    scored;

  (* Which design variables drive this performance? *)
  match List.rev scored with
  | [] -> ()
  | best :: _ ->
      Printf.printf "\ninsight on the most accurate model:\n%s"
        (Insight.report ~var_names:Miller.var_names ~at:Miller.nominal best.Sag.model)

(* Quickstart: rediscover a known symbolic law from samples.

   We sample y = 3 - 0.5 c^2 + 2 a/b on 120 random points and let CAFFEINE
   evolve template-free symbolic models.  The printed front trades off
   training error against expression complexity; the exact law appears at
   zero error. *)

module Rng = Caffeine_util.Rng
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Dataset = Caffeine_io.Dataset

let () =
  let rng = Rng.create ~seed:42 () in
  let n = 120 in
  let inputs =
    Array.init n (fun _ ->
        [| Rng.range rng 0.5 2.0; Rng.range rng 0.5 2.0; Rng.range rng 0.5 2.0 |])
  in
  let targets =
    Array.map (fun x -> 3.0 +. (2.0 *. x.(0) /. x.(1)) -. (0.5 *. x.(2) *. x.(2))) inputs
  in
  print_endline "quickstart: evolving symbolic models of y = 3 - 0.5*c^2 + 2*a/b";
  let var_names = [| "a"; "b"; "c" |] in
  let data = Dataset.of_rows ~var_names inputs in
  let outcome = Search.run ~seed:7 Config.default ~data ~targets in
  Printf.printf "%-10s  %-8s  expression\n" "train err" "complexity";
  List.iter
    (fun (m : Model.t) ->
      Printf.printf "%9.2f%%  %8.1f  %s\n"
        (100. *. m.Model.train_error)
        m.Model.complexity
        (Model.to_string ~var_names m))
    outcome.Search.front

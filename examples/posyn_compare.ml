(* CAFFEINE vs. the posynomial baseline on one OTA performance — the
   experiment behind the paper's Figure 4.

   The posynomial template (Daems/Gielen/Sansen) nails the training data
   with dozens of terms but generalizes poorly; CAFFEINE's compact
   canonical-form models predict unseen (interpolation) data better than
   they fit the training extremes.

   Usage: dune exec examples/posyn_compare.exe -- [ALF|fu|PM|voffset|SRp|SRn] *)

module Ota = Caffeine_ota.Ota
module Posyn = Caffeine_posyn.Posyn
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Dataset = Caffeine_io.Dataset

let () =
  let performance =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> Ota.Srn
    | name :: _ -> (
        match Ota.performance_of_name name with
        | Some p -> p
        | None ->
            Printf.eprintf "unknown performance %S\n" name;
            exit 2)
  in
  let name = Ota.performance_name performance in
  Printf.printf "== posynomial vs CAFFEINE on %s ==\n\n%!" name;
  let train = Ota.doe_dataset ~dx:0.10 in
  let test = Ota.doe_dataset ~dx:0.03 in
  let y_train = Array.map (Ota.modeling_target performance) (Ota.targets train performance) in
  let y_test = Array.map (Ota.modeling_target performance) (Ota.targets test performance) in

  (* Baseline: posynomial template fit. *)
  let posyn = Posyn.fit ~inputs:train.Ota.inputs ~targets:y_train () in
  let posyn_test = Posyn.error_on posyn ~inputs:test.Ota.inputs ~targets:y_test in
  Printf.printf "posynomial: %d terms\n  train error %.2f%%   test error %.2f%%\n\n"
    (Posyn.num_terms posyn)
    (100. *. posyn.Posyn.train_error)
    (100. *. posyn_test);
  Printf.printf "posynomial model (truncated to 240 chars):\n  %s...\n\n"
    (let s = Posyn.to_string ~var_names:Ota.var_names posyn in
     String.sub s 0 (min 240 (String.length s)));

  (* CAFFEINE, then pick the front model whose training error matches. *)
  Printf.printf "evolving CAFFEINE models...\n%!";
  let train_data = Dataset.of_rows ~var_names:Ota.var_names train.Ota.inputs in
  let test_data = Dataset.of_rows ~var_names:Ota.var_names test.Ota.inputs in
  let config = Config.scaled ~pop_size:120 ~generations:150 Config.paper in
  let outcome = Search.run ~seed:404 config ~data:train_data ~targets:y_train in
  let front =
    Sag.process_front ~wb:config.Config.wb ~wvc:config.Config.wvc outcome.Search.front
      ~data:train_data ~targets:y_train
  in
  let scored =
    List.map
      (fun (m : Model.t) ->
        { Sag.model = m; test_error = Model.error_on m ~data:test_data ~targets:y_test })
      front
  in
  let usable = List.filter (fun (s : Sag.scored) -> Float.is_finite s.Sag.test_error) scored in
  match Sag.at_train_error usable ~train_cap:posyn.Posyn.train_error with
  | None -> print_endline "no CAFFEINE model available"
  | Some s ->
      Printf.printf "CAFFEINE (matched at posynomial's train error): %d bases\n"
        (Model.num_bases s.Sag.model);
      Printf.printf "  train error %.2f%%   test error %.2f%%\n\n"
        (100. *. s.Sag.model.Model.train_error)
        (100. *. s.Sag.test_error);
      Printf.printf "CAFFEINE model:\n  %s\n\n" (Model.to_string ~var_names:Ota.var_names s.Sag.model);
      if s.Sag.test_error > 0. then
        Printf.printf "test-error ratio (posynomial / CAFFEINE): %.1fx\n"
          (posyn_test /. s.Sag.test_error)

(* Closing the loop on the operating-point formulation: the design variables
   assert drain currents and drive voltages, device sizes are derived from
   the square law, and here the *full transistor-level netlist* of the
   symmetrical OTA is solved with the nonlinear Newton DC engine.  The
   solved currents should come back close to the asserted ones (differences
   stem from channel-length modulation at the actual node voltages). *)

module Ota = Caffeine_ota.Ota
module Testbench = Caffeine_ota.Testbench

let region_name = function `Cutoff -> "cutoff" | `Triode -> "triode" | `Saturation -> "sat"

let () =
  print_endline "== transistor-level DC validation of the OTA bias point ==";
  match Testbench.validate Ota.nominal with
  | Error msg ->
      print_endline ("validation failed: " ^ msg);
      exit 1
  | Ok report ->
      Printf.printf "Newton converged in %d iterations; vout = %.3f V, vtail = %.3f V\n\n"
        report.Testbench.iterations report.Testbench.output_voltage
        report.Testbench.tail_voltage;
      Printf.printf "%-5s %14s %14s %9s\n" "dev" "designed (uA)" "solved (uA)" "region";
      List.iter
        (fun d ->
          Printf.printf "%-5s %14.2f %14.2f %9s\n" d.Testbench.name
            (1e6 *. d.Testbench.designed_current)
            (1e6 *. d.Testbench.solved_current)
            (region_name d.Testbench.region))
        report.Testbench.devices;
      Printf.printf "\nworst relative current mismatch: %.1f%%\n"
        (100. *. Testbench.max_current_mismatch report)

(* Large-signal check: measure the slew rate by transient simulation of the
   same netlist and compare against the analytic current-limit estimate
   used for dataset generation. *)
let () =
  print_endline "\n== transient slew-rate measurement ==";
  match Testbench.transient_slew Ota.nominal with
  | Error msg -> print_endline ("transient failed: " ^ msg)
  | Ok (rising, falling) -> (
      Printf.printf "measured:  SRp = %.3g V/us   SRn = %.3g V/us\n" (rising *. 1e-6)
        (falling *. 1e-6);
      match Ota.evaluate Ota.nominal with
      | Error _ -> ()
      | Ok values ->
          Printf.printf "analytic:  SRp = %.3g V/us   SRn = %.3g V/us\n"
            (values.(4) *. 1e-6) (values.(5) *. 1e-6))

demo: resistively loaded common-source amplifier
VDD vdd 0 DC 5
VIN in 0 DC 1.1 AC 1
M1 out in 0 0 NMOS W=20u L=2u
R1 vdd out 50k
C1 out 0 1p
.end

demo: 1:2 NMOS current mirror
IB 0 d 20u
M1 d d 0 0 NMOS W=20u L=1u
M2 o d 0 0 NMOS W=40u L=1u
VO o 0 DC 2
.end

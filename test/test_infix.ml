(* Tests for the infix parser, canonicalization, and model save/load
   round-trips. *)

module Expr = Caffeine_expr.Expr
module Infix = Caffeine_expr.Infix
module Rng = Caffeine_util.Rng
module Model = Caffeine.Model
module Model_io = Caffeine.Model_io

let check_close ?(tol = 1e-9) msg expected actual =
  if
    (Float.is_nan expected && Float.is_nan actual) = false
    && Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let parse_ok source =
  match Infix.parse source with
  | Ok t -> t
  | Error msg -> Alcotest.failf "parse %S failed: %s" source msg

let eval_ok source env =
  match Infix.eval (parse_ok source) ~env with
  | Ok v -> v
  | Error msg -> Alcotest.failf "eval %S failed: %s" source msg

let env_of bindings name = List.assoc_opt name bindings

(* --- parsing and evaluation --- *)

let test_parse_number_forms () =
  check_close "integer" 42. (eval_ok "42" (env_of []));
  check_close "decimal" 0.5 (eval_ok "0.5" (env_of []));
  check_close "leading dot" 0.25 (eval_ok ".25" (env_of []));
  check_close "exponent" 2.06e-3 (eval_ok "2.06e-03" (env_of []));
  check_close "positive exponent" 1e10 (eval_ok "1e+10" (env_of []))

let test_parse_precedence () =
  check_close "mul before add" 7. (eval_ok "1 + 2 * 3" (env_of []));
  check_close "parens" 9. (eval_ok "(1 + 2) * 3" (env_of []));
  check_close "division chains left" 2. (eval_ok "8 / 2 / 2" (env_of []));
  check_close "unary minus" (-6.) (eval_ok "-2 * 3" (env_of []));
  check_close "power binds tight" 13. (eval_ok "1 + 3 * 2^2" (env_of []));
  check_close "subtraction chains left" 1. (eval_ok "5 - 3 - 1" (env_of []))

let test_parse_variables_and_calls () =
  let env = env_of [ ("id1", 2.); ("vsg1", 4.) ] in
  check_close "variable" 2. (eval_ok "id1" env);
  check_close "ratio" 0.5 (eval_ok "id1 / vsg1" env);
  check_close "ln" (log 4.) (eval_ok "ln(vsg1)" env);
  check_close "sqrt" 2. (eval_ok "sqrt(vsg1)" env);
  check_close "pow" 16. (eval_ok "pow(vsg1, id1)" env);
  check_close "max" 4. (eval_ok "max(id1, vsg1)" env);
  check_close "lte then" 1. (eval_ok "lte(id1, 3, 1, 9)" env);
  check_close "lte else" 9. (eval_ok "lte(vsg1, 3, 1, 9)" env)

let test_parse_errors () =
  let expect_error source =
    match Infix.parse source with
    | Ok _ -> Alcotest.failf "expected parse error for %S" source
    | Error _ -> ()
  in
  expect_error "";
  expect_error "1 +";
  expect_error "(1 + 2";
  expect_error "f(1,)";
  expect_error "1 2";
  expect_error "@"

let test_eval_unknowns () =
  (match Infix.eval (parse_ok "zzz") ~env:(env_of []) with
  | Ok _ -> Alcotest.fail "expected unknown-variable error"
  | Error _ -> ());
  match Infix.eval (parse_ok "mystery(1)") ~env:(env_of []) with
  | Ok _ -> Alcotest.fail "expected unknown-function error"
  | Error _ -> ()

(* --- canonicalization --- *)

let names = [| "a"; "b"; "c" |]

let canonical_ok source =
  match Infix.parse_wsum ~var_names:names source with
  | Ok ws -> ws
  | Error msg -> Alcotest.failf "canonicalize %S failed: %s" source msg

let test_canonical_linear_terms () =
  let ws = canonical_ok "90.5 + 186.6 * a - 1.14 / b" in
  check_close "intercept" 90.5 ws.Expr.bias;
  Alcotest.(check int) "two terms" 2 (List.length ws.Expr.terms);
  match ws.Expr.terms with
  | [ (w1, b1); (w2, b2) ] ->
      check_close "w1" 186.6 w1;
      Alcotest.(check bool) "b1 is a" true (b1.Expr.vc = Some [| 1; 0; 0 |]);
      check_close "w2" (-1.14) w2;
      Alcotest.(check bool) "b2 is 1/b" true (b2.Expr.vc = Some [| 0; -1; 0 |])
  | _ -> Alcotest.fail "unexpected structure"

let test_canonical_constant_folding () =
  let ws = canonical_ok "2 * 3 + 4 - 1" in
  check_close "all constant" 9. ws.Expr.bias;
  Alcotest.(check int) "no terms" 0 (List.length ws.Expr.terms)

let test_canonical_powers () =
  let ws = canonical_ok "a^2 / b - c^-1 * a" in
  match ws.Expr.terms with
  | [ (_, b1); (w2, b2) ] ->
      Alcotest.(check bool) "a^2/b" true (b1.Expr.vc = Some [| 2; -1; 0 |]);
      check_close "negative sign" (-1.) w2;
      Alcotest.(check bool) "a/c" true (b2.Expr.vc = Some [| 1; 0; -1 |])
  | _ -> Alcotest.fail "unexpected structure"

let test_canonical_rejects_sum_in_product () =
  match Infix.parse_wsum ~var_names:names "a * (1 + b)" with
  | Ok _ -> Alcotest.fail "expected non-canonical error"
  | Error _ -> ()

let test_canonical_function_factor () =
  let ws = canonical_ok "3 * ln(2 + a) / b" in
  match ws.Expr.terms with
  | [ (w, basis) ] ->
      check_close "weight" 3. w;
      Alcotest.(check bool) "denominator b" true (basis.Expr.vc = Some [| 0; -1; 0 |]);
      (match basis.Expr.factors with
      | [ Expr.Unary (Caffeine_expr.Op.Log_e, inner) ] ->
          check_close "inner bias" 2. inner.Expr.bias
      | _ -> Alcotest.fail "expected a ln factor")
  | _ -> Alcotest.fail "unexpected structure"

let test_canonical_inverted_function () =
  (* 1 / ln(...) must become DIVIDE(1, {ln factor}). *)
  let ws = canonical_ok "5 / ln(2 + a)" in
  match ws.Expr.terms with
  | [ (w, basis) ] -> (
      check_close "weight" 5. w;
      match basis.Expr.factors with
      | [ Expr.Binary (Caffeine_expr.Op.Div, Expr.Const 1., Expr.Sum _) ] -> ()
      | _ -> Alcotest.fail "expected an inverted factor")
  | _ -> Alcotest.fail "unexpected structure"

(* --- round-trips: print -> parse -> same values --- *)

let eval_roundtrip_point ws x =
  Expr.eval_wsum ws x

let test_roundtrip_printed_models () =
  let rng = Rng.create ~seed:31 () in
  let opset = Caffeine.Opset.default in
  let points =
    Array.init 10 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.)) in
  let trials = ref 0 in
  let attempts = ref 0 in
  while !trials < 60 && !attempts < 400 do
    incr attempts;
    let basis = Caffeine.Gen.random_basis rng opset ~dims:3 ~depth:4 ~max_vc_vars:2 in
    let weight = Rng.range rng (-5.) 5. in
    let ws = { Expr.bias = Rng.range rng (-3.) 3.; terms = [ (weight, basis) ] } in
    let printed = Expr.wsum_to_string ~var_names:names ws in
    match Infix.parse_wsum ~var_names:names printed with
    | Error msg -> Alcotest.failf "round-trip parse failed on %S: %s" printed msg
    | Ok reparsed ->
        let comparable = ref true in
        Array.iter
          (fun x ->
            let original = eval_roundtrip_point ws x in
            let recovered = eval_roundtrip_point reparsed x in
            if Float.is_finite original && Float.is_finite recovered then begin
              (* Printing truncates weights to ~4 significant digits, so
                 values match only loosely; structural fidelity is what we
                 check (same sign and magnitude ballpark). *)
              let scale = Float.max 1. (Float.abs original) in
              if Float.abs (original -. recovered) > 0.05 *. scale then comparable := false
            end)
          points;
        if !comparable then incr trials
        else () (* loose-precision mismatch: tolerated, not counted *)
  done;
  Alcotest.(check bool) "enough successful round-trips" true (!trials >= 40)

let test_model_io_roundtrip () =
  let b1 = Expr.{ vc = Some [| 1; -1; 0 |]; factors = [] } in
  let b2 =
    Expr.
      {
        vc = None;
        factors = [ Unary (Caffeine_expr.Op.Log_10, { bias = 2.5; terms = [ (1.25, b1) ] }) ];
      }
  in
  let model =
    {
      Model.bases = [| b1; b2 |];
      intercept = 4.25;
      weights = [| 2.5; -0.75 |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  let path = Filename.temp_file "caffeine_models" ".txt" in
  Model_io.save ~path ~var_names:names [ model ];
  (match Model_io.load ~path ~wb:10. ~wvc:0.25 with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok (loaded_names, [ loaded ]) ->
      Alcotest.(check bool) "var names restored" true (loaded_names = names);
      let x = [| 1.4; 0.8; 1.1 |] in
      check_close ~tol:1e-3 "same prediction" (Model.predict_point model x)
        (Model.predict_point loaded x)
  | Ok (_, models) -> Alcotest.failf "expected 1 model, got %d" (List.length models));
  Sys.remove path

let test_model_io_parse_error_reported () =
  let path = Filename.temp_file "caffeine_models" ".txt" in
  let channel = open_out path in
  output_string channel "vars: a b\n1 + +\n";
  close_out channel;
  (match Model_io.load ~path ~wb:10. ~wvc:0.25 with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
      (* The error must name the file and the offending line, [file:line:]. *)
      let prefix = path ^ ":2:" in
      Alcotest.(check bool) "file and line named" true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix));
  Sys.remove path

let test_model_io_train_error_roundtrip () =
  (* Stored errors survive save/load exactly, including the three
     non-finite values a Pareto front can legitimately carry. *)
  let basis = Expr.{ vc = Some [| 1; 0; 0 |]; factors = [] } in
  let model train_error =
    {
      Model.bases = [| basis |];
      intercept = 1.5;
      weights = [| 2.25 |];
      train_error;
      complexity = 0.;
    }
  in
  let stored = [ 0.03125; Float.nan; Float.infinity; Float.neg_infinity; 1e-17 ] in
  let path = Filename.temp_file "caffeine_models" ".txt" in
  Model_io.save ~path ~var_names:names (List.map model stored);
  (match Model_io.load ~path ~wb:10. ~wvc:0.25 with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok (_, loaded) ->
      Alcotest.(check int) "all models loaded" (List.length stored) (List.length loaded);
      List.iter2
        (fun expected (m : Model.t) ->
          (* NaN has many bit patterns and [float_of_string "nan"] is free
             to pick any of them; finite and infinite values must be exact. *)
          Alcotest.(check bool)
            (Printf.sprintf "train_error %h round-trips" expected)
            true
            (if Float.is_nan expected then Float.is_nan m.Model.train_error
             else Int64.bits_of_float expected = Int64.bits_of_float m.Model.train_error))
        stored loaded);
  Sys.remove path

let test_model_io_no_directive_loads_nan () =
  (* Files written before the [#:] directives (or by hand) still load, with
     the error unknown. *)
  let path = Filename.temp_file "caffeine_models" ".txt" in
  let channel = open_out path in
  output_string channel "# comment\nvars: a b c\n1.5 + 2 * a\n";
  close_out channel;
  (match Model_io.load ~path ~wb:10. ~wvc:0.25 with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok (_, [ m ]) ->
      Alcotest.(check bool) "train_error is nan" true (Float.is_nan m.Model.train_error)
  | Ok (_, models) -> Alcotest.failf "expected 1 model, got %d" (List.length models));
  Sys.remove path

let test_model_io_bad_directive_reported () =
  let path = Filename.temp_file "caffeine_models" ".txt" in
  let channel = open_out path in
  output_string channel "vars: a b c\n#: train_error=not_a_number\n1 + 2 * a\n";
  close_out channel;
  (match Model_io.load ~path ~wb:10. ~wvc:0.25 with
  | Ok _ -> Alcotest.fail "expected a directive error"
  | Error msg ->
      let prefix = path ^ ":2:" in
      Alcotest.(check bool) "directive line named" true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "parse: number forms" `Quick test_parse_number_forms;
    Alcotest.test_case "parse: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse: variables and calls" `Quick test_parse_variables_and_calls;
    Alcotest.test_case "parse: errors" `Quick test_parse_errors;
    Alcotest.test_case "eval: unknowns" `Quick test_eval_unknowns;
    Alcotest.test_case "canonical: linear terms" `Quick test_canonical_linear_terms;
    Alcotest.test_case "canonical: constants" `Quick test_canonical_constant_folding;
    Alcotest.test_case "canonical: powers" `Quick test_canonical_powers;
    Alcotest.test_case "canonical: sum in product" `Quick test_canonical_rejects_sum_in_product;
    Alcotest.test_case "canonical: function factor" `Quick test_canonical_function_factor;
    Alcotest.test_case "canonical: inverted function" `Quick test_canonical_inverted_function;
    Alcotest.test_case "round-trip: printed models" `Quick test_roundtrip_printed_models;
    Alcotest.test_case "model io: save/load" `Quick test_model_io_roundtrip;
    Alcotest.test_case "model io: parse error" `Quick test_model_io_parse_error_reported;
    Alcotest.test_case "model io: train_error round-trip" `Quick
      test_model_io_train_error_roundtrip;
    Alcotest.test_case "model io: no directive -> nan" `Quick test_model_io_no_directive_loads_nan;
    Alcotest.test_case "model io: bad directive" `Quick test_model_io_bad_directive_reported;
  ]

(* Tests for CSV dataset IO. *)

module Csv = Caffeine_io.Csv

let sample_table =
  {
    Csv.header = [| "x"; "y"; "z" |];
    rows = [| [| 1.; 2.; 3. |]; [| 4.5; -6.; 7.25e-3 |] |];
  }

let test_write_read_roundtrip () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  Csv.write ~path sample_table;
  (match Csv.read ~path with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok table ->
      Alcotest.(check bool) "header" true (table.Csv.header = sample_table.Csv.header);
      Alcotest.(check int) "rows" 2 (Array.length table.Csv.rows);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v -> Alcotest.(check (float 1e-15)) "cell" sample_table.Csv.rows.(i).(j) v)
            row)
        table.Csv.rows);
  Sys.remove path

let test_column_extraction () =
  let y = Csv.column sample_table "y" in
  Alcotest.(check (float 0.)) "y0" 2. y.(0);
  Alcotest.(check (float 0.)) "y1" (-6.) y.(1);
  Alcotest.(check bool) "missing column raises" true
    (match Csv.column sample_table "missing" with
    | _ -> false
    | exception Not_found -> true)

let test_columns_except () =
  let names, rows = Csv.columns_except sample_table [ "y" ] in
  Alcotest.(check bool) "names" true (names = [| "x"; "z" |]);
  Alcotest.(check (float 0.)) "kept cells" 3. rows.(0).(1)

let test_read_errors () =
  let write_text text =
    let path = Filename.temp_file "caffeine_csv" ".csv" in
    let channel = open_out path in
    output_string channel text;
    close_out channel;
    path
  in
  let expect_error text =
    let path = write_text text in
    (match Csv.read ~path with
    | Ok _ -> Alcotest.failf "expected error for %S" text
    | Error _ -> ());
    Sys.remove path
  in
  expect_error "";
  expect_error "a,b\n1,2,3\n";
  expect_error "a,b\n1,zzz\n"

let test_read_skips_blank_lines () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  let channel = open_out path in
  output_string channel "a,b\n\n1,2\n\n3,4\n";
  close_out channel;
  (match Csv.read ~path with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok table -> Alcotest.(check int) "two rows" 2 (Array.length table.Csv.rows));
  Sys.remove path

let test_write_rejects_ragged () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  Alcotest.(check bool) "ragged rejected" true
    (match Csv.write ~path { Csv.header = [| "a"; "b" |]; rows = [| [| 1. |] |] } with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "write/read round-trip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "column extraction" `Quick test_column_extraction;
    Alcotest.test_case "columns except" `Quick test_columns_except;
    Alcotest.test_case "read errors" `Quick test_read_errors;
    Alcotest.test_case "blank lines skipped" `Quick test_read_skips_blank_lines;
    Alcotest.test_case "ragged write rejected" `Quick test_write_rejects_ragged;
  ]

(* Tests for CSV dataset IO and the column-major Dataset. *)

module Csv = Caffeine_io.Csv
module Dataset = Caffeine_io.Dataset
module Expr = Caffeine_expr.Expr
module Compiled = Caffeine_expr.Compiled

let sample_table =
  {
    Csv.header = [| "x"; "y"; "z" |];
    rows = [| [| 1.; 2.; 3. |]; [| 4.5; -6.; 7.25e-3 |] |];
  }

let test_write_read_roundtrip () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  Csv.write ~path sample_table;
  (match Csv.read ~path with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok table ->
      Alcotest.(check bool) "header" true (table.Csv.header = sample_table.Csv.header);
      Alcotest.(check int) "rows" 2 (Array.length table.Csv.rows);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v -> Alcotest.(check (float 1e-15)) "cell" sample_table.Csv.rows.(i).(j) v)
            row)
        table.Csv.rows);
  Sys.remove path

let test_column_extraction () =
  let y = Csv.column sample_table "y" in
  Alcotest.(check (float 0.)) "y0" 2. y.(0);
  Alcotest.(check (float 0.)) "y1" (-6.) y.(1);
  Alcotest.(check bool) "missing column raises" true
    (match Csv.column sample_table "missing" with
    | _ -> false
    | exception Not_found -> true)

let test_columns_except () =
  let names, rows = Csv.columns_except sample_table [ "y" ] in
  Alcotest.(check bool) "names" true (names = [| "x"; "z" |]);
  Alcotest.(check (float 0.)) "kept cells" 3. rows.(0).(1)

let test_read_errors () =
  let write_text text =
    let path = Filename.temp_file "caffeine_csv" ".csv" in
    let channel = open_out path in
    output_string channel text;
    close_out channel;
    path
  in
  let expect_error text =
    let path = write_text text in
    (match Csv.read ~path with
    | Ok _ -> Alcotest.failf "expected error for %S" text
    | Error _ -> ());
    Sys.remove path
  in
  expect_error "";
  expect_error "a,b\n1,2,3\n";
  expect_error "a,b\n1,zzz\n"

let write_text text =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  let channel = open_out_bin path in
  output_string channel text;
  close_out channel;
  path

let expect_error_containing text fragment =
  let path = write_text text in
  (match Csv.read ~path with
  | Ok _ -> Alcotest.failf "expected an error for %S" text
  | Error msg ->
      let len = String.length fragment in
      let rec occurs i =
        i + len <= String.length msg && (String.sub msg i len = fragment || occurs (i + 1))
      in
      if not (occurs 0) then Alcotest.failf "error %S does not mention %S" msg fragment);
  Sys.remove path

let test_read_error_line_numbers () =
  (* Blank lines are skipped but must not shift reported positions: the bad
     cell below sits on line 5 of the file, the ragged row on line 4. *)
  expect_error_containing "a,b\n\n1,2\n\nx,4\n" "line 5";
  expect_error_containing "a,b\n\n\n1,2,3\n" "line 4"

let test_read_crlf () =
  let path = write_text "a,b\r\n1,2\r\n\r\n3,4\r\n" in
  (match Csv.read ~path with
  | Error msg -> Alcotest.failf "CRLF read failed: %s" msg
  | Ok table ->
      Alcotest.(check bool) "header" true (table.Csv.header = [| "a"; "b" |]);
      Alcotest.(check int) "rows" 2 (Array.length table.Csv.rows);
      Alcotest.(check (float 0.)) "cell" 4. table.Csv.rows.(1).(1));
  Sys.remove path;
  (* A bad cell in a CRLF file still reports its original line. *)
  expect_error_containing "a,b\r\n\r\nx,2\r\n" "line 3"

let test_read_header_only () =
  expect_error_containing "a,b\n" "only a header";
  expect_error_containing "a,b\n\n\n" "only a header"

let test_duplicate_header_rejected () =
  (* A duplicate name would silently bind --target / exclusions to the
     first occurrence; the error must name the column and both positions. *)
  expect_error_containing "a,b,a\n1,2,3\n" "duplicate column name \"a\"";
  expect_error_containing "a,b,a\n1,2,3\n" "columns 1 and 3";
  expect_error_containing "x,x\n1,2\n" "columns 1 and 2";
  (* CRLF must not defeat the duplicate check on the last column. *)
  expect_error_containing "a,b,b\r\n1,2,3\r\n" "duplicate column name \"b\""

let test_crlf_error_messages_trimmed () =
  (* The offending cell is quoted without its carriage return: pre-fix the
     message read [bad number "zzz\r"], pointing users at a phantom cell. *)
  let path = write_text "a,b\r\n1,zzz\r\n" in
  (match Csv.read ~path with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
      Alcotest.(check bool) "no carriage return in message" false
        (String.contains msg '\r');
      let fragment = "bad number \"zzz\"" in
      let len = String.length fragment in
      let rec occurs i =
        i + len <= String.length msg && (String.sub msg i len = fragment || occurs (i + 1))
      in
      Alcotest.(check bool) "quotes the trimmed cell" true (occurs 0));
  Sys.remove path

let test_stream_incremental () =
  (* The streaming driver visits rows one at a time without materializing
     the table; a row-callback error aborts the scan with its message. *)
  let path = write_text "a,b\n1,2\n\n3,4\n5,6\n" in
  let seen = ref [] in
  (match
     Csv.stream ~path
       ~header:(fun names ->
         Alcotest.(check bool) "header" true (names = [| "a"; "b" |]);
         Ok ())
       ~row:(fun ~lineno row ->
         seen := (lineno, row.(0), row.(1)) :: !seen;
         Ok ())
   with
  | Error msg -> Alcotest.failf "stream failed: %s" msg
  | Ok () ->
      Alcotest.(check bool) "rows in order with file line numbers" true
        (List.rev !seen = [ (2, 1., 2.); (4, 3., 4.); (5, 5., 6.) ]));
  (match
     Csv.stream ~path
       ~header:(fun _ -> Ok ())
       ~row:(fun ~lineno _ -> if lineno >= 4 then Error "stop here" else Ok ())
   with
  | Ok () -> Alcotest.fail "expected the row error to propagate"
  | Error msg -> Alcotest.(check string) "row error surfaces" "stop here" msg);
  Sys.remove path

let test_read_skips_blank_lines () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  let channel = open_out path in
  output_string channel "a,b\n\n1,2\n\n3,4\n";
  close_out channel;
  (match Csv.read ~path with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok table -> Alcotest.(check int) "two rows" 2 (Array.length table.Csv.rows));
  Sys.remove path

let test_write_rejects_ragged () =
  let path = Filename.temp_file "caffeine_csv" ".csv" in
  Alcotest.(check bool) "ragged rejected" true
    (match Csv.write ~path { Csv.header = [| "a"; "b" |]; rows = [| [| 1. |] |] } with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Sys.remove path

(* --- Dataset ------------------------------------------------------------- *)

let test_dataset_rows_columns_roundtrip () =
  let rows = [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let data = Dataset.of_rows ~var_names:[| "a"; "b" |] rows in
  Alcotest.(check int) "samples" 3 (Dataset.n_samples data);
  Alcotest.(check int) "dims" 2 (Dataset.dims data);
  Alcotest.(check bool) "names" true (Dataset.var_names data = [| "a"; "b" |]);
  Alcotest.(check bool) "column b" true (Dataset.column data 1 = [| 2.; 4.; 6. |]);
  Alcotest.(check bool) "point 1" true (Dataset.point data 1 = [| 3.; 4. |]);
  Alcotest.(check bool) "rows round-trip" true (Dataset.rows data = rows)

let test_dataset_of_table () =
  let table =
    { Csv.header = [| "x"; "y"; "target" |]; rows = [| [| 1.; 2.; 9. |]; [| 3.; 4.; 8. |] |] }
  in
  let data = Dataset.of_table ~exclude:[ "target" ] table in
  Alcotest.(check int) "dims exclude target" 2 (Dataset.dims data);
  Alcotest.(check bool) "names" true (Dataset.var_names data = [| "x"; "y" |]);
  Alcotest.(check bool) "x column" true (Dataset.column data 0 = [| 1.; 3. |])

let test_dataset_split () =
  let rows = Array.init 10 (fun i -> [| float_of_int i |]) in
  let data = Dataset.of_rows rows in
  let train, test = Dataset.split data ~at:7 in
  Alcotest.(check int) "train size" 7 (Dataset.n_samples train);
  Alcotest.(check int) "test size" 3 (Dataset.n_samples test);
  Alcotest.(check bool) "test values" true (Dataset.column test 0 = [| 7.; 8.; 9. |]);
  Alcotest.(check bool) "bad split rejected" true
    (match Dataset.split data ~at:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_dataset_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Dataset.of_rows [||]);
  expect_invalid (fun () -> Dataset.of_rows [| [| 1. |]; [| 1.; 2. |] |]);
  expect_invalid (fun () -> Dataset.of_rows ~var_names:[| "a"; "b" |] [| [| 1. |] |]);
  expect_invalid (fun () -> Dataset.of_columns [| [| 1. |]; [| 1.; 2. |] |]);
  (* A header-only table has no samples to evaluate on. *)
  expect_invalid (fun () -> Dataset.of_table { Csv.header = [| "x"; "y" |]; rows = [||] })

let test_dataset_ragged_names_offender () =
  (* Regression: a short column once raised a generic "ragged columns"
     message; every downstream consumer indexes columns with unsafe
     accesses trusting n, so the rejection must say WHICH variable is
     short and by how much. *)
  let columns = [| [| 1.; 2.; 3. |]; [| 4.; 5. |]; [| 6.; 7.; 8. |] |] in
  (match Dataset.of_columns ~var_names:[| "vdd"; "ibias"; "w1" |] columns with
  | (_ : Dataset.t) -> Alcotest.fail "ragged columns accepted"
  | exception Invalid_argument msg ->
      let contains fragment =
        let len = String.length fragment in
        let rec occurs i =
          i + len <= String.length msg && (String.sub msg i len = fragment || occurs (i + 1))
        in
        occurs 0
      in
      if not (contains "\"ibias\"") then
        Alcotest.failf "message %S does not name the offending variable" msg;
      if not (contains "has 2 values, expected 3") then
        Alcotest.failf "message %S does not state the length mismatch" msg);
  (* Default names still identify the column. *)
  match Dataset.of_columns [| [| 1. |]; [| 2.; 3. |] |] with
  | (_ : Dataset.t) -> Alcotest.fail "ragged columns accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "default name in message" true
        (let fragment = "\"x1\"" in
         let len = String.length fragment in
         let rec occurs i =
           i + len <= String.length msg && (String.sub msg i len = fragment || occurs (i + 1))
         in
         occurs 0)

let test_dataset_basis_column_memoizes () =
  let rows = [| [| 2. |]; [| 3. |]; [| 4. |] |] in
  let data = Dataset.of_rows rows in
  let basis = Expr.{ vc = Some [| 2 |]; factors = [] } in
  let column = Dataset.basis_column data basis in
  Alcotest.(check bool) "squares" true (column = [| 4.; 9.; 16. |]);
  Alcotest.(check int) "one cached" 1 (Dataset.cached_columns data);
  (* A structurally equal (but physically distinct) basis hits the cache. *)
  let again = Dataset.basis_column data Expr.{ vc = Some [| 2 |]; factors = [] } in
  Alcotest.(check bool) "same array shared" true (column == again);
  Alcotest.(check int) "still one cached" 1 (Dataset.cached_columns data);
  let other = Dataset.basis_column data Expr.{ vc = Some [| 3 |]; factors = [] } in
  Alcotest.(check bool) "cubes" true (other = [| 8.; 27.; 64. |]);
  Alcotest.(check int) "two cached" 2 (Dataset.cached_columns data)

let test_dataset_eval_column_matches_interpreter () =
  let rows = [| [| 0.5; 2. |]; [| 1.5; 0.25 |] |] in
  let data = Dataset.of_rows rows in
  let basis =
    Expr.
      {
        vc = Some [| 1; -1 |];
        factors = [ Unary (Caffeine_expr.Op.Sqrt, { bias = 1.; terms = [] }) ];
      }
  in
  let column = Dataset.eval_column (Compiled.compile basis) data in
  Array.iteri
    (fun i row ->
      Alcotest.(check (float 1e-12)) "agrees" (Expr.eval_basis basis row) column.(i))
    rows

let test_dataset_dot_cache () =
  let rows = [| [| 2. |]; [| 3. |]; [| 4. |] |] in
  let data = Dataset.of_rows rows in
  let squares = Expr.{ vc = Some [| 2 |]; factors = [] } in
  let cubes = Expr.{ vc = Some [| 3 |]; factors = [] } in
  let manual a b = Array.fold_left ( +. ) 0. (Array.mapi (fun i x -> x *. b.(i)) a) in
  let sq_col = Dataset.basis_column data squares in
  let cu_col = Dataset.basis_column data cubes in
  Alcotest.(check (float 1e-9)) "dot value" (manual sq_col cu_col) (Dataset.dot data squares cubes);
  let stats = Dataset.stats data in
  Alcotest.(check int) "one dot cached" 1 stats.Dataset.dots_cached;
  Alcotest.(check int) "first dot is a miss" 1 stats.Dataset.dot_misses;
  (* The pair key is unordered: (a, b) and (b, a) share one entry. *)
  Alcotest.(check (float 1e-9)) "symmetric hit" (manual sq_col cu_col)
    (Dataset.dot data cubes squares);
  let stats = Dataset.stats data in
  Alcotest.(check int) "still one dot cached" 1 stats.Dataset.dots_cached;
  Alcotest.(check int) "swapped order hits" 1 stats.Dataset.dot_hits;
  Alcotest.(check (float 1e-9)) "column sum" (Array.fold_left ( +. ) 0. sq_col)
    (Dataset.column_sum data squares)

let test_dataset_dot_target_keying () =
  let rows = [| [| 2. |]; [| 3. |]; [| 4. |] |] in
  let data = Dataset.of_rows rows in
  let basis = Expr.{ vc = Some [| 2 |]; factors = [] } in
  let col = Dataset.basis_column data basis in
  let manual b = Array.fold_left ( +. ) 0. (Array.mapi (fun i x -> x *. b.(i)) col) in
  let targets_a = [| 1.; 0.; -1. |] in
  let targets_b = [| 2.; 2.; 2. |] in
  (* Distinct target vectors must key distinct cache entries even for the
     same basis. *)
  Alcotest.(check (float 1e-9)) "target a" (manual targets_a)
    (Dataset.dot_target data basis ~targets:targets_a);
  Alcotest.(check (float 1e-9)) "target b" (manual targets_b)
    (Dataset.dot_target data basis ~targets:targets_b);
  Alcotest.(check (float 1e-9)) "target a again" (manual targets_a)
    (Dataset.dot_target data basis ~targets:targets_a);
  let stats = Dataset.stats data in
  Alcotest.(check int) "repeat was a hit" 1 stats.Dataset.dot_hits;
  Alcotest.(check bool) "length mismatch rejected" true
    (match Dataset.dot_target data basis ~targets:[| 1. |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Dataset.clear_cache data;
  let stats = Dataset.stats data in
  Alcotest.(check int) "dots cleared" 0 stats.Dataset.dots_cached;
  Alcotest.(check int) "columns cleared" 0 stats.Dataset.columns_cached

let test_dataset_stats_counters () =
  let rows = [| [| 2. |]; [| 3. |]; [| 4. |] |] in
  let data = Dataset.of_rows rows in
  let basis = Expr.{ vc = Some [| 2 |]; factors = [] } in
  ignore (Dataset.basis_column data basis);
  ignore (Dataset.basis_column data Expr.{ vc = Some [| 2 |]; factors = [] });
  let stats = Dataset.stats data in
  Alcotest.(check int) "column miss then hit" 1 stats.Dataset.column_misses;
  Alcotest.(check int) "column hit" 1 stats.Dataset.column_hits;
  Alcotest.(check int) "one column cached" 1 stats.Dataset.columns_cached;
  Alcotest.(check int) "no evictions yet" 0 stats.Dataset.column_evictions;
  Alcotest.(check bool) "dot limit positive" true (Dataset.dot_cache_limit data > 0);
  Alcotest.(check bool) "bad limit rejected" true
    (match Dataset.set_dot_cache_limit data 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Colstore ------------------------------------------------------------ *)

module Colstore = Caffeine_io.Colstore

let write_store ~chunk_rows ~rows ~dims =
  let path = Filename.temp_file "caffeine_colstore" ".cafs" in
  let var_names = Array.init dims (fun d -> Printf.sprintf "v%d" d) in
  let writer = Colstore.Writer.create ~path ~var_names ~chunk_rows () in
  let cell r d = float_of_int ((r * 17) + (d * 5)) /. 3. in
  let row = Array.make dims 0. in
  for r = 0 to rows - 1 do
    for d = 0 to dims - 1 do
      row.(d) <- cell r d
    done;
    Colstore.Writer.append_row writer row
  done;
  Colstore.Writer.close writer;
  (path, cell)

let check_store_contents ~mmap ~rows ~dims ~chunk_rows path cell =
  let store = Colstore.openfile ~mmap path in
  Alcotest.(check int) "n_rows" rows (Colstore.n_rows store);
  Alcotest.(check int) "chunk_rows" chunk_rows (Colstore.chunk_rows store);
  Alcotest.(check int) "dims" dims (Array.length (Colstore.var_names store));
  (* Chunks arrive in row order, the last one short. *)
  let visited = ref 0 in
  Colstore.iter_chunks store ~f:(fun ~row0 ~len columns ->
      Alcotest.(check int) "in order" !visited row0;
      for d = 0 to dims - 1 do
        for r = 0 to len - 1 do
          if columns.(d).(r) <> cell (row0 + r) d then
            Alcotest.failf "chunk cell (%d, %d) mismatch" (row0 + r) d
        done
      done;
      visited := !visited + len);
  Alcotest.(check int) "every row visited" rows !visited;
  (* Whole-column materialization and random-access gather agree. *)
  let col1 = Colstore.column store 1 in
  Alcotest.(check int) "column length" rows (Array.length col1);
  Alcotest.(check (float 0.)) "column cell" (cell (rows - 1) 1) col1.(rows - 1);
  let indices = [| 0; rows - 1; chunk_rows; 3; 3 |] in
  let gathered = Colstore.gather store ~indices in
  Array.iteri
    (fun j i ->
      for d = 0 to dims - 1 do
        if gathered.(d).(j) <> cell i d then Alcotest.failf "gather (%d, %d) mismatch" i d
      done)
    indices;
  Alcotest.(check bool) "out-of-range gather rejected" true
    (match Colstore.gather store ~indices:[| rows |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Colstore.close store

let test_colstore_roundtrip () =
  (* 2.5 chunks: exercises the compact last chunk on both read paths. *)
  let rows = 25 and dims = 3 and chunk_rows = 10 in
  let path, cell = write_store ~chunk_rows ~rows ~dims in
  check_store_contents ~mmap:false ~rows ~dims ~chunk_rows path cell;
  check_store_contents ~mmap:true ~rows ~dims ~chunk_rows path cell;
  Sys.remove path

let test_colstore_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  expect_invalid (fun () ->
      Colstore.Writer.create ~path:"/tmp/x.cafs" ~var_names:[||] ());
  expect_invalid (fun () ->
      Colstore.Writer.create ~path:"/tmp/x.cafs" ~var_names:[| "a" |] ~chunk_rows:0 ());
  (* A non-store file is rejected by the magic check. *)
  let path = Filename.temp_file "caffeine_colstore" ".cafs" in
  let oc = open_out path in
  output_string oc "definitely not a column store";
  close_out oc;
  expect_invalid (fun () -> Colstore.openfile path);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "write/read round-trip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "dataset rows/columns round-trip" `Quick test_dataset_rows_columns_roundtrip;
    Alcotest.test_case "dataset from CSV table" `Quick test_dataset_of_table;
    Alcotest.test_case "dataset split" `Quick test_dataset_split;
    Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
    Alcotest.test_case "dataset basis-column memoization" `Quick test_dataset_basis_column_memoizes;
    Alcotest.test_case "dataset dot cache" `Quick test_dataset_dot_cache;
    Alcotest.test_case "dataset dot-target keying" `Quick test_dataset_dot_target_keying;
    Alcotest.test_case "dataset stats counters" `Quick test_dataset_stats_counters;
    Alcotest.test_case "dataset eval matches interpreter" `Quick
      test_dataset_eval_column_matches_interpreter;
    Alcotest.test_case "column extraction" `Quick test_column_extraction;
    Alcotest.test_case "columns except" `Quick test_columns_except;
    Alcotest.test_case "read errors" `Quick test_read_errors;
    Alcotest.test_case "blank lines skipped" `Quick test_read_skips_blank_lines;
    Alcotest.test_case "error line numbers are file positions" `Quick test_read_error_line_numbers;
    Alcotest.test_case "CRLF files" `Quick test_read_crlf;
    Alcotest.test_case "CRLF trimmed from error messages" `Quick test_crlf_error_messages_trimmed;
    Alcotest.test_case "duplicate header rejected" `Quick test_duplicate_header_rejected;
    Alcotest.test_case "incremental stream driver" `Quick test_stream_incremental;
    Alcotest.test_case "header-only rejected" `Quick test_read_header_only;
    Alcotest.test_case "ragged write rejected" `Quick test_write_rejects_ragged;
    Alcotest.test_case "ragged dataset names the offender" `Quick
      test_dataset_ragged_names_offender;
    Alcotest.test_case "colstore round-trip (buffered and mmap)" `Quick test_colstore_roundtrip;
    Alcotest.test_case "colstore validation" `Quick test_colstore_validation;
  ]

(* Tests for the OTA testbench: variable mapping, performance extraction,
   physical sanity of sensitivities, and dataset generation. *)

module Ota = Caffeine_ota.Ota

let evaluate_exn x =
  match Ota.evaluate x with
  | Ok values -> values
  | Error msg -> Alcotest.failf "evaluation failed: %s" msg

let index_of p =
  let rec find i = function
    | [] -> Alcotest.fail "unknown performance"
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 Ota.all_performances

let value p values = values.(index_of p)

let with_var name factor =
  let x = Array.copy Ota.nominal in
  let rec find i =
    if i >= Array.length Ota.var_names then Alcotest.failf "unknown variable %s" name
    else if Ota.var_names.(i) = name then i
    else find (i + 1)
  in
  let i = find 0 in
  x.(i) <- x.(i) *. factor;
  x

let test_metadata () =
  Alcotest.(check int) "13 design variables" 13 Ota.dims;
  Alcotest.(check int) "names match dims" Ota.dims (Array.length Ota.var_names);
  Alcotest.(check int) "nominal width" Ota.dims (Array.length Ota.nominal);
  Alcotest.(check int) "six performances" 6 (List.length Ota.all_performances);
  Alcotest.(check (float 0.)) "5V supply" 5.0 Ota.supply_voltage;
  Alcotest.(check (float 0.)) "10pF load" 10e-12 Ota.load_capacitance

let test_performance_names_roundtrip () =
  List.iter
    (fun p ->
      match Ota.performance_of_name (Ota.performance_name p) with
      | Some q -> Alcotest.(check bool) "round-trip" true (p = q)
      | None -> Alcotest.fail "name not recognized")
    Ota.all_performances

let test_nominal_values_realistic () =
  let values = evaluate_exn Ota.nominal in
  let alf = value Ota.Alf values in
  Alcotest.(check bool) "gain 20..80 dB" true (alf > 20. && alf < 80.);
  let fu = value Ota.Fu values in
  Alcotest.(check bool) "fu 0.1..100 MHz" true (fu > 1e5 && fu < 1e8);
  let pm = value Ota.Pm values in
  Alcotest.(check bool) "PM 30..100 degrees" true (pm > 30. && pm < 100.);
  let voffset = value Ota.Voffset values in
  Alcotest.(check bool) "offset few mV" true (Float.abs voffset < 10e-3);
  let srp = value Ota.Srp values in
  Alcotest.(check bool) "SRp positive" true (srp > 1e5);
  let srn = value Ota.Srn values in
  Alcotest.(check bool) "SRn negative" true (srn < -1e5)

let test_more_current_more_slew () =
  let base = evaluate_exn Ota.nominal in
  let boosted = evaluate_exn (with_var "id2" 1.2) in
  Alcotest.(check bool) "SRp rises with id2" true
    (value Ota.Srp boosted > value Ota.Srp base);
  Alcotest.(check bool) "SRn magnitude rises with id2" true
    (Float.abs (value Ota.Srn boosted) > Float.abs (value Ota.Srn base))

let test_more_input_current_more_bandwidth () =
  let base = evaluate_exn Ota.nominal in
  let boosted = evaluate_exn (with_var "id1" 1.2) in
  Alcotest.(check bool) "fu rises with id1 (gm1 up)" true
    (value Ota.Fu boosted > value Ota.Fu base)

let test_gain_falls_with_overdrive () =
  (* Larger vsg1 means larger overdrive, lower gm1, lower gain. *)
  let base = evaluate_exn Ota.nominal in
  let weaker = evaluate_exn (with_var "vsg1" 1.1) in
  Alcotest.(check bool) "ALF falls with vsg1" true
    (value Ota.Alf weaker < value Ota.Alf base)

let test_nuisance_variable_has_no_effect () =
  (* ib is deliberately unused by every performance. *)
  let base = evaluate_exn Ota.nominal in
  let changed = evaluate_exn (with_var "ib" 1.5) in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12)) (Ota.performance_name p) (value p base) (value p changed))
    Ota.all_performances

let test_cutoff_region_rejected () =
  (* vsg1 far below |vth| puts the input pair in cutoff. *)
  let x = Array.copy Ota.nominal in
  x.(3) <- 0.3 (* vsg1 *);
  Alcotest.(check bool) "bias error reported" true
    (match Ota.evaluate x with Ok _ -> false | Error _ -> true)

let test_negative_current_rejected () =
  let x = Array.copy Ota.nominal in
  x.(0) <- -.x.(0);
  Alcotest.(check bool) "negative current rejected" true
    (match Ota.evaluate x with Ok _ -> false | Error _ -> true)

let test_small_signal_circuit_structure () =
  match Ota.small_signal_circuit Ota.nominal with
  | Error msg -> Alcotest.failf "circuit build failed: %s" msg
  | Ok circuit ->
      Alcotest.(check int) "seven nodes" 7 (Caffeine_spice.Circuit.num_nodes circuit);
      Alcotest.(check (list string)) "one source" [ "vin" ]
        (Caffeine_spice.Circuit.vsource_names circuit)

let test_doe_dataset_shape () =
  let data = Ota.doe_dataset ~dx:0.10 in
  Alcotest.(check bool) "most of 243 samples evaluated" true
    (Array.length data.Ota.inputs > 200 && Array.length data.Ota.inputs <= 243);
  Alcotest.(check int) "outputs aligned" (Array.length data.Ota.inputs)
    (Array.length data.Ota.outputs);
  Array.iter
    (fun row -> Alcotest.(check int) "six outputs" 6 (Array.length row))
    data.Ota.outputs

let test_doe_dataset_narrow_spread () =
  (* dx = 0.03 samples are interior to the dx = 0.10 hypercube: the spread
     of every performance must be smaller. *)
  let wide = Ota.doe_dataset ~dx:0.10 in
  let narrow = Ota.doe_dataset ~dx:0.03 in
  List.iter
    (fun p ->
      let spread data =
        let ys = Ota.targets data p in
        Caffeine_util.Stats.stddev ys
      in
      Alcotest.(check bool)
        (Ota.performance_name p ^ " narrower")
        true
        (spread narrow < spread wide))
    Ota.all_performances

let test_modeling_target_fu_log () =
  Alcotest.(check (float 1e-9)) "fu log-scaled" 6. (Ota.modeling_target Ota.Fu 1e6);
  Alcotest.(check (float 1e-3)) "inverse" 1e6 (Ota.modeling_target_inverse Ota.Fu 6.);
  Alcotest.(check (float 1e-9)) "others identity" 42. (Ota.modeling_target Ota.Pm 42.)

let test_targets_column_extraction () =
  let data = Ota.doe_dataset ~dx:0.03 in
  let pm = Ota.targets data Ota.Pm in
  Alcotest.(check int) "one value per row" (Array.length data.Ota.inputs) (Array.length pm);
  Array.iter
    (fun v -> Alcotest.(check bool) "PM plausible" true (v > 0. && v < 120.))
    pm

let suite =
  [
    Alcotest.test_case "metadata" `Quick test_metadata;
    Alcotest.test_case "performance names" `Quick test_performance_names_roundtrip;
    Alcotest.test_case "nominal values realistic" `Quick test_nominal_values_realistic;
    Alcotest.test_case "slew rises with id2" `Quick test_more_current_more_slew;
    Alcotest.test_case "bandwidth rises with id1" `Quick test_more_input_current_more_bandwidth;
    Alcotest.test_case "gain falls with overdrive" `Quick test_gain_falls_with_overdrive;
    Alcotest.test_case "nuisance variable inert" `Quick test_nuisance_variable_has_no_effect;
    Alcotest.test_case "cutoff rejected" `Quick test_cutoff_region_rejected;
    Alcotest.test_case "negative current rejected" `Quick test_negative_current_rejected;
    Alcotest.test_case "small-signal circuit" `Quick test_small_signal_circuit_structure;
    Alcotest.test_case "doe dataset shape" `Quick test_doe_dataset_shape;
    Alcotest.test_case "doe dataset spread" `Quick test_doe_dataset_narrow_spread;
    Alcotest.test_case "fu log scaling" `Quick test_modeling_target_fu_log;
    Alcotest.test_case "targets extraction" `Quick test_targets_column_extraction;
  ]

(* --- transistor-level testbench --- *)

module Testbench = Caffeine_ota.Testbench

let validate_exn x =
  match Testbench.validate x with
  | Ok report -> report
  | Error msg -> Alcotest.failf "testbench validation failed: %s" msg

let test_testbench_converges_at_nominal () =
  let report = validate_exn Ota.nominal in
  Alcotest.(check bool) "converges quickly" true (report.Testbench.iterations < 50);
  Alcotest.(check bool) "output voltage inside the rails" true
    (report.Testbench.output_voltage > 0.5 && report.Testbench.output_voltage < 4.5);
  Alcotest.(check bool) "tail above common mode" true
    (report.Testbench.tail_voltage > 2.0 && report.Testbench.tail_voltage < 5.0)

let test_testbench_currents_match_design () =
  let report = validate_exn Ota.nominal in
  (* Channel-length modulation at the actual node voltages accounts for the
     residual; the asserted bias must still be recognizably realized. *)
  Alcotest.(check bool) "currents within 30% of design" true
    (Testbench.max_current_mismatch report < 0.30);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (d.Testbench.name ^ " conducting")
        true
        (d.Testbench.solved_current > 0.5 *. d.Testbench.designed_current))
    report.Testbench.devices

let test_testbench_input_pair_balanced () =
  let report = validate_exn Ota.nominal in
  let current name =
    let d = List.find (fun d -> d.Testbench.name = name) report.Testbench.devices in
    d.Testbench.solved_current
  in
  let a = current "m1a" and b = current "m1b" in
  Alcotest.(check bool) "pair splits the tail evenly" true
    (Float.abs (a -. b) < 0.02 *. Float.max a b)

let test_testbench_mirror_ratio () =
  let report = validate_exn Ota.nominal in
  let current name =
    let d = List.find (fun d -> d.Testbench.name = name) report.Testbench.devices in
    d.Testbench.solved_current
  in
  let k_designed = Ota.nominal.(1) /. Ota.nominal.(0) in
  let k_solved = current "m2c" /. current "m2a" in
  Alcotest.(check bool) "mirror gain near designed K" true
    (k_solved > 0.8 *. k_designed && k_solved < 1.3 *. k_designed)

let test_testbench_rejects_cutoff () =
  let x = Array.copy Ota.nominal in
  x.(3) <- 0.3 (* vsg1 below threshold *);
  Alcotest.(check bool) "cutoff point rejected" true
    (match Testbench.validate x with Ok _ -> false | Error _ -> true)

let test_testbench_perturbed_points_converge () =
  (* Every corner of a +-10% hypercube slice should still converge. *)
  let scales = [ 0.9; 1.1 ] in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          let x = Array.copy Ota.nominal in
          x.(0) <- x.(0) *. s1;
          x.(1) <- x.(1) *. s2;
          let report = validate_exn x in
          Alcotest.(check bool) "converged" true (report.Testbench.iterations < 100))
        scales)
    scales

let test_testbench_transient_slew_matches_analytic () =
  (* The large-signal transient measurement and the analytic current-limit
     estimate must agree in sign and magnitude (within a factor of 2). *)
  match Testbench.transient_slew Ota.nominal with
  | Error msg -> Alcotest.failf "transient slew failed: %s" msg
  | Ok (rising, falling) -> (
      Alcotest.(check bool) "rising positive" true (rising > 0.);
      Alcotest.(check bool) "falling negative" true (falling < 0.);
      match Ota.evaluate Ota.nominal with
      | Error msg -> Alcotest.failf "analytic evaluation failed: %s" msg
      | Ok values ->
          let srp = value Ota.Srp values and srn = value Ota.Srn values in
          let ratio_p = rising /. srp in
          let ratio_n = falling /. srn in
          Alcotest.(check bool) "SRp within 2x of analytic" true
            (ratio_p > 0.5 && ratio_p < 2.);
          Alcotest.(check bool) "SRn within 2x of analytic" true
            (ratio_n > 0.5 && ratio_n < 2.))

let testbench_suite =
  [
    Alcotest.test_case "testbench: converges" `Quick test_testbench_converges_at_nominal;
    Alcotest.test_case "testbench: currents match" `Quick test_testbench_currents_match_design;
    Alcotest.test_case "testbench: pair balance" `Quick test_testbench_input_pair_balanced;
    Alcotest.test_case "testbench: mirror ratio" `Quick test_testbench_mirror_ratio;
    Alcotest.test_case "testbench: cutoff rejected" `Quick test_testbench_rejects_cutoff;
    Alcotest.test_case "testbench: perturbed corners" `Quick test_testbench_perturbed_points_converge;
    Alcotest.test_case "testbench: transient slew vs analytic" `Slow
      test_testbench_transient_slew_matches_analytic;
  ]

let suite = suite @ testbench_suite

(* --- Miller two-stage op-amp testbench --- *)

module Miller = Caffeine_ota.Miller

let miller_eval_exn x =
  match Miller.evaluate x with
  | Ok values -> values
  | Error msg -> Alcotest.failf "miller evaluation failed: %s" msg

let miller_value p values =
  let rec find i = function
    | [] -> Alcotest.fail "unknown performance"
    | q :: rest -> if q = p then values.(i) else find (i + 1) rest
  in
  find 0 Miller.all_performances

let test_miller_nominal_realistic () =
  let values = miller_eval_exn Miller.nominal in
  let alf = miller_value Miller.Alf values in
  Alcotest.(check bool) "two-stage gain 40..120 dB" true (alf > 40. && alf < 120.);
  let pm = miller_value Miller.Pm values in
  Alcotest.(check bool) "compensated PM 20..100" true (pm > 20. && pm < 100.);
  let power = miller_value Miller.Power values in
  Alcotest.(check (float 1e-9)) "power = vdd*(2 id1 + id2)" (5. *. ((2. *. 20e-6) +. 200e-6)) power

let test_miller_compensation_tradeoff () =
  (* Larger Cc: lower fu, higher phase margin (pole splitting). *)
  let base = miller_eval_exn Miller.nominal in
  let more_cc = Array.copy Miller.nominal in
  more_cc.(6) <- more_cc.(6) *. 2.;
  let compensated = miller_eval_exn more_cc in
  Alcotest.(check bool) "fu falls with cc" true
    (miller_value Miller.Fu compensated < miller_value Miller.Fu base);
  Alcotest.(check bool) "PM rises with cc" true
    (miller_value Miller.Pm compensated > miller_value Miller.Pm base)

let test_miller_load_reduces_margin () =
  (* Heavier load capacitance pulls the output pole in: PM drops. *)
  let base = miller_eval_exn Miller.nominal in
  let heavy = Array.copy Miller.nominal in
  heavy.(7) <- heavy.(7) *. 3.;
  let loaded = miller_eval_exn heavy in
  Alcotest.(check bool) "PM falls with cl" true
    (miller_value Miller.Pm loaded < miller_value Miller.Pm base)

let test_miller_gain_rises_with_two_stages () =
  (* The two-stage amp should out-gain the single-stage OTA at nominal. *)
  let miller = miller_eval_exn Miller.nominal in
  let ota = evaluate_exn Ota.nominal in
  Alcotest.(check bool) "two-stage gain exceeds OTA gain" true
    (miller_value Miller.Alf miller > value Ota.Alf ota)

let test_miller_dataset () =
  let rng = Caffeine_util.Rng.create ~seed:5 () in
  let inputs, outputs = Miller.dataset rng ~samples:50 ~spread:0.1 in
  Alcotest.(check bool) "most samples evaluate" true (Array.length inputs > 40);
  Alcotest.(check int) "aligned" (Array.length inputs) (Array.length outputs);
  Array.iter
    (fun row -> Alcotest.(check int) "four outputs" 4 (Array.length row))
    outputs

let test_miller_rejects_bad_points () =
  let bad_current = Array.copy Miller.nominal in
  bad_current.(0) <- 0.;
  Alcotest.(check bool) "zero current rejected" true
    (match Miller.evaluate bad_current with Ok _ -> false | Error _ -> true);
  let bad_cap = Array.copy Miller.nominal in
  bad_cap.(6) <- -1e-12;
  Alcotest.(check bool) "negative cap rejected" true
    (match Miller.evaluate bad_cap with Ok _ -> false | Error _ -> true)

let miller_suite =
  [
    Alcotest.test_case "miller: nominal realistic" `Quick test_miller_nominal_realistic;
    Alcotest.test_case "miller: compensation tradeoff" `Quick test_miller_compensation_tradeoff;
    Alcotest.test_case "miller: load reduces margin" `Quick test_miller_load_reduces_margin;
    Alcotest.test_case "miller: two stages out-gain one" `Quick test_miller_gain_rises_with_two_stages;
    Alcotest.test_case "miller: dataset" `Quick test_miller_dataset;
    Alcotest.test_case "miller: bad points rejected" `Quick test_miller_rejects_bad_points;
  ]

let suite = suite @ miller_suite

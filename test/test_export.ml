(* Tests for C / Verilog-A model export.  The C test is differential: the
   generated function is compiled with the system compiler and its output
   compared against the OCaml evaluator at random points. *)

module Expr = Caffeine_expr.Expr
module Rng = Caffeine_util.Rng
module Model = Caffeine.Model
module Export = Caffeine.Export

let names = [| "id1"; "id2"; "vsg1" |]

let ratio_model =
  let b1 = Expr.{ vc = Some [| 1; -1; 0 |]; factors = [] } in
  let b2 =
    Expr.
      {
        vc = Some [| 0; 0; -2 |];
        factors = [ Unary (Caffeine_expr.Op.Log_e, { bias = 2.; terms = [ (0.5, b1) ] }) ];
      }
  in
  {
    Model.bases = [| b1; b2 |];
    intercept = 90.5;
    weights = [| 186.6; -1.14 |];
    train_error = 0.;
    complexity = 0.;
  }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_c_source_structure () =
  let source = Export.to_c ~name:"pm_model" ~var_names:names ratio_model in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains source fragment))
    [
      "#include <math.h>";
      "double pm_model(const double *x)";
      "x[0]";
      "log(";
      "return";
      "x[0] = id1";
    ]

let test_verilog_a_structure () =
  let source = Export.to_verilog_a ~name:"pm_model" ~var_names:names ratio_model in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains source fragment))
    [ "analog function real pm_model"; "input id1"; "ln("; "endfunction" ]

let compiler_available () = Sys.command "cc --version > /dev/null 2>&1" = 0

let test_c_differential () =
  if not (compiler_available ()) then ()
  else begin
    let rng = Rng.create ~seed:77 () in
    (* A handful of random generated models plus the fixed one. *)
    let random_model () =
      let bases =
        Array.init 2 (fun _ ->
            Caffeine.Gen.random_basis rng Caffeine.Opset.no_trig ~dims:3 ~depth:3 ~max_vc_vars:2)
      in
      {
        Model.bases;
        intercept = Rng.range rng (-2.) 2.;
        weights = Array.init 2 (fun _ -> Rng.range rng (-3.) 3.);
        train_error = 0.;
        complexity = 0.;
      }
    in
    let points = Array.init 6 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.)) in
    let models = ratio_model :: List.init 4 (fun _ -> random_model ()) in
    List.iteri
      (fun index model ->
        (* Only test models that evaluate finitely on all probe points. *)
        let finite =
          Array.for_all (fun x -> Float.is_finite (Model.predict_point model x)) points
        in
        if finite then begin
          let dir = Filename.temp_file "caffeine_export" "" in
          Sys.remove dir;
          Unix.mkdir dir 0o755;
          let c_path = Filename.concat dir "model.c" in
          let exe_path = Filename.concat dir "model" in
          let channel = open_out c_path in
          output_string channel (Export.to_c ~name:"f" ~var_names:names model);
          output_string channel "#include <stdio.h>\nint main(void) {\n";
          Array.iter
            (fun x ->
              Printf.fprintf channel "  { double x[3] = {%.17g, %.17g, %.17g};\n" x.(0) x.(1) x.(2);
              output_string channel "    printf(\"%.17g\\n\", f(x)); }\n")
            points;
          output_string channel "  return 0;\n}\n";
          close_out channel;
          let compile = Printf.sprintf "cc -O1 -o %s %s -lm 2>/dev/null" exe_path c_path in
          Alcotest.(check int) (Printf.sprintf "model %d compiles" index) 0 (Sys.command compile);
          let input = Unix.open_process_in exe_path in
          let outputs =
            Array.map
              (fun _ -> float_of_string (String.trim (input_line input)))
              points
          in
          ignore (Unix.close_process_in input);
          Array.iteri
            (fun k x ->
              let expected = Model.predict_point model x in
              let got = outputs.(k) in
              let scale = Float.max 1. (Float.abs expected) in
              if Float.abs (expected -. got) > 1e-9 *. scale then
                Alcotest.failf "model %d point %d: ocaml %.17g vs C %.17g" index k expected got)
            points;
          Sys.remove c_path;
          Sys.remove exe_path;
          Unix.rmdir dir
        end)
      models
  end

let suite =
  [
    Alcotest.test_case "c source structure" `Quick test_c_source_structure;
    Alcotest.test_case "verilog-a structure" `Quick test_verilog_a_structure;
    Alcotest.test_case "c differential vs evaluator" `Quick test_c_differential;
  ]

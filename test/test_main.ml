let () =
  Alcotest.run "caffeine"
    [
      ("util", Test_util.suite);
      ("linalg", Test_linalg.suite);
      ("doe", Test_doe.suite);
      ("grammar", Test_grammar.suite);
      ("expr", Test_expr.suite);
      ("compiled", Test_compiled.suite);
      ("fused", Test_fused.suite);
      ("infix", Test_infix.suite);
      ("deriv", Test_deriv.suite);
      ("regress", Test_regress.suite);
      ("evo", Test_evo.suite);
      ("spice", Test_spice.suite);
      ("netlist", Test_netlist.suite);
      ("ota", Test_ota.suite);
      ("posyn", Test_posyn.suite);
      ("core", Test_core.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("par", Test_par.suite);
      ("shard", Test_shard.suite);
      ("obs", Test_obs.suite);
      ("export", Test_export.suite);
      ("serve", Test_serve.suite);
      ("io", Test_io.suite);
      ("stream", Test_stream.suite);
      ("cli", Test_cli.suite);
    ]

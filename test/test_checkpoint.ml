(* Tests for the checkpoint/resume subsystem: generator state round-trips,
   the snapshot codec, validation against the resuming run, and the core
   contract — a run killed at any generation and resumed from its snapshot
   produces a bit-identical final front. *)

module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Nsga2 = Caffeine_evo.Nsga2
module Pool = Caffeine_par.Pool
module Trace = Caffeine_obs.Trace
module Config = Caffeine.Config
module Gen = Caffeine.Gen
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Checkpoint = Caffeine.Checkpoint
module Dataset = Caffeine_io.Dataset

(* Structural equality through [compare]: snapshots can legitimately hold
   non-finite objectives, on which polymorphic [=] is false. *)
let equal a b = compare a b = 0

let with_temp_file f =
  let path = Filename.temp_file "caffeine_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

let slurp path =
  let channel = open_in_bin path in
  let text = really_input_string channel (in_channel_length channel) in
  close_in channel;
  text

let spit path text =
  let channel = open_out_bin path in
  output_string channel text;
  close_out channel

(* --- generator state ----------------------------------------------------- *)

let test_rng_state_roundtrip () =
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 13 do
    ignore (Rng.bits64 rng)
  done;
  let copy = Rng.of_state (Rng.to_state rng) in
  for _ = 1 to 50 do
    Alcotest.(check int64) "restored generator replays the stream" (Rng.bits64 rng)
      (Rng.bits64 copy)
  done;
  Alcotest.(check bool) "all-zero state rejected" true
    (match Rng.of_state { Rng.w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L } with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- snapshot codec ------------------------------------------------------ *)

let toy_config = Config.scaled ~pop_size:12 ~generations:8 ~jobs:1 Config.default

let toy_problem seed =
  let rng = Rng.create ~seed () in
  let inputs = Array.init 30 (fun _ -> Array.init 2 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets = Array.map (fun x -> (x.(0) *. x.(0)) +. (0.7 /. x.(1))) inputs in
  (Dataset.of_rows inputs, targets)

let random_population rng config ~dims n =
  Array.init n (fun i ->
      {
        Nsga2.genome = Gen.random_individual rng config ~dims;
        objectives =
          [| (if i = 0 then Float.infinity else Rng.uniform rng); float_of_int (Rng.int rng 40) |];
        rank = i mod 3;
        crowding = (if i = 1 then Float.infinity else Rng.uniform rng);
      })

let random_models rng config ~data ~targets n =
  List.init n (fun _ ->
      let bases = Gen.random_individual rng config ~dims:(Dataset.dims data) in
      match Model.fit ~wb:config.Config.wb ~wvc:config.Config.wvc bases ~data ~targets with
      | Some model -> model
      | None ->
          (* An unlucky draw can be invalid on the data; the constant model
             exercises the codec just as well. *)
          Option.get (Model.fit ~wb:config.Config.wb ~wvc:config.Config.wvc [||] ~data ~targets))

let test_snapshot_roundtrip_evolving () =
  let rng = Rng.create ~seed:11 () in
  let data, targets = toy_problem 11 in
  let islands =
    [|
      Checkpoint.Pending (Rng.to_state rng);
      Checkpoint.In_progress
        {
          gen = 7;
          rng = Rng.to_state (Rng.split rng);
          population = random_population rng toy_config ~dims:(Dataset.dims data) 8;
        };
      Checkpoint.Done (random_models rng toy_config ~data ~targets 3);
    |]
  in
  let snapshot =
    {
      Checkpoint.fingerprint = Checkpoint.fingerprint toy_config ~data ~targets;
      seed = 3;
      restarts = 3;
      phase = Checkpoint.Evolving islands;
    }
  in
  with_temp_file (fun path ->
      Checkpoint.save ~path snapshot;
      Alcotest.(check bool) "no stale temp file" false (Sys.file_exists (path ^ ".tmp"));
      match Checkpoint.load ~path with
      | Error message -> Alcotest.failf "load failed: %s" message
      | Ok loaded -> Alcotest.(check bool) "evolving snapshot round-trips" true (equal snapshot loaded))

let test_snapshot_roundtrip_simplifying () =
  let rng = Rng.create ~seed:12 () in
  let data, targets = toy_problem 12 in
  let front = random_models rng toy_config ~data ~targets 4 in
  let processed = random_models rng toy_config ~data ~targets 2 in
  let snapshot =
    {
      Checkpoint.fingerprint = Checkpoint.fingerprint toy_config ~data ~targets;
      seed = 17;
      restarts = 1;
      phase = Checkpoint.Simplifying { front; processed };
    }
  in
  with_temp_file (fun path ->
      Checkpoint.save ~path snapshot;
      match Checkpoint.load ~path with
      | Error message -> Alcotest.failf "load failed: %s" message
      | Ok loaded ->
          Alcotest.(check bool) "simplifying snapshot round-trips" true (equal snapshot loaded))

let test_load_rejects_bad_input () =
  let rejected path = match Checkpoint.load ~path with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "missing file" true (rejected "/nonexistent/caffeine.ckpt");
  with_temp_file (fun path ->
      spit path "not json at all\n";
      Alcotest.(check bool) "garbage" true (rejected path);
      spit path "{\"type\":\"something_else\"}\n";
      Alcotest.(check bool) "wrong type tag" true (rejected path);
      spit path "";
      Alcotest.(check bool) "empty file" true (rejected path);
      (* A valid snapshot whose version field is bumped must be refused, not
         misread. *)
      let rng = Rng.create ~seed:13 () in
      let snapshot =
        {
          Checkpoint.fingerprint = "fp";
          seed = 1;
          restarts = 1;
          phase = Checkpoint.Evolving [| Checkpoint.Pending (Rng.to_state rng) |];
        }
      in
      Checkpoint.save ~path snapshot;
      let version_field = Printf.sprintf "\"version\":%d" Checkpoint.version in
      let text = slurp path in
      let index =
        let len = String.length version_field in
        let rec find i =
          if i + len > String.length text then Alcotest.fail "version field not found"
          else if String.sub text i len = version_field then i
          else find (i + 1)
        in
        find 0
      in
      spit path
        (String.sub text 0 index ^ "\"version\":999"
        ^ String.sub text (index + String.length version_field)
            (String.length text - index - String.length version_field));
      match Checkpoint.load ~path with
      | Ok _ -> Alcotest.fail "future version accepted"
      | Error message ->
          Alcotest.(check bool) "version mentioned" true
            (let fragment = "version" in
             let len = String.length fragment in
             let rec occurs i =
               i + len <= String.length message
               && (String.sub message i len = fragment || occurs (i + 1))
             in
             occurs 0))

let test_load_errors_name_file_and_line () =
  (* A damaged snapshot must come back as one [file:line: message] string —
     the CLI prints it verbatim — never a raw exception. *)
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  let error_of path =
    match Checkpoint.load ~path with
    | Ok _ -> Alcotest.fail "damaged snapshot accepted"
    | Error message -> message
  in
  with_temp_file (fun path ->
      (* Garbage on the very first line. *)
      spit path "not json at all\n";
      Alcotest.(check bool) "garbage names line 1" true (starts_with (path ^ ":1:") (error_of path));
      (* A real snapshot with one island line replaced by garbage: the
         report must point at that line, not the header. *)
      let rng = Rng.create ~seed:23 () in
      let snapshot =
        {
          Checkpoint.fingerprint = "fp";
          seed = 1;
          restarts = 2;
          phase =
            Checkpoint.Evolving
              [| Checkpoint.Pending (Rng.to_state rng); Checkpoint.Pending (Rng.to_state rng) |];
        }
      in
      Checkpoint.save ~path snapshot;
      let lines = String.split_on_char '\n' (slurp path) in
      let damaged =
        List.mapi (fun i line -> if i = 2 then "{\"type\":\"island\",truncated" else line) lines
      in
      spit path (String.concat "\n" damaged);
      Alcotest.(check bool) "damaged island names line 3" true
        (starts_with (path ^ ":3:") (error_of path));
      (* Truncation that drops a whole island line has no single offending
         line: the report still names the file. *)
      Checkpoint.save ~path snapshot;
      let lines = String.split_on_char '\n' (slurp path) in
      spit path (String.concat "\n" (List.filteri (fun i _ -> i <> 2) lines));
      Alcotest.(check bool) "missing island names file" true
        (starts_with (path ^ ":") (error_of path)))

let test_validate () =
  let rng = Rng.create ~seed:14 () in
  let snapshot =
    {
      Checkpoint.fingerprint = "fp";
      seed = 3;
      restarts = 2;
      phase =
        Checkpoint.Evolving
          [| Checkpoint.Pending (Rng.to_state rng); Checkpoint.Pending (Rng.to_state rng) |];
    }
  in
  Alcotest.(check bool) "matching run accepted" true
    (Checkpoint.validate snapshot ~fingerprint:"fp" ~seed:3 ~restarts:2 = Ok ());
  let rejected = function Ok () -> false | Error _ -> true in
  Alcotest.(check bool) "fingerprint mismatch" true
    (rejected (Checkpoint.validate snapshot ~fingerprint:"other" ~seed:3 ~restarts:2));
  Alcotest.(check bool) "seed mismatch" true
    (rejected (Checkpoint.validate snapshot ~fingerprint:"fp" ~seed:4 ~restarts:2));
  Alcotest.(check bool) "restarts mismatch" true
    (rejected (Checkpoint.validate snapshot ~fingerprint:"fp" ~seed:3 ~restarts:3))

let test_fingerprint_sensitivity () =
  let data, targets = toy_problem 15 in
  let fingerprint = Checkpoint.fingerprint toy_config ~data ~targets in
  Alcotest.(check string) "deterministic" fingerprint
    (Checkpoint.fingerprint toy_config ~data ~targets);
  Alcotest.(check string) "jobs never change results, so never the fingerprint" fingerprint
    (Checkpoint.fingerprint { toy_config with Config.jobs = 8 } ~data ~targets);
  Alcotest.(check bool) "config changes show" true
    (fingerprint
    <> Checkpoint.fingerprint
         { toy_config with Config.generations = toy_config.Config.generations + 1 }
         ~data ~targets);
  let perturbed = Array.copy targets in
  perturbed.(0) <- perturbed.(0) +. 1e-9;
  Alcotest.(check bool) "target changes show" true
    (fingerprint <> Checkpoint.fingerprint toy_config ~data ~targets:perturbed)

(* --- kill/resume bit-identity -------------------------------------------- *)

exception Killed

let test_run_kill_resume_bit_identical () =
  let data, targets = toy_problem 43 in
  let full = Search.run ~seed:23 toy_config ~data ~targets in
  with_temp_file (fun path ->
      (match
         Search.run ~seed:23
           ~on_generation:(fun record -> if record.Trace.gen >= 5 then raise Killed)
           ~checkpoint_path:path ~checkpoint_every:3 toy_config ~data ~targets
       with
      | _ -> Alcotest.fail "expected the kill to escape Search.run"
      | exception Killed -> ());
      let snapshot =
        match Checkpoint.load ~path with
        | Ok snapshot -> snapshot
        | Error message -> Alcotest.failf "load failed: %s" message
      in
      (match snapshot.Checkpoint.phase with
      | Checkpoint.Evolving [| Checkpoint.In_progress { gen; _ } |] ->
          Alcotest.(check int) "snapshot holds the last checkpointed generation" 3 gen
      | _ -> Alcotest.fail "expected a single in-progress island");
      let resumed = Search.run ~seed:23 ~resume:snapshot ~checkpoint_path:path toy_config ~data ~targets in
      Alcotest.(check bool) "resumed front bit-identical to the uninterrupted run" true
        (equal full.Search.front resumed.Search.front);
      (* Resuming under a domain pool must not change the front either. *)
      let pooled =
        Caffeine_par.Executor.with_executor ~jobs:4 Caffeine_par.Executor.Domains
          (fun executor -> Search.run ~seed:23 ~executor ~resume:snapshot toy_config ~data ~targets)
      in
      Alcotest.(check bool) "pooled resume identical" true (equal full.Search.front pooled.Search.front);
      (* The completed resume left a finished snapshot behind. *)
      (match Checkpoint.load ~path with
      | Ok { Checkpoint.phase = Checkpoint.Evolving [| Checkpoint.Done front |]; _ } ->
          Alcotest.(check bool) "final snapshot holds the front" true
            (equal front resumed.Search.front)
      | Ok _ -> Alcotest.fail "expected a finished island"
      | Error message -> Alcotest.failf "reload failed: %s" message);
      (* A snapshot from a different run must be refused. *)
      match Search.run ~seed:24 ~resume:snapshot toy_config ~data ~targets with
      | _ -> Alcotest.fail "seed mismatch accepted"
      | exception Invalid_argument _ -> ())

let test_run_multi_kill_resume_bit_identical () =
  let data, targets = toy_problem 7 in
  let config = Config.scaled ~pop_size:10 ~generations:6 ~jobs:1 Config.default in
  let full = Search.run_multi ~seed:9 ~restarts:3 config ~data ~targets in
  with_temp_file (fun path ->
      (match
         Search.run_multi ~seed:9 ~restarts:3
           ~on_generation:(fun ~island record ->
             if island = 1 && record.Trace.gen >= 4 then raise Killed)
           ~checkpoint_path:path ~checkpoint_every:2 config ~data ~targets
       with
      | _ -> Alcotest.fail "expected the kill to escape Search.run_multi"
      | exception Killed -> ());
      let snapshot =
        match Checkpoint.load ~path with
        | Ok snapshot -> snapshot
        | Error message -> Alcotest.failf "load failed: %s" message
      in
      (match snapshot.Checkpoint.phase with
      | Checkpoint.Evolving [| island0; island1; island2 |] ->
          Alcotest.(check bool) "island 0 finished" true
            (match island0 with Checkpoint.Done _ -> true | _ -> false);
          (match island1 with
          | Checkpoint.In_progress { gen; _ } ->
              Alcotest.(check int) "island 1 checkpointed mid-run" 2 gen
          | _ -> Alcotest.fail "island 1 should be in progress");
          Alcotest.(check bool) "island 2 untouched" true
            (match island2 with Checkpoint.Pending _ -> true | _ -> false)
      | _ -> Alcotest.fail "expected three islands");
      let resumed = Search.run_multi ~seed:9 ~restarts:3 ~resume:snapshot config ~data ~targets in
      Alcotest.(check bool) "resumed merged front bit-identical" true
        (equal full.Search.front resumed.Search.front);
      Alcotest.(check int) "generation accounting unchanged" full.Search.generations_run
        resumed.Search.generations_run)

(* --- SAG resume plumbing ------------------------------------------------- *)

let test_process_front_already_prefix () =
  let data, targets = toy_problem 29 in
  let outcome = Search.run ~seed:31 toy_config ~data ~targets in
  let front = outcome.Search.front in
  Alcotest.(check bool) "front has several models" true (List.length front >= 2);
  let wb = toy_config.Config.wb and wvc = toy_config.Config.wvc in
  let seen = ref [] in
  let on_model index model = seen := (index, model) :: !seen in
  let full = Sag.process_front ~on_model ~wb ~wvc front ~data ~targets in
  let in_order = List.rev !seen in
  Alcotest.(check bool) "on_model sees every index in order" true
    (List.mapi (fun i _ -> i) front = List.map fst in_order);
  (* Resume from a checkpointed prefix: the already-simplified models are
     reused verbatim and only the rest is recomputed. *)
  let already = List.filteri (fun i _ -> i < 2) (List.map snd in_order) in
  let fresh = ref 0 in
  let resumed =
    Sag.process_front
      ~already
      ~on_model:(fun index _ ->
        incr fresh;
        Alcotest.(check bool) "prefix not recomputed" true (index >= 2))
      ~wb ~wvc front ~data ~targets
  in
  Alcotest.(check int) "only the suffix was simplified" (List.length front - 2) !fresh;
  Alcotest.(check bool) "resumed SAG output identical" true (equal full resumed)

let suite =
  [
    Alcotest.test_case "rng state round-trip" `Quick test_rng_state_roundtrip;
    Alcotest.test_case "snapshot round-trip: evolving" `Quick test_snapshot_roundtrip_evolving;
    Alcotest.test_case "snapshot round-trip: simplifying" `Quick test_snapshot_roundtrip_simplifying;
    Alcotest.test_case "load rejects bad input" `Quick test_load_rejects_bad_input;
    Alcotest.test_case "load errors name file and line" `Quick
      test_load_errors_name_file_and_line;
    Alcotest.test_case "validate matches run inputs" `Quick test_validate;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "run: kill/resume bit-identical" `Quick test_run_kill_resume_bit_identical;
    Alcotest.test_case "run_multi: kill/resume bit-identical" `Quick
      test_run_multi_kill_resume_bit_identical;
    Alcotest.test_case "sag: process_front resumes from prefix" `Quick
      test_process_front_already_prefix;
  ]

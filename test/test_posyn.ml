(* Tests for the posynomial baseline: NNLS correctness (including KKT
   conditions) and template fitting. *)

module Nnls = Caffeine_posyn.Nnls
module Posyn = Caffeine_posyn.Posyn
module Matrix = Caffeine_linalg.Matrix
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* --- NNLS --- *)

let test_nnls_recovers_nonnegative_solution () =
  (* Well-posed problem whose unconstrained optimum is already >= 0. *)
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let truth = [| 2.; 3. |] in
  let b = Matrix.mul_vec a truth in
  let x = Nnls.solve a b in
  check_close "x0" 2. x.(0);
  check_close "x1" 3. x.(1)

let test_nnls_clamps_negative_component () =
  (* b is negatively correlated with the only column: solution must be 0,
     not negative. *)
  let a = Matrix.of_arrays [| [| 1. |]; [| 1. |] |] in
  let x = Nnls.solve a [| -1.; -1. |] in
  check_close "clamped at zero" 0. x.(0)

let test_nnls_never_negative () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 30 do
    let a = Matrix.init 15 6 (fun _ _ -> Rng.range rng (-1.) 1.) in
    let b = Array.init 15 (fun _ -> Rng.range rng (-1.) 1.) in
    let x = Nnls.solve a b in
    Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.)) x
  done

let test_nnls_kkt_conditions () =
  (* At the optimum: for active coords (x > 0) the gradient of the residual
     is ~0; for clamped coords it is <= 0 (no descent direction into the
     feasible region). *)
  let rng = Rng.create ~seed:2 () in
  for _ = 1 to 20 do
    let a = Matrix.init 20 5 (fun _ _ -> Rng.range rng (-1.) 1.) in
    let b = Array.init 20 (fun _ -> Rng.range rng (-1.) 1.) in
    let x = Nnls.solve a b in
    let ax = Matrix.mul_vec a x in
    let residual = Array.init 20 (fun i -> b.(i) -. ax.(i)) in
    let gradient = Matrix.mul_vec (Matrix.transpose a) residual in
    Array.iteri
      (fun j g ->
        if x.(j) > 1e-10 then check_close ~tol:1e-5 "active gradient zero" 0. g
        else Alcotest.(check bool) "clamped gradient non-positive" true (g <= 1e-6))
      gradient
  done

let test_nnls_max_active_cap () =
  let rng = Rng.create ~seed:3 () in
  let a = Matrix.init 30 10 (fun _ _ -> Rng.range rng 0. 1.) in
  let b = Array.init 30 (fun _ -> Rng.range rng 0. 5.) in
  let x = Nnls.solve ~max_active:3 a b in
  let active = Array.fold_left (fun acc v -> if v > 0. then acc + 1 else acc) 0 x in
  Alcotest.(check bool) "at most 3 active" true (active <= 3)

let test_nnls_dimension_mismatch () =
  let a = Matrix.of_arrays [| [| 1. |] |] in
  Alcotest.(check bool) "mismatch rejected" true
    (match Nnls.solve a [| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Posyn --- *)

let test_candidate_exponents_structure () =
  let candidates = Posyn.candidate_exponents ~dims:3 ~max_single_exponent:2 in
  (* singles: 3 vars x 4 exponents = 12; pairs: 3 pairs x 4 combos = 12. *)
  Alcotest.(check int) "candidate count" 24 (Array.length candidates);
  Array.iter
    (fun e ->
      let active = Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 e in
      Alcotest.(check bool) "order <= 2" true (active >= 1 && active <= 2))
    candidates

let test_posyn_fits_true_posynomial () =
  (* y = 2*x0 + 3/x1 + 1: a true posynomial, must fit nearly exactly. *)
  let rng = Rng.create ~seed:4 () in
  let inputs = Array.init 60 (fun _ -> [| Rng.range rng 0.5 2.; Rng.range rng 0.5 2. |]) in
  let targets = Array.map (fun x -> 1. +. (2. *. x.(0)) +. (3. /. x.(1))) inputs in
  let model = Posyn.fit ~inputs ~targets () in
  Alcotest.(check bool) "tiny train error" true (model.Posyn.train_error < 0.01);
  let predictions = Posyn.predict model inputs in
  Array.iteri (fun i p -> check_close ~tol:0.05 "prediction" targets.(i) p) predictions

let test_posyn_negative_targets_sign_flip () =
  let rng = Rng.create ~seed:5 () in
  let inputs = Array.init 40 (fun _ -> [| Rng.range rng 0.5 2. |]) in
  let targets = Array.map (fun x -> -.(2. +. (3. *. x.(0))) ) inputs in
  let model = Posyn.fit ~inputs ~targets () in
  Alcotest.(check (float 0.)) "sign flipped" (-1.) model.Posyn.sign;
  Alcotest.(check bool) "fits" true (model.Posyn.train_error < 0.01);
  let predictions = Posyn.predict model inputs in
  Array.iter (fun p -> Alcotest.(check bool) "negative predictions" true (p < 0.)) predictions

let test_posyn_coefficients_nonnegative () =
  let rng = Rng.create ~seed:6 () in
  let inputs = Array.init 50 (fun _ -> Array.init 4 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets = Array.map (fun x -> x.(0) -. (0.8 *. x.(1)) +. (x.(2) /. x.(3))) inputs in
  let model = Posyn.fit ~inputs ~targets () in
  Array.iter
    (fun c -> Alcotest.(check bool) "coefficient >= 0" true (c >= 0.))
    model.Posyn.coefficients

let test_posyn_max_terms_respected () =
  let rng = Rng.create ~seed:7 () in
  let inputs = Array.init 80 (fun _ -> Array.init 5 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets =
    Array.map (fun x -> (x.(0) *. x.(1)) +. (x.(2) /. x.(3)) +. sqrt x.(4)) inputs
  in
  let model = Posyn.fit ~max_terms:5 ~inputs ~targets () in
  Alcotest.(check bool) "term cap" true (Posyn.num_terms model <= 5)

let test_posyn_rejects_nonpositive_inputs () =
  Alcotest.(check bool) "zero input rejected" true
    (match Posyn.fit ~inputs:[| [| 0.5 |]; [| 0. |] |] ~targets:[| 1.; 2. |] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_posyn_non_posynomial_underfits () =
  (* A sign-changing target (sin) cannot be captured well by a posynomial:
     training error should be clearly worse than for the true posynomial
     case. *)
  let rng = Rng.create ~seed:8 () in
  let inputs = Array.init 80 (fun _ -> [| Rng.range rng 0.5 6. |]) in
  let targets = Array.map (fun x -> sin (2. *. x.(0))) inputs in
  let model = Posyn.fit ~inputs ~targets () in
  Alcotest.(check bool) "substantial residual error" true (model.Posyn.train_error > 0.2)

let test_posyn_to_string_mentions_terms () =
  let rng = Rng.create ~seed:9 () in
  let inputs = Array.init 30 (fun _ -> [| Rng.range rng 0.5 2.; Rng.range rng 0.5 2. |]) in
  let targets = Array.map (fun x -> 1. +. (2. *. x.(0))) inputs in
  let model = Posyn.fit ~inputs ~targets () in
  let rendered = Posyn.to_string ~var_names:[| "a"; "b" |] model in
  Alcotest.(check bool) "non-empty" true (String.length rendered > 0)

let property_tests =
  [
    QCheck.Test.make ~name:"nnls solutions always feasible" ~count:60
      QCheck.(triple small_int (int_range 2 20) (int_range 1 8))
      (fun (seed, m, n) ->
        let rng = Rng.create ~seed () in
        let a = Matrix.init (max m n) n (fun _ _ -> Rng.range rng (-2.) 2.) in
        let b = Array.init (max m n) (fun _ -> Rng.range rng (-2.) 2.) in
        let x = Nnls.solve a b in
        Array.for_all (fun v -> v >= 0. && Float.is_finite v) x);
    QCheck.Test.make ~name:"nnls residual never exceeds |b|" ~count:60
      QCheck.(pair small_int (int_range 2 15))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let a = Matrix.init (n + 5) n (fun _ _ -> Rng.range rng (-2.) 2.) in
        let b = Array.init (n + 5) (fun _ -> Rng.range rng (-2.) 2.) in
        let x = Nnls.solve a b in
        let ax = Matrix.mul_vec a x in
        let norm v = sqrt (Array.fold_left (fun acc e -> acc +. (e *. e)) 0. v) in
        let residual = Array.init (n + 5) (fun i -> b.(i) -. ax.(i)) in
        norm residual <= norm b +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "nnls: recovers solution" `Quick test_nnls_recovers_nonnegative_solution;
    Alcotest.test_case "nnls: clamps negatives" `Quick test_nnls_clamps_negative_component;
    Alcotest.test_case "nnls: feasibility" `Quick test_nnls_never_negative;
    Alcotest.test_case "nnls: KKT conditions" `Quick test_nnls_kkt_conditions;
    Alcotest.test_case "nnls: max active cap" `Quick test_nnls_max_active_cap;
    Alcotest.test_case "nnls: dimension mismatch" `Quick test_nnls_dimension_mismatch;
    Alcotest.test_case "posyn: candidate template" `Quick test_candidate_exponents_structure;
    Alcotest.test_case "posyn: fits true posynomial" `Quick test_posyn_fits_true_posynomial;
    Alcotest.test_case "posyn: negative targets" `Quick test_posyn_negative_targets_sign_flip;
    Alcotest.test_case "posyn: non-negative coefficients" `Quick test_posyn_coefficients_nonnegative;
    Alcotest.test_case "posyn: max terms" `Quick test_posyn_max_terms_respected;
    Alcotest.test_case "posyn: positive inputs required" `Quick test_posyn_rejects_nonpositive_inputs;
    Alcotest.test_case "posyn: non-posynomial underfits" `Quick test_posyn_non_posynomial_underfits;
    Alcotest.test_case "posyn: rendering" `Quick test_posyn_to_string_mentions_terms;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

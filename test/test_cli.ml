(* Smoke tests of the command-line interface: each subcommand is executed as
   a subprocess against temporary files.  Skipped silently if the executable
   is not found (e.g. when tests run outside the dune sandbox). *)

let cli_path () =
  (* Tests run in _build/default/test; the CLI is built next door. *)
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/caffeine_cli.exe";
      "../bin/caffeine_cli.exe";
      "_build/default/bin/caffeine_cli.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let run_cli arguments =
  match cli_path () with
  | None -> None
  | Some exe ->
      let command = Filename.quote_command exe arguments in
      let input = Unix.open_process_in (command ^ " 2>&1") in
      let buffer = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buffer input 1
         done
       with End_of_file -> ());
      let status = Unix.close_process_in input in
      Some (status, Buffer.contents buffer)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let expect_success msg arguments fragment =
  match run_cli arguments with
  | None -> () (* executable not found: skip *)
  | Some (status, output) ->
      Alcotest.(check bool) (msg ^ ": exits 0") true (status = Unix.WEXITED 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: output mentions %S" msg fragment)
        true (contains output fragment)

let test_cli_grammar () = expect_success "grammar" [ "grammar" ] "REPVC"

let test_cli_simulate () =
  expect_success "simulate" [ "simulate"; "--set"; "id1=1.2e-5" ] "PM"

let test_cli_gen_data_and_fit () =
  let csv = Filename.temp_file "caffeine_cli" ".csv" in
  expect_success "gen-data" [ "gen-data"; "--dx"; "0.05"; "--out"; csv ] "243 samples";
  if Sys.file_exists csv then begin
    let models = Filename.temp_file "caffeine_cli" ".txt" in
    expect_success "fit"
      [
        "fit"; "--train"; csv; "--target"; "PM"; "--pop"; "20"; "--gens"; "5"; "--seed"; "1";
        "--out"; models;
      ]
      "saved";
    if Sys.file_exists models then begin
      expect_success "predict" [ "predict"; "--models"; models; "--data"; csv; "--target"; "PM" ]
        "expression";
      expect_success "export" [ "export"; "--models"; models; "--language"; "c" ] "math.h";
      Sys.remove models
    end;
    Sys.remove csv
  end

let test_cli_unknown_flag_fails () =
  match run_cli [ "fit"; "--no-such-flag" ] with
  | None -> ()
  | Some (status, _) ->
      Alcotest.(check bool) "nonzero exit" true (status <> Unix.WEXITED 0)

let suite =
  [
    Alcotest.test_case "cli: grammar" `Quick test_cli_grammar;
    Alcotest.test_case "cli: simulate" `Quick test_cli_simulate;
    Alcotest.test_case "cli: gen-data / fit / predict / export" `Slow test_cli_gen_data_and_fit;
    Alcotest.test_case "cli: unknown flag" `Quick test_cli_unknown_flag_fails;
  ]

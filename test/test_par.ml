(* Tests for the domain pool, the executor seam and the determinism
   contract of the parallel search paths: for a fixed seed, every entry
   point must produce results bit-identical to its sequential
   counterpart, whatever the backend or worker count. *)

module Pool = Caffeine_par.Pool
module Executor = Caffeine_par.Executor
module Metrics = Caffeine_obs.Metrics
module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset
module Linfit = Caffeine_regress.Linfit
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag

(* --- pool mechanics --- *)

let test_map_matches_sequential () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun n ->
      let input = Array.init n (fun i -> i) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        (Printf.sprintf "map of %d elements" n)
        (Array.map f input) (Pool.parallel_map pool f input))
    [ 0; 1; 2; 3; 7; 64; 1000 ]

let test_init_matches_sequential () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let f i = float_of_int i *. 1.5 in
  Alcotest.(check (array (float 0.))) "init 100" (Array.init 100 f) (Pool.parallel_init pool 100 f);
  Alcotest.(check (array (float 0.))) "init 0" [||] (Pool.parallel_init pool 0 f)

let test_pool_reuse () =
  (* One pool across many batches — the whole point of keeping domains
     alive between generations. *)
  Pool.with_pool ~jobs:4 @@ fun pool ->
  for round = 1 to 50 do
    let expected = Array.init 37 (fun i -> i * round) in
    let got = Pool.parallel_map pool (fun i -> i * round) (Array.init 37 Fun.id) in
    Alcotest.(check (array int)) (Printf.sprintf "round %d" round) expected got
  done

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  (match Pool.parallel_map pool (fun i -> if i = 13 then raise (Boom i) else i) (Array.init 64 Fun.id) with
  | _ -> Alcotest.fail "expected Boom to escape parallel_map"
  | exception Boom 13 -> ());
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int)) "usable after failure" (Array.init 8 succ)
    (Pool.parallel_map pool succ (Array.init 8 Fun.id))

let test_nested_map_degrades () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let inner i = Pool.parallel_map pool (fun j -> (10 * i) + j) (Array.init 5 Fun.id) in
  let got = Pool.parallel_map pool inner (Array.init 6 Fun.id) in
  let expected = Array.init 6 (fun i -> Array.init 5 (fun j -> (10 * i) + j)) in
  Alcotest.(check bool) "nested results correct" true (got = expected)

let test_sequential_pool () =
  let pool = Pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs clamp" 1 (Pool.jobs pool);
  Alcotest.(check (array int)) "sequential map" [| 2; 3; 4 |]
    (Pool.parallel_map pool succ [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_shutdown_degrades () =
  let pool = Pool.create ~jobs:4 () in
  Pool.shutdown pool;
  Alcotest.(check (array int)) "map after shutdown" [| 1; 2 |]
    (Pool.parallel_map pool succ [| 0; 1 |])

let test_with_optional_pool () =
  Pool.with_optional_pool ~jobs:1 (fun pool ->
      Alcotest.(check bool) "jobs 1 creates no pool" true (pool = None));
  let cores = Domain.recommended_domain_count () in
  Pool.with_optional_pool ~jobs:2 (fun pool ->
      match pool with
      | None ->
          (* On a single-core host every request clamps to sequential. *)
          Alcotest.(check bool) "no pool only when the host has one core" true (cores <= 1)
      | Some p -> Alcotest.(check int) "pool size" (Stdlib.min 2 cores) (Pool.jobs p))

let test_jobs_clamped_to_cores () =
  let cores = Domain.recommended_domain_count () in
  Alcotest.(check int) "auto detects cores" cores (Pool.effective_jobs 0);
  Alcotest.(check int) "negative means auto" cores (Pool.effective_jobs (-3));
  Alcotest.(check int) "requests never exceed cores" cores (Pool.effective_jobs (cores + 7));
  Alcotest.(check int) "small requests honored" 1 (Pool.effective_jobs 1);
  (* A pool never spawns more domains than the machine has cores. *)
  let pool = Pool.create ~jobs:(cores + 16) () in
  Alcotest.(check int) "pool size clamped" cores (Pool.jobs pool);
  Pool.shutdown pool;
  let auto = Pool.create ~jobs:0 () in
  Alcotest.(check int) "jobs 0 is auto" (Pool.effective_jobs 0) (Pool.jobs auto);
  Pool.shutdown auto

(* --- env-driven job selection --- *)

let string_contains ~affix s =
  let n = String.length affix and len = String.length s in
  let rec scan i = i + n <= len && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

let with_env_jobs value f =
  (* [Unix.putenv] cannot unset, so restore to the core count: for the
     auto paths below that is indistinguishable from an unset variable. *)
  let restore = string_of_int (Domain.recommended_domain_count ()) in
  Fun.protect ~finally:(fun () -> Unix.putenv "CAFFEINE_JOBS" restore) (fun () ->
      Unix.putenv "CAFFEINE_JOBS" value;
      f ())

let test_invalid_env_jobs_warns () =
  let cores = Domain.recommended_domain_count () in
  let invalid = Metrics.counter Metrics.default "pool.env_jobs_invalid" in
  ignore (Pool.take_env_warning ());
  List.iter
    (fun value ->
      with_env_jobs value @@ fun () ->
      let before = Metrics.counter_value invalid in
      Alcotest.(check int)
        (Printf.sprintf "%S falls back to all cores" value)
        cores (Pool.effective_jobs 0);
      Alcotest.(check int)
        (Printf.sprintf "%S bumps pool.env_jobs_invalid" value)
        (before + 1) (Metrics.counter_value invalid);
      (match Pool.take_env_warning () with
      | None -> Alcotest.fail (Printf.sprintf "%S left no warning to take" value)
      | Some message ->
          Alcotest.(check bool)
            (Printf.sprintf "%S quoted in the warning" value)
            true
            (string_contains ~affix:(Printf.sprintf "%S" value) message));
      Alcotest.(check bool)
        "warning taken exactly once" true
        (Pool.take_env_warning () = None);
      (* Deduplicated per value: a second clamp of the same setting stays
         silent. *)
      let before = Metrics.counter_value invalid in
      Alcotest.(check int) "same value again" cores (Pool.effective_jobs 0);
      Alcotest.(check int) "no second bump" before (Metrics.counter_value invalid);
      Alcotest.(check bool) "no second warning" true (Pool.take_env_warning () = None))
    [ "abc"; "-2" ];
  (* A valid setting is honored without any warning. *)
  with_env_jobs "1" @@ fun () ->
  Alcotest.(check int) "valid value honored" 1 (Pool.effective_jobs 0);
  Alcotest.(check bool) "no warning for valid value" true (Pool.take_env_warning () = None)

(* --- executor seam --- *)

let test_backend_names () =
  List.iter
    (fun backend ->
      match Executor.backend_of_string (Executor.backend_name backend) with
      | Ok roundtripped ->
          Alcotest.(check bool)
            (Executor.backend_name backend ^ " round-trips")
            true (backend = roundtripped)
      | Error msg -> Alcotest.fail msg)
    [ Executor.Seq; Executor.Domains; Executor.Processes ];
  match Executor.backend_of_string "threads" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error msg -> Alcotest.(check bool) "error lists spellings" true (msg <> "")

let test_executor_map_all_backends () =
  let input = Array.init 200 Fun.id in
  let expected = Array.map succ input in
  Alcotest.(check (array int)) "seq map" expected (Executor.map Executor.sequential succ input);
  Alcotest.(check (array int)) "seq init" input (Executor.init Executor.sequential 200 Fun.id);
  Executor.with_executor ~jobs:4 Executor.Domains (fun executor ->
      Alcotest.(check (array int)) "domains map" expected (Executor.map executor succ input));
  (* A Processes executor maps sequentially on the calling side: its
     parallelism lives at the island level, not in [map]. *)
  Executor.with_executor ~shards:4 Executor.Processes (fun executor ->
      Alcotest.(check bool) "processes carries shard count" true (Executor.shards executor >= 1);
      Alcotest.(check bool) "processes owns no pool" true (Executor.pool executor = None);
      Alcotest.(check (array int)) "processes map" expected (Executor.map executor succ input))

let test_executor_nested_falls_back () =
  Executor.with_executor ~jobs:4 Executor.Domains @@ fun executor ->
  let inner i = Executor.map executor (fun j -> (10 * i) + j) (Array.init 5 Fun.id) in
  let got = Executor.map executor inner (Array.init 6 Fun.id) in
  let expected = Array.init 6 (fun i -> Array.init 5 (fun j -> (10 * i) + j)) in
  Alcotest.(check bool) "nested executor maps degrade sequentially" true (got = expected)

let test_executor_of_pool_borrows () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let executor = Executor.of_pool pool in
  Alcotest.(check bool) "borrowed executor is Domains" true
    (Executor.backend executor = Executor.Domains);
  Alcotest.(check (array int)) "borrowed map" [| 1; 2; 3 |]
    (Executor.map executor succ [| 0; 1; 2 |]);
  Executor.shutdown executor;
  (* Shutdown of a borrowed pool is a no-op: the owner keeps using it. *)
  Alcotest.(check (array int)) "pool survives borrowed shutdown" [| 1 |]
    (Pool.parallel_map pool succ [| 0 |])

(* --- dataset cache under the parallel contract --- *)

let square_basis k = Expr.{ vc = Some [| k |]; factors = [] }

let test_dataset_clear_cache () =
  let data = Dataset.of_rows [| [| 2. |]; [| 3. |] |] in
  ignore (Dataset.basis_column data (square_basis 2));
  ignore (Dataset.basis_column data (square_basis 3));
  Alcotest.(check int) "two cached" 2 (Dataset.cached_columns data);
  Dataset.clear_cache data;
  Alcotest.(check int) "cleared" 0 (Dataset.cached_columns data);
  Alcotest.(check bool) "recomputes after clear" true
    (Dataset.basis_column data (square_basis 2) = [| 4.; 9. |])

let test_dataset_cache_limit () =
  let data = Dataset.of_rows [| [| 2. |]; [| 3. |] |] in
  Alcotest.(check bool) "default limit positive" true (Dataset.cache_limit data > 0);
  Dataset.set_cache_limit data 16;
  Alcotest.(check int) "limit recorded" 16 (Dataset.cache_limit data);
  for k = 1 to 200 do
    ignore (Dataset.basis_column data (square_basis (k mod 7)))
  done;
  Alcotest.(check bool) "cache stays bounded" true (Dataset.cached_columns data <= 16);
  (match Dataset.set_cache_limit data 0 with
  | () -> Alcotest.fail "limit 0 should be rejected"
  | exception Invalid_argument _ -> ());
  (* Values survive eviction churn: always recomputed or cached, same answer. *)
  Alcotest.(check bool) "value unchanged" true
    (Dataset.basis_column data (square_basis 2) = [| 4.; 9. |])

let test_dataset_concurrent_reads () =
  let rows = Array.init 64 (fun i -> [| 1.0 +. (float_of_int i /. 10.) |]) in
  let data = Dataset.of_rows rows in
  let expected = Array.init 6 (fun k -> Dataset.basis_column data (square_basis (k + 1))) in
  Dataset.clear_cache data;
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let got =
    Pool.parallel_init pool 48 (fun i -> Dataset.basis_column data (square_basis ((i mod 6) + 1)))
  in
  Array.iteri
    (fun i col ->
      Alcotest.(check bool) (Printf.sprintf "column %d" i) true (col = expected.(i mod 6)))
    got

(* --- determinism: parallel == sequential, bit for bit --- *)

let front_signature var_names front =
  List.map
    (fun (m : Model.t) ->
      ( m.Model.train_error,
        m.Model.complexity,
        m.Model.intercept,
        Array.to_list m.Model.weights,
        Model.to_string ~var_names m ))
    front

let toy_problem seed =
  let rng = Rng.create ~seed () in
  let inputs = Array.init 40 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets =
    Array.map (fun x -> (x.(0) *. x.(0)) +. (1. /. x.(1)) +. (0.3 *. x.(2))) inputs
  in
  (inputs, targets)

let test_run_deterministic () =
  let inputs, targets = toy_problem 5 in
  let config = Config.scaled ~pop_size:16 ~generations:8 ~jobs:1 Config.default in
  List.iter
    (fun seed ->
      let sequential =
        let data = Dataset.of_rows inputs in
        Search.run ~seed config ~data ~targets
      in
      let parallel =
        let data = Dataset.of_rows inputs in
        Executor.with_executor ~jobs:4 Executor.Domains @@ fun executor ->
        Search.run ~seed ~executor config ~data ~targets
      in
      let names = Dataset.var_names (Dataset.of_rows inputs) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: identical fronts" seed)
        true
        (front_signature names sequential.Search.front
        = front_signature names parallel.Search.front))
    [ 3; 17; 41 ]

let test_run_multi_deterministic () =
  let inputs, targets = toy_problem 6 in
  let config = Config.scaled ~pop_size:14 ~generations:6 ~jobs:1 Config.default in
  let names = Dataset.var_names (Dataset.of_rows inputs) in
  List.iter
    (fun seed ->
      let sequential =
        let data = Dataset.of_rows inputs in
        Search.run_multi ~seed ~restarts:3 config ~data ~targets
      in
      let parallel =
        let data = Dataset.of_rows inputs in
        Executor.with_executor ~jobs:4 Executor.Domains @@ fun executor ->
        Search.run_multi ~seed ~executor ~restarts:3 config ~data ~targets
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: identical merged fronts" seed)
        true
        (front_signature names sequential.Search.front
        = front_signature names parallel.Search.front))
    [ 9; 23 ]

let test_run_multi_prefix_property () =
  let inputs, targets = toy_problem 7 in
  let config = Config.scaled ~pop_size:14 ~generations:6 ~jobs:1 Config.default in
  let names = Dataset.var_names (Dataset.of_rows inputs) in
  let front restarts =
    let data = Dataset.of_rows inputs in
    (Search.run_multi ~seed:12 ~restarts config ~data ~targets).Search.front
  in
  let one = front_signature names (front 1) in
  let three = front_signature names (front 3) in
  (* Island 0 of the 3-restart run is exactly the 1-restart run, so every
     model of the merged 3-front either appears in the 1-front or dominates
     part of it; at minimum the merge is deterministic and reproducible. *)
  Alcotest.(check bool) "three-restart front reproducible" true
    (three = front_signature names (front 3));
  Alcotest.(check bool) "one-restart front reproducible" true
    (one = front_signature names (front 1))

let test_sag_deterministic () =
  let inputs, targets = toy_problem 8 in
  let config = Config.scaled ~pop_size:16 ~generations:8 ~jobs:1 Config.default in
  let wb = config.Config.wb and wvc = config.Config.wvc in
  let names = Dataset.var_names (Dataset.of_rows inputs) in
  let data = Dataset.of_rows inputs in
  let outcome = Search.run ~seed:19 config ~data ~targets in
  let sequential = Sag.process_front ~wb ~wvc outcome.Search.front ~data ~targets in
  let parallel =
    Executor.with_executor ~jobs:4 Executor.Domains @@ fun executor ->
    Sag.process_front ~executor ~wb ~wvc outcome.Search.front ~data ~targets
  in
  Alcotest.(check bool) "identical simplified fronts" true
    (front_signature names sequential = front_signature names parallel)

let test_forward_select_deterministic () =
  let rng = Rng.create ~seed:44 () in
  let n = 60 in
  let columns = Array.init 25 (fun _ -> Array.init n (fun _ -> Rng.range rng (-1.) 1.)) in
  (* Make a few columns degenerate/unusable on purpose. *)
  columns.(3) <- Array.make n 0.;
  columns.(7) <- Array.map (fun c -> c *. Float.nan) columns.(7);
  let targets =
    Array.init n (fun i -> (2. *. columns.(0).(i)) -. columns.(5).(i) +. (0.1 *. columns.(12).(i)))
  in
  let sequential = Linfit.forward_select ~max_bases:6 ~basis_values:columns ~targets () in
  let parallel =
    Executor.with_executor ~jobs:4 Executor.Domains @@ fun executor ->
    Linfit.forward_select ~executor ~max_bases:6 ~basis_values:columns ~targets ()
  in
  Alcotest.(check (array int)) "identical selection" sequential parallel;
  Alcotest.(check bool) "selected something" true (Array.length sequential > 0)

let test_config_jobs_path () =
  (* config.jobs > 1 without an explicit pool must also match jobs = 1. *)
  let inputs, targets = toy_problem 9 in
  let names = Dataset.var_names (Dataset.of_rows inputs) in
  let front jobs =
    let data = Dataset.of_rows inputs in
    let config = Config.scaled ~pop_size:12 ~generations:5 ~jobs Config.default in
    (Search.run ~seed:27 config ~data ~targets).Search.front
  in
  Alcotest.(check bool) "jobs=3 == jobs=1" true
    (front_signature names (front 1) = front_signature names (front 3))

let suite =
  [
    Alcotest.test_case "pool: map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "pool: init matches sequential" `Quick test_init_matches_sequential;
    Alcotest.test_case "pool: reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "pool: exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "pool: nested map degrades" `Quick test_nested_map_degrades;
    Alcotest.test_case "pool: sequential pool" `Quick test_sequential_pool;
    Alcotest.test_case "pool: shutdown degrades" `Quick test_shutdown_degrades;
    Alcotest.test_case "pool: with_optional_pool" `Quick test_with_optional_pool;
    Alcotest.test_case "pool: jobs clamped to cores" `Quick test_jobs_clamped_to_cores;
    Alcotest.test_case "pool: invalid CAFFEINE_JOBS warns" `Quick test_invalid_env_jobs_warns;
    Alcotest.test_case "executor: backend names" `Quick test_backend_names;
    Alcotest.test_case "executor: map on every backend" `Quick test_executor_map_all_backends;
    Alcotest.test_case "executor: nested maps fall back" `Quick test_executor_nested_falls_back;
    Alcotest.test_case "executor: of_pool borrows" `Quick test_executor_of_pool_borrows;
    Alcotest.test_case "dataset: clear cache" `Quick test_dataset_clear_cache;
    Alcotest.test_case "dataset: cache limit" `Quick test_dataset_cache_limit;
    Alcotest.test_case "dataset: concurrent reads" `Quick test_dataset_concurrent_reads;
    Alcotest.test_case "determinism: run" `Quick test_run_deterministic;
    Alcotest.test_case "determinism: run_multi" `Quick test_run_multi_deterministic;
    Alcotest.test_case "determinism: run_multi prefix" `Quick test_run_multi_prefix_property;
    Alcotest.test_case "determinism: sag" `Quick test_sag_deterministic;
    Alcotest.test_case "determinism: forward_select" `Quick test_forward_select_deterministic;
    Alcotest.test_case "determinism: config jobs path" `Quick test_config_jobs_path;
  ]

(* Tests for the observability layer: the domain-safe metrics registry
   (counters, gauges, timers, fixed-bucket histograms) and the JSONL trace
   codec, including the jobs-invariant deterministic projection that CI
   diffs across --jobs settings. *)

module Metrics = Caffeine_obs.Metrics
module Trace = Caffeine_obs.Trace
module Pool = Caffeine_par.Pool
module Executor = Caffeine_par.Executor
module Rng = Caffeine_util.Rng
module Config = Caffeine.Config
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Dataset = Caffeine_io.Dataset

(* --- metrics registry --- *)

let test_counter_and_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Alcotest.(check int) "fresh counter is zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  let c' = Metrics.counter reg "c" in
  Metrics.incr c';
  Alcotest.(check int) "re-registration returns the same handle" 43 (Metrics.counter_value c);
  let g = Metrics.gauge reg "g" in
  Alcotest.(check (float 0.)) "fresh gauge is zero" 0. (Metrics.gauge_value g);
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g (-1.5);
  Alcotest.(check (float 0.)) "last write wins" (-1.5) (Metrics.gauge_value g);
  (match Metrics.gauge reg "c" with
  | _ -> Alcotest.fail "kind mismatch should be rejected"
  | exception Invalid_argument _ -> ());
  (match Metrics.timer reg "g" with
  | _ -> Alcotest.fail "kind mismatch should be rejected"
  | exception Invalid_argument _ -> ())

let test_timer () =
  let reg = Metrics.create () in
  let t = Metrics.timer reg "t" in
  Metrics.record_span t ~start_ns:100L ~stop_ns:350L;
  Alcotest.(check int) "span count" 1 (Metrics.timer_count t);
  Alcotest.(check int) "span total" 250 (Metrics.timer_total_ns t);
  (* A backwards span (clock glitch) is clamped at zero, never negative. *)
  Metrics.record_span t ~start_ns:500L ~stop_ns:400L;
  Alcotest.(check int) "backwards span counted" 2 (Metrics.timer_count t);
  Alcotest.(check int) "backwards span clamped" 250 (Metrics.timer_total_ns t);
  Alcotest.(check int) "time returns the thunk's value" 7 (Metrics.time t (fun () -> 7));
  Alcotest.(check int) "time records a span" 3 (Metrics.timer_count t);
  (match Metrics.time t (fun () -> raise Exit) with
  | _ -> Alcotest.fail "expected Exit to escape"
  | exception Exit -> ());
  Alcotest.(check int) "span recorded even on exception" 4 (Metrics.timer_count t)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.; 2.; 5. |] "h" in
  (* Buckets are upper-inclusive: the exact bound lands in its own bucket,
     the next float above it in the following one.  NaN and anything above
     the last bound go to the overflow bucket. *)
  List.iter (Metrics.observe h)
    [
      0.5;
      1.0;
      Float.neg_infinity;
      Float.succ 1.0;
      2.0;
      5.0;
      Float.succ 5.0;
      Float.nan;
      Float.infinity;
    ];
  Alcotest.(check (array int)) "bucket counts" [| 3; 2; 1; 3 |] (Metrics.bucket_counts h);
  Alcotest.(check (array (float 0.))) "bounds preserved" [| 1.; 2.; 5. |] (Metrics.bucket_bounds h);
  let h' = Metrics.histogram reg ~buckets:[| 1.; 2.; 5. |] "h" in
  Metrics.observe h' 0.;
  Alcotest.(check (array int)) "same bounds share counts" [| 4; 2; 1; 3 |]
    (Metrics.bucket_counts h);
  (match Metrics.histogram reg ~buckets:[| 1.; 2. |] "h" with
  | _ -> Alcotest.fail "different bounds should be rejected"
  | exception Invalid_argument _ -> ());
  (match Metrics.histogram reg ~buckets:[||] "empty" with
  | _ -> Alcotest.fail "empty bounds should be rejected"
  | exception Invalid_argument _ -> ());
  (match Metrics.histogram reg ~buckets:[| 2.; 2. |] "flat" with
  | _ -> Alcotest.fail "non-increasing bounds should be rejected"
  | exception Invalid_argument _ -> ())

let test_snapshot_and_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "z.counter" in
  let g = Metrics.gauge reg "a.gauge" in
  let t = Metrics.timer reg "m.timer" in
  Metrics.add c 5;
  Metrics.set_gauge g 1.25;
  Metrics.record_span t ~start_ns:0L ~stop_ns:1000L;
  let snap = Metrics.snapshot reg in
  Alcotest.(check (list string)) "sorted by name" [ "a.gauge"; "m.timer"; "z.counter" ]
    (List.map fst snap);
  (match List.assoc "z.counter" snap with
  | Metrics.Counter 5 -> ()
  | _ -> Alcotest.fail "counter snapshot value");
  (match List.assoc "m.timer" snap with
  | Metrics.Timer { count = 1; total_ns = 1000 } -> ()
  | _ -> Alcotest.fail "timer snapshot value");
  Alcotest.(check bool) "render mentions every metric" true
    (List.for_all
       (fun (name, _) ->
         let rendered = Metrics.render snap in
         let len = String.length name in
         let rec occurs i =
           i + len <= String.length rendered && (String.sub rendered i len = name || occurs (i + 1))
         in
         occurs 0)
       snap);
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "reset zeroes gauges" 0. (Metrics.gauge_value g);
  Alcotest.(check int) "reset keeps handles valid" 0 (Metrics.timer_count t);
  Metrics.incr c;
  Alcotest.(check int) "handles usable after reset" 1 (Metrics.counter_value c)

let test_concurrent_counters_exact () =
  (* The registry's core claim: increments from pool worker domains are
     atomic read-modify-write, so no count is ever lost to a race. *)
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hits" in
  let h = Metrics.histogram reg ~buckets:[| 10.; 100. |] "obs" in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 2000 in
  ignore
    (Pool.parallel_init pool n (fun i ->
         Metrics.incr c;
         Metrics.observe h (float_of_int (i mod 200));
         i));
  Alcotest.(check int) "exact count across domains" n (Metrics.counter_value c);
  Alcotest.(check int) "exact histogram total across domains" n
    (Array.fold_left ( + ) 0 (Metrics.bucket_counts h))

(* --- trace codec --- *)

let float_gen : float QCheck.Gen.t =
  QCheck.Gen.frequency
    [
      (6, QCheck.Gen.float);
      (2, QCheck.Gen.float_range (-1e6) 1e6);
      ( 1,
        QCheck.Gen.oneofl
          [
            Float.nan;
            Float.infinity;
            Float.neg_infinity;
            0.;
            -0.;
            Float.min_float;
            Float.max_float;
            4e-324;
          ] );
    ]

(* qcheck-1 generators are plain [Random.State.t -> 'a] functions, which
   keeps building a sum-of-records generator direct. *)
let record_gen : Trace.record QCheck.Gen.t =
 fun st ->
  let nat st =
    QCheck.Gen.frequency [ (8, QCheck.Gen.int_bound 1000); (1, QCheck.Gen.oneofl [ 0; 1; max_int ]) ] st
  in
  let text st =
    QCheck.Gen.frequency
      [
        (4, QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'z') (QCheck.Gen.int_bound 12));
        (1, QCheck.Gen.oneofl [ ""; "with \"quotes\" and \\slash"; "line\nbreak\ttab" ]);
      ]
      st
  in
  match QCheck.Gen.int_bound 11 st with
  | 0 ->
      Trace.Run_start
        {
          Trace.seed = nat st;
          pop_size = nat st;
          generations = nat st;
          max_bases = nat st;
          samples = nat st;
          dims = nat st;
        }
  | 1 ->
      let ops = QCheck.Gen.int_bound 12 st in
      Trace.Generation
        {
          Trace.gen = nat st;
          evals = nat st;
          front_size = nat st;
          best_nmse = float_gen st;
          median_nmse = float_gen st;
          complexity_min = float_gen st;
          complexity_median = float_gen st;
          complexity_max = float_gen st;
          crossovers = nat st;
          op_counts = Array.init ops (fun _ -> nat st);
          depth_rejects = nat st;
          behavioral_diversity = nat st - 1;
          wall_s = float_gen st;
        }
  | 2 ->
      Trace.Sag_round
        {
          Trace.model_index = nat st;
          round = nat st;
          chosen = nat st;
          press_before = float_gen st;
          press_after = float_gen st;
        }
  | 3 -> Trace.Sag_model { Trace.model_index = nat st; bases_before = nat st; bases_after = nat st }
  | 4 ->
      Trace.Cache_stats
        {
          Trace.columns_cached = nat st;
          column_hits = nat st;
          column_misses = nat st;
          column_evictions = nat st;
          dots_cached = nat st;
          dot_hits = nat st;
          dot_misses = nat st;
          dot_evictions = nat st;
        }
  | 5 ->
      let k = QCheck.Gen.int_bound 6 st in
      Trace.Run_end
        { Trace.front = List.init k (fun _ -> (float_gen st, float_gen st)); total_wall_s = float_gen st }
  | 6 ->
      Trace.Checkpoint_written
        {
          Trace.path = text st;
          phase = QCheck.Gen.oneofl [ "evolving"; "simplifying" ] st;
          island = nat st - 1;
          gen = nat st - 1;
        }
  | 7 ->
      Trace.Run_resumed
        {
          Trace.phase = QCheck.Gen.oneofl [ "evolving"; "simplifying" ] st;
          island = nat st - 1;
          gen = nat st - 1;
        }
  | 8 ->
      Trace.Migration { Trace.island = nat st; shard = nat st; models = nat st; bytes = nat st }
  | 9 ->
      let ops = QCheck.Gen.int_bound 12 st in
      Trace.Op_stats
        {
          Trace.gen = nat st;
          applied = Array.init ops (fun _ -> nat st);
          changed = Array.init ops (fun _ -> nat st);
        }
  | 10 ->
      Trace.Eval_cache_stats
        { Trace.eval_hits = nat st; eval_misses = nat st; eval_evictions = nat st }
  | _ -> Trace.Warning { Trace.context = text st; message = text st }

let record_arbitrary = QCheck.make ~print:Trace.to_line record_gen

(* Structural equality through [compare]: polymorphic [=] is false on any
   record containing NaN, which the codec must nevertheless round-trip. *)
let record_equal a b = compare a b = 0

let roundtrip_test =
  QCheck.Test.make ~name:"every record round-trips through the JSONL codec" ~count:500
    record_arbitrary (fun r ->
      match Trace.of_line (Trace.to_line r) with
      | Ok r' -> record_equal r r'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let single_line_test =
  QCheck.Test.make ~name:"encoded records are single JSONL lines" ~count:200 record_arbitrary
    (fun r -> not (String.contains (Trace.to_line r) '\n'))

let deterministic_projection_test =
  QCheck.Test.make ~name:"deterministic projection is idempotent and round-trips" ~count:300
    record_arbitrary (fun r ->
      match Trace.deterministic r with
      | None -> (
          match r with Trace.Cache_stats _ | Trace.Eval_cache_stats _ -> true | _ -> false)
      | Some d -> (
          (match r with Trace.Cache_stats _ | Trace.Eval_cache_stats _ -> false | _ -> true)
          && (match Trace.deterministic d with
             | Some d' -> record_equal d d'
             | None -> false)
          &&
          match Trace.of_line (Trace.to_line d) with
          | Ok d' -> record_equal d d'
          | Error _ -> false))

let test_deterministic_zeroes_wall () =
  let g =
    Trace.Generation
      {
        Trace.gen = 3;
        evals = 60;
        front_size = 9;
        best_nmse = 0.05;
        median_nmse = 0.2;
        complexity_min = 1.;
        complexity_median = 4.;
        complexity_max = 11.;
        crossovers = 17;
        op_counts = [| 1; 2; 3 |];
        depth_rejects = 2;
        behavioral_diversity = 42;
        wall_s = 0.123;
      }
  in
  (match Trace.deterministic g with
  | Some (Trace.Generation p) ->
      Alcotest.(check (float 0.)) "wall_s zeroed" 0. p.Trace.wall_s;
      Alcotest.(check int) "count fields kept" 17 p.Trace.crossovers;
      Alcotest.(check int) "behavioral diversity kept" 42 p.Trace.behavioral_diversity
  | _ -> Alcotest.fail "generation should project to a generation");
  match Trace.deterministic (Trace.Run_end { Trace.front = [ (3., 0.1) ]; total_wall_s = 9. }) with
  | Some (Trace.Run_end p) ->
      Alcotest.(check (float 0.)) "total_wall_s zeroed" 0. p.Trace.total_wall_s;
      Alcotest.(check int) "front kept" 1 (List.length p.Trace.front)
  | _ -> Alcotest.fail "run_end should project to a run_end"

let test_deterministic_keeps_checkpoint_records () =
  (* Checkpointed runs serialize their islands, so these records arrive in
     the same order at every jobs setting — the projection must keep them
     verbatim for the CI cross-jobs diff to cover them. *)
  let records =
    [
      Trace.Checkpoint_written { Trace.path = "run.ckpt"; phase = "evolving"; island = 2; gen = 40 };
      Trace.Run_resumed { Trace.phase = "simplifying"; island = -1; gen = 3 };
      Trace.Warning { Trace.context = "sag.test_tradeoff"; message = "fallback" };
    ]
  in
  List.iter
    (fun r ->
      match Trace.deterministic r with
      | Some r' -> Alcotest.(check bool) "kept verbatim" true (record_equal r r')
      | None -> Alcotest.fail "checkpoint/resume/warning records must survive the projection")
    records

let test_migration_codec_and_projection () =
  let m = Trace.Migration { Trace.island = 3; shard = 2; models = 7; bytes = 4096 } in
  (match Trace.of_line (Trace.to_line m) with
  | Ok m' -> Alcotest.(check bool) "migration round-trips" true (record_equal m m')
  | Error e -> Alcotest.fail e);
  (* Which worker served an island depends on --shard, so the projection
     zeroes the shard field; the rest — which island, how many models, the
     wire size of the front — is shard-invariant and must survive for the
     cross-shard CI diff. *)
  match Trace.deterministic m with
  | Some (Trace.Migration p) ->
      Alcotest.(check int) "shard zeroed" 0 p.Trace.shard;
      Alcotest.(check int) "island kept" 3 p.Trace.island;
      Alcotest.(check int) "models kept" 7 p.Trace.models;
      Alcotest.(check int) "bytes kept" 4096 p.Trace.bytes
  | _ -> Alcotest.fail "migration should project to a migration"

let test_fn_sink () =
  let seen = ref [] in
  let sink = Trace.of_fn (fun r -> seen := r :: !seen) in
  Alcotest.(check bool) "fn sink is live" false (Trace.is_null sink);
  let records =
    [
      Trace.Migration { Trace.island = 0; shard = 1; models = 2; bytes = 64 };
      Trace.Warning { Trace.context = "t"; message = "m" };
    ]
  in
  List.iter (Trace.emit sink) records;
  Alcotest.(check bool) "fn sink sees every record in order" true
    (record_equal records (List.rev !seen));
  Alcotest.(check int) "fn sink retains nothing itself" 0 (List.length (Trace.contents sink))

let test_of_line_rejects_garbage () =
  let rejected line =
    match Trace.of_line line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (rejected "not json at all");
  Alcotest.(check bool) "unknown type" true (rejected {|{"type":"bogus"}|});
  Alcotest.(check bool) "missing fields" true (rejected {|{"type":"sag_model","model_index":1}|});
  Alcotest.(check bool) "no type tag" true (rejected {|{"gen":1}|});
  Alcotest.(check bool) "truncated" true (rejected {|{"type":"run_end","front":[[1.0,|})

let test_sinks () =
  Alcotest.(check bool) "null is null" true (Trace.is_null Trace.null);
  Trace.emit Trace.null (Trace.Sag_model { Trace.model_index = 0; bases_before = 3; bases_after = 2 });
  Alcotest.(check int) "null collects nothing" 0 (List.length (Trace.contents Trace.null));
  let sink = Trace.memory () in
  Alcotest.(check bool) "memory sink is live" false (Trace.is_null sink);
  let records =
    [
      Trace.Sag_model { Trace.model_index = 0; bases_before = 3; bases_after = 2 };
      Trace.Sag_round
        { Trace.model_index = 0; round = 0; chosen = 4; press_before = 2.0; press_after = 1.5 };
      Trace.Run_end { Trace.front = [ (1., 0.5) ]; total_wall_s = 0.1 };
    ]
  in
  List.iter (Trace.emit sink) records;
  Alcotest.(check bool) "memory preserves emission order" true
    (record_equal records (Trace.contents sink))

let test_channel_sink () =
  let path = Filename.temp_file "caffeine_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let records =
        [
          Trace.Run_start
            { Trace.seed = 9; pop_size = 20; generations = 5; max_bases = 13; samples = 40; dims = 3 };
          Trace.Run_end { Trace.front = [ (2., 0.25); (5., 0.1) ]; total_wall_s = 1.5 };
        ]
      in
      let oc = open_out path in
      let sink = Trace.of_channel oc in
      List.iter (Trace.emit sink) records;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let decoded =
        List.rev_map (fun line -> Result.get_ok (Trace.of_line line)) !lines
      in
      Alcotest.(check bool) "channel sink writes decodable JSONL" true
        (record_equal records decoded))

(* --- trace determinism under the parallel contract --- *)

let toy_problem seed =
  let rng = Rng.create ~seed () in
  let inputs = Array.init 40 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets =
    Array.map (fun x -> (x.(0) *. x.(0)) +. (1. /. x.(1)) +. (0.3 *. x.(2))) inputs
  in
  (inputs, targets)

let test_trace_jobs_invariant () =
  let inputs, targets = toy_problem 31 in
  let config = Config.scaled ~pop_size:14 ~generations:6 ~jobs:1 Config.default in
  let capture use_pool =
    let data = Dataset.of_rows inputs in
    let sink = Trace.memory () in
    let run executor =
      let outcome = Search.run ~seed:21 ~executor ~trace:sink config ~data ~targets in
      ignore
        (Sag.process_front ~executor ~trace:sink ~wb:config.Config.wb ~wvc:config.Config.wvc
           outcome.Search.front ~data ~targets)
    in
    if use_pool then Executor.with_executor ~jobs:4 Executor.Domains run
    else run Executor.sequential;
    Trace.contents sink
  in
  let sequential = capture false in
  let parallel = capture true in
  let project records = List.filter_map Trace.deterministic records in
  Alcotest.(check bool) "deterministic projections identical across jobs" true
    (record_equal (project sequential) (project parallel));
  (match sequential with
  | Trace.Run_start s :: _ -> Alcotest.(check int) "run_start carries the seed" 21 s.Trace.seed
  | _ -> Alcotest.fail "first record is not run_start");
  let generations =
    List.length
      (List.filter (function Trace.Generation _ -> true | _ -> false) sequential)
  in
  Alcotest.(check int) "one generation record per generation plus init" 7 generations;
  Alcotest.(check int) "exactly one run_end" 1
    (List.length (List.filter (function Trace.Run_end _ -> true | _ -> false) sequential))

(* --- pool exception path feeds the abandoned-tasks counter --- *)

exception Boom

let test_pool_abandoned_counter () =
  let c = Metrics.counter Metrics.default "pool.tasks_abandoned" in
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let before = Metrics.counter_value c in
      let n = 64 in
      (match
         Pool.parallel_map pool (fun i -> if i = 13 then raise Boom else i) (Array.init n Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom to escape parallel_map"
      | exception Boom -> ());
      let delta = Metrics.counter_value c - before in
      if Pool.jobs pool > 1 then begin
        (* The failing task itself never completes, so at least one task is
           always abandoned; at most the whole batch is. *)
        Alcotest.(check bool) "at least the failing task abandoned" true (delta >= 1);
        Alcotest.(check bool) "no more than the batch abandoned" true (delta <= n)
      end
      else
        (* Single-core host: the batch stays on the sequential path, which
           abandons nothing; CI's multi-core matrix exercises the real one. *)
        Alcotest.(check int) "sequential path leaves the counter alone" 0 delta)

let suite =
  [
    Alcotest.test_case "metrics: counter and gauge" `Quick test_counter_and_gauge;
    Alcotest.test_case "metrics: timer" `Quick test_timer;
    Alcotest.test_case "metrics: histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "metrics: snapshot and reset" `Quick test_snapshot_and_reset;
    Alcotest.test_case "metrics: concurrent counts exact" `Quick test_concurrent_counters_exact;
    Alcotest.test_case "trace: deterministic zeroes wall" `Quick test_deterministic_zeroes_wall;
    Alcotest.test_case "trace: of_line rejects garbage" `Quick test_of_line_rejects_garbage;
    Alcotest.test_case "trace: projection keeps checkpoint records" `Quick
      test_deterministic_keeps_checkpoint_records;
    Alcotest.test_case "trace: sinks" `Quick test_sinks;
    Alcotest.test_case "trace: fn sink" `Quick test_fn_sink;
    Alcotest.test_case "trace: migration codec and projection" `Quick
      test_migration_codec_and_projection;
    Alcotest.test_case "trace: channel sink" `Quick test_channel_sink;
    Alcotest.test_case "trace: jobs-invariant projection" `Quick test_trace_jobs_invariant;
    Alcotest.test_case "pool: abandoned tasks counted" `Quick test_pool_abandoned_counter;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ roundtrip_test; single_line_test; deterministic_projection_test ]

(* Tests for the grammar representation, text-format parser, validation, and
   the designer rule-toggles. *)

module Grammar = Caffeine_grammar.Grammar

let parse_ok text =
  match Grammar.parse text with
  | Ok g -> g
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_parse_single_rule () =
  let g = parse_ok "S => 'a' | S 'b'\n" in
  Alcotest.(check string) "start" "S" (Grammar.start g);
  Alcotest.(check int) "two alternatives" 2 (List.length (Grammar.productions g "S"))

let test_parse_terminals_vs_nonterminals () =
  let g = parse_ok "S => 'a' T\nT => 'b'\n" in
  (match Grammar.productions g "S" with
  | [ [ Grammar.Terminal "a"; Grammar.Nonterminal "T" ] ] -> ()
  | _ -> Alcotest.fail "unexpected production structure");
  Alcotest.(check (list string)) "terminals" [ "a"; "b" ] (Grammar.terminals g)

let test_parse_continuation_lines () =
  let g = parse_ok "S => 'a'\n  | 'b'\n  | 'c'\n" in
  Alcotest.(check int) "three alternatives" 3 (List.length (Grammar.productions g "S"))

let test_parse_comments_and_blanks () =
  let g = parse_ok "# header comment\n\nS => 'a' # trailing comment\n\n" in
  Alcotest.(check int) "one alternative" 1 (List.length (Grammar.productions g "S"))

let test_parse_error_cases () =
  let expect_error text =
    match Grammar.parse text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error _ -> ()
  in
  expect_error "";
  expect_error "S 'a'\n";
  expect_error "| 'a'\n";
  expect_error "S => 'unterminated\n";
  expect_error "S => 'a' | | 'b'\n";
  expect_error "S => 'a'\nS => 'b'\n"

let test_roundtrip_text () =
  let g = parse_ok "S => 'a' T | T\nT => 'b' | T '*' T\n" in
  let g2 = parse_ok (Grammar.to_text g) in
  Alcotest.(check string) "same start" (Grammar.start g) (Grammar.start g2);
  List.iter
    (fun nt ->
      Alcotest.(check bool) "same productions" true
        (Grammar.productions g nt = Grammar.productions g2 nt))
    (Grammar.nonterminals g)

let test_validate_ok () =
  let g = parse_ok "S => 'a' | S 'b'\n" in
  Alcotest.(check bool) "valid" true (Grammar.validate g = Ok ())

let test_validate_undefined_nonterminal () =
  let g = parse_ok "S => T\n" in
  match Grammar.validate g with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error msgs ->
      Alcotest.(check bool) "mentions T" true
        (List.exists (fun m -> String.length m > 0 && String.index_opt m 'T' <> None) msgs)

let test_validate_unreachable () =
  let g = parse_ok "S => 'a'\nU => 'b'\n" in
  match Grammar.validate g with
  | Ok () -> Alcotest.fail "expected unreachable error"
  | Error msgs -> Alcotest.(check bool) "has message" true (List.length msgs > 0)

let test_validate_unproductive () =
  (* L can never terminate: every alternative mentions L. *)
  let g = parse_ok "S => L\nL => L 'x'\n" in
  match Grammar.validate g with
  | Ok () -> Alcotest.fail "expected productivity error"
  | Error msgs -> Alcotest.(check bool) "has message" true (List.length msgs > 0)

let test_caffeine_grammar_valid () =
  Alcotest.(check bool) "caffeine grammar validates" true
    (Grammar.validate Grammar.caffeine = Ok ())

let test_caffeine_grammar_structure () =
  let g = Grammar.caffeine in
  Alcotest.(check string) "start symbol" "REPVC" (Grammar.start g);
  let terminals = Grammar.terminals g in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " present") true (List.mem t terminals))
    [ "VC"; "W"; "DIVIDE"; "POW"; "MAX"; "MIN"; "LOG10"; "INV"; "LTE"; "SIN" ];
  List.iter
    (fun nt -> Alcotest.(check bool) (nt ^ " defined") true (Grammar.has_nonterminal g nt))
    [ "REPVC"; "REPOP"; "REPADD"; "MAYBEW"; "2ARGS"; "1OP"; "2OP" ]

let test_remove_terminal () =
  let g = Grammar.caffeine in
  let without_sin = Grammar.remove_terminal g "SIN" in
  Alcotest.(check bool) "SIN gone" false (List.mem "SIN" (Grammar.terminals without_sin));
  Alcotest.(check bool) "still valid" true (Grammar.validate without_sin = Ok ());
  Alcotest.(check bool) "COS kept" true (List.mem "COS" (Grammar.terminals without_sin))

let test_remove_terminal_breaking_raises () =
  (* Removing 'a' leaves T with no alternatives while still reachable. *)
  let g = parse_ok "S => T\nT => 'a'\n" in
  Alcotest.(check bool) "breaking removal rejected" true
    (match Grammar.remove_terminal g "a" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_restrict_terminals () =
  let g = Grammar.caffeine in
  let keep t = not (List.mem t [ "SIN"; "COS"; "TAN" ]) in
  let restricted = Grammar.restrict_terminals g ~keep in
  Alcotest.(check bool) "no trig" true
    (List.for_all (fun t -> keep t) (Grammar.terminals restricted));
  Alcotest.(check bool) "still valid" true (Grammar.validate restricted = Ok ())

let test_of_rules_duplicate_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (match
       Grammar.of_rules ~start:"S"
         [ ("S", [ [ Grammar.Terminal "a" ] ]); ("S", [ [ Grammar.Terminal "b" ] ]) ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_of_rules_missing_start_rejected () =
  Alcotest.(check bool) "missing start rejected" true
    (match Grammar.of_rules ~start:"X" [ ("S", [ [ Grammar.Terminal "a" ] ]) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_opset_of_grammar () =
  let opset = Caffeine.Opset.of_grammar Grammar.caffeine in
  Alcotest.(check int) "13 unary ops" 13 (Array.length opset.Caffeine.Opset.unops);
  Alcotest.(check int) "4 binary ops" 4 (Array.length opset.Caffeine.Opset.binops);
  Alcotest.(check bool) "lte enabled" true opset.Caffeine.Opset.allow_lte;
  Alcotest.(check bool) "vc enabled" true opset.Caffeine.Opset.allow_vc

let test_opset_of_restricted_grammar () =
  let g = Grammar.remove_terminal Grammar.caffeine "LTE" in
  let g = Grammar.remove_terminal g "SIN" in
  let opset = Caffeine.Opset.of_grammar g in
  Alcotest.(check bool) "lte disabled" false opset.Caffeine.Opset.allow_lte;
  Alcotest.(check int) "12 unary ops" 12 (Array.length opset.Caffeine.Opset.unops)

let suite =
  [
    Alcotest.test_case "parse: single rule" `Quick test_parse_single_rule;
    Alcotest.test_case "parse: terminals vs nonterminals" `Quick test_parse_terminals_vs_nonterminals;
    Alcotest.test_case "parse: continuations" `Quick test_parse_continuation_lines;
    Alcotest.test_case "parse: comments" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "parse: error cases" `Quick test_parse_error_cases;
    Alcotest.test_case "round-trip through text" `Quick test_roundtrip_text;
    Alcotest.test_case "validate: ok" `Quick test_validate_ok;
    Alcotest.test_case "validate: undefined nonterminal" `Quick test_validate_undefined_nonterminal;
    Alcotest.test_case "validate: unreachable" `Quick test_validate_unreachable;
    Alcotest.test_case "validate: unproductive" `Quick test_validate_unproductive;
    Alcotest.test_case "caffeine grammar: valid" `Quick test_caffeine_grammar_valid;
    Alcotest.test_case "caffeine grammar: structure" `Quick test_caffeine_grammar_structure;
    Alcotest.test_case "remove terminal" `Quick test_remove_terminal;
    Alcotest.test_case "remove terminal: breaking" `Quick test_remove_terminal_breaking_raises;
    Alcotest.test_case "restrict terminals" `Quick test_restrict_terminals;
    Alcotest.test_case "of_rules: duplicate" `Quick test_of_rules_duplicate_rejected;
    Alcotest.test_case "of_rules: missing start" `Quick test_of_rules_missing_start_rejected;
    Alcotest.test_case "opset from grammar" `Quick test_opset_of_grammar;
    Alcotest.test_case "opset from restricted grammar" `Quick test_opset_of_restricted_grammar;
  ]

(* Tests for canonical-form expression trees: evaluation, structural
   measures, validation, simplification, and printing, plus qcheck
   properties over randomly generated grammar-conforming trees. *)

module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* handy constructors *)
let vc exponents = { Expr.vc = Some exponents; factors = [] }
let wsum ?(bias = 0.) terms = { Expr.bias; terms }

(* --- int_pow --- *)

let test_int_pow () =
  check_close "x^0" 1. (Expr.int_pow 5. 0);
  check_close "x^3" 8. (Expr.int_pow 2. 3);
  check_close "x^-2" 0.25 (Expr.int_pow 2. (-2));
  check_close "(-2)^3" (-8.) (Expr.int_pow (-2.) 3);
  check_close "(-2)^2" 4. (Expr.int_pow (-2.) 2);
  Alcotest.(check bool) "0^-1 is nan" true (Float.is_nan (Expr.int_pow 0. (-1)))

(* --- ops --- *)

let test_op_safety () =
  Alcotest.(check bool) "sqrt(-1) nan" true (Float.is_nan (Op.apply_unary Op.Sqrt (-1.)));
  Alcotest.(check bool) "ln(0) nan" true (Float.is_nan (Op.apply_unary Op.Log_e 0.));
  Alcotest.(check bool) "log10(-3) nan" true (Float.is_nan (Op.apply_unary Op.Log_10 (-3.)));
  Alcotest.(check bool) "1/0 nan" true (Float.is_nan (Op.apply_unary Op.Inv 0.));
  Alcotest.(check bool) "x/0 nan" true (Float.is_nan (Op.apply_binary Op.Div 1. 0.));
  check_close "max0" 3. (Op.apply_unary Op.Max0 3.);
  check_close "max0 clamps" 0. (Op.apply_unary Op.Max0 (-3.));
  check_close "min0 clamps" (-3.) (Op.apply_unary Op.Min0 (-3.));
  check_close "min0" 0. (Op.apply_unary Op.Min0 3.);
  check_close "exp2" 8. (Op.apply_unary Op.Exp2 3.);
  check_close "exp10" 100. (Op.apply_unary Op.Exp10 2.);
  check_close "pow" 9. (Op.apply_binary Op.Pow 3. 2.);
  check_close "max" 5. (Op.apply_binary Op.Max 5. 2.);
  check_close "min" 2. (Op.apply_binary Op.Min 5. 2.)

let test_op_names_roundtrip () =
  List.iter
    (fun op ->
      match Op.unary_of_name (Op.unary_name op) with
      | Some back -> Alcotest.(check bool) "unary round-trip" true (back = op)
      | None -> Alcotest.fail "unary name not recognized")
    Op.all_unary;
  List.iter
    (fun op ->
      match Op.binary_of_name (Op.binary_name op) with
      | Some back -> Alcotest.(check bool) "binary round-trip" true (back = op)
      | None -> Alcotest.fail "binary name not recognized")
    Op.all_binary

(* --- evaluation --- *)

let test_eval_vc () =
  (* x0 * x2^-2 at (3, 9, 2) = 3/4 *)
  check_close "rational monomial" 0.75 (Expr.eval_vc [| 1; 0; -2 |] [| 3.; 9.; 2. |])

let test_eval_basis_product () =
  (* basis = x0 * ln(1 + 2*x1): at x = (2, 3): 2 * ln(7) *)
  let b =
    {
      Expr.vc = Some [| 1; 0 |];
      factors = [ Expr.Unary (Op.Log_e, wsum ~bias:1. [ (2., vc [| 0; 1 |]) ]) ];
    }
  in
  check_close "product of vc and op" (2. *. log 7.) (Expr.eval_basis b [| 2.; 3. |])

let test_eval_binary_div () =
  (* div(1 + x0, x1) at (3, 8) = 0.5 *)
  let b =
    {
      Expr.vc = None;
      factors =
        [
          Expr.Binary
            (Op.Div, Expr.Sum (wsum ~bias:1. [ (1., vc [| 1; 0 |]) ]), Expr.Const 8.);
        ];
    }
  in
  check_close "division" 0.5 (Expr.eval_basis b [| 3.; 0. |])

let test_eval_lte_branches () =
  let lte threshold =
    {
      Expr.vc = None;
      factors =
        [
          Expr.Lte
            {
              test = wsum ~bias:0. [ (1., vc [| 1 |]) ];
              threshold = Expr.Const threshold;
              less = Expr.Const 10.;
              otherwise = Expr.Const 20.;
            };
        ];
    }
  in
  check_close "below threshold" 10. (Expr.eval_basis (lte 5.) [| 3. |]);
  check_close "above threshold" 20. (Expr.eval_basis (lte 2.) [| 3. |])

let test_eval_nan_propagates () =
  let b = { Expr.vc = None; factors = [ Expr.Unary (Op.Log_e, wsum ~bias:(-1.) []) ] } in
  Alcotest.(check bool) "nan result" true (Float.is_nan (Expr.eval_basis b [| 1. |]))

let test_eval_wsum () =
  let ws = wsum ~bias:2. [ (3., vc [| 1 |]); (-1., vc [| 2 |]) ] in
  (* 2 + 3x - x^2 at x=4: 2 + 12 - 16 = -2 *)
  check_close "weighted sum" (-2.) (Expr.eval_wsum ws [| 4. |])

(* --- structure --- *)

let test_nnodes_counts () =
  Alcotest.(check int) "plain vc" 1 (Expr.nnodes_basis (vc [| 1; 0 |]));
  let b = { Expr.vc = Some [| 1 |]; factors = [ Expr.Unary (Op.Inv, wsum ~bias:1. [ (2., vc [| 1 |]) ]) ] } in
  (* vc(1) + op(1) + bias(1) + term weight(1) + inner vc(1) = 5 *)
  Alcotest.(check int) "nested count" 5 (Expr.nnodes_basis b)

let test_nnodes_subterm_monotone () =
  let inner = wsum ~bias:1. [ (2., vc [| 1 |]) ] in
  let small = { Expr.vc = None; factors = [ Expr.Unary (Op.Inv, inner) ] } in
  let large = { Expr.vc = Some [| 1 |]; factors = [ Expr.Unary (Op.Inv, inner); Expr.Unary (Op.Abs, inner) ] } in
  Alcotest.(check bool) "monotone" true (Expr.nnodes_basis small < Expr.nnodes_basis large)

let test_depth () =
  Alcotest.(check int) "flat" 1 (Expr.depth_basis (vc [| 1 |]));
  let nested =
    {
      Expr.vc = None;
      factors =
        [
          Expr.Unary
            ( Op.Inv,
              wsum ~bias:0.
                [ (1., { Expr.vc = None; factors = [ Expr.Unary (Op.Abs, wsum ~bias:1. [ (1., vc [| 1 |]) ]) ] }) ] );
        ];
    }
  in
  Alcotest.(check bool) "nested deeper" true (Expr.depth_basis nested > 2)

let test_vcs_of_basis () =
  let b =
    {
      Expr.vc = Some [| 1; 0 |];
      factors = [ Expr.Unary (Op.Inv, wsum ~bias:0. [ (1., vc [| 0; -1 |]) ]) ];
    }
  in
  Alcotest.(check int) "two vcs" 2 (List.length (Expr.vcs_of_basis b))

let test_variables_of_basis () =
  let b =
    {
      Expr.vc = Some [| 1; 0; 0 |];
      factors = [ Expr.Unary (Op.Inv, wsum ~bias:0. [ (1., vc [| 0; 0; 2 |]) ]) ];
    }
  in
  Alcotest.(check (list int)) "variables 0 and 2" [ 0; 2 ] (Expr.variables_of_basis b)

(* --- validation --- *)

let test_check_accepts_valid () =
  let b = vc [| 1; -2; 0 |] in
  Alcotest.(check bool) "valid" true (Expr.check ~dims:3 b = Ok ())

let test_check_rejects_bad () =
  let all_zero = vc [| 0; 0 |] in
  Alcotest.(check bool) "all-zero vc" true (Expr.check ~dims:2 all_zero <> Ok ());
  let wrong_width = vc [| 1 |] in
  Alcotest.(check bool) "wrong width" true (Expr.check ~dims:2 wrong_width <> Ok ());
  let empty = { Expr.vc = None; factors = [] } in
  Alcotest.(check bool) "empty basis" true (Expr.check ~dims:2 empty <> Ok ());
  let nan_weight = { Expr.vc = None; factors = [ Expr.Unary (Op.Abs, wsum ~bias:Float.nan []) ] } in
  Alcotest.(check bool) "nan weight" true (Expr.check ~dims:2 nan_weight <> Ok ())

(* --- simplification --- *)

let test_simplify_constant_factor_extracted () =
  (* abs(-3) * x0 simplifies to scale 3, basis x0. *)
  let b =
    { Expr.vc = Some [| 1 |]; factors = [ Expr.Unary (Op.Abs, wsum ~bias:(-3.) []) ] }
  in
  let scale, simplified = Expr.simplify_basis b in
  check_close "scale" 3. scale;
  match simplified with
  | Some s ->
      Alcotest.(check bool) "no factors left" true (s.Expr.factors = []);
      Alcotest.(check bool) "vc kept" true (s.Expr.vc = Some [| 1 |])
  | None -> Alcotest.fail "expected a residual basis"

let test_simplify_pure_constant () =
  let b = { Expr.vc = None; factors = [ Expr.Unary (Op.Square, wsum ~bias:2. []) ] } in
  let scale, simplified = Expr.simplify_basis b in
  check_close "folded" 4. scale;
  Alcotest.(check bool) "fully constant" true (simplified = None)

let test_simplify_drops_zero_weight_terms () =
  let b =
    {
      Expr.vc = None;
      factors =
        [ Expr.Unary (Op.Abs, wsum ~bias:1. [ (0., vc [| 1 |]); (2., vc [| 1 |]) ]) ];
    }
  in
  let _, simplified = Expr.simplify_basis b in
  match simplified with
  | Some { Expr.factors = [ Expr.Unary (_, inner) ]; _ } ->
      Alcotest.(check int) "one term kept" 1 (List.length inner.Expr.terms)
  | Some _ | None -> Alcotest.fail "unexpected shape"

let test_simplify_preserves_value () =
  let rng = Rng.create ~seed:5 () in
  let opset = Caffeine.Opset.default in
  let x = [| 1.7; 0.6; 2.2 |] in
  for _ = 1 to 200 do
    let b = Caffeine.Gen.random_basis rng opset ~dims:3 ~depth:5 ~max_vc_vars:2 in
    let original = Expr.eval_basis b x in
    let scale, simplified = Expr.simplify_basis b in
    let recovered =
      match simplified with None -> scale | Some s -> scale *. Expr.eval_basis s x
    in
    if Float.is_finite original then
      check_close ~tol:1e-6 "simplify preserves value" original recovered
  done

(* --- printing --- *)

let names = [| "id1"; "id2"; "vds2" |]

let test_print_rational () =
  Alcotest.(check string) "ratio" "id2 / vds2" (Expr.basis_to_string ~var_names:names (vc [| 0; 1; -1 |]));
  Alcotest.(check string) "pure denominator" "1 / (id1*vds2)"
    (Expr.basis_to_string ~var_names:names (vc [| -1; 0; -1 |]));
  Alcotest.(check string) "power" "id1^2" (Expr.basis_to_string ~var_names:names (vc [| 2; 0; 0 |]))

let test_print_term_folds_weight () =
  Alcotest.(check string) "weight over denominator" "22.2 / vds2"
    (Expr.term_to_string ~var_names:names 22.2 (vc [| 0; 0; -1 |]));
  Alcotest.(check string) "weight times ratio" "22.2 * id2 / vds2"
    (Expr.term_to_string ~var_names:names 22.2 (vc [| 0; 1; -1 |]))

let test_print_wsum_signs () =
  let ws = wsum ~bias:90.5 [ (186.6, vc [| 1; 0; 0 |]); (-1.14, vc [| -1; 0; 0 |]) ] in
  Alcotest.(check string) "paper style" "90.5 + 186.6 * id1 - 1.14 / id1"
    (Expr.wsum_to_string ~var_names:names ws)

let test_print_unary () =
  let b =
    { Expr.vc = None; factors = [ Expr.Unary (Op.Log_e, wsum ~bias:2. [ (1., vc [| 1; 0; 0 |]) ]) ] }
  in
  Alcotest.(check string) "ln rendering" "ln(2 + id1)" (Expr.basis_to_string ~var_names:names b)

(* --- qcheck properties over generated trees --- *)

let generated_basis =
  let gen =
    QCheck.Gen.map
      (fun (seed, depth) ->
        let rng = Rng.create ~seed () in
        Caffeine.Gen.random_basis rng Caffeine.Opset.default ~dims:4 ~depth ~max_vc_vars:3)
      QCheck.Gen.(pair int (int_range 1 8))
  in
  QCheck.make gen

let property_tests =
  [
    QCheck.Test.make ~name:"generated bases satisfy canonical invariants" ~count:300
      generated_basis (fun b -> Expr.check ~dims:4 b = Ok ());
    QCheck.Test.make ~name:"generated bases respect the depth budget" ~count:300
      (QCheck.make
         (QCheck.Gen.map
            (fun (seed, depth) ->
              let rng = Rng.create ~seed () in
              ( depth,
                Caffeine.Gen.random_basis rng Caffeine.Opset.default ~dims:4 ~depth
                  ~max_vc_vars:3 ))
            QCheck.Gen.(pair int (int_range 1 8))))
      (fun (depth, b) -> Expr.depth_basis b <= max 1 depth);
    QCheck.Test.make ~name:"nnodes positive and >= depth" ~count:300 generated_basis (fun b ->
        let nodes = Expr.nnodes_basis b in
        nodes >= 1 || b.Expr.vc = None);
    QCheck.Test.make ~name:"printing never raises and is non-empty" ~count:300 generated_basis
      (fun b ->
        String.length (Expr.basis_to_string ~var_names:[| "a"; "b"; "c"; "d" |] b) > 0);
    QCheck.Test.make ~name:"eval is deterministic" ~count:200 generated_basis (fun b ->
        let x = [| 1.3; 0.7; 2.1; 0.4 |] in
        let v1 = Expr.eval_basis b x and v2 = Expr.eval_basis b x in
        (Float.is_nan v1 && Float.is_nan v2) || v1 = v2);
  ]

let suite =
  [
    Alcotest.test_case "int_pow" `Quick test_int_pow;
    Alcotest.test_case "op safety" `Quick test_op_safety;
    Alcotest.test_case "op name round-trip" `Quick test_op_names_roundtrip;
    Alcotest.test_case "eval: vc" `Quick test_eval_vc;
    Alcotest.test_case "eval: product basis" `Quick test_eval_basis_product;
    Alcotest.test_case "eval: binary div" `Quick test_eval_binary_div;
    Alcotest.test_case "eval: lte branches" `Quick test_eval_lte_branches;
    Alcotest.test_case "eval: nan propagates" `Quick test_eval_nan_propagates;
    Alcotest.test_case "eval: weighted sum" `Quick test_eval_wsum;
    Alcotest.test_case "nnodes: counts" `Quick test_nnodes_counts;
    Alcotest.test_case "nnodes: monotone" `Quick test_nnodes_subterm_monotone;
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "vcs_of_basis" `Quick test_vcs_of_basis;
    Alcotest.test_case "variables_of_basis" `Quick test_variables_of_basis;
    Alcotest.test_case "check: valid" `Quick test_check_accepts_valid;
    Alcotest.test_case "check: invalid" `Quick test_check_rejects_bad;
    Alcotest.test_case "simplify: constant factor" `Quick test_simplify_constant_factor_extracted;
    Alcotest.test_case "simplify: pure constant" `Quick test_simplify_pure_constant;
    Alcotest.test_case "simplify: zero-weight terms" `Quick test_simplify_drops_zero_weight_terms;
    Alcotest.test_case "simplify: value-preserving" `Quick test_simplify_preserves_value;
    Alcotest.test_case "print: rational forms" `Quick test_print_rational;
    Alcotest.test_case "print: weight folding" `Quick test_print_term_folds_weight;
    Alcotest.test_case "print: signed sums" `Quick test_print_wsum_signs;
    Alcotest.test_case "print: unary" `Quick test_print_unary;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

(* Tests for the compiled evaluation engine: tape lowering agrees with the
   tree interpreter on random bases (including NaN/∞ propagation), and the
   full structural hash distinguishes deep bases that collide under the
   depth-bounded polymorphic [Hashtbl.hash]. *)

module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Compiled = Caffeine_expr.Compiled
module Dataset = Caffeine_io.Dataset
module Opset = Caffeine.Opset
module Gen = Caffeine.Gen

(* NaN-aware agreement: both NaN, or bitwise-comparable specials, or within
   1e-12 relative tolerance. *)
let agree expected actual =
  if Float.is_nan expected then Float.is_nan actual
  else if Float.is_nan actual then false
  else if expected = actual then true (* covers ±∞ and exact zeros *)
  else Float.abs (expected -. actual) <= 1e-12 *. Float.max 1. (Float.abs expected)

let check_agree msg expected actual =
  if not (agree expected actual) then
    Alcotest.failf "%s: interpreter %.17g, compiled %.17g" msg expected actual

(* --- property: compiled = interpreted on random bases ------------------- *)

let random_matrix rng ~n ~dims =
  Array.init n (fun _ ->
      Array.init dims (fun _ ->
          (* Mix benign magnitudes with zeros and negatives so that domain
             errors (ln of negatives, 0^-e, tan poles) actually occur. *)
          match Rng.int rng 8 with
          | 0 -> 0.
          | 1 -> -.Rng.range rng 0.1 3.0
          | _ -> Rng.range rng 0.05 4.0))

let test_random_bases_agree () =
  let rng = Rng.create ~seed:2026 () in
  for trial = 1 to 200 do
    let dims = 1 + Rng.int rng 6 in
    let depth = 2 + Rng.int rng 5 in
    let basis = Gen.random_basis rng Opset.default ~dims ~depth ~max_vc_vars:dims in
    let n = 3 + Rng.int rng 15 in
    let rows = random_matrix rng ~n ~dims in
    let compiled = Compiled.compile basis in
    (* Point evaluation. *)
    Array.iteri
      (fun i row ->
        check_agree
          (Printf.sprintf "trial %d point %d" trial i)
          (Expr.eval_basis basis row)
          (Compiled.eval_point compiled row))
      rows;
    (* Column evaluation over the whole matrix. *)
    let data = Dataset.of_rows rows in
    let column = Dataset.eval_column compiled data in
    Array.iteri
      (fun i row ->
        check_agree
          (Printf.sprintf "trial %d column %d" trial i)
          (Expr.eval_basis basis row) column.(i))
      rows
  done

(* --- targeted NaN / ∞ cases --------------------------------------------- *)

let vc_basis exponents = Expr.{ vc = Some exponents; factors = [] }

let check_all_evals msg basis point =
  let expected = Expr.eval_basis basis point in
  let compiled = Compiled.compile basis in
  check_agree (msg ^ " (point)") expected (Compiled.eval_point compiled point);
  let data = Dataset.of_rows [| point |] in
  check_agree (msg ^ " (column)") expected (Dataset.eval_column compiled data).(0)

let test_negative_exponent_on_zero () =
  (* x0^-1 at x0 = 0 is nan (int_pow's convention), not an infinity. *)
  check_all_evals "0^-1" (vc_basis [| -1 |]) [| 0. |];
  check_all_evals "0^-3 * x1" (vc_basis [| -3; 1 |]) [| 0.; 2.5 |];
  (* Positive exponents at zero stay finite. *)
  check_all_evals "0^2" (vc_basis [| 2 |]) [| 0. |]

let test_lte_nan_propagation () =
  (* The conditional is NaN-strict in its test and threshold: if either is
     nan the whole factor is nan even when a branch is finite. *)
  let lte ~test_bias ~threshold =
    Expr.
      {
        vc = None;
        factors =
          [
            Lte
              {
                test = { bias = test_bias; terms = [ (1., vc_basis [| 1 |]) ] };
                threshold;
                less = Const 10.;
                otherwise = Const 20.;
              };
          ];
      }
  in
  (* NaN test: x0^-1 at 0 inside the test wsum. *)
  let nan_test =
    Expr.
      {
        vc = None;
        factors =
          [
            Lte
              {
                test = { bias = 0.; terms = [ (1., vc_basis [| -1 |]) ] };
                threshold = Const 1.;
                less = Const 10.;
                otherwise = Const 20.;
              };
          ];
      }
  in
  check_all_evals "nan test" nan_test [| 0. |];
  Alcotest.(check bool) "nan test is nan" true
    (Float.is_nan (Expr.eval_basis nan_test [| 0. |]));
  (* NaN threshold. *)
  let nan_threshold =
    lte ~test_bias:0. ~threshold:(Expr.Sum { bias = 0.; terms = [ (1., vc_basis [| -2 |]) ] })
  in
  check_all_evals "nan threshold" nan_threshold [| 0. |];
  (* Finite case selects per sample: both branches exercised in one column. *)
  let finite = lte ~test_bias:0. ~threshold:(Expr.Const 1.) in
  let rows = [| [| 0.5 |]; [| 3. |]; [| 1. |] |] in
  let column = Dataset.eval_column (Compiled.compile finite) (Dataset.of_rows rows) in
  Array.iteri
    (fun i row -> check_agree (Printf.sprintf "select %d" i) (Expr.eval_basis finite row) column.(i))
    rows

let test_infinity_propagation () =
  (* exp10 of a large sum overflows to +∞; the enclosing product keeps it. *)
  let basis =
    Expr.
      {
        vc = Some [| 1 |];
        factors = [ Unary (Op.Exp10, { bias = 400.; terms = [] }) ];
      }
  in
  check_all_evals "inf product" basis [| 2. |];
  check_all_evals "0 * inf = nan" basis [| 0. |];
  (* ln of a negative constant is nan through any further operator. *)
  let nan_chain =
    Expr.
      {
        vc = None;
        factors =
          [
            Unary
              ( Op.Sqrt,
                {
                  bias = 0.;
                  terms =
                    [
                      ( 1.,
                        {
                          vc = None;
                          factors = [ Unary (Op.Log_e, { bias = -5.; terms = [] }) ];
                        } );
                    ];
                } );
          ];
      }
  in
  check_all_evals "nan chain" nan_chain [| 1. |]

let test_empty_vc_basis () =
  (* vc = None: the implicit leading factor is 1. *)
  let basis =
    Expr.{ vc = None; factors = [ Unary (Op.Square, { bias = 1.5; terms = [] }) ] }
  in
  check_all_evals "no-vc basis" basis [| 7. |];
  (* And with several factors, the product folds left in the same order. *)
  let multi =
    Expr.
      {
        vc = None;
        factors =
          [
            Unary (Op.Abs, { bias = -2.; terms = [] });
            Unary (Op.Inv, { bias = 4.; terms = [ (0.5, vc_basis [| 1 |]) ] });
          ];
      }
  in
  check_all_evals "multi-factor" multi [| 3. |]

(* --- structural hash vs the depth-bounded polymorphic hash -------------- *)

(* A chain of [depth] unary operators around a leaf monomial: deep enough
   that [Hashtbl.hash]'s bounded traversal never reaches the leaf. *)
let deep_chain ~depth leaf_exponent =
  let rec wrap d basis =
    if d = 0 then basis
    else wrap (d - 1) Expr.{ vc = None; factors = [ Unary (Op.Sqrt, { bias = 0.; terms = [ (1., basis) ] }) ] }
  in
  wrap depth (vc_basis [| leaf_exponent |])

let test_structural_hash_beats_polymorphic () =
  let a = deep_chain ~depth:25 1 in
  let b = deep_chain ~depth:25 2 in
  Alcotest.(check bool) "distinct bases" false (Expr.equal_basis a b);
  (* The regression: the polymorphic hash cannot see past its traversal
     bound, so the two deep bases collide... *)
  Alcotest.(check int) "polymorphic hash collides" (Hashtbl.hash a) (Hashtbl.hash b);
  (* ...while the full structural hash separates them. *)
  Alcotest.(check bool) "structural hash separates" false
    (Compiled.hash_basis a = Compiled.hash_basis b)

let test_hash_respects_equality () =
  let rng = Rng.create ~seed:7 () in
  for _ = 1 to 50 do
    let dims = 1 + Rng.int rng 4 in
    let basis = Gen.random_basis rng Opset.default ~dims ~depth:5 ~max_vc_vars:dims in
    (* Equal bases hash equally, and the hash is non-negative. *)
    let copy = Expr.{ vc = basis.vc; factors = basis.factors } in
    Alcotest.(check int) "hash of equal" (Compiled.hash_basis basis) (Compiled.hash_basis copy);
    Alcotest.(check bool) "non-negative" true (Compiled.hash_basis basis >= 0)
  done;
  (* Weights participate: a mutated inner weight is a different column. *)
  let with_weight w =
    Expr.{ vc = None; factors = [ Unary (Op.Sin, { bias = 0.; terms = [ (w, vc_basis [| 1 |]) ] }) ] }
  in
  Alcotest.(check bool) "weight changes hash" false
    (Compiled.hash_basis (with_weight 2.) = Compiled.hash_basis (with_weight 2.0000001))

let test_tbl_keys_deep_bases () =
  (* The hash-consing table keeps deep near-identical bases apart. *)
  let tbl = Compiled.Tbl.create 16 in
  let a = deep_chain ~depth:25 1 and b = deep_chain ~depth:25 2 in
  Compiled.Tbl.replace tbl a 1;
  Compiled.Tbl.replace tbl b 2;
  Alcotest.(check int) "two entries" 2 (Compiled.Tbl.length tbl);
  Alcotest.(check int) "a" 1 (Compiled.Tbl.find tbl a);
  Alcotest.(check int) "b" 2 (Compiled.Tbl.find tbl b)

(* --- fold-order fidelity ------------------------------------------------- *)

let test_fold_order_matches_interpreter () =
  (* Products and weighted sums are order-sensitive in floating point; the
     tape must reproduce the interpreter's association exactly, so the
     comparison here is bit-for-bit equality, not a tolerance. *)
  let rng = Rng.create ~seed:99 () in
  for _ = 1 to 100 do
    let dims = 3 in
    let basis = Gen.random_basis rng Opset.default ~dims ~depth:6 ~max_vc_vars:3 in
    let point = Array.init dims (fun _ -> Rng.range rng 0.3 1.7) in
    let expected = Expr.eval_basis basis point in
    let actual = Compiled.eval_point (Compiled.compile basis) point in
    if Float.is_nan expected then Alcotest.(check bool) "nan" true (Float.is_nan actual)
    else
      Alcotest.(check bool) "bit-identical" true
        (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float actual))
  done

let suite =
  [
    Alcotest.test_case "random bases agree with interpreter" `Quick test_random_bases_agree;
    Alcotest.test_case "negative exponent on zero" `Quick test_negative_exponent_on_zero;
    Alcotest.test_case "Lte NaN propagation" `Quick test_lte_nan_propagation;
    Alcotest.test_case "infinity propagation" `Quick test_infinity_propagation;
    Alcotest.test_case "empty-vc bases" `Quick test_empty_vc_basis;
    Alcotest.test_case "structural hash vs polymorphic collision" `Quick
      test_structural_hash_beats_polymorphic;
    Alcotest.test_case "hash respects equality" `Quick test_hash_respects_equality;
    Alcotest.test_case "hash-consed table separates deep bases" `Quick test_tbl_keys_deep_bases;
    Alcotest.test_case "fold order is bit-identical" `Quick test_fold_order_matches_interpreter;
  ]

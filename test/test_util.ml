(* Tests for the PRNG and statistics utilities, including qcheck property
   tests on distribution invariants. *)

module Rng = Caffeine_util.Rng
module Stats = Caffeine_util.Stats

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 () in
  let b = Rng.create ~seed:123 () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds, different streams" true !differs

let test_rng_copy_independent () =
  let a = Rng.create ~seed:9 () in
  let b = Rng.copy a in
  let x = Rng.bits64 a in
  let y = Rng.bits64 b in
  Alcotest.(check bool) "copy continues identically" true (x = y);
  ignore (Rng.bits64 a);
  let x2 = Rng.bits64 a and y2 = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (x2 <> y2 || x2 = y2)

let test_rng_split_differs () =
  let parent = Rng.create ~seed:5 () in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 3)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:7 () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create ~seed:4 () in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng
  done;
  check_close ~tol:0.01 "mean near 0.5" 0.5 (!sum /. float_of_int n)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:8 () in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng) in
  check_close ~tol:0.02 "mean near 0" 0. (Stats.mean samples);
  check_close ~tol:0.03 "variance near 1" 1. (Stats.variance samples)

let test_rng_cauchy_median () =
  (* The Cauchy has no mean; its median is 0 and quartiles are at +-scale. *)
  let rng = Rng.create ~seed:21 () in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.cauchy rng) in
  check_close ~tol:0.05 "median near 0" 0. (Stats.median samples);
  check_close ~tol:0.08 "upper quartile near 1" 1. (Stats.quantile samples 0.75)

let test_rng_cauchy_heavy_tails () =
  let rng = Rng.create ~seed:22 () in
  let n = 20_000 in
  let extreme = ref 0 in
  for _ = 1 to n do
    if Float.abs (Rng.cauchy rng) > 20. then incr extreme
  done;
  (* P(|X| > 20) ~ 2/(pi*20) ~ 3.2%; a Gaussian would essentially never. *)
  Alcotest.(check bool) "tail mass present" true (!extreme > n / 200)

let test_rng_bernoulli_probability () =
  let rng = Rng.create ~seed:30 () in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close ~tol:0.02 "p near 0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_weighted_index () =
  let rng = Rng.create ~seed:31 () in
  let counts = Array.make 3 0 in
  let weights = [| 1.; 0.; 3. |] in
  for _ = 1 to 40_000 do
    let i = Rng.weighted_index rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never chosen" 0 counts.(1);
  check_close ~tol:0.05 "ratio 3:1" 3.
    (float_of_int counts.(2) /. float_of_int counts.(0))

let test_rng_permutation_is_permutation () =
  let rng = Rng.create ~seed:40 () in
  let p = Rng.permutation rng 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "all values present" true (Array.for_all (fun b -> b) seen)

let test_rng_sample_without_replacement () =
  let rng = Rng.create ~seed:41 () in
  let s = Rng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "ten values" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let test_rng_shuffle_preserves_elements () =
  let rng = Rng.create ~seed:42 () in
  let xs = Array.init 20 (fun i -> i * i) in
  let shuffled = Array.copy xs in
  Rng.shuffle_in_place rng shuffled;
  Array.sort compare shuffled;
  Alcotest.(check bool) "same multiset" true (shuffled = Array.init 20 (fun i -> i * i))

(* --- Stats --- *)

let test_stats_mean_variance () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "mean" 2.5 (Stats.mean xs);
  check_close "population variance" 1.25 (Stats.variance xs);
  check_close "sample variance" (5. /. 3.) (Stats.sample_variance xs)

let test_stats_median_even_odd () =
  check_close "odd median" 3. (Stats.median [| 5.; 1.; 3. |]);
  check_close "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_stats_quantile_interpolation () =
  let xs = [| 0.; 10. |] in
  check_close "q25" 2.5 (Stats.quantile xs 0.25);
  check_close "q0" 0. (Stats.quantile xs 0.);
  check_close "q1" 10. (Stats.quantile xs 1.)

let test_stats_min_max () =
  let xs = [| 3.; -1.; 7.; 2. |] in
  check_close "min" (-1.) (Stats.min_value xs);
  check_close "max" 7. (Stats.max_value xs)

let test_stats_mse_rmse () =
  let reference = [| 1.; 2.; 3. |] in
  let predicted = [| 1.; 3.; 5. |] in
  check_close "mse" (5. /. 3.) (Stats.mse reference predicted);
  check_close "rmse" (sqrt (5. /. 3.)) (Stats.rmse reference predicted)

let test_stats_normalized_error_perfect_fit () =
  let reference = [| 2.; 4.; 8. |] in
  check_close "zero error" 0. (Stats.normalized_error reference reference)

let test_stats_normalized_error_scale () =
  (* RMS residual 1 against mean magnitude 10 -> 10% error. *)
  let reference = [| 10.; 10.; 10.; 10. |] in
  let predicted = [| 11.; 9.; 11.; 9. |] in
  check_close "10 percent" 0.1 (Stats.normalized_error reference predicted)

let test_stats_nmse_constant_model () =
  let reference = [| 1.; 2.; 3.; 4. |] in
  let mean = Stats.mean reference in
  let predicted = Array.map (fun _ -> mean) reference in
  check_close "nmse of mean model is 1" 1. (Stats.nmse reference predicted);
  check_close "r^2 of mean model is 0" 0. (Stats.r_squared reference predicted)

let test_stats_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_close "perfect correlation" 1. (Stats.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_close "perfect anticorrelation" (-1.) (Stats.correlation xs zs);
  check_close "constant input" 0. (Stats.correlation xs [| 5.; 5.; 5.; 5. |])

let test_stats_is_finite_array () =
  Alcotest.(check bool) "finite" true (Stats.is_finite_array [| 1.; -2.; 0. |]);
  Alcotest.(check bool) "nan" false (Stats.is_finite_array [| 1.; Float.nan |]);
  Alcotest.(check bool) "inf" false (Stats.is_finite_array [| Float.infinity |])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

(* --- qcheck properties --- *)

let property_tests =
  let nonempty_floats =
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1000.) 1000.))
  in
  [
    QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
      QCheck.(pair nonempty_floats (pair (float_range 0. 1.) (float_range 0. 1.)))
      (fun (xs, (q1, q2)) ->
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9);
    QCheck.Test.make ~name:"variance is non-negative" ~count:200 nonempty_floats (fun xs ->
        Stats.variance xs >= 0.);
    QCheck.Test.make ~name:"min <= mean <= max" ~count:200 nonempty_floats (fun xs ->
        Stats.min_value xs <= Stats.mean xs +. 1e-9
        && Stats.mean xs <= Stats.max_value xs +. 1e-9);
    QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed () in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"weight range maps into [lo,hi)" ~count:200
      QCheck.(triple small_int (float_range (-50.) 50.) (float_range 0.001 50.))
      (fun (seed, lo, width) ->
        let rng = Rng.create ~seed () in
        let v = Rng.range rng lo (lo +. width) in
        v >= lo && v < lo +. width);
  ]

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed changes stream" `Quick test_rng_seed_changes_stream;
    Alcotest.test_case "rng: copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng: split" `Quick test_rng_split_differs;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int bad bound" `Quick test_rng_int_rejects_bad_bound;
    Alcotest.test_case "rng: uniform range" `Quick test_rng_uniform_range;
    Alcotest.test_case "rng: uniform mean" `Quick test_rng_uniform_mean;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng: cauchy median/quartile" `Quick test_rng_cauchy_median;
    Alcotest.test_case "rng: cauchy heavy tails" `Quick test_rng_cauchy_heavy_tails;
    Alcotest.test_case "rng: bernoulli" `Quick test_rng_bernoulli_probability;
    Alcotest.test_case "rng: weighted index" `Quick test_rng_weighted_index;
    Alcotest.test_case "rng: permutation" `Quick test_rng_permutation_is_permutation;
    Alcotest.test_case "rng: sampling w/o replacement" `Quick test_rng_sample_without_replacement;
    Alcotest.test_case "rng: shuffle" `Quick test_rng_shuffle_preserves_elements;
    Alcotest.test_case "stats: mean/variance" `Quick test_stats_mean_variance;
    Alcotest.test_case "stats: median" `Quick test_stats_median_even_odd;
    Alcotest.test_case "stats: quantile" `Quick test_stats_quantile_interpolation;
    Alcotest.test_case "stats: min/max" `Quick test_stats_min_max;
    Alcotest.test_case "stats: mse/rmse" `Quick test_stats_mse_rmse;
    Alcotest.test_case "stats: normalized error, perfect" `Quick test_stats_normalized_error_perfect_fit;
    Alcotest.test_case "stats: normalized error, scale" `Quick test_stats_normalized_error_scale;
    Alcotest.test_case "stats: nmse of constant" `Quick test_stats_nmse_constant_model;
    Alcotest.test_case "stats: correlation" `Quick test_stats_correlation;
    Alcotest.test_case "stats: finite array" `Quick test_stats_is_finite_array;
    Alcotest.test_case "stats: empty raises" `Quick test_stats_empty_raises;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

let test_stats_worst_relative_error () =
  let reference = [| 10.; 10.; 10.; 10. |] in
  let predicted = [| 10.; 12.; 9.; 10. |] in
  (* worst |residual| = 2, mean |reference| = 10 -> 0.2 *)
  check_close "worst case" 0.2 (Stats.worst_relative_error reference predicted);
  check_close "perfect fit" 0. (Stats.worst_relative_error reference reference);
  Alcotest.(check bool) "worst >= mean measure" true
    (Stats.worst_relative_error reference predicted
    >= Stats.normalized_error reference predicted)

let suite = suite @ [ Alcotest.test_case "stats: worst relative error" `Quick test_stats_worst_relative_error ]

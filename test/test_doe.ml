(* Tests for the design-of-experiments sampling plans. *)

module Doe = Caffeine_doe.Doe
module Rng = Caffeine_util.Rng

let test_full_factorial_shape () =
  let design = Doe.full_factorial ~levels:3 ~factors:4 in
  Alcotest.(check int) "3^4 runs" 81 (Array.length design);
  Array.iter
    (fun run ->
      Alcotest.(check int) "width" 4 (Array.length run);
      Array.iter (fun l -> Alcotest.(check bool) "level range" true (l >= 0 && l < 3)) run)
    design

let test_full_factorial_distinct_rows () =
  let design = Doe.full_factorial ~levels:2 ~factors:5 in
  let table = Hashtbl.create 64 in
  Array.iter (fun run -> Hashtbl.replace table (Array.to_list run) ()) design;
  Alcotest.(check int) "all rows distinct" 32 (Hashtbl.length table)

let test_full_factorial_rejects_huge () =
  Alcotest.(check bool) "too large rejected" true
    (match Doe.full_factorial ~levels:10 ~factors:9 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_max_oa_factors () =
  Alcotest.(check int) "3 runs exponent 3 -> 13 columns" 13 (Doe.max_oa_factors ~runs_exponent:3);
  Alcotest.(check int) "3^5 -> 121 columns" 121 (Doe.max_oa_factors ~runs_exponent:5)

let test_smallest_runs_exponent () =
  Alcotest.(check int) "13 factors fit in 3^3" 3 (Doe.smallest_runs_exponent ~factors:13);
  Alcotest.(check int) "14 factors need 3^4" 4 (Doe.smallest_runs_exponent ~factors:14);
  Alcotest.(check int) "1 factor fits in 3^1" 1 (Doe.smallest_runs_exponent ~factors:1)

let count_pairs design c1 c2 =
  let counts = Hashtbl.create 9 in
  Array.iter
    (fun run ->
      let key = (run.(c1), run.(c2)) in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    design;
  counts

let test_oa_strength_two () =
  (* Strength 2: every pair of columns shows each of the 9 level pairs
     equally often (paper's 243-run, 13-variable plan). *)
  let design = Doe.orthogonal_array ~runs_exponent:5 ~factors:13 in
  Alcotest.(check int) "243 runs" 243 (Array.length design);
  let expected = 243 / 9 in
  List.iter
    (fun (c1, c2) ->
      let counts = count_pairs design c1 c2 in
      Alcotest.(check int) "9 pairs occur" 9 (Hashtbl.length counts);
      Hashtbl.iter
        (fun _ count -> Alcotest.(check int) "balanced pair count" expected count)
        counts)
    [ (0, 1); (0, 12); (5, 7); (3, 11); (2, 9) ]

let test_oa_balanced_columns () =
  let design = Doe.orthogonal_array ~runs_exponent:4 ~factors:10 in
  for c = 0 to 9 do
    let counts = Array.make 3 0 in
    Array.iter (fun run -> counts.(run.(c)) <- counts.(run.(c)) + 1) design;
    Array.iter (fun n -> Alcotest.(check int) "level balance" (81 / 3) n) counts
  done

let test_oa_too_many_factors_rejected () =
  Alcotest.(check bool) "rejected" true
    (match Doe.orthogonal_array ~runs_exponent:2 ~factors:5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_scale_levels () =
  let design = [| [| 0; 1; 2 |] |] in
  let scaled = Doe.scale_levels ~center:[| 10.; 10.; 10. |] ~dx:0.1 design in
  Alcotest.(check (float 1e-9)) "low" 9. scaled.(0).(0);
  Alcotest.(check (float 1e-9)) "mid" 10. scaled.(0).(1);
  Alcotest.(check (float 1e-9)) "high" 11. scaled.(0).(2)

let test_scale_levels_additive () =
  let design = [| [| 0; 2 |] |] in
  let scaled =
    Doe.scale_levels_additive ~center:[| 5.; 5. |] ~delta:[| 1.; 2. |] design
  in
  Alcotest.(check (float 1e-9)) "low" 4. scaled.(0).(0);
  Alcotest.(check (float 1e-9)) "high" 7. scaled.(0).(1)

let test_scale_levels_rejects_bad_level () =
  Alcotest.(check bool) "bad level rejected" true
    (match Doe.scale_levels ~center:[| 1. |] ~dx:0.1 [| [| 3 |] |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_latin_hypercube_stratification () =
  let rng = Rng.create ~seed:77 () in
  let points = Doe.latin_hypercube rng ~samples:16 ~dims:3 in
  Alcotest.(check int) "sample count" 16 (Array.length points);
  (* Each dimension has exactly one point per stratum of width 1/16. *)
  for d = 0 to 2 do
    let strata = Array.make 16 0 in
    Array.iter
      (fun p ->
        let s = int_of_float (p.(d) *. 16.) in
        let s = min 15 (max 0 s) in
        strata.(s) <- strata.(s) + 1)
      points;
    Array.iter (fun n -> Alcotest.(check int) "one per stratum" 1 n) strata
  done

let test_map_unit_to_box () =
  let mapped = Doe.map_unit_to_box ~lo:[| 0.; 10. |] ~hi:[| 1.; 20. |] [| [| 0.5; 0.5 |] |] in
  Alcotest.(check (float 1e-9)) "dim0" 0.5 mapped.(0).(0);
  Alcotest.(check (float 1e-9)) "dim1" 15. mapped.(0).(1)

let property_tests =
  [
    QCheck.Test.make ~name:"oa entries are valid levels" ~count:20
      QCheck.(pair (int_range 2 5) (int_range 1 10))
      (fun (k, f) ->
        let f = min f (Doe.max_oa_factors ~runs_exponent:k) in
        let design = Doe.orthogonal_array ~runs_exponent:k ~factors:f in
        Array.for_all (fun run -> Array.for_all (fun l -> l >= 0 && l < 3) run) design);
    QCheck.Test.make ~name:"latin hypercube stays in unit cube" ~count:30
      QCheck.(pair small_int (pair (int_range 1 30) (int_range 1 6)))
      (fun (seed, (samples, dims)) ->
        let rng = Rng.create ~seed () in
        let points = Doe.latin_hypercube rng ~samples ~dims in
        Array.for_all (fun p -> Array.for_all (fun v -> v >= 0. && v < 1.) p) points);
  ]

let suite =
  [
    Alcotest.test_case "full factorial shape" `Quick test_full_factorial_shape;
    Alcotest.test_case "full factorial distinct" `Quick test_full_factorial_distinct_rows;
    Alcotest.test_case "full factorial size guard" `Quick test_full_factorial_rejects_huge;
    Alcotest.test_case "max oa factors" `Quick test_max_oa_factors;
    Alcotest.test_case "smallest runs exponent" `Quick test_smallest_runs_exponent;
    Alcotest.test_case "oa strength two" `Quick test_oa_strength_two;
    Alcotest.test_case "oa balanced columns" `Quick test_oa_balanced_columns;
    Alcotest.test_case "oa factor limit" `Quick test_oa_too_many_factors_rejected;
    Alcotest.test_case "scale levels" `Quick test_scale_levels;
    Alcotest.test_case "scale levels additive" `Quick test_scale_levels_additive;
    Alcotest.test_case "scale levels bad level" `Quick test_scale_levels_rejects_bad_level;
    Alcotest.test_case "latin hypercube stratified" `Quick test_latin_hypercube_stratification;
    Alcotest.test_case "unit box mapping" `Quick test_map_unit_to_box;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

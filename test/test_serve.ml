(* Tests for the serving layer: protocol behavior, served bit-identity,
   registry hot-reload, and the graceful drain contract. *)

module Model = Caffeine.Model
module Model_io = Caffeine.Model_io
module Export = Caffeine.Export
module Dataset = Caffeine_io.Dataset
module Json = Caffeine_obs.Json
module Metrics = Caffeine_obs.Metrics
module Registry = Caffeine_serve.Registry
module Server = Caffeine_serve.Server

let with_temp_file f =
  let path = Filename.temp_file "caffeine_serve" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let spit path text =
  let channel = open_out path in
  output_string channel text;
  close_out channel

let front_v1 = "vars: x y\n#: train_error=0.5\n1.5 + 2 * x\n"

let front_v2 =
  "vars: x y\n#: train_error=0.5\n1.5 + 2 * x\n#: train_error=nan\n3 + 0.5 * x * y\n"

(* Fresh metrics per server so counter assertions never see another test's
   increments. *)
let server_on ?reload path =
  let metrics = Metrics.create () in
  let registry =
    match Registry.create ~metrics ~path ~wb:10. ~wvc:0.25 () with
    | Ok registry -> registry
    | Error msg -> Alcotest.failf "registry: %s" msg
  in
  (Server.config ~metrics ?reload registry, registry)

let response_fields response =
  match Json.parse response with
  | Error msg -> Alcotest.failf "response not JSON (%s): %s" msg response
  | Ok json -> Json.obj json

let check_error expected response =
  let fields = response_fields response in
  (match Json.member fields "ok" with
  | Json.Bool false -> ()
  | _ -> Alcotest.failf "expected an error response, got %s" response);
  Alcotest.(check string) ("error type for " ^ response) expected (Json.str_of fields "error")

(* Touch the front file's mtime into the future: reloads key on
   (mtime, size) and a same-second rewrite would otherwise be missed. *)
let bump_mtime path =
  let future = Unix.time () +. 10. in
  Unix.utimes path future future

(* --- protocol ------------------------------------------------------------ *)

let test_typed_errors () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      let answer line = Server.handle_line server line in
      check_error "parse_error" (answer "{broken");
      check_error "bad_request" (answer "[1,2]");
      check_error "bad_request" (answer "{\"no_op\":1}");
      check_error "bad_request" (answer "{\"op\":\"frobnicate\"}");
      check_error "bad_request" (answer "{\"op\":3}");
      check_error "bad_request" (answer "{\"op\":\"predict\"}");
      check_error "bad_request" (answer "{\"op\":\"predict\",\"rows\":[[1,2],[1]]}");
      check_error "bad_request" (answer "{\"op\":\"predict\",\"rows\":[[1,\"x\"]]}");
      check_error "non_finite_input" (answer "{\"op\":\"predict\",\"rows\":[[1,\"NaN\"]]}");
      check_error "non_finite_input" (answer "{\"op\":\"predict\",\"rows\":[[\"Infinity\",2]]}");
      check_error "bad_request" (answer "{\"op\":\"explain\"}");
      check_error "out_of_range" (answer "{\"op\":\"explain\",\"index\":9}");
      check_error "out_of_range" (answer "{\"op\":\"explain\",\"index\":-1}");
      check_error "bad_request" (answer "{\"op\":\"explain\",\"index\":0,\"language\":\"rust\"}"))

let test_predict_bit_identical () =
  with_temp_file (fun path ->
      spit path front_v2;
      let var_names, models =
        match Model_io.load ~path ~wb:10. ~wvc:0.25 with
        | Ok (var_names, models) -> (var_names, models)
        | Error msg -> Alcotest.failf "load: %s" msg
      in
      let rows = [| [| 1.25; 2.5 |]; [| 0.5; 3. |]; [| 7.; 0.125 |]; [| 1e-3; 42. |] |] in
      let server, _ = server_on path in
      let request =
        let b = Buffer.create 128 in
        Buffer.add_string b "{\"op\":\"predict\",\"rows\":[";
        Array.iteri
          (fun i row ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '[';
            Array.iteri
              (fun v x ->
                if v > 0 then Buffer.add_char b ',';
                Json.add_float b x)
              row;
            Buffer.add_char b ']')
          rows;
        Buffer.add_string b "]}";
        Buffer.contents b
      in
      let fields = response_fields (Server.handle_line server request) in
      Alcotest.(check int) "models" (List.length models) (Json.int_of fields "models");
      Alcotest.(check int) "rows" (Array.length rows) (Json.int_of fields "rows");
      let served =
        Json.arr_of fields "outputs"
        |> List.map (fun row ->
               Array.of_list (List.map (Json.to_float "outputs") (Json.to_arr "outputs" row)))
      in
      let data = Dataset.of_rows ~var_names rows in
      List.iter2
        (fun served_row m ->
          let direct = Model.predict m data in
          Alcotest.(check int) "row length" (Array.length direct) (Array.length served_row);
          Array.iteri
            (fun i y ->
              Alcotest.(check bool)
                (Printf.sprintf "sample %d bit-identical" i)
                true
                (Int64.bits_of_float y = Int64.bits_of_float direct.(i)))
            served_row)
        served models)

let test_front_listing () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      let fields = response_fields (Server.handle_line server "{\"op\":\"front\"}") in
      Alcotest.(check string) "path" path (Json.str_of fields "path");
      Alcotest.(check int) "generation" 0 (Json.int_of fields "generation");
      let listed = Json.arr_of fields "front" in
      Alcotest.(check int) "two models" 2 (List.length listed);
      let second = Json.obj (List.nth listed 1) in
      Alcotest.(check int) "index" 1 (Json.int_of second "index");
      (* The second model's stored error is nan: it must travel as the
         non-finite string encoding, not poison the JSON. *)
      Alcotest.(check bool) "nan train_error" true
        (Float.is_nan (Json.float_of second "train_error"));
      Alcotest.(check string) "expression" "3 + 0.5 * (x*y)" (Json.str_of second "expression"))

let test_explain_matches_export () =
  with_temp_file (fun path ->
      spit path front_v2;
      let var_names, models =
        match Model_io.load ~path ~wb:10. ~wvc:0.25 with
        | Ok ok -> ok
        | Error msg -> Alcotest.failf "load: %s" msg
      in
      let model = List.nth models 1 in
      let server, _ = server_on path in
      let code language =
        let request =
          Printf.sprintf "{\"op\":\"explain\",\"index\":1,\"language\":\"%s\"}" language
        in
        Json.str_of (response_fields (Server.handle_line server request)) "code"
      in
      Alcotest.(check string) "text" (Model.to_string ~var_names model) (code "text");
      Alcotest.(check string) "c" (Export.to_c ~name:"model_1" ~var_names model) (code "c");
      Alcotest.(check string) "verilog-a"
        (Export.to_verilog_a ~name:"model_1" ~var_names model)
        (code "verilog-a"))

let test_stats_counters () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      ignore (Server.handle_line server "{\"op\":\"predict\",\"rows\":[[1,2]]}");
      ignore (Server.handle_line server "{\"op\":\"front\"}");
      ignore (Server.handle_line server "nonsense");
      let fields = response_fields (Server.handle_line server "{\"op\":\"stats\"}") in
      let counters = Json.obj (Json.member fields "counters") in
      Alcotest.(check int) "requests" 4 (Json.int_of counters "requests");
      Alcotest.(check int) "errors" 1 (Json.int_of counters "errors");
      Alcotest.(check int) "predictions" 2 (Json.int_of counters "predictions");
      Alcotest.(check int) "reloads" 0 (Json.int_of counters "reloads");
      let latency = Json.obj (Json.member fields "latency") in
      let observations endpoint =
        let h = Json.obj (Json.member latency endpoint) in
        List.fold_left
          (fun acc count -> acc + Json.to_int endpoint count)
          0 (Json.arr_of h "counts")
      in
      Alcotest.(check int) "predict observed" 1 (observations "predict");
      Alcotest.(check int) "front observed" 1 (observations "front");
      Alcotest.(check int) "explain observed" 0 (observations "explain"))

(* --- hot reload ---------------------------------------------------------- *)

let test_reload_swaps_atomically () =
  with_temp_file (fun path ->
      spit path front_v1;
      let _, registry = server_on path in
      let before = Registry.current registry in
      Alcotest.(check int) "one model at start" 1 (Array.length before.Registry.models);
      (match Registry.check_reload registry with
      | `Unchanged -> ()
      | _ -> Alcotest.fail "untouched file reported changed");
      spit path front_v2;
      bump_mtime path;
      (match Registry.check_reload registry with
      | `Reloaded -> ()
      | `Unchanged -> Alcotest.fail "rewrite not noticed"
      | `Failed msg -> Alcotest.failf "reload failed: %s" msg);
      let after = Registry.current registry in
      Alcotest.(check int) "two models after reload" 2 (Array.length after.Registry.models);
      Alcotest.(check int) "generation bumped" 1 after.Registry.generation;
      Alcotest.(check int) "reload counted" 1 (Registry.reloads registry);
      (* The front captured before the swap is immutable: a batch running on
         it is unaffected by the reload. *)
      Alcotest.(check int) "old front value unchanged" 1 (Array.length before.Registry.models);
      Alcotest.(check int) "old generation unchanged" 0 before.Registry.generation)

let test_reload_failure_keeps_old_front () =
  with_temp_file (fun path ->
      spit path front_v2;
      let _, registry = server_on path in
      spit path "vars: x y\n1 + +\n";
      bump_mtime path;
      (match Registry.check_reload registry with
      | `Failed msg ->
          let prefix = path ^ ":2:" in
          Alcotest.(check bool) "failure names file and line" true
            (String.length msg >= String.length prefix
            && String.sub msg 0 (String.length prefix) = prefix)
      | `Unchanged -> Alcotest.fail "rewrite not noticed"
      | `Reloaded -> Alcotest.fail "malformed front accepted");
      (* Never a half-loaded state: the previous compiled front keeps
         serving, and the failure is counted. *)
      let still = Registry.current registry in
      Alcotest.(check int) "old front still serving" 2 (Array.length still.Registry.models);
      Alcotest.(check int) "no reload counted" 0 (Registry.reloads registry);
      Alcotest.(check int) "failure counted" 1 (Registry.reload_failures registry))

let test_reload_through_requests () =
  with_temp_file (fun path ->
      spit path front_v1;
      let server, _ = server_on ~reload:true path in
      let models_listed () =
        Json.int_of (response_fields (Server.handle_line server "{\"op\":\"front\"}")) "models"
      in
      Alcotest.(check int) "serving v1" 1 (models_listed ());
      spit path front_v2;
      bump_mtime path;
      Alcotest.(check int) "serving v2 after rewrite" 2 (models_listed ()))

(* --- serving loop: EOF, buffering, drain --------------------------------- *)

let read_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
  in
  go ()

(* Run [serve_fds] over pipes: [input_text] is the whole client script
   (write side closed before serving starts, so the loop sees EOF after the
   last request).  Returns the response lines. *)
let serve_script ?on_line server input_text =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let bytes = Bytes.of_string input_text in
  let written = Unix.write in_w bytes 0 (Bytes.length bytes) in
  Alcotest.(check int) "script fits the pipe buffer" (Bytes.length bytes) written;
  Unix.close in_w;
  Server.serve_fds ?on_line server ~input:in_r ~output:out_w;
  Unix.close in_r;
  Unix.close out_w;
  let output = read_all out_r in
  Unix.close out_r;
  String.split_on_char '\n' output |> List.filter (fun line -> String.trim line <> "")

let test_serve_fds_session () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      let responses =
        serve_script server
          "{\"op\":\"front\"}\n\n{\"op\":\"predict\",\"rows\":[[1,2]]}\nbroken\n"
      in
      (* Three responses: the blank line is skipped, the garbage line gets a
         typed error, and the loop exits cleanly at EOF. *)
      Alcotest.(check int) "three responses" 3 (List.length responses);
      check_error "parse_error" (List.nth responses 2))

let test_serve_fds_trailing_line_without_newline () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      let responses = serve_script server "{\"op\":\"front\"}" in
      Alcotest.(check int) "unterminated final request answered" 1 (List.length responses))

let test_drain_finishes_in_flight_only () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      (* Both requests are buffered before the first is handled; draining
         mid-request must still answer that request, then stop without
         touching the second. *)
      let seen = ref 0 in
      let on_line _ =
        incr seen;
        Server.drain server
      in
      let responses =
        serve_script ~on_line server
          "{\"op\":\"predict\",\"rows\":[[1,2]]}\n{\"op\":\"front\"}\n"
      in
      Alcotest.(check int) "only the in-flight request was handled" 1 !seen;
      Alcotest.(check int) "its response was written" 1 (List.length responses);
      let fields = response_fields (List.hd responses) in
      (match Json.member fields "ok" with
      | Json.Bool true -> ()
      | _ -> Alcotest.failf "in-flight response not ok: %s" (List.hd responses));
      Alcotest.(check bool) "still draining" true (Server.draining server))

let test_sigterm_sets_drain () =
  with_temp_file (fun path ->
      spit path front_v2;
      let server, _ = server_on path in
      let previous = Sys.signal Sys.sigterm Sys.Signal_ignore in
      Fun.protect
        ~finally:(fun () -> Sys.set_signal Sys.sigterm previous)
        (fun () ->
          Server.install_sigterm server;
          Alcotest.(check bool) "not draining yet" false (Server.draining server);
          Unix.kill (Unix.getpid ()) Sys.sigterm;
          (* Signal delivery happens at a safe point; give the runtime a
             few of them. *)
          let deadline = Unix.gettimeofday () +. 5. in
          while (not (Server.draining server)) && Unix.gettimeofday () < deadline do
            ignore (Sys.opaque_identity (ref 0));
            (try Unix.sleepf 0.01 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
          done;
          Alcotest.(check bool) "draining after SIGTERM" true (Server.draining server)))

let suite =
  [
    Alcotest.test_case "protocol: typed errors" `Quick test_typed_errors;
    Alcotest.test_case "predict: bit-identical to Model.predict" `Quick
      test_predict_bit_identical;
    Alcotest.test_case "front: listing with non-finite errors" `Quick test_front_listing;
    Alcotest.test_case "explain: matches Export printers" `Quick test_explain_matches_export;
    Alcotest.test_case "stats: counters and histograms" `Quick test_stats_counters;
    Alcotest.test_case "reload: atomic swap" `Quick test_reload_swaps_atomically;
    Alcotest.test_case "reload: failure keeps old front" `Quick
      test_reload_failure_keeps_old_front;
    Alcotest.test_case "reload: through requests" `Quick test_reload_through_requests;
    Alcotest.test_case "serve_fds: session over pipes" `Quick test_serve_fds_session;
    Alcotest.test_case "serve_fds: trailing line without newline" `Quick
      test_serve_fds_trailing_line_without_newline;
    Alcotest.test_case "drain: finishes in-flight only" `Quick test_drain_finishes_in_flight_only;
    Alcotest.test_case "sigterm: sets drain" `Quick test_sigterm_sets_drain;
  ]

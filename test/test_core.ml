(* Tests for the CAFFEINE core: weight transform, operator sets, random
   generation, variation operators, model fitting, the search loop, and SAG
   post-processing. *)

module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Weight = Caffeine.Weight
module Opset = Caffeine.Opset
module Config = Caffeine.Config
module Gen = Caffeine.Gen
module Vary = Caffeine.Vary
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Dataset = Caffeine_io.Dataset
module Trace = Caffeine_obs.Trace

(* Column-major view of a row-major sample matrix, for the dataset-taking
   fit/search/SAG entry points. *)
let data_of rows = Dataset.of_rows rows

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Weight --- *)

let test_weight_transform_zero () =
  check_close "raw 0 is value 0" 0. (Weight.value (Weight.of_raw 0.))

let test_weight_transform_range () =
  (* raw = B maps to 10^0 = 1; raw = 2B maps to 10^B; raw -> 0+ maps to
     1e-B. *)
  check_close "raw B -> 1" 1. (Weight.value (Weight.of_raw Weight.bound));
  check_close "raw 2B -> 1e10" 1e10 (Weight.value (Weight.of_raw (2. *. Weight.bound)));
  check_close "raw -B -> -1" (-1.) (Weight.value (Weight.of_raw (-.Weight.bound)));
  check_close ~tol:1e-6 "raw 0.001 small" (10. ** (0.001 -. 10.))
    (Weight.value (Weight.of_raw 0.001))

let test_weight_of_value_roundtrip () =
  List.iter
    (fun v ->
      check_close ~tol:1e-9 ("round-trip " ^ string_of_float v) v
        (Weight.value (Weight.of_value v)))
    [ 1.; -1.; 3.7; -0.002; 1e8; -1e-8; 0. ]

let test_weight_boundary_roundtrip () =
  (* A nonzero value at (or clamped to) the 1e-B magnitude boundary must not
     collapse to raw 0 — [value] reserves that for exact zero.  The raw
     floor keeps the sign, and the boundary round-trips exactly. *)
  Alcotest.(check (float 0.)) "+1e-B exact" 1e-10 (Weight.value (Weight.of_value 1e-10));
  Alcotest.(check (float 0.)) "-1e-B exact" (-1e-10) (Weight.value (Weight.of_value (-1e-10)));
  Alcotest.(check (float 0.)) "sub-boundary clamps, sign kept" (-1e-10)
    (Weight.value (Weight.of_value (-1e-15)));
  Alcotest.(check bool) "nonzero never maps to raw 0" true (Weight.raw (Weight.of_value 1e-15) <> 0.);
  Alcotest.(check (float 0.)) "only zero maps to zero" 0. (Weight.value (Weight.of_value 0.))

let test_weight_clamping () =
  check_close "huge value clamps to 1e10" 1e10 (Weight.value (Weight.of_value 1e15));
  check_close "raw clamp" (2. *. Weight.bound) (Weight.raw (Weight.of_raw 1e9))

let test_weight_random_in_domain () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 1000 do
    let v = Weight.random_value rng in
    let magnitude = Float.abs v in
    Alcotest.(check bool) "in +-[1e-B,1e+B] or 0" true
      (v = 0. || (magnitude >= 1e-10 -. 1e-24 && magnitude <= 1e10 +. 1.))
  done

let test_weight_mutation_moves () =
  let rng = Rng.create ~seed:2 () in
  let start = Weight.of_value 2.5 in
  let moved = ref false in
  for _ = 1 to 20 do
    if Weight.raw (Weight.mutate rng start) <> Weight.raw start then moved := true
  done;
  Alcotest.(check bool) "mutation changes the raw value" true !moved

(* --- Opset --- *)

let test_opset_presets () =
  Alcotest.(check int) "default unary count" 13 (Array.length Opset.default.Opset.unops);
  Alcotest.(check int) "rational has no ops" 0 (Array.length Opset.rational.Opset.unops);
  Alcotest.(check bool) "rational allows vc" true Opset.rational.Opset.allow_vc;
  Alcotest.(check int) "polynomial min exponent" 0 Opset.polynomial.Opset.min_exponent;
  Alcotest.(check bool) "no_trig drops sin" true
    (not (Array.mem Op.Sin Opset.no_trig.Opset.unops))

let test_opset_exponent_choices () =
  let choices = Opset.exponent_choices Opset.default in
  Alcotest.(check (list int)) "default exponents" [ -2; -1; 1; 2 ]
    (List.sort compare (Array.to_list choices));
  let poly = Opset.exponent_choices Opset.polynomial in
  Alcotest.(check (list int)) "polynomial exponents" [ 1; 2 ]
    (List.sort compare (Array.to_list poly))

(* --- Gen --- *)

let default_config = Config.default
let dims = 5

let test_gen_vc_valid () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 500 do
    let v = Gen.random_vc rng Opset.default ~dims ~max_vars:3 in
    Alcotest.(check int) "width" dims (Array.length v);
    Alcotest.(check bool) "not all zero" true (Array.exists (fun e -> e <> 0) v);
    Array.iter
      (fun e -> Alcotest.(check bool) "exponent range" true (abs e <= 2))
      v
  done

let test_gen_polynomial_opset_nonnegative_exponents () =
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 300 do
    let v = Gen.random_vc rng Opset.polynomial ~dims ~max_vars:3 in
    Array.iter (fun e -> Alcotest.(check bool) "non-negative" true (e >= 0)) v
  done

let test_gen_individual_bounds () =
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 100 do
    let ind = Gen.random_individual rng default_config ~dims in
    Alcotest.(check bool) "at least one basis" true (Array.length ind >= 1);
    Alcotest.(check bool) "within max_bases" true
      (Array.length ind <= default_config.Config.max_bases);
    Array.iter
      (fun b ->
        Alcotest.(check bool) "canonical invariants" true (Expr.check ~dims b = Ok ());
        Alcotest.(check bool) "depth bound" true
          (Expr.depth_basis b <= default_config.Config.max_depth))
      ind
  done

let test_gen_rational_opset_produces_plain_monomials () =
  let rng = Rng.create ~seed:6 () in
  for _ = 1 to 100 do
    let b = Gen.random_basis rng Opset.rational ~dims ~depth:6 ~max_vc_vars:2 in
    Alcotest.(check bool) "no operator factors" true (b.Expr.factors = [])
  done

(* --- Vary --- *)

let random_parents seed =
  let rng = Rng.create ~seed () in
  let p1 = Gen.random_individual rng default_config ~dims in
  let p2 = Gen.random_individual rng default_config ~dims in
  (rng, p1, p2)

let all_valid individual =
  Array.for_all (fun b -> Expr.check ~dims b = Ok ()) individual

let test_vary_produces_valid_children () =
  let rng, p1, p2 = random_parents 7 in
  for _ = 1 to 500 do
    let child = Vary.vary rng default_config ~dims p1 p2 in
    Alcotest.(check bool) "non-empty" true (Array.length child >= 1);
    Alcotest.(check bool) "within max bases" true
      (Array.length child <= default_config.Config.max_bases);
    Alcotest.(check bool) "canonical invariants hold" true (all_valid child)
  done

let test_crossover_bases_mixes_parents () =
  let rng, p1, p2 = random_parents 8 in
  let child = Vary.crossover_bases rng ~max_bases:15 p1 p2 in
  let from_either b =
    Array.exists (Expr.equal_basis b) p1 || Array.exists (Expr.equal_basis b) p2
  in
  Alcotest.(check bool) "child bases come from parents" true (Array.for_all from_either child)

let test_mutate_weight_changes_exactly_one_site () =
  let rng = Rng.create ~seed:9 () in
  (* Build an individual with several weights. *)
  let opset = Opset.default in
  let b = Gen.random_basis rng { opset with Opset.allow_vc = true } ~dims ~depth:5 ~max_vc_vars:2 in
  let individual = [| b; b |] in
  let mutated = Vary.mutate_weight rng individual in
  Alcotest.(check bool) "still valid" true (all_valid mutated)

let test_mutate_vc_respects_bounds () =
  let rng, p1, _ = random_parents 10 in
  for _ = 1 to 300 do
    let mutated = Vary.mutate_vc rng Opset.default p1 in
    Array.iter
      (fun b ->
        List.iter
          (fun vc ->
            Alcotest.(check bool) "exponent bound" true
              (Array.for_all (fun e -> e >= -2 && e <= 2) vc);
            Alcotest.(check bool) "not all zero" true (Array.exists (fun e -> e <> 0) vc))
          (Expr.vcs_of_basis b))
      mutated
  done

let test_delete_basis_keeps_one () =
  let rng = Rng.create ~seed:11 () in
  let single = [| Expr.{ vc = Some [| 1; 0; 0; 0; 0 |]; factors = [] } |] in
  let result = Vary.delete_basis rng single in
  Alcotest.(check int) "single basis preserved" 1 (Array.length result)

let test_add_basis_respects_cap () =
  let rng = Rng.create ~seed:12 () in
  let base = Expr.{ vc = Some [| 1; 0; 0; 0; 0 |]; factors = [] } in
  let full = Array.make default_config.Config.max_bases base in
  let result = Vary.add_basis rng default_config ~dims full in
  Alcotest.(check int) "cap respected" default_config.Config.max_bases (Array.length result)

let test_nested_bases_includes_top_level () =
  let _, p1, _ = random_parents 13 in
  let nested = Vary.nested_bases p1 in
  Array.iter
    (fun b ->
      Alcotest.(check bool) "top-level present" true
        (List.exists (Expr.equal_basis b) nested))
    p1

let test_subtree_crossover_valid () =
  let rng, p1, p2 = random_parents 14 in
  for _ = 1 to 200 do
    let child = Vary.subtree_crossover rng p1 p2 in
    Alcotest.(check bool) "valid" true (all_valid child)
  done

(* --- Model --- *)

let simple_inputs = Array.init 40 (fun i -> Array.init dims (fun d -> 1. +. (0.1 *. float_of_int ((i + d) mod 10))))

let test_model_complexity_formula () =
  (* One basis, vc [2,0,0,0,0]: wb + nnodes(=1) + wvc*|2| *)
  let b = Expr.{ vc = Some [| 2; 0; 0; 0; 0 |]; factors = [] } in
  check_close "eq (1)" (10. +. 1. +. (0.25 *. 2.)) (Model.complexity_of ~wb:10. ~wvc:0.25 [| b |])

let test_model_complexity_counts_all_vcs () =
  let inner = Expr.{ vc = Some [| 0; -1; 0; 0; 0 |]; factors = [] } in
  let b =
    Expr.
      {
        vc = Some [| 1; 0; 0; 0; 0 |];
        factors = [ Unary (Op.Inv, { bias = 1.; terms = [ (2., inner) ] }) ];
      }
  in
  (* nnodes: vc(1) + op(1) + bias(1) + weight(1) + inner vc(1) = 5;
     vc cost: 0.25 * (1 + 1) = 0.5; total = 10 + 5 + 0.5. *)
  check_close "nested vc cost" 15.5 (Model.complexity_of ~wb:10. ~wvc:0.25 [| b |])

let test_model_fit_and_predict () =
  let b1 = Expr.{ vc = Some [| 1; 0; 0; 0; 0 |]; factors = [] } in
  let b2 = Expr.{ vc = Some [| 0; 1; 0; 0; 0 |]; factors = [] } in
  let targets = Array.map (fun x -> 2. +. (3. *. x.(0)) -. (1.5 *. x.(1))) simple_inputs in
  match Model.fit ~wb:10. ~wvc:0.25 [| b1; b2 |] ~data:(data_of simple_inputs) ~targets with
  | None -> Alcotest.fail "fit failed"
  | Some m ->
      check_close ~tol:1e-6 "intercept" 2. m.Model.intercept;
      check_close ~tol:1e-6 "w1" 3. m.Model.weights.(0);
      check_close ~tol:1e-6 "w2" (-1.5) m.Model.weights.(1);
      check_close ~tol:1e-6 "zero train error" 0. m.Model.train_error;
      let x = [| 2.; 1.; 1.; 1.; 1. |] in
      check_close ~tol:1e-6 "prediction" 6.5 (Model.predict_point m x)

let test_model_fit_invalid_basis_returns_none () =
  (* ln of a negative-bias constant sum -> nan on all samples. *)
  let bad =
    Expr.{ vc = None; factors = [ Unary (Op.Log_e, { bias = -5.; terms = [] }) ] }
  in
  Alcotest.(check bool) "invalid model rejected" true
    (Model.fit ~wb:10. ~wvc:0.25 [| bad |] ~data:(data_of simple_inputs)
       ~targets:(Array.map (fun _ -> 1.) simple_inputs)
    = None)

let test_model_to_string_paper_style () =
  let b = Expr.{ vc = Some [| 1; -1; 0; 0; 0 |]; factors = [] } in
  let m =
    {
      Model.bases = [| b |];
      intercept = 90.5;
      weights = [| 22.2 |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  Alcotest.(check string) "rendering" "90.5 + 22.2 * x0 / x1"
    (Model.to_string ~var_names:[| "x0"; "x1"; "x2"; "x3"; "x4" |] m)

let test_model_simplify_folds_constants () =
  let constant_basis =
    Expr.{ vc = None; factors = [ Unary (Op.Square, { bias = 2.; terms = [] }) ] }
  in
  let live_basis = Expr.{ vc = Some [| 1; 0; 0; 0; 0 |]; factors = [] } in
  let m =
    {
      Model.bases = [| constant_basis; live_basis |];
      intercept = 1.;
      weights = [| 2.; 3. |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  let simplified = Model.simplify ~wb:10. ~wvc:0.25 m in
  Alcotest.(check int) "constant basis folded away" 1 (Array.length simplified.Model.bases);
  (* intercept absorbs 2 * (2^2) = 8. *)
  check_close "intercept updated" 9. simplified.Model.intercept;
  let x = [| 1.7; 1.; 1.; 1.; 1. |] in
  check_close ~tol:1e-9 "same prediction" (Model.predict_point m x)
    (Model.predict_point simplified x)

(* --- Search --- *)

let test_search_recovers_ground_truth () =
  let rng = Rng.create ~seed:15 () in
  let inputs =
    Array.init 80 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.0))
  in
  let targets = Array.map (fun x -> 1. +. (2. *. x.(0) /. x.(1))) inputs in
  let config = Config.scaled ~pop_size:60 ~generations:40 Config.default in
  let outcome = Search.run ~seed:16 config ~data:(data_of inputs) ~targets in
  let best =
    List.fold_left
      (fun acc (m : Model.t) -> Float.min acc m.Model.train_error)
      Float.infinity outcome.Search.front
  in
  Alcotest.(check bool) "near-exact recovery" true (best < 0.01)

let test_search_front_properties () =
  let rng = Rng.create ~seed:17 () in
  let inputs = Array.init 60 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.0)) in
  let targets = Array.map (fun x -> x.(0) +. (x.(1) *. x.(2)) +. (0.3 /. x.(2))) inputs in
  let config = Config.scaled ~pop_size:40 ~generations:25 Config.default in
  let outcome = Search.run ~seed:18 config ~data:(data_of inputs) ~targets in
  let front = outcome.Search.front in
  Alcotest.(check bool) "front non-empty" true (List.length front > 0);
  (* Contains the constant model at complexity 0. *)
  (match front with
  | first :: _ -> check_close "zero-complexity end" 0. first.Model.complexity
  | [] -> Alcotest.fail "empty front");
  (* Sorted by complexity with strictly decreasing error along the front. *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "complexity increases" true
          (a.Model.complexity <= b.Model.complexity);
        Alcotest.(check bool) "error decreases" true
          (b.Model.train_error <= a.Model.train_error);
        check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted front

let test_search_respects_max_bases () =
  let rng = Rng.create ~seed:19 () in
  let inputs = Array.init 50 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.0)) in
  let targets = Array.map (fun x -> sin x.(0) +. (x.(1) *. x.(1)) +. sqrt x.(2)) inputs in
  let config =
    { (Config.scaled ~pop_size:30 ~generations:20 Config.default) with Config.max_bases = 4 }
  in
  let outcome = Search.run ~seed:20 config ~data:(data_of inputs) ~targets in
  List.iter
    (fun (m : Model.t) ->
      Alcotest.(check bool) "max bases respected" true (Model.num_bases m <= 4))
    outcome.Search.front

let test_search_deterministic_given_seed () =
  let inputs = Array.init 30 (fun i -> [| 1. +. (0.05 *. float_of_int i) |]) in
  let targets = Array.map (fun x -> 3. *. x.(0) *. x.(0)) inputs in
  let config = Config.scaled ~pop_size:20 ~generations:10 Config.default in
  let run () =
    let outcome = Search.run ~seed:21 config ~data:(data_of inputs) ~targets in
    List.map (fun (m : Model.t) -> (m.Model.train_error, m.Model.complexity)) outcome.Search.front
  in
  Alcotest.(check bool) "same front twice" true (run () = run ())

let test_search_on_generation_callback () =
  let inputs = Array.init 20 (fun i -> [| 1. +. (0.1 *. float_of_int i) |]) in
  let targets = Array.map (fun x -> x.(0) |> fun v -> v *. 2.) inputs in
  let config = Config.scaled ~pop_size:10 ~generations:5 Config.default in
  let calls = ref 0 in
  let _ =
    Search.run ~seed:22
      ~on_generation:(fun (_ : Caffeine_obs.Trace.generation) -> incr calls)
      config ~data:(data_of inputs) ~targets
  in
  Alcotest.(check bool) "callback invoked per generation" true (!calls >= 5)

(* --- Sag --- *)

let test_sag_prunes_useless_basis () =
  let rng = Rng.create ~seed:23 () in
  let inputs = Array.init 60 (fun _ -> Array.init 2 (fun _ -> Rng.range rng 0.5 2.0)) in
  let targets = Array.map (fun x -> 4. *. x.(0)) inputs in
  let useful = Expr.{ vc = Some [| 1; 0 |]; factors = [] } in
  let useless = Expr.{ vc = Some [| 0; 2 |]; factors = [] } in
  let data = data_of inputs in
  match Model.fit ~wb:10. ~wvc:0.25 [| useful; useless |] ~data ~targets with
  | None -> Alcotest.fail "fit failed"
  | Some m ->
      let simplified = Sag.simplify_model ~wb:10. ~wvc:0.25 m ~data ~targets in
      Alcotest.(check int) "useless basis dropped" 1 (Model.num_bases simplified);
      Alcotest.(check bool) "error stays near zero" true
        (simplified.Model.train_error < 1e-6)

let test_sag_test_tradeoff_is_nondominated () =
  let rng = Rng.create ~seed:24 () in
  let inputs = Array.init 60 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.0)) in
  let targets = Array.map (fun x -> x.(0) +. (0.5 *. x.(1) *. x.(2))) inputs in
  let test_inputs = Array.init 60 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.7 1.8)) in
  let test_targets = Array.map (fun x -> x.(0) +. (0.5 *. x.(1) *. x.(2))) test_inputs in
  let config = Config.scaled ~pop_size:40 ~generations:25 Config.default in
  let outcome = Search.run ~seed:25 config ~data:(data_of inputs) ~targets in
  let scored =
    Sag.test_tradeoff outcome.Search.front ~data:(data_of test_inputs) ~targets:test_targets
  in
  Alcotest.(check bool) "non-empty" true (List.length scored > 0);
  List.iter
    (fun (a : Sag.scored) ->
      List.iter
        (fun (b : Sag.scored) ->
          let dominates =
            b.Sag.test_error <= a.Sag.test_error
            && b.Sag.model.Model.complexity <= a.Sag.model.Model.complexity
            && (b.Sag.test_error < a.Sag.test_error
               || b.Sag.model.Model.complexity < a.Sag.model.Model.complexity)
          in
          Alcotest.(check bool) "mutually nondominated" false dominates)
        scored)
    scored

let test_sag_best_within () =
  let make train test =
    {
      Sag.model =
        {
          Model.bases = [||];
          intercept = 0.;
          weights = [||];
          train_error = train;
          complexity = 0.;
        };
      test_error = test;
    }
  in
  let scored = [ make 0.2 0.05; make 0.05 0.2; make 0.08 0.09 ] in
  (match Sag.best_within scored ~train_cap:0.1 ~test_cap:0.1 with
  | Some s -> check_close "picks the qualifying model" 0.08 s.Sag.model.Model.train_error
  | None -> Alcotest.fail "expected a model");
  Alcotest.(check bool) "none when impossible" true
    (Sag.best_within scored ~train_cap:0.01 ~test_cap:0.01 = None)

let test_sag_at_train_error_fallback () =
  let make train =
    {
      Sag.model =
        {
          Model.bases = [||];
          intercept = 0.;
          weights = [||];
          train_error = train;
          complexity = 0.;
        };
      test_error = 0.;
    }
  in
  let scored = [ make 0.5; make 0.3 ] in
  match Sag.at_train_error scored ~train_cap:0.1 with
  | Some s -> check_close "closest fallback" 0.3 s.Sag.model.Model.train_error
  | None -> Alcotest.fail "expected fallback model"

let test_sag_test_tradeoff_all_nonfinite_fallback () =
  (* Models fitted on x > 0 but tested where a 1/x basis divides by zero:
     every test error is infinite.  The tradeoff must fall back to the
     train-error ordering (and say so on the trace) instead of silently
     returning []. *)
  let train = data_of [| [| 1. |]; [| 2. |]; [| 4. |]; [| 8. |] |] in
  let train_targets = [| 1.; 0.5; 0.25; 0.125 |] in
  let inverse = Expr.{ vc = Some [| -1 |]; factors = [] } in
  let linear = Expr.{ vc = Some [| 1 |]; factors = [] } in
  let fit bases =
    Option.get (Model.fit ~wb:10. ~wvc:0.25 bases ~data:train ~targets:train_targets)
  in
  let front = [ fit [| inverse |]; fit [| inverse; linear |] ] in
  let test_data = data_of [| [| 0. |]; [| 1. |] |] in
  let sink = Trace.memory () in
  let scored = Sag.test_tradeoff ~trace:sink front ~data:test_data ~targets:[| 5.; 1. |] in
  Alcotest.(check int) "whole front kept" 2 (List.length scored);
  List.iter
    (fun (s : Sag.scored) ->
      Alcotest.(check bool) "test error really non-finite" false (Float.is_finite s.Sag.test_error))
    scored;
  (match scored with
  | a :: b :: _ ->
      Alcotest.(check bool) "ordered by train error" true
        (a.Sag.model.Model.train_error <= b.Sag.model.Model.train_error)
  | _ -> ());
  Alcotest.(check bool) "warning surfaced on the trace" true
    (List.exists
       (function
         | Trace.Warning w -> w.Trace.context = "sag.test_tradeoff"
         | _ -> false)
       (Trace.contents sink))

(* --- qcheck properties --- *)

let property_tests =
  [
    QCheck.Test.make ~name:"vary preserves canonical invariants" ~count:200
      QCheck.(pair small_int small_int)
      (fun (seed1, seed2) ->
        let rng = Rng.create ~seed:(seed1 + 1) () in
        let p1 = Gen.random_individual rng default_config ~dims in
        let p2 = Gen.random_individual rng default_config ~dims in
        let child_rng = Rng.create ~seed:(seed2 + 1) () in
        let child = Vary.vary child_rng default_config ~dims p1 p2 in
        Array.length child >= 1
        && Array.length child <= default_config.Config.max_bases
        && all_valid child);
    QCheck.Test.make ~name:"weight transform round-trips" ~count:300
      QCheck.(float_range (-20.) 20.)
      (fun raw ->
        let w = Weight.of_raw raw in
        let v = Weight.value w in
        Float.abs (Weight.value (Weight.of_value v) -. v)
        <= 1e-9 *. Float.max 1. (Float.abs v));
    QCheck.Test.make ~name:"interpreted weight round-trips incl. the 1e-B boundary" ~count:300
      (QCheck.make ~print:string_of_float
         (QCheck.Gen.frequency
            [
              (4, QCheck.Gen.float_range (-1e4) 1e4);
              (2, QCheck.Gen.float_range (-1e-9) 1e-9);
              ( 1,
                QCheck.Gen.oneofl
                  [ 1e-10; -1e-10; 1e10; -1e10; 0.; 1e-300; -1e-300; 4e-11; -4e-11 ] );
            ]))
      (fun v ->
        let v' = Weight.value (Weight.of_value v) in
        if v = 0. then v' = 0.
        else
          (* Magnitudes clamp into [1e-B, 1e+B]; within it they round-trip,
             and the sign always survives. *)
          let clamped = Float.min 1e10 (Float.max 1e-10 (Float.abs v)) in
          v' <> 0.
          && Float.sign_bit v' = Float.sign_bit v
          && Float.abs (Float.abs v' -. clamped) <= 1e-9 *. clamped);
    QCheck.Test.make ~name:"complexity is positive and monotone in bases" ~count:100
      QCheck.small_int
      (fun seed ->
        let rng = Rng.create ~seed () in
        let ind = Gen.random_individual rng default_config ~dims in
        let all = Model.complexity_of ~wb:10. ~wvc:0.25 ind in
        let fewer = Model.complexity_of ~wb:10. ~wvc:0.25 (Array.sub ind 0 (Array.length ind - 1)) in
        (Array.length ind = 1 && all > 0.) || (all > fewer && all > 0.));
  ]

let suite =
  [
    Alcotest.test_case "weight: zero" `Quick test_weight_transform_zero;
    Alcotest.test_case "weight: transform range" `Quick test_weight_transform_range;
    Alcotest.test_case "weight: of_value round-trip" `Quick test_weight_of_value_roundtrip;
    Alcotest.test_case "weight: 1e-B boundary round-trip" `Quick test_weight_boundary_roundtrip;
    Alcotest.test_case "weight: clamping" `Quick test_weight_clamping;
    Alcotest.test_case "weight: random domain" `Quick test_weight_random_in_domain;
    Alcotest.test_case "weight: mutation moves" `Quick test_weight_mutation_moves;
    Alcotest.test_case "opset: presets" `Quick test_opset_presets;
    Alcotest.test_case "opset: exponent choices" `Quick test_opset_exponent_choices;
    Alcotest.test_case "gen: vc validity" `Quick test_gen_vc_valid;
    Alcotest.test_case "gen: polynomial exponents" `Quick test_gen_polynomial_opset_nonnegative_exponents;
    Alcotest.test_case "gen: individual bounds" `Quick test_gen_individual_bounds;
    Alcotest.test_case "gen: rational monomials" `Quick test_gen_rational_opset_produces_plain_monomials;
    Alcotest.test_case "vary: valid children" `Quick test_vary_produces_valid_children;
    Alcotest.test_case "vary: crossover provenance" `Quick test_crossover_bases_mixes_parents;
    Alcotest.test_case "vary: weight mutation" `Quick test_mutate_weight_changes_exactly_one_site;
    Alcotest.test_case "vary: vc mutation bounds" `Quick test_mutate_vc_respects_bounds;
    Alcotest.test_case "vary: delete keeps one" `Quick test_delete_basis_keeps_one;
    Alcotest.test_case "vary: add respects cap" `Quick test_add_basis_respects_cap;
    Alcotest.test_case "vary: nested bases" `Quick test_nested_bases_includes_top_level;
    Alcotest.test_case "vary: subtree crossover" `Quick test_subtree_crossover_valid;
    Alcotest.test_case "model: complexity eq (1)" `Quick test_model_complexity_formula;
    Alcotest.test_case "model: nested vc cost" `Quick test_model_complexity_counts_all_vcs;
    Alcotest.test_case "model: fit and predict" `Quick test_model_fit_and_predict;
    Alcotest.test_case "model: invalid rejected" `Quick test_model_fit_invalid_basis_returns_none;
    Alcotest.test_case "model: paper-style printing" `Quick test_model_to_string_paper_style;
    Alcotest.test_case "model: simplify folds constants" `Quick test_model_simplify_folds_constants;
    Alcotest.test_case "search: ground-truth recovery" `Slow test_search_recovers_ground_truth;
    Alcotest.test_case "search: front properties" `Quick test_search_front_properties;
    Alcotest.test_case "search: max bases" `Quick test_search_respects_max_bases;
    Alcotest.test_case "search: deterministic" `Quick test_search_deterministic_given_seed;
    Alcotest.test_case "search: generation callback" `Quick test_search_on_generation_callback;
    Alcotest.test_case "sag: prunes useless basis" `Quick test_sag_prunes_useless_basis;
    Alcotest.test_case "sag: test tradeoff nondominated" `Quick test_sag_test_tradeoff_is_nondominated;
    Alcotest.test_case "sag: best_within" `Quick test_sag_best_within;
    Alcotest.test_case "sag: at_train_error fallback" `Quick test_sag_at_train_error_fallback;
    Alcotest.test_case "sag: all-non-finite test errors fall back" `Quick
      test_sag_test_tradeoff_all_nonfinite_fallback;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

(* --- Insight --- *)

module Insight = Caffeine.Insight

let ratio_model =
  (* f = 2 + 3 * x0 / x1 over 5 variables; x2..x4 unused. *)
  let b = Expr.{ vc = Some [| 1; -1; 0; 0; 0 |]; factors = [] } in
  {
    Model.bases = [| b |];
    intercept = 2.;
    weights = [| 3. |];
    train_error = 0.;
    complexity = 0.;
  }

let test_insight_variables_used () =
  Alcotest.(check (list int)) "uses x0 and x1" [ 0; 1 ] (Insight.variables_used ratio_model);
  Alcotest.(check (list int)) "unused are x2..x4" [ 2; 3; 4 ]
    (Insight.unused_variables ~dims:5 ratio_model)

let test_insight_sensitivities () =
  let at = [| 1.; 1.; 1.; 1.; 1. |] in
  (* f = 5 at that point; df/dx0 = 3 -> S0 = 3/5; df/dx1 = -3 -> S1 = -3/5 *)
  let s = Insight.sensitivities ratio_model ~at in
  check_close ~tol:1e-4 "S(x0)" 0.6 s.(0);
  check_close ~tol:1e-4 "S(x1)" (-0.6) s.(1);
  check_close "unused exact zero" 0. s.(2)

let test_insight_dominant_variables () =
  let at = [| 1.; 1.; 1.; 1.; 1. |] in
  match Insight.dominant_variables ~top:1 ratio_model ~at with
  | [ (i, _) ] -> Alcotest.(check bool) "x0 or x1 dominates" true (i = 0 || i = 1)
  | _ -> Alcotest.fail "expected exactly one entry"

let test_insight_usage_along_front () =
  let constant =
    { Model.bases = [||]; intercept = 1.; weights = [||]; train_error = 0.; complexity = 0. }
  in
  let usage = Insight.usage_along_front [ ratio_model; ratio_model; constant ] in
  Alcotest.(check bool) "x0 used twice" true (List.mem (0, 2) usage);
  Alcotest.(check bool) "x1 used twice" true (List.mem (1, 2) usage)

let test_insight_report_readable () =
  let at = [| 1.; 1.; 1.; 1.; 1. |] in
  let text = Insight.report ~var_names:[| "id1"; "vsg1"; "a"; "b"; "c" |] ~at ratio_model in
  Alcotest.(check bool) "mentions id1" true
    (String.length text > 0
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ ->
        if i + 3 <= String.length text && String.sub text i 3 = "id1" then re_found := true)
      text;
    !re_found)

let insight_suite =
  [
    Alcotest.test_case "insight: variables used" `Quick test_insight_variables_used;
    Alcotest.test_case "insight: sensitivities" `Quick test_insight_sensitivities;
    Alcotest.test_case "insight: dominant variables" `Quick test_insight_dominant_variables;
    Alcotest.test_case "insight: front usage" `Quick test_insight_usage_along_front;
    Alcotest.test_case "insight: report" `Quick test_insight_report_readable;
  ]

let suite = suite @ insight_suite

(* --- multi-restart search --- *)

let test_merge_fronts_nondominated () =
  let make err cx =
    { Model.bases = [||]; intercept = 0.; weights = [||]; train_error = err; complexity = cx }
  in
  let front1 = [ make 0.5 0.; make 0.2 10. ] in
  let front2 = [ make 0.4 0.; make 0.2 8.; make 0.1 20. ] in
  let merged = Caffeine.Search.merge_fronts [ front1; front2 ] in
  (* Survivors: (0.4, 0), (0.2, 8), (0.1, 20); (0.5,0) and (0.2,10) dominated. *)
  Alcotest.(check int) "three survivors" 3 (List.length merged);
  Alcotest.(check bool) "sorted by complexity" true
    (List.map (fun (m : Model.t) -> m.Model.complexity) merged = [ 0.; 8.; 20. ])

let test_run_multi_at_least_as_good () =
  let rng = Rng.create ~seed:30 () in
  let inputs = Array.init 40 (fun _ -> Array.init 2 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets = Array.map (fun x -> (x.(0) *. x.(0)) +. (1. /. x.(1))) inputs in
  let config = Config.scaled ~pop_size:20 ~generations:10 Config.default in
  let data = data_of inputs in
  (* Island RNGs are split off the master in island order, so a 3-restart
     run executes a superset of the 1-restart run's islands and its merged
     front can only be at least as good. *)
  let single = Search.run_multi ~seed:31 ~restarts:1 config ~data ~targets in
  let multi = Search.run_multi ~seed:31 ~restarts:3 config ~data ~targets in
  let best outcome =
    List.fold_left (fun acc (m : Model.t) -> Float.min acc m.Model.train_error) Float.infinity
      outcome.Search.front
  in
  Alcotest.(check bool) "multi >= single" true (best multi <= best single +. 1e-12);
  Alcotest.(check bool) "counts generations" true
    (multi.Search.generations_run = 3 * config.Config.generations)

let multi_suite =
  [
    Alcotest.test_case "search: merge fronts" `Quick test_merge_fronts_nondominated;
    Alcotest.test_case "search: multi restart" `Quick test_run_multi_at_least_as_good;
  ]

let suite = suite @ multi_suite

(* --- deeper integration: operator discovery and opset restriction --- *)

let test_search_discovers_transcendental_structure () =
  (* Ground truth needs ln; the search must do much better than any
     rational model of similar size can on this log-dominated target. *)
  let rng = Rng.create ~seed:50 () in
  let inputs = Array.init 100 (fun _ -> [| Rng.range rng 0.2 5.0 |]) in
  let targets = Array.map (fun x -> 2. +. (3. *. log x.(0))) inputs in
  let config = Config.scaled ~pop_size:80 ~generations:60 Config.default in
  let outcome = Search.run ~seed:51 config ~data:(data_of inputs) ~targets in
  let best =
    List.fold_left (fun acc (m : Model.t) -> Float.min acc m.Model.train_error) Float.infinity
      outcome.Search.front
  in
  Alcotest.(check bool) "log structure captured (< 2% error)" true (best < 0.02)

let test_search_with_rational_opset_stays_rational () =
  let rng = Rng.create ~seed:52 () in
  let inputs = Array.init 50 (fun _ -> Array.init 2 (fun _ -> Rng.range rng 0.5 2.) ) in
  let targets = Array.map (fun x -> x.(0) /. x.(1)) inputs in
  let config =
    { (Config.scaled ~pop_size:30 ~generations:20 Config.default) with Config.opset = Opset.rational }
  in
  let outcome = Search.run ~seed:53 config ~data:(data_of inputs) ~targets in
  List.iter
    (fun (m : Model.t) ->
      Array.iter
        (fun b -> Alcotest.(check bool) "no operator factors" true (b.Expr.factors = []))
        m.Model.bases)
    outcome.Search.front;
  let best =
    List.fold_left (fun acc (m : Model.t) -> Float.min acc m.Model.train_error) Float.infinity
      outcome.Search.front
  in
  Alcotest.(check bool) "exact rational recovery" true (best < 1e-6)

let test_search_handles_constant_target () =
  let inputs = Array.init 20 (fun i -> [| 1. +. float_of_int i |]) in
  let targets = Array.map (fun _ -> 42.) inputs in
  let config = Config.scaled ~pop_size:10 ~generations:5 Config.default in
  let outcome = Search.run ~seed:54 config ~data:(data_of inputs) ~targets in
  match outcome.Search.front with
  | first :: _ ->
      check_close "constant recovered" 42. first.Model.intercept;
      check_close "zero error" 0. first.Model.train_error
  | [] -> Alcotest.fail "empty front"

let test_full_grammar_text_roundtrip () =
  let module Grammar = Caffeine_grammar.Grammar in
  let g = Grammar.caffeine in
  let reparsed = Grammar.parse_exn (Grammar.to_text g) in
  Alcotest.(check bool) "same terminals" true (Grammar.terminals g = Grammar.terminals reparsed);
  Alcotest.(check bool) "same nonterminals" true
    (Grammar.nonterminals g = Grammar.nonterminals reparsed);
  let opset_a = Opset.of_grammar g and opset_b = Opset.of_grammar reparsed in
  Alcotest.(check bool) "same derived opset" true (opset_a = opset_b)

let integration_suite =
  [
    Alcotest.test_case "integration: discovers ln structure" `Slow
      test_search_discovers_transcendental_structure;
    Alcotest.test_case "integration: rational opset respected" `Quick
      test_search_with_rational_opset_stays_rational;
    Alcotest.test_case "integration: constant target" `Quick test_search_handles_constant_target;
    Alcotest.test_case "integration: grammar text round-trip" `Quick
      test_full_grammar_text_roundtrip;
  ]

let suite = suite @ integration_suite

(* --- Sobol global sensitivity --- *)

let test_sobol_additive_model () =
  (* f = 2 x0 + x1 over [0,1]^3: Var = 4/12 + 1/12; S0 = 0.8, S1 = 0.2,
     S2 = 0. *)
  let b0 = Expr.{ vc = Some [| 1; 0; 0 |]; factors = [] } in
  let b1 = Expr.{ vc = Some [| 0; 1; 0 |]; factors = [] } in
  let model =
    {
      Model.bases = [| b0; b1 |];
      intercept = 0.;
      weights = [| 2.; 1. |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  let rng = Rng.create ~seed:60 () in
  let indices =
    Caffeine.Insight.sobol_first_order ~samples:4000 rng model ~lo:[| 0.; 0.; 0. |]
      ~hi:[| 1.; 1.; 1. |]
  in
  check_close ~tol:0.08 "S0 near 0.8" 0.8 indices.(0);
  check_close ~tol:0.08 "S1 near 0.2" 0.2 indices.(1);
  Alcotest.(check bool) "unused variable near 0" true (indices.(2) < 0.05)

let test_sobol_constant_model_is_zero () =
  let model =
    { Model.bases = [||]; intercept = 7.; weights = [||]; train_error = 0.; complexity = 0. }
  in
  let rng = Rng.create ~seed:61 () in
  let indices =
    Caffeine.Insight.sobol_first_order ~samples:200 rng model ~lo:[| 0. |] ~hi:[| 1. |]
  in
  check_close "constant model" 0. indices.(0)

let test_sobol_indices_bounded () =
  let rng = Rng.create ~seed:62 () in
  let basis = Gen.random_basis rng Opset.no_trig ~dims:3 ~depth:3 ~max_vc_vars:2 in
  let model =
    { Model.bases = [| basis |]; intercept = 1.; weights = [| 2. |]; train_error = 0.; complexity = 0. }
  in
  let indices =
    Caffeine.Insight.sobol_first_order ~samples:500 rng model ~lo:[| 0.5; 0.5; 0.5 |]
      ~hi:[| 2.; 2.; 2. |]
  in
  Array.iter
    (fun s -> Alcotest.(check bool) "index in [0,1]" true (s >= 0. && s <= 1.))
    indices

let test_sobol_offset_dominated_model () =
  (* Regression: a large intercept must not wash out the indices (the
     uncentered Saltelli estimator's Monte-Carlo error scales with the
     squared mean).  f = 187.4 - 74.14/x0 - 60.05/x1 over +-10% boxes:
     analytic first-order indices are ~0.63 / ~0.37. *)
  let b1 = Expr.{ vc = Some [| -1; 0 |]; factors = [] } in
  let b2 = Expr.{ vc = Some [| 0; -1 |]; factors = [] } in
  let model =
    {
      Model.bases = [| b1; b2 |];
      intercept = 187.4;
      weights = [| -74.14; -60.05 |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  let rng = Rng.create ~seed:63 () in
  let indices =
    Caffeine.Insight.sobol_first_order ~samples:8000 rng model ~lo:[| 0.99; 1.035 |]
      ~hi:[| 1.21; 1.265 |]
  in
  check_close ~tol:0.08 "S0" 0.63 indices.(0);
  check_close ~tol:0.08 "S1" 0.37 indices.(1)

let sobol_suite =
  [
    Alcotest.test_case "sobol: additive model" `Quick test_sobol_additive_model;
    Alcotest.test_case "sobol: constant model" `Quick test_sobol_constant_model_is_zero;
    Alcotest.test_case "sobol: bounded" `Quick test_sobol_indices_bounded;
    Alcotest.test_case "sobol: offset-dominated" `Quick test_sobol_offset_dominated_model;
  ]

let suite = suite @ sobol_suite

(* --- evaluation cache --- *)

module Eval_cache = Caffeine.Eval_cache
module Executor = Caffeine_par.Executor

let front_pairs outcome =
  List.map (fun (m : Model.t) -> (m.Model.train_error, m.Model.complexity)) outcome.Search.front

let test_eval_cache_mode_strings () =
  List.iter
    (fun mode ->
      match Eval_cache.mode_of_string (Eval_cache.mode_to_string mode) with
      | Ok m -> Alcotest.(check bool) "mode round-trips" true (m = mode)
      | Error e -> Alcotest.fail e)
    [ Eval_cache.Off; Eval_cache.Exact; Eval_cache.Behavioral ];
  match Eval_cache.mode_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus mode accepted"
  | Error _ -> ()

let cache_inputs seed n dims =
  let rng = Rng.create ~seed () in
  Array.init n (fun _ -> Array.init dims (fun _ -> Rng.range rng 0.5 2.0))

let test_eval_cache_exact_lookup_store () =
  let data = data_of (cache_inputs 60 24 2) in
  let cache = Eval_cache.create ~mode:Eval_cache.Exact ~wb:10. ~wvc:0.25 ~data () in
  let ind = [| Expr.{ vc = Some [| 1; 0 |]; factors = [] } |] in
  Alcotest.(check bool) "cold lookup misses" true (Eval_cache.lookup cache ind = None);
  Eval_cache.store cache ind [| 0.5; 3. |];
  (match Eval_cache.lookup cache ind with
  | Some o -> Alcotest.(check bool) "stored objectives returned" true (o = [| 0.5; 3. |])
  | None -> Alcotest.fail "stored individual not found");
  (* A structurally equal rebuild hits; a different individual misses. *)
  let rebuilt = [| Expr.{ vc = Some [| 1; 0 |]; factors = [] } |] in
  let other = [| Expr.{ vc = Some [| 0; 1 |]; factors = [] } |] in
  Alcotest.(check bool) "structural twin hits" true (Eval_cache.lookup cache rebuilt <> None);
  Alcotest.(check bool) "different individual misses" true (Eval_cache.lookup cache other = None);
  let s = Eval_cache.stats cache in
  Alcotest.(check int) "hits" 2 s.Eval_cache.hits;
  Alcotest.(check int) "misses" 2 s.Eval_cache.misses;
  Alcotest.(check int) "one entry" 1 s.Eval_cache.entries

let test_eval_cache_off_is_inert () =
  let data = data_of (cache_inputs 61 20 2) in
  let cache = Eval_cache.create ~mode:Eval_cache.Off ~wb:10. ~wvc:0.25 ~data () in
  let ind = [| Expr.{ vc = Some [| 1; 0 |]; factors = [] } |] in
  Eval_cache.store cache ind [| 0.5; 3. |];
  Alcotest.(check bool) "off never hits" true (Eval_cache.lookup cache ind = None);
  Alcotest.(check int) "off stores nothing" 0 (Eval_cache.stats cache).Eval_cache.entries;
  Alcotest.(check int) "off diversity is -1" (-1) (Eval_cache.diversity cache [| ind |])

let test_eval_cache_eviction_bounded () =
  let data = data_of (cache_inputs 62 20 2) in
  let cache = Eval_cache.create ~limit:32 ~mode:Eval_cache.Exact ~wb:10. ~wvc:0.25 ~data () in
  for k = 1 to 200 do
    let ind = [| Expr.{ vc = Some [| k; 0 |]; factors = [] } |] in
    Eval_cache.store cache ind [| float_of_int k; 1. |]
  done;
  let s = Eval_cache.stats cache in
  Alcotest.(check bool) "entries bounded by the limit" true (s.Eval_cache.entries <= 32);
  Alcotest.(check bool) "evictions counted" true (s.Eval_cache.evictions > 0);
  Alcotest.(check int) "stores + survivors = 200" 200 (s.Eval_cache.evictions + s.Eval_cache.entries)

let test_eval_cache_behavioral_reuse () =
  (* Columns 0 and 1 are identical, so x0 and x1 are structurally different
     individuals with bit-identical probe outputs: the behavioral level must
     reuse the fitted training error across them while recomputing the
     (here equal, but candidate-owned) structural complexity. *)
  let inputs = Array.init 20 (fun i -> let v = 0.5 +. (0.1 *. float_of_int i) in [| v; v |]) in
  let targets = Array.map (fun x -> 2. *. x.(0)) inputs in
  let data = data_of inputs in
  let cache = Eval_cache.create ~mode:Eval_cache.Behavioral ~wb:10. ~wvc:0.25 ~data () in
  let a = [| Expr.{ vc = Some [| 1; 0 |]; factors = [] } |] in
  let b = [| Expr.{ vc = Some [| 0; 1 |]; factors = [] } |] in
  let objectives ind =
    match Model.fit ~wb:10. ~wvc:0.25 ind ~data ~targets with
    | Some m -> [| m.Model.train_error; m.Model.complexity |]
    | None -> Alcotest.fail "fit failed"
  in
  let oa = objectives a in
  Eval_cache.store cache a oa;
  (match Eval_cache.lookup cache b with
  | Some ob ->
      Alcotest.(check (float 0.)) "train error reused bit-identically" oa.(0) ob.(0);
      Alcotest.(check (float 0.)) "complexity recomputed for b" (objectives b).(1) ob.(1)
  | None -> Alcotest.fail "behavioral twin missed");
  Alcotest.(check int) "served by L2" 1 (Eval_cache.stats cache).Eval_cache.l2_hits;
  (* The L2 hit promoted b into L1. *)
  (match Eval_cache.lookup cache b with
  | Some _ -> ()
  | None -> Alcotest.fail "promoted individual missed");
  Alcotest.(check int) "second lookup is exact" 1 (Eval_cache.stats cache).Eval_cache.l1_hits

let test_eval_cache_fingerprint_stable_under_clear () =
  let inputs = cache_inputs 63 30 2 in
  let targets = Array.map (fun x -> x.(0) +. (0.5 /. x.(1))) inputs in
  let data = data_of inputs in
  let cache = Eval_cache.create ~mode:Eval_cache.Behavioral ~wb:10. ~wvc:0.25 ~data () in
  let ind =
    [|
      Expr.{ vc = Some [| 1; -1 |]; factors = [] };
      Expr.{ vc = Some [| 2; 0 |]; factors = [] };
    |]
  in
  (* Warm the dataset's column cache so the first fingerprint subsamples
     cached columns, then drop it so the second one re-evaluates through
     the compiled probe path: the IEEE words must agree. *)
  ignore (Model.fit ~wb:10. ~wvc:0.25 ind ~data ~targets);
  let warm = Eval_cache.fingerprint cache ind in
  Dataset.clear_cache data;
  let cold = Eval_cache.fingerprint cache ind in
  Alcotest.(check bool) "fingerprint survives clear_cache" true (warm = cold);
  Alcotest.(check bool) "probe size clamped to dataset" true (Eval_cache.probe_size cache <= 30)

(* The L1 exactness contract, end to end: for any seed, turning the cache
   on — at any backend — leaves the evolved front bit-identical to the
   cache-off sequential run. *)
let eval_cache_front_invariance =
  QCheck.Test.make ~name:"eval cache never changes the front (any backend)" ~count:3
    QCheck.(int_bound 1000)
    (fun salt ->
      let seed = 700 + salt in
      let inputs = cache_inputs seed 24 2 in
      let targets = Array.map (fun x -> (x.(0) *. x.(0)) +. (0.7 /. x.(1))) inputs in
      let data = data_of inputs in
      let config = Config.scaled ~pop_size:12 ~generations:6 Config.default in
      let run backend ?jobs ?shards mode =
        Executor.with_executor ?jobs ?shards backend @@ fun executor ->
        front_pairs (Search.run ~seed ~executor ~eval_cache:mode config ~data ~targets)
      in
      let reference = run Executor.Seq Eval_cache.Off in
      List.for_all
        (fun front -> front = reference)
        [
          run Executor.Seq Eval_cache.Exact;
          run Executor.Seq Eval_cache.Behavioral;
          run Executor.Domains ~jobs:4 Eval_cache.Exact;
          run Executor.Processes ~shards:3 Eval_cache.Exact;
          run Executor.Processes ~shards:3 Eval_cache.Behavioral;
        ])

let eval_cache_suite =
  [
    Alcotest.test_case "eval cache: mode strings" `Quick test_eval_cache_mode_strings;
    Alcotest.test_case "eval cache: exact lookup/store" `Quick test_eval_cache_exact_lookup_store;
    Alcotest.test_case "eval cache: off is inert" `Quick test_eval_cache_off_is_inert;
    Alcotest.test_case "eval cache: bounded eviction" `Quick test_eval_cache_eviction_bounded;
    Alcotest.test_case "eval cache: behavioral reuse" `Quick test_eval_cache_behavioral_reuse;
    Alcotest.test_case "eval cache: fingerprint stable under clear_cache" `Quick
      test_eval_cache_fingerprint_stable_under_clear;
    QCheck_alcotest.to_alcotest ~long:false eval_cache_front_invariance;
  ]

let suite = suite @ eval_cache_suite

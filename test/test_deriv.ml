(* Tests for forward-mode automatic differentiation on canonical-form
   expressions: closed-form checks per operator and agreement with finite
   differences on random generated trees. *)

module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Deriv = Caffeine_expr.Deriv
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let dual v d = { Deriv.value = v; deriv = d }

let test_dual_unary_rules () =
  let x = dual 2. 1. in
  let check op expected_value expected_deriv =
    let result = Deriv.apply_unary op x in
    check_close (Op.unary_name op ^ " value") expected_value result.Deriv.value;
    check_close (Op.unary_name op ^ " deriv") expected_deriv result.Deriv.deriv
  in
  check Op.Sqrt (sqrt 2.) (1. /. (2. *. sqrt 2.));
  check Op.Log_e (log 2.) 0.5;
  check Op.Log_10 (log10 2.) (1. /. (2. *. log 10.));
  check Op.Inv 0.5 (-0.25);
  check Op.Abs 2. 1.;
  check Op.Square 4. 4.;
  check Op.Sin (sin 2.) (cos 2.);
  check Op.Cos (cos 2.) (-.sin 2.);
  check Op.Tan (tan 2.) (1. +. (tan 2. *. tan 2.));
  check Op.Max0 2. 1.;
  check Op.Min0 0. 0.;
  check Op.Exp2 4. (4. *. log 2.);
  check Op.Exp10 100. (100. *. log 10.)

let test_dual_unary_negative_branch () =
  let x = dual (-3.) 1. in
  let abs_result = Deriv.apply_unary Op.Abs x in
  check_close "abs deriv on negative side" (-1.) abs_result.Deriv.deriv;
  let max0_result = Deriv.apply_unary Op.Max0 x in
  check_close "max0 clamps derivative" 0. max0_result.Deriv.deriv;
  let min0_result = Deriv.apply_unary Op.Min0 x in
  check_close "min0 passes derivative" 1. min0_result.Deriv.deriv

let test_dual_binary_rules () =
  let a = dual 2. 1. and b = dual 3. 0. in
  let division = Deriv.apply_binary Op.Div a b in
  check_close "div value" (2. /. 3.) division.Deriv.value;
  check_close "div deriv" (1. /. 3.) division.Deriv.deriv;
  let power = Deriv.apply_binary Op.Pow a b in
  check_close "pow value" 8. power.Deriv.value;
  check_close "pow deriv (d/da a^3 = 3a^2)" 12. power.Deriv.deriv;
  let power_exponent = Deriv.apply_binary Op.Pow b a in
  (* d/da 3^a = 3^a ln 3 at a = 2 -> 9 ln 3. *)
  check_close "pow deriv wrt exponent" (9. *. log 3.) power_exponent.Deriv.deriv;
  let maximum = Deriv.apply_binary Op.Max a b in
  check_close "max takes larger branch deriv" 0. maximum.Deriv.deriv;
  let minimum = Deriv.apply_binary Op.Min a b in
  check_close "min takes smaller branch deriv" 1. minimum.Deriv.deriv

let test_vc_gradient () =
  (* f = x0^2 / x1: df/dx0 = 2 x0/x1, df/dx1 = -x0^2/x1^2. *)
  let vc = [| 2; -1 |] in
  let point = [| 3.; 2. |] in
  let d0 = Deriv.eval_vc vc point ~wrt:0 in
  check_close "value" 4.5 d0.Deriv.value;
  check_close "d/dx0" 3. d0.Deriv.deriv;
  let d1 = Deriv.eval_vc vc point ~wrt:1 in
  check_close "d/dx1" (-2.25) d1.Deriv.deriv

let test_wsum_gradient_known () =
  (* f = 1 + 2 x0 - 3 x0 x1; grad = (2 - 3 x1, -3 x0). *)
  let b0 = Expr.{ vc = Some [| 1; 0 |]; factors = [] } in
  let b01 = Expr.{ vc = Some [| 1; 1 |]; factors = [] } in
  let ws = Expr.{ bias = 1.; terms = [ (2., b0); (-3., b01) ] } in
  let gradient = Deriv.gradient_wsum ws [| 2.; 5. |] in
  check_close "df/dx0" (2. -. 15.) gradient.(0);
  check_close "df/dx1" (-6.) gradient.(1)

let finite_difference f point i =
  let h = 1e-6 *. Float.max 1. (Float.abs point.(i)) in
  let probe delta =
    let x = Array.copy point in
    x.(i) <- x.(i) +. delta;
    f x
  in
  (probe h -. probe (-.h)) /. (2. *. h)

let test_ad_matches_finite_difference_on_random_trees () =
  let rng = Rng.create ~seed:8 () in
  let opset = Caffeine.Opset.no_trig (* keep tan's poles out of the tolerance check *) in
  let successes = ref 0 in
  let attempts = ref 0 in
  while !successes < 80 && !attempts < 600 do
    incr attempts;
    let basis = Caffeine.Gen.random_basis rng opset ~dims:3 ~depth:4 ~max_vc_vars:2 in
    let point = Array.init 3 (fun _ -> Rng.range rng 0.6 1.8) in
    let ws = Expr.{ bias = 0.5; terms = [ (1.5, basis) ] } in
    let value = Expr.eval_wsum ws point in
    if Float.is_finite value then begin
      let gradient = Deriv.gradient_wsum ws point in
      let all_match = ref true in
      Array.iteri
        (fun i g ->
          if Float.is_finite g then begin
            let numeric = finite_difference (Expr.eval_wsum ws) point i in
            let scale = Float.max 1. (Float.abs g) in
            if Float.abs (numeric -. g) > 1e-3 *. scale then all_match := false
          end)
        gradient;
      if !all_match then incr successes
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "AD matches finite differences (%d/%d)" !successes !attempts)
    true (!successes >= 80)

let test_ad_value_agrees_with_eval () =
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 100 do
    let basis = Caffeine.Gen.random_basis rng Caffeine.Opset.default ~dims:3 ~depth:4 ~max_vc_vars:2 in
    let point = Array.init 3 (fun _ -> Rng.range rng 0.5 2.) in
    let direct = Expr.eval_basis basis point in
    let dual_result = Deriv.eval_basis basis point ~wrt:0 in
    if Float.is_finite direct then
      check_close ~tol:1e-9 "dual value equals eval" direct dual_result.Deriv.value
  done

let test_exact_sensitivities_match_numeric () =
  let b = Expr.{ vc = Some [| 1; -1; 0 |]; factors = [] } in
  let model =
    {
      Caffeine.Model.bases = [| b |];
      intercept = 2.;
      weights = [| 3. |];
      train_error = 0.;
      complexity = 0.;
    }
  in
  let at = [| 1.5; 0.8; 1. |] in
  let numeric = Caffeine.Insight.sensitivities model ~at in
  let exact = Caffeine.Insight.exact_sensitivities model ~at in
  Array.iteri
    (fun i n -> if Float.is_finite n then check_close ~tol:1e-4 "sensitivity agreement" n exact.(i))
    numeric

let suite =
  [
    Alcotest.test_case "dual: unary rules" `Quick test_dual_unary_rules;
    Alcotest.test_case "dual: negative branches" `Quick test_dual_unary_negative_branch;
    Alcotest.test_case "dual: binary rules" `Quick test_dual_binary_rules;
    Alcotest.test_case "vc gradient" `Quick test_vc_gradient;
    Alcotest.test_case "wsum gradient" `Quick test_wsum_gradient_known;
    Alcotest.test_case "AD vs finite differences" `Quick test_ad_matches_finite_difference_on_random_trees;
    Alcotest.test_case "AD value = eval" `Quick test_ad_value_agrees_with_eval;
    Alcotest.test_case "exact sensitivities" `Quick test_exact_sensitivities_match_numeric;
  ]

(* Tests for the multi-process island backend: Shard mechanics (event
   ordering, worker death) and the Search-level contract — fronts, traces
   and resumed runs bit-identical to the sequential backend at every
   shard count. *)

module Rng = Caffeine_util.Rng
module Dataset = Caffeine_io.Dataset
module Trace = Caffeine_obs.Trace
module Metrics = Caffeine_obs.Metrics
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Shard = Caffeine.Shard
module Checkpoint = Caffeine.Checkpoint
module Executor = Caffeine_par.Executor

let toy_problem seed =
  let rng = Rng.create ~seed () in
  let inputs = Array.init 40 (fun _ -> Array.init 3 (fun _ -> Rng.range rng 0.5 2.)) in
  let targets =
    Array.map (fun x -> (x.(0) *. x.(0)) +. (1. /. x.(1)) +. (0.3 *. x.(2))) inputs
  in
  (inputs, targets)

let front_signature front =
  List.map
    (fun (m : Model.t) ->
      (m.Model.train_error, m.Model.complexity, m.Model.intercept, Array.to_list m.Model.weights))
    front

(* [compare]-based: bit-exact even if a weight ever goes NaN. *)
let equal_fronts a b = compare (front_signature a) (front_signature b) = 0

let string_contains ~affix s =
  let n = String.length affix and len = String.length s in
  let rec scan i = i + n <= len && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

(* --- Shard mechanics, independent of the search ------------------------- *)

let pending seed = Checkpoint.Pending (Rng.to_state (Rng.create ~seed ()))

let test_events_delivered_in_island_order () =
  let islands = Array.init 3 (fun k -> pending (k + 1)) in
  let run_island ~emit ~progress:_ ~island _state =
    (* Two records per island; wall-clock interleaving across the three
       workers is arbitrary, delivery order must not be. *)
    emit (Trace.Warning { Trace.context = "test"; message = Printf.sprintf "%d/a" island });
    emit (Trace.Warning { Trace.context = "test"; message = Printf.sprintf "%d/b" island });
    []
  in
  let seen = ref [] in
  let deliver ~island event =
    let tag =
      match event with
      | Shard.Record (Trace.Warning w) -> w.Trace.message
      | Shard.Record (Trace.Migration m) ->
          Alcotest.(check int) "migration matches delivery island" island m.Trace.island;
          Printf.sprintf "%d/migration" m.Trace.island
      | _ -> Alcotest.fail "unexpected event"
    in
    seen := tag :: !seen
  in
  let before = Metrics.counter_value (Metrics.counter Metrics.default "shard.migrations") in
  let fronts = Shard.run_islands ~shards:3 ~deliver ~run_island islands in
  Alcotest.(check int) "three fronts" 3 (Array.length fronts);
  Array.iter (fun front -> Alcotest.(check bool) "empty fronts" true (front = [])) fronts;
  Alcotest.(check (list string)) "events released in island order"
    [ "0/a"; "0/b"; "0/migration"; "1/a"; "1/b"; "1/migration"; "2/a"; "2/b"; "2/migration" ]
    (List.rev !seen);
  Alcotest.(check int) "one migration counted per island" (before + 3)
    (Metrics.counter_value (Metrics.counter Metrics.default "shard.migrations"))

let test_done_islands_pass_through () =
  let islands = [| Checkpoint.Done []; pending 5 |] in
  let run_island ~emit ~progress:_ ~island _state =
    (* [run_island] executes in the forked worker, so report which island
       it saw over the wire, not through shared state. *)
    emit (Trace.Warning { Trace.context = "test"; message = string_of_int island });
    []
  in
  let visited = ref [] in
  let deliver ~island:_ = function
    | Shard.Record (Trace.Warning w) -> visited := w.Trace.message :: !visited
    | _ -> ()
  in
  let workers = Metrics.counter Metrics.default "shard.workers_spawned" in
  let before = Metrics.counter_value workers in
  let fronts = Shard.run_islands ~shards:4 ~deliver ~run_island islands in
  Alcotest.(check int) "both fronts returned" 2 (Array.length fronts);
  (* Only the pending island reached a worker — and since shards are
     clamped to the unfinished count, only one process was forked. *)
  Alcotest.(check (list string)) "only the pending island ran" [ "1" ] (List.rev !visited);
  Alcotest.(check int) "one worker forked" (before + 1) (Metrics.counter_value workers)

let test_worker_death_raises_cleanly () =
  let islands = [| pending 3; pending 4 |] in
  let run_island ~emit:_ ~progress:_ ~island _state =
    if island = 1 then Unix._exit 9 else []
  in
  match Shard.run_islands ~shards:2 ~run_island islands with
  | _ -> Alcotest.fail "expected Worker_failed"
  | exception Shard.Worker_failed message ->
      Alcotest.(check bool) "message names the exit code" true
        (string_contains ~affix:"exited with code 9" message);
      Alcotest.(check bool) "message names the unfinished island" true
        (string_contains ~affix:"island(s) 1 unfinished" message)

let test_worker_exception_surfaces () =
  let islands = [| pending 6 |] in
  let run_island ~emit:_ ~progress:_ ~island:_ _state = failwith "island blew up" in
  match Shard.run_islands ~shards:1 ~run_island islands with
  | _ -> Alcotest.fail "expected Worker_failed"
  | exception Shard.Worker_failed message ->
      Alcotest.(check bool) "worker exception text travels back" true
        (string_contains ~affix:"island blew up" message)

(* --- Search under the process backend ----------------------------------- *)

let test_run_multi_fronts_identical () =
  let inputs, targets = toy_problem 5 in
  let config = Config.scaled ~pop_size:12 ~generations:5 ~jobs:1 Config.default in
  let sequential =
    let data = Dataset.of_rows inputs in
    Search.run_multi ~seed:11 ~restarts:3 config ~data ~targets
  in
  List.iter
    (fun shards ->
      let data = Dataset.of_rows inputs in
      let sharded =
        Executor.with_executor ~shards Executor.Processes @@ fun executor ->
        Search.run_multi ~seed:11 ~executor ~restarts:3 config ~data ~targets
      in
      Alcotest.(check bool)
        (Printf.sprintf "front at %d shard(s) identical to sequential" shards)
        true
        (equal_fronts sequential.Search.front sharded.Search.front))
    [ 1; 2; 5 ]

let test_run_front_identical () =
  let inputs, targets = toy_problem 8 in
  let config = Config.scaled ~pop_size:12 ~generations:5 ~jobs:1 Config.default in
  let sequential =
    let data = Dataset.of_rows inputs in
    Search.run ~seed:29 config ~data ~targets
  in
  let data = Dataset.of_rows inputs in
  let sharded =
    Executor.with_executor Executor.Processes @@ fun executor ->
    Search.run ~seed:29 ~executor config ~data ~targets
  in
  Alcotest.(check bool) "single-island processes run identical to sequential" true
    (equal_fronts sequential.Search.front sharded.Search.front)

let test_trace_identical_across_shards () =
  let inputs, targets = toy_problem 6 in
  let config = Config.scaled ~pop_size:12 ~generations:5 ~jobs:1 Config.default in
  let capture executor =
    let data = Dataset.of_rows inputs in
    let sink = Trace.memory () in
    ignore (Search.run_multi ~seed:13 ?executor ~trace:sink ~restarts:3 config ~data ~targets);
    Trace.contents sink
  in
  let sequential = capture None in
  let with_shards shards =
    Executor.with_executor ~shards Executor.Processes @@ fun executor ->
    capture (Some executor)
  in
  let shard1 = with_shards 1 in
  let shard3 = with_shards 3 in
  let project records = List.filter_map Trace.deterministic records in
  let non_migration records =
    List.filter (function Trace.Migration _ -> false | _ -> true) records
  in
  Alcotest.(check bool) "minus migrations, the process trace is the sequential trace" true
    (compare (project (non_migration shard3)) (project sequential) = 0);
  Alcotest.(check bool) "shard 1 and shard 3 projections byte-identical" true
    (compare
       (List.map Trace.to_line (project shard1))
       (List.map Trace.to_line (project shard3))
    = 0);
  let migrations =
    List.filter_map (function Trace.Migration m -> Some m | _ -> None) shard3
  in
  Alcotest.(check (list int)) "one migration per island, in island order" [ 0; 1; 2 ]
    (List.map (fun (m : Trace.migration) -> m.Trace.island) migrations);
  List.iter
    (fun (m : Trace.migration) ->
      Alcotest.(check bool) "migration carries the front" true (m.Trace.models > 0);
      Alcotest.(check bool) "migration counts wire bytes" true (m.Trace.bytes > 0))
    migrations

let test_on_generation_replayed_in_island_order () =
  let inputs, targets = toy_problem 9 in
  let config = Config.scaled ~pop_size:12 ~generations:4 ~jobs:1 Config.default in
  let capture executor =
    let data = Dataset.of_rows inputs in
    let seen = ref [] in
    ignore
      (Search.run_multi ~seed:17 ?executor
         ~on_generation:(fun ~island record -> seen := (island, record.Trace.gen) :: !seen)
         ~restarts:3 config ~data ~targets);
    List.rev !seen
  in
  let sequential = capture None in
  let sharded =
    Executor.with_executor ~shards:3 Executor.Processes @@ fun executor ->
    capture (Some executor)
  in
  Alcotest.(check bool) "generation callbacks replay in sequential order" true
    (sequential = sharded)

exception Killed

let with_temp_file f =
  let path = Filename.temp_file "caffeine_shard" ".ckpt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_kill_resume_identical () =
  (* Kill the coordinator mid-run (island 1's generation stream), resume
     from the snapshot under the process backend: the final front must be
     the uninterrupted sequential run's, bit for bit. *)
  let inputs, targets = toy_problem 7 in
  let config = Config.scaled ~pop_size:10 ~generations:6 ~jobs:1 Config.default in
  let full =
    let data = Dataset.of_rows inputs in
    Search.run_multi ~seed:9 ~restarts:3 config ~data ~targets
  in
  with_temp_file @@ fun path ->
  let data = Dataset.of_rows inputs in
  (match
     Executor.with_executor ~shards:3 Executor.Processes (fun executor ->
         Search.run_multi ~seed:9 ~executor ~restarts:3
           ~on_generation:(fun ~island record ->
             if island = 1 && record.Trace.gen >= 4 then raise Killed)
           ~checkpoint_path:path ~checkpoint_every:2 config ~data ~targets)
   with
  | _ -> Alcotest.fail "expected the kill to escape Search.run_multi"
  | exception Killed -> ());
  let snapshot =
    match Checkpoint.load ~path with
    | Ok snapshot -> snapshot
    | Error message -> Alcotest.failf "load failed: %s" message
  in
  let data = Dataset.of_rows inputs in
  let resumed =
    Executor.with_executor ~shards:2 Executor.Processes @@ fun executor ->
    Search.run_multi ~seed:9 ~executor ~restarts:3 ~resume:snapshot ~checkpoint_path:path
      config ~data ~targets
  in
  Alcotest.(check bool) "resumed process-backend front identical to uninterrupted" true
    (equal_fronts full.Search.front resumed.Search.front);
  match Checkpoint.load ~path with
  | Ok { Checkpoint.phase = Checkpoint.Evolving islands; _ } ->
      Alcotest.(check bool) "final snapshot holds every island finished" true
        (Array.for_all (function Checkpoint.Done _ -> true | _ -> false) islands)
  | Ok _ -> Alcotest.fail "expected an evolving snapshot"
  | Error message -> Alcotest.failf "reload failed: %s" message

let suite =
  [
    Alcotest.test_case "shard: events in island order" `Quick test_events_delivered_in_island_order;
    Alcotest.test_case "shard: done islands pass through" `Quick test_done_islands_pass_through;
    Alcotest.test_case "shard: worker death raises cleanly" `Quick test_worker_death_raises_cleanly;
    Alcotest.test_case "shard: worker exception surfaces" `Quick test_worker_exception_surfaces;
    Alcotest.test_case "search: run_multi fronts identical" `Quick test_run_multi_fronts_identical;
    Alcotest.test_case "search: run front identical" `Quick test_run_front_identical;
    Alcotest.test_case "search: trace identical across shards" `Quick
      test_trace_identical_across_shards;
    Alcotest.test_case "search: on_generation island order" `Quick
      test_on_generation_replayed_in_island_order;
    Alcotest.test_case "search: kill/resume identical" `Quick test_kill_resume_identical;
  ]

(* Tests for the generic NSGA-II engine: dominance, sorting, crowding, and
   full runs on analytic multi-objective problems. *)

module Nsga2 = Caffeine_evo.Nsga2
module Rng = Caffeine_util.Rng

let test_dominates_basic () =
  Alcotest.(check bool) "strictly better" true (Nsga2.dominates [| 1.; 1. |] [| 2.; 2. |]);
  Alcotest.(check bool) "better in one" true (Nsga2.dominates [| 1.; 2. |] [| 2.; 2. |]);
  Alcotest.(check bool) "equal does not dominate" false (Nsga2.dominates [| 1.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "tradeoff does not dominate" false (Nsga2.dominates [| 1.; 3. |] [| 2.; 2. |]);
  Alcotest.(check bool) "asymmetry" false (Nsga2.dominates [| 2.; 2. |] [| 1.; 1. |])

let test_fast_nondominated_sort_fronts () =
  let objectives = [| [| 1.; 4. |]; [| 2.; 3. |]; [| 3.; 2. |]; [| 2.; 4. |]; [| 4.; 4. |] |] in
  let fronts = Nsga2.fast_nondominated_sort objectives in
  (* Points 0,1,2 are mutually nondominated; 3 is dominated by 1; 4 by all. *)
  Alcotest.(check (list int)) "front 0" [ 0; 1; 2 ] (List.sort compare fronts.(0));
  Alcotest.(check (list int)) "front 1" [ 3 ] (List.sort compare fronts.(1));
  Alcotest.(check (list int)) "front 2" [ 4 ] (List.sort compare fronts.(2))

let test_sort_handles_duplicates () =
  let objectives = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 2.; 2. |] |] in
  let fronts = Nsga2.fast_nondominated_sort objectives in
  Alcotest.(check (list int)) "duplicates share the front" [ 0; 1 ] (List.sort compare fronts.(0))

let test_sort_partitions_everything () =
  let rng = Rng.create ~seed:1 () in
  let objectives = Array.init 50 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
  let fronts = Nsga2.fast_nondominated_sort objectives in
  let total = Array.fold_left (fun acc f -> acc + List.length f) 0 fronts in
  Alcotest.(check int) "every index in exactly one front" 50 total

let test_front_members_mutually_nondominated () =
  let rng = Rng.create ~seed:2 () in
  let objectives = Array.init 40 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
  let fronts = Nsga2.fast_nondominated_sort objectives in
  Array.iter
    (fun front ->
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if p <> q then
                Alcotest.(check bool) "no intra-front domination" false
                  (Nsga2.dominates objectives.(p) objectives.(q)))
            front)
        front)
    fronts

let test_crowding_boundaries_infinite () =
  let objectives = [| [| 0.; 3. |]; [| 1.; 2. |]; [| 2.; 1. |]; [| 3.; 0. |] |] in
  let distances = Nsga2.crowding_distances objectives [ 0; 1; 2; 3 ] in
  let lookup i = List.assoc i distances in
  Alcotest.(check bool) "lower boundary infinite" true (lookup 0 = Float.infinity);
  Alcotest.(check bool) "upper boundary infinite" true (lookup 3 = Float.infinity);
  Alcotest.(check bool) "interior finite" true (Float.is_finite (lookup 1));
  Alcotest.(check bool) "interior finite" true (Float.is_finite (lookup 2))

let test_crowding_prefers_isolated_points () =
  (* Point 1 is much closer to point 0 than point 2 is to its neighbors. *)
  let objectives = [| [| 0.; 10. |]; [| 0.5; 9.5 |]; [| 5.; 5. |]; [| 10.; 0. |] |] in
  let distances = Nsga2.crowding_distances objectives [ 0; 1; 2; 3 ] in
  let lookup i = List.assoc i distances in
  Alcotest.(check bool) "isolated point more crowded-distance" true (lookup 2 > lookup 1)

let test_run_minimizes_sphere_tradeoff () =
  (* Classic Schaffer problem: f1 = x^2, f2 = (x-2)^2; the Pareto set is
     x in [0, 2]. *)
  let rng = Rng.create ~seed:3 () in
  let population =
    Nsga2.run ~rng
      {
        Nsga2.pop_size = 60;
        generations = 60;
        init = (fun rng -> Rng.range rng (-10.) 10.);
        objectives = (fun x -> [| x *. x; (x -. 2.) *. (x -. 2.) |]);
        vary =
          (fun rng a b ->
            let child = if Rng.bool rng then (a +. b) /. 2. else a in
            child +. Rng.gaussian ~sigma:0.3 rng);
      }
  in
  let front = Nsga2.pareto_front population in
  Alcotest.(check bool) "front populated" true (Array.length front > 10);
  Array.iter
    (fun ind ->
      Alcotest.(check bool) "pareto set near [0,2]" true
        (ind.Nsga2.genome > -0.5 && ind.Nsga2.genome < 2.5))
    front;
  (* The front should cover both ends of the tradeoff. *)
  let f1_values =
    Array.map (fun (ind : float Nsga2.individual) -> ind.Nsga2.objectives.(0)) front
  in
  let min_f1 = Array.fold_left Float.min Float.infinity f1_values in
  let max_f1 = Array.fold_left Float.max Float.neg_infinity f1_values in
  Alcotest.(check bool) "covers the spread" true (min_f1 < 0.3 && max_f1 > 2.0)

let test_run_handles_nan_objectives () =
  (* Genomes that evaluate to nan must be dominated away, not crash. *)
  let rng = Rng.create ~seed:4 () in
  let population =
    Nsga2.run ~rng
      {
        Nsga2.pop_size = 20;
        generations = 10;
        init = (fun rng -> Rng.range rng (-1.) 1.);
        objectives = (fun x -> if x < 0. then [| Float.nan; Float.nan |] else [| x; 1. -. x |]);
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.2 rng);
      }
  in
  let front = Nsga2.pareto_front population in
  Array.iter
    (fun (ind : float Nsga2.individual) ->
      Alcotest.(check bool) "front has no nan genomes" true
        (Array.for_all Float.is_finite ind.Nsga2.objectives))
    front

let test_run_elitism_never_loses_best () =
  (* Track the best f1 over generations: with elitism it never worsens. *)
  let rng = Rng.create ~seed:5 () in
  let best_so_far = ref Float.infinity in
  let violated = ref false in
  let _ =
    Nsga2.run ~rng
      ~on_generation:(fun _ population ->
        let best =
          Array.fold_left
            (fun acc (ind : float Nsga2.individual) -> Float.min acc ind.Nsga2.objectives.(0))
            Float.infinity population
        in
        if best > !best_so_far +. 1e-12 then violated := true;
        best_so_far := Float.min !best_so_far best)
      {
        Nsga2.pop_size = 30;
        generations = 30;
        init = (fun rng -> Rng.range rng (-5.) 5.);
        objectives = (fun x -> [| Float.abs x; Float.abs (x -. 1.) |]);
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.5 rng);
      }
  in
  Alcotest.(check bool) "monotone best objective" false !violated

let test_run_rejects_tiny_population () =
  Alcotest.(check bool) "pop_size 1 rejected" true
    (match
       Nsga2.run ~rng:(Rng.create ())
         {
           Nsga2.pop_size = 1;
           generations = 1;
           init = (fun _ -> 0.);
           objectives = (fun _ -> [| 0. |]);
           vary = (fun _ a _ -> a);
         }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_population_sorted_by_rank () =
  let rng = Rng.create ~seed:6 () in
  let population =
    Nsga2.run ~rng
      {
        Nsga2.pop_size = 40;
        generations = 15;
        init = (fun rng -> Rng.range rng (-3.) 3.);
        objectives = (fun x -> [| x *. x; (x -. 1.) *. (x -. 1.) |]);
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.2 rng);
      }
  in
  let sorted = ref true in
  for i = 1 to Array.length population - 1 do
    if population.(i).Nsga2.rank < population.(i - 1).Nsga2.rank then sorted := false
  done;
  Alcotest.(check bool) "rank-sorted output" true !sorted

let property_tests =
  [
    QCheck.Test.make ~name:"sort partitions all indices" ~count:50
      QCheck.(pair small_int (int_range 2 60))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let objectives = Array.init n (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
        let fronts = Nsga2.fast_nondominated_sort objectives in
        Array.fold_left (fun acc f -> acc + List.length f) 0 fronts = n);
    QCheck.Test.make ~name:"front 0 is never dominated" ~count:50
      QCheck.(pair small_int (int_range 2 40))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let objectives = Array.init n (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
        let fronts = Nsga2.fast_nondominated_sort objectives in
        List.for_all
          (fun p ->
            Array.for_all (fun other -> not (Nsga2.dominates other objectives.(p)))
              objectives)
          fronts.(0));
  ]

let suite =
  [
    Alcotest.test_case "dominance" `Quick test_dominates_basic;
    Alcotest.test_case "nondominated sort: fronts" `Quick test_fast_nondominated_sort_fronts;
    Alcotest.test_case "nondominated sort: duplicates" `Quick test_sort_handles_duplicates;
    Alcotest.test_case "nondominated sort: partition" `Quick test_sort_partitions_everything;
    Alcotest.test_case "fronts are internally nondominated" `Quick test_front_members_mutually_nondominated;
    Alcotest.test_case "crowding: boundaries" `Quick test_crowding_boundaries_infinite;
    Alcotest.test_case "crowding: isolation" `Quick test_crowding_prefers_isolated_points;
    Alcotest.test_case "run: schaffer tradeoff" `Quick test_run_minimizes_sphere_tradeoff;
    Alcotest.test_case "run: nan objectives" `Quick test_run_handles_nan_objectives;
    Alcotest.test_case "run: elitism" `Quick test_run_elitism_never_loses_best;
    Alcotest.test_case "run: tiny population rejected" `Quick test_run_rejects_tiny_population;
    Alcotest.test_case "run: output rank-sorted" `Quick test_population_sorted_by_rank;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

(* --- single-objective GA --- *)

module Ga = Caffeine_evo.Ga

let sphere x = x *. x

let test_ga_minimizes_sphere () =
  let rng = Rng.create ~seed:10 () in
  let population =
    Ga.run ~rng
      {
        Ga.pop_size = 40;
        generations = 60;
        elite = 2;
        tournament = 3;
        init = (fun rng -> Rng.range rng (-10.) 10.);
        fitness = sphere;
        vary =
          (fun rng a b ->
            let child = (a +. b) /. 2. in
            child +. Rng.gaussian ~sigma:0.2 rng);
      }
  in
  let champion = Ga.best population in
  Alcotest.(check bool) "near zero" true (Float.abs champion.Ga.genome < 0.2)

let test_ga_elitism_monotone () =
  let rng = Rng.create ~seed:11 () in
  let best_so_far = ref Float.infinity in
  let violated = ref false in
  let _ =
    Ga.run ~rng
      ~on_generation:(fun _ ~best ->
        if best.Ga.fitness > !best_so_far +. 1e-12 then violated := true;
        best_so_far := Float.min !best_so_far best.Ga.fitness)
      {
        Ga.pop_size = 20;
        generations = 30;
        elite = 1;
        tournament = 2;
        init = (fun rng -> Rng.range rng (-5.) 5.);
        fitness = (fun x -> Float.abs (x -. 3.));
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.5 rng);
      }
  in
  Alcotest.(check bool) "best fitness never worsens" false !violated

let test_ga_handles_nan_fitness () =
  let rng = Rng.create ~seed:12 () in
  let population =
    Ga.run ~rng
      {
        Ga.pop_size = 16;
        generations = 10;
        elite = 1;
        tournament = 2;
        init = (fun rng -> Rng.range rng (-1.) 1.);
        fitness = (fun x -> if x < 0. then Float.nan else x);
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.3 rng);
      }
  in
  let champion = Ga.best population in
  Alcotest.(check bool) "best has finite fitness" true (Float.is_finite champion.Ga.fitness)

let test_ga_config_validation () =
  let bad config =
    match Ga.run ~rng:(Rng.create ()) config with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  let base =
    {
      Ga.pop_size = 10;
      generations = 1;
      elite = 1;
      tournament = 2;
      init = (fun _ -> 0.);
      fitness = (fun x -> x);
      vary = (fun _ a _ -> a);
    }
  in
  Alcotest.(check bool) "tiny population" true (bad { base with Ga.pop_size = 1 });
  Alcotest.(check bool) "elite too large" true (bad { base with Ga.elite = 10 });
  Alcotest.(check bool) "zero tournament" true (bad { base with Ga.tournament = 0 })

let test_ga_sorted_output () =
  let rng = Rng.create ~seed:13 () in
  let population =
    Ga.run ~rng
      {
        Ga.pop_size = 25;
        generations = 5;
        elite = 0;
        tournament = 2;
        init = (fun rng -> Rng.range rng (-3.) 3.);
        fitness = sphere;
        vary = (fun rng a _ -> a +. Rng.gaussian ~sigma:0.5 rng);
      }
  in
  let sorted = ref true in
  for i = 1 to Array.length population - 1 do
    if population.(i).Ga.fitness < population.(i - 1).Ga.fitness then sorted := false
  done;
  Alcotest.(check bool) "fitness-sorted" true !sorted

let ga_suite =
  [
    Alcotest.test_case "ga: minimizes sphere" `Quick test_ga_minimizes_sphere;
    Alcotest.test_case "ga: elitism monotone" `Quick test_ga_elitism_monotone;
    Alcotest.test_case "ga: nan fitness" `Quick test_ga_handles_nan_fitness;
    Alcotest.test_case "ga: config validation" `Quick test_ga_config_validation;
    Alcotest.test_case "ga: sorted output" `Quick test_ga_sorted_output;
  ]

let suite = suite @ ga_suite

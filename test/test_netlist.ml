(* Tests for the SPICE-deck netlist parser: value notation, card parsing,
   models, and end-to-end simulation of parsed circuits. *)

module Netlist = Caffeine_spice.Netlist
module Circuit = Caffeine_spice.Circuit
module Dc = Caffeine_spice.Dc
module Ac = Caffeine_spice.Ac
module Mos = Caffeine_spice.Mos

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let parse_ok source =
  match Netlist.parse source with
  | Ok deck -> deck
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* --- engineering values --- *)

let test_parse_value_suffixes () =
  let check text expected =
    match Netlist.parse_value text with
    | Some v -> check_close text expected v
    | None -> Alcotest.failf "no parse for %S" text
  in
  check "10k" 10e3;
  check "2.5u" 2.5e-6;
  check "10p" 10e-12;
  check "3meg" 3e6;
  check "1.5n" 1.5e-9;
  check "4f" 4e-15;
  check "7m" 7e-3;
  check "2g" 2e9;
  check "1t" 1e12;
  check "42" 42.;
  check "-3.3" (-3.3);
  check "1e-6" 1e-6;
  Alcotest.(check bool) "garbage rejected" true (Netlist.parse_value "xyz" = None);
  Alcotest.(check bool) "empty rejected" true (Netlist.parse_value "" = None)

(* --- basic cards --- *)

let test_parse_rc_divider () =
  let deck = parse_ok "test divider\nV1 in 0 DC 10\nR1 in out 1k\nR2 out 0 3k\n.end\n" in
  Alcotest.(check (option string)) "title" (Some "test divider") deck.Netlist.title;
  Alcotest.(check int) "two named nodes" 2 (List.length deck.Netlist.node_names);
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok solution ->
      check_close "divider output" 7.5 (Dc.node_voltage solution (Netlist.node deck "out"))

let test_parse_ground_aliases () =
  let deck = parse_ok "V1 a gnd 1\nR1 a GND 1k\n" in
  Alcotest.(check int) "one named node" 1 (List.length deck.Netlist.node_names);
  Alcotest.(check int) "gnd is node zero" 0 (Netlist.node deck "GND")

let test_parse_current_source_convention () =
  (* I1 0 n 1m pushes current into n. *)
  let deck = parse_ok "I1 0 n 1m\nR1 n 0 1k\n" in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok solution -> check_close "1 volt" 1.0 (Dc.node_voltage solution (Netlist.node deck "n"))

let test_parse_vccs () =
  let deck = parse_ok "V1 in 0 DC 1\nG1 out 0 in 0 2m\nRL out 0 1k\n" in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok solution -> check_close "gm*v*r" (-2.) (Dc.node_voltage solution (Netlist.node deck "out"))

let test_parse_ac_source_and_sweep () =
  let deck = parse_ok "VIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n" in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok dc ->
      let sweep =
        Ac.transfer ~circuit:deck.Netlist.circuit ~dc ~input:"VIN"
          ~output:(Netlist.node deck "out")
          ~freqs:[| 10. |]
      in
      check_close ~tol:1e-3 "passband" 1. (Complex.norm sweep.(0).Ac.response)

let test_parse_mosfet_with_model_card () =
  let deck =
    parse_ok
      "IB 0 d 50u\n\
       M1 d d 0 0 MYNMOS W=50u L=1u\n\
       .model MYNMOS NMOS (VTO=0.7 KP=120u LAMBDA=0.05 GAMMA=0.4 PHI=0.65)\n\
       .end\n"
  in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok solution ->
      let bias = Dc.mos_bias solution "M1" in
      Alcotest.(check bool) "saturation" true (bias.Dc.op.Mos.region = `Saturation);
      check_close ~tol:1e-3 "carries bias current" 50e-6 bias.Dc.op.Mos.ids

let test_parse_mosfet_default_models () =
  let deck = parse_ok "IB 0 d 20u\nM1 d d 0 0 NMOS W=20u L=2u\n" in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok solution ->
      Alcotest.(check bool) "built-in nmos used" true
        ((Dc.mos_bias solution "M1").Dc.vgs > 0.7)

let test_parse_comments_and_continuations () =
  let deck = parse_ok "* a comment line\nR1 a 0 1k ; trailing comment\n\nV1 a 0 5\n" in
  Alcotest.(check int) "two elements" 2 (List.length (Circuit.elements deck.Netlist.circuit))

let test_parse_errors_carry_line_numbers () =
  let expect_error source fragment =
    match Netlist.parse source with
    | Ok _ -> Alcotest.failf "expected failure for %S" source
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" source fragment msg)
          true
          (let rec contains i =
             if i + String.length fragment > String.length msg then false
             else if String.sub msg i (String.length fragment) = fragment then true
             else contains (i + 1)
           in
           contains 0)
  in
  expect_error "R1 a 0 zzz\n" "line 1";
  expect_error "R1 a 0\n" "wrong number of fields";
  expect_error "V1 a 0 1\nX1 a 0 1k\n" "unknown element";
  expect_error "M1 d g s b NOPE W=1u L=1u\n" "unknown MOS model";
  expect_error "M1 d g s b NMOS L=1u\n" "missing W=";
  expect_error ".tran 1n 1u\n" "unsupported directive";
  expect_error "" "no elements";
  expect_error "R1 a 0 -5\n" "non-positive"

let test_parse_end_stops_reading () =
  let deck = parse_ok "R1 a 0 1k\n.end\nthis is not a card and must be ignored\n" in
  Alcotest.(check int) "one element" 1 (List.length (Circuit.elements deck.Netlist.circuit))

let test_roundtrip_ota_like_deck () =
  (* A miniature amplifier deck end-to-end: parse, solve, measure gain. *)
  let source =
    "demo: common-source amp\n\
     VDD vdd 0 DC 5\n\
     VIN in 0 DC 1.1 AC 1\n\
     M1 out in 0 0 NMOS W=20u L=2u\n\
     R1 vdd out 50k\n\
     C1 out 0 1p\n\
     .end\n"
  in
  let deck = parse_ok source in
  match Dc.solve deck.Netlist.circuit with
  | Error msg -> Alcotest.failf "solve failed: %s" msg
  | Ok dc ->
      let out = Netlist.node deck "out" in
      let vout = Dc.node_voltage dc out in
      Alcotest.(check bool) "output inside the rails" true (vout > 0.2 && vout < 4.8);
      let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e9 ~points_per_decade:10 in
      let sweep = Ac.transfer ~circuit:deck.Netlist.circuit ~dc ~input:"VIN" ~output:out ~freqs in
      Alcotest.(check bool) "inverting gain > 1" true (Ac.low_frequency_gain_db sweep > 0.)

let suite =
  [
    Alcotest.test_case "values: engineering suffixes" `Quick test_parse_value_suffixes;
    Alcotest.test_case "cards: rc divider" `Quick test_parse_rc_divider;
    Alcotest.test_case "cards: ground aliases" `Quick test_parse_ground_aliases;
    Alcotest.test_case "cards: current source" `Quick test_parse_current_source_convention;
    Alcotest.test_case "cards: vccs" `Quick test_parse_vccs;
    Alcotest.test_case "cards: ac source" `Quick test_parse_ac_source_and_sweep;
    Alcotest.test_case "cards: mosfet with .model" `Quick test_parse_mosfet_with_model_card;
    Alcotest.test_case "cards: default models" `Quick test_parse_mosfet_default_models;
    Alcotest.test_case "comments" `Quick test_parse_comments_and_continuations;
    Alcotest.test_case "errors: line numbers" `Quick test_parse_errors_carry_line_numbers;
    Alcotest.test_case ".end stops reading" `Quick test_parse_end_stops_reading;
    Alcotest.test_case "end-to-end amplifier deck" `Quick test_roundtrip_ota_like_deck;
  ]

(* --- robustness: the parser never raises on garbage --- *)

let fuzz_property =
  QCheck.Test.make ~name:"netlist parser never raises" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun garbage ->
      match Netlist.parse garbage with Ok _ -> true | Error _ -> true)

let structured_fuzz_property =
  (* Random but card-shaped lines: mix of valid prefixes and junk fields. *)
  let token = QCheck.Gen.oneofl [ "R1"; "C2"; "V3"; "I4"; "M5"; "G6"; "a"; "0"; "1k"; "xx"; "W=1u"; ".model"; "NMOS" ] in
  let line = QCheck.Gen.(map (String.concat " ") (list_size (int_range 1 7) token)) in
  let deck = QCheck.Gen.(map (String.concat "\n") (list_size (int_range 1 8) line)) in
  QCheck.Test.make ~name:"card-shaped fuzz never raises" ~count:300 (QCheck.make deck)
    (fun source ->
      match Netlist.parse source with Ok _ -> true | Error _ -> true)

let suite =
  suite
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ fuzz_property; structured_fuzz_property ]

(* Tests for the fused multi-expression engine: hash-consing a set of bases
   into one DAG and evaluating it with tiled kernels must agree bit for bit
   with the per-expression compiled tapes — on random expression sets, on
   the probe edge cases (empty index set, single sample, repeated indices)
   and through the dataset's warm-columns / probe-many entry points. *)

module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Compiled = Caffeine_expr.Compiled
module Fused = Caffeine_expr.Fused
module Dataset = Caffeine_io.Dataset
module Opset = Caffeine.Opset
module Gen = Caffeine.Gen

let bits = Int64.bits_of_float

let check_row_bits msg (expected : float array) (actual : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      if not (Int64.equal (bits e) (bits actual.(i))) then
        Alcotest.failf "%s: sample %d: per-expression %.17g, fused %.17g" msg i e actual.(i))
    expected

let random_matrix rng ~n ~dims =
  Array.init n (fun _ ->
      Array.init dims (fun _ ->
          (* Mix benign magnitudes with zeros and negatives so domain errors
             (ln of negatives, 0^-e, division by zero) actually occur. *)
          match Rng.int rng 8 with
          | 0 -> 0.
          | 1 -> -.Rng.range rng 0.1 3.0
          | _ -> Rng.range rng 0.05 4.0))

let columns_of_rows dims rows = Array.init dims (fun v -> Array.map (fun row -> row.(v)) rows)

let random_bases rng ~count ~dims =
  Array.init count (fun _ ->
      Gen.random_basis rng Opset.default ~dims ~depth:(2 + Rng.int rng 4) ~max_vc_vars:dims)

(* Per-expression reference: each basis on its own compiled tape. *)
let reference_columns bases ~columns ~n =
  let scratch = Compiled.scratch () in
  Array.map (fun b -> Compiled.eval_columns (Compiled.compile b) ~scratch ~columns ~n) bases

let reference_probe bases ~columns ~indices =
  Array.map (fun b -> Compiled.eval_probe (Compiled.compile b) ~columns ~indices) bases

(* --- full-column agreement on random sets -------------------------------- *)

let test_random_sets_bit_identical () =
  let rng = Rng.create ~seed:2027 () in
  for trial = 1 to 50 do
    let dims = 1 + Rng.int rng 6 in
    let count = 1 + Rng.int rng 12 in
    let n = 1 + Rng.int rng 40 in
    let bases = random_bases rng ~count ~dims in
    let columns = columns_of_rows dims (random_matrix rng ~n ~dims) in
    let fused = Fused.compile bases in
    let rows = Fused.eval_columns fused ~scratch:(Fused.scratch ()) ~columns ~n in
    let expected = reference_columns bases ~columns ~n in
    Array.iteri
      (fun k row -> check_row_bits (Printf.sprintf "trial %d root %d" trial k) expected.(k) row)
      rows
  done

(* --- probe edge cases ----------------------------------------------------- *)

let test_probe_edge_cases () =
  let rng = Rng.create ~seed:31 () in
  let dims = 4 in
  let n = 12 in
  let bases = random_bases rng ~count:6 ~dims in
  let columns = columns_of_rows dims (random_matrix rng ~n ~dims) in
  let fused = Fused.compile bases in
  let cases =
    [
      ("empty index set", [||]);
      ("single sample", [| 7 |]);
      ("repeated indices", [| 3; 3; 0; 3; 11; 0 |]);
      ("all samples", Array.init n Fun.id);
    ]
  in
  List.iter
    (fun (name, indices) ->
      let fused_rows = Fused.eval_probe fused ~columns ~indices in
      let expected = reference_probe bases ~columns ~indices in
      Array.iteri
        (fun k row -> check_row_bits (Printf.sprintf "%s root %d" name k) expected.(k) row)
        fused_rows;
      (* The probe gathers the corresponding full-column entries. *)
      let full = Fused.eval_columns fused ~scratch:(Fused.scratch ()) ~columns ~n in
      Array.iteri
        (fun k row ->
          Array.iteri
            (fun j idx ->
              if not (Int64.equal (bits row.(j)) (bits full.(k).(idx))) then
                Alcotest.failf "%s: root %d index %d disagrees with the full column" name k idx)
            indices)
        fused_rows)
    cases

let test_compiled_probe_edge_cases () =
  (* The per-expression probe honors the same contracts on its own. *)
  let rng = Rng.create ~seed:32 () in
  let dims = 3 in
  let n = 9 in
  let basis = Gen.random_basis rng Opset.default ~dims ~depth:4 ~max_vc_vars:dims in
  let columns = columns_of_rows dims (random_matrix rng ~n ~dims) in
  let compiled = Compiled.compile basis in
  let full = Compiled.eval_columns compiled ~scratch:(Compiled.scratch ()) ~columns ~n in
  Alcotest.(check int) "empty probe" 0
    (Array.length (Compiled.eval_probe compiled ~columns ~indices:[||]));
  let single = Compiled.eval_probe compiled ~columns ~indices:[| n - 1 |] in
  check_row_bits "single" [| full.(n - 1) |] single;
  let repeated = Compiled.eval_probe compiled ~columns ~indices:[| 2; 2; 2 |] in
  check_row_bits "repeated" [| full.(2); full.(2); full.(2) |] repeated

(* --- single-sample evaluation -------------------------------------------- *)

let test_single_sample_columns () =
  let rng = Rng.create ~seed:33 () in
  let dims = 5 in
  let bases = random_bases rng ~count:8 ~dims in
  let columns = columns_of_rows dims (random_matrix rng ~n:1 ~dims) in
  let fused = Fused.compile bases in
  let rows = Fused.eval_columns fused ~scratch:(Fused.scratch ()) ~columns ~n:1 in
  let expected = reference_columns bases ~columns ~n:1 in
  Array.iteri (fun k row -> check_row_bits (Printf.sprintf "root %d" k) expected.(k) row) rows

(* --- hash-consing structure ----------------------------------------------- *)

let test_empty_set () =
  let fused = Fused.compile [||] in
  Alcotest.(check int) "no roots" 0 (Array.length (Fused.roots fused));
  Alcotest.(check int) "no nodes" 0 (Fused.nodes_out fused);
  let rows = Fused.eval_columns fused ~scratch:(Fused.scratch ()) ~columns:[| [| 1. |] |] ~n:1 in
  Alcotest.(check int) "no output rows" 0 (Array.length rows)

let test_duplicates_collapse () =
  let rng = Rng.create ~seed:34 () in
  let dims = 4 in
  let basis = Gen.random_basis rng Opset.default ~dims ~depth:4 ~max_vc_vars:dims in
  let alone = Fused.compile [| basis |] in
  let repeated = Fused.compile (Array.make 5 basis) in
  (* Five copies of one basis share every DAG node; only the roots differ. *)
  Alcotest.(check int) "same node count" (Fused.nodes_out alone) (Fused.nodes_out repeated);
  let roots = Fused.roots repeated in
  Alcotest.(check int) "five roots" 5 (Array.length roots);
  Array.iter (fun r -> Alcotest.(check int) "all roots share one node" roots.(0) r) roots;
  (* Each duplicate still gets its own output row. *)
  let columns = columns_of_rows dims (random_matrix rng ~n:7 ~dims) in
  let rows = Fused.eval_columns repeated ~scratch:(Fused.scratch ()) ~columns ~n:7 in
  Alcotest.(check int) "five rows" 5 (Array.length rows);
  Array.iter (fun row -> check_row_bits "duplicate row" rows.(0) row) rows

let test_cse_counters () =
  let rng = Rng.create ~seed:35 () in
  let dims = 4 in
  let bases = random_bases rng ~count:10 ~dims in
  let fused = Fused.compile bases in
  Alcotest.(check bool) "nodes_out positive" true (Fused.nodes_out fused > 0);
  Alcotest.(check bool) "sharing never inflates" true
    (Fused.nodes_out fused <= Fused.nodes_in fused);
  Alcotest.(check int) "nodes_out = |nodes|" (Array.length (Fused.nodes fused))
    (Fused.nodes_out fused);
  (* Duplicating the whole set doubles nodes_in but leaves nodes_out. *)
  let doubled = Fused.compile (Array.append bases bases) in
  Alcotest.(check int) "nodes_in doubles" (2 * Fused.nodes_in fused) (Fused.nodes_in doubled);
  Alcotest.(check int) "nodes_out unchanged" (Fused.nodes_out fused) (Fused.nodes_out doubled)

(* --- dataset integration --------------------------------------------------- *)

let test_warm_columns_bit_identical () =
  let rng = Rng.create ~seed:36 () in
  let dims = 5 in
  let n = 20 in
  let rows = random_matrix rng ~n ~dims in
  let bases = random_bases rng ~count:9 ~dims in
  (* Lazily computed columns on one dataset... *)
  let lazy_data = Dataset.of_rows rows in
  let lazy_columns = Array.map (Dataset.basis_column lazy_data) bases in
  (* ...must equal fused-warmed columns on a fresh dataset, bit for bit. *)
  let warmed_data = Dataset.of_rows rows in
  let stats = Dataset.warm_columns warmed_data bases in
  Alcotest.(check bool) "some bases fused" true (stats.Dataset.fused_bases > 0);
  Alcotest.(check bool) "warm CSE never inflates" true
    (stats.Dataset.nodes_out <= stats.Dataset.nodes_in);
  Array.iteri
    (fun k b ->
      check_row_bits
        (Printf.sprintf "basis %d" k)
        lazy_columns.(k)
        (Dataset.basis_column warmed_data b))
    bases;
  (* Re-warming finds every column cached: nothing left to fuse. *)
  let again = Dataset.warm_columns warmed_data bases in
  Alcotest.(check int) "second warm is a no-op" 0 again.Dataset.fused_bases

let test_probe_many_bit_identical () =
  let rng = Rng.create ~seed:37 () in
  let dims = 4 in
  let n = 16 in
  let rows = random_matrix rng ~n ~dims in
  let data = Dataset.of_rows rows in
  let bases = random_bases rng ~count:7 ~dims in
  List.iter
    (fun indices ->
      let fused_rows = Dataset.probe_many data bases ~indices in
      Array.iteri
        (fun k b -> check_row_bits (Printf.sprintf "basis %d" k) (Dataset.probe data b ~indices)
            fused_rows.(k))
        bases)
    [ [||]; [| 0 |]; [| 5; 5; 1 |]; Array.init n Fun.id ]

(* --- qcheck property: fused ≡ per-expression ------------------------------ *)

let close a b =
  (* The engines are bit-identical by design; the property pins at least
     1e-12 relative agreement so a future refactor that reassociates
     (legitimately or not) fails loudly rather than silently. *)
  if Float.is_nan a then Float.is_nan b
  else if Float.is_nan b then false
  else a = b || Float.abs (a -. b) <= 1e-12 *. Float.max 1. (Float.abs a)

let property_tests =
  [
    QCheck.Test.make ~name:"fused set evaluation matches per-expression tapes" ~count:100
      QCheck.small_int
      (fun seed ->
        let rng = Rng.create ~seed:(seed + 1) () in
        let dims = 1 + Rng.int rng 5 in
        let count = 1 + Rng.int rng 8 in
        let n = 1 + Rng.int rng 25 in
        let bases = random_bases rng ~count ~dims in
        let columns = columns_of_rows dims (random_matrix rng ~n ~dims) in
        let fused_rows =
          Fused.eval_columns (Fused.compile bases) ~scratch:(Fused.scratch ()) ~columns ~n
        in
        let expected = reference_columns bases ~columns ~n in
        Array.for_all2
          (fun e row -> Array.for_all2 close e row)
          expected fused_rows);
  ]

let suite =
  [
    Alcotest.test_case "random sets are bit-identical" `Quick test_random_sets_bit_identical;
    Alcotest.test_case "probe edge cases (fused)" `Quick test_probe_edge_cases;
    Alcotest.test_case "probe edge cases (compiled)" `Quick test_compiled_probe_edge_cases;
    Alcotest.test_case "single-sample columns" `Quick test_single_sample_columns;
    Alcotest.test_case "empty expression set" `Quick test_empty_set;
    Alcotest.test_case "duplicate bases collapse to one node" `Quick test_duplicates_collapse;
    Alcotest.test_case "CSE counters" `Quick test_cse_counters;
    Alcotest.test_case "warm_columns is bit-identical" `Quick test_warm_columns_bit_identical;
    Alcotest.test_case "probe_many is bit-identical" `Quick test_probe_many_bit_identical;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

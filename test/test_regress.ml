(* Tests for linear basis weighting, PRESS, and forward regression. *)

module Linfit = Caffeine_regress.Linfit
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-7) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_fit_constant () =
  let fitted = Linfit.fit_constant ~targets:[| 2.; 4.; 6. |] in
  check_close "intercept is mean" 4. fitted.Linfit.intercept;
  Alcotest.(check int) "no weights" 0 (Array.length fitted.Linfit.weights)

let test_fit_recovers_linear_combination () =
  let rng = Rng.create ~seed:1 () in
  let n = 50 in
  let col1 = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
  let col2 = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
  let targets = Array.init n (fun i -> 1.5 +. (2. *. col1.(i)) -. (0.7 *. col2.(i))) in
  let fitted = Linfit.fit ~basis_values:[| col1; col2 |] ~targets in
  check_close "intercept" 1.5 fitted.Linfit.intercept;
  check_close "w1" 2. fitted.Linfit.weights.(0);
  check_close "w2" (-0.7) fitted.Linfit.weights.(1);
  check_close "zero training error" 0. fitted.Linfit.train_error

let test_fit_empty_basis_is_constant () =
  let fitted = Linfit.fit ~basis_values:[||] ~targets:[| 1.; 3. |] in
  check_close "mean model" 2. fitted.Linfit.intercept

let test_fit_rejects_nonfinite_columns () =
  Alcotest.(check bool) "nan column rejected" true
    (match Linfit.fit ~basis_values:[| [| 1.; Float.nan |] |] ~targets:[| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_predict_matches_fit () =
  let col = [| 1.; 2.; 3.; 4. |] in
  let targets = [| 3.; 5.; 7.; 9. |] in
  let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
  let predictions = Linfit.predict fitted ~basis_values:[| [| 10. |] |] in
  check_close "extrapolated" 21. predictions.(0)

let test_press_positive_and_above_rss () =
  (* PRESS is leave-one-out, so it is at least the in-sample RSS. *)
  let rng = Rng.create ~seed:2 () in
  let n = 30 in
  let col = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let targets = Array.init n (fun i -> col.(i) +. Rng.gaussian ~sigma:0.2 rng) in
  let press = Linfit.press ~basis_values:[| col |] ~targets in
  let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
  let rss =
    Array.fold_left ( +. ) 0.
      (Array.mapi
         (fun i p ->
           let e = targets.(i) -. p in
           e *. e)
         fitted.Linfit.predictions)
  in
  Alcotest.(check bool) "press >= rss" true (press >= rss -. 1e-9);
  Alcotest.(check bool) "press positive" true (press > 0.)

let test_press_intercept_only () =
  let targets = [| 1.; 2.; 3. |] in
  (* Leave-one-out for the mean model: prediction of sample i is the mean of
     the others; PRESS shortcut with h = 1/n must agree. *)
  let explicit = ref 0. in
  for i = 0 to 2 do
    let others = List.filteri (fun j _ -> j <> i) (Array.to_list targets) in
    let mean = List.fold_left ( +. ) 0. others /. 2. in
    let e = targets.(i) -. mean in
    explicit := !explicit +. (e *. e)
  done;
  check_close "intercept-only press" !explicit (Linfit.press ~basis_values:[||] ~targets)

let test_forward_select_picks_true_predictors () =
  let rng = Rng.create ~seed:3 () in
  let n = 60 in
  let signal1 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let signal2 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let noise1 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let noise2 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let targets = Array.init n (fun i -> (3. *. signal1.(i)) -. (2. *. signal2.(i))) in
  let chosen =
    Linfit.forward_select ~basis_values:[| noise1; signal1; noise2; signal2 |] ~targets ()
  in
  let chosen = Array.to_list chosen in
  Alcotest.(check bool) "signal 1 selected" true (List.mem 1 chosen);
  Alcotest.(check bool) "signal 2 selected" true (List.mem 3 chosen);
  Alcotest.(check bool) "no more than 3 columns" true (List.length chosen <= 3)

let test_forward_select_respects_max_bases () =
  let rng = Rng.create ~seed:4 () in
  let n = 40 in
  let columns = Array.init 6 (fun _ -> Array.init n (fun _ -> Rng.range rng (-1.) 1.)) in
  let targets =
    Array.init n (fun i ->
        Array.fold_left ( +. ) 0. (Array.map (fun col -> col.(i)) columns))
  in
  let chosen = Linfit.forward_select ~max_bases:2 ~basis_values:columns ~targets () in
  Alcotest.(check bool) "cap respected" true (Array.length chosen <= 2)

let test_forward_select_skips_nonfinite_columns () =
  let good = [| 1.; 2.; 3.; 4. |] in
  let bad = [| 1.; Float.nan; 3.; 4. |] in
  let targets = [| 2.; 4.; 6.; 8. |] in
  let chosen = Linfit.forward_select ~basis_values:[| bad; good |] ~targets () in
  Array.iter (fun i -> Alcotest.(check int) "only the good column" 1 i) chosen

let test_forward_select_stops_on_noise () =
  (* Pure-noise columns should mostly be rejected by the PRESS criterion. *)
  let rng = Rng.create ~seed:5 () in
  let n = 50 in
  let columns = Array.init 5 (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let targets = Array.init n (fun _ -> Rng.gaussian rng) in
  let chosen = Linfit.forward_select ~basis_values:columns ~targets () in
  Alcotest.(check bool) "few noise columns admitted" true (Array.length chosen <= 2)

let test_design_matrix_shape () =
  let m = Linfit.design_matrix [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check int) "rows" 2 (Caffeine_linalg.Matrix.rows m);
  Alcotest.(check int) "cols = 1 + k" 3 (Caffeine_linalg.Matrix.cols m);
  Alcotest.(check (float 1e-12)) "ones column" 1. (Caffeine_linalg.Matrix.get m 1 0)

let property_tests =
  [
    QCheck.Test.make ~name:"fit residual error is within [0, constant-model error]" ~count:100
      QCheck.(pair small_int (int_range 5 40))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let col = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
        let targets = Array.init n (fun _ -> Rng.range rng 1. 3.) in
        let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
        let constant = Linfit.fit_constant ~targets in
        fitted.Linfit.train_error >= -1e-12
        && fitted.Linfit.train_error <= constant.Linfit.train_error +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "constant fit" `Quick test_fit_constant;
    Alcotest.test_case "recovers linear combination" `Quick test_fit_recovers_linear_combination;
    Alcotest.test_case "empty basis" `Quick test_fit_empty_basis_is_constant;
    Alcotest.test_case "non-finite rejected" `Quick test_fit_rejects_nonfinite_columns;
    Alcotest.test_case "predict on new data" `Quick test_predict_matches_fit;
    Alcotest.test_case "press >= rss" `Quick test_press_positive_and_above_rss;
    Alcotest.test_case "press intercept-only" `Quick test_press_intercept_only;
    Alcotest.test_case "forward select: true predictors" `Quick test_forward_select_picks_true_predictors;
    Alcotest.test_case "forward select: cap" `Quick test_forward_select_respects_max_bases;
    Alcotest.test_case "forward select: non-finite" `Quick test_forward_select_skips_nonfinite_columns;
    Alcotest.test_case "forward select: noise rejected" `Quick test_forward_select_stops_on_noise;
    Alcotest.test_case "design matrix shape" `Quick test_design_matrix_shape;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

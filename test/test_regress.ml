(* Tests for linear basis weighting, PRESS, and forward regression. *)

module Linfit = Caffeine_regress.Linfit
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-7) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_fit_constant () =
  let fitted = Linfit.fit_constant ~targets:[| 2.; 4.; 6. |] in
  check_close "intercept is mean" 4. fitted.Linfit.intercept;
  Alcotest.(check int) "no weights" 0 (Array.length fitted.Linfit.weights)

let test_fit_recovers_linear_combination () =
  let rng = Rng.create ~seed:1 () in
  let n = 50 in
  let col1 = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
  let col2 = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
  let targets = Array.init n (fun i -> 1.5 +. (2. *. col1.(i)) -. (0.7 *. col2.(i))) in
  let fitted = Linfit.fit ~basis_values:[| col1; col2 |] ~targets in
  check_close "intercept" 1.5 fitted.Linfit.intercept;
  check_close "w1" 2. fitted.Linfit.weights.(0);
  check_close "w2" (-0.7) fitted.Linfit.weights.(1);
  check_close "zero training error" 0. fitted.Linfit.train_error

let test_fit_empty_basis_is_constant () =
  let fitted = Linfit.fit ~basis_values:[||] ~targets:[| 1.; 3. |] in
  check_close "mean model" 2. fitted.Linfit.intercept

let test_fit_rejects_nonfinite_columns () =
  Alcotest.(check bool) "nan column rejected" true
    (match Linfit.fit ~basis_values:[| [| 1.; Float.nan |] |] ~targets:[| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_predict_matches_fit () =
  let col = [| 1.; 2.; 3.; 4. |] in
  let targets = [| 3.; 5.; 7.; 9. |] in
  let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
  let predictions = Linfit.predict fitted ~basis_values:[| [| 10. |] |] in
  check_close "extrapolated" 21. predictions.(0)

let test_press_positive_and_above_rss () =
  (* PRESS is leave-one-out, so it is at least the in-sample RSS. *)
  let rng = Rng.create ~seed:2 () in
  let n = 30 in
  let col = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let targets = Array.init n (fun i -> col.(i) +. Rng.gaussian ~sigma:0.2 rng) in
  let press = Linfit.press ~basis_values:[| col |] ~targets in
  let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
  let rss =
    Array.fold_left ( +. ) 0.
      (Array.mapi
         (fun i p ->
           let e = targets.(i) -. p in
           e *. e)
         fitted.Linfit.predictions)
  in
  Alcotest.(check bool) "press >= rss" true (press >= rss -. 1e-9);
  Alcotest.(check bool) "press positive" true (press > 0.)

let test_press_intercept_only () =
  let targets = [| 1.; 2.; 3. |] in
  (* Leave-one-out for the mean model: prediction of sample i is the mean of
     the others; PRESS shortcut with h = 1/n must agree. *)
  let explicit = ref 0. in
  for i = 0 to 2 do
    let others = List.filteri (fun j _ -> j <> i) (Array.to_list targets) in
    let mean = List.fold_left ( +. ) 0. others /. 2. in
    let e = targets.(i) -. mean in
    explicit := !explicit +. (e *. e)
  done;
  check_close "intercept-only press" !explicit (Linfit.press ~basis_values:[||] ~targets)

let test_forward_select_picks_true_predictors () =
  let rng = Rng.create ~seed:3 () in
  let n = 60 in
  let signal1 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let signal2 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let noise1 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let noise2 = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
  let targets = Array.init n (fun i -> (3. *. signal1.(i)) -. (2. *. signal2.(i))) in
  let chosen =
    Linfit.forward_select ~basis_values:[| noise1; signal1; noise2; signal2 |] ~targets ()
  in
  let chosen = Array.to_list chosen in
  Alcotest.(check bool) "signal 1 selected" true (List.mem 1 chosen);
  Alcotest.(check bool) "signal 2 selected" true (List.mem 3 chosen);
  Alcotest.(check bool) "no more than 3 columns" true (List.length chosen <= 3)

let test_forward_select_respects_max_bases () =
  let rng = Rng.create ~seed:4 () in
  let n = 40 in
  let columns = Array.init 6 (fun _ -> Array.init n (fun _ -> Rng.range rng (-1.) 1.)) in
  let targets =
    Array.init n (fun i ->
        Array.fold_left ( +. ) 0. (Array.map (fun col -> col.(i)) columns))
  in
  let chosen = Linfit.forward_select ~max_bases:2 ~basis_values:columns ~targets () in
  Alcotest.(check bool) "cap respected" true (Array.length chosen <= 2)

let test_forward_select_skips_nonfinite_columns () =
  let good = [| 1.; 2.; 3.; 4. |] in
  let bad = [| 1.; Float.nan; 3.; 4. |] in
  let targets = [| 2.; 4.; 6.; 8. |] in
  let chosen = Linfit.forward_select ~basis_values:[| bad; good |] ~targets () in
  Array.iter (fun i -> Alcotest.(check int) "only the good column" 1 i) chosen

let test_forward_select_stops_on_noise () =
  (* Pure-noise columns should mostly be rejected by the PRESS criterion. *)
  let rng = Rng.create ~seed:5 () in
  let n = 50 in
  let columns = Array.init 5 (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let targets = Array.init n (fun _ -> Rng.gaussian rng) in
  let chosen = Linfit.forward_select ~basis_values:columns ~targets () in
  Alcotest.(check bool) "few noise columns admitted" true (Array.length chosen <= 2)

let test_design_matrix_shape () =
  let m = Linfit.design_matrix [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check int) "rows" 2 (Caffeine_linalg.Matrix.rows m);
  Alcotest.(check int) "cols = 1 + k" 3 (Caffeine_linalg.Matrix.cols m);
  Alcotest.(check (float 1e-12)) "ones column" 1. (Caffeine_linalg.Matrix.get m 1 0)

(* Scratch reference for the incremental engine: full Householder
   refactorization per score, as Linfit did before the updatable QR. *)
let reference_forward_select ?max_bases ?(tolerance = 1e-6) ~basis_values ~targets () =
  let module Matrix = Caffeine_linalg.Matrix in
  let module Decomp = Caffeine_linalg.Decomp in
  let total = Array.length basis_values in
  let cap = match max_bases with Some m -> Stdlib.min m total | None -> total in
  let n = Array.length targets in
  let usable = Array.map Caffeine_util.Stats.is_finite_array basis_values in
  let chosen_mask = Array.make total false in
  let chosen = ref [] in
  let chosen_columns = ref [||] in
  let press_of columns =
    let k = Array.length columns in
    let design = Matrix.init n (k + 1) (fun i j -> if j = 0 then 1. else columns.(j - 1).(i)) in
    Decomp.press design targets
  in
  let current_press = ref (Linfit.press ~basis_values:[||] ~targets) in
  let continue = ref true in
  while !continue && List.length !chosen < cap do
    let best = ref None in
    Array.iteri
      (fun candidate column ->
        if usable.(candidate) && not chosen_mask.(candidate) then begin
          let score =
            match press_of (Array.append !chosen_columns [| column |]) with
            | value -> value
            | exception Decomp.Singular -> Float.nan
          in
          if Float.is_finite score then
            match !best with
            | Some (_, best_score) when best_score <= score -> ()
            | Some _ | None -> best := Some (candidate, score)
        end)
      basis_values;
    match !best with
    | Some (candidate, score) when score < !current_press *. (1. -. tolerance) ->
        chosen_mask.(candidate) <- true;
        chosen := candidate :: !chosen;
        chosen_columns := Array.append !chosen_columns [| basis_values.(candidate) |];
        current_press := score
    | Some _ | None -> continue := false
  done;
  Array.of_list (List.rev !chosen)

let rel_vec_close tol a b =
  let norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
  Array.length a = Array.length b
  &&
  let d = Array.mapi (fun i x -> x -. b.(i)) a in
  norm d <= tol *. Float.max 1. (Float.max (norm a) (norm b))

let property_tests =
  [
    QCheck.Test.make ~name:"fit residual error is within [0, constant-model error]" ~count:100
      QCheck.(pair small_int (int_range 5 40))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let col = Array.init n (fun _ -> Rng.range rng (-2.) 2.) in
        let targets = Array.init n (fun _ -> Rng.range rng 1. 3.) in
        let fitted = Linfit.fit ~basis_values:[| col |] ~targets in
        let constant = Linfit.fit_constant ~targets in
        fitted.Linfit.train_error >= -1e-12
        && fitted.Linfit.train_error <= constant.Linfit.train_error +. 1e-9);
    QCheck.Test.make ~name:"fit agrees with scratch lstsq within 1e-8" ~count:200
      QCheck.(triple small_int (int_range 10 40) (int_range 1 5))
      (fun (seed, n, k) ->
        let rng = Rng.create ~seed () in
        let columns = Array.init k (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.) 2.)) in
        let targets = Array.init n (fun _ -> Rng.range rng (-3.) 3.) in
        let fitted = Linfit.fit ~basis_values:columns ~targets in
        let coeffs =
          Caffeine_linalg.Decomp.lstsq (Linfit.design_matrix columns) targets
        in
        rel_vec_close 1e-8
          (Array.append [| fitted.Linfit.intercept |] fitted.Linfit.weights)
          coeffs);
    QCheck.Test.make ~name:"fit_gram agrees with the QR fit" ~count:200
      QCheck.(triple small_int (int_range 10 40) (int_range 1 5))
      (fun (seed, n, k) ->
        let rng = Rng.create ~seed () in
        let columns = Array.init k (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.) 2.)) in
        let targets = Array.init n (fun _ -> Rng.range rng (-3.) 3.) in
        let dot_cols a b = Array.fold_left ( +. ) 0. (Array.mapi (fun i x -> x *. b.(i)) a) in
        let gram =
          Linfit.fit_gram
            ~dot:(fun i j -> dot_cols columns.(i) columns.(j))
            ~dot_y:(fun i -> dot_cols columns.(i) targets)
            ~col_sum:(fun i -> Array.fold_left ( +. ) 0. columns.(i))
            ~basis_values:columns ~targets
        in
        let fitted = Linfit.fit ~basis_values:columns ~targets in
        rel_vec_close 1e-8
          (Array.append [| gram.Linfit.intercept |] gram.Linfit.weights)
          (Array.append [| fitted.Linfit.intercept |] fitted.Linfit.weights)
        && rel_vec_close 1e-8 gram.Linfit.predictions fitted.Linfit.predictions);
    QCheck.Test.make ~name:"forward_select matches the scratch reference replay" ~count:60
      QCheck.(pair small_int (int_range 20 40))
      (fun (seed, n) ->
        let rng = Rng.create ~seed () in
        let total = 12 in
        let columns =
          Array.init total (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.) 2.))
        in
        let targets =
          Array.init n (fun i ->
              (2. *. columns.(1).(i)) -. columns.(4).(i) +. Rng.gaussian ~sigma:0.3 rng)
        in
        Linfit.forward_select ~max_bases:5 ~basis_values:columns ~targets ()
        = reference_forward_select ~max_bases:5 ~basis_values:columns ~targets ());
  ]

let suite =
  [
    Alcotest.test_case "constant fit" `Quick test_fit_constant;
    Alcotest.test_case "recovers linear combination" `Quick test_fit_recovers_linear_combination;
    Alcotest.test_case "empty basis" `Quick test_fit_empty_basis_is_constant;
    Alcotest.test_case "non-finite rejected" `Quick test_fit_rejects_nonfinite_columns;
    Alcotest.test_case "predict on new data" `Quick test_predict_matches_fit;
    Alcotest.test_case "press >= rss" `Quick test_press_positive_and_above_rss;
    Alcotest.test_case "press intercept-only" `Quick test_press_intercept_only;
    Alcotest.test_case "forward select: true predictors" `Quick test_forward_select_picks_true_predictors;
    Alcotest.test_case "forward select: cap" `Quick test_forward_select_respects_max_bases;
    Alcotest.test_case "forward select: non-finite" `Quick test_forward_select_skips_nonfinite_columns;
    Alcotest.test_case "forward select: noise rejected" `Quick test_forward_select_stops_on_noise;
    Alcotest.test_case "design matrix shape" `Quick test_design_matrix_shape;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

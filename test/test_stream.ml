(* Streaming ≡ dense equivalence.

   The chunked (out-of-core) storage path must be indistinguishable from
   dense storage on the same samples: every Gram product carries one
   scalar accumulator across chunk boundaries in row order, every fused
   chunk evaluation matches per-expression compilation, and the solve is
   the shared Cholesky core — so fits, probes, forward selection, and
   whole evolved fronts are pinned here to be BIT-identical, not merely
   close.  [Dataset.chunked_of_columns] is the in-memory stand-in for a
   Colstore file, so the properties run without touching disk. *)

module Dataset = Caffeine_io.Dataset
module Expr = Caffeine_expr.Expr
module Linfit = Caffeine_regress.Linfit
module Model = Caffeine.Model
module Search = Caffeine.Search
module Config = Caffeine.Config
module Opset = Caffeine.Opset
module Gen = Caffeine.Gen
module Rng = Caffeine_util.Rng
module Executor = Caffeine_par.Executor

(* NaN-safe exact comparison: two paths agreeing "bit for bit" must agree
   on the exact IEEE words, NaN payloads included. *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let farr_eq a b = Array.length a = Array.length b && Array.for_all2 feq a b

let wb = 1.0
let wvc = 0.5

(* Random columns, targets and structurally random bases (the full
   grammar: VCs, unaries, conditionals — whatever [Gen] produces). *)
let make_case ~seed ~n ~dims ~k =
  let rng = Rng.create ~seed () in
  let columns = Array.init dims (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.) 2.)) in
  let targets = Array.init n (fun _ -> Rng.range rng (-3.) 3.) in
  let bases =
    Array.init k (fun _ -> Gen.random_basis rng Opset.default ~dims ~depth:3 ~max_vc_vars:2)
  in
  (columns, targets, bases)

let fit_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (a : Model.t), Some (b : Model.t) ->
      feq a.Model.intercept b.Model.intercept
      && farr_eq a.Model.weights b.Model.weights
      && feq a.Model.train_error b.Model.train_error
      && a.Model.complexity = b.Model.complexity
  | _ -> false

let property_tests =
  [
    QCheck.Test.make ~name:"chunked gram is bit-identical to dense" ~count:150
      QCheck.(triple small_int (int_range 3 60) (int_range 1 70))
      (fun (seed, n, chunk_rows) ->
        let columns, targets, bases = make_case ~seed ~n ~dims:3 ~k:4 in
        let dense = Dataset.of_columns columns in
        let chunked = Dataset.chunked_of_columns ~chunk_rows columns in
        let gd = Dataset.gram dense bases ~targets in
        let gc = Dataset.gram chunked bases ~targets in
        gd.Dataset.finite_bases = gc.Dataset.finite_bases
        && Array.for_all2 farr_eq gd.Dataset.dots gc.Dataset.dots
        && farr_eq gd.Dataset.dot_ys gc.Dataset.dot_ys
        && farr_eq gd.Dataset.col_sums gc.Dataset.col_sums);
    QCheck.Test.make ~name:"Model.fit is bit-identical across storages and chunk sizes"
      ~count:150
      QCheck.(triple small_int (int_range 3 60) (int_range 1 70))
      (fun (seed, n, chunk_rows) ->
        let columns, targets, bases = make_case ~seed ~n ~dims:3 ~k:3 in
        let dense = Dataset.of_columns columns in
        let chunked = Dataset.chunked_of_columns ~chunk_rows columns in
        let other = Dataset.chunked_of_columns ~chunk_rows:(chunk_rows + 3) columns in
        let fit data = Model.fit ~wb ~wvc bases ~data ~targets in
        fit_eq (fit dense) (fit chunked)
        && fit_eq (fit chunked) (fit other)
        (* The empty individual routes through the constant fit on every
           storage. *)
        && fit_eq
             (Model.fit ~wb ~wvc [||] ~data:dense ~targets)
             (Model.fit ~wb ~wvc [||] ~data:chunked ~targets));
    QCheck.Test.make ~name:"fit_stream is bit-identical to fit_gram" ~count:150
      QCheck.(triple small_int (int_range 2 50) (int_range 1 60))
      (fun (seed, n, chunk) ->
        let rng = Rng.create ~seed () in
        let k = 1 + Rng.int rng 4 in
        let columns =
          Array.init k (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.) 2.))
        in
        let targets = Array.init n (fun _ -> Rng.range rng (-3.) 3.) in
        (* The sequential dot products both entry points are specified
           against: one scalar accumulator in row order. *)
        let dot_cols a b =
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc := !acc +. (a.(i) *. b.(i))
          done;
          !acc
        in
        let ones = Array.make n 1. in
        let dot i j = dot_cols columns.(i) columns.(j) in
        let dot_y i = dot_cols columns.(i) targets in
        let col_sum i = dot_cols columns.(i) ones in
        let iter f =
          let lo = ref 0 in
          while !lo < n do
            let len = min chunk (n - !lo) in
            f ~row0:!lo ~len (Array.map (fun c -> Array.sub c !lo len) columns);
            lo := !lo + len
          done
        in
        let streamed = Linfit.fit_stream ~dot ~dot_y ~col_sum ~k ~n ~iter ~targets in
        let gram = Linfit.fit_gram ~dot ~dot_y ~col_sum ~basis_values:columns ~targets in
        feq streamed.Linfit.intercept gram.Linfit.intercept
        && farr_eq streamed.Linfit.weights gram.Linfit.weights
        && farr_eq streamed.Linfit.predictions gram.Linfit.predictions
        && feq streamed.Linfit.train_error gram.Linfit.train_error);
    QCheck.Test.make ~name:"probe and materialized columns are bit-identical" ~count:100
      QCheck.(triple small_int (int_range 3 40) (int_range 1 50))
      (fun (seed, n, chunk_rows) ->
        let columns, _, bases = make_case ~seed ~n ~dims:3 ~k:3 in
        let dense = Dataset.of_columns columns in
        let chunked = Dataset.chunked_of_columns ~chunk_rows columns in
        let rng = Rng.create ~seed:(seed + 1) () in
        let indices = Array.init (1 + Rng.int rng 6) (fun _ -> Rng.int rng n) in
        Array.for_all
          (fun basis ->
            farr_eq (Dataset.probe dense basis ~indices) (Dataset.probe chunked basis ~indices)
            && farr_eq (Dataset.basis_column dense basis) (Dataset.basis_column chunked basis))
          bases);
    QCheck.Test.make ~name:"forward_select picks identical columns on both storages" ~count:75
      QCheck.(pair small_int (int_range 8 40))
      (fun (seed, n) ->
        let columns, targets, bases = make_case ~seed ~n ~dims:3 ~k:4 in
        let dense = Dataset.of_columns columns in
        let chunked = Dataset.chunked_of_columns ~chunk_rows:5 columns in
        let values data = Array.map (Dataset.basis_column data) bases in
        let select values =
          Linfit.forward_select ~basis_values:values ~targets ()
        in
        select (values dense) = select (values chunked))
  ]

(* A whole evolved front — search loop, NSGA-II, eval cache, SAG-ready
   models — must come out byte-for-byte the same whether the samples are
   resident or streamed, and regardless of the execution backend. *)
let test_front_identity () =
  let columns, targets, _ = make_case ~seed:7 ~n:64 ~dims:3 ~k:0 in
  let names = [| "a"; "b"; "c" |] in
  let dense = Dataset.of_columns ~var_names:names columns in
  let chunked = Dataset.chunked_of_columns ~var_names:names ~chunk_rows:7 columns in
  let config = Config.scaled ~pop_size:16 ~generations:3 Config.paper in
  let front data = (Search.run ~seed:23 config ~data ~targets).Search.front in
  let reference = front dense in
  Alcotest.(check bool) "front is non-trivial" true (List.length reference >= 1);
  let check_same label other =
    Alcotest.(check int) (label ^ ": front size") (List.length reference) (List.length other);
    List.iter2
      (fun (a : Model.t) (b : Model.t) ->
        Alcotest.(check string)
          (label ^ ": model text")
          (Model.to_string ~var_names:names a)
          (Model.to_string ~var_names:names b);
        Alcotest.(check bool) (label ^ ": intercept") true (feq a.Model.intercept b.Model.intercept);
        Alcotest.(check bool) (label ^ ": weights") true (farr_eq a.Model.weights b.Model.weights);
        Alcotest.(check bool)
          (label ^ ": train error")
          true
          (feq a.Model.train_error b.Model.train_error))
      reference other
  in
  check_same "chunked/seq" (front chunked);
  Executor.with_executor ~jobs:2 Executor.Domains (fun executor ->
      check_same "chunked/domains"
        (Search.run ~seed:23 ~executor config ~data:chunked ~targets).Search.front)

let suite =
  Alcotest.test_case "evolved fronts are bit-identical across storages/backends" `Quick
    test_front_identity
  :: List.map QCheck_alcotest.to_alcotest property_tests

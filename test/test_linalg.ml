(* Tests for dense matrices, decompositions, least squares, PRESS, and the
   complex solver, with qcheck properties on algebraic identities. *)

module Matrix = Caffeine_linalg.Matrix
module Decomp = Caffeine_linalg.Decomp
module Cmatrix = Caffeine_linalg.Cmatrix
module Qr_update = Caffeine_linalg.Qr_update
module Rng = Caffeine_util.Rng

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let random_matrix rng rows cols =
  Matrix.init rows cols (fun _ _ -> Rng.range rng (-3.) 3.)

let random_vector rng n = Array.init n (fun _ -> Rng.range rng (-3.) 3.)

(* --- Matrix basics --- *)

let test_matrix_construction () =
  let m = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_close "get 0 0" 1. (Matrix.get m 0 0);
  check_close "get 1 0" 3. (Matrix.get m 1 0);
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m)

let test_matrix_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows") (fun () ->
      ignore (Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_matrix_transpose_involution () =
  let rng = Rng.create ~seed:1 () in
  let m = random_matrix rng 4 7 in
  Alcotest.(check bool) "(mᵀ)ᵀ = m" true (Matrix.equal m (Matrix.transpose (Matrix.transpose m)))

let test_matrix_identity_multiplication () =
  let rng = Rng.create ~seed:2 () in
  let m = random_matrix rng 5 5 in
  Alcotest.(check bool) "I m = m" true (Matrix.equal m (Matrix.mul (Matrix.identity 5) m));
  Alcotest.(check bool) "m I = m" true (Matrix.equal m (Matrix.mul m (Matrix.identity 5)))

let test_matrix_mul_known () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let product = Matrix.mul a b in
  check_close "c00" 19. (Matrix.get product 0 0);
  check_close "c01" 22. (Matrix.get product 0 1);
  check_close "c10" 43. (Matrix.get product 1 0);
  check_close "c11" 50. (Matrix.get product 1 1)

let test_matrix_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.; 0.; 2. |]; [| -1.; 3.; 1. |] |] in
  let v = Matrix.mul_vec a [| 3.; 1.; 2. |] in
  check_close "row 0" 7. v.(0);
  check_close "row 1" 2. v.(1)

let test_matrix_select_columns () =
  let m = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let s = Matrix.select_columns m [| 2; 0 |] in
  check_close "reordered" 3. (Matrix.get s 0 0);
  check_close "reordered" 1. (Matrix.get s 0 1)

let test_matrix_add_sub_scale () =
  let a = Matrix.of_arrays [| [| 1.; 2. |] |] in
  let b = Matrix.of_arrays [| [| 3.; 5. |] |] in
  let sum = Matrix.add a b in
  check_close "add" 4. (Matrix.get sum 0 0);
  let difference = Matrix.sub b a in
  check_close "sub" 3. (Matrix.get difference 0 1);
  let scaled = Matrix.scale 2. a in
  check_close "scale" 4. (Matrix.get scaled 0 1)

(* --- QR --- *)

let test_qr_reconstruction () =
  let rng = Rng.create ~seed:3 () in
  let a = random_matrix rng 8 5 in
  let q, r = Decomp.qr a in
  Alcotest.(check bool) "a = q r" true (Matrix.equal ~tol:1e-8 a (Matrix.mul q r))

let test_qr_orthonormal_columns () =
  let rng = Rng.create ~seed:4 () in
  let a = random_matrix rng 10 4 in
  let q, _ = Decomp.qr a in
  let qtq = Matrix.mul (Matrix.transpose q) q in
  Alcotest.(check bool) "qᵀq = I" true (Matrix.equal ~tol:1e-8 qtq (Matrix.identity 4))

let test_qr_r_upper_triangular () =
  let rng = Rng.create ~seed:5 () in
  let a = random_matrix rng 6 6 in
  let _, r = Decomp.qr a in
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to i - 1 do
      if Float.abs (Matrix.get r i j) > 1e-12 then ok := false
    done
  done;
  Alcotest.(check bool) "strictly lower part is zero" true !ok

(* --- solvers --- *)

let test_lu_solve_known_system () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Decomp.lu_solve a [| 5.; 10. |] in
  check_close "x0" 1. x.(0);
  check_close "x1" 3. x.(1)

let test_lu_solve_random_residual () =
  let rng = Rng.create ~seed:6 () in
  for _ = 1 to 10 do
    let a = random_matrix rng 6 6 in
    let b = random_vector rng 6 in
    match Decomp.lu_solve a b with
    | x ->
        let residual = Matrix.mul_vec a x in
        Array.iteri (fun i r -> check_close ~tol:1e-7 "residual" b.(i) r) residual
    | exception Decomp.Singular -> () (* random singular matrix: fine *)
  done

let test_lu_singular_raises () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "singular detected" true
    (match Decomp.lu_solve a [| 1.; 2. |] with
    | _ -> false
    | exception Decomp.Singular -> true)

let test_cholesky_reconstruction () =
  let rng = Rng.create ~seed:7 () in
  let m = random_matrix rng 6 4 in
  let spd = Matrix.gram m in
  (* make it definitely positive definite *)
  let spd = Matrix.add spd (Matrix.scale 0.5 (Matrix.identity 4)) in
  let l = Decomp.cholesky spd in
  Alcotest.(check bool) "l lᵀ = a" true
    (Matrix.equal ~tol:1e-8 spd (Matrix.mul l (Matrix.transpose l)))

let test_cholesky_rejects_indefinite () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.(check bool) "indefinite rejected" true
    (match Decomp.cholesky a with _ -> false | exception Decomp.Singular -> true)

let test_solve_spd_matches_lu () =
  let rng = Rng.create ~seed:8 () in
  let m = random_matrix rng 7 5 in
  let spd = Matrix.add (Matrix.gram m) (Matrix.scale 0.1 (Matrix.identity 5)) in
  let b = random_vector rng 5 in
  let x1 = Decomp.solve_spd spd b in
  let x2 = Decomp.lu_solve spd b in
  Array.iteri (fun i v -> check_close ~tol:1e-7 "same solution" v x2.(i)) x1

(* --- least squares --- *)

let test_lstsq_exact_system () =
  (* Overdetermined but consistent: recover exact coefficients. *)
  let rng = Rng.create ~seed:9 () in
  let a = random_matrix rng 20 3 in
  let truth = [| 2.; -1.; 0.5 |] in
  let b = Matrix.mul_vec a truth in
  let x = Decomp.lstsq a b in
  Array.iteri (fun i v -> check_close ~tol:1e-8 "coefficient" truth.(i) v) x

let test_lstsq_residual_orthogonality () =
  (* At the least-squares optimum, the residual is orthogonal to the
     column space: aᵀ(b - ax) = 0. *)
  let rng = Rng.create ~seed:10 () in
  let a = random_matrix rng 15 4 in
  let b = random_vector rng 15 in
  let x = Decomp.lstsq a b in
  let predicted = Matrix.mul_vec a x in
  let residual = Array.init 15 (fun i -> b.(i) -. predicted.(i)) in
  let gradient = Matrix.mul_vec (Matrix.transpose a) residual in
  Array.iter (fun g -> check_close ~tol:1e-7 "gradient zero" 0. g) gradient

let test_lstsq_rank_deficient_falls_back () =
  (* Duplicate column: rank-deficient; the ridge fallback must return finite
     coefficients that still fit well. *)
  let rng = Rng.create ~seed:11 () in
  let base = random_matrix rng 12 2 in
  let a = Matrix.init 12 3 (fun i j -> if j < 2 then Matrix.get base i j else Matrix.get base i 0) in
  let b = Matrix.mul_vec base [| 1.; 2. |] in
  let x = Decomp.lstsq a b in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite x);
  let predicted = Matrix.mul_vec a x in
  Array.iteri (fun i p -> check_close ~tol:1e-3 "fit preserved" b.(i) p) predicted

(* --- hat diagonal and PRESS --- *)

let test_hat_diag_range_and_trace () =
  let rng = Rng.create ~seed:12 () in
  let a = random_matrix rng 20 4 in
  let h = Decomp.hat_diag a in
  Array.iter
    (fun v -> Alcotest.(check bool) "leverage in [0,1]" true (v >= -1e-9 && v <= 1. +. 1e-9))
    h;
  (* trace(H) = rank = 4 *)
  check_close ~tol:1e-6 "trace equals rank" 4. (Array.fold_left ( +. ) 0. h)

let test_press_equals_explicit_loo () =
  (* PRESS must equal brute-force leave-one-out residual sum of squares. *)
  let rng = Rng.create ~seed:13 () in
  let m = 12 and n = 3 in
  let a = random_matrix rng m n in
  let b = random_vector rng m in
  let press = Decomp.press a b in
  let explicit = ref 0. in
  for holdout = 0 to m - 1 do
    let rows = List.filter (fun i -> i <> holdout) (List.init m (fun i -> i)) in
    let sub = Matrix.init (m - 1) n (fun i j -> Matrix.get a (List.nth rows i) j) in
    let sub_b = Array.of_list (List.map (fun i -> b.(i)) rows) in
    let x = Decomp.lstsq sub sub_b in
    let predicted = ref 0. in
    for j = 0 to n - 1 do
      predicted := !predicted +. (Matrix.get a holdout j *. x.(j))
    done;
    let e = b.(holdout) -. !predicted in
    explicit := !explicit +. (e *. e)
  done;
  check_close ~tol:1e-6 "press = explicit LOO" !explicit press

(* --- complex --- *)

let complex_close msg (a : Complex.t) (b : Complex.t) =
  if Complex.norm (Complex.sub a b) > 1e-9 *. Float.max 1. (Complex.norm a) then
    Alcotest.failf "%s: expected %g+%gi, got %g+%gi" msg a.re a.im b.re b.im

let test_cmatrix_solve_real_system () =
  let m = Cmatrix.create 2 2 in
  Cmatrix.set m 0 0 { Complex.re = 2.; im = 0. };
  Cmatrix.set m 0 1 { Complex.re = 1.; im = 0. };
  Cmatrix.set m 1 0 { Complex.re = 1.; im = 0. };
  Cmatrix.set m 1 1 { Complex.re = 3.; im = 0. };
  let x = Cmatrix.solve m [| { Complex.re = 5.; im = 0. }; { Complex.re = 10.; im = 0. } |] in
  complex_close "x0" { Complex.re = 1.; im = 0. } x.(0);
  complex_close "x1" { Complex.re = 3.; im = 0. } x.(1)

let test_cmatrix_solve_complex_residual () =
  let rng = Rng.create ~seed:14 () in
  let n = 5 in
  let m = Cmatrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Cmatrix.set m i j { Complex.re = Rng.range rng (-2.) 2.; im = Rng.range rng (-2.) 2. }
    done;
    (* Diagonal dominance keeps it comfortably nonsingular. *)
    Cmatrix.set m i i { Complex.re = 10.; im = 1. }
  done;
  let b =
    Array.init n (fun _ -> { Complex.re = Rng.range rng (-2.) 2.; im = Rng.range rng (-2.) 2. })
  in
  let x = Cmatrix.solve m b in
  let reconstructed = Cmatrix.mul_vec m x in
  Array.iteri (fun i v -> complex_close "residual" b.(i) v) reconstructed

let test_cmatrix_add_entry_accumulates () =
  let m = Cmatrix.create 1 1 in
  Cmatrix.add_entry m 0 0 { Complex.re = 1.; im = 2. };
  Cmatrix.add_entry m 0 0 { Complex.re = 3.; im = -1. };
  complex_close "accumulated" { Complex.re = 4.; im = 1. } (Cmatrix.get m 0 0)

(* --- updatable QR --- *)

let columns_matrix m cols = Matrix.init m (Array.length cols) (fun i j -> cols.(j).(i))

let vec_norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v)

let rel_vec_close tol a b =
  Array.length a = Array.length b
  &&
  let d = Array.mapi (fun i x -> x -. b.(i)) a in
  vec_norm d <= tol *. Float.max 1. (Float.max (vec_norm a) (vec_norm b))

let rel_close tol a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b)

let test_qr_update_validation () =
  (match Qr_update.create [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty target accepted");
  let qr = Qr_update.create [| 1.; 2.; 3. |] in
  Alcotest.(check int) "rows" 3 (Qr_update.rows qr);
  Alcotest.(check int) "cols" 0 (Qr_update.cols qr);
  (match Qr_update.append qr [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  (match Qr_update.drop_last qr with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "drop_last on empty factorization accepted")

let test_qr_update_rejects_duplicate_column () =
  let rng = Rng.create ~seed:42 () in
  let col = random_vector rng 12 in
  let qr = Qr_update.create (random_vector rng 12) in
  Alcotest.(check bool) "first append" true (Qr_update.append qr col);
  let before = Qr_update.press qr in
  let doubled = Array.map (fun x -> 2. *. x) col in
  Alcotest.(check bool) "scaled duplicate rejected" false (Qr_update.append qr doubled);
  Alcotest.(check int) "cols unchanged" 1 (Qr_update.cols qr);
  Alcotest.(check (float 0.)) "press unchanged" before (Qr_update.press qr);
  Alcotest.(check bool) "probe rejects too" true (Qr_update.press_probe qr doubled = None)

(* --- qcheck properties --- *)

let property_tests =
  let dims = QCheck.Gen.(pair (int_range 3 12) (int_range 1 5)) in
  let seeded = QCheck.make QCheck.Gen.(triple int dims (return ())) in
  let qr_seeded = QCheck.make QCheck.Gen.(triple int (int_range 8 20) (int_range 1 6)) in
  let random_columns rng m k = Array.init k (fun _ -> random_vector rng m) in
  let build b cols =
    let qr = Qr_update.create b in
    let accepted = Array.for_all (fun c -> Qr_update.append qr c) cols in
    (qr, accepted)
  in
  let qr_update_tests =
    [
      QCheck.Test.make ~count:400 qr_seeded
        ~name:"qr_update: append agrees with scratch lstsq/hat_diag/press" (fun (seed, m, k) ->
          let rng = Rng.create ~seed () in
          let cols = random_columns rng m k in
          let b = random_vector rng m in
          let qr, accepted = build b cols in
          let design = columns_matrix m cols in
          accepted
          && rel_vec_close 1e-8 (Qr_update.coefficients qr) (Decomp.lstsq design b)
          && rel_vec_close 1e-8 (Qr_update.leverages qr) (Decomp.hat_diag design)
          && rel_close 1e-8 (Qr_update.press qr) (Decomp.press design b));
      QCheck.Test.make ~count:300 qr_seeded
        ~name:"qr_update: drop_last restores the smaller factorization" (fun (seed, m, k) ->
          let rng = Rng.create ~seed () in
          let cols = random_columns rng m (k + 1) in
          let b = random_vector rng m in
          let qr, accepted = build b cols in
          Qr_update.drop_last qr;
          let kept = Array.sub cols 0 k in
          let design = columns_matrix m kept in
          accepted
          && Qr_update.cols qr = k
          && rel_vec_close 1e-8 (Qr_update.coefficients qr) (Decomp.lstsq design b)
          && rel_vec_close 1e-8 (Qr_update.leverages qr) (Decomp.hat_diag design)
          && rel_close 1e-8 (Qr_update.press qr) (Decomp.press design b));
      QCheck.Test.make ~count:300 qr_seeded
        ~name:"qr_update: press_probe equals append-then-press and never mutates"
        (fun (seed, m, k) ->
          let rng = Rng.create ~seed () in
          let cols = random_columns rng m k in
          let candidate = random_vector rng m in
          let b = random_vector rng m in
          let qr, accepted = build b cols in
          let before = Qr_update.press qr in
          match Qr_update.press_probe qr candidate with
          | None -> false
          | Some probed ->
              accepted
              && Qr_update.press qr = before (* bitwise: the probe is read-only *)
              && Qr_update.cols qr = k
              && Qr_update.append qr candidate
              && rel_close 1e-8 probed (Qr_update.press qr));
      QCheck.Test.make ~count:100 qr_seeded
        ~name:"qr_update: dependent columns rejected; scratch ridge path stays finite"
        (fun (seed, m, k) ->
          let rng = Rng.create ~seed () in
          let cols = random_columns rng m k in
          let b = random_vector rng m in
          let qr, accepted = build b cols in
          let weights = Array.init k (fun _ -> Rng.range rng (-2.) 2.) in
          let dependent =
            Array.init m (fun i ->
                let acc = ref 0. in
                Array.iteri (fun j w -> acc := !acc +. (w *. cols.(j).(i))) weights;
                !acc)
          in
          let before = Qr_update.press qr in
          let rejected =
            (not (Qr_update.append qr dependent))
            && Qr_update.press_probe qr dependent = None
            && Qr_update.cols qr = k
            && Qr_update.press qr = before
          in
          (* The caller-side fallback for rejected columns: scratch ridge
             regression on the rank-deficient design must stay finite. *)
          let design = columns_matrix m (Array.append cols [| dependent |]) in
          accepted && rejected
          && Array.for_all Float.is_finite (Decomp.lstsq design b)
          && Float.is_finite (Decomp.press design b));
    ]
  in
  qr_update_tests
  @ [
    QCheck.Test.make ~name:"qr reconstructs for random shapes" ~count:60 seeded
      (fun (seed, (m, extra), ()) ->
        let n = max 1 (m - extra) in
        let rng = Rng.create ~seed () in
        let a = random_matrix rng m n in
        let q, r = Decomp.qr a in
        Matrix.equal ~tol:1e-7 a (Matrix.mul q r));
    QCheck.Test.make ~name:"lstsq never returns non-finite" ~count:60 seeded
      (fun (seed, (m, extra), ()) ->
        let n = max 1 (m - extra) in
        let rng = Rng.create ~seed () in
        let a = random_matrix rng m n in
        let b = random_vector rng m in
        Array.for_all Float.is_finite (Decomp.lstsq a b));
    QCheck.Test.make ~name:"hat trace equals column count (full rank)" ~count:40 seeded
      (fun (seed, (m, extra), ()) ->
        let n = max 1 (m - extra - 1) in
        let rng = Rng.create ~seed () in
        let a = random_matrix rng (m + 4) n in
        let h = Decomp.hat_diag a in
        Float.abs (Array.fold_left ( +. ) 0. h -. float_of_int n) < 1e-5);
  ]

let suite =
  [
    Alcotest.test_case "matrix: construction" `Quick test_matrix_construction;
    Alcotest.test_case "matrix: ragged rejected" `Quick test_matrix_ragged_rejected;
    Alcotest.test_case "matrix: transpose involution" `Quick test_matrix_transpose_involution;
    Alcotest.test_case "matrix: identity" `Quick test_matrix_identity_multiplication;
    Alcotest.test_case "matrix: known product" `Quick test_matrix_mul_known;
    Alcotest.test_case "matrix: mul_vec" `Quick test_matrix_mul_vec;
    Alcotest.test_case "matrix: select columns" `Quick test_matrix_select_columns;
    Alcotest.test_case "matrix: add/sub/scale" `Quick test_matrix_add_sub_scale;
    Alcotest.test_case "qr: reconstruction" `Quick test_qr_reconstruction;
    Alcotest.test_case "qr: orthonormal columns" `Quick test_qr_orthonormal_columns;
    Alcotest.test_case "qr: upper triangular" `Quick test_qr_r_upper_triangular;
    Alcotest.test_case "lu: known system" `Quick test_lu_solve_known_system;
    Alcotest.test_case "lu: random residuals" `Quick test_lu_solve_random_residual;
    Alcotest.test_case "lu: singular raises" `Quick test_lu_singular_raises;
    Alcotest.test_case "cholesky: reconstruction" `Quick test_cholesky_reconstruction;
    Alcotest.test_case "cholesky: indefinite rejected" `Quick test_cholesky_rejects_indefinite;
    Alcotest.test_case "spd solve matches lu" `Quick test_solve_spd_matches_lu;
    Alcotest.test_case "lstsq: exact recovery" `Quick test_lstsq_exact_system;
    Alcotest.test_case "lstsq: residual orthogonality" `Quick test_lstsq_residual_orthogonality;
    Alcotest.test_case "lstsq: rank-deficient fallback" `Quick test_lstsq_rank_deficient_falls_back;
    Alcotest.test_case "hat diag: range and trace" `Quick test_hat_diag_range_and_trace;
    Alcotest.test_case "press equals explicit LOO" `Quick test_press_equals_explicit_loo;
    Alcotest.test_case "qr_update: validation" `Quick test_qr_update_validation;
    Alcotest.test_case "qr_update: duplicate rejected" `Quick test_qr_update_rejects_duplicate_column;
    Alcotest.test_case "cmatrix: real system" `Quick test_cmatrix_solve_real_system;
    Alcotest.test_case "cmatrix: complex residual" `Quick test_cmatrix_solve_complex_residual;
    Alcotest.test_case "cmatrix: add_entry" `Quick test_cmatrix_add_entry_accumulates;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) property_tests

(* Tests for the circuit simulator substrate: MOS model, DC Newton solve,
   AC small-signal analysis. *)

module Mos = Caffeine_spice.Mos
module Circuit = Caffeine_spice.Circuit
module Dc = Caffeine_spice.Dc
module Ac = Caffeine_spice.Ac

let check_close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let nmos = Mos.default_nmos
let pmos = Mos.default_pmos

(* --- MOS model --- *)

let test_mos_cutoff () =
  let op = Mos.evaluate nmos ~w:10e-6 ~l:1e-6 ~vgs:0.2 ~vds:1.0 ~vbs:0. in
  Alcotest.(check bool) "cutoff region" true (op.region = `Cutoff);
  Alcotest.(check bool) "tiny leakage" true (Float.abs op.ids < 1e-9)

let test_mos_saturation_square_law () =
  let w = 20e-6 and l = 1e-6 in
  let vov = 0.3 in
  let vgs = nmos.Mos.vth0 +. vov in
  let vds = 1.5 in
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs:0. in
  Alcotest.(check bool) "saturation region" true (op.region = `Saturation);
  let beta = nmos.Mos.kp *. w /. l in
  let expected = beta /. 2. *. vov *. vov *. (1. +. (nmos.Mos.lambda *. vds)) in
  check_close ~tol:1e-3 "square law current" expected op.ids

let test_mos_triode_region () =
  let vov = 0.5 in
  let vgs = nmos.Mos.vth0 +. vov in
  let op = Mos.evaluate nmos ~w:10e-6 ~l:1e-6 ~vgs ~vds:0.1 ~vbs:0. in
  Alcotest.(check bool) "triode region" true (op.region = `Triode)

let finite_difference f x0 =
  let h = 1e-7 in
  (f (x0 +. h) -. f (x0 -. h)) /. (2. *. h)

let test_mos_gm_matches_finite_difference () =
  let w = 10e-6 and l = 1e-6 in
  let vgs = 1.2 and vds = 1.0 and vbs = -0.3 in
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs in
  let ids_at vgs = (Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  check_close ~tol:1e-4 "gm = dids/dvgs" (finite_difference ids_at vgs) op.gm

let test_mos_gds_matches_finite_difference () =
  let w = 10e-6 and l = 1e-6 in
  let vgs = 1.2 and vds = 1.0 and vbs = 0. in
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs in
  let ids_at vds = (Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  check_close ~tol:1e-4 "gds = dids/dvds" (finite_difference ids_at vds) op.gds

let test_mos_gmb_matches_finite_difference () =
  let w = 10e-6 and l = 1e-6 in
  let vgs = 1.2 and vds = 1.0 and vbs = -0.5 in
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs in
  let ids_at vbs = (Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  check_close ~tol:1e-4 "gmb = dids/dvbs" (finite_difference ids_at vbs) op.gmb

let test_mos_reverse_mode_derivatives () =
  (* vds < 0: drain and source swap; derivatives must still be the true
     partials. *)
  let w = 10e-6 and l = 1e-6 in
  let vgs = 0.5 and vds = -1.0 and vbs = -0.2 in
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs in
  let ids_vgs vgs = (Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  let ids_vds vds = (Mos.evaluate nmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  check_close ~tol:1e-4 "reverse gm" (finite_difference ids_vgs vgs) op.gm;
  check_close ~tol:1e-4 "reverse gds" (finite_difference ids_vds vds) op.gds;
  Alcotest.(check bool) "reverse current negative" true (op.ids < 0.)

let test_pmos_current_sign () =
  (* PMOS in normal operation: vgs, vds negative; drain->source current is
     negative (current flows source->drain). *)
  let op = Mos.evaluate pmos ~w:20e-6 ~l:1e-6 ~vgs:(-1.2) ~vds:(-1.5) ~vbs:0. in
  Alcotest.(check bool) "pmos saturation" true (op.region = `Saturation);
  Alcotest.(check bool) "pmos ids negative" true (op.ids < 0.);
  Alcotest.(check bool) "pmos gm positive" true (op.gm > 0.)

let test_pmos_derivatives () =
  let w = 20e-6 and l = 1e-6 in
  let vgs = -1.2 and vds = -1.5 and vbs = 0.4 in
  let op = Mos.evaluate pmos ~w ~l ~vgs ~vds ~vbs in
  let ids_vgs vgs = (Mos.evaluate pmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  let ids_vds vds = (Mos.evaluate pmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  let ids_vbs vbs = (Mos.evaluate pmos ~w ~l ~vgs ~vds ~vbs).Mos.ids in
  check_close ~tol:1e-4 "pmos gm" (finite_difference ids_vgs vgs) op.gm;
  check_close ~tol:1e-4 "pmos gds" (finite_difference ids_vds vds) op.gds;
  check_close ~tol:1e-4 "pmos gmb" (finite_difference ids_vbs vbs) op.gmb

let test_size_for_current_roundtrip () =
  let id = 100e-6 and vov = 0.25 and l = 1e-6 in
  let w = Mos.size_for_current nmos ~id ~vov ~l in
  let vgs = nmos.Mos.vth0 +. vov in
  (* Without channel-length modulation the current would be exactly id; with
     lambda it is id*(1+lambda*vds) at vds = vov. *)
  let op = Mos.evaluate nmos ~w ~l ~vgs ~vds:vov ~vbs:0. in
  check_close ~tol:1e-2 "sized current" (id *. (1. +. (nmos.Mos.lambda *. vov))) op.ids

(* --- DC analysis --- *)

let solve_exn circuit =
  match Dc.solve circuit with
  | Ok solution -> solution
  | Error msg -> Alcotest.failf "DC solve failed: %s" msg

let test_dc_voltage_divider () =
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 10.; ac = 0. };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 2; ohms = 1000. };
        Circuit.Resistor { name = "r2"; n1 = 2; n2 = 0; ohms = 3000. };
      ]
  in
  let solution = solve_exn circuit in
  check_close "divider midpoint" 7.5 (Dc.node_voltage solution 2);
  check_close "source current" (-10. /. 4000.) (Dc.branch_current solution "vin")

let test_dc_current_source_into_resistor () =
  let circuit =
    Circuit.make
      [
        Circuit.Isource { name = "i1"; from_node = 0; to_node = 1; amps = 1e-3 };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 0; ohms = 2000. };
      ]
  in
  let solution = solve_exn circuit in
  check_close "ohm's law" 2.0 (Dc.node_voltage solution 1)

let test_dc_vccs () =
  (* VCCS driving a resistor: v_out = -gm * v_in * r. *)
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.5; ac = 0. };
        Circuit.Vccs { name = "g1"; out_pos = 2; out_neg = 0; in_pos = 1; in_neg = 0; gm = 1e-3 };
        Circuit.Resistor { name = "rl"; n1 = 2; n2 = 0; ohms = 10000. };
      ]
  in
  let solution = solve_exn circuit in
  check_close "vccs output" (-5.0) (Dc.node_voltage solution 2)

let test_dc_diode_connected_nmos () =
  (* Current source into a diode-connected NMOS: vgs settles where
     ids = bias current. *)
  let w = 50e-6 and l = 1e-6 in
  let bias = 50e-6 in
  let circuit =
    Circuit.make
      [
        Circuit.Isource { name = "ib"; from_node = 0; to_node = 1; amps = bias };
        Circuit.Mosfet
          { name = "m1"; drain = 1; gate = 1; source = 0; bulk = 0; params = nmos; w; l };
      ]
  in
  let solution = solve_exn circuit in
  let bias_point = Dc.mos_bias solution "m1" in
  Alcotest.(check bool) "diode in saturation" true (bias_point.Dc.op.Mos.region = `Saturation);
  check_close ~tol:1e-3 "device carries the bias current" bias bias_point.Dc.op.Mos.ids;
  Alcotest.(check bool) "vgs above threshold" true (bias_point.Dc.vgs > nmos.Mos.vth0)

let test_dc_nmos_current_mirror () =
  (* Classic 1:2 mirror: output device has twice the width. *)
  let l = 1e-6 and w = 20e-6 in
  let bias = 20e-6 in
  let circuit =
    Circuit.make
      [
        Circuit.Isource { name = "ib"; from_node = 0; to_node = 1; amps = bias };
        Circuit.Mosfet
          { name = "mdiode"; drain = 1; gate = 1; source = 0; bulk = 0; params = nmos; w; l };
        Circuit.Mosfet
          { name = "mout"; drain = 2; gate = 1; source = 0; bulk = 0; params = nmos; w = 2. *. w; l };
        Circuit.Vsource { name = "vd"; pos = 2; neg = 0; dc = 2.0; ac = 0. };
      ]
  in
  let solution = solve_exn circuit in
  let output_current = -.Dc.branch_current solution "vd" in
  (* 2x the reference, modulated by the vds mismatch through lambda. *)
  Alcotest.(check bool) "mirror gain near 2" true
    (output_current > 1.8 *. bias && output_current < 2.4 *. bias)

let test_dc_resistive_ladder_converges_fast () =
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "v1"; pos = 1; neg = 0; dc = 1.; ac = 0. };
        Circuit.Resistor { name = "ra"; n1 = 1; n2 = 2; ohms = 100. };
        Circuit.Resistor { name = "rb"; n1 = 2; n2 = 3; ohms = 100. };
        Circuit.Resistor { name = "rc"; n1 = 3; n2 = 0; ohms = 100. };
      ]
  in
  let solution = solve_exn circuit in
  Alcotest.(check bool) "few iterations for a linear circuit" true (solution.Dc.iterations <= 3);
  check_close "ladder node" (2. /. 3.) (Dc.node_voltage solution 2)

(* --- AC analysis --- *)

let test_ac_rc_lowpass () =
  let r = 1000. and c = 1e-9 in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 1. };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 2; ohms = r };
        Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c };
      ]
  in
  let dc = solve_exn circuit in
  let pole = 1. /. (2. *. Float.pi *. r *. c) in
  let freqs = [| pole /. 100.; pole; pole *. 100. |] in
  let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:2 ~freqs in
  check_close ~tol:1e-3 "passband gain" 1.0 (Complex.norm sweep.(0).Ac.response);
  check_close ~tol:1e-2 "-3dB at the pole" (1. /. sqrt 2.) (Complex.norm sweep.(1).Ac.response);
  Alcotest.(check bool) "rolloff at 100x pole" true (Complex.norm sweep.(2).Ac.response < 0.02)

let test_ac_unity_gain_interpolation () =
  (* Single-pole amplifier modeled with VCCS + R + C: gain gm*R, pole 1/RC;
     unity-gain frequency should be near gm*R*pole (gain-bandwidth). *)
  let gm = 1e-3 and r = 100e3 and c = 10e-12 in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 1. };
        Circuit.Vccs { name = "g1"; out_pos = 0; out_neg = 2; in_pos = 1; in_neg = 0; gm };
        Circuit.Resistor { name = "ro"; n1 = 2; n2 = 0; ohms = r };
        Circuit.Capacitor { name = "cl"; n1 = 2; n2 = 0; farads = c };
      ]
  in
  let dc = solve_exn circuit in
  let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e9 ~points_per_decade:20 in
  let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:2 ~freqs in
  let dc_gain_db = Ac.low_frequency_gain_db sweep in
  check_close ~tol:1e-2 "dc gain" (20. *. log10 (gm *. r)) dc_gain_db;
  (match Ac.unity_gain_frequency sweep with
  | None -> Alcotest.fail "expected a unity crossing"
  | Some fu ->
      let gbw = gm *. r /. (2. *. Float.pi *. r *. c) in
      Alcotest.(check bool) "fu near gain-bandwidth product" true
        (fu > 0.9 *. gbw && fu < 1.1 *. gbw));
  match Ac.phase_margin_deg sweep with
  | None -> Alcotest.fail "expected a phase margin"
  | Some pm ->
      (* Single-pole system: phase margin just above 90 degrees. *)
      Alcotest.(check bool) "single-pole phase margin near 90" true (pm > 85. && pm < 95.)

let test_ac_two_pole_phase_margin_drops () =
  let gm = 1e-3 and r = 100e3 and c = 10e-12 in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 1. };
        Circuit.Vccs { name = "g1"; out_pos = 0; out_neg = 2; in_pos = 1; in_neg = 0; gm };
        Circuit.Resistor { name = "ro"; n1 = 2; n2 = 0; ohms = r };
        Circuit.Capacitor { name = "cl"; n1 = 2; n2 = 0; farads = c };
        (* Second stage: unity buffer with its own pole near fu. *)
        Circuit.Vccs { name = "g2"; out_pos = 0; out_neg = 3; in_pos = 2; in_neg = 0; gm = 1e-4 };
        Circuit.Resistor { name = "r2"; n1 = 3; n2 = 0; ohms = 10e3 };
        Circuit.Capacitor { name = "c2"; n1 = 3; n2 = 0; farads = 1e-12 };
      ]
  in
  let dc = solve_exn circuit in
  let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e10 ~points_per_decade:20 in
  let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:3 ~freqs in
  match Ac.phase_margin_deg sweep with
  | None -> Alcotest.fail "expected a phase margin"
  | Some pm -> Alcotest.(check bool) "second pole eats phase margin" true (pm < 85.)

let test_log_frequencies_monotone () =
  let freqs = Ac.log_frequencies ~start_hz:1. ~stop_hz:1e6 ~points_per_decade:10 in
  Alcotest.(check int) "count" 61 (Array.length freqs);
  let monotone = ref true in
  for i = 1 to Array.length freqs - 1 do
    if freqs.(i) <= freqs.(i - 1) then monotone := false
  done;
  Alcotest.(check bool) "monotone" true !monotone

let suite =
  [
    Alcotest.test_case "mos: cutoff" `Quick test_mos_cutoff;
    Alcotest.test_case "mos: saturation square law" `Quick test_mos_saturation_square_law;
    Alcotest.test_case "mos: triode region" `Quick test_mos_triode_region;
    Alcotest.test_case "mos: gm finite difference" `Quick test_mos_gm_matches_finite_difference;
    Alcotest.test_case "mos: gds finite difference" `Quick test_mos_gds_matches_finite_difference;
    Alcotest.test_case "mos: gmb finite difference" `Quick test_mos_gmb_matches_finite_difference;
    Alcotest.test_case "mos: reverse-mode derivatives" `Quick test_mos_reverse_mode_derivatives;
    Alcotest.test_case "mos: pmos current sign" `Quick test_pmos_current_sign;
    Alcotest.test_case "mos: pmos derivatives" `Quick test_pmos_derivatives;
    Alcotest.test_case "mos: sizing round-trip" `Quick test_size_for_current_roundtrip;
    Alcotest.test_case "dc: voltage divider" `Quick test_dc_voltage_divider;
    Alcotest.test_case "dc: current source" `Quick test_dc_current_source_into_resistor;
    Alcotest.test_case "dc: vccs" `Quick test_dc_vccs;
    Alcotest.test_case "dc: diode-connected nmos" `Quick test_dc_diode_connected_nmos;
    Alcotest.test_case "dc: nmos current mirror" `Quick test_dc_nmos_current_mirror;
    Alcotest.test_case "dc: linear circuit converges fast" `Quick test_dc_resistive_ladder_converges_fast;
    Alcotest.test_case "ac: rc lowpass" `Quick test_ac_rc_lowpass;
    Alcotest.test_case "ac: unity gain frequency" `Quick test_ac_unity_gain_interpolation;
    Alcotest.test_case "ac: two-pole phase margin" `Quick test_ac_two_pole_phase_margin_drops;
    Alcotest.test_case "ac: log frequency grid" `Quick test_log_frequencies_monotone;
  ]

(* --- transient analysis --- *)

module Tran = Caffeine_spice.Tran

let simulate_exn ?integration ?stimulus circuit ~step ~duration =
  match Tran.simulate ?integration ?stimulus ~circuit ~step ~duration () with
  | Ok waveform -> waveform
  | Error msg -> Alcotest.failf "transient failed: %s" msg

let test_tran_rc_step_charge () =
  (* Step from 0 to 1 V through R into C: v(t) = 1 - e^(-t/RC). *)
  let r = 1000. and c = 1e-9 in
  let tau = r *. c in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 0. };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 2; ohms = r };
        Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c };
      ]
  in
  let stimulus name t = if name = "vin" && t > 0. then Some 1.0 else None in
  let waveform = simulate_exn ~stimulus circuit ~step:(tau /. 100.) ~duration:(5. *. tau) in
  let trace = Tran.node_waveform waveform 2 in
  let at multiple =
    let index = int_of_float (multiple *. 100.) in
    trace.(index)
  in
  check_close ~tol:0.02 "one tau" (1. -. exp (-1.)) (at 1.);
  check_close ~tol:0.02 "three tau" (1. -. exp (-3.)) (at 3.);
  Alcotest.(check bool) "starts discharged" true (Float.abs trace.(0) < 1e-9)

let test_tran_backward_euler_converges_too () =
  let r = 1000. and c = 1e-9 in
  let tau = r *. c in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 0. };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 2; ohms = r };
        Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c };
      ]
  in
  let stimulus name t = if name = "vin" && t > 0. then Some 1.0 else None in
  let waveform =
    simulate_exn ~integration:Tran.Backward_euler ~stimulus circuit ~step:(tau /. 100.)
      ~duration:(3. *. tau)
  in
  let trace = Tran.node_waveform waveform 2 in
  check_close ~tol:0.05 "one tau (first order)" (1. -. exp (-1.)) trace.(100)

let test_tran_trapezoidal_more_accurate () =
  (* Capacitor discharge from an initial condition: v(t) = e^(-t/tau).  At a
     coarse step, second-order trapezoidal must beat backward Euler. *)
  let r = 1000. and c = 1e-9 in
  let tau = r *. c in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 0. };
        Circuit.Resistor { name = "r1"; n1 = 1; n2 = 2; ohms = r };
        Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c };
      ]
  in
  let initial =
    {
      Dc.voltages = [| 0.; 0.; 1. |];
      branch_currents = [ ("vin", 0.) ];
      iterations = 0;
      mos_biases = [];
    }
  in
  let error integration =
    let waveform =
      match
        Tran.simulate ~integration ~initial ~circuit ~step:(tau /. 8.) ~duration:tau ()
      with
      | Ok w -> w
      | Error msg -> Alcotest.failf "transient failed: %s" msg
    in
    let trace = Tran.node_waveform waveform 2 in
    let worst = ref 0. in
    Array.iteri
      (fun k t ->
        (* Skip the shared backward-Euler start-up step. *)
        if k > 1 then begin
          let exact = exp (-.t /. tau) in
          worst := Float.max !worst (Float.abs (trace.(k) -. exact))
        end)
      waveform.Tran.times;
    !worst
  in
  Alcotest.(check bool) "trapezoidal beats backward euler" true
    (error Tran.Trapezoidal < error Tran.Backward_euler)

let test_tran_current_source_ramp () =
  (* A constant current into a capacitor ramps linearly: dv/dt = I/C.  Start
     from an explicit zero initial condition (the true DC point of this
     circuit sits at I*R of the huge bleed resistor). *)
  let i = 1e-6 and c = 1e-9 in
  let circuit =
    Circuit.make
      [
        Circuit.Isource { name = "i1"; from_node = 0; to_node = 1; amps = i };
        Circuit.Capacitor { name = "c1"; n1 = 1; n2 = 0; farads = c };
        Circuit.Resistor { name = "rb"; n1 = 1; n2 = 0; ohms = 1e12 };
      ]
  in
  let initial =
    { Dc.voltages = [| 0.; 0. |]; branch_currents = []; iterations = 0; mos_biases = [] }
  in
  let waveform =
    match Tran.simulate ~initial ~circuit ~step:1e-7 ~duration:1e-5 () with
    | Ok w -> w
    | Error msg -> Alcotest.failf "transient failed: %s" msg
  in
  let trace = Tran.node_waveform waveform 1 in
  let slope = (trace.(50) -. trace.(0)) /. (waveform.Tran.times.(50) -. waveform.Tran.times.(0)) in
  check_close ~tol:0.05 "dv/dt = I/C" (i /. c) slope;
  let rising, falling = Tran.slew_rates waveform ~node:1 in
  check_close ~tol:0.05 "rising slew is the ramp" (i /. c) rising;
  Alcotest.(check bool) "no falling edge" true (falling >= 0.)

let test_tran_slew_rates_helper () =
  let waveform =
    {
      Tran.times = [| 0.; 1.; 2.; 3. |];
      voltages = [| [| 0.; 0. |]; [| 0.; 2. |]; [| 0.; 1. |]; [| 0.; 1. |] |];
    }
  in
  let rising, falling = Tran.slew_rates waveform ~node:1 in
  check_close "max rise" 2. rising;
  check_close "max fall" (-1.) falling

let test_tran_settling_time () =
  let waveform =
    {
      Tran.times = [| 0.; 1.; 2.; 3.; 4. |];
      voltages = [| [| 0.; 0. |]; [| 0.; 0.8 |]; [| 0.; 1.05 |]; [| 0.; 0.99 |]; [| 0.; 1.01 |] |];
    }
  in
  (match Tran.settling_time waveform ~node:1 ~target:1.0 ~tolerance:0.02 with
  | Some t -> check_close "settles at t=3" 3. t
  | None -> Alcotest.fail "expected settling");
  Alcotest.(check bool) "never settles to 2.0" true
    (Tran.settling_time waveform ~node:1 ~target:2.0 ~tolerance:0.02 = None)

let test_tran_nonlinear_mos_discharge () =
  (* NMOS switch discharging a capacitor: the decay must be monotone and
     reach near zero — exercises Newton inside the timestep loop. *)
  let c = 1e-12 in
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vg"; pos = 1; neg = 0; dc = 0.; ac = 0. };
        Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c };
        Circuit.Isource { name = "precharge"; from_node = 0; to_node = 2; amps = 1e-6 };
        Circuit.Resistor { name = "rl"; n1 = 2; n2 = 0; ohms = 3e6 };
        Circuit.Mosfet
          {
            name = "m1";
            drain = 2;
            gate = 1;
            source = 0;
            bulk = 0;
            params = Mos.default_nmos;
            w = 10e-6;
            l = 1e-6;
          };
      ]
  in
  (* With the gate at 0 the capacitor sits at 3 V; turning the gate on
     discharges it through the transistor. *)
  let stimulus name t = if name = "vg" && t > 0. then Some 2.5 else None in
  let waveform = simulate_exn ~stimulus circuit ~step:2e-9 ~duration:4e-7 in
  let trace = Tran.node_waveform waveform 2 in
  Alcotest.(check bool) "starts precharged" true (trace.(0) > 2.);
  let final = trace.(Array.length trace - 1) in
  Alcotest.(check bool) "discharged" true (final < 0.2)

let tran_suite =
  [
    Alcotest.test_case "tran: rc step response" `Quick test_tran_rc_step_charge;
    Alcotest.test_case "tran: backward euler" `Quick test_tran_backward_euler_converges_too;
    Alcotest.test_case "tran: trapezoidal accuracy" `Quick test_tran_trapezoidal_more_accurate;
    Alcotest.test_case "tran: current ramp" `Quick test_tran_current_source_ramp;
    Alcotest.test_case "tran: slew helper" `Quick test_tran_slew_rates_helper;
    Alcotest.test_case "tran: settling time" `Quick test_tran_settling_time;
    Alcotest.test_case "tran: nonlinear discharge" `Quick test_tran_nonlinear_mos_discharge;
  ]

let suite = suite @ tran_suite

(* --- DC sweep --- *)

let test_dc_sweep_mos_transfer_curve () =
  (* Sweep the gate of a resistively loaded NMOS: the output must fall
     monotonically as the device turns on, covering cutoff -> saturation ->
     triode. *)
  let circuit =
    Circuit.make
      [
        Circuit.Vsource { name = "vdd"; pos = 1; neg = 0; dc = 5.; ac = 0. };
        Circuit.Vsource { name = "vg"; pos = 2; neg = 0; dc = 0.; ac = 0. };
        Circuit.Resistor { name = "rl"; n1 = 1; n2 = 3; ohms = 20e3 };
        Circuit.Mosfet
          { name = "m1"; drain = 3; gate = 2; source = 0; bulk = 0; params = nmos; w = 20e-6; l = 2e-6 };
      ]
  in
  let values = Array.init 26 (fun k -> float_of_int k *. 0.1) in
  match Dc.sweep ~circuit ~source:"vg" ~values () with
  | Error msg -> Alcotest.failf "sweep failed: %s" msg
  | Ok points ->
      Alcotest.(check int) "all points solved" 26 (Array.length points);
      let outputs = Array.map (fun (_, s) -> Dc.node_voltage s 3) points in
      check_close ~tol:1e-3 "off at vg=0" 5. outputs.(0);
      Alcotest.(check bool) "on at vg=2.5" true (outputs.(25) < 1.);
      let monotone = ref true in
      for k = 1 to 25 do
        if outputs.(k) > outputs.(k - 1) +. 1e-9 then monotone := false
      done;
      Alcotest.(check bool) "monotone transfer curve" true !monotone

let test_dc_sweep_unknown_source () =
  let circuit =
    Circuit.make [ Circuit.Resistor { name = "r"; n1 = 1; n2 = 0; ohms = 1. } ]
  in
  Alcotest.(check bool) "unknown source rejected" true
    (match Dc.sweep ~circuit ~source:"nope" ~values:[| 0. |] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let sweep_suite =
  [
    Alcotest.test_case "dc sweep: mos transfer curve" `Quick test_dc_sweep_mos_transfer_curve;
    Alcotest.test_case "dc sweep: unknown source" `Quick test_dc_sweep_unknown_source;
  ]

let suite = suite @ sweep_suite

(* --- property tests: random passive networks --- *)

let random_rc_ladder rng stages =
  (* vin -> R -> node -> C to ground, chained. *)
  let elements = ref [ Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 1.; ac = 1. } ] in
  for s = 1 to stages do
    let r = Caffeine_util.Rng.range rng 100. 10_000. in
    let c = Caffeine_util.Rng.range rng 1e-12 1e-9 in
    elements :=
      Circuit.Capacitor { name = Printf.sprintf "c%d" s; n1 = s + 1; n2 = 0; farads = c }
      :: Circuit.Resistor { name = Printf.sprintf "r%d" s; n1 = s; n2 = s + 1; ohms = r }
      :: !elements
  done;
  Circuit.make (List.rev !elements)

let passive_property_tests =
  [
    QCheck.Test.make ~name:"rc ladder: dc passes the source voltage" ~count:50
      QCheck.(pair small_int (int_range 1 6))
      (fun (seed, stages) ->
        let rng = Caffeine_util.Rng.create ~seed () in
        let circuit = random_rc_ladder rng stages in
        match Dc.solve circuit with
        | Error _ -> false
        | Ok solution ->
            (* No DC current flows (capacitors block), so every node sits at
               the source voltage. *)
            let ok = ref true in
            for node = 1 to stages + 1 do
              if Float.abs (Dc.node_voltage solution node -. 1.) > 1e-6 then ok := false
            done;
            !ok);
    QCheck.Test.make ~name:"rc ladder: passive gain never exceeds 1" ~count:50
      QCheck.(pair small_int (int_range 1 6))
      (fun (seed, stages) ->
        let rng = Caffeine_util.Rng.create ~seed () in
        let circuit = random_rc_ladder rng stages in
        match Dc.solve circuit with
        | Error _ -> false
        | Ok dc ->
            let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e9 ~points_per_decade:5 in
            let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:(stages + 1) ~freqs in
            Array.for_all (fun p -> Complex.norm p.Ac.response <= 1. +. 1e-9) sweep);
    QCheck.Test.make ~name:"rc ladder: gain is monotone decreasing in frequency" ~count:50
      QCheck.(pair small_int (int_range 1 4))
      (fun (seed, stages) ->
        let rng = Caffeine_util.Rng.create ~seed () in
        let circuit = random_rc_ladder rng stages in
        match Dc.solve circuit with
        | Error _ -> false
        | Ok dc ->
            let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e9 ~points_per_decade:5 in
            let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:(stages + 1) ~freqs in
            let magnitudes = Array.map (fun p -> Complex.norm p.Ac.response) sweep in
            let ok = ref true in
            for k = 1 to Array.length magnitudes - 1 do
              if magnitudes.(k) > magnitudes.(k - 1) +. 1e-9 then ok := false
            done;
            !ok);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) passive_property_tests

# Shared plumbing for the ci/ scripts.  Each script is self-contained and
# runnable locally from any directory (ci/<name>.sh, or ci/check-all.sh for
# the lot); in CI they run under `opam exec --` so `dune` resolves to the
# opam switch.
#
# Scripts use the built binary directly instead of `dune exec` so signal
# tests talk to the CLI process itself, not a wrapper.

set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

CLI=_build/default/bin/caffeine_cli.exe

build_cli() {
  dune build bin/caffeine_cli.exe
}

# Artifacts of a script live in a scratch dir wiped on exit, pass or fail.
scratch=$(mktemp -d "${TMPDIR:-/tmp}/caffeine-ci.XXXXXX")
trap 'rm -rf "$scratch"' EXIT INT TERM

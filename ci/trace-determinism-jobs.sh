#!/bin/sh
# End-to-end trace determinism through the CLI: the same seeded fit at 1 and
# 4 worker domains must project to identical count records.
. "$(dirname "$0")/lib.sh"

build_cli

"$CLI" gen-data --out "$scratch/ota.csv"
CAFFEINE_JOBS=1 "$CLI" fit --train "$scratch/ota.csv" --target PM \
  --pop 30 --gens 10 --seed 17 --jobs 0 --trace "$scratch/trace-seq.jsonl"
CAFFEINE_JOBS=4 "$CLI" fit --train "$scratch/ota.csv" --target PM \
  --pop 30 --gens 10 --seed 17 --jobs 0 --trace "$scratch/trace-par.jsonl"
"$CLI" trace --counts "$scratch/trace-seq.jsonl" > "$scratch/counts-seq.txt"
"$CLI" trace --counts "$scratch/trace-par.jsonl" > "$scratch/counts-par.txt"
diff -u "$scratch/counts-seq.txt" "$scratch/counts-par.txt"

echo "trace-determinism-jobs: OK"

#!/bin/sh
# Run every CLI-level determinism and serving contract locally, in the order
# CI runs them.  Each script is also independently runnable.
set -eu

here=$(dirname "$0")
for script in fuse-determinism trace-determinism-jobs backend-determinism \
              kill-resume serve-e2e stream-gate; do
  echo "=== ci/$script.sh"
  "$here/$script.sh"
done
echo "=== all CI contract scripts passed"

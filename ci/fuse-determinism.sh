#!/bin/sh
# End-to-end fusion bisection through the CLI: the same seeded fit with
# --no-fuse must print the exact same front at the sequential and process
# backends.
. "$(dirname "$0")/lib.sh"

build_cli

"$CLI" gen-data --out "$scratch/fuse-data.csv"
"$CLI" fit --train "$scratch/fuse-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
  --backend seq --out "$scratch/front-fused.txt"
"$CLI" fit --train "$scratch/fuse-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
  --backend seq --no-fuse --out "$scratch/front-unfused.txt"
"$CLI" fit --train "$scratch/fuse-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
  --backend processes --shard 3 --no-fuse --out "$scratch/front-proc-unfused.txt"
diff -u "$scratch/front-fused.txt" "$scratch/front-unfused.txt"
diff -u "$scratch/front-fused.txt" "$scratch/front-proc-unfused.txt"

echo "fuse-determinism: OK"

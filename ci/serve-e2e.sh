#!/bin/sh
# Serving end to end: fit a small front, pipe a predict/front/explain/stats
# session through `serve --stdio`, and require the served predictions to be
# byte-identical to the predict CLI's direct Model evaluation of the same
# front on the same rows.  Then the lifecycle contracts: SIGTERM mid-session
# drains cleanly (response completes, exit 0), and a malformed front file is
# refused with a one-line file:line error.
. "$(dirname "$0")/lib.sh"

build_cli

"$CLI" gen-data --out "$scratch/serve-data.csv"
"$CLI" fit --train "$scratch/serve-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
  --backend seq --out "$scratch/front.txt"

# Direct evaluation reference: one [[...],...] line in the serve protocol's
# own float encoding.
"$CLI" predict --models "$scratch/front.txt" --data "$scratch/serve-data.csv" --target PM \
  --dump "$scratch/direct.json" > /dev/null

# One predict request carrying every CSV row.  The design variables are the
# first NF-6 columns (the trailing 6 are the OTA performances); fields pass
# through awk untouched, so the server parses the same decimal text the
# predict CLI read.
request=$(awk -F, '
  NR == 1 { dims = NF - 6; next }
  {
    row = ""
    for (i = 1; i <= dims; i++) row = row (i > 1 ? "," : "") $i
    rows = rows (NR > 2 ? "," : "") "[" row "]"
  }
  END { print "{\"op\":\"predict\",\"rows\":[" rows "]}" }
' "$scratch/serve-data.csv")

{
  echo '{"op":"front"}'
  echo '{"op":"explain","index":0}'
  echo '{"op":"explain","index":0,"language":"c"}'
  echo "$request"
  echo '{"op":"stats"}'
} | "$CLI" serve --front "$scratch/front.txt" --stdio \
    > "$scratch/session.txt" 2> "$scratch/banner.txt"

test "$(wc -l < "$scratch/session.txt")" -eq 5
test "$(grep -c '"ok":true' "$scratch/session.txt")" -eq 5

# The predict response keeps "outputs" last so the served rows peel off with
# sed; they must match the direct dump byte for byte.
sed -n 's/.*"outputs"://p' "$scratch/session.txt" | sed 's/}$//' > "$scratch/served.json"
diff -u "$scratch/direct.json" "$scratch/served.json"

# SIGTERM drain: keep the input open via a FIFO, get one response in flight,
# then TERM the server — it must flush the response and exit 0.
mkfifo "$scratch/in"
"$CLI" serve --front "$scratch/front.txt" --stdio \
  < "$scratch/in" > "$scratch/drain-out.txt" 2> /dev/null &
pid=$!
exec 3> "$scratch/in"
printf '%s\n' "$request" >&3
tries=0
while [ ! -s "$scratch/drain-out.txt" ] && [ "$tries" -lt 100 ]; do
  sleep 0.1
  tries=$((tries + 1))
done
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
exec 3>&-
test "$rc" -eq 0
test "$(grep -c '"ok":true' "$scratch/drain-out.txt")" -eq 1

# A malformed front is refused with a one-line error naming file and line.
printf 'vars: a b\n1 + +\n' > "$scratch/bad.txt"
rc=0
"$CLI" serve --front "$scratch/bad.txt" --stdio < /dev/null \
  2> "$scratch/serve-err.txt" || rc=$?
test "$rc" -eq 2
grep -q "bad.txt:2:" "$scratch/serve-err.txt"
test "$(wc -l < "$scratch/serve-err.txt")" -eq 1

echo "serve-e2e: OK"

#!/bin/sh
# The streaming (out-of-core) contract, end to end:
#
#   1. Ingestion bugfixes at the CLI level: CRLF files parse (and error
#      messages quote cells without the carriage return), duplicate CSV
#      headers are rejected naming the column and both positions.
#   2. Front bit-identity: the same seeded fit must print byte-identical
#      fronts dense vs --data-stream, from CSV input and from a packed
#      .cafs store, across execution backends.
#   3. The memory gate: bench --experiment stream fits >= 2^20 waveform
#      samples and asserts (via VmHWM, in process) that peak RSS stays
#      under 50% of the dense feature-matrix footprint; when
#      /usr/bin/time is available the assertion is repeated externally
#      against its "Maximum resident set size".
#
# Artifacts: BENCH_stream.json in the repo root (uploaded by CI).
. "$(dirname "$0")/lib.sh"

build_cli
dune build bench/main.exe
BENCH=_build/default/bench/main.exe

# --- 1. ingestion bugfix sweep -------------------------------------------

"$CLI" gen-data --out "$scratch/data.csv"

# CRLF input must parse identically to LF input.
awk '{ printf "%s\r\n", $0 }' "$scratch/data.csv" > "$scratch/data-crlf.csv"
"$CLI" fit --train "$scratch/data.csv" --target PM --pop 20 --gens 5 --seed 9 \
  --out "$scratch/front-lf.txt"
"$CLI" fit --train "$scratch/data-crlf.csv" --target PM --pop 20 --gens 5 --seed 9 \
  --out "$scratch/front-crlf.txt"
diff -u "$scratch/front-lf.txt" "$scratch/front-crlf.txt"

# A bad cell in a CRLF file must be quoted without the carriage return.
printf 'x,PM\r\n1,zzz\r\n' > "$scratch/bad-crlf.csv"
if "$CLI" fit --train "$scratch/bad-crlf.csv" --target PM --out "$scratch/never.txt" \
    2> "$scratch/bad-crlf.err"; then
  echo "stream-gate: bad CRLF cell was accepted" >&2; exit 1
fi
grep -q 'bad number "zzz"' "$scratch/bad-crlf.err"
if grep -q "$(printf '\r')" "$scratch/bad-crlf.err"; then
  echo "stream-gate: carriage return leaked into the error message" >&2; exit 1
fi

# Duplicate headers must be rejected naming the column and both positions.
printf 'x,y,x\n1,2,3\n' > "$scratch/dup.csv"
if "$CLI" fit --train "$scratch/dup.csv" --target y --out "$scratch/never.txt" \
    2> "$scratch/dup.err"; then
  echo "stream-gate: duplicate header was accepted" >&2; exit 1
fi
grep -q 'duplicate column name "x"' "$scratch/dup.err"
grep -q 'columns 1 and 3' "$scratch/dup.err"

# --- 2. dense vs streamed front bit-identity ------------------------------

"$CLI" fit --train "$scratch/data.csv" --target PM --pop 30 --gens 8 --seed 17 \
  --out "$scratch/front-dense.txt"
"$CLI" fit --train "$scratch/data.csv" --target PM --pop 30 --gens 8 --seed 17 \
  --data-stream --chunk-rows 37 --out "$scratch/front-stream.txt"
diff -u "$scratch/front-dense.txt" "$scratch/front-stream.txt"

# Packed column-store input, across backends.
"$CLI" pack --csv "$scratch/data.csv" --chunk-rows 64 --out "$scratch/data.cafs"
"$CLI" fit --train "$scratch/data.cafs" --target PM --pop 30 --gens 8 --seed 17 \
  --data-stream --backend domains --jobs 3 --out "$scratch/front-cafs-domains.txt"
diff -u "$scratch/front-dense.txt" "$scratch/front-cafs-domains.txt"
"$CLI" fit --train "$scratch/data.cafs" --target PM --pop 30 --gens 8 --seed 17 \
  --data-stream --backend processes --shard 2 --out "$scratch/front-cafs-proc.txt"
diff -u "$scratch/front-dense.txt" "$scratch/front-cafs-proc.txt"

# .cafs input implies --data-stream — a packed store must never fall
# through to the CSV parser.
"$CLI" fit --train "$scratch/data.cafs" --target PM --pop 30 --gens 8 --seed 17 \
  --out "$scratch/front-cafs-noflag.txt"
diff -u "$scratch/front-dense.txt" "$scratch/front-cafs-noflag.txt"

# --- 3. million-sample RSS gate -------------------------------------------

# The bench asserts VmHWM < 50% of the dense footprint in process and
# exits non-zero on violation (and on streamed-vs-dense disagreement).
if [ -x /usr/bin/time ]; then
  /usr/bin/time -v "$BENCH" --experiment stream --stream-only --smoke \
    2> "$scratch/time.out"
  max_kb=$(awk '/Maximum resident set size/ { print $NF }' "$scratch/time.out")
  budget_kb=$(awk -F'[ ,]+' '/"budget_bytes"/ { print int($3 / 1024) }' BENCH_stream.json)
  echo "stream-gate: external max RSS ${max_kb} kB (budget ${budget_kb} kB)"
  if [ "$max_kb" -ge "$budget_kb" ]; then
    echo "stream-gate: external RSS measurement exceeds the 50% budget" >&2
    exit 1
  fi
else
  echo "stream-gate: /usr/bin/time not available; relying on the in-process VmHWM assertion"
  "$BENCH" --experiment stream --stream-only --smoke
fi

# Full run: streamed coefficients vs the in-memory path (1e-8 gate, in
# practice bit-identical) and the final BENCH_stream.json artifact.
"$BENCH" --experiment stream --smoke

echo "stream-gate: OK"

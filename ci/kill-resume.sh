#!/bin/sh
# Kill a checkpointed fit mid-run (--kill-after exits 3), resume from the
# snapshot, and require the resumed final front to be byte-identical to the
# uninterrupted run's — at 1 and 4 domains and under the process backend at
# 3 shards, and across all three.  The last case also runs with the
# behavioral evaluation cache on: caches never enter snapshots, so a resumed
# cached run starts cold and must still reproduce the uninterrupted
# (cache-off) front exactly.
. "$(dirname "$0")/lib.sh"

build_cli

"$CLI" gen-data --out "$scratch/ckpt-data.csv"
for case in "domains:1:" "domains:4:" "processes:3:" \
            "domains:4:--eval-cache behavioral"; do
  backend=$(echo "$case" | cut -d: -f1)
  workers=$(echo "$case" | cut -d: -f2)
  cache=$(echo "$case" | cut -d: -f3)
  tag=$backend$workers${cache:+-cache}
  if [ "$backend" = processes ]; then
    extra="--backend processes --shard $workers $cache"
  else
    extra="--backend domains --jobs $workers $cache"
  fi
  "$CLI" fit --train "$scratch/ckpt-data.csv" --target PM --pop 30 --gens 24 --seed 17 $extra \
    --out "$scratch/front-full-$tag.txt"
  rc=0
  "$CLI" fit --train "$scratch/ckpt-data.csv" --target PM --pop 30 --gens 24 --seed 17 $extra \
    --checkpoint "$scratch/run-$tag.ckpt" --checkpoint-every 5 --kill-after 13 || rc=$?
  test "$rc" -eq 3
  "$CLI" fit --train "$scratch/ckpt-data.csv" --target PM --pop 30 --gens 24 --seed 17 $extra \
    --resume "$scratch/run-$tag.ckpt" --out "$scratch/front-resumed-$tag.txt"
  diff -u "$scratch/front-full-$tag.txt" "$scratch/front-resumed-$tag.txt"
done
diff -u "$scratch/front-full-domains1.txt" "$scratch/front-resumed-domains4.txt"
diff -u "$scratch/front-full-domains1.txt" "$scratch/front-resumed-processes3.txt"
diff -u "$scratch/front-full-domains1.txt" "$scratch/front-resumed-domains4-cache.txt"

# A truncated snapshot must be refused with a one-line file:line error, not
# a backtrace.
head -c 120 "$scratch/run-domains1.ckpt" > "$scratch/truncated.ckpt"
rc=0
"$CLI" fit --train "$scratch/ckpt-data.csv" --target PM --pop 30 --gens 24 --seed 17 \
  --resume "$scratch/truncated.ckpt" 2> "$scratch/resume-err.txt" || rc=$?
test "$rc" -eq 2
grep -q "truncated.ckpt:" "$scratch/resume-err.txt"
test "$(wc -l < "$scratch/resume-err.txt")" -eq 1

echo "kill-resume: OK"

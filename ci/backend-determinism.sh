#!/bin/sh
# Trace and front determinism across backends: the trace projection must not
# depend on the process-backend worker count.  Shard 1 is compared against
# shard 3 (rather than against the in-process trace) because migration
# records exist only under the process backend; the projection zeroes their
# worker assignment so the two shard counts diff clean.  The printed fronts
# must additionally match the sequential backend's exactly.
. "$(dirname "$0")/lib.sh"

build_cli

"$CLI" gen-data --out "$scratch/backend-data.csv"
"$CLI" fit --train "$scratch/backend-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
  --backend seq --out "$scratch/front-seq.txt"
for shard in 1 3; do
  "$CLI" fit --train "$scratch/backend-data.csv" --target PM --pop 30 --gens 10 --seed 17 \
    --backend processes --shard "$shard" \
    --out "$scratch/front-proc-$shard.txt" --trace "$scratch/trace-proc-$shard.jsonl"
  diff -u "$scratch/front-seq.txt" "$scratch/front-proc-$shard.txt"
  "$CLI" trace --counts "$scratch/trace-proc-$shard.jsonl" > "$scratch/counts-proc-$shard.txt"
done
diff -u "$scratch/counts-proc-1.txt" "$scratch/counts-proc-3.txt"

echo "backend-determinism: OK"

(* caffeine — command-line front end.

   Subcommands:
     gen-data   sample the OTA testbench with the paper's DOE plan -> CSV
     simulate   evaluate the OTA performances at one design point
     fit        evolve symbolic models for one column of a CSV dataset
     predict    evaluate saved models against a CSV dataset
     grammar    print / validate canonical-form grammar files
     analyze    DC / AC analysis of a SPICE-format netlist
     export     render a saved model as C or Verilog-A
     insight    variable usage, sensitivities and Sobol indices of a model
     trace      summarize / project a JSONL run trace written by fit --trace
     serve      long-running model server over a line-oriented JSON protocol
*)

open Cmdliner

module Ota = Caffeine_ota.Ota
module Csv = Caffeine_io.Csv
module Colstore = Caffeine_io.Colstore
module Dataset = Caffeine_io.Dataset
module Grammar = Caffeine_grammar.Grammar
module Config = Caffeine.Config
module Model = Caffeine.Model
module Search = Caffeine.Search
module Sag = Caffeine.Sag
module Opset = Caffeine.Opset
module Checkpoint = Caffeine.Checkpoint
module Eval_cache = Caffeine.Eval_cache
module Pool = Caffeine_par.Pool
module Executor = Caffeine_par.Executor
module Metrics = Caffeine_obs.Metrics
module Trace = Caffeine_obs.Trace

(* --- gen-data ---------------------------------------------------------- *)

let gen_data dx out =
  let dataset = Ota.doe_dataset ~dx in
  let performance_names =
    Array.of_list (List.map Ota.performance_name Ota.all_performances)
  in
  let header = Array.append Ota.var_names performance_names in
  let rows =
    Array.map2 (fun inputs outputs -> Array.append inputs outputs) dataset.Ota.inputs
      dataset.Ota.outputs
  in
  Csv.write ~path:out { Csv.header; rows };
  Printf.printf "wrote %d samples (dx=%.3g) to %s\n" (Array.length rows) dx out;
  0

let dx_arg =
  let doc = "Relative perturbation per design variable (paper: 0.10 train, 0.03 test)." in
  Arg.(value & opt float 0.10 & info [ "dx" ] ~docv:"DX" ~doc)

let out_arg default =
  let doc = "Output file path." in
  Arg.(value & opt string default & info [ "out"; "o" ] ~docv:"PATH" ~doc)

let gen_data_cmd =
  let info =
    Cmd.info "gen-data"
      ~doc:"Sample the simulated OTA with the paper's orthogonal-hypercube DOE plan."
  in
  Cmd.v info Term.(const gen_data $ dx_arg $ out_arg "ota_data.csv")

(* --- simulate ---------------------------------------------------------- *)

let parse_override spec =
  match String.index_opt spec '=' with
  | None -> Error (`Msg (Printf.sprintf "expected name=value, got %S" spec))
  | Some i -> (
      let name = String.sub spec 0 i in
      let value = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt value with
      | None -> Error (`Msg (Printf.sprintf "bad number %S" value))
      | Some v -> Ok (name, v))

let override_conv = Arg.conv (parse_override, fun ppf (n, v) -> Format.fprintf ppf "%s=%g" n v)

let simulate overrides =
  let x = Array.copy Ota.nominal in
  let apply (name, value) =
    let rec find i =
      if i >= Array.length Ota.var_names then begin
        Printf.eprintf "unknown design variable %s (known: %s)\n" name
          (String.concat ", " (Array.to_list Ota.var_names));
        exit 2
      end
      else if Ota.var_names.(i) = name then x.(i) <- value
      else find (i + 1)
    in
    find 0
  in
  List.iter apply overrides;
  Printf.printf "design point:\n";
  Array.iteri (fun i name -> Printf.printf "  %-6s = %.6g\n" name x.(i)) Ota.var_names;
  match Ota.evaluate x with
  | Error msg ->
      Printf.printf "simulation failed: %s\n" msg;
      1
  | Ok values ->
      Printf.printf "performances:\n";
      List.iteri
        (fun i p -> Printf.printf "  %-8s = %.6g\n" (Ota.performance_name p) values.(i))
        Ota.all_performances;
      0

let overrides_arg =
  let doc = "Override a design variable, e.g. --set id1=1.2e-5 (repeatable)." in
  Arg.(value & opt_all override_conv [] & info [ "set" ] ~docv:"NAME=VALUE" ~doc)

let simulate_cmd =
  let info = Cmd.info "simulate" ~doc:"Evaluate the OTA performances at one design point." in
  Cmd.v info Term.(const simulate $ overrides_arg)

(* --- fit --------------------------------------------------------------- *)

let load_table path =
  match Csv.read ~path with
  | Ok table -> table
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 2

let split_target table target =
  match Csv.column table target with
  | exception Not_found ->
      Printf.eprintf "no column named %s (available: %s)\n" target
        (String.concat ", " (Array.to_list table.Csv.header));
      exit 2
  | targets ->
      (* Design variables: every column that is not one of the known
         performance names; this lets gen-data output be used directly.
         Loaded straight into a column-major dataset for the compiled
         batch-evaluation engine. *)
      let performance_names = List.map Ota.performance_name Ota.all_performances in
      let data = Dataset.of_table ~exclude:(target :: performance_names) table in
      (data, targets)

(* CSV -> column store, one row at a time: the whole point is never holding
   the table in memory, so the writer is created from the header callback
   and rows append as they parse. *)
let pack_csv ~csv_path ~out ~chunk_rows =
  let writer = ref None in
  let result =
    Csv.stream ~path:csv_path
      ~header:(fun names ->
        writer := Some (Colstore.Writer.create ~path:out ~var_names:names ~chunk_rows ());
        Ok ())
      ~row:(fun ~lineno:_ values ->
        Colstore.Writer.append_row (Option.get !writer) values;
        Ok ())
  in
  (match !writer with Some w -> Colstore.Writer.close w | None -> ());
  match result with
  | Ok () -> Ok ()
  | Error msg ->
      (try Sys.remove out with Sys_error _ -> ());
      Error msg

(* Streaming dataset source for fit --data-stream: a .cafs column store is
   opened in place; a CSV is packed into a temporary store first (deleted
   at exit).  The target column is the only one materialized. *)
let load_streaming ~path ~target ~chunk_rows =
  let store_path, temporary =
    if Filename.check_suffix path ".cafs" then (path, false)
    else begin
      let tmp = Filename.temp_file "caffeine_stream" ".cafs" in
      (match pack_csv ~csv_path:path ~out:tmp ~chunk_rows with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "cannot read %s: %s\n" path msg;
          exit 2);
      (tmp, true)
    end
  in
  let store = Colstore.openfile store_path in
  if temporary then
    at_exit (fun () -> try Sys.remove store_path with Sys_error _ -> ());
  let names = Colstore.var_names store in
  let target_index =
    let found = ref (-1) in
    Array.iteri (fun i name -> if !found < 0 && name = target then found := i) names;
    if !found < 0 then begin
      Printf.eprintf "no column named %s (available: %s)\n" target
        (String.concat ", " (Array.to_list names));
      exit 2
    end;
    !found
  in
  let targets = Colstore.column store target_index in
  let performance_names = List.map Ota.performance_name Ota.all_performances in
  let data = Dataset.of_colstore ~exclude:(target :: performance_names) store in
  (data, targets)

let fit train_path test_path target pop gens seed jobs backend shards log_target grammar_path max_bases no_sag verbose trace_path metrics checkpoint_opt checkpoint_every resume_path kill_after eval_cache eval_cache_limit no_fuse data_stream chunk_rows out =
  let fuse = not no_fuse in
  let data, raw_targets =
    (* A .cafs store has no dense representation to load — packed input
       always takes the streaming path, flag or no flag. *)
    if data_stream || Filename.check_suffix train_path ".cafs" then
      load_streaming ~path:train_path ~target ~chunk_rows
    else begin
      let train = load_table train_path in
      split_target train target
    end
  in
  let var_names = Dataset.var_names data in
  let transform v = if log_target then log10 v else v in
  let targets = Array.map transform raw_targets in
  let opset =
    match grammar_path with
    | None -> Opset.default
    | Some path -> (
        let channel = open_in path in
        let text = really_input_string channel (in_channel_length channel) in
        close_in channel;
        match Grammar.parse text with
        | Ok g -> Opset.of_grammar g
        | Error msg ->
            Printf.eprintf "cannot parse grammar %s: %s\n" path msg;
            exit 2)
  in
  (* Resolve the parallelism up front (0 = auto) so the banner reports
     what the run actually uses: worker domains for --backend domains
     (clamped to the core count), worker processes for --backend
     processes (not clamped — processes do not share the GC). *)
  let jobs = Pool.effective_jobs jobs in
  let shards = if shards >= 1 then shards else Pool.effective_jobs 0 in
  let config =
    {
      (Config.scaled ~pop_size:pop ~generations:gens ~jobs Config.paper) with
      Config.opset;
      max_bases;
    }
  in
  Printf.printf "fitting %s from %d samples x %d variables (pop %d, gens %d, seed %d, backend %s)\n%!"
    target (Array.length targets) (Array.length var_names) pop gens seed
    (match backend with
    | Executor.Seq -> "seq"
    | Executor.Domains -> Printf.sprintf "domains, jobs %d" jobs
    | Executor.Processes -> Printf.sprintf "processes, shards %d" shards);
  let trace_channel = Option.map open_out trace_path in
  let trace = match trace_channel with Some ch -> Trace.of_channel ch | None -> Trace.null in
  (* An invalid CAFFEINE_JOBS already warned on stderr inside
     [effective_jobs]; surface it in the trace too, where CI diffs see it. *)
  (match Pool.take_env_warning () with
  | Some message ->
      if not (Trace.is_null trace) then
        Trace.emit trace (Trace.Warning { context = "pool.effective_jobs"; message })
  | None -> ());
  (* Checkpointing: --resume keeps writing to the same snapshot file unless
     --checkpoint names a different one. *)
  let resume_snapshot =
    match resume_path with
    | None -> None
    | Some path -> (
        match Checkpoint.load ~path with
        | Ok snapshot -> Some snapshot
        | Error msg ->
            Printf.eprintf "cannot resume from %s: %s\n" path msg;
            exit 2)
  in
  let checkpoint_path =
    match checkpoint_opt with Some _ as given -> given | None -> resume_path
  in
  let fingerprint =
    if Option.is_some checkpoint_path || Option.is_some resume_snapshot then
      Some (Checkpoint.fingerprint config ~data ~targets)
    else None
  in
  (match (resume_snapshot, fingerprint) with
  | Some snapshot, Some fp -> (
      match Checkpoint.validate snapshot ~fingerprint:fp ~seed ~restarts:1 with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "cannot resume from %s: %s\n" (Option.get resume_path) msg;
          exit 2)
  | _ -> ());
  let save_sag_snapshot ~front ~processed ~gen =
    match (checkpoint_path, fingerprint) with
    | Some path, Some fp ->
        Checkpoint.save ~path
          {
            Checkpoint.fingerprint = fp;
            seed;
            restarts = 1;
            phase = Checkpoint.Simplifying { front; processed };
          };
        if not (Trace.is_null trace) then
          Trace.emit trace
            (Trace.Checkpoint_written { path; phase = "simplifying"; island = -1; gen })
    | _ -> ()
  in
  (* --kill-after: die right after generation N's record, before the next
     snapshot — the harness then resumes from the last multiple of
     --checkpoint-every and must reproduce the uninterrupted front. *)
  let on_generation =
    Option.map
      (fun limit (record : Trace.generation) ->
        if record.Trace.gen >= limit then begin
          Printf.eprintf "killed after generation %d (--kill-after)\n" record.Trace.gen;
          exit 3
        end)
      kill_after
  in
  (* One executor serves both the evolutionary run and SAG forward
     selection; under --backend domains with jobs = 1 no pool (and no
     extra domain) is created at all. *)
  let front =
    Executor.with_executor ~jobs ~shards backend @@ fun executor ->
    let run_sag ?(already = []) front =
      if no_sag then front
      else begin
        if already = [] then save_sag_snapshot ~front ~processed:[] ~gen:(-1);
        let processed = ref (List.rev already) in
        let on_model index model =
          processed := model :: !processed;
          save_sag_snapshot ~front ~processed:(List.rev !processed) ~gen:index
        in
        Sag.process_front ~executor ~trace ~already ~on_model ~fuse ~wb:config.Config.wb
          ~wvc:config.Config.wvc front ~data ~targets
      end
    in
    match resume_snapshot with
    | Some { Checkpoint.phase = Checkpoint.Simplifying { front; processed }; _ } ->
        (* Evolution already finished when this snapshot was written: go
           straight back into SAG, skipping the simplified prefix. *)
        Metrics.incr (Metrics.counter Metrics.default "checkpoint.resumed");
        if not (Trace.is_null trace) then
          Trace.emit trace
            (Trace.Run_resumed
               { phase = "simplifying"; island = -1; gen = List.length processed });
        run_sag ~already:processed front
    | Some _ | None ->
        let outcome =
          Search.run ~seed ~executor ~trace ?on_generation ?checkpoint_path ~checkpoint_every
            ?resume:resume_snapshot ~eval_cache ~eval_cache_limit ~fuse config ~data ~targets
        in
        run_sag outcome.Search.front
  in
  (match trace_channel with
  | None -> ()
  | Some channel ->
      (* Cache effectiveness, last: informative but nondeterministic across
         jobs settings, so [trace --counts] projects it away. *)
      let s = Dataset.stats data in
      Trace.emit trace
        (Trace.Cache_stats
           {
             columns_cached = s.Dataset.columns_cached;
             column_hits = s.Dataset.column_hits;
             column_misses = s.Dataset.column_misses;
             column_evictions = s.Dataset.column_evictions;
             dots_cached = s.Dataset.dots_cached;
             dot_hits = s.Dataset.dot_hits;
             dot_misses = s.Dataset.dot_misses;
             dot_evictions = s.Dataset.dot_evictions;
           });
      (if eval_cache <> Eval_cache.Off then
         let g = Eval_cache.global_stats () in
         Trace.emit trace
           (Trace.Eval_cache_stats
              {
                eval_hits = g.Eval_cache.total_hits;
                eval_misses = g.Eval_cache.total_misses;
                eval_evictions = g.Eval_cache.total_evictions;
              }));
      close_out channel;
      Printf.printf "wrote run trace to %s\n" (Option.get trace_path));
  let test_data =
    match test_path with
    | None -> None
    | Some path ->
        let test = load_table path in
        let test_set, test_raw = split_target test target in
        Some (test_set, Array.map transform test_raw)
  in
  (* One fused pass over the whole front fills the testing dataset's column
     cache before the per-model error loop below reads it. *)
  (match test_data with
  | Some (test_set, _) when fuse -> Model.warm_front front test_set
  | _ -> ());
  Printf.printf "\n%-10s %-10s %-9s expression\n" "train err" "test err" "complexity";
  List.iter
    (fun (m : Model.t) ->
      let test_err =
        match test_data with
        | None -> "-"
        | Some (test_set, test_targets) ->
            Printf.sprintf "%8.2f%%" (100. *. Model.error_on m ~data:test_set ~targets:test_targets)
      in
      Printf.printf "%9.2f%% %10s %9.1f %s\n"
        (100. *. m.Model.train_error)
        test_err m.Model.complexity
        (Model.to_string ~var_names m))
    front;
  if verbose then begin
    let s = Dataset.stats data in
    Printf.printf "\ndataset cache statistics (training data):\n";
    Printf.printf "  basis columns: %d cached, %d hits, %d misses, %d evictions\n"
      s.Dataset.columns_cached s.Dataset.column_hits s.Dataset.column_misses
      s.Dataset.column_evictions;
    Printf.printf "  dot products:  %d cached, %d hits, %d misses, %d evictions\n"
      s.Dataset.dots_cached s.Dataset.dot_hits s.Dataset.dot_misses s.Dataset.dot_evictions;
    if eval_cache <> Eval_cache.Off then begin
      (* Coordinator-side counters only: under --backend processes the
         worker caches live and die in the forked workers. *)
      let g = Eval_cache.global_stats () in
      let lookups = g.Eval_cache.total_hits + g.Eval_cache.total_misses in
      let hit_rate =
        if lookups = 0 then 0. else 100. *. float_of_int g.Eval_cache.total_hits /. float_of_int lookups
      in
      Printf.printf "  eval cache (%s): %d hits, %d misses (%.1f%% hit rate), %d evictions\n"
        (Eval_cache.mode_to_string eval_cache)
        g.Eval_cache.total_hits g.Eval_cache.total_misses hit_rate g.Eval_cache.total_evictions
    end;
    (let nodes_in =
       Metrics.counter_value (Metrics.counter Metrics.default "fused.nodes_in")
     and nodes_out =
       Metrics.counter_value (Metrics.counter Metrics.default "fused.nodes_out")
     in
     if nodes_out > 0 then
       Printf.printf "  fused eval: %d DAG nodes before sharing, %d after (CSE ratio %.2fx)\n"
         nodes_in nodes_out
         (float_of_int nodes_in /. float_of_int nodes_out))
  end;
  if metrics then begin
    Dataset.publish_metrics data;
    Printf.printf "\nmetrics (process-wide registry):\n";
    print_string (Metrics.render (Metrics.snapshot Metrics.default))
  end;
  (match out with
  | None -> ()
  | Some path ->
      Caffeine.Model_io.save ~path ~var_names front;
      Printf.printf "\nsaved %d models to %s\n" (List.length front) path);
  0

let train_arg =
  let doc = "Training CSV (header row; inputs + target columns)." in
  Arg.(required & opt (some string) None & info [ "train" ] ~docv:"CSV" ~doc)

let test_arg =
  let doc = "Optional testing CSV with the same columns." in
  Arg.(value & opt (some string) None & info [ "test" ] ~docv:"CSV" ~doc)

let target_arg =
  let doc = "Name of the target column to model." in
  Arg.(required & opt (some string) None & info [ "target" ] ~docv:"NAME" ~doc)

let pop_arg = Arg.(value & opt int 120 & info [ "pop" ] ~docv:"N" ~doc:"Population size.")
let gens_arg = Arg.(value & opt int 150 & info [ "gens" ] ~docv:"N" ~doc:"Generations.")
let seed_arg = Arg.(value & opt int 17 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  let doc =
    "Worker domains for parallel evaluation under $(b,--backend domains) (0 = auto: \
     \\$(b,CAFFEINE_JOBS) or all recommended cores; always clamped to the core count).  \
     Results are identical for any value."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let backend_arg =
  let parse s =
    match Executor.backend_of_string s with Ok b -> Ok b | Error msg -> Error (`Msg msg)
  in
  let print ppf b = Format.pp_print_string ppf (Executor.backend_name b) in
  let doc =
    "Execution backend: $(b,seq) runs everything on the calling domain; $(b,domains) fans \
     objective evaluation across worker domains sharing the heap (see $(b,--jobs)); \
     $(b,processes) forks worker processes and runs whole islands in them (see \
     $(b,--shard)), immune to the cross-domain GC coupling that makes domains lose on \
     small populations.  The final front is bit-identical under every backend."
  in
  Arg.(value & opt (conv (parse, print)) Executor.Domains & info [ "backend" ] ~docv:"BACKEND" ~doc)

let shard_arg =
  let doc =
    "Worker processes for $(b,--backend processes) (0 = auto: one per core).  Never more \
     workers than islands; unlike $(b,--jobs) the value is not clamped to the core count.  \
     Results are identical for any value."
  in
  Arg.(value & opt int 0 & info [ "shard" ] ~docv:"N" ~doc)

let log_target_arg =
  Arg.(value & flag & info [ "log-target" ] ~doc:"Model log10 of the target (the paper's fu scaling).")

let grammar_arg =
  Arg.(value & opt (some string) None & info [ "grammar" ] ~docv:"FILE" ~doc:"Grammar file restricting the operator set.")

let max_bases_arg =
  Arg.(value & opt int 15 & info [ "max-bases" ] ~docv:"N" ~doc:"Maximum basis functions (paper: 15).")

let no_sag_arg =
  Arg.(value & flag & info [ "no-sag" ] ~doc:"Skip PRESS-guided simplification after generation.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:
          "Print dataset cache statistics (basis-column and dot-product \
           hits/misses/evictions), the fused-evaluation CSE ratio (DAG nodes before and \
           after cross-tree sharing) and, with --eval-cache, the evaluation-cache counters \
           and hit rate.")

let no_fuse_arg =
  Arg.(
    value & flag
    & info [ "no-fuse" ]
        ~doc:
          "Disable fused multi-expression evaluation: each basis is compiled and evaluated \
           on its own tape instead of batching a generation's (or the front's) distinct \
           bases into one shared DAG.  Results are bit-identical either way; the flag \
           exists for benchmarking and bisection.")

let fit_out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Save the model front to a models file.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"JSONL"
        ~doc:
          "Write a structured run trace (one JSON record per line: run parameters, \
           per-generation statistics and operator tallies, SAG pruning rounds, cache \
           statistics).  Count fields are deterministic for a fixed seed at any --jobs; \
           inspect with the trace subcommand.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the process-wide metrics registry after the run (pool utilization, regression \
           engine counters, dataset cache gauges).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a resumable snapshot of the full run state to FILE every --checkpoint-every \
           generations, after the evolution finishes, and after each model is simplified (write \
           to a temporary file, then atomic rename).  Resume with --resume; the resumed run's \
           final front is identical to the uninterrupted run's, at any --jobs.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 10
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Generations between snapshot writes (default 10).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume an interrupted run from a snapshot written by --checkpoint.  The snapshot must \
           match this run's configuration, data, target and --seed (checked by fingerprint).  \
           Snapshot writes continue to the same file unless --checkpoint names another.")

let kill_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-after" ] ~docv:"N"
        ~doc:
          "Exit with status 3 right after generation N — a testing aid that simulates a mid-run \
           kill for checkpoint/resume verification.")

let eval_cache_arg =
  let parse s =
    match Eval_cache.mode_of_string s with Ok m -> Ok m | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Eval_cache.mode_to_string m) in
  let doc =
    "Evaluation cache in front of objective evaluation: $(b,off) (default) fits every \
     candidate; $(b,exact) memoizes objectives by the individual's structural hash — \
     bit-identical to recomputation, so the final front is unchanged at every backend; \
     $(b,behavioral) additionally reuses the fitted training error across structurally \
     different candidates whose compiled outputs match exactly on a fixed probe subsample, \
     and reports per-generation behavioral diversity in the trace.  Each island keeps a \
     private cache; caches never enter checkpoint snapshots."
  in
  Arg.(
    value
    & opt (conv (parse, print)) Eval_cache.Off
    & info [ "eval-cache" ] ~docv:"MODE" ~doc)

let eval_cache_limit_arg =
  Arg.(
    value
    & opt int Eval_cache.default_limit
    & info [ "eval-cache-limit" ] ~docv:"N"
        ~doc:
          "Maximum entries per cache level before shard-wise eviction (default 65536).  \
           Evictions only cost recomputation; they never change results.")

let data_stream_arg =
  Arg.(
    value & flag
    & info [ "data-stream" ]
        ~doc:
          "Stream the training data from disk instead of loading it in memory: a \
           $(b,.cafs) column store (see the $(b,pack) subcommand) is read chunk by chunk; \
           a CSV is packed into a temporary store first.  Fits accumulate their Gram \
           products in one pass per individual (memoized across the population), so peak \
           memory is bounded by one chunk plus the target column — million-sample datasets \
           fit in tens of megabytes.  The final front is byte-identical to the in-memory \
           path at every backend.")

let chunk_rows_arg =
  Arg.(
    value & opt int 65536
    & info [ "chunk-rows" ] ~docv:"N"
        ~doc:
          "Rows per chunk when packing a CSV for --data-stream (default 65536).  Purely a \
           memory/throughput trade-off: results are bit-identical for every value.")

let fit_cmd =
  let info = Cmd.info "fit" ~doc:"Evolve template-free symbolic models for a CSV column." in
  Cmd.v info
    Term.(
      const fit $ train_arg $ test_arg $ target_arg $ pop_arg $ gens_arg $ seed_arg $ jobs_arg
      $ backend_arg $ shard_arg $ log_target_arg $ grammar_arg $ max_bases_arg $ no_sag_arg $ verbose_arg $ trace_out_arg
      $ metrics_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ kill_after_arg
      $ eval_cache_arg $ eval_cache_limit_arg $ no_fuse_arg $ data_stream_arg $ chunk_rows_arg
      $ fit_out_arg)

(* --- pack --------------------------------------------------------------- *)

let pack csv_path chunk_rows out =
  match pack_csv ~csv_path ~out ~chunk_rows with
  | Error msg ->
      Printf.eprintf "cannot pack %s: %s\n" csv_path msg;
      2
  | Ok () ->
      let store = Colstore.openfile out in
      Printf.printf "packed %d rows x %d columns into %s (%d rows per chunk)\n"
        (Colstore.n_rows store)
        (Array.length (Colstore.var_names store))
        out (Colstore.chunk_rows store);
      Colstore.close store;
      0

let pack_csv_arg =
  let doc = "Input CSV (header row; numeric cells)." in
  Arg.(required & opt (some string) None & info [ "csv" ] ~docv:"CSV" ~doc)

let pack_cmd =
  let info =
    Cmd.info "pack"
      ~doc:
        "Convert a CSV dataset into a chunked binary column store (.cafs) for fit \
         --data-stream.  The CSV is parsed one line at a time, so files far larger than \
         memory pack fine."
  in
  Cmd.v info Term.(const pack $ pack_csv_arg $ chunk_rows_arg $ out_arg "data.cafs")

(* --- predict ------------------------------------------------------------ *)

let predict models_path data_path target log_target dump =
  match Caffeine.Model_io.load ~path:models_path ~wb:10. ~wvc:0.25 with
  | Error msg ->
      Printf.eprintf "cannot load models: %s\n" msg;
      2
  | Ok (var_names, models) ->
      let table = load_table data_path in
      let data, raw_targets = split_target table target in
      (* The models index design variables positionally: the data columns
         must be the variables the models were fitted on, in order. *)
      if Dataset.var_names data <> var_names then begin
        Printf.eprintf "data columns (%s) do not match the model variables (%s)\n"
          (String.concat ", " (Array.to_list (Dataset.var_names data)))
          (String.concat ", " (Array.to_list var_names));
        exit 2
      end;
      let transform v = if log_target then log10 v else v in
      let targets = Array.map transform raw_targets in
      (* Fill the fresh dataset's column cache with one fused pass over
         every model before the per-model scoring loop. *)
      Model.warm_front models data;
      Printf.printf "%-10s %-9s expression\n" "error" "#bases";
      List.iter
        (fun (m : Model.t) ->
          let err = Model.error_on m ~data ~targets in
          Printf.printf "%9.2f%% %9d %s\n" (100. *. err) (Model.num_bases m)
            (Model.to_string ~var_names m))
        models;
      (match dump with
      | None -> ()
      | Some path ->
          (* Per-model predictions through direct [Model.predict], encoded
             exactly as the serve protocol encodes its "outputs" field —
             one [[...],...] line, models x rows — so the serving layer's
             bit-identity contract is a plain [diff] away. *)
          let b = Buffer.create 4096 in
          Buffer.add_char b '[';
          List.iteri
            (fun k m ->
              if k > 0 then Buffer.add_char b ',';
              Buffer.add_char b '[';
              Array.iteri
                (fun i y ->
                  if i > 0 then Buffer.add_char b ',';
                  Caffeine_obs.Json.add_float b y)
                (Model.predict m data);
              Buffer.add_char b ']')
            models;
          Buffer.add_string b "]\n";
          let channel = open_out path in
          Buffer.output_buffer channel b;
          close_out channel;
          Printf.printf "dumped predictions for %d models to %s\n" (List.length models) path);
      0

let models_arg =
  Arg.(required & opt (some string) None & info [ "models" ] ~docv:"FILE" ~doc:"Models file written by fit --out.")

let data_arg =
  Arg.(required & opt (some string) None & info [ "data" ] ~docv:"CSV" ~doc:"Dataset to evaluate on.")

let dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~docv:"FILE"
        ~doc:
          "Also write the raw per-model predictions as one JSON array line (models x rows, \
           the byte encoding the serve protocol uses for its \"outputs\" field).")

let predict_cmd =
  let info = Cmd.info "predict" ~doc:"Evaluate saved models against a CSV dataset." in
  Cmd.v info Term.(const predict $ models_arg $ data_arg $ target_arg $ log_target_arg $ dump_arg)

(* --- serve --------------------------------------------------------------- *)

let serve front_path socket_path _stdio reload wb wvc =
  match Caffeine_serve.Registry.create ~path:front_path ~wb ~wvc () with
  | Error msg ->
      Printf.eprintf "cannot serve: %s\n" msg;
      2
  | Ok registry ->
      let config = Caffeine_serve.Server.config ~reload registry in
      Caffeine_serve.Server.install_sigterm config;
      (* A client hanging up mid-response must not kill the server. *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let front = Caffeine_serve.Registry.current registry in
      Printf.eprintf "serving %d models over %d variables from %s%s\n%!"
        (Array.length front.Caffeine_serve.Registry.models)
        (Array.length front.Caffeine_serve.Registry.var_names)
        front_path
        (if reload then " (hot-reload on)" else "");
      (match socket_path with
      | Some path ->
          Printf.eprintf "listening on %s\n%!" path;
          Caffeine_serve.Server.serve_socket config ~path
      | None -> Caffeine_serve.Server.serve_fds config ~input:Unix.stdin ~output:Unix.stdout);
      0

let front_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "front" ] ~docv:"FILE" ~doc:"Pareto-front models file written by fit --out.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at PATH instead of stdin/stdout.")

let stdio_arg =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve on stdin/stdout (the default; protocol responses go to stdout, the \
              startup banner to stderr).")

let reload_flag_arg =
  Arg.(
    value & flag
    & info [ "reload" ]
        ~doc:
          "Poll the front file before each request and atomically swap in a freshly compiled \
           front when its mtime or size changed; in-flight batches finish on the front they \
           started with, and a malformed rewrite keeps the previous front serving.")

let wb_arg =
  Arg.(value & opt float 10. & info [ "wb" ] ~docv:"W" ~doc:"Complexity weight per basis (eq. 1).")

let wvc_arg =
  Arg.(
    value & opt float 0.25
    & info [ "wvc" ] ~docv:"W" ~doc:"Complexity weight per variable-combo exponent (eq. 1).")

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:
        "Serve a saved Pareto front over a line-oriented JSON protocol (one request object \
         per line: predict / front / explain / stats), compiled to one fused tape so served \
         predictions are bit-identical to direct model evaluation.  SIGTERM drains \
         gracefully: the in-flight request completes before exit."
  in
  Cmd.v info
    Term.(const serve $ front_arg $ socket_arg $ stdio_arg $ reload_flag_arg $ wb_arg $ wvc_arg)

(* --- export -------------------------------------------------------------- *)

let export models_path language index out =
  match Caffeine.Model_io.load ~path:models_path ~wb:10. ~wvc:0.25 with
  | Error msg ->
      Printf.eprintf "cannot load models: %s\n" msg;
      2
  | Ok (var_names, models) -> (
      let render_single model =
        match language with
        | `C -> Some (Caffeine.Export.to_c ~name:"caffeine_model" ~var_names model)
        | `Verilog_a -> Some (Caffeine.Export.to_verilog_a ~name:"caffeine_model" ~var_names model)
        | `C_front -> None
      in
      let source =
        match language with
        | `C_front ->
            (* Whole front in one function: shared subexpressions are
               hash-consed into single locals; --index is ignored. *)
            Some (Caffeine.Export.to_c_front ~name:"caffeine_front" ~var_names models)
        | `C | `Verilog_a -> (
            match List.nth_opt models index with
            | None ->
                Printf.eprintf "model index %d out of range (file has %d models)\n" index
                  (List.length models);
                None
            | Some model -> render_single model)
      in
      match source with
      | None -> 2
      | Some source ->
          (match out with
          | None -> print_string source
          | Some path ->
              let channel = open_out path in
              output_string channel source;
              close_out channel;
              Printf.printf "wrote %s\n" path);
          0)

let language_arg =
  let parse = function
    | "c" -> Ok `C
    | "verilog-a" | "va" -> Ok `Verilog_a
    | "c-front" -> Ok `C_front
    | other -> Error (`Msg (Printf.sprintf "unknown language %S (use c, verilog-a or c-front)" other))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with `C -> "c" | `Verilog_a -> "verilog-a" | `C_front -> "c-front")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `C
    & info [ "language" ] ~docv:"LANG"
        ~doc:
          "c or verilog-a (one model, see --index), or c-front (the whole front as one C \
           function with hash-consed shared subexpressions, one output per model).")

let index_arg =
  Arg.(value & opt int 0 & info [ "index" ] ~docv:"N" ~doc:"Which model in the file (0-based; models are complexity-sorted).")

let export_out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write to a file instead of stdout.")

let export_cmd =
  let info = Cmd.info "export" ~doc:"Render a saved model as C or Verilog-A source." in
  Cmd.v info Term.(const export $ models_arg $ language_arg $ index_arg $ export_out_arg)

(* --- insight ------------------------------------------------------------- *)

let insight models_path index =
  match Caffeine.Model_io.load ~path:models_path ~wb:10. ~wvc:0.25 with
  | Error msg ->
      Printf.eprintf "cannot load models: %s\n" msg;
      2
  | Ok (var_names, models) -> (
      match List.nth_opt models index with
      | None ->
          Printf.eprintf "model index %d out of range (file has %d models)\n" index
            (List.length models);
          2
      | Some model ->
          (* When the variables are the OTA's, analyze at its nominal point
             and over its sampled box; otherwise use all-ones. *)
          let at, lo, hi =
            if var_names = Ota.var_names then
              ( Ota.nominal,
                Array.map (fun v -> v *. 0.9) Ota.nominal,
                Array.map (fun v -> v *. 1.1) Ota.nominal )
            else begin
              let dims = Array.length var_names in
              (Array.make dims 1., Array.make dims 0.9, Array.make dims 1.1)
            end
          in
          print_string (Caffeine.Insight.report ~var_names ~at model);
          let rng = Caffeine_util.Rng.create ~seed:1 () in
          let indices = Caffeine.Insight.sobol_first_order rng model ~lo ~hi in
          let ranked =
            List.sort
              (fun (_, a) (_, b) -> compare b a)
              (Array.to_list (Array.mapi (fun i s -> (i, s)) indices))
          in
          Printf.printf "first-order Sobol indices over +-10%% of the analysis point:\n";
          List.iter
            (fun (i, s) ->
              if s > 0.005 then Printf.printf "  %-8s %.3f\n" var_names.(i) s)
            ranked;
          0)

let insight_cmd =
  let info =
    Cmd.info "insight"
      ~doc:"Variable usage, local sensitivities and Sobol indices of a saved model."
  in
  Cmd.v info Term.(const insight $ models_arg $ index_arg)


(* --- analyze ------------------------------------------------------------ *)

let analyze netlist_path want_op ac_input ac_output =
  match Caffeine_spice.Netlist.parse_file netlist_path with
  | Error msg ->
      Printf.eprintf "cannot parse %s: %s\n" netlist_path msg;
      2
  | Ok deck -> (
      (match deck.Caffeine_spice.Netlist.title with
      | Some title -> Printf.printf "* %s\n" title
      | None -> ());
      match Caffeine_spice.Dc.solve deck.Caffeine_spice.Netlist.circuit with
      | Error msg ->
          Printf.printf "DC solve failed: %s\n" msg;
          1
      | Ok dc ->
          Printf.printf "DC operating point (%d Newton iterations):\n" dc.Caffeine_spice.Dc.iterations;
          List.iter
            (fun (name, index) -> Printf.printf "  v(%s) = %.6g V\n" name
                (Caffeine_spice.Dc.node_voltage dc index))
            deck.Caffeine_spice.Netlist.node_names;
          List.iter
            (fun (name, current) -> Printf.printf "  i(%s) = %.6g A\n" name current)
            dc.Caffeine_spice.Dc.branch_currents;
          if want_op then begin
            Printf.printf "device operating points:\n";
            List.iter
              (fun (bias : Caffeine_spice.Dc.mos_bias) ->
                Printf.printf "  %-8s ids=%.4g A gm=%.4g S gds=%.4g S (%s)\n" bias.Caffeine_spice.Dc.name
                  bias.Caffeine_spice.Dc.op.Caffeine_spice.Mos.ids
                  bias.Caffeine_spice.Dc.op.Caffeine_spice.Mos.gm
                  bias.Caffeine_spice.Dc.op.Caffeine_spice.Mos.gds
                  (match bias.Caffeine_spice.Dc.op.Caffeine_spice.Mos.region with
                  | `Cutoff -> "cutoff"
                  | `Triode -> "triode"
                  | `Saturation -> "saturation"))
              dc.Caffeine_spice.Dc.mos_biases
          end;
          (match (ac_input, ac_output) with
          | Some input, Some output_name -> (
              match Caffeine_spice.Netlist.node deck output_name with
              | exception Not_found ->
                  Printf.printf "unknown output node %s\n" output_name
              | output ->
                  let freqs =
                    Caffeine_spice.Ac.log_frequencies ~start_hz:1. ~stop_hz:1e10
                      ~points_per_decade:10
                  in
                  let sweep =
                    Caffeine_spice.Ac.transfer ~circuit:deck.Caffeine_spice.Netlist.circuit ~dc
                      ~input ~output ~freqs
                  in
                  Printf.printf "AC (%s -> %s):\n" input output_name;
                  Printf.printf "  low-frequency gain %.2f dB\n"
                    (Caffeine_spice.Ac.low_frequency_gain_db sweep);
                  (match Caffeine_spice.Ac.unity_gain_frequency sweep with
                  | Some fu -> Printf.printf "  unity-gain frequency %.4g Hz\n" fu
                  | None -> Printf.printf "  no unity-gain crossing in sweep\n");
                  match Caffeine_spice.Ac.phase_margin_deg sweep with
                  | Some pm -> Printf.printf "  phase margin %.1f deg\n" pm
                  | None -> ())
          | Some _, None | None, Some _ ->
              Printf.printf "(need both --ac-input and --ac-output for an AC sweep)\n"
          | None, None -> ());
          0)

let netlist_arg =
  Arg.(required & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc:"SPICE-format deck.")

let op_arg = Arg.(value & flag & info [ "op" ] ~doc:"Print per-device operating points.")

let ac_input_arg =
  Arg.(value & opt (some string) None & info [ "ac-input" ] ~docv:"VSRC" ~doc:"AC input source name.")

let ac_output_arg =
  Arg.(value & opt (some string) None & info [ "ac-output" ] ~docv:"NODE" ~doc:"AC output node name.")

let analyze_cmd =
  let info = Cmd.info "analyze" ~doc:"DC (and optionally AC) analysis of a SPICE-format netlist." in
  Cmd.v info Term.(const analyze $ netlist_arg $ op_arg $ ac_input_arg $ ac_output_arg)

(* --- trace -------------------------------------------------------------- *)

let read_trace path =
  let channel = open_in path in
  let records = ref [] in
  let line_number = ref 0 in
  (try
     while true do
       let line = input_line channel in
       incr line_number;
       if String.trim line <> "" then
         match Trace.of_line line with
         | Ok record -> records := record :: !records
         | Error msg ->
             close_in channel;
             Printf.eprintf "%s:%d: %s\n" path !line_number msg;
             exit 1
     done
   with End_of_file -> close_in channel);
  List.rev !records

let trace_command path counts =
  let records = read_trace path in
  if counts then begin
    (* The jobs-invariant projection: two traces of the same seeded run
       diff clean here whatever --jobs each used. *)
    List.iter
      (fun record ->
        match Trace.deterministic record with
        | Some projected -> print_endline (Trace.to_line projected)
        | None -> ())
      records;
    0
  end
  else begin
    (* Exhaustive so a new record variant is a compile error here, printed
       sorted by name so the summary (and diffs of it) are stable as kinds
       come and go. *)
    let kind = function
      | Trace.Run_start _ -> "run_start"
      | Trace.Generation _ -> "generation"
      | Trace.Op_stats _ -> "op_stats"
      | Trace.Sag_round _ -> "sag_round"
      | Trace.Sag_model _ -> "sag_model"
      | Trace.Cache_stats _ -> "cache_stats"
      | Trace.Eval_cache_stats _ -> "eval_cache_stats"
      | Trace.Fused_stats _ -> "fused_stats"
      | Trace.Checkpoint_written _ -> "checkpoint_written"
      | Trace.Run_resumed _ -> "run_resumed"
      | Trace.Warning _ -> "warning"
      | Trace.Migration _ -> "migration"
      | Trace.Run_end _ -> "run_end"
    in
    let tally = Hashtbl.create 16 in
    let last_generation = ref None in
    let final_front = ref None in
    List.iter
      (fun record ->
        let name = kind record in
        Hashtbl.replace tally name
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally name));
        match record with
        | Trace.Generation g -> last_generation := Some g
        | Trace.Run_end r -> final_front := Some r
        | _ -> ())
      records;
    Printf.printf "%s: %d records\n" path (List.length records);
    let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tally []) in
    let width = List.fold_left (fun w n -> max w (String.length n)) 0 names in
    List.iter (fun name -> Printf.printf "  %-*s %d\n" width name (Hashtbl.find tally name)) names;
    (match !last_generation with
    | Some g ->
        Printf.printf "last generation: gen %d, best train error %.4g, front size %d\n"
          g.Trace.gen g.Trace.best_nmse g.Trace.front_size
    | None -> ());
    (match !final_front with
    | Some r ->
        Printf.printf "final front: %d models, total wall %.3f s\n" (List.length r.Trace.front)
          r.Trace.total_wall_s
    | None -> ());
    0
  end

let trace_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JSONL" ~doc:"Trace written by fit --trace.")

let counts_arg =
  Arg.(
    value & flag
    & info [ "counts" ]
        ~doc:
          "Print the deterministic projection of each record instead of a summary — \
           byte-identical for the same seeded run at any --jobs setting.  Wall times are \
           zeroed; the dataset cache_stats record, the eval_cache_stats record (the final \
           eval.cache_hits/misses/evictions counters of --eval-cache runs) and per-generation \
           fused_stats records are dropped, since all depend on scheduling or cache state; \
           per-generation op_stats records are kept verbatim.  \
           Note that a generation's behavioral_diversity field is jobs-invariant but differs \
           across --eval-cache modes, so only compare projections of runs with the same mode.")

let trace_cmd =
  let info =
    Cmd.info "trace" ~doc:"Summarize or project a JSONL run trace written by fit --trace."
  in
  Cmd.v info Term.(const trace_command $ trace_file_arg $ counts_arg)

(* --- grammar ----------------------------------------------------------- *)

let grammar_command check_path =
  match check_path with
  | None ->
      print_string Grammar.caffeine_text;
      0
  | Some path -> (
      let channel = open_in path in
      let text = really_input_string channel (in_channel_length channel) in
      close_in channel;
      match Grammar.parse text with
      | Error msg ->
          Printf.printf "parse error: %s\n" msg;
          1
      | Ok g -> (
          match Grammar.validate g with
          | Ok () ->
              Printf.printf "%s: ok (%d nonterminals, %d terminals)\n" path
                (List.length (Grammar.nonterminals g))
                (List.length (Grammar.terminals g));
              0
          | Error msgs ->
              Printf.printf "%s: invalid\n" path;
              List.iter (fun m -> Printf.printf "  %s\n" m) msgs;
              1))

let check_arg =
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE" ~doc:"Validate a grammar file.")

let grammar_cmd =
  let info =
    Cmd.info "grammar" ~doc:"Print the built-in canonical-form grammar or validate a grammar file."
  in
  Cmd.v info Term.(const grammar_command $ check_arg)

(* --- main -------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "caffeine" ~version:Caffeine.Caffeine_version.version
      ~doc:"Template-free symbolic model generation of analog circuits (CAFFEINE, DATE'05)."
  in
  let group =
    Cmd.group info
      [ gen_data_cmd; simulate_cmd; fit_cmd; pack_cmd; predict_cmd; serve_cmd; grammar_cmd; analyze_cmd; export_cmd; insight_cmd; trace_cmd ]
  in
  exit (Cmd.eval' group)

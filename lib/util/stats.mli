(** Descriptive statistics and the regression error measures used throughout
    the library.

    The paper reports "normalized mean-squared error" on training data
    (Daems' [q_wc]) and on testing data ([q_tc]).  We implement that measure
    as the root-mean-squared residual normalized by the mean magnitude of the
    reference values, which reproduces the paper's scale (a constant model on
    the OTA data lands in the 10–25% band). *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance (divides by [n]). *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); requires [n >= 2]. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_value : float array -> float
(** Smallest element.  Raises [Invalid_argument] on an empty array. *)

val max_value : float array -> float
(** Largest element.  Raises [Invalid_argument] on an empty array. *)

val median : float array -> float
(** Median (average of the two middle elements for even lengths). *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0, 1\]], linear interpolation between
    order statistics. *)

val mse : float array -> float array -> float
(** [mse reference predicted] is the mean of squared residuals. *)

val rmse : float array -> float array -> float
(** Root of {!mse}. *)

val normalized_error : float array -> float array -> float
(** [normalized_error reference predicted] is the paper's quality-of-fit
    measure: RMS residual divided by the mean magnitude of [reference].
    Multiply by 100 to express as a percentage.  When the reference values are
    all zero, the raw RMS residual is returned. *)

val nmse : float array -> float array -> float
(** Variance-normalized mean-squared error: [mse / variance reference].
    Equals 1.0 for the best constant model.  When [reference] has zero
    variance, the raw MSE is returned. *)

val r_squared : float array -> float array -> float
(** Coefficient of determination, [1 - nmse]. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either input is constant. *)

val is_finite_array : float array -> bool
(** [true] when every element is finite (no nan or infinity). *)

val worst_relative_error : float array -> float array -> float
(** Largest single-sample residual, normalized like {!normalized_error}
    (by the mean magnitude of the reference values) — a worst-case
    counterpart to the mean measure, after Daems' q_wc. *)

(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** seeded through splitmix64, which gives
    reproducible streams from an integer seed.  Every stochastic component of
    the library threads a value of type {!t} explicitly so that whole
    experiments are replayable from a single seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from [seed] (default [0x5EED]). *)

val copy : t -> t
(** [copy rng] is an independent generator with the same current state. *)

type state = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }
(** The four xoshiro256** state words, exposed for serialization
    (checkpoint snapshots).  A captured state plus {!of_state} replays the
    exact remaining stream. *)

val to_state : t -> state
(** Snapshot the current state; the generator is not advanced. *)

val of_state : state -> t
(** Rebuild a generator that continues the stream captured by
    {!to_state}.  Raises [Invalid_argument] on the all-zero state (the
    degenerate fixed point of xoshiro256**, unreachable from any seed). *)

val split : t -> t
(** [split rng] derives a fresh generator from [rng], advancing [rng].
    The two streams are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform rng] is uniform in [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range rng lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box–Muller (default standard normal). *)

val cauchy : ?scale:float -> t -> float
(** Zero-mean Cauchy deviate with the given [scale] (default [1.0]);
    used for parameter mutation after Yao, Liu and Lin. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list. *)

val weighted_index : t -> float array -> int
(** [weighted_index rng ws] samples an index with probability proportional to
    the non-negative weight [ws.(i)].  At least one weight must be positive. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement rng k n] draws [k] distinct values from
    [0..n-1], in random order.  Requires [k <= n]. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a seed into the four xoshiro words, and to
   derive split streams.  Constants from Steele, Lea and Flood (2014). *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let create ?(seed = 0x5EED) () = of_seed64 (Int64.of_int seed)

let copy rng = { s0 = rng.s0; s1 = rng.s1; s2 = rng.s2; s3 = rng.s3 }

type state = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }

let to_state rng = { w0 = rng.s0; w1 = rng.s1; w2 = rng.s2; w3 = rng.s3 }

let of_state { w0; w1; w2; w3 } =
  (* The all-zero state is the one fixed point of xoshiro256**: it would
     emit zeros forever, and seeding through splitmix64 can never reach
     it, so reject it rather than resurrect a degenerate stream. *)
  if w0 = 0L && w1 = 0L && w2 = 0L && w3 = 0L then
    invalid_arg "Rng.of_state: all-zero state is not a valid xoshiro256** state";
  { s0 = w0; s1 = w1; s2 = w2; s3 = w3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 rng =
  let open Int64 in
  let result = mul (rotl (mul rng.s1 5L) 7) 9L in
  let t = shift_left rng.s1 17 in
  rng.s2 <- logxor rng.s2 rng.s0;
  rng.s3 <- logxor rng.s3 rng.s1;
  rng.s1 <- logxor rng.s1 rng.s2;
  rng.s0 <- logxor rng.s0 rng.s3;
  rng.s2 <- logxor rng.s2 t;
  rng.s3 <- rotl rng.s3 45;
  result

let split rng = of_seed64 (bits64 rng)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 63 non-negative bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.mul (Int64.div Int64.max_int bound64) bound64 in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 rng) 1 in
    if Int64.compare raw limit >= 0 then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let uniform rng =
  (* 53 random bits mapped to [0,1). *)
  let raw = Int64.shift_right_logical (bits64 rng) 11 in
  Int64.to_float raw *. 0x1.0p-53

let float rng bound = uniform rng *. bound

let range rng lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo +. (uniform rng *. (hi -. lo))

let bool rng = Int64.compare (Int64.logand (bits64 rng) 1L) 0L <> 0

let bernoulli rng p = uniform rng < p

let gaussian ?(mu = 0.) ?(sigma = 1.) rng =
  let rec nonzero () =
    let u = uniform rng in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = uniform rng in
  let radius = sqrt (-2. *. log u1) in
  mu +. (sigma *. radius *. cos (2. *. Float.pi *. u2))

let cauchy ?(scale = 1.) rng =
  (* Inverse-CDF; keep the argument away from +/- pi/2 exactly. *)
  let rec interior () =
    let u = uniform rng in
    if u > 0. && u < 1. then u else interior ()
  in
  scale *. tan (Float.pi *. (interior () -. 0.5))

let choose rng xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose: empty array";
  xs.(int rng (Array.length xs))

let choose_list rng xs =
  match xs with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ :: _ -> List.nth xs (int rng (List.length xs))

let weighted_index rng ws =
  let total = Array.fold_left (fun acc w ->
      if w < 0. then invalid_arg "Rng.weighted_index: negative weight";
      acc +. w)
      0. ws
  in
  if total <= 0. then invalid_arg "Rng.weighted_index: all weights zero";
  let target = float rng total in
  let n = Array.length ws in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. ws.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle_in_place rng xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let permutation rng n =
  let xs = Array.init n (fun i -> i) in
  shuffle_in_place rng xs;
  xs

let sample_without_replacement rng k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let perm = permutation rng n in
  Array.sub perm 0 k

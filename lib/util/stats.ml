let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let require_same_length name xs ys =
  if Array.length xs <> Array.length ys then invalid_arg (name ^ ": length mismatch")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let sum_sq_dev xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs

let variance xs =
  require_nonempty "Stats.variance" xs;
  sum_sq_dev xs /. float_of_int (Array.length xs)

let sample_variance xs =
  if Array.length xs < 2 then invalid_arg "Stats.sample_variance: need at least 2 samples";
  sum_sq_dev xs /. float_of_int (Array.length xs - 1)

let stddev xs = sqrt (variance xs)

let min_value xs =
  require_nonempty "Stats.min_value" xs;
  Array.fold_left Float.min xs.(0) xs

let max_value xs =
  require_nonempty "Stats.max_value" xs;
  Array.fold_left Float.max xs.(0) xs

let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let quantile xs q =
  require_nonempty "Stats.quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = sorted_copy xs in
  let n = Array.length sorted in
  let position = q *. float_of_int (n - 1) in
  let lower = int_of_float (floor position) in
  let upper = int_of_float (ceil position) in
  if lower = upper then sorted.(lower)
  else
    let fraction = position -. float_of_int lower in
    sorted.(lower) +. (fraction *. (sorted.(upper) -. sorted.(lower)))

let median xs = quantile xs 0.5

let mse reference predicted =
  require_nonempty "Stats.mse" reference;
  require_same_length "Stats.mse" reference predicted;
  let n = Array.length reference in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let e = reference.(i) -. predicted.(i) in
    acc := !acc +. (e *. e)
  done;
  !acc /. float_of_int n

let rmse reference predicted = sqrt (mse reference predicted)

let normalized_error reference predicted =
  let scale = mean (Array.map Float.abs reference) in
  let rms = rmse reference predicted in
  if scale > 0. then rms /. scale else rms

let nmse reference predicted =
  let denom = variance reference in
  let raw = mse reference predicted in
  if denom > 0. then raw /. denom else raw

let r_squared reference predicted = 1. -. nmse reference predicted

let correlation xs ys =
  require_nonempty "Stats.correlation" xs;
  require_same_length "Stats.correlation" xs ys;
  let mx = mean xs and my = mean ys in
  let n = Array.length xs in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    cov := !cov +. (dx *. dy);
    vx := !vx +. (dx *. dx);
    vy := !vy +. (dy *. dy)
  done;
  if !vx <= 0. || !vy <= 0. then 0. else !cov /. sqrt (!vx *. !vy)

let is_finite_array xs = Array.for_all (fun x -> Float.is_finite x) xs

let worst_relative_error reference predicted =
  require_nonempty "Stats.worst_relative_error" reference;
  require_same_length "Stats.worst_relative_error" reference predicted;
  let scale = mean (Array.map Float.abs reference) in
  let scale = if scale > 0. then scale else 1. in
  let worst = ref 0. in
  Array.iteri
    (fun i y -> worst := Float.max !worst (Float.abs (y -. predicted.(i)) /. scale))
    reference;
  !worst

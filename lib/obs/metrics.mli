(** Lock-free, domain-safe metrics registry.

    One registry holds named metrics of four kinds — monotone counters,
    last-write-wins gauges, timing accumulators fed by monotonic-clock
    spans, and fixed-bucket histograms.  Registration (name -> handle)
    takes a mutex; it is expected once per metric, at module or pool
    initialization, on the main domain.  Every update on a handle is a
    plain [Atomic] operation — no locks, no blocking — so the hot paths
    (objective evaluation inside pool workers, per-candidate PRESS probes)
    can bump counters from any domain concurrently without coordination.
    Counts are exact: increments are atomic read-modify-write, never
    lost to races.

    The process-wide {!default} registry is what the always-on
    instrumentation (pool utilization, regression-engine counters) writes
    to and what [fit --metrics] renders; independent registries
    ({!create}) serve tests and embedders that want isolation. *)

type t
(** A registry: a named collection of metrics. *)

val create : unit -> t

val default : t
(** The process-wide registry used by the built-in instrumentation. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the counter [name].  Raises [Invalid_argument] if the
    name is already registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** Get or create the gauge [name] (initially [0.]). *)

val set_gauge : gauge -> float -> unit
(** Last write wins; concurrent writers never corrupt the value. *)

val gauge_value : gauge -> float

(** {2 Timers} *)

type timer
(** Accumulates spans: a call count and a total duration in monotonic
    nanoseconds. *)

val timer : t -> string -> timer

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), unaffected by wall-clock
    adjustments — safe to difference across a long run. *)

val record_span : timer -> start_ns:int64 -> stop_ns:int64 -> unit
(** Add [stop_ns - start_ns] (clamped at 0) to the timer. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is recorded even on exception. *)

val timer_count : timer -> int
val timer_total_ns : timer -> int

(** {2 Histograms} *)

type histogram
(** Fixed upper-inclusive buckets: with bounds [[| b0; ...; bk |]]
    (strictly increasing), observation [v] lands in the first bucket [i]
    with [v <= bi], and in the overflow bucket (index [k+1]) when
    [v > bk] or [v] is NaN. *)

val histogram : t -> buckets:float array -> string -> histogram
(** Get or create.  [buckets] must be non-empty and strictly increasing;
    re-registration with different bounds raises [Invalid_argument]. *)

val observe : histogram -> float -> unit
val bucket_bounds : histogram -> float array

val bucket_counts : histogram -> int array
(** One count per bucket plus the trailing overflow bucket
    ([Array.length (bucket_bounds h) + 1] entries). *)

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Timer of { count : int; total_ns : int }
  | Histogram of { bounds : float array; counts : int array }

val snapshot : t -> (string * value) list
(** Point-in-time copy of every metric, sorted by name.  Concurrent
    updates may or may not be included; each individual value is a single
    atomic read. *)

val reset : t -> unit
(** Zero every metric, keeping the registrations (handles stay valid). *)

val render : (string * value) list -> string
(** Human-readable table of a snapshot, one metric per line. *)

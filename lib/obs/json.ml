type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* Numbers are kept as raw lexemes so integer fields never go through a
   float; each decoding helper converts per field. *)
let parse_exn text =
  let pos = ref 0 in
  let len = String.length text in
  let fail message = raise (Parse_error message) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < len && text.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c at offset %d" c !pos)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal at offset %d" !pos)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' ->
                   Buffer.add_char buffer '"';
                   advance ()
               | '\\' ->
                   Buffer.add_char buffer '\\';
                   advance ()
               | '/' ->
                   Buffer.add_char buffer '/';
                   advance ()
               | 'b' ->
                   Buffer.add_char buffer '\b';
                   advance ()
               | 'f' ->
                   Buffer.add_char buffer '\012';
                   advance ()
               | 'n' ->
                   Buffer.add_char buffer '\n';
                   advance ()
               | 'r' ->
                   Buffer.add_char buffer '\r';
                   advance ()
               | 't' ->
                   Buffer.add_char buffer '\t';
                   advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub text !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the BMP code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buffer (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c ->
            Buffer.add_char buffer c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      && match text.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail (Printf.sprintf "expected a value at offset %d" start);
    Num (String.sub text start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((name, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((name, value) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> len then fail (Printf.sprintf "trailing input at offset %d" !pos);
  value

let parse text =
  match parse_exn text with
  | value -> Ok value
  | exception Parse_error message -> Error message

(* --- decoding helpers ---------------------------------------------------- *)

let obj = function Obj fields -> fields | _ -> raise (Parse_error "expected an object")

let member fields name =
  match List.assoc_opt name fields with
  | Some value -> value
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let to_int name = function
  | Num raw -> (
      match int_of_string_opt raw with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "field %S is not an integer" name)))
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not an integer" name))

let to_float name = function
  | Num raw -> (
      match float_of_string_opt raw with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "field %S is not a number" name)))
  | Str "NaN" -> Float.nan
  | Str "Infinity" -> Float.infinity
  | Str "-Infinity" -> Float.neg_infinity
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not a number" name))

let to_str name = function
  | Str s -> s
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not a string" name))

let to_arr name = function
  | Arr elements -> elements
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not an array" name))

let int_of fields name = to_int name (member fields name)
let float_of fields name = to_float name (member fields name)
let str_of fields name = to_str name (member fields name)
let arr_of fields name = to_arr name (member fields name)

let int_array_of fields name =
  Array.of_list (List.map (to_int name) (to_arr name (member fields name)))

(* --- encoding helpers ---------------------------------------------------- *)

(* %.17g round-trips every finite double through float_of_string; the three
   non-finite values are not valid JSON numbers and travel as strings. *)
let add_float buffer v =
  if Float.is_nan v then Buffer.add_string buffer "\"NaN\""
  else if v = Float.infinity then Buffer.add_string buffer "\"Infinity\""
  else if v = Float.neg_infinity then Buffer.add_string buffer "\"-Infinity\""
  else Buffer.add_string buffer (Printf.sprintf "%.17g" v)

let add_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\b' -> Buffer.add_string buffer "\\b"
      | '\012' -> Buffer.add_string buffer "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

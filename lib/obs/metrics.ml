(* Registration is mutex-protected (cold: once per metric name, normally at
   module or pool initialization on the main domain); every operation on a
   registered handle is a single Atomic read-modify-write, so updates from
   pool worker domains need no locks and lose no counts.  Gauges hold a
   boxed float behind an Atomic reference: [set_gauge] publishes a fresh
   box, which the OCaml 5 memory model makes safe for concurrent readers
   (last write wins, no torn values). *)

type counter = int Atomic.t
type gauge = float Atomic.t

type timer = {
  spans : int Atomic.t;
  total_ns : int Atomic.t;
}

type histogram = {
  bounds : float array;  (* strictly increasing, upper-inclusive *)
  counts : int Atomic.t array;  (* length (Array.length bounds) + 1: last = overflow *)
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_timer of timer
  | M_histogram of histogram

type t = {
  mutex : Mutex.t;
  table : (string, metric) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 32 }
let default = create ()

let register registry name make check =
  Mutex.lock registry.mutex;
  let metric =
    match Hashtbl.find_opt registry.table name with
    | Some existing -> (
        match check existing with
        | Some handle -> handle
        | None ->
            Mutex.unlock registry.mutex;
            invalid_arg
              (Printf.sprintf "Metrics: %S is already registered as a different metric kind" name))
    | None ->
        let handle = make () in
        Hashtbl.replace registry.table name handle;
        handle
  in
  Mutex.unlock registry.mutex;
  metric

let counter registry name =
  match
    register registry name
      (fun () -> M_counter (Atomic.make 0))
      (function M_counter _ as m -> Some m | _ -> None)
  with
  | M_counter c -> c
  | _ -> assert false

let incr counter = ignore (Atomic.fetch_and_add counter 1)
let add counter n = ignore (Atomic.fetch_and_add counter n)
let counter_value = Atomic.get

let gauge registry name =
  match
    register registry name
      (fun () -> M_gauge (Atomic.make 0.))
      (function M_gauge _ as m -> Some m | _ -> None)
  with
  | M_gauge g -> g
  | _ -> assert false

let set_gauge gauge value = Atomic.set gauge value
let gauge_value = Atomic.get

let timer registry name =
  match
    register registry name
      (fun () -> M_timer { spans = Atomic.make 0; total_ns = Atomic.make 0 })
      (function M_timer _ as m -> Some m | _ -> None)
  with
  | M_timer t -> t
  | _ -> assert false

let now_ns () = Monotonic_clock.now ()

let record_span timer ~start_ns ~stop_ns =
  let elapsed = Int64.to_int (Int64.sub stop_ns start_ns) in
  ignore (Atomic.fetch_and_add timer.spans 1);
  ignore (Atomic.fetch_and_add timer.total_ns (Stdlib.max 0 elapsed))

let time timer f =
  let start_ns = now_ns () in
  Fun.protect ~finally:(fun () -> record_span timer ~start_ns ~stop_ns:(now_ns ())) f

let timer_count timer = Atomic.get timer.spans
let timer_total_ns timer = Atomic.get timer.total_ns

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done

let histogram registry ~buckets name =
  check_bounds buckets;
  match
    register registry name
      (fun () ->
        M_histogram
          {
            bounds = Array.copy buckets;
            counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          })
      (function
        | M_histogram h as m -> if h.bounds = buckets then Some m else None | _ -> None)
  with
  | M_histogram h -> h
  | _ -> assert false

(* First bucket whose (upper-inclusive) bound admits [v]; NaN and anything
   above the last bound land in the overflow bucket. *)
let bucket_index bounds v =
  let k = Array.length bounds in
  if Float.is_nan v then k
  else begin
    (* Binary search for the smallest i with v <= bounds.(i). *)
    let lo = ref 0 and hi = ref k in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe histogram v =
  ignore (Atomic.fetch_and_add histogram.counts.(bucket_index histogram.bounds v) 1)

let bucket_bounds histogram = Array.copy histogram.bounds
let bucket_counts histogram = Array.map Atomic.get histogram.counts

type value =
  | Counter of int
  | Gauge of float
  | Timer of { count : int; total_ns : int }
  | Histogram of { bounds : float array; counts : int array }

let snapshot registry =
  Mutex.lock registry.mutex;
  let entries =
    Hashtbl.fold
      (fun name metric acc ->
        let value =
          match metric with
          | M_counter c -> Counter (Atomic.get c)
          | M_gauge g -> Gauge (Atomic.get g)
          | M_timer t -> Timer { count = Atomic.get t.spans; total_ns = Atomic.get t.total_ns }
          | M_histogram h ->
              Histogram { bounds = Array.copy h.bounds; counts = Array.map Atomic.get h.counts }
        in
        (name, value) :: acc)
      registry.table []
  in
  Mutex.unlock registry.mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let reset registry =
  Mutex.lock registry.mutex;
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | M_counter c -> Atomic.set c 0
      | M_gauge g -> Atomic.set g 0.
      | M_timer t ->
          Atomic.set t.spans 0;
          Atomic.set t.total_ns 0
      | M_histogram h -> Array.iter (fun c -> Atomic.set c 0) h.counts)
    registry.table;
  Mutex.unlock registry.mutex

let render entries =
  let buffer = Buffer.create 512 in
  List.iter
    (fun (name, value) ->
      let line =
        match value with
        | Counter n -> Printf.sprintf "%-36s %d" name n
        | Gauge v -> Printf.sprintf "%-36s %g" name v
        | Timer { count; total_ns } ->
            let total_s = float_of_int total_ns /. 1e9 in
            let mean_us =
              if count = 0 then 0. else float_of_int total_ns /. float_of_int count /. 1e3
            in
            Printf.sprintf "%-36s %d spans, %.3f s total, %.1f us mean" name count total_s mean_us
        | Histogram { bounds; counts } ->
            let cells =
              Array.to_list
                (Array.mapi
                   (fun i count ->
                     if i < Array.length bounds then Printf.sprintf "<=%g:%d" bounds.(i) count
                     else Printf.sprintf ">%g:%d" bounds.(Array.length bounds - 1) count)
                   counts)
            in
            Printf.sprintf "%-36s %s" name (String.concat " " cells)
      in
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n')
    entries;
  Buffer.contents buffer

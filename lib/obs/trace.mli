(** Structured JSONL run traces.

    A trace is a sequence of typed records, one JSON object per line,
    written through a {!sink}.  The schema separates {e deterministic}
    content — counts, sizes, errors, complexities, selection decisions,
    which for a fixed seed are bit-identical whatever the parallelism —
    from {e nondeterministic} content (wall times, cache-effectiveness
    counters that depend on racing duplicate evaluations).  The
    {!deterministic} projection drops the latter, so two traces of the
    same seeded run at different [--jobs] settings project to identical
    line sequences; CI diffs exactly that.

    Every record round-trips: [of_line (to_line r)] re-reads [r]
    (non-finite floats included — they are encoded as the JSON strings
    ["NaN"], ["Infinity"], ["-Infinity"]). *)

(** {2 Records} *)

type run_start = {
  seed : int;
  pop_size : int;
  generations : int;
  max_bases : int;
  samples : int;
  dims : int;
}

type generation = {
  gen : int;  (** 0 = after initialization *)
  evals : int;  (** objective evaluations this generation *)
  front_size : int;  (** rank-0 members of the population *)
  best_nmse : float;  (** best (lowest) training NMSE in the population *)
  median_nmse : float;
  complexity_min : float;
  complexity_median : float;
  complexity_max : float;
  crossovers : int;  (** children built with basis-set crossover *)
  op_counts : int array;  (** applied variation operators, by operator id *)
  depth_rejects : int;  (** mutations discarded by the depth bound *)
  behavioral_diversity : int;
      (** distinct behavioral fingerprints in the population, [-1] when the
          evaluation cache is not in behavioral mode.  A pure function of
          the (jobs-invariant) population, so the {!deterministic}
          projection keeps it — but it differs across [--eval-cache]
          modes, so cross-mode trace diffs must exclude it. *)
  wall_s : float;  (** nondeterministic *)
}

type op_stats = {
  gen : int;
  applied : int array;  (** operator draws this generation, by operator id *)
  changed : int array;
      (** draws that structurally changed the child and survived the depth
          bound — per-operator success counts for adaptive operator
          selection.  Deterministic: variation runs sequentially on the
          coordinating domain. *)
}

type sag_round = {
  model_index : int;  (** position of the model in the processed front *)
  round : int;  (** forward-selection round, 0-based *)
  chosen : int;  (** index of the accepted candidate column *)
  press_before : float;
  press_after : float;
}

type sag_model = {
  model_index : int;
  bases_before : int;
  bases_after : int;  (** [bases_before - bases_after] bases were pruned *)
}

type cache_stats = {
  columns_cached : int;
  column_hits : int;
  column_misses : int;
  column_evictions : int;
  dots_cached : int;
  dot_hits : int;
  dot_misses : int;
  dot_evictions : int;
}
(** Nondeterministic across jobs settings: racing duplicate evaluations
    shift hits/misses, so the whole record is dropped by
    {!deterministic}. *)

type eval_cache_stats = {
  eval_hits : int;  (** objective evaluations served from the cache *)
  eval_misses : int;  (** evaluations that ran the full fit *)
  eval_evictions : int;  (** cached entries dropped by shard overflow *)
}
(** Final [eval.cache_*] counter values of the evaluation cache
    ({!Caffeine.Eval_cache}).  Reporting data only: under the process
    backend worker-side counters never reach the coordinator, so the whole
    record is dropped by {!deterministic} like {!cache_stats}. *)

type fused_stats = {
  gen : int;
  batches : int;  (** fused warm batches this generation (one per executor chunk) *)
  nodes_in : int;  (** DAG nodes the batches' bases would create unshared *)
  nodes_out : int;  (** distinct DAG nodes actually evaluated *)
}
(** Per-generation cross-tree CSE effectiveness of fused evaluation
    ({!Caffeine_expr.Fused}): [nodes_in / nodes_out] is the sharing
    ratio.  Reporting data only — chunk boundaries follow the jobs
    setting and already-cached bases depend on evaluation-order races —
    so the record is dropped by {!deterministic}. *)

type run_end = {
  front : (float * float) list;  (** (complexity, train NMSE) per model *)
  total_wall_s : float;  (** nondeterministic *)
}

type checkpoint_written = {
  path : string;  (** snapshot file the run state was renamed into *)
  phase : string;  (** ["evolving"] or ["simplifying"] *)
  island : int;  (** island the write was triggered by (0 for {!Search.run}, [-1] in the SAG phase) *)
  gen : int;
      (** last completed generation captured; in the SAG phase the index of
          the model just simplified ([-1] for the phase's initial snapshot) *)
}

type run_resumed = {
  phase : string;  (** ["evolving"] or ["simplifying"] *)
  island : int;  (** first island with unfinished work ([-1] if none, or in the SAG phase) *)
  gen : int;
      (** generation the island resumes after ([-1] when none ran); in the
          SAG phase the number of models already simplified *)
}

type warning = {
  context : string;  (** dotted source location, e.g. ["sag.test_tradeoff"] *)
  message : string;
}

type migration = {
  island : int;  (** island whose elite front arrived at the coordinator *)
  shard : int;
      (** worker process that served the island — nondeterministic across
          [--shard] settings, zeroed by {!deterministic} *)
  models : int;  (** models in the migrated front *)
  bytes : int;  (** wire size of the serialized front (one snapshot line) *)
}
(** Emitted by the multi-process island backend ({!Caffeine.Shard}) when a
    worker hands its finished front back to the coordinator.  Sequential
    and domain-pool runs exchange nothing and emit none. *)

type record =
  | Run_start of run_start
  | Generation of generation
  | Op_stats of op_stats
  | Sag_round of sag_round
  | Sag_model of sag_model
  | Cache_stats of cache_stats
  | Eval_cache_stats of eval_cache_stats
  | Fused_stats of fused_stats
  | Run_end of run_end
  | Checkpoint_written of checkpoint_written
  | Run_resumed of run_resumed
  | Warning of warning
  | Migration of migration

(** {2 JSONL codec} *)

val to_line : record -> string
(** One-line JSON object (no trailing newline), fields in a fixed order. *)

val of_line : string -> (record, string) result

val deterministic : record -> record option
(** The jobs-invariant projection: [None] for {!Cache_stats},
    {!Eval_cache_stats} and {!Fused_stats}; other records with their nondeterministic fields
    ([wall_s], [total_wall_s], {!migration}'s [shard]) zeroed.
    {!Op_stats} records are kept verbatim (variation is sequential on the
    coordinating domain).  Checkpoint, resume and warning records are kept
    verbatim: checkpointed runs serialize their islands, so the records
    arrive in the same order at every jobs and shard setting. *)

(** {2 Sinks} *)

type sink
(** Where records go.  The {!null} sink drops everything and is the
    signal for instrumented code to skip building records at all. *)

val null : sink

val is_null : sink -> bool
(** [true] only for {!null}: instrumentation guards on this so a disabled
    trace costs one branch per potential record. *)

val of_channel : out_channel -> sink
(** Append [to_line record] lines to the channel.  Writes are serialized
    by a mutex, so pool domains may emit concurrently; the caller keeps
    ownership of the channel and closes it after the run. *)

val memory : unit -> sink
(** Collect records in memory (mutex-protected); read with {!contents}. *)

val of_fn : (record -> unit) -> sink
(** Hand every record to [f] directly, with no locking — for
    single-domain plumbing such as a worker process forwarding records
    over its result pipe.  Callers that emit from several domains must
    serialize inside [f] themselves. *)

val contents : sink -> record list
(** Records collected so far, in emission order.  Empty for non-memory
    sinks. *)

val emit : sink -> record -> unit

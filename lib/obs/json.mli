(** Minimal JSON reader/writer shared by the trace codec and the checkpoint
    snapshot codec.

    The reader covers exactly the subset the library's encoders emit:
    objects, arrays, strings, literals, and numbers kept as raw lexemes so
    63-bit integers survive without a round-trip through [float].  The
    writer side provides the encoding conventions every codec in the
    repository uses: floats as [%.17g] (which round-trips every finite
    double through [float_of_string]) with the three non-finite values
    travelling as the JSON strings ["NaN"], ["Infinity"] and ["-Infinity"],
    and strings with full escaping. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** raw numeric lexeme, converted per field *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse_exn} and by the decoding helpers below on malformed
    or mistyped input. *)

val parse_exn : string -> t
(** Parse one complete JSON value; raises {!Parse_error}. *)

val parse : string -> (t, string) result
(** {!parse_exn} with the error captured. *)

(** {2 Decoding helpers}

    All raise {!Parse_error} with the offending field name on a type or
    presence mismatch. *)

val obj : t -> (string * t) list
val member : (string * t) list -> string -> t
val to_int : string -> t -> int
val to_float : string -> t -> float
(** Accepts numeric lexemes and the non-finite string encodings. *)

val to_str : string -> t -> string
val to_arr : string -> t -> t list

val int_of : (string * t) list -> string -> int
val float_of : (string * t) list -> string -> float
val str_of : (string * t) list -> string -> string
val arr_of : (string * t) list -> string -> t list
val int_array_of : (string * t) list -> string -> int array

(** {2 Encoding helpers} *)

val add_float : Buffer.t -> float -> unit
(** [%.17g], or a quoted ["NaN"] / ["Infinity"] / ["-Infinity"]. *)

val add_string : Buffer.t -> string -> unit
(** Quoted and escaped. *)

type run_start = {
  seed : int;
  pop_size : int;
  generations : int;
  max_bases : int;
  samples : int;
  dims : int;
}

type generation = {
  gen : int;
  evals : int;
  front_size : int;
  best_nmse : float;
  median_nmse : float;
  complexity_min : float;
  complexity_median : float;
  complexity_max : float;
  crossovers : int;
  op_counts : int array;
  depth_rejects : int;
  behavioral_diversity : int;
  wall_s : float;
}

type op_stats = {
  gen : int;
  applied : int array;
  changed : int array;
}

type sag_round = {
  model_index : int;
  round : int;
  chosen : int;
  press_before : float;
  press_after : float;
}

type sag_model = {
  model_index : int;
  bases_before : int;
  bases_after : int;
}

type cache_stats = {
  columns_cached : int;
  column_hits : int;
  column_misses : int;
  column_evictions : int;
  dots_cached : int;
  dot_hits : int;
  dot_misses : int;
  dot_evictions : int;
}

type eval_cache_stats = {
  eval_hits : int;
  eval_misses : int;
  eval_evictions : int;
}

type fused_stats = {
  gen : int;
  batches : int;
  nodes_in : int;
  nodes_out : int;
}

type run_end = {
  front : (float * float) list;
  total_wall_s : float;
}

type checkpoint_written = {
  path : string;
  phase : string;
  island : int;
  gen : int;
}

type run_resumed = {
  phase : string;
  island : int;
  gen : int;
}

type warning = {
  context : string;
  message : string;
}

type migration = {
  island : int;
  shard : int;
  models : int;
  bytes : int;
}

type record =
  | Run_start of run_start
  | Generation of generation
  | Op_stats of op_stats
  | Sag_round of sag_round
  | Sag_model of sag_model
  | Cache_stats of cache_stats
  | Eval_cache_stats of eval_cache_stats
  | Fused_stats of fused_stats
  | Run_end of run_end
  | Checkpoint_written of checkpoint_written
  | Run_resumed of run_resumed
  | Warning of warning
  | Migration of migration

(* --- encoding ----------------------------------------------------------- *)

let add_fields buffer kind fields =
  Buffer.add_string buffer "{\"type\":\"";
  Buffer.add_string buffer kind;
  Buffer.add_char buffer '"';
  List.iter
    (fun (name, write) ->
      Buffer.add_string buffer ",\"";
      Buffer.add_string buffer name;
      Buffer.add_string buffer "\":";
      write buffer)
    fields;
  Buffer.add_char buffer '}'

let int_field v buffer = Buffer.add_string buffer (string_of_int v)
let float_field v buffer = Json.add_float buffer v
let string_field v buffer = Json.add_string buffer v

let int_array_field values buffer =
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    values;
  Buffer.add_char buffer ']'

let pair_list_field pairs buffer =
  Buffer.add_char buffer '[';
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_char buffer '[';
      Json.add_float buffer a;
      Buffer.add_char buffer ',';
      Json.add_float buffer b;
      Buffer.add_char buffer ']')
    pairs;
  Buffer.add_char buffer ']'

let to_line record =
  let buffer = Buffer.create 160 in
  (match record with
  | Run_start r ->
      add_fields buffer "run_start"
        [
          ("seed", int_field r.seed);
          ("pop_size", int_field r.pop_size);
          ("generations", int_field r.generations);
          ("max_bases", int_field r.max_bases);
          ("samples", int_field r.samples);
          ("dims", int_field r.dims);
        ]
  | Generation g ->
      add_fields buffer "generation"
        [
          ("gen", int_field g.gen);
          ("evals", int_field g.evals);
          ("front_size", int_field g.front_size);
          ("best_nmse", float_field g.best_nmse);
          ("median_nmse", float_field g.median_nmse);
          ("complexity_min", float_field g.complexity_min);
          ("complexity_median", float_field g.complexity_median);
          ("complexity_max", float_field g.complexity_max);
          ("crossovers", int_field g.crossovers);
          ("op_counts", int_array_field g.op_counts);
          ("depth_rejects", int_field g.depth_rejects);
          ("behavioral_diversity", int_field g.behavioral_diversity);
          ("wall_s", float_field g.wall_s);
        ]
  | Op_stats s ->
      add_fields buffer "op_stats"
        [
          ("gen", int_field s.gen);
          ("applied", int_array_field s.applied);
          ("changed", int_array_field s.changed);
        ]
  | Sag_round r ->
      add_fields buffer "sag_round"
        [
          ("model_index", int_field r.model_index);
          ("round", int_field r.round);
          ("chosen", int_field r.chosen);
          ("press_before", float_field r.press_before);
          ("press_after", float_field r.press_after);
        ]
  | Sag_model m ->
      add_fields buffer "sag_model"
        [
          ("model_index", int_field m.model_index);
          ("bases_before", int_field m.bases_before);
          ("bases_after", int_field m.bases_after);
        ]
  | Cache_stats c ->
      add_fields buffer "cache_stats"
        [
          ("columns_cached", int_field c.columns_cached);
          ("column_hits", int_field c.column_hits);
          ("column_misses", int_field c.column_misses);
          ("column_evictions", int_field c.column_evictions);
          ("dots_cached", int_field c.dots_cached);
          ("dot_hits", int_field c.dot_hits);
          ("dot_misses", int_field c.dot_misses);
          ("dot_evictions", int_field c.dot_evictions);
        ]
  | Eval_cache_stats e ->
      add_fields buffer "eval_cache_stats"
        [
          ("eval_hits", int_field e.eval_hits);
          ("eval_misses", int_field e.eval_misses);
          ("eval_evictions", int_field e.eval_evictions);
        ]
  | Fused_stats f ->
      add_fields buffer "fused_stats"
        [
          ("gen", int_field f.gen);
          ("batches", int_field f.batches);
          ("nodes_in", int_field f.nodes_in);
          ("nodes_out", int_field f.nodes_out);
        ]
  | Run_end r ->
      add_fields buffer "run_end"
        [
          ("front", pair_list_field r.front); ("total_wall_s", float_field r.total_wall_s);
        ]
  | Checkpoint_written c ->
      add_fields buffer "checkpoint_written"
        [
          ("path", string_field c.path);
          ("phase", string_field c.phase);
          ("island", int_field c.island);
          ("gen", int_field c.gen);
        ]
  | Run_resumed r ->
      add_fields buffer "run_resumed"
        [
          ("phase", string_field r.phase); ("island", int_field r.island); ("gen", int_field r.gen);
        ]
  | Warning w ->
      add_fields buffer "warning"
        [ ("context", string_field w.context); ("message", string_field w.message) ]
  | Migration m ->
      add_fields buffer "migration"
        [
          ("island", int_field m.island);
          ("shard", int_field m.shard);
          ("models", int_field m.models);
          ("bytes", int_field m.bytes);
        ]);
  Buffer.contents buffer

(* --- decoding ----------------------------------------------------------- *)

let pair_list_of fields name =
  List.map
    (function
      | Json.Arr [ a; b ] -> (Json.to_float name a, Json.to_float name b)
      | _ -> raise (Json.Parse_error (Printf.sprintf "field %S is not a list of pairs" name)))
    (Json.arr_of fields name)

let of_line line =
  match Json.parse_exn line with
  | exception Json.Parse_error message -> Error message
  | json -> (
      match
        let fields = Json.obj json in
        match Json.member fields "type" with
        | Json.Str "run_start" ->
            Run_start
              {
                seed = Json.int_of fields "seed";
                pop_size = Json.int_of fields "pop_size";
                generations = Json.int_of fields "generations";
                max_bases = Json.int_of fields "max_bases";
                samples = Json.int_of fields "samples";
                dims = Json.int_of fields "dims";
              }
        | Json.Str "generation" ->
            Generation
              {
                gen = Json.int_of fields "gen";
                evals = Json.int_of fields "evals";
                front_size = Json.int_of fields "front_size";
                best_nmse = Json.float_of fields "best_nmse";
                median_nmse = Json.float_of fields "median_nmse";
                complexity_min = Json.float_of fields "complexity_min";
                complexity_median = Json.float_of fields "complexity_median";
                complexity_max = Json.float_of fields "complexity_max";
                crossovers = Json.int_of fields "crossovers";
                op_counts = Json.int_array_of fields "op_counts";
                depth_rejects = Json.int_of fields "depth_rejects";
                behavioral_diversity = Json.int_of fields "behavioral_diversity";
                wall_s = Json.float_of fields "wall_s";
              }
        | Json.Str "op_stats" ->
            Op_stats
              {
                gen = Json.int_of fields "gen";
                applied = Json.int_array_of fields "applied";
                changed = Json.int_array_of fields "changed";
              }
        | Json.Str "sag_round" ->
            Sag_round
              {
                model_index = Json.int_of fields "model_index";
                round = Json.int_of fields "round";
                chosen = Json.int_of fields "chosen";
                press_before = Json.float_of fields "press_before";
                press_after = Json.float_of fields "press_after";
              }
        | Json.Str "sag_model" ->
            Sag_model
              {
                model_index = Json.int_of fields "model_index";
                bases_before = Json.int_of fields "bases_before";
                bases_after = Json.int_of fields "bases_after";
              }
        | Json.Str "cache_stats" ->
            Cache_stats
              {
                columns_cached = Json.int_of fields "columns_cached";
                column_hits = Json.int_of fields "column_hits";
                column_misses = Json.int_of fields "column_misses";
                column_evictions = Json.int_of fields "column_evictions";
                dots_cached = Json.int_of fields "dots_cached";
                dot_hits = Json.int_of fields "dot_hits";
                dot_misses = Json.int_of fields "dot_misses";
                dot_evictions = Json.int_of fields "dot_evictions";
              }
        | Json.Str "eval_cache_stats" ->
            Eval_cache_stats
              {
                eval_hits = Json.int_of fields "eval_hits";
                eval_misses = Json.int_of fields "eval_misses";
                eval_evictions = Json.int_of fields "eval_evictions";
              }
        | Json.Str "fused_stats" ->
            Fused_stats
              {
                gen = Json.int_of fields "gen";
                batches = Json.int_of fields "batches";
                nodes_in = Json.int_of fields "nodes_in";
                nodes_out = Json.int_of fields "nodes_out";
              }
        | Json.Str "run_end" ->
            Run_end
              {
                front = pair_list_of fields "front";
                total_wall_s = Json.float_of fields "total_wall_s";
              }
        | Json.Str "checkpoint_written" ->
            Checkpoint_written
              {
                path = Json.str_of fields "path";
                phase = Json.str_of fields "phase";
                island = Json.int_of fields "island";
                gen = Json.int_of fields "gen";
              }
        | Json.Str "run_resumed" ->
            Run_resumed
              {
                phase = Json.str_of fields "phase";
                island = Json.int_of fields "island";
                gen = Json.int_of fields "gen";
              }
        | Json.Str "warning" ->
            Warning
              { context = Json.str_of fields "context"; message = Json.str_of fields "message" }
        | Json.Str "migration" ->
            Migration
              {
                island = Json.int_of fields "island";
                shard = Json.int_of fields "shard";
                models = Json.int_of fields "models";
                bytes = Json.int_of fields "bytes";
              }
        | Json.Str other -> raise (Json.Parse_error (Printf.sprintf "unknown record type %S" other))
        | _ -> raise (Json.Parse_error "missing record type")
      with
      | record -> Ok record
      | exception Json.Parse_error message -> Error message)

let deterministic = function
  | Run_start _ as record -> Some record
  (* behavioral_diversity is a pure function of the population, which is
     jobs-invariant, so it stays (it does differ across --eval-cache
     modes — consumers diffing across modes must exclude it). *)
  | Generation g -> Some (Generation { g with wall_s = 0. })
  | Op_stats _ as record -> Some record
  | Sag_round _ as record -> Some record
  | Sag_model _ as record -> Some record
  | Cache_stats _ -> None
  | Eval_cache_stats _ -> None
  (* Chunk boundaries (hence batch count and per-batch node totals) vary
     with the jobs setting, and which bases are already cached varies with
     evaluation-order races — reporting data, not part of the contract. *)
  | Fused_stats _ -> None
  | Run_end r -> Some (Run_end { r with total_wall_s = 0. })
  | Checkpoint_written _ as record -> Some record
  | Run_resumed _ as record -> Some record
  | Warning _ as record -> Some record
  (* Which worker process served an island depends on the --shard setting,
     so the shard field is zeroed; the migrated front (and hence its model
     count and wire size) is shard-invariant. *)
  | Migration m -> Some (Migration { m with shard = 0 })

(* --- sinks -------------------------------------------------------------- *)

type sink =
  | Null
  | Channel of { channel : out_channel; mutex : Mutex.t }
  | Memory of { mutable records : record list; mutex : Mutex.t }
  | Fn of (record -> unit)

let null = Null
let is_null = function Null -> true | Channel _ | Memory _ | Fn _ -> false
let of_channel channel = Channel { channel; mutex = Mutex.create () }
let memory () = Memory { records = []; mutex = Mutex.create () }
let of_fn f = Fn f

let contents = function
  | Null | Channel _ | Fn _ -> []
  | Memory m ->
      Mutex.lock m.mutex;
      let records = List.rev m.records in
      Mutex.unlock m.mutex;
      records

let emit sink record =
  match sink with
  | Null -> ()
  | Channel c ->
      let line = to_line record in
      Mutex.lock c.mutex;
      output_string c.channel line;
      output_char c.channel '\n';
      Mutex.unlock c.mutex
  | Memory m ->
      Mutex.lock m.mutex;
      m.records <- record :: m.records;
      Mutex.unlock m.mutex
  | Fn f -> f record

type run_start = {
  seed : int;
  pop_size : int;
  generations : int;
  max_bases : int;
  samples : int;
  dims : int;
}

type generation = {
  gen : int;
  evals : int;
  front_size : int;
  best_nmse : float;
  median_nmse : float;
  complexity_min : float;
  complexity_median : float;
  complexity_max : float;
  crossovers : int;
  op_counts : int array;
  depth_rejects : int;
  wall_s : float;
}

type sag_round = {
  model_index : int;
  round : int;
  chosen : int;
  press_before : float;
  press_after : float;
}

type sag_model = {
  model_index : int;
  bases_before : int;
  bases_after : int;
}

type cache_stats = {
  columns_cached : int;
  column_hits : int;
  column_misses : int;
  column_evictions : int;
  dots_cached : int;
  dot_hits : int;
  dot_misses : int;
  dot_evictions : int;
}

type run_end = {
  front : (float * float) list;
  total_wall_s : float;
}

type record =
  | Run_start of run_start
  | Generation of generation
  | Sag_round of sag_round
  | Sag_model of sag_model
  | Cache_stats of cache_stats
  | Run_end of run_end

(* --- encoding ----------------------------------------------------------- *)

(* %.17g round-trips every finite double through float_of_string; the three
   non-finite values are not valid JSON numbers and travel as strings. *)
let add_float buffer v =
  if Float.is_nan v then Buffer.add_string buffer "\"NaN\""
  else if v = Float.infinity then Buffer.add_string buffer "\"Infinity\""
  else if v = Float.neg_infinity then Buffer.add_string buffer "\"-Infinity\""
  else Buffer.add_string buffer (Printf.sprintf "%.17g" v)

let add_fields buffer kind fields =
  Buffer.add_string buffer "{\"type\":\"";
  Buffer.add_string buffer kind;
  Buffer.add_char buffer '"';
  List.iter
    (fun (name, write) ->
      Buffer.add_string buffer ",\"";
      Buffer.add_string buffer name;
      Buffer.add_string buffer "\":";
      write buffer)
    fields;
  Buffer.add_char buffer '}'

let int_field v buffer = Buffer.add_string buffer (string_of_int v)
let float_field v buffer = add_float buffer v

let int_array_field values buffer =
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (string_of_int v))
    values;
  Buffer.add_char buffer ']'

let pair_list_field pairs buffer =
  Buffer.add_char buffer '[';
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_char buffer '[';
      add_float buffer a;
      Buffer.add_char buffer ',';
      add_float buffer b;
      Buffer.add_char buffer ']')
    pairs;
  Buffer.add_char buffer ']'

let to_line record =
  let buffer = Buffer.create 160 in
  (match record with
  | Run_start r ->
      add_fields buffer "run_start"
        [
          ("seed", int_field r.seed);
          ("pop_size", int_field r.pop_size);
          ("generations", int_field r.generations);
          ("max_bases", int_field r.max_bases);
          ("samples", int_field r.samples);
          ("dims", int_field r.dims);
        ]
  | Generation g ->
      add_fields buffer "generation"
        [
          ("gen", int_field g.gen);
          ("evals", int_field g.evals);
          ("front_size", int_field g.front_size);
          ("best_nmse", float_field g.best_nmse);
          ("median_nmse", float_field g.median_nmse);
          ("complexity_min", float_field g.complexity_min);
          ("complexity_median", float_field g.complexity_median);
          ("complexity_max", float_field g.complexity_max);
          ("crossovers", int_field g.crossovers);
          ("op_counts", int_array_field g.op_counts);
          ("depth_rejects", int_field g.depth_rejects);
          ("wall_s", float_field g.wall_s);
        ]
  | Sag_round r ->
      add_fields buffer "sag_round"
        [
          ("model_index", int_field r.model_index);
          ("round", int_field r.round);
          ("chosen", int_field r.chosen);
          ("press_before", float_field r.press_before);
          ("press_after", float_field r.press_after);
        ]
  | Sag_model m ->
      add_fields buffer "sag_model"
        [
          ("model_index", int_field m.model_index);
          ("bases_before", int_field m.bases_before);
          ("bases_after", int_field m.bases_after);
        ]
  | Cache_stats c ->
      add_fields buffer "cache_stats"
        [
          ("columns_cached", int_field c.columns_cached);
          ("column_hits", int_field c.column_hits);
          ("column_misses", int_field c.column_misses);
          ("column_evictions", int_field c.column_evictions);
          ("dots_cached", int_field c.dots_cached);
          ("dot_hits", int_field c.dot_hits);
          ("dot_misses", int_field c.dot_misses);
          ("dot_evictions", int_field c.dot_evictions);
        ]
  | Run_end r ->
      add_fields buffer "run_end"
        [
          ("front", pair_list_field r.front); ("total_wall_s", float_field r.total_wall_s);
        ]);
  Buffer.contents buffer

(* --- decoding ----------------------------------------------------------- *)

(* Minimal JSON reader for the subset the encoder emits (objects, arrays,
   numbers kept as raw lexemes so 63-bit ints survive, strings, literals).
   Raw lexemes are converted per field, so integer fields never go through
   a float. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of string
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let fail message = raise (Parse_error message) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < len && text.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c at offset %d" c !pos)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal at offset %d" !pos)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buffer '"'; advance ()
               | '\\' -> Buffer.add_char buffer '\\'; advance ()
               | '/' -> Buffer.add_char buffer '/'; advance ()
               | 'b' -> Buffer.add_char buffer '\b'; advance ()
               | 'f' -> Buffer.add_char buffer '\012'; advance ()
               | 'n' -> Buffer.add_char buffer '\n'; advance ()
               | 'r' -> Buffer.add_char buffer '\r'; advance ()
               | 't' -> Buffer.add_char buffer '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub text !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the BMP code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buffer (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c ->
            Buffer.add_char buffer c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      && match text.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail (Printf.sprintf "expected a value at offset %d" start);
    J_num (String.sub text start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((name, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((name, value) :: acc)
            | _ -> fail "expected , or } in object"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected , or ] in array"
          in
          J_arr (elements [])
        end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> len then fail (Printf.sprintf "trailing input at offset %d" !pos);
  value

let obj_of = function J_obj fields -> fields | _ -> raise (Parse_error "expected an object")

let member fields name =
  match List.assoc_opt name fields with
  | Some value -> value
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let to_int name = function
  | J_num raw -> (
      match int_of_string_opt raw with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "field %S is not an integer" name)))
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not an integer" name))

let to_float name = function
  | J_num raw -> (
      match float_of_string_opt raw with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "field %S is not a number" name)))
  | J_str "NaN" -> Float.nan
  | J_str "Infinity" -> Float.infinity
  | J_str "-Infinity" -> Float.neg_infinity
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not a number" name))

let int_of fields name = to_int name (member fields name)
let float_of fields name = to_float name (member fields name)

let int_array_of fields name =
  match member fields name with
  | J_arr elements -> Array.of_list (List.map (to_int name) elements)
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not an array" name))

let pair_list_of fields name =
  match member fields name with
  | J_arr elements ->
      List.map
        (function
          | J_arr [ a; b ] -> (to_float name a, to_float name b)
          | _ -> raise (Parse_error (Printf.sprintf "field %S is not a list of pairs" name)))
        elements
  | _ -> raise (Parse_error (Printf.sprintf "field %S is not an array" name))

let of_line line =
  match parse_json line with
  | exception Parse_error message -> Error message
  | json -> (
      match
        let fields = obj_of json in
        match member fields "type" with
        | J_str "run_start" ->
            Run_start
              {
                seed = int_of fields "seed";
                pop_size = int_of fields "pop_size";
                generations = int_of fields "generations";
                max_bases = int_of fields "max_bases";
                samples = int_of fields "samples";
                dims = int_of fields "dims";
              }
        | J_str "generation" ->
            Generation
              {
                gen = int_of fields "gen";
                evals = int_of fields "evals";
                front_size = int_of fields "front_size";
                best_nmse = float_of fields "best_nmse";
                median_nmse = float_of fields "median_nmse";
                complexity_min = float_of fields "complexity_min";
                complexity_median = float_of fields "complexity_median";
                complexity_max = float_of fields "complexity_max";
                crossovers = int_of fields "crossovers";
                op_counts = int_array_of fields "op_counts";
                depth_rejects = int_of fields "depth_rejects";
                wall_s = float_of fields "wall_s";
              }
        | J_str "sag_round" ->
            Sag_round
              {
                model_index = int_of fields "model_index";
                round = int_of fields "round";
                chosen = int_of fields "chosen";
                press_before = float_of fields "press_before";
                press_after = float_of fields "press_after";
              }
        | J_str "sag_model" ->
            Sag_model
              {
                model_index = int_of fields "model_index";
                bases_before = int_of fields "bases_before";
                bases_after = int_of fields "bases_after";
              }
        | J_str "cache_stats" ->
            Cache_stats
              {
                columns_cached = int_of fields "columns_cached";
                column_hits = int_of fields "column_hits";
                column_misses = int_of fields "column_misses";
                column_evictions = int_of fields "column_evictions";
                dots_cached = int_of fields "dots_cached";
                dot_hits = int_of fields "dot_hits";
                dot_misses = int_of fields "dot_misses";
                dot_evictions = int_of fields "dot_evictions";
              }
        | J_str "run_end" ->
            Run_end
              { front = pair_list_of fields "front"; total_wall_s = float_of fields "total_wall_s" }
        | J_str other -> raise (Parse_error (Printf.sprintf "unknown record type %S" other))
        | _ -> raise (Parse_error "missing record type")
      with
      | record -> Ok record
      | exception Parse_error message -> Error message)

let deterministic = function
  | Run_start _ as record -> Some record
  | Generation g -> Some (Generation { g with wall_s = 0. })
  | Sag_round _ as record -> Some record
  | Sag_model _ as record -> Some record
  | Cache_stats _ -> None
  | Run_end r -> Some (Run_end { r with total_wall_s = 0. })

(* --- sinks -------------------------------------------------------------- *)

type sink =
  | Null
  | Channel of { channel : out_channel; mutex : Mutex.t }
  | Memory of { mutable records : record list; mutex : Mutex.t }

let null = Null
let is_null = function Null -> true | Channel _ | Memory _ -> false
let of_channel channel = Channel { channel; mutex = Mutex.create () }
let memory () = Memory { records = []; mutex = Mutex.create () }

let contents = function
  | Null | Channel _ -> []
  | Memory m ->
      Mutex.lock m.mutex;
      let records = List.rev m.records in
      Mutex.unlock m.mutex;
      records

let emit sink record =
  match sink with
  | Null -> ()
  | Channel c ->
      let line = to_line record in
      Mutex.lock c.mutex;
      output_string c.channel line;
      output_char c.channel '\n';
      Mutex.unlock c.mutex
  | Memory m ->
      Mutex.lock m.mutex;
      m.records <- record :: m.records;
      Mutex.unlock m.mutex

exception Singular

(* Householder QR.  A first pass applies reflectors H_k to a working copy of
   [a], producing R with P a = R for P = H_{n-1} … H_0.  Since each reflector
   is symmetric, Q = Pᵀ = H_0 … H_{n-1}; a second pass applies the stored
   reflectors in reverse order to a thin identity to materialize Q. *)
let qr a =
  let m = Matrix.rows a and n = Matrix.cols a in
  if m < n then invalid_arg "Decomp.qr: need rows >= cols";
  let r = Matrix.copy a in
  let reflectors = Array.make n None in
  let apply_reflector target k v vnorm2 =
    let width = Matrix.cols target in
    for j = 0 to width - 1 do
      let dot = ref 0. in
      for i = k to m - 1 do
        dot := !dot +. (v.(i) *. Matrix.get target i j)
      done;
      let factor = 2. *. !dot /. vnorm2 in
      if factor <> 0. then
        for i = k to m - 1 do
          Matrix.set target i j (Matrix.get target i j -. (factor *. v.(i)))
        done
    done
  in
  for k = 0 to n - 1 do
    let norm = ref 0. in
    for i = k to m - 1 do
      let x = Matrix.get r i k in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    if norm > 0. then begin
      let v = Array.make m 0. in
      let head = Matrix.get r k k in
      let alpha = if head >= 0. then -.norm else norm in
      v.(k) <- head -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- Matrix.get r i k
      done;
      let vnorm2 = ref 0. in
      for i = k to m - 1 do
        vnorm2 := !vnorm2 +. (v.(i) *. v.(i))
      done;
      if !vnorm2 > 0. then begin
        apply_reflector r k v !vnorm2;
        reflectors.(k) <- Some (v, !vnorm2)
      end
    end
  done;
  let q = Matrix.init m n (fun i j -> if i = j then 1. else 0.) in
  for k = n - 1 downto 0 do
    match reflectors.(k) with
    | None -> ()
    | Some (v, vnorm2) -> apply_reflector q k v vnorm2
  done;
  let r_top = Matrix.init n n (fun i j -> if i <= j then Matrix.get r i j else 0.) in
  (q, r_top)

let solve_upper_triangular r b =
  let n = Matrix.rows r in
  if Matrix.cols r <> n || Array.length b <> n then
    invalid_arg "Decomp.solve_upper_triangular: dimension mismatch";
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get r i j *. x.(j))
    done;
    let pivot = Matrix.get r i i in
    if pivot = 0. then raise Singular;
    x.(i) <- !acc /. pivot
  done;
  x

let solve_lower_triangular l b =
  let n = Matrix.rows l in
  if Matrix.cols l <> n || Array.length b <> n then
    invalid_arg "Decomp.solve_lower_triangular: dimension mismatch";
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get l i j *. x.(j))
    done;
    let pivot = Matrix.get l i i in
    if pivot = 0. then raise Singular;
    x.(i) <- !acc /. pivot
  done;
  x

let lu_solve a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Array.length b <> n then
    invalid_arg "Decomp.lu_solve: dimension mismatch";
  let work = Matrix.copy a in
  let rhs = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivoting. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Matrix.get work i k) > Float.abs (Matrix.get work !best k) then best := i
    done;
    if !best <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get work k j in
        Matrix.set work k j (Matrix.get work !best j);
        Matrix.set work !best j tmp
      done;
      let tmp = rhs.(k) in
      rhs.(k) <- rhs.(!best);
      rhs.(!best) <- tmp
    end;
    let pivot = Matrix.get work k k in
    if Float.abs pivot < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = Matrix.get work i k /. pivot in
      if factor <> 0. then begin
        for j = k to n - 1 do
          Matrix.set work i j (Matrix.get work i j -. (factor *. Matrix.get work k j))
        done;
        rhs.(i) <- rhs.(i) -. (factor *. rhs.(k))
      end
    done
  done;
  solve_upper_triangular work rhs

let cholesky a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Decomp.cholesky: not square";
  let l = Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Matrix.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Matrix.get l i k *. Matrix.get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise Singular;
        Matrix.set l i i (sqrt !acc)
      end
      else Matrix.set l i j (!acc /. Matrix.get l j j)
    done
  done;
  l

let solve_spd a b =
  let l = cholesky a in
  let y = solve_lower_triangular l b in
  solve_upper_triangular (Matrix.transpose l) y

let rank_from_r ?(tol = 1e-10) r =
  let n = min (Matrix.rows r) (Matrix.cols r) in
  let largest = ref 0. in
  for i = 0 to n - 1 do
    largest := Float.max !largest (Float.abs (Matrix.get r i i))
  done;
  let threshold = !largest *. tol in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Float.abs (Matrix.get r i i) > threshold then incr count
  done;
  !count

let gram_trace a =
  let n = Matrix.cols a in
  let g = Matrix.gram a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Matrix.get g i i
  done;
  (g, Float.max !acc 1.)

let ridge_solve ?ridge a b =
  let n = Matrix.cols a in
  let g, trace = gram_trace a in
  let lambda = match ridge with Some r -> r | None -> 1e-10 *. trace /. float_of_int n in
  let regularized =
    Matrix.init n n (fun i j ->
        let base = Matrix.get g i j in
        if i = j then base +. lambda else base)
  in
  let atb = Matrix.mul_vec (Matrix.transpose a) b in
  solve_spd regularized atb

let lstsq ?ridge a b =
  if Matrix.rows a <> Array.length b then invalid_arg "Decomp.lstsq: dimension mismatch";
  if Matrix.rows a < Matrix.cols a then ridge_solve ?ridge a b
  else
    let q, r = qr a in
    if rank_from_r r < Matrix.cols a then ridge_solve ?ridge a b
    else
      let qtb = Matrix.mul_vec (Matrix.transpose q) b in
      solve_upper_triangular r qtb

let hat_diag ?ridge a =
  let m = Matrix.rows a and n = Matrix.cols a in
  let via_ridge () =
    (* h_ii = aᵢᵀ (aᵀa + λI)⁻¹ aᵢ, one SPD solve per column of aᵀ. *)
    let g, trace = gram_trace a in
    let lambda = match ridge with Some r -> r | None -> 1e-10 *. trace /. float_of_int n in
    let regularized =
      Matrix.init n n (fun i j ->
          let base = Matrix.get g i j in
          if i = j then base +. lambda else base)
    in
    let l = cholesky regularized in
    let h = Array.make m 0. in
    for i = 0 to m - 1 do
      let ai = Matrix.row a i in
      let y = solve_lower_triangular l ai in
      let z = solve_upper_triangular (Matrix.transpose l) y in
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (ai.(k) *. z.(k))
      done;
      h.(i) <- !acc
    done;
    h
  in
  if m < n then via_ridge ()
  else
    let q, r = qr a in
    if rank_from_r r < n then via_ridge ()
    else
      Array.init m (fun i ->
          let acc = ref 0. in
          for j = 0 to n - 1 do
            let qij = Matrix.get q i j in
            acc := !acc +. (qij *. qij)
          done;
          !acc)

let press ?ridge a b =
  let coeffs = lstsq ?ridge a b in
  let predicted = Matrix.mul_vec a coeffs in
  let leverages = hat_diag ?ridge a in
  let m = Matrix.rows a in
  let acc = ref 0. in
  for i = 0 to m - 1 do
    let denom = Float.max (1. -. leverages.(i)) 1e-9 in
    let e = (b.(i) -. predicted.(i)) /. denom in
    acc := !acc +. (e *. e)
  done;
  !acc

(** Dense complex matrices and a complex linear solver.

    Used by the small-signal AC analysis in the circuit simulator, where the
    nodal admittance matrix has entries [g + jωc]. *)

type t
(** A [rows x cols] dense complex matrix. *)

val create : int -> int -> t
(** Zero matrix; dimensions must be positive. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_entry : t -> int -> int -> Complex.t -> unit
(** [add_entry m i j z] accumulates [z] into entry [(i, j)] — the natural
    operation for MNA stamping. *)

val copy : t -> t

val mul_vec : t -> Complex.t array -> Complex.t array

val solve : t -> Complex.t array -> Complex.t array
(** Gaussian elimination with partial pivoting (by modulus).
    Raises {!Decomp.Singular} when a pivot vanishes. *)

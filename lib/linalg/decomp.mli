(** Matrix decompositions and solvers.

    Provides Householder QR, Cholesky, partial-pivot LU, least squares with a
    ridge fallback for rank-deficient systems, and the hat-matrix diagonal
    needed by the PRESS statistic. *)

exception Singular
(** Raised when a solve encounters an (effectively) singular system. *)

val qr : Matrix.t -> Matrix.t * Matrix.t
(** [qr a] for an [m x n] matrix with [m >= n] returns the thin factorization
    [(q, r)] where [q] is [m x n] with orthonormal columns and [r] is
    [n x n] upper triangular with [a = q r]. *)

val solve_upper_triangular : Matrix.t -> float array -> float array
(** Back substitution; raises {!Singular} on a zero pivot. *)

val solve_lower_triangular : Matrix.t -> float array -> float array
(** Forward substitution; raises {!Singular} on a zero pivot. *)

val lu_solve : Matrix.t -> float array -> float array
(** [lu_solve a b] solves the square system [a x = b] with partial pivoting.
    Raises {!Singular} when a pivot vanishes. *)

val cholesky : Matrix.t -> Matrix.t
(** [cholesky a] is the lower-triangular [l] with [a = l lᵀ] for a symmetric
    positive-definite [a].  Raises {!Singular} otherwise. *)

val solve_spd : Matrix.t -> float array -> float array
(** Solve a symmetric positive-definite system through {!cholesky}. *)

val rank_from_r : ?tol:float -> Matrix.t -> int
(** Numerical rank estimated from the diagonal of an upper-triangular factor. *)

val lstsq : ?ridge:float -> Matrix.t -> float array -> float array
(** [lstsq a b] minimizes [‖a x - b‖₂] via QR.  When [a] is numerically
    rank-deficient the problem is re-solved as ridge regression
    [(aᵀa + λI) x = aᵀ b] with [λ = ridge] (default [1e-10] scaled by the
    Gram trace), which always succeeds. *)

val hat_diag : ?ridge:float -> Matrix.t -> float array
(** [hat_diag a] is the diagonal of the projection ("hat") matrix
    [a (aᵀa)⁻¹ aᵀ], regularized like {!lstsq} when needed.  Entry [i] is the
    leverage of sample [i]; all entries lie in [\[0, 1\]] for the unregularized
    case. *)

val press : ?ridge:float -> Matrix.t -> float array -> float
(** [press a b] is the Predicted Residual Sum of Squares for the linear model
    [a x = b]: [Σ ((b_i - ŷ_i) / (1 - h_ii))²], an O(n³) shortcut for
    leave-one-out cross-validation of the linear parameters. *)

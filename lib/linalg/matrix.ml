type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dimensions must be positive";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Matrix.of_arrays: no rows";
  let cols = Array.length arrays.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty rows";
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arrays;
  init rows cols (fun i j -> arrays.(i).(j))

let of_column v =
  let rows = Array.length v in
  if rows = 0 then invalid_arg "Matrix.of_column: empty vector";
  init rows 1 (fun i _ -> v.(i))

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix: index out of bounds"

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- v

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let column m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.column: out of bounds";
  Array.init m.rows (fun i -> get m i j)

let set_column m j v =
  if Array.length v <> m.rows then invalid_arg "Matrix.set_column: length mismatch";
  for i = 0 to m.rows - 1 do
    set m i j v.(i)
  done

let select_columns m idx =
  if Array.length idx = 0 then invalid_arg "Matrix.select_columns: no columns";
  Array.iter
    (fun j -> if j < 0 || j >= m.cols then invalid_arg "Matrix.select_columns: out of bounds")
    idx;
  init m.rows (Array.length idx) (fun i k -> get m i idx.(k))

let zip_with name op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.mapi (fun k x -> op x b.data.(k)) a.data }

let add a b = zip_with "Matrix.add" ( +. ) a b
let sub a b = zip_with "Matrix.sub" ( -. ) a b
let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          m.data.((i * m.cols) + j) <-
            m.data.((i * m.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. v.(j))
      done;
      !acc)

let gram a = mul (transpose a) a

let frobenius_norm m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let worst = ref 0. in
  Array.iteri (fun k x -> worst := Float.max !worst (Float.abs (x -. b.data.(k)))) a.data;
  !worst

let equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%12.6g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

(** Dense real matrices in row-major layout.

    Sized for the regression and circuit problems in this library (hundreds of
    rows, tens of columns); all operations are straightforward O(n^3)-or-less
    dense algorithms with no blocking. *)

type t
(** A [rows x cols] dense matrix. *)

val create : int -> int -> t
(** [create rows cols] is a zero matrix.  Dimensions must be positive. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Build from rows; all rows must share a length. *)

val to_arrays : t -> float array array

val of_column : float array -> t
(** A single-column matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val row : t -> int -> float array
val column : t -> int -> float array

val set_column : t -> int -> float array -> unit

val select_columns : t -> int array -> t
(** [select_columns m idx] keeps the listed columns, in order. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val gram : t -> t
(** [gram a] is [aᵀ a]. *)

val frobenius_norm : t -> float

val max_abs_diff : t -> t -> float
(** Largest absolute entrywise difference; matrices must share dimensions. *)

val equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within [tol] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit

type t = { rows : int; cols : int; data : Complex.t array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Cmatrix.create: dimensions must be positive";
  { rows; cols; data = Array.make (rows * cols) Complex.zero }

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Cmatrix: index out of bounds"

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j z =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- z

let add_entry m i j z = set m i j (Complex.add (get m i j) z)

let copy m = { m with data = Array.copy m.data }

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Cmatrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref Complex.zero in
      for j = 0 to m.cols - 1 do
        acc := Complex.add !acc (Complex.mul m.data.((i * m.cols) + j) v.(j))
      done;
      !acc)

let solve m b =
  let n = m.rows in
  if m.cols <> n || Array.length b <> n then invalid_arg "Cmatrix.solve: dimension mismatch";
  let work = copy m in
  let rhs = Array.copy b in
  for k = 0 to n - 1 do
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get work i k) > Complex.norm (get work !best k) then best := i
    done;
    if !best <> k then begin
      for j = 0 to n - 1 do
        let tmp = get work k j in
        set work k j (get work !best j);
        set work !best j tmp
      done;
      let tmp = rhs.(k) in
      rhs.(k) <- rhs.(!best);
      rhs.(!best) <- tmp
    end;
    let pivot = get work k k in
    if Complex.norm pivot < 1e-300 then raise Decomp.Singular;
    for i = k + 1 to n - 1 do
      let factor = Complex.div (get work i k) pivot in
      if Complex.norm factor > 0. then begin
        for j = k to n - 1 do
          set work i j (Complex.sub (get work i j) (Complex.mul factor (get work k j)))
        done;
        rhs.(i) <- Complex.sub rhs.(i) (Complex.mul factor rhs.(k))
      end
    done
  done;
  let x = Array.make n Complex.zero in
  for i = n - 1 downto 0 do
    let acc = ref rhs.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul (get work i j) x.(j))
    done;
    x.(i) <- Complex.div !acc (get work i i)
  done;
  x

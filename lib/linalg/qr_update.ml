(* Updatable thin QR via modified Gram-Schmidt with one reorthogonalization
   pass (CGS2).  Q is stored column-wise with capacity doubling; R is stored
   column-wise as well (r.(j) has length j+1) so appending never reshapes
   earlier columns.  Alongside Q/R we maintain Qᵀb, the residual b − QQᵀb
   and the leverages h_ii = Σ_j q_ij², which together make PRESS an O(n)
   read and a single-candidate probe an O(n·k) computation. *)

type t = {
  m : int;                       (* rows *)
  b : float array;               (* target, copied at create *)
  mutable k : int;               (* columns committed so far *)
  mutable q : float array array; (* q.(j), j < k: orthonormal columns *)
  mutable r : float array array; (* r.(j), j < k: length j+1 *)
  mutable qtb : float array;     (* qtb.(j) = q_jᵀ b, j < k *)
  resid : float array;           (* b − Q Qᵀ b *)
  h : float array;               (* leverages *)
  mutable max_diag : float;      (* max |r_jj| seen among committed cols *)
}

let create b =
  let m = Array.length b in
  if m = 0 then invalid_arg "Qr_update.create: empty target";
  {
    m;
    b = Array.copy b;
    k = 0;
    q = [||];
    r = [||];
    qtb = [||];
    resid = Array.copy b;
    h = Array.make m 0.;
    max_diag = 0.;
  }

let rows t = t.m
let cols t = t.k

let dot m a b =
  let acc = ref 0. in
  for i = 0 to m - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 m a = sqrt (dot m a a)

(* Columns whose orthogonalized remainder falls at or below this fraction
   of the column scale are treated as dependent on the current span —
   the same 1e-10 threshold Decomp.rank_from_r applies to R diagonals. *)
let dependence_tol = 1e-10

let ensure_capacity t =
  let cap = Array.length t.q in
  if t.k >= cap then begin
    let cap' = Int.max 4 (2 * cap) in
    let grow arr = Array.init cap' (fun j -> if j < cap then arr.(j) else [||]) in
    t.q <- grow t.q;
    t.r <- grow t.r;
    let qtb' = Array.make cap' 0. in
    Array.blit t.qtb 0 qtb' 0 cap;
    t.qtb <- qtb'
  end

(* Orthogonalize [v] (destructively) against the committed columns,
   accumulating projection coefficients into [rj].  Two MGS passes keep
   ‖Qᵀq_new‖ at machine-epsilon level, which the 1e-8 contract needs. *)
let orthogonalize t v rj =
  for _pass = 0 to 1 do
    for j = 0 to t.k - 1 do
      let qj = t.q.(j) in
      let c = dot t.m v qj in
      rj.(j) <- rj.(j) +. c;
      for i = 0 to t.m - 1 do
        v.(i) <- v.(i) -. (c *. qj.(i))
      done
    done
  done

let dependent t ~col_norm ~resid_norm =
  resid_norm <= dependence_tol *. Float.max col_norm t.max_diag

let append t col =
  if Array.length col <> t.m then invalid_arg "Qr_update.append: length mismatch";
  let v = Array.copy col in
  let col_norm = norm2 t.m col in
  let rj = Array.make (t.k + 1) 0. in
  orthogonalize t v rj;
  let nrm = norm2 t.m v in
  if dependent t ~col_norm ~resid_norm:nrm then false
  else begin
    ensure_capacity t;
    for i = 0 to t.m - 1 do
      v.(i) <- v.(i) /. nrm
    done;
    rj.(t.k) <- nrm;
    let c = dot t.m v t.b in
    t.q.(t.k) <- v;
    t.r.(t.k) <- rj;
    t.qtb.(t.k) <- c;
    for i = 0 to t.m - 1 do
      t.resid.(i) <- t.resid.(i) -. (c *. v.(i));
      t.h.(i) <- t.h.(i) +. (v.(i) *. v.(i))
    done;
    t.max_diag <- Float.max t.max_diag nrm;
    t.k <- t.k + 1;
    true
  end

let drop_last t =
  if t.k = 0 then invalid_arg "Qr_update.drop_last: no columns";
  let j = t.k - 1 in
  let qj = t.q.(j) in
  let c = t.qtb.(j) in
  for i = 0 to t.m - 1 do
    t.resid.(i) <- t.resid.(i) +. (c *. qj.(i));
    t.h.(i) <- t.h.(i) -. (qj.(i) *. qj.(i))
  done;
  t.k <- j;
  (* Drop the columns' storage so down-dated memory can be reclaimed and
     recompute max_diag from the surviving R diagonals. *)
  t.q.(j) <- [||];
  t.r.(j) <- [||];
  t.qtb.(j) <- 0.;
  let md = ref 0. in
  for i = 0 to t.k - 1 do
    md := Float.max !md (Float.abs t.r.(i).(i))
  done;
  t.max_diag <- !md

let coefficients t =
  let x = Array.make t.k 0. in
  for j = t.k - 1 downto 0 do
    (* Row j of R lives spread across columns j..k-1: R[j][col] = r.(col).(j). *)
    let acc = ref t.qtb.(j) in
    for col = j + 1 to t.k - 1 do
      acc := !acc -. (t.r.(col).(j) *. x.(col))
    done;
    let pivot = t.r.(j).(j) in
    if pivot = 0. then raise Decomp.Singular;
    x.(j) <- !acc /. pivot
  done;
  x

let leverages t = Array.copy t.h
let residual t = Array.copy t.resid

let predictions t =
  Array.init t.m (fun i -> t.b.(i) -. t.resid.(i))

let press_of ~m ~resid ~h =
  let acc = ref 0. in
  for i = 0 to m - 1 do
    let e = resid.(i) /. Float.max (1. -. h.(i)) 1e-9 in
    acc := !acc +. (e *. e)
  done;
  !acc

let press t = press_of ~m:t.m ~resid:t.resid ~h:t.h

let press_probe t col =
  if Array.length col <> t.m then invalid_arg "Qr_update.press_probe: length mismatch";
  let v = Array.copy col in
  let col_norm = norm2 t.m col in
  let rj = Array.make (t.k + 1) 0. in
  orthogonalize t v rj;
  let nrm = norm2 t.m v in
  if dependent t ~col_norm ~resid_norm:nrm then None
  else begin
    let c = dot t.m v t.b /. nrm in
    (* With u = v/nrm the updated residual is resid − (c/1)·u and the
       updated leverage is h_i + u_i²; accumulate PRESS directly instead
       of materializing the updated vectors. *)
    let acc = ref 0. in
    for i = 0 to t.m - 1 do
      let u = v.(i) /. nrm in
      let r = t.resid.(i) -. (c *. u) in
      let hh = t.h.(i) +. (u *. u) in
      let e = r /. Float.max (1. -. hh) 1e-9 in
      acc := !acc +. (e *. e)
    done;
    Some !acc
  end

(** Updatable thin-QR factorization for incremental least squares.

    {!Decomp.qr} refactorizes from scratch: fitting "chosen ∪ candidate"
    during PRESS-guided forward selection costs O(n·k²) per candidate even
    though only one column changed.  This module maintains a thin
    Gram–Schmidt factorization [A = Q R] of a growing column set together
    with the three quantities every leave-one-out score needs — [Qᵀb], the
    residual [b − Q Qᵀ b], and the leverages [h_ii = Σ_j q_ij²] — all
    updated in O(n·k) on {!append} and O(n) on {!drop_last}.

    Candidate scoring uses {!press_probe}, which evaluates the PRESS of the
    current columns plus one trial column {e without mutating} the
    factorization: probes are read-only, so one shared factorization can be
    probed concurrently from a domain pool while the commit ({!append})
    stays on the calling domain.

    Numerical contract: on full-column-rank inputs, {!coefficients},
    {!press} and {!leverages} agree with the scratch Householder path
    ({!Decomp.lstsq} / {!Decomp.press} / {!Decomp.hat_diag}) to well within
    1e-8 relative (orthogonality is kept by a second Gram–Schmidt pass).
    Columns that are numerically dependent on the span are {e rejected} by
    {!append}/{!press_probe}; callers fall back to the scratch ridge path,
    mirroring {!Decomp.lstsq}'s rank-deficient behaviour. *)

type t
(** A thin-QR factorization of the columns appended so far, bound to one
    target vector [b]. *)

val create : float array -> t
(** [create b] is the empty factorization (zero columns) for target [b].
    The target is copied.  Raises [Invalid_argument] on an empty target. *)

val rows : t -> int
val cols : t -> int
(** Number of columns currently in the factorization. *)

val append : t -> float array -> bool
(** [append t col] orthogonalizes [col] against the current columns
    (modified Gram–Schmidt with one reorthogonalization pass) and commits
    it, updating [R], [Qᵀb], the residual and the leverages in O(n·k).
    Returns [false] — leaving the factorization unchanged — when [col] is
    numerically dependent on the current span (norm of the orthogonalized
    remainder at or below 1e-10 of the column scale), which is exactly
    when the scratch path would fall back to ridge regression.  Raises
    [Invalid_argument] on a length mismatch. *)

val drop_last : t -> unit
(** Down-date: remove the most recently appended column, restoring the
    residual and leverages in O(n).  Raises [Invalid_argument] when the
    factorization has no columns. *)

val coefficients : t -> float array
(** Least-squares coefficients of the current columns: the solution of
    [R x = Qᵀ b] by back substitution.  Raises {!Decomp.Singular} on a
    zero pivot (unreachable when every {!append} returned [true]). *)

val leverages : t -> float array
(** Fresh copy of the hat-matrix diagonal [h_ii] of the current columns. *)

val residual : t -> float array
(** Fresh copy of [b − Q Qᵀ b], the least-squares residual. *)

val predictions : t -> float array
(** Fresh copy of the fitted values [b − residual]. *)

val press : t -> float
(** PRESS of the current columns: [Σ ((r_i) / max(1 − h_ii, 1e-9))²] —
    the same clamped formula as {!Decomp.press}. *)

val press_probe : t -> float array -> float option
(** [press_probe t col] is the PRESS of the current columns {e plus}
    [col], computed in O(n·k) without mutating [t]; [None] when [col] is
    numerically dependent on the current span (same test as {!append}).
    Safe to call concurrently from several domains. *)

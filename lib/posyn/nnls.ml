module Matrix = Caffeine_linalg.Matrix
module Decomp = Caffeine_linalg.Decomp

(* Lawson & Hanson (1974), "Solving Least Squares Problems", chapter 23.
   P is the passive (free) set, R the active (zeroed) set.  Each outer step
   moves the most promising column into P; the inner loop backtracks along
   the segment between the current x and the unconstrained solution on P
   until feasibility is restored. *)
let solve ?(max_iterations = 1000) ?tolerance ?max_active a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if Array.length b <> m then invalid_arg "Nnls.solve: dimension mismatch";
  let cap = match max_active with Some c -> min c n | None -> n in
  let x = Array.make n 0. in
  let in_passive = Array.make n false in
  let passive_count = ref 0 in
  let tol =
    match tolerance with
    | Some t -> t
    | None ->
        let scale = Matrix.frobenius_norm a in
        1e-10 *. Float.max 1. scale
  in
  let residual () =
    let ax = Matrix.mul_vec a x in
    Array.init m (fun i -> b.(i) -. ax.(i))
  in
  let gradient () =
    let r = residual () in
    Array.init n (fun j ->
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (Matrix.get a i j *. r.(i))
        done;
        !acc)
  in
  let passive_indices () =
    let out = ref [] in
    for j = n - 1 downto 0 do
      if in_passive.(j) then out := j :: !out
    done;
    Array.of_list !out
  in
  let unconstrained_on_passive () =
    let idx = passive_indices () in
    let sub = Matrix.select_columns a idx in
    let z_sub = Decomp.lstsq sub b in
    let z = Array.make n 0. in
    Array.iteri (fun k j -> z.(j) <- z_sub.(k)) idx;
    z
  in
  let outer = ref 0 in
  let finished = ref false in
  while (not !finished) && !outer < max_iterations do
    incr outer;
    let w = gradient () in
    (* Choose the most violated column in R. *)
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if (not in_passive.(j)) && w.(j) > tol then
        if !best < 0 || w.(j) > w.(!best) then best := j
    done;
    if !best < 0 || !passive_count >= cap then finished := true
    else begin
      in_passive.(!best) <- true;
      incr passive_count;
      let inner_done = ref false in
      let inner = ref 0 in
      while (not !inner_done) && !inner < max_iterations do
        incr inner;
        let z = unconstrained_on_passive () in
        let all_positive =
          Array.for_all (fun j -> not in_passive.(j) || z.(j) > 0.) (Array.init n (fun j -> j))
        in
        if all_positive then begin
          Array.iteri (fun j passive -> if passive then x.(j) <- z.(j) else x.(j) <- 0.) in_passive;
          inner_done := true
        end
        else begin
          (* Step towards z, stopping at the first coefficient that hits 0. *)
          let alpha = ref Float.infinity in
          for j = 0 to n - 1 do
            if in_passive.(j) && z.(j) <= 0. then begin
              let denom = x.(j) -. z.(j) in
              if denom > 0. then alpha := Float.min !alpha (x.(j) /. denom)
            end
          done;
          let alpha = if Float.is_finite !alpha then !alpha else 0. in
          for j = 0 to n - 1 do
            if in_passive.(j) then begin
              x.(j) <- x.(j) +. (alpha *. (z.(j) -. x.(j)));
              if x.(j) <= 1e-14 then begin
                x.(j) <- 0.;
                in_passive.(j) <- false;
                decr passive_count
              end
            end
          done;
          if !passive_count = 0 then inner_done := true
        end
      done
    end
  done;
  x

(** Posynomial performance models — the comparison baseline of the paper
    (Daems, Gielen & Sansen, DAC'02 / TCAD'03).

    A posynomial is a sum of monomials with positive coefficients:
    [f(x) = Σ_k c_k · Π_i x_i^(a_ik)], [c_k > 0].  Following the published
    approach we fix a template — an order-2 candidate set with single-variable
    terms [x_i^e] ([e ∈ {-2,-1,1,2}]) and pairwise products/ratios
    [x_i^(±1) · x_j^(±1)] — and learn the coefficients from simulation data,
    here by non-negative least squares (which also performs the template's
    term selection).  A free-sign intercept and a global sign flip let the
    template fit negative-valued performances such as SRn.

    This captures the baseline's defining characteristics the paper argues
    against: a fixed functional template, dozens of terms, and no guarantee
    that the data is posynomial at all. *)

type model = {
  exponents : int array array;  (** candidate monomial exponents, per term *)
  coefficients : float array;  (** same length; >= 0, mostly zero *)
  intercept : float;
  sign : float;  (** +1 or -1: the template fits [sign · y] *)
  train_error : float;  (** normalized error on the fitting data *)
}

val candidate_exponents : dims:int -> max_single_exponent:int -> int array array
(** The order-2 template: single-variable and pairwise exponent vectors. *)

val fit : ?max_terms:int -> inputs:float array array -> targets:float array -> unit -> model
(** Fit the template by NNLS ([max_terms] caps the active monomials,
    default 40 — "dozens of terms").  Raises [Invalid_argument] on
    non-positive design-variable values (posynomials require x > 0) or
    shape mismatches. *)

val predict : model -> float array array -> float array

val error_on : model -> inputs:float array array -> targets:float array -> float
(** Normalized error, [infinity] if predictions are not finite. *)

val num_terms : model -> int
(** Count of strictly positive coefficients. *)

val to_string : var_names:string array -> model -> string
(** Human-readable rendering of the (typically long) model. *)

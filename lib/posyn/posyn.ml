module Matrix = Caffeine_linalg.Matrix
module Stats = Caffeine_util.Stats

type model = {
  exponents : int array array;
  coefficients : float array;
  intercept : float;
  sign : float;
  train_error : float;
}

let candidate_exponents ~dims ~max_single_exponent =
  if dims < 1 then invalid_arg "Posyn.candidate_exponents: dims < 1";
  if max_single_exponent < 1 then invalid_arg "Posyn.candidate_exponents: exponent < 1";
  let candidates = ref [] in
  let add vector = candidates := vector :: !candidates in
  for i = 0 to dims - 1 do
    for e = 1 to max_single_exponent do
      let up = Array.make dims 0 in
      up.(i) <- e;
      add up;
      let down = Array.make dims 0 in
      down.(i) <- -e;
      add down
    done
  done;
  for i = 0 to dims - 1 do
    for j = i + 1 to dims - 1 do
      List.iter
        (fun (ei, ej) ->
          let v = Array.make dims 0 in
          v.(i) <- ei;
          v.(j) <- ej;
          add v)
        [ (1, 1); (1, -1); (-1, 1); (-1, -1) ]
    done
  done;
  Array.of_list (List.rev !candidates)

let monomial_value exponents x =
  let acc = ref 1. in
  Array.iteri
    (fun i e ->
      if e <> 0 then begin
        let rec power acc base k = if k = 0 then acc else power (acc *. base) base (k - 1) in
        let magnitude = power 1. x.(i) (abs e) in
        acc := if e > 0 then !acc *. magnitude else !acc /. magnitude
      end)
    exponents;
  !acc

let check_inputs inputs =
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          if v <= 0. then invalid_arg "Posyn: design variables must be positive")
        row)
    inputs

let fit ?(max_terms = 40) ~inputs ~targets () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Posyn.fit: no samples";
  if Array.length targets <> n then invalid_arg "Posyn.fit: inputs/targets length mismatch";
  check_inputs inputs;
  let dims = Array.length inputs.(0) in
  let exponents = candidate_exponents ~dims ~max_single_exponent:2 in
  let k = Array.length exponents in
  let mean = Stats.mean targets in
  let sign = if mean < 0. then -1. else 1. in
  let flipped = Array.map (fun y -> sign *. y) targets in
  (* Columns are normalized monomials so NNLS treats all scales fairly; the
     two extra columns (+1 / -1) implement a free-sign intercept. *)
  let scales =
    Array.map
      (fun e ->
        let magnitude =
          Array.fold_left (fun acc x -> acc +. Float.abs (monomial_value e x)) 0. inputs
          /. float_of_int n
        in
        if magnitude > 0. then magnitude else 1.)
      exponents
  in
  let design =
    Matrix.init n (k + 2) (fun i j ->
        if j < k then monomial_value exponents.(j) inputs.(i) /. scales.(j)
        else if j = k then 1.
        else -1.)
  in
  (* The active-set cap counts the two intercept columns too; tighten and
     re-solve until at most [max_terms] monomials are active. *)
  let raw =
    let rec solve_with cap =
      let raw = Nnls.solve ~max_active:cap design flipped in
      let active_monomials =
        let count = ref 0 in
        for j = 0 to k - 1 do
          if raw.(j) > 0. then incr count
        done;
        !count
      in
      if active_monomials <= max_terms || cap <= 1 then raw
      else solve_with (cap - (active_monomials - max_terms))
    in
    solve_with (max_terms + 2)
  in
  let coefficients = Array.init k (fun j -> raw.(j) /. scales.(j)) in
  let intercept = raw.(k) -. raw.(k + 1) in
  let model = { exponents; coefficients; intercept; sign; train_error = 0. } in
  let predictions_flipped =
    Array.map
      (fun x ->
        Array.to_seq (Array.mapi (fun j c -> c *. monomial_value exponents.(j) x) coefficients)
        |> Seq.fold_left ( +. ) intercept)
      inputs
  in
  let train_error =
    Stats.normalized_error flipped predictions_flipped
  in
  { model with train_error }

let predict model inputs =
  Array.map
    (fun x ->
      let acc = ref model.intercept in
      Array.iteri
        (fun j c -> if c > 0. then acc := !acc +. (c *. monomial_value model.exponents.(j) x))
        model.coefficients;
      model.sign *. !acc)
    inputs

let error_on model ~inputs ~targets =
  let predictions = predict model inputs in
  if Stats.is_finite_array predictions then Stats.normalized_error targets predictions
  else Float.infinity

let num_terms model = Array.fold_left (fun acc c -> if c > 0. then acc + 1 else acc) 0 model.coefficients

let to_string ~var_names model =
  let buffer = Buffer.create 256 in
  if model.sign < 0. then Buffer.add_string buffer "-(";
  Buffer.add_string buffer (Printf.sprintf "%.4g" model.intercept);
  Array.iteri
    (fun j c ->
      if c > 0. then begin
        Buffer.add_string buffer (Printf.sprintf " + %.4g" c);
        Array.iteri
          (fun i e ->
            if e <> 0 then begin
              let name = if i < Array.length var_names then var_names.(i) else Printf.sprintf "x%d" i in
              if e = 1 then Buffer.add_string buffer (Printf.sprintf " * %s" name)
              else Buffer.add_string buffer (Printf.sprintf " * %s^%d" name e)
            end)
          model.exponents.(j)
      end)
    model.coefficients;
  if model.sign < 0. then Buffer.add_string buffer ")";
  Buffer.contents buffer

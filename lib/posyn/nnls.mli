(** Non-negative least squares, Lawson–Hanson active-set algorithm.

    Solves [min ‖A x − b‖₂ subject to x ≥ 0].  Used to fit posynomial
    models, whose defining constraint is positive monomial coefficients. *)

val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?max_active:int ->
  Caffeine_linalg.Matrix.t ->
  float array ->
  float array
(** [solve a b] returns the coefficient vector.  [max_active] caps the
    number of strictly-positive coefficients (the template's "dozens of
    terms"); default unlimited.  [tolerance] is the dual-feasibility
    threshold on the gradient (default [1e-10] scaled by the problem).
    Raises [Invalid_argument] on dimension mismatch. *)

(** Streaming Gram accumulator: build every product {!Linfit.fit_gram}
    needs — [⟨colᵢ, colⱼ⟩], [⟨colᵢ, y⟩], [⟨colᵢ, 1⟩], per-column
    finiteness — in one pass over row chunks, without ever materializing a
    full column.

    Each scalar accumulates row products in global row order (the
    accumulator is carried across chunk boundaries), so the result is
    bit-identical to the sequential dot product over the dense column —
    not merely close: streaming and in-memory fits agree to the last IEEE
    bit, which keeps Pareto fronts byte-identical across the two data
    paths.  See DESIGN.md §7j. *)

type t

val create : int -> t
(** [create k] starts an accumulator for [k] columns, all products zero.
    Raises [Invalid_argument] when [k < 1]. *)

val update : t -> columns:float array array -> targets:float array -> row0:int -> len:int -> unit
(** Feed the chunk covering rows [row0 .. row0+len-1]: [columns.(i)] holds
    column [i]'s values for those rows in its first [len] cells (longer
    scratch buffers are fine), [targets] is the full dense target vector.
    Chunks must arrive in row order with no gaps ([row0] must equal
    {!rows_seen}); raises [Invalid_argument] otherwise. *)

val rows_seen : t -> int

val dot : t -> int -> int -> float
(** [⟨colᵢ, colⱼ⟩] over the rows seen so far (symmetric). *)

val dot_y : t -> int -> float
val col_sum : t -> int -> float

val finite : t -> int -> bool
(** Whether every value of column [i] seen so far is finite — the
    streaming stand-in for [Stats.is_finite_array] on the dense column. *)

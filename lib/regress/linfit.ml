module Matrix = Caffeine_linalg.Matrix
module Decomp = Caffeine_linalg.Decomp
module Stats = Caffeine_util.Stats

type t = {
  intercept : float;
  weights : float array;
  predictions : float array;
  train_error : float;
}

let check_columns name columns =
  let k = Array.length columns in
  if k = 0 then invalid_arg (name ^ ": no columns");
  let n = Array.length columns.(0) in
  if n = 0 then invalid_arg (name ^ ": empty columns");
  Array.iter
    (fun col ->
      if Array.length col <> n then invalid_arg (name ^ ": ragged columns");
      if not (Stats.is_finite_array col) then invalid_arg (name ^ ": non-finite basis values"))
    columns;
  n

let design_matrix columns =
  let n = check_columns "Linfit.design_matrix" columns in
  let k = Array.length columns in
  Matrix.init n (k + 1) (fun i j -> if j = 0 then 1. else columns.(j - 1).(i))

let fit_constant ~targets =
  if Array.length targets = 0 then invalid_arg "Linfit.fit_constant: no targets";
  let intercept = Stats.mean targets in
  let predictions = Array.map (fun _ -> intercept) targets in
  {
    intercept;
    weights = [||];
    predictions;
    train_error = Stats.normalized_error targets predictions;
  }

let fit ~basis_values ~targets =
  if Array.length basis_values = 0 then fit_constant ~targets
  else begin
    let design = design_matrix basis_values in
    if Matrix.rows design <> Array.length targets then
      invalid_arg "Linfit.fit: sample count mismatch";
    let coeffs = Decomp.lstsq design targets in
    let predictions = Matrix.mul_vec design coeffs in
    {
      intercept = coeffs.(0);
      weights = Array.sub coeffs 1 (Array.length coeffs - 1);
      predictions;
      train_error = Stats.normalized_error targets predictions;
    }
  end

let predict model ~basis_values =
  if Array.length basis_values <> Array.length model.weights then
    invalid_arg "Linfit.predict: basis count mismatch";
  if Array.length basis_values = 0 then
    Array.make (Array.length model.predictions) model.intercept
  else begin
    let n = check_columns "Linfit.predict" basis_values in
    Array.init n (fun i ->
        let acc = ref model.intercept in
        Array.iteri (fun j col -> acc := !acc +. (model.weights.(j) *. col.(i))) basis_values;
        !acc)
  end

let press ~basis_values ~targets =
  if Array.length basis_values = 0 then begin
    (* Intercept-only: h_ii = 1/n for every sample. *)
    let n = Array.length targets in
    if n = 0 then invalid_arg "Linfit.press: no targets";
    let m = Stats.mean targets in
    let shrink = 1. -. (1. /. float_of_int n) in
    Array.fold_left
      (fun acc y ->
        let e = (y -. m) /. Float.max shrink 1e-9 in
        acc +. (e *. e))
      0. targets
  end
  else Decomp.press (design_matrix basis_values) targets

let forward_select ?pool ?max_bases ?(tolerance = 1e-6) ~basis_values ~targets () =
  let total = Array.length basis_values in
  let cap = match max_bases with Some m -> min m total | None -> total in
  let usable = Array.map Stats.is_finite_array basis_values in
  let chosen_mask = Array.make total false in
  let chosen = ref [] in (* reverse selection order *)
  let chosen_columns = ref [||] in (* selection order, ready for [press] *)
  let chosen_count = ref 0 in
  let current_press = ref (press ~basis_values:[||] ~targets) in
  let continue = ref true in
  (* Candidate scores within one round are independent of each other: each
     reads only the already-chosen columns, fixed for the round.  A
     non-finite score (including a singular fit) marks the candidate
     unusable this round. *)
  let score candidate =
    if usable.(candidate) && not chosen_mask.(candidate) then
      let columns = Array.append !chosen_columns [| basis_values.(candidate) |] in
      match press ~basis_values:columns ~targets with
      | score -> score
      | exception Caffeine_linalg.Decomp.Singular -> Float.nan
    else Float.nan
  in
  let candidates = Array.init total Fun.id in
  while !continue && !chosen_count < cap do
    let scores =
      match pool with
      | Some pool -> Caffeine_par.Pool.parallel_map pool score candidates
      | None -> Array.map score candidates
    in
    let best = ref None in
    Array.iteri
      (fun candidate score ->
        if Float.is_finite score then
          match !best with
          | Some (_, best_score) when best_score <= score -> ()
          | Some _ | None -> best := Some (candidate, score))
      scores;
    match !best with
    | Some (candidate, score) when score < !current_press *. (1. -. tolerance) ->
        chosen_mask.(candidate) <- true;
        chosen := candidate :: !chosen;
        chosen_columns := Array.append !chosen_columns [| basis_values.(candidate) |];
        incr chosen_count;
        current_press := score
    | Some _ | None -> continue := false
  done;
  Array.of_list (List.rev !chosen)

module Matrix = Caffeine_linalg.Matrix
module Decomp = Caffeine_linalg.Decomp
module Qr_update = Caffeine_linalg.Qr_update
module Stats = Caffeine_util.Stats
module Metrics = Caffeine_obs.Metrics

(* Eager handles into the default registry (module initialization runs on
   the main domain; the updates themselves are atomic and fire from pool
   workers).  The fallback counters are the interesting ones: they count
   how often the fast incremental/Gram paths gave up and refactorized. *)
let m_fits = Metrics.counter Metrics.default "linfit.fits"
let m_qr_fallbacks = Metrics.counter Metrics.default "linfit.qr_fallbacks"
let m_gram_fits = Metrics.counter Metrics.default "linfit.gram_fits"
let m_gram_fallbacks = Metrics.counter Metrics.default "linfit.gram_fallbacks"
let m_forward_rounds = Metrics.counter Metrics.default "linfit.forward_rounds"

type t = {
  intercept : float;
  weights : float array;
  predictions : float array;
  train_error : float;
}

let check_columns name columns =
  let k = Array.length columns in
  if k = 0 then invalid_arg (name ^ ": no columns");
  let n = Array.length columns.(0) in
  if n = 0 then invalid_arg (name ^ ": empty columns");
  Array.iter
    (fun col ->
      if Array.length col <> n then invalid_arg (name ^ ": ragged columns");
      if not (Stats.is_finite_array col) then invalid_arg (name ^ ": non-finite basis values"))
    columns;
  n

let design_matrix columns =
  let n = check_columns "Linfit.design_matrix" columns in
  let k = Array.length columns in
  Matrix.init n (k + 1) (fun i j -> if j = 0 then 1. else columns.(j - 1).(i))

let fit_constant ~targets =
  if Array.length targets = 0 then invalid_arg "Linfit.fit_constant: no targets";
  let intercept = Stats.mean targets in
  let predictions = Array.map (fun _ -> intercept) targets in
  {
    intercept;
    weights = [||];
    predictions;
    train_error = Stats.normalized_error targets predictions;
  }

(* Updatable factorization of [ones | columns]; [None] when any column is
   numerically dependent on the ones appended before it — exactly the cases
   where the scratch path falls back to ridge regression, which the callers
   below reproduce by refactorizing with [Decomp]. *)
let incremental_design columns targets =
  let n = Array.length targets in
  let qr = Qr_update.create targets in
  if not (Qr_update.append qr (Array.make n 1.)) then None
  else
    let rec add j =
      if j >= Array.length columns then Some qr
      else if Qr_update.append qr columns.(j) then add (j + 1)
      else None
    in
    add 0

let fit ~basis_values ~targets =
  if Array.length basis_values = 0 then fit_constant ~targets
  else begin
    let n = check_columns "Linfit.fit" basis_values in
    if n <> Array.length targets then invalid_arg "Linfit.fit: sample count mismatch";
    let finish coeffs predictions =
      {
        intercept = coeffs.(0);
        weights = Array.sub coeffs 1 (Array.length coeffs - 1);
        predictions;
        train_error = Stats.normalized_error targets predictions;
      }
    in
    Metrics.incr m_fits;
    match incremental_design basis_values targets with
    | Some qr -> finish (Qr_update.coefficients qr) (Qr_update.predictions qr)
    | None ->
        Metrics.incr m_qr_fallbacks;
        let design = design_matrix basis_values in
        let coeffs = Decomp.lstsq design targets in
        finish coeffs (Matrix.mul_vec design coeffs)
  end

let predict model ~basis_values =
  if Array.length basis_values <> Array.length model.weights then
    invalid_arg "Linfit.predict: basis count mismatch";
  if Array.length basis_values = 0 then
    Array.make (Array.length model.predictions) model.intercept
  else begin
    let n = check_columns "Linfit.predict" basis_values in
    Array.init n (fun i ->
        let acc = ref model.intercept in
        Array.iteri (fun j col -> acc := !acc +. (model.weights.(j) *. col.(i))) basis_values;
        !acc)
  end

let press ~basis_values ~targets =
  if Array.length basis_values = 0 then begin
    (* Intercept-only: h_ii = 1/n for every sample. *)
    let n = Array.length targets in
    if n = 0 then invalid_arg "Linfit.press: no targets";
    let m = Stats.mean targets in
    let shrink = 1. -. (1. /. float_of_int n) in
    Array.fold_left
      (fun acc y ->
        let e = (y -. m) /. Float.max shrink 1e-9 in
        acc +. (e *. e))
      0. targets
  end
  else begin
    let n = check_columns "Linfit.press" basis_values in
    if n <> Array.length targets then invalid_arg "Linfit.press: sample count mismatch";
    match incremental_design basis_values targets with
    | Some qr -> Qr_update.press qr
    | None ->
        Metrics.incr m_qr_fallbacks;
        Decomp.press (design_matrix basis_values) targets
  end

(* Shared core of the normal-equations fast path: assemble the bordered
   Gram matrix from the supplied products and solve it with the guards —
   unit-diagonal equilibration, a minimum Cholesky-pivot threshold, one
   iterative-refinement step.  [None] means a guard tripped and the caller
   must take its QR fallback.  Both the dense ({!fit_gram}) and the
   streaming ({!fit_stream}) entry points run exactly this code, so a
   given set of products yields the same coefficients word for word on
   either data path. *)
let gram_coefficients ~dot ~dot_y ~col_sum ~n ~k ~targets =
  let dim = k + 1 in
  let g =
    Matrix.init dim dim (fun i j ->
        if i = 0 && j = 0 then float_of_int n
        else if i = 0 then col_sum (j - 1)
        else if j = 0 then col_sum (i - 1)
        else dot (i - 1) (j - 1))
  in
  let degenerate = ref false in
  let d =
    Array.init dim (fun i ->
        let gii = Matrix.get g i i in
        if Float.is_finite gii && gii > 0. then 1. /. sqrt gii
        else begin
          degenerate := true;
          1.
        end)
  in
  if !degenerate then None
  else begin
    let gs = Matrix.init dim dim (fun i j -> d.(i) *. Matrix.get g i j *. d.(j)) in
    let rs =
      Array.init dim (fun i ->
          let raw = if i = 0 then Array.fold_left ( +. ) 0. targets else dot_y (i - 1) in
          d.(i) *. raw)
    in
    match Decomp.cholesky gs with
    | exception Decomp.Singular -> None
    | l ->
        let min_pivot = ref Float.infinity and max_pivot = ref 0. in
        for i = 0 to dim - 1 do
          let p = Matrix.get l i i in
          if p < !min_pivot then min_pivot := p;
          if p > !max_pivot then max_pivot := p
        done;
        (* Pivot ratio ~ 1/sqrt(cond): below 1e-3 the squared conditioning
           threatens the 1e-8 agreement contract, so use QR instead. *)
        if !min_pivot < 1e-3 *. !max_pivot then None
        else begin
          let lt = Matrix.transpose l in
          let solve b = Decomp.solve_upper_triangular lt (Decomp.solve_lower_triangular l b) in
          let x0 = solve rs in
          let residual =
            Array.init dim (fun i ->
                let acc = ref rs.(i) in
                for j = 0 to dim - 1 do
                  acc := !acc -. (Matrix.get gs i j *. x0.(j))
                done;
                !acc)
          in
          let dx = solve residual in
          Some (Array.init dim (fun i -> (x0.(i) +. dx.(i)) *. d.(i)))
        end
  end

let finish_gram ~coeffs ~k ~predictions ~targets =
  {
    intercept = coeffs.(0);
    weights = Array.sub coeffs 1 k;
    predictions;
    train_error = Stats.normalized_error targets predictions;
  }

(* Per-individual fast path: solve the normal equations from a bordered
   Gram matrix whose entries the caller supplies (typically memoized dot
   products shared across the population), falling back to the QR path
   ({!fit}) whenever a conditioning guard trips. *)
let fit_gram ~dot ~dot_y ~col_sum ~basis_values ~targets =
  let k = Array.length basis_values in
  if k = 0 then fit_constant ~targets
  else begin
    let n = check_columns "Linfit.fit_gram" basis_values in
    if n <> Array.length targets then invalid_arg "Linfit.fit_gram: sample count mismatch";
    Metrics.incr m_gram_fits;
    match gram_coefficients ~dot ~dot_y ~col_sum ~n ~k ~targets with
    | None ->
        Metrics.incr m_gram_fallbacks;
        fit ~basis_values ~targets
    | Some coeffs ->
        let predictions =
          Array.init n (fun i ->
              let acc = ref coeffs.(0) in
              for j = 0 to k - 1 do
                acc := !acc +. (coeffs.(j + 1) *. basis_values.(j).(i))
              done;
              !acc)
        in
        finish_gram ~coeffs ~k ~predictions ~targets
  end

(* Streaming variant: identical solve, but basis values arrive as row
   chunks through [iter] instead of materialized columns.  The prediction
   for each sample is computed with the same per-row operation order as
   {!fit_gram}'s loop (each sample's accumulation is independent), so the
   two paths return bit-identical predictions given bit-identical
   products.  The QR fallback has no streaming form — it materializes the
   columns through one [iter] pass and delegates to {!fit}, which is the
   same computation the dense fallback performs. *)
let fit_stream ~dot ~dot_y ~col_sum ~k ~n ~iter ~targets =
  if k = 0 then fit_constant ~targets
  else begin
    if n < 1 then invalid_arg "Linfit.fit_stream: empty dataset";
    if n <> Array.length targets then invalid_arg "Linfit.fit_stream: sample count mismatch";
    Metrics.incr m_gram_fits;
    match gram_coefficients ~dot ~dot_y ~col_sum ~n ~k ~targets with
    | None ->
        Metrics.incr m_gram_fallbacks;
        let basis_values = Array.init k (fun _ -> Array.make n 0.) in
        iter (fun ~row0 ~len (columns : float array array) ->
            for j = 0 to k - 1 do
              Array.blit columns.(j) 0 basis_values.(j) row0 len
            done);
        fit ~basis_values ~targets
    | Some coeffs ->
        let predictions = Array.make n 0. in
        iter (fun ~row0 ~len (columns : float array array) ->
            for i = 0 to len - 1 do
              let acc = ref coeffs.(0) in
              for j = 0 to k - 1 do
                acc := !acc +. (coeffs.(j + 1) *. columns.(j).(i))
              done;
              predictions.(row0 + i) <- !acc
            done);
        finish_gram ~coeffs ~k ~predictions ~targets
  end

let forward_select ?(executor = Caffeine_par.Executor.sequential) ?max_bases
    ?(tolerance = 1e-6) ?on_round ~basis_values ~targets () =
  let total = Array.length basis_values in
  let cap = match max_bases with Some m -> min m total | None -> total in
  let n = Array.length targets in
  if n = 0 then invalid_arg "Linfit.press: no targets";
  let usable = Array.map Stats.is_finite_array basis_values in
  let chosen_mask = Array.make total false in
  let chosen = ref [] in (* reverse selection order *)
  let chosen_store = Array.make (Stdlib.max cap 1) [||] in
      (* selection order; one slot written per accepted round — the scratch
         path below never reallocates a chosen∪candidate array per score *)
  let chosen_count = ref 0 in
  (* One live factorization of [ones | chosen], committed to once per
     accepted round.  Candidate scoring probes it without mutation, so a
     pool can fan the probes across domains; once a selected column is
     numerically dependent on the span the factorization is abandoned and
     every later score takes the scratch ridge path. *)
  let qr = Qr_update.create targets in
  let live = ref (Qr_update.append qr (Array.make n 1.)) in
  let scratch_press candidate =
    let k = !chosen_count in
    let cand = basis_values.(candidate) in
    let design =
      Matrix.init n
        (k + 2)
        (fun i j -> if j = 0 then 1. else if j <= k then chosen_store.(j - 1).(i) else cand.(i))
    in
    Decomp.press design targets
  in
  let current_press =
    ref (if !live then Qr_update.press qr else press ~basis_values:[||] ~targets)
  in
  let continue = ref true in
  (* Candidate scores within one round are independent of each other: each
     reads only the round's frozen factorization and the already-chosen
     columns.  A non-finite score (including a singular fit) marks the
     candidate unusable this round. *)
  let score candidate =
    if usable.(candidate) && not chosen_mask.(candidate) then
      match
        if !live then
          match Qr_update.press_probe qr basis_values.(candidate) with
          | Some value -> value
          | None -> scratch_press candidate
        else scratch_press candidate
      with
      | value -> value
      | exception Decomp.Singular -> Float.nan
    else Float.nan
  in
  let candidates = Array.init total Fun.id in
  while !continue && !chosen_count < cap do
    let scores = Caffeine_par.Executor.map executor score candidates in
    let best = ref None in
    Array.iteri
      (fun candidate score ->
        if Float.is_finite score then
          match !best with
          | Some (_, best_score) when best_score <= score -> ()
          | Some _ | None -> best := Some (candidate, score))
      scores;
    match !best with
    | Some (candidate, score) when score < !current_press *. (1. -. tolerance) ->
        Metrics.incr m_forward_rounds;
        (match on_round with
        | Some f ->
            f ~round:!chosen_count ~chosen:candidate ~press_before:!current_press
              ~press_after:score
        | None -> ());
        chosen_mask.(candidate) <- true;
        chosen := candidate :: !chosen;
        chosen_store.(!chosen_count) <- basis_values.(candidate);
        incr chosen_count;
        current_press := score;
        if !live && not (Qr_update.append qr basis_values.(candidate)) then live := false
    | Some _ | None -> continue := false
  done;
  Array.of_list (List.rev !chosen)

(* Single-pass streaming accumulation of the Gram entries feeding
   {!Linfit.fit_gram} / {!Linfit.fit_stream}.

   Each chunk contributes its rows as rank-1 updates — for every row r,
   G += x_r x_rᵀ, organized pairwise: per (i, j) the scalar accumulator is
   loaded once, advanced through the chunk's rows in order, and stored
   back.  Because each scalar therefore sees exactly the sequence
   acc ← acc +. (a.(r) *. b.(r)) over rows 0..n-1 in global row order, the
   accumulated value is bit-identical to the dense sequential dot product
   the in-memory path computes — the property the determinism contract
   (bit-identical fronts across backends and data paths) rests on. *)

type t = {
  k : int;
  dots : float array array;  (* upper triangle: dots.(i).(j) valid for j >= i *)
  dot_ys : float array;
  col_sums : float array;
  finite : bool array;
  mutable rows_seen : int;
}

let create k =
  if k < 1 then invalid_arg "Gram_stream.create: need at least one column";
  {
    k;
    dots = Array.init k (fun _ -> Array.make k 0.);
    dot_ys = Array.make k 0.;
    col_sums = Array.make k 0.;
    finite = Array.make k true;
    rows_seen = 0;
  }

let update t ~columns ~targets ~row0 ~len =
  if Array.length columns <> t.k then invalid_arg "Gram_stream.update: column count mismatch";
  if row0 <> t.rows_seen then invalid_arg "Gram_stream.update: chunks out of order";
  if row0 + len > Array.length targets then
    invalid_arg "Gram_stream.update: chunk exceeds target length";
  for i = 0 to t.k - 1 do
    let a = columns.(i) in
    (* Finiteness screening rides the same pass (the dense path checks
       materialized columns with [Stats.is_finite_array]). *)
    if t.finite.(i) then begin
      let ok = ref true in
      for r = 0 to len - 1 do
        if not (Float.is_finite a.(r)) then ok := false
      done;
      if not !ok then t.finite.(i) <- false
    end;
    (* ⟨colᵢ, 1⟩: the explicit [*. 1.] mirrors the dense path's dot against
       the ones vector word for word. *)
    let acc = ref t.col_sums.(i) in
    for r = 0 to len - 1 do
      acc := !acc +. (a.(r) *. 1.)
    done;
    t.col_sums.(i) <- !acc;
    let acc = ref t.dot_ys.(i) in
    for r = 0 to len - 1 do
      acc := !acc +. (a.(r) *. targets.(row0 + r))
    done;
    t.dot_ys.(i) <- !acc;
    for j = i to t.k - 1 do
      let b = columns.(j) in
      let acc = ref t.dots.(i).(j) in
      for r = 0 to len - 1 do
        acc := !acc +. (a.(r) *. b.(r))
      done;
      t.dots.(i).(j) <- !acc
    done
  done;
  t.rows_seen <- t.rows_seen + len

let rows_seen t = t.rows_seen
let dot t i j = if i <= j then t.dots.(i).(j) else t.dots.(j).(i)
let dot_y t i = t.dot_ys.(i)
let col_sum t i = t.col_sums.(i)
let finite t i = t.finite.(i)

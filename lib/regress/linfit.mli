(** Linear weighting of basis functions.

    CAFFEINE's top-level weights are not evolved: given the values of each
    basis function on the training samples, the weights (plus intercept) are
    learned by least squares.  This module performs that fit, computes the
    paper's normalized error measure, and exposes the PRESS statistic and
    PRESS-guided forward regression used by simplification-after-generation
    (section 5.1).

    All three entry points run on the incremental regression engine
    ({!Caffeine_linalg.Qr_update}): {!fit} and {!press} build one updatable
    factorization column by column, and {!forward_select} keeps a live
    factorization of the chosen set, scoring every candidate with an
    O(n·k) single-column probe instead of a from-scratch O(n·k²)
    refactorization.  Whenever a column set is numerically rank-deficient
    the engine rejects it and the code falls back to the scratch
    {!Caffeine_linalg.Decomp} path (ridge regression), so results agree
    with the pre-engine implementation within 1e-8 relative.  {!fit_gram}
    adds a normal-equations fast path fed by memoized dot products.

    The engine reports into {!Caffeine_obs.Metrics.default}: counters
    [linfit.fits], [linfit.qr_fallbacks] (rank-deficient sets refactorized
    by the scratch path), [linfit.gram_fits], [linfit.gram_fallbacks]
    (Gram solves that tripped a conditioning guard) and
    [linfit.forward_rounds] (accepted forward-selection rounds). *)

type t = {
  intercept : float;
  weights : float array;  (** one weight per basis column *)
  predictions : float array;  (** fitted values on the training inputs *)
  train_error : float;  (** normalized error on the training targets *)
}

val design_matrix : float array array -> Caffeine_linalg.Matrix.t
(** [design_matrix columns] builds the [n x (1 + k)] design whose first column
    is all ones and whose remaining columns are the per-basis value vectors.
    All columns must share the (positive) length [n]. *)

val fit : basis_values:float array array -> targets:float array -> t
(** Least-squares fit of [targets ≈ intercept + Σ wᵢ · basisᵢ].  With an empty
    [basis_values] the result is the constant (mean) model.  Raises
    [Invalid_argument] when a basis column contains non-finite values —
    callers are expected to screen those out (such models are invalid). *)

val fit_constant : targets:float array -> t
(** The zero-complexity model: intercept = mean of targets. *)

val fit_gram :
  dot:(int -> int -> float) ->
  dot_y:(int -> float) ->
  col_sum:(int -> float) ->
  basis_values:float array array ->
  targets:float array ->
  t
(** Normal-equations fast path for the per-individual fit: assemble the
    bordered [(k+1) x (k+1)] Gram matrix from the supplied products —
    [dot i j = ⟨colᵢ, colⱼ⟩], [dot_y i = ⟨colᵢ, y⟩], [col_sum i = ⟨colᵢ, 1⟩]
    (typically {!Caffeine_io.Dataset.dot} and friends, memoized across the
    population) — and solve by Cholesky with unit-diagonal equilibration
    and one iterative-refinement step.  When conditioning threatens
    accuracy (non-positive diagonal, singular factorization, or a minimum
    Cholesky pivot below 1e-3 of the maximum) the call transparently falls
    back to {!fit}, so the result always matches the QR answer within the
    engine's 1e-8 contract. *)

val fit_stream :
  dot:(int -> int -> float) ->
  dot_y:(int -> float) ->
  col_sum:(int -> float) ->
  k:int ->
  n:int ->
  iter:((row0:int -> len:int -> float array array -> unit) -> unit) ->
  targets:float array ->
  t
(** {!fit_gram} for out-of-core data: the [k] basis columns are never
    materialized — [iter f] must visit the samples as row chunks in order,
    calling [f ~row0 ~len columns] with [columns.(j)] holding column [j]'s
    values for rows [row0 .. row0+len-1] in its first [len] cells.  The
    Gram solve is the shared {!fit_gram} core (same guards, same
    refinement), and the prediction pass applies the coefficients with the
    same per-sample operation order, so given bit-identical products the
    two entry points return bit-identical fits.  The supplied products are
    typically a {!Gram_stream} accumulation (see
    {!Caffeine_io.Dataset.gram}), whose chunk-carried accumulators
    reproduce the dense sequential dot products exactly.  When a
    conditioning guard trips, the columns are materialized through one
    extra [iter] pass and the call falls back to {!fit} — the identical
    fallback computation to {!fit_gram}'s.  [iter] is invoked at most
    twice (prediction pass, or materialization on fallback). *)

val predict : t -> basis_values:float array array -> float array
(** Apply fitted weights to basis values measured at other sample points. *)

val press : basis_values:float array array -> targets:float array -> float
(** Predicted Residual Sum of Squares of the linear fit (leave-one-out
    shortcut on the linear parameters). *)

val forward_select :
  ?executor:Caffeine_par.Executor.t ->
  ?max_bases:int ->
  ?tolerance:float ->
  ?on_round:
    (round:int -> chosen:int -> press_before:float -> press_after:float -> unit) ->
  basis_values:float array array ->
  targets:float array ->
  unit ->
  int array
(** PRESS-guided forward regression: starting from the intercept-only model,
    greedily add the basis column whose inclusion lowers PRESS the most, and
    stop when no addition improves PRESS by more than [tolerance] (relative,
    default [1e-6]) or when [max_bases] columns are selected.  Returns the
    chosen column indices in selection order.  Columns with non-finite
    values — or whose trial fit is singular — are never selected.
    [on_round] observes each accepted round at its commit point, on the
    calling domain: the 0-based [round], the [chosen] column index, and the
    PRESS value before and after the addition.

    The chosen set is held as one live updatable factorization; each
    candidate is scored by a non-mutating O(n·k) single-column PRESS probe
    ({!Caffeine_linalg.Qr_update.press_probe}).  Candidates dependent on
    the current span are scored by the scratch ridge path instead, exactly
    as the pre-engine implementation did.

    Candidate PRESS scores within a round are mutually independent (the
    factorization is frozen until the round's winner is committed); they
    are evaluated through [executor] (default sequential), fanning across
    a domain pool when it has one.  The greedy reduction always scans
    candidates in index order, so the selection is identical under every
    backend. *)

(** Linear weighting of basis functions.

    CAFFEINE's top-level weights are not evolved: given the values of each
    basis function on the training samples, the weights (plus intercept) are
    learned by least squares.  This module performs that fit, computes the
    paper's normalized error measure, and exposes the PRESS statistic and
    PRESS-guided forward regression used by simplification-after-generation
    (section 5.1). *)

type t = {
  intercept : float;
  weights : float array;  (** one weight per basis column *)
  predictions : float array;  (** fitted values on the training inputs *)
  train_error : float;  (** normalized error on the training targets *)
}

val design_matrix : float array array -> Caffeine_linalg.Matrix.t
(** [design_matrix columns] builds the [n x (1 + k)] design whose first column
    is all ones and whose remaining columns are the per-basis value vectors.
    All columns must share the (positive) length [n]. *)

val fit : basis_values:float array array -> targets:float array -> t
(** Least-squares fit of [targets ≈ intercept + Σ wᵢ · basisᵢ].  With an empty
    [basis_values] the result is the constant (mean) model.  Raises
    [Invalid_argument] when a basis column contains non-finite values —
    callers are expected to screen those out (such models are invalid). *)

val fit_constant : targets:float array -> t
(** The zero-complexity model: intercept = mean of targets. *)

val predict : t -> basis_values:float array array -> float array
(** Apply fitted weights to basis values measured at other sample points. *)

val press : basis_values:float array array -> targets:float array -> float
(** Predicted Residual Sum of Squares of the linear fit (leave-one-out
    shortcut on the linear parameters). *)

val forward_select :
  ?pool:Caffeine_par.Pool.t ->
  ?max_bases:int ->
  ?tolerance:float ->
  basis_values:float array array ->
  targets:float array ->
  unit ->
  int array
(** PRESS-guided forward regression: starting from the intercept-only model,
    greedily add the basis column whose inclusion lowers PRESS the most, and
    stop when no addition improves PRESS by more than [tolerance] (relative,
    default [1e-6]) or when [max_bases] columns are selected.  Returns the
    chosen column indices in selection order.  Columns with non-finite
    values — or whose trial fit is singular — are never selected.

    Candidate PRESS scores within a round are mutually independent; with
    [pool] they are evaluated across the pool's domains.  The greedy
    reduction always scans candidates in index order, so the selection is
    identical with and without a pool. *)

module Model = Caffeine.Model
module Model_io = Caffeine.Model_io
module Expr = Caffeine_expr.Expr
module Fused = Caffeine_expr.Fused
module Metrics = Caffeine_obs.Metrics

type front = {
  path : string;
  var_names : string array;
  models : Model.t array;
  fused : Fused.t;
  mtime : float;
  size : int;
  generation : int;
}

type t = {
  wb : float;
  wvc : float;
  current : front Atomic.t;
  m_reloads : Metrics.counter;
  m_reload_failures : Metrics.counter;
}

(* A model is the weighted sum [intercept + Σ wⱼ·basisⱼ]; lowering it
   through [Fused.compile_wsums] produces exactly the [Const bias] +
   per-term [Fma] chain that mirrors [Model.predict]'s accumulation order,
   so served rows are bit-identical to direct evaluation. *)
let wsum_of_model (m : Model.t) =
  {
    Expr.bias = m.Model.intercept;
    terms = Array.to_list (Array.map2 (fun w b -> (w, b)) m.Model.weights m.Model.bases);
  }

let load_front ~path ~wb ~wvc =
  match Unix.stat path with
  | exception Unix.Unix_error (code, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message code))
  | stat -> (
      match Model_io.load ~path ~wb ~wvc with
      | Error msg -> Error msg
      | Ok (_, []) -> Error (Printf.sprintf "%s: no models in file" path)
      | Ok (var_names, models) ->
          let models = Array.of_list models in
          let fused = Fused.compile_wsums (Array.map wsum_of_model models) in
          Ok
            {
              path;
              var_names;
              models;
              fused;
              mtime = stat.Unix.st_mtime;
              size = stat.Unix.st_size;
              generation = 0;
            })

let create ?(metrics = Metrics.default) ~path ~wb ~wvc () =
  match load_front ~path ~wb ~wvc with
  | Error _ as error -> error
  | Ok front ->
      Ok
        {
          wb;
          wvc;
          current = Atomic.make front;
          m_reloads = Metrics.counter metrics "serve.reloads";
          m_reload_failures = Metrics.counter metrics "serve.reload_failures";
        }

let current t = Atomic.get t.current

let check_reload t =
  let serving = Atomic.get t.current in
  match Unix.stat serving.path with
  | exception Unix.Unix_error (code, _, _) ->
      Metrics.incr t.m_reload_failures;
      `Failed (Printf.sprintf "%s: %s" serving.path (Unix.error_message code))
  | stat ->
      if stat.Unix.st_mtime = serving.mtime && stat.Unix.st_size = serving.size then `Unchanged
      else (
        match load_front ~path:serving.path ~wb:t.wb ~wvc:t.wvc with
        | Error msg ->
            (* The fresh file is unreadable or malformed: keep serving the
               front already compiled — never a half-loaded state. *)
            Metrics.incr t.m_reload_failures;
            `Failed msg
        | Ok fresh ->
            Atomic.set t.current { fresh with generation = serving.generation + 1 };
            Metrics.incr t.m_reloads;
            `Reloaded)

let reloads t = Metrics.counter_value t.m_reloads
let reload_failures t = Metrics.counter_value t.m_reload_failures

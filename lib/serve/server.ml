module Model = Caffeine.Model
module Export = Caffeine.Export
module Fused = Caffeine_expr.Fused
module Json = Caffeine_obs.Json
module Metrics = Caffeine_obs.Metrics

type config = {
  registry : Registry.t;
  reload : bool;
  drain : bool Atomic.t;
  scratch : Fused.scratch;
  m_requests : Metrics.counter;
  m_errors : Metrics.counter;
  m_predictions : Metrics.counter;
  h_predict : Metrics.histogram;
  h_front : Metrics.histogram;
  h_explain : Metrics.histogram;
  h_stats : Metrics.histogram;
}

(* Second-scale buckets: a stdio predict on a small front lands around
   1e-5..1e-3 s, so the low buckets resolve the fast path and the top ones
   catch stalls. *)
let latency_buckets = [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1. |]

let config ?(metrics = Metrics.default) ?(reload = false) registry =
  let histogram name = Metrics.histogram metrics ~buckets:(Array.copy latency_buckets) name in
  {
    registry;
    reload;
    drain = Atomic.make false;
    scratch = Fused.scratch ();
    m_requests = Metrics.counter metrics "serve.requests";
    m_errors = Metrics.counter metrics "serve.errors";
    m_predictions = Metrics.counter metrics "serve.predictions";
    h_predict = histogram "serve.latency.predict";
    h_front = histogram "serve.latency.front";
    h_explain = histogram "serve.latency.explain";
    h_stats = histogram "serve.latency.stats";
  }

let registry config = config.registry
let drain config = Atomic.set config.drain true
let draining config = Atomic.get config.drain

let install_sigterm config =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set config.drain true))

(* A typed protocol rejection: [kind] is the wire-visible error type. *)
exception Reject of string * string

let reject kind fmt = Printf.ksprintf (fun msg -> raise (Reject (kind, msg))) fmt

let error_response kind msg =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ok\":false,\"error\":";
  Json.add_string b kind;
  Buffer.add_string b ",\"message\":";
  Json.add_string b msg;
  Buffer.add_char b '}';
  Buffer.contents b

let timed hist f =
  let start = Metrics.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let stop = Metrics.now_ns () in
      Metrics.observe hist (Int64.to_float (Int64.sub stop start) *. 1e-9))
    f

let op_predict config (front : Registry.front) fields =
  let rows = Json.arr_of fields "rows" in
  let dims = Array.length front.var_names in
  let n = List.length rows in
  let columns = Array.init dims (fun _ -> Array.make n 0.) in
  List.iteri
    (fun i row ->
      let cells = Json.to_arr "rows" row in
      let width = List.length cells in
      if width <> dims then
        reject "bad_request" "row %d has %d values, expected %d (one per design variable)" i
          width dims;
      List.iteri
        (fun v cell ->
          let x = Json.to_float "rows" cell in
          if not (Float.is_finite x) then
            reject "non_finite_input" "row %d, column %d (%s) is not finite" i v
              front.var_names.(v);
          columns.(v).(i) <- x)
        cells)
    rows;
  let outputs = Fused.eval_columns front.fused ~scratch:config.scratch ~columns ~n in
  let models = Array.length front.models in
  Metrics.add config.m_predictions (models * n);
  let b = Buffer.create (64 + (models * n * 8)) in
  Printf.bprintf b "{\"ok\":true,\"models\":%d,\"rows\":%d,\"outputs\":[" models n;
  Array.iteri
    (fun k out ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      Array.iteri
        (fun i y ->
          if i > 0 then Buffer.add_char b ',';
          Json.add_float b y)
        out;
      Buffer.add_char b ']')
    outputs;
  Buffer.add_string b "]}";
  Buffer.contents b

let op_front (front : Registry.front) =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"ok\":true,\"path\":";
  Json.add_string b front.path;
  Printf.bprintf b ",\"generation\":%d,\"models\":%d,\"front\":[" front.generation
    (Array.length front.models);
  Array.iteri
    (fun k (m : Model.t) ->
      if k > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"index\":%d,\"complexity\":" k;
      Json.add_float b m.Model.complexity;
      Buffer.add_string b ",\"train_error\":";
      Json.add_float b m.Model.train_error;
      Printf.bprintf b ",\"bases\":%d,\"expression\":" (Model.num_bases m);
      Json.add_string b (Model.to_string ~var_names:front.var_names m);
      Buffer.add_char b '}')
    front.models;
  Buffer.add_string b "]}";
  Buffer.contents b

let op_explain (front : Registry.front) fields =
  let index =
    match List.assoc_opt "index" fields with
    | None -> reject "bad_request" "missing field \"index\""
    | Some v -> Json.to_int "index" v
  in
  let language =
    match List.assoc_opt "language" fields with
    | None -> "text"
    | Some v -> Json.to_str "language" v
  in
  let models = front.models in
  if index < 0 || index >= Array.length models then
    reject "out_of_range" "index %d outside the front (%d models)" index (Array.length models);
  let m = models.(index) in
  let var_names = front.var_names in
  let code =
    match language with
    | "text" -> Model.to_string ~var_names m
    | "c" -> Export.to_c ~name:(Printf.sprintf "model_%d" index) ~var_names m
    | "verilog-a" -> Export.to_verilog_a ~name:(Printf.sprintf "model_%d" index) ~var_names m
    | lang ->
        reject "bad_request" "unknown language %S (expected \"text\", \"c\" or \"verilog-a\")"
          lang
  in
  let b = Buffer.create (64 + String.length code) in
  Printf.bprintf b "{\"ok\":true,\"index\":%d,\"language\":" index;
  Json.add_string b language;
  Buffer.add_string b ",\"code\":";
  Json.add_string b code;
  Buffer.add_char b '}';
  Buffer.contents b

let op_stats config (front : Registry.front) =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"ok\":true,\"front\":{\"path\":";
  Json.add_string b front.path;
  Printf.bprintf b ",\"generation\":%d,\"models\":%d},\"counters\":{" front.generation
    (Array.length front.models);
  Printf.bprintf b "\"requests\":%d,\"errors\":%d,\"predictions\":%d,"
    (Metrics.counter_value config.m_requests)
    (Metrics.counter_value config.m_errors)
    (Metrics.counter_value config.m_predictions);
  Printf.bprintf b "\"reloads\":%d,\"reload_failures\":%d}"
    (Registry.reloads config.registry)
    (Registry.reload_failures config.registry);
  Buffer.add_string b ",\"latency\":{";
  List.iteri
    (fun i (name, hist) ->
      if i > 0 then Buffer.add_char b ',';
      Json.add_string b name;
      Buffer.add_string b ":{\"bounds\":[";
      Array.iteri
        (fun j bound ->
          if j > 0 then Buffer.add_char b ',';
          Json.add_float b bound)
        (Metrics.bucket_bounds hist);
      Buffer.add_string b "],\"counts\":[";
      Array.iteri
        (fun j count ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%d" count)
        (Metrics.bucket_counts hist);
      Buffer.add_string b "]}")
    [
      ("predict", config.h_predict);
      ("front", config.h_front);
      ("explain", config.h_explain);
      ("stats", config.h_stats);
    ];
  Buffer.add_string b "}}";
  Buffer.contents b

let handle_line config line =
  Metrics.incr config.m_requests;
  (if config.reload then
     match Registry.check_reload config.registry with
     | `Unchanged | `Reloaded | `Failed _ -> ());
  try
    let fields =
      match Json.parse line with
      | Error msg -> reject "parse_error" "%s" msg
      | Ok (Json.Obj fields) -> fields
      | Ok _ -> reject "bad_request" "request must be a JSON object"
    in
    let op =
      match List.assoc_opt "op" fields with
      | Some (Json.Str op) -> op
      | Some _ -> reject "bad_request" "field \"op\" must be a string"
      | None -> reject "bad_request" "missing field \"op\""
    in
    let front = Registry.current config.registry in
    match op with
    | "predict" -> timed config.h_predict (fun () -> op_predict config front fields)
    | "front" -> timed config.h_front (fun () -> op_front front)
    | "explain" -> timed config.h_explain (fun () -> op_explain front fields)
    | "stats" -> timed config.h_stats (fun () -> op_stats config front)
    | op -> reject "bad_request" "unknown op %S" op
  with
  | Reject (kind, msg) ->
      Metrics.incr config.m_errors;
      error_response kind msg
  | Json.Parse_error msg ->
      Metrics.incr config.m_errors;
      error_response "bad_request" msg

let rec read_retry fd buf pos len =
  match Unix.read fd buf pos len with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf pos len
  | n -> n

let rec write_all fd bytes pos len =
  if len > 0 then
    match Unix.write fd bytes pos len with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len
    | n -> write_all fd bytes (pos + n) (len - n)

let serve_fds ?(on_line = ignore) config ~input ~output =
  let chunk_len = 65536 in
  let chunk = Bytes.create chunk_len in
  let pending = ref "" in
  let stop = ref false in
  let respond line =
    let line =
      let len = String.length line in
      if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line
    in
    (if String.trim line <> "" then begin
       on_line line;
       let response = handle_line config line ^ "\n" in
       write_all output (Bytes.unsafe_of_string response) 0 (String.length response)
     end);
    (* Graceful drain: the response just written completes, buffered
       requests behind it do not start. *)
    if draining config then stop := true
  in
  let consume_lines () =
    let continue = ref true in
    while !continue && not !stop do
      match String.index_opt !pending '\n' with
      | None -> continue := false
      | Some nl ->
          let line = String.sub !pending 0 nl in
          pending := String.sub !pending (nl + 1) (String.length !pending - nl - 1);
          respond line
    done
  in
  let eof = ref false in
  while (not !stop) && not !eof do
    match Unix.select [ input ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> if draining config then stop := true
    | _ ->
        let n = read_retry input chunk 0 chunk_len in
        if n = 0 then eof := true
        else begin
          pending := !pending ^ Bytes.sub_string chunk 0 n;
          consume_lines ()
        end
  done;
  if !eof && (not !stop) && String.trim !pending <> "" then respond !pending

let serve_socket ?(on_ready = ignore) config ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      on_ready ();
      while not (draining config) do
        match Unix.select [ sock ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept sock with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | conn, _ ->
                Fun.protect
                  ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
                  (fun () -> serve_fds config ~input:conn ~output:conn))
      done)

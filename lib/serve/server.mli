(** The serving loop: a line-oriented JSON protocol over stdio or a Unix
    socket.

    {2 Protocol}

    One request per line, one response line per request (blank input lines
    are skipped).  Every request is a JSON object with an ["op"] field:

    - [{"op":"predict","rows":[[x0,...,xD-1],...]}] — evaluate every model
      of the current front at each input row.  Response:
      [{"ok":true,"models":M,"rows":N,"outputs":[[...],...]}] where
      [outputs.(k)] is model [k]'s prediction at each row, bit-identical
      to {!Caffeine.Model.predict} of the loaded model.
    - [{"op":"front"}] — list the served models:
      [{"ok":true,"path":...,"generation":G,"front":[{"index":...,
      "complexity":...,"train_error":...,"bases":...,"expression":...}]}].
    - [{"op":"explain","index":K,"language":"text"|"c"|"verilog-a"}] —
      render model [K] through the {!Caffeine.Export} printers (or the
      paper-style infix for ["text"], the default).
    - [{"op":"stats"}] — request/error/reload counters, the served front's
      identity, and per-endpoint latency histograms.

    A request that cannot be served answers
    [{"ok":false,"error":TYPE,"message":...}] with [TYPE] one of
    ["parse_error"] (line is not valid JSON), ["bad_request"] (not an
    object, unknown op, missing or mistyped field, wrong row width),
    ["non_finite_input"] (a predict row holds NaN or ±∞) and
    ["out_of_range"] (explain index outside the front) — the server never
    dies on bad input.

    {2 Lifecycle}

    With hot reload enabled the registry is polled before each request
    ({!Registry.check_reload}): the swap is atomic and the in-flight
    request finishes on the front it captured.  {!drain} (installed on
    SIGTERM by {!install_sigterm}) is graceful: the request being
    processed completes and its response is flushed before the loop
    returns, and an idle loop wakes from its poll to exit; the CLI then
    exits 0. *)

module Metrics = Caffeine_obs.Metrics

type config

val config : ?metrics:Metrics.t -> ?reload:bool -> Registry.t -> config
(** [reload] (default [false]) polls the registry before each request.
    Counters ([serve.requests], [serve.errors], [serve.predictions]) and
    per-endpoint latency histograms ([serve.latency.<op>], seconds)
    register on [metrics] (default {!Metrics.default}). *)

val registry : config -> Registry.t

val drain : config -> unit
(** Request a graceful stop: the in-flight request (if any) completes and
    its response is written, then the serving loop returns. *)

val draining : config -> bool

val install_sigterm : config -> unit
(** Route SIGTERM to {!drain}.  Call once, from the main domain. *)

val handle_line : config -> string -> string
(** Process one request line and return the response line (no trailing
    newline).  Exposed for tests and the bench harness; {!serve_fds} is
    this in a read/write loop. *)

val serve_fds :
  ?on_line:(string -> unit) -> config -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Serve until end-of-input or {!drain}.  The reader polls with a short
    select timeout so a drain requested while idle is honored promptly;
    EINTR and partial writes are retried.  [on_line] fires after a request
    line is read and before it is handled (a test seam: draining from it
    pins the finish-in-flight contract). *)

val serve_socket : ?on_ready:(unit -> unit) -> config -> path:string -> unit
(** Bind a Unix-domain stream socket at [path] (replacing a stale file)
    and serve accepted connections sequentially until {!drain}.  The
    socket file is unlinked on return; [on_ready] fires once listening. *)

(** Model registry of the serving layer: versioned, hot-reloadable fronts.

    The end product of a CAFFEINE run is a Pareto front of closed-form
    models saved through {!Caffeine.Model_io}.  A registry loads one such
    file, compiles the whole front into a single fused DAG
    ({!Caffeine_expr.Fused.compile_wsums} — one root per model, subtrees
    shared across models evaluated once), and hands the serving loop an
    immutable {!front} value per request.

    Hot reload is an {e atomic swap}: {!check_reload} stats the file and,
    when the (mtime, size) signature changed, loads and compiles the new
    front into a fresh {!front} value before a single [Atomic.set]
    publishes it.  A request that captured the previous front keeps
    evaluating against it unchanged (fronts are immutable), and a reload
    that fails to parse leaves the served front exactly as it was — the
    registry never exposes a half-loaded state.  Reload outcomes are
    counted on the registry's metrics ([serve.reloads] /
    [serve.reload_failures]). *)

module Model = Caffeine.Model
module Fused = Caffeine_expr.Fused
module Metrics = Caffeine_obs.Metrics

type front = {
  path : string;  (** the models file this front was loaded from *)
  var_names : string array;  (** design variables, in model index order *)
  models : Model.t array;  (** file order (complexity-sorted by [fit]) *)
  fused : Fused.t;
      (** the whole front as one fused tape: root [k] computes model [k]'s
          [intercept + Σ wⱼ·basisⱼ], bit-identical to {!Model.predict} *)
  mtime : float;  (** stat signature of the loaded file *)
  size : int;
  generation : int;  (** 0 at startup, +1 per successful reload *)
}

type t

val load_front : path:string -> wb:float -> wvc:float -> (front, string) result
(** Load and fuse one models file ([generation] 0).  Errors are one-line
    strings naming the file (and the offending line, for parse errors). *)

val create : ?metrics:Metrics.t -> path:string -> wb:float -> wvc:float -> unit -> (t, string) result
(** Load the initial front; [wb]/[wvc] recompute complexities on (re)load.
    Reload counters register on [metrics] (default {!Metrics.default}). *)

val current : t -> front
(** The front serving right now — one atomic read; the returned value is
    immutable, so a concurrent or subsequent reload cannot affect a batch
    already evaluating against it. *)

val check_reload : t -> [ `Unchanged | `Reloaded | `Failed of string ]
(** Stat the file and swap in a freshly compiled front when its
    (mtime, size) changed.  [`Failed] (unreadable or malformed file) keeps
    the current front serving and bumps [serve.reload_failures]. *)

val reloads : t -> int
val reload_failures : t -> int

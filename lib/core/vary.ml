module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op

type individual = Expr.basis array

(* --- traversal helpers ------------------------------------------------ *)

(* Rebuild a basis applying [f] to every stored weight, in a fixed
   depth-first order (bias before terms, term weight before its basis). *)
let rec map_weights_basis f (b : Expr.basis) =
  { b with Expr.factors = List.map (map_weights_factor f) b.Expr.factors }

and map_weights_factor f = function
  | Expr.Unary (op, ws) -> Expr.Unary (op, map_weights_wsum f ws)
  | Expr.Binary (op, a1, a2) ->
      let a1 = map_weights_arg f a1 in
      let a2 = map_weights_arg f a2 in
      Expr.Binary (op, a1, a2)
  | Expr.Lte { test; threshold; less; otherwise } ->
      let test = map_weights_wsum f test in
      let threshold = map_weights_arg f threshold in
      let less = map_weights_arg f less in
      let otherwise = map_weights_arg f otherwise in
      Expr.Lte { test; threshold; less; otherwise }

and map_weights_arg f = function
  | Expr.Const w -> Expr.Const (f w)
  | Expr.Sum ws -> Expr.Sum (map_weights_wsum f ws)

and map_weights_wsum f (ws : Expr.wsum) =
  let bias = f ws.Expr.bias in
  let terms =
    List.map
      (fun (w, b) ->
        let w = f w in
        let b = map_weights_basis f b in
        (w, b))
      ws.Expr.terms
  in
  { Expr.bias; terms }

(* Rebuild applying [f] to every VC. *)
let rec map_vcs_basis f (b : Expr.basis) =
  {
    Expr.vc = Option.map f b.Expr.vc;
    factors = List.map (map_vcs_factor f) b.Expr.factors;
  }

and map_vcs_factor f = function
  | Expr.Unary (op, ws) -> Expr.Unary (op, map_vcs_wsum f ws)
  | Expr.Binary (op, a1, a2) -> Expr.Binary (op, map_vcs_arg f a1, map_vcs_arg f a2)
  | Expr.Lte { test; threshold; less; otherwise } ->
      Expr.Lte
        {
          test = map_vcs_wsum f test;
          threshold = map_vcs_arg f threshold;
          less = map_vcs_arg f less;
          otherwise = map_vcs_arg f otherwise;
        }

and map_vcs_arg f = function
  | Expr.Const w -> Expr.Const w
  | Expr.Sum ws -> Expr.Sum (map_vcs_wsum f ws)

and map_vcs_wsum f (ws : Expr.wsum) =
  { ws with Expr.terms = List.map (fun (w, b) -> (w, map_vcs_basis f b)) ws.Expr.terms }

(* Rebuild applying [f] to every operator-bearing factor. *)
let rec map_factors_basis f (b : Expr.basis) =
  { b with Expr.factors = List.map (fun factor -> f (map_factors_inside f factor)) b.Expr.factors }

and map_factors_inside f = function
  | Expr.Unary (op, ws) -> Expr.Unary (op, map_factors_wsum f ws)
  | Expr.Binary (op, a1, a2) -> Expr.Binary (op, map_factors_arg f a1, map_factors_arg f a2)
  | Expr.Lte { test; threshold; less; otherwise } ->
      Expr.Lte
        {
          test = map_factors_wsum f test;
          threshold = map_factors_arg f threshold;
          less = map_factors_arg f less;
          otherwise = map_factors_arg f otherwise;
        }

and map_factors_arg f = function
  | Expr.Const w -> Expr.Const w
  | Expr.Sum ws -> Expr.Sum (map_factors_wsum f ws)

and map_factors_wsum f (ws : Expr.wsum) =
  { ws with Expr.terms = List.map (fun (w, b) -> (w, map_factors_basis f b)) ws.Expr.terms }

let count_factors_basis b =
  let count = ref 0 in
  let counting factor = incr count; factor in
  ignore (map_factors_basis counting b);
  !count

(* All bases appearing in the tree, the root included, depth-first. *)
let rec bases_in_basis (b : Expr.basis) =
  b :: List.concat_map bases_in_factor b.Expr.factors

and bases_in_factor = function
  | Expr.Unary (_, ws) -> bases_in_wsum ws
  | Expr.Binary (_, a1, a2) -> bases_in_arg a1 @ bases_in_arg a2
  | Expr.Lte { test; threshold; less; otherwise } ->
      bases_in_wsum test @ bases_in_arg threshold @ bases_in_arg less @ bases_in_arg otherwise

and bases_in_arg = function
  | Expr.Const _ -> []
  | Expr.Sum ws -> bases_in_wsum ws

and bases_in_wsum (ws : Expr.wsum) = List.concat_map (fun (_, b) -> bases_in_basis b) ws.Expr.terms

let nested_bases individual =
  List.concat_map bases_in_basis (Array.to_list individual)

(* Term-basis replacement: sites are wsum terms, visited outer-to-inner. *)
let rec count_term_sites_basis (b : Expr.basis) =
  List.fold_left (fun acc factor -> acc + count_term_sites_factor factor) 0 b.Expr.factors

and count_term_sites_factor = function
  | Expr.Unary (_, ws) -> count_term_sites_wsum ws
  | Expr.Binary (_, a1, a2) -> count_term_sites_arg a1 + count_term_sites_arg a2
  | Expr.Lte { test; threshold; less; otherwise } ->
      count_term_sites_wsum test + count_term_sites_arg threshold + count_term_sites_arg less
      + count_term_sites_arg otherwise

and count_term_sites_arg = function
  | Expr.Const _ -> 0
  | Expr.Sum ws -> count_term_sites_wsum ws

and count_term_sites_wsum (ws : Expr.wsum) =
  List.fold_left (fun acc (_, b) -> acc + 1 + count_term_sites_basis b) 0 ws.Expr.terms

let replace_term_site target replacement b =
  let counter = ref 0 in
  let rec go_basis (b : Expr.basis) =
    { b with Expr.factors = List.map go_factor b.Expr.factors }
  and go_factor = function
    | Expr.Unary (op, ws) -> Expr.Unary (op, go_wsum ws)
    | Expr.Binary (op, a1, a2) ->
        let a1 = go_arg a1 in
        let a2 = go_arg a2 in
        Expr.Binary (op, a1, a2)
    | Expr.Lte { test; threshold; less; otherwise } ->
        let test = go_wsum test in
        let threshold = go_arg threshold in
        let less = go_arg less in
        let otherwise = go_arg otherwise in
        Expr.Lte { test; threshold; less; otherwise }
  and go_arg = function
    | Expr.Const w -> Expr.Const w
    | Expr.Sum ws -> Expr.Sum (go_wsum ws)
  and go_wsum (ws : Expr.wsum) =
    let terms =
      List.map
        (fun (w, basis) ->
          let site = !counter in
          incr counter;
          if site = target then (w, replacement) else (w, go_basis basis))
        ws.Expr.terms
    in
    { ws with Expr.terms = terms }
  in
  go_basis b

(* Inner weighted-sum replacement: sites are the wsums feeding operators. *)
let rec count_wsum_sites_basis (b : Expr.basis) =
  List.fold_left (fun acc factor -> acc + count_wsum_sites_factor factor) 0 b.Expr.factors

and count_wsum_sites_factor = function
  | Expr.Unary (_, ws) -> 1 + count_wsum_sites_wsum ws
  | Expr.Binary (_, a1, a2) -> count_wsum_sites_arg a1 + count_wsum_sites_arg a2
  | Expr.Lte { test; threshold; less; otherwise } ->
      1 + count_wsum_sites_wsum test + count_wsum_sites_arg threshold
      + count_wsum_sites_arg less + count_wsum_sites_arg otherwise

and count_wsum_sites_arg = function
  | Expr.Const _ -> 0
  | Expr.Sum ws -> 1 + count_wsum_sites_wsum ws

and count_wsum_sites_wsum (ws : Expr.wsum) =
  List.fold_left (fun acc (_, b) -> acc + count_wsum_sites_basis b) 0 ws.Expr.terms

let replace_wsum_site target replacement b =
  let counter = ref 0 in
  let visit_wsum recurse ws =
    let site = !counter in
    incr counter;
    if site = target then replacement else recurse ws
  in
  let rec go_basis (b : Expr.basis) =
    { b with Expr.factors = List.map go_factor b.Expr.factors }
  and go_factor = function
    | Expr.Unary (op, ws) -> Expr.Unary (op, visit_wsum go_wsum ws)
    | Expr.Binary (op, a1, a2) ->
        let a1 = go_arg a1 in
        let a2 = go_arg a2 in
        Expr.Binary (op, a1, a2)
    | Expr.Lte { test; threshold; less; otherwise } ->
        let test = visit_wsum go_wsum test in
        let threshold = go_arg threshold in
        let less = go_arg less in
        let otherwise = go_arg otherwise in
        Expr.Lte { test; threshold; less; otherwise }
  and go_arg = function
    | Expr.Const w -> Expr.Const w
    | Expr.Sum ws -> Expr.Sum (visit_wsum go_wsum ws)
  and go_wsum (ws : Expr.wsum) =
    { ws with Expr.terms = List.map (fun (w, basis) -> (w, go_basis basis)) ws.Expr.terms }
  in
  go_basis b

(* --- operators --------------------------------------------------------- *)

let dedup_bases bases =
  let rec keep_first seen = function
    | [] -> List.rev seen
    | b :: rest ->
        if List.exists (Expr.equal_basis b) seen then keep_first seen rest
        else keep_first (b :: seen) rest
  in
  keep_first [] bases

let crossover_bases rng ~max_bases parent1 parent2 =
  let take parent =
    let count = 1 + Rng.int rng (Array.length parent) in
    let indices = Rng.sample_without_replacement rng count (Array.length parent) in
    Array.to_list (Array.map (fun i -> parent.(i)) indices)
  in
  let combined = dedup_bases (take parent1 @ take parent2) in
  let combined = Array.of_list combined in
  if Array.length combined <= max_bases then combined
  else begin
    let keep = Rng.sample_without_replacement rng max_bases (Array.length combined) in
    Array.map (fun i -> combined.(i)) keep
  end

let total_weights individual =
  Array.fold_left (fun acc b -> acc + Expr.num_weights_basis b) 0 individual

let mutate_weight rng individual =
  let total = total_weights individual in
  if total = 0 then individual
  else begin
    let target = Rng.int rng total in
    let counter = ref 0 in
    let mutate_site value =
      let site = !counter in
      incr counter;
      if site = target then Weight.mutate_value rng value else value
    in
    Array.map (map_weights_basis mutate_site) individual
  end

let total_vcs individual =
  Array.fold_left (fun acc b -> acc + List.length (Expr.vcs_of_basis b)) 0 individual

let mutate_vc rng opset individual =
  let total = total_vcs individual in
  if total = 0 then individual
  else begin
    let target = Rng.int rng total in
    let counter = ref 0 in
    let mutate_site vc =
      let site = !counter in
      incr counter;
      if site <> target then vc
      else begin
        let dims = Array.length vc in
        let dim = Rng.int rng dims in
        let delta = if Rng.bool rng then 1 else -1 in
        let next = Array.copy vc in
        let proposed = vc.(dim) + delta in
        let clamped =
          max opset.Opset.min_exponent (min opset.Opset.max_exponent proposed)
        in
        next.(dim) <- clamped;
        if Array.for_all (fun e -> e = 0) next then vc else next
      end
    in
    Array.map (map_vcs_basis mutate_site) individual
  end

let all_vcs individual =
  List.concat_map Expr.vcs_of_basis (Array.to_list individual)

let crossover_vc rng child donor =
  let donor_vcs = Array.of_list (all_vcs donor) in
  let total = total_vcs child in
  if total = 0 || Array.length donor_vcs = 0 then child
  else begin
    let other = Rng.choose rng donor_vcs in
    let target = Rng.int rng total in
    let counter = ref 0 in
    let cross_site vc =
      let site = !counter in
      incr counter;
      if site <> target then vc
      else begin
        let dims = Array.length vc in
        let point = 1 + Rng.int rng (max 1 (dims - 1)) in
        let next = Array.init dims (fun i -> if i < point then vc.(i) else other.(i)) in
        if Array.for_all (fun e -> e = 0) next then vc else next
      end
    in
    Array.map (map_vcs_basis cross_site) child
  end

let swap_operator rng opset individual =
  let total = Array.fold_left (fun acc b -> acc + count_factors_basis b) 0 individual in
  if total = 0 then individual
  else begin
    let target = Rng.int rng total in
    let counter = ref 0 in
    let swap_site factor =
      let site = !counter in
      incr counter;
      if site <> target then factor
      else
        match factor with
        | Expr.Unary (op, ws) ->
            let candidates =
              Array.of_list
                (List.filter (fun o -> o <> op) (Array.to_list opset.Opset.unops))
            in
            if Array.length candidates = 0 then factor
            else Expr.Unary (Rng.choose rng candidates, ws)
        | Expr.Binary (op, a1, a2) ->
            let candidates =
              Array.of_list
                (List.filter (fun o -> o <> op) (Array.to_list opset.Opset.binops))
            in
            if Array.length candidates = 0 then factor
            else Expr.Binary (Rng.choose rng candidates, a1, a2)
        | Expr.Lte _ -> factor
    in
    Array.map (map_factors_basis swap_site) individual
  end

let add_basis rng config ~dims individual =
  if Array.length individual >= config.Config.max_bases then individual
  else begin
    let fresh =
      Gen.random_basis rng config.Config.opset ~dims ~depth:config.Config.max_depth
        ~max_vc_vars:config.Config.max_vc_vars
    in
    Array.append individual [| fresh |]
  end

let delete_basis rng individual =
  if Array.length individual <= 1 then individual
  else begin
    let victim = Rng.int rng (Array.length individual) in
    Array.of_list
      (List.filteri (fun i _ -> i <> victim) (Array.to_list individual))
  end

let copy_basis_from rng ~max_bases child donor =
  if Array.length child >= max_bases then child
  else begin
    let pool = Array.of_list (nested_bases donor) in
    if Array.length pool = 0 then child
    else Array.append child [| Rng.choose rng pool |]
  end

let max_depth_of individual =
  Array.fold_left (fun acc b -> max acc (Expr.depth_basis b)) 0 individual

let subtree_crossover rng child donor =
  let pool = Array.of_list (nested_bases donor) in
  if Array.length pool = 0 then child
  else begin
    let replacement = Rng.choose rng pool in
    let site_counts = Array.map count_term_sites_basis child in
    let total = Array.fold_left ( + ) 0 site_counts in
    if total = 0 then begin
      (* No inner term sites: replace a random top-level basis instead. *)
      let next = Array.copy child in
      next.(Rng.int rng (Array.length next)) <- replacement;
      next
    end
    else begin
      let target = Rng.int rng total in
      let rec locate index offset =
        if target < offset + site_counts.(index) then (index, target - offset)
        else locate (index + 1) (offset + site_counts.(index))
      in
      let index, local = locate 0 0 in
      let next = Array.copy child in
      next.(index) <- replace_term_site local replacement child.(index);
      next
    end
  end

let randomize_subtree rng config ~dims individual =
  let site_counts = Array.map count_wsum_sites_basis individual in
  let total = Array.fold_left ( + ) 0 site_counts in
  if total = 0 then add_basis rng config ~dims individual
  else begin
    let fresh =
      Gen.random_wsum rng config.Config.opset ~dims
        ~depth:(max 1 (config.Config.max_depth / 2))
        ~max_vc_vars:config.Config.max_vc_vars
    in
    let target = Rng.int rng total in
    let rec locate index offset =
      if target < offset + site_counts.(index) then (index, target - offset)
      else locate (index + 1) (offset + site_counts.(index))
    in
    let index, local = locate 0 0 in
    let next = Array.copy individual in
    next.(index) <- replace_wsum_site local fresh individual.(index);
    next
  end

(* --- top-level child construction -------------------------------------- *)

let num_ops = 9

type op_stats = {
  mutable crossovers : int;
  op_counts : int array;
  op_changed : int array;
  mutable depth_rejects : int;
}

let fresh_stats () =
  {
    crossovers = 0;
    op_counts = Array.make num_ops 0;
    op_changed = Array.make num_ops 0;
    depth_rejects = 0;
  }

let reset_stats stats =
  stats.crossovers <- 0;
  Array.fill stats.op_counts 0 num_ops 0;
  Array.fill stats.op_changed 0 num_ops 0;
  stats.depth_rejects <- 0

let equal_individual a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i = n || (Expr.equal_basis a.(i) b.(i) && go (i + 1)) in
  go 0

let vary ?stats rng config ~dims parent1 parent2 =
  let max_bases = config.Config.max_bases in
  let child =
    if Rng.bernoulli rng config.Config.crossover_probability then begin
      (match stats with Some s -> s.crossovers <- s.crossovers + 1 | None -> ());
      crossover_bases rng ~max_bases parent1 parent2
    end
    else Array.copy parent1
  in
  let weights =
    [|
      config.Config.param_mutation_weight (* 0: weight mutation *);
      1. (* 1: vc mutation *);
      1. (* 2: vc crossover *);
      1. (* 3: operator swap *);
      1. (* 4: add basis *);
      1. (* 5: delete basis *);
      1. (* 6: copy basis from donor *);
      1. (* 7: subtree crossover *);
      1. (* 8: randomize subtree *);
    |]
  in
  let before_depth = max_depth_of child in
  let op = Rng.weighted_index rng weights in
  (match stats with Some s -> s.op_counts.(op) <- s.op_counts.(op) + 1 | None -> ());
  let mutated =
    match op with
    | 0 -> mutate_weight rng child
    | 1 -> mutate_vc rng config.Config.opset child
    | 2 -> crossover_vc rng child parent2
    | 3 -> swap_operator rng config.Config.opset child
    | 4 -> add_basis rng config ~dims child
    | 5 -> delete_basis rng child
    | 6 -> copy_basis_from rng ~max_bases child parent2
    | 7 -> subtree_crossover rng child parent2
    | 8 -> randomize_subtree rng config ~dims child
    | _ -> assert false
  in
  (* Keep the depth bound: discard a mutation that deepened past the limit
     (unless the parent was already past it, e.g. inherited structure). *)
  if
    max_depth_of mutated > config.Config.max_depth
    && max_depth_of mutated > before_depth
  then begin
    (match stats with Some s -> s.depth_rejects <- s.depth_rejects + 1 | None -> ());
    child
  end
  else begin
    (* Operator success: the surviving mutation structurally changed its
       input.  Many operator draws are silent no-ops (nothing to mutate,
       bounds already reached), and the adaptive-operator consumer needs
       effective application counts, not draw counts. *)
    (match stats with
    | Some s ->
        if not (equal_individual mutated child) then s.op_changed.(op) <- s.op_changed.(op) + 1
    | None -> ());
    mutated
  end

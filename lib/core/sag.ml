module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset
module Linfit = Caffeine_regress.Linfit
module Trace = Caffeine_obs.Trace

let log_src = Logs.Src.create "caffeine.sag" ~doc:"CAFFEINE post-run simplification"

module Log = (val Logs.src_log log_src : Logs.LOG)

type scored = {
  model : Model.t;
  test_error : float;
}

let simplify_model ?executor ?(trace = Trace.null) ?(model_index = 0) ~wb ~wvc
    (model : Model.t) ~data ~targets =
  if Array.length model.Model.bases = 0 then model
  else
    match Model.basis_columns model.Model.bases data with
    | None -> model
    | Some columns ->
        let on_round =
          if Trace.is_null trace then None
          else
            Some
              (fun ~round ~chosen ~press_before ~press_after ->
                Trace.emit trace
                  (Trace.Sag_round { model_index; round; chosen; press_before; press_after }))
        in
        let chosen = Linfit.forward_select ?executor ?on_round ~basis_values:columns ~targets () in
        let bases = Array.map (fun i -> model.Model.bases.(i)) chosen in
        let refit = Model.fit ~wb ~wvc bases ~data ~targets in
        let pruned = match refit with Some m -> m | None -> model in
        let cleaned = Model.simplify ~wb ~wvc pruned in
        (* Keep the cleanup only if it did not break the fit. *)
        let result =
          match Model.fit ~wb ~wvc cleaned.Model.bases ~data ~targets with
          | Some refitted -> refitted
          | None -> pruned
        in
        if not (Trace.is_null trace) then
          Trace.emit trace
            (Trace.Sag_model
               {
                 model_index;
                 bases_before = Array.length model.Model.bases;
                 bases_after = Array.length result.Model.bases;
               });
        result

let nondominated_by key models =
  List.filter
    (fun m ->
      let err_m, cx_m = key m in
      not
        (List.exists
           (fun other ->
             let err_o, cx_o = key other in
             err_o <= err_m && cx_o <= cx_m && (err_o < err_m || cx_o < cx_m))
           models))
    models

let dedup_by_key key models =
  List.rev
    (List.fold_left
       (fun acc m -> if List.exists (fun kept -> key kept = key m) acc then acc else m :: acc)
       [] models)

let process_front ?executor ?trace ?(already = []) ?on_model ?(fuse = true) ~wb ~wvc front
    ~data ~targets =
  (* [already] is the prefix of results a resumed run restored from its
     checkpoint: those members are not re-simplified (fronts are small, so
     the List.nth walk is irrelevant). *)
  (* Front models overlap heavily (neighbors on the front differ by a few
     bases), so one fused evaluation of the whole front warms every column
     the per-model selection loops below will read.  Warmed columns are
     bit-identical to lazily computed ones; [fuse:false] restores the
     exact PR-7 evaluation pattern. *)
  if fuse then Model.warm_front front data;
  let skip = List.length already in
  let simplified =
    List.mapi
      (fun model_index m ->
        if model_index < skip then List.nth already model_index
        else begin
          let result = simplify_model ?executor ?trace ~model_index ~wb ~wvc m ~data ~targets in
          (match on_model with None -> () | Some f -> f model_index result);
          result
        end)
      front
  in
  let key (m : Model.t) = (m.Model.train_error, m.Model.complexity) in
  simplified
  |> nondominated_by key
  |> dedup_by_key key
  |> List.sort (fun a b -> compare a.Model.complexity b.Model.complexity)

let test_tradeoff ?(trace = Trace.null) ?(fuse = true) front ~data ~targets =
  (* Scoring evaluates every model on the testing data: fuse the whole
     front against it once before the per-model error loop. *)
  if fuse then Model.warm_front front data;
  let scored =
    List.map (fun m -> { model = m; test_error = Model.error_on m ~data ~targets }) front
  in
  let usable = List.filter (fun s -> Float.is_finite s.test_error) scored in
  match (usable, scored) with
  | [], _ :: _ ->
      (* Every model blew up on the testing data (out-of-range samples can
         do this to the whole front at once).  Returning [] here silently
         discards the entire run, so fall back to the train-error tradeoff
         and say so. *)
      let message =
        "every model has non-finite test error; falling back to the train-error tradeoff"
      in
      Log.warn (fun m -> m "%s" message);
      if not (Trace.is_null trace) then
        Trace.emit trace (Trace.Warning { context = "sag.test_tradeoff"; message });
      let key s = (s.model.Model.train_error, s.model.Model.complexity) in
      scored |> dedup_by_key key |> List.sort (fun a b -> compare (key a) (key b))
  | _ ->
      let key s = (s.test_error, s.model.Model.complexity) in
      usable
      |> nondominated_by key
      |> dedup_by_key key
      |> List.sort (fun a b -> compare a.model.Model.complexity b.model.Model.complexity)

let best_within scored ~train_cap ~test_cap =
  List.find_opt
    (fun s -> s.model.Model.train_error <= train_cap && s.test_error <= test_cap)
    scored

let at_train_error scored ~train_cap =
  let within = List.filter (fun s -> s.model.Model.train_error <= train_cap) scored in
  match within with
  | first :: _ -> Some first
  | [] ->
      (* Nothing meets the cap: fall back to the closest training error. *)
      List.fold_left
        (fun best s ->
          match best with
          | None -> Some s
          | Some b ->
              if
                Float.abs (s.model.Model.train_error -. train_cap)
                < Float.abs (b.model.Model.train_error -. train_cap)
              then Some s
              else best)
        None scored

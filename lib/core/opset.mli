(** Which canonical-form building blocks the search may use.

    "The designer can turn off any of the rules if they are considered
    unwanted or unneeded.  For example, one could easily restrict the search
    to polynomials or rationals, or remove potentially difficult-to-interpret
    functions such as sin and cos."  An {!t} captures exactly that: the
    enabled operators plus VC exponent limits.  It can be built from a
    grammar file via {!of_grammar}. *)

module Op = Caffeine_expr.Op

type t = {
  unops : Op.unary array;  (** enabled single-input operators *)
  binops : Op.binary array;  (** enabled double-input operators *)
  allow_lte : bool;  (** the paper's [lte] conditional *)
  allow_vc : bool;  (** variable combos (rational monomials) *)
  allow_nonlinear : bool;  (** any operator factors at all *)
  max_exponent : int;  (** |VC exponent| limit, >= 1 *)
  min_exponent : int;  (** smallest allowed exponent (e.g. 0 to forbid
                           negative powers in the polynomial ablation) *)
}

val default : t
(** The full experimental setup of section 6.1: all 13 unary and 4 binary
    operators, [lte], exponents in [{-2, -1, 1, 2}]. *)

val rational : t
(** Rational-functions ablation: VCs only, no nonlinear operators. *)

val polynomial : t
(** Polynomial ablation: VCs with non-negative exponents only. *)

val no_trig : t
(** {!default} without sin, cos and tan — the "difficult-to-interpret"
    functions the paper suggests removing. *)

val of_grammar : Caffeine_grammar.Grammar.t -> t
(** Derive the operator set from a grammar's terminals (1OP/2OP rule names,
    presence of 'VC' and 'LTE').  Unknown operator terminals are ignored.
    Exponent limits keep their defaults. *)

val exponent_choices : t -> int array
(** The nonzero exponents a VC entry may take, e.g. [{-2,-1,1,2}]. *)

(** The paper's weight representation (section 5).

    A real value is stored in the range [\[-2B, +2B\]] at each W node; during
    interpretation it is transformed into
    [-\[1e-B, 1e+B\] ∪ {0} ∪ +\[1e-B, 1e+B\]], so evolved parameters can take
    very small or very large magnitudes of either sign.  Zero-mean Cauchy
    mutation acts on the raw value. *)

type t = private float
(** A raw weight, clamped to [\[-2B, +2B\]]. *)

val bound : float
(** B = 10, the paper's setting. *)

val of_raw : float -> t
(** Clamp into [\[-2B, +2B\]]. *)

val raw : t -> float

val value : t -> float
(** The interpreted weight: [0] at raw 0, otherwise
    [sign(raw) · 10^(|raw| - B)]. *)

val of_value : float -> t
(** Inverse of {!value}, clamping magnitudes outside [\[1e-B, 1e+B\]].
    Only [v = 0] maps to raw 0: a nonzero [v] at (or clamped to) the
    [1e-B] boundary keeps its sign and round-trips,
    [value (of_value v) = v]. *)

val random : Caffeine_util.Rng.t -> t
(** Uniform over the raw range. *)

val mutate : ?scale:float -> Caffeine_util.Rng.t -> t -> t
(** Zero-mean Cauchy perturbation of the raw value (default [scale = 1.0]),
    re-clamped. *)

val random_value : Caffeine_util.Rng.t -> float
(** [value (random rng)] — a fresh interpreted weight. *)

val mutate_value : ?scale:float -> Caffeine_util.Rng.t -> float -> float
(** Round-trip mutation on an interpreted weight: pull back through
    {!of_value}, Cauchy-perturb, re-interpret. *)

(** Durable run state: versioned snapshots of an evolutionary search.

    A long CAFFEINE run (one multi-objective GP run per performance metric,
    islands × generations, then PRESS-guided simplification) must survive
    preemption, crashes and time budgets without losing work {e or
    determinism}.  A snapshot captures everything the search consumes:
    per-island NSGA-II populations (genomes, objectives, rank, crowding),
    the generation counter, the exact xoshiro256** generator words
    ({!Caffeine_util.Rng.state}), SAG phase progress, and a fingerprint of
    the configuration and dataset.  A run killed at any generation and
    resumed from its snapshot produces a {b bit-identical} final front to
    the uninterrupted run, at any [--jobs] setting (see
    {!Search.run}/{!Search.run_multi}).

    {2 Snapshot format}

    A snapshot is a JSONL file (UTF-8, one JSON object per line):

    - a header line carrying [version], [fingerprint], [seed], [restarts]
      and the phase name;
    - in the evolving phase, one [island] line per island, each either
      [pending] (initial generator state only), [in_progress] (generation,
      generator state, full population) or [done] (the island's final
      front);
    - in the simplifying phase, one [sag] line holding the evolved front
      and the prefix of models already simplified.

    Floats are encoded with [%.17g] (exact round-trip; non-finite values
    as JSON strings), generator words as decimal [int64] strings, and
    expressions as a direct tree encoding — not the pretty-printed infix
    of {!Model_io}, which rounds weights.  Snapshots are written to a
    temporary file and renamed into place, so a crash mid-write never
    corrupts the previous snapshot.

    The format is versioned: {!load} rejects snapshots whose [version]
    differs from {!version}, and {!validate} rejects snapshots whose
    fingerprint, seed or island count do not match the resuming run. *)

module Rng = Caffeine_util.Rng
module Nsga2 = Caffeine_evo.Nsga2
module Dataset = Caffeine_io.Dataset

type population = Vary.individual Nsga2.individual array
(** A checkpointed NSGA-II population: genomes with their sanitized
    objectives, rank and crowding, exactly as {!Caffeine_evo.Nsga2.run}
    hands them to [on_generation]. *)

type island =
  | Pending of Rng.state  (** not started; initial generator state *)
  | In_progress of { gen : int; rng : Rng.state; population : population }
      (** [gen] generations completed; [rng] is the generator state
          captured right after generation [gen]'s environmental
          selection *)
  | Done of Model.t list  (** the island's final front *)

type phase =
  | Evolving of island array  (** one entry per island, in island order *)
  | Simplifying of { front : Model.t list; processed : Model.t list }
      (** [front] is the merged evolved front entering SAG; [processed]
          is the prefix of simplified results ([List.length processed]
          models are done) *)

type t = {
  fingerprint : string;  (** {!fingerprint} of config, data and targets *)
  seed : int;
  restarts : int;  (** island count ([1] for {!Search.run}) *)
  phase : phase;
}

val version : int
(** Current snapshot format version. *)

val fingerprint : Config.t -> data:Dataset.t -> targets:float array -> string
(** Digest of every run input that determines the result: all search
    parameters (except [jobs] — parallelism never changes results, and a
    run may legitimately resume at a different [--jobs]), the operator
    set, and the full training data and targets. *)

val phase_name : phase -> string
(** ["evolving"] or ["simplifying"] — the header field and the label used
    in trace records. *)

val validate : t -> fingerprint:string -> seed:int -> restarts:int -> (unit, string) result
(** Check that a loaded snapshot belongs to the run about to resume. *)

val save : path:string -> t -> unit
(** Serialize atomically: write [path ^ ".tmp"], then rename over [path].
    Bumps the [checkpoint.written] counter on the default metrics
    registry. *)

val load : path:string -> (t, string) result
(** Read a snapshot back.  Errors on I/O failure, malformed JSON, or a
    [version] mismatch. *)

(** {2 Island wire codec}

    The snapshot's island line doubles as the wire format of the
    multi-process island backend ({!Shard}): assignments travel to worker
    processes, and progress and final fronts travel back, as exactly the
    lines a snapshot file holds.  Both directions round-trip
    bit-identically ([Rng.state] words, [%.17g] floats, exact expression
    trees), which is what keeps the process backend's fronts equal to the
    sequential run's. *)

val island_to_line : index:int -> island -> string
(** One JSON line (no trailing newline) encoding [island] at [index]. *)

val island_of_json : Caffeine_obs.Json.t -> int * island
(** Decode a parsed island line back to [(index, island)].  Raises
    [Caffeine_obs.Json.Parse_error] on anything that is not an island
    line. *)

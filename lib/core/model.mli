(** A fitted CAFFEINE model: a set of basis-function trees with
    least-squares-learned linear weights, plus its training error and the
    complexity measure of eq. (1). *)

module Expr = Caffeine_expr.Expr

type t = {
  bases : Expr.basis array;
  intercept : float;
  weights : float array;  (** same length as [bases] *)
  train_error : float;  (** normalized error on the fitting data *)
  complexity : float;
}

val complexity_of : wb:float -> wvc:float -> Expr.basis array -> float
(** Eq. (1): [Σ_j (w_b + nnodes(j) + Σ_k w_vc·Σ_d |vc_k(d)|)]. *)

val basis_columns : Expr.basis array -> float array array -> float array array option
(** Evaluate each basis on each input row; [None] when any value is not
    finite (the model is invalid on this data). *)

val fit :
  wb:float -> wvc:float -> Expr.basis array -> inputs:float array array -> targets:float array ->
  t option
(** Least-squares weighting of the basis functions; [None] for invalid
    models.  An empty basis array yields the constant model. *)

val predict_point : t -> float array -> float

val predict : t -> float array array -> float array

val error_on : t -> inputs:float array array -> targets:float array -> float
(** Normalized error on a dataset; [infinity] when predictions are not
    finite. *)

val num_bases : t -> int

val to_string : var_names:string array -> t -> string
(** Paper-style rendering, e.g.
    ["90.5 + 190.6 * id1 / vsg1 + 22.2 * id2 / vds2"]. *)

val simplify : wb:float -> wvc:float -> t -> t
(** Algebraic cleanup: fold constant subexpressions into the linear weights
    and the intercept, drop zero-weight bases, recompute complexity.  The
    predictions are unchanged (up to rounding). *)

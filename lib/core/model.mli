(** A fitted CAFFEINE model: a set of basis-function trees with
    least-squares-learned linear weights, plus its training error and the
    complexity measure of eq. (1).

    All batch evaluation goes through the compiled engine: basis value
    columns come from {!Caffeine_io.Dataset.basis_column} (tape-compiled,
    memoized per dataset) rather than re-interpreting the trees. *)

module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset

type t = {
  bases : Expr.basis array;
  intercept : float;
  weights : float array;  (** same length as [bases] *)
  train_error : float;  (** normalized error on the fitting data *)
  complexity : float;
}

val complexity_of : wb:float -> wvc:float -> Expr.basis array -> float
(** Eq. (1): [Σ_j (w_b + nnodes(j) + Σ_k w_vc·Σ_d |vc_k(d)|)]. *)

val basis_columns : Expr.basis array -> Dataset.t -> float array array option
(** Evaluate each basis on each sample (memoized on the dataset); [None]
    when any value is not finite (the model is invalid on this data).  The
    returned columns are the dataset's cached arrays — do not mutate. *)

val fit :
  wb:float -> wvc:float -> Expr.basis array -> data:Dataset.t -> targets:float array ->
  t option
(** Least-squares weighting of the basis functions; [None] for invalid
    models.  An empty basis array yields the constant model. *)

val evaluator : t -> float array -> float
(** [evaluator model] compiles every basis once and returns a fast
    point-evaluation closure — use it when probing many single points
    (sensitivities, exported-code checks). *)

val predict_point : t -> float array -> float
(** One-shot [evaluator model x]; prefer {!evaluator} or {!predict} in
    loops. *)

val predict : t -> Dataset.t -> float array
(** Batched response over a dataset, from cached basis columns. *)

val warm : t -> Dataset.t -> unit
(** Fill the dataset's column cache for every basis of the model through
    one fused tape ({!Dataset.warm_columns}): subtrees shared between the
    model's bases evaluate once.  Purely a throughput optimization —
    subsequent {!predict} / {!error_on} calls return bit-identical
    results with or without warming. *)

val warm_front : t list -> Dataset.t -> unit
(** {!warm} for a whole front at once, sharing subtrees {e across}
    models — fronts grown by the search overlap heavily, so this is the
    cheap way to prepare SAG, scoring and export passes. *)

val error_on : t -> data:Dataset.t -> targets:float array -> float
(** Normalized error on a dataset; [infinity] when predictions are not
    finite. *)

val num_bases : t -> int

val to_string : var_names:string array -> t -> string
(** Paper-style rendering, e.g.
    ["90.5 + 190.6 * id1 / vsg1 + 22.2 * id2 / vds2"]. *)

val simplify : wb:float -> wvc:float -> t -> t
(** Algebraic cleanup: fold constant subexpressions into the linear weights
    and the intercept, drop zero-weight bases, recompute complexity.  The
    predictions are unchanged (up to rounding). *)

module Json = Caffeine_obs.Json
module Trace = Caffeine_obs.Trace
module Metrics = Caffeine_obs.Metrics

exception Worker_failed of string

type event =
  | Record of Trace.record
  | Progress_saved of int
  | Done_saved

let m_workers = Metrics.counter Metrics.default "shard.workers_spawned"
let m_migrations = Metrics.counter Metrics.default "shard.migrations"
let m_bytes = Metrics.counter Metrics.default "shard.bytes_exchanged"

(* Workers to kill when the coordinator leaves through [Stdlib.exit] from
   inside a user callback (the CLI's --kill-after does exactly that):
   [Fun.protect] does not run across [exit], this hook does.  Workers
   themselves leave through [Unix._exit], which skips it. *)
let live_children : int list ref = ref []

let () =
  at_exit (fun () ->
      List.iter
        (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        !live_children)

(* --- EINTR-safe syscall wrappers ---------------------------------------- *)

let rec retry_read fd bytes pos len =
  match Unix.read fd bytes pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd bytes pos len

let rec retry_select read_fds =
  match Unix.select read_fds [] [] (-1.) with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_select read_fds

let rec retry_waitpid pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_waitpid pid

let write_all fd line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    match Unix.write fd bytes !written (len - !written) with
    | n -> written := !written + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Metrics.add m_bytes len

(* --- wire helpers -------------------------------------------------------- *)

let hello_line islands =
  Printf.sprintf "{\"type\":\"shard_hello\",\"version\":%d,\"islands\":%d}" Checkpoint.version
    islands

let error_line message =
  let buffer = Buffer.create 96 in
  Buffer.add_string buffer "{\"type\":\"shard_error\",\"message\":";
  Json.add_string buffer message;
  Buffer.add_char buffer '}';
  Buffer.contents buffer

(* --- worker side --------------------------------------------------------- *)

let worker_main ~run_island ic oc =
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  (* Drain the assignment pipe to EOF before doing any work: the
     coordinator writes everything up front and closes its end, so this
     cannot deadlock, and it frees the coordinator to enter its read
     loop. *)
  let assignments = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Checkpoint.island_of_json (Json.parse_exn line) with
         | assignment -> assignments := assignment :: !assignments
         | exception Json.Parse_error _ -> () (* the hello line *)
     done
   with End_of_file -> ());
  let emit record = send (Trace.to_line record) in
  List.iter
    (fun (index, state) ->
      let progress ~gen ~rng ~population =
        send (Checkpoint.island_to_line ~index (Checkpoint.In_progress { gen; rng; population }))
      in
      let front = run_island ~emit ~progress ~island:index state in
      send (Checkpoint.island_to_line ~index (Checkpoint.Done front)))
    (List.rev !assignments)

let run_worker ~run_island ~close_in_child assignment_fd result_fd =
  (* In the forked child.  Everything of the parent — stack, at_exit
     handlers, buffered channels, even worker domains' descriptors — is a
     live copy here, so: close every inherited pipe end that is not ours
     (a stray duplicate of another worker's write end would mask that
     worker's EOF from the coordinator), never print, and leave through
     [Unix._exit] so nothing inherited gets flushed or re-run. *)
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    close_in_child;
  let ic = Unix.in_channel_of_descr assignment_fd in
  let oc = Unix.out_channel_of_descr result_fd in
  let code =
    match worker_main ~run_island ic oc with
    | () -> 0
    | exception exn ->
        (try
           output_string oc (error_line (Printexc.to_string exn));
           output_char oc '\n';
           flush oc
         with _ -> ());
        10
  in
  (try flush oc with _ -> ());
  Unix._exit code

(* --- coordinator side ---------------------------------------------------- *)

type worker = {
  pid : int;
  shard : int;
  fd : Unix.file_descr;  (* result pipe, read end *)
  buf : Buffer.t;
  mutable scanned : int;  (* buffer prefix known to hold no newline *)
  mutable pending : int list;  (* assigned islands not yet done, in order *)
  mutable eof : bool;
  mutable error : string option;
}

let fate = function
  | Unix.WEXITED 0 -> None
  | Unix.WEXITED code -> Some (Printf.sprintf "exited with code %d" code)
  | Unix.WSIGNALED signal -> Some (Printf.sprintf "killed by signal %d" signal)
  | Unix.WSTOPPED signal -> Some (Printf.sprintf "stopped by signal %d" signal)

let run_islands ~shards ?on_progress ?on_done ?(deliver = fun ~island:_ _ -> ()) ~run_island
    islands =
  let n = Array.length islands in
  let results =
    Array.map (function Checkpoint.Done front -> Some front | _ -> None) islands
  in
  let todo =
    Array.to_list (Array.init n Fun.id)
    |> List.filter (fun k -> match islands.(k) with Checkpoint.Done _ -> false | _ -> true)
  in
  if todo = [] then Array.map (function Some front -> front | None -> assert false) results
  else begin
    let shards = Stdlib.max 1 (Stdlib.min shards (List.length todo)) in
    (* Unfinished islands are dealt round-robin: the island at position p
       of the remaining work goes to worker [p mod shards]. *)
    let assigned = Array.make shards [] in
    List.iteri (fun p k -> assigned.(p mod shards) <- k :: assigned.(p mod shards)) todo;
    let assigned = Array.map List.rev assigned in
    (* Ordered delivery: worker output arrives in any interleaving, so
       events queue per island and are released in island order. *)
    let queues = Array.make n [] in
    let finished =
      Array.map (function Checkpoint.Done _ -> true | _ -> false) islands
    in
    let cursor = ref 0 in
    let flush_queue k =
      let events = List.rev queues.(k) in
      queues.(k) <- [];
      List.iter (fun ev -> deliver ~island:k ev) events
    in
    let rec advance () =
      if !cursor < n then begin
        flush_queue !cursor;
        if finished.(!cursor) then begin
          incr cursor;
          advance ()
        end
      end
    in
    let enqueue k ev = if k = !cursor then deliver ~island:k ev else queues.(k) <- ev :: queues.(k) in
    let mark_done k =
      finished.(k) <- true;
      if k = !cursor then advance ()
    in
    (* A worker that crashes before writing any pipe output must still
       kill the run, not hang it: writes to its closed assignment pipe
       would raise SIGPIPE and take the coordinator down before the
       EPIPE/EOF handling gets a chance. *)
    let previous_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    let workers = ref [] in
    let statuses = ref [] in
    let reaped = ref false in
    let reap ~kill =
      if not !reaped then begin
        reaped := true;
        if kill then
          List.iter
            (fun w -> try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
            !workers;
        List.iter
          (fun w -> if not w.eof then try Unix.close w.fd with Unix.Unix_error _ -> ())
          !workers;
        statuses := List.map (fun w -> (w, retry_waitpid w.pid)) !workers;
        let pids = List.map (fun w -> w.pid) !workers in
        live_children := List.filter (fun pid -> not (List.mem pid pids)) !live_children
      end
    in
    Fun.protect
      ~finally:(fun () ->
        reap ~kill:true;
        Sys.set_signal Sys.sigpipe previous_sigpipe)
    @@ fun () ->
    (* Spawn, then feed each worker its assignments immediately: the
       child reads to EOF before computing, so these writes drain without
       deadlock however large a resumed population is. *)
    for shard = 0 to shards - 1 do
      let assignment_read, assignment_write = Unix.pipe () in
      let result_read, result_write = Unix.pipe () in
      let inherited = List.map (fun w -> w.fd) !workers in
      match Unix.fork () with
      | 0 ->
          run_worker ~run_island
            ~close_in_child:(assignment_write :: result_read :: inherited)
            assignment_read result_write
      | pid ->
          Unix.close assignment_read;
          Unix.close result_write;
          live_children := pid :: !live_children;
          Metrics.incr m_workers;
          let worker =
            {
              pid;
              shard;
              fd = result_read;
              buf = Buffer.create 4096;
              scanned = 0;
              pending = assigned.(shard);
              eof = false;
              error = None;
            }
          in
          workers := worker :: !workers;
          (try
             write_all assignment_write (hello_line (List.length assigned.(shard)));
             List.iter
               (fun k -> write_all assignment_write (Checkpoint.island_to_line ~index:k islands.(k)))
               assigned.(shard)
           with Unix.Unix_error (Unix.EPIPE, _, _) ->
             worker.error <- Some "died before receiving its assignments");
          Unix.close assignment_write
    done;
    let workers = List.rev !workers in
    let handle_island w line json =
      let index, state = Checkpoint.island_of_json json in
      match state with
      | Checkpoint.Pending _ -> w.error <- Some "sent a pending island line"
      | Checkpoint.In_progress { gen; _ } -> (
          islands.(index) <- state;
          match on_progress with
          | Some f ->
              f ~island:index ~gen;
              enqueue index (Progress_saved gen)
          | None -> ())
      | Checkpoint.Done front ->
          islands.(index) <- state;
          results.(index) <- Some front;
          Metrics.incr m_migrations;
          enqueue index
            (Record
               (Trace.Migration
                  {
                    island = index;
                    shard = w.shard;
                    models = List.length front;
                    bytes = String.length line;
                  }));
          (match on_done with
          | Some f ->
              f ~island:index;
              enqueue index Done_saved
          | None -> ());
          w.pending <- List.filter (fun k -> k <> index) w.pending;
          mark_done index
    in
    let handle_line w line =
      if String.trim line <> "" then begin
        Metrics.add m_bytes (String.length line);
        match Json.parse_exn line with
        | exception Json.Parse_error message ->
            w.error <- Some (Printf.sprintf "sent an unparsable line: %s" message)
        | json -> (
            let fields = Json.obj json in
            match Json.str_of fields "type" with
            | "island" -> handle_island w line json
            | "shard_error" -> w.error <- Some (Json.str_of fields "message")
            | _ -> (
                match Trace.of_line line with
                | Ok record -> (
                    match w.pending with
                    | k :: _ -> enqueue k (Record record)
                    | [] -> w.error <- Some "sent a trace record after finishing its islands")
                | Error message ->
                    w.error <- Some (Printf.sprintf "sent an unknown record: %s" message)))
      end
    in
    let drain_lines w =
      let length = Buffer.length w.buf in
      let last_newline = ref (-1) in
      for i = w.scanned to length - 1 do
        if Buffer.nth w.buf i = '\n' then last_newline := i
      done;
      if !last_newline < 0 then w.scanned <- length
      else begin
        let complete = Buffer.sub w.buf 0 !last_newline in
        let rest = Buffer.sub w.buf (!last_newline + 1) (length - !last_newline - 1) in
        Buffer.clear w.buf;
        Buffer.add_string w.buf rest;
        w.scanned <- String.length rest;
        List.iter (fun line -> handle_line w line) (String.split_on_char '\n' complete)
      end
    in
    let chunk = Bytes.create 65536 in
    let rec pump () =
      let open_fds = List.filter_map (fun w -> if w.eof then None else Some w.fd) workers in
      if open_fds <> [] then begin
        let readable = retry_select open_fds in
        List.iter
          (fun fd ->
            let w = List.find (fun w -> w.fd = fd) workers in
            let count = retry_read fd chunk 0 (Bytes.length chunk) in
            if count = 0 then begin
              w.eof <- true;
              Unix.close fd
            end
            else begin
              Buffer.add_subbytes w.buf chunk 0 count;
              drain_lines w
            end)
          readable;
        pump ()
      end
    in
    pump ();
    reap ~kill:false;
    let failures =
      List.concat_map
        (fun (w, status) ->
          let fate_message = fate status in
          let leftover = w.pending in
          let problems =
            (match w.error with Some message -> [ message ] | None -> [])
            @ (match fate_message with Some message -> [ message ] | None -> [])
            @
            if leftover <> [] && w.error = None && fate_message = None then
              [ "closed its pipe" ]
            else []
          in
          if problems = [] && leftover = [] then []
          else
            [
              Printf.sprintf "worker %d (pid %d) %s%s" w.shard w.pid
                (String.concat "; " (if problems = [] then [ "misbehaved" ] else problems))
                (if leftover = [] then ""
                 else
                   Printf.sprintf " with island(s) %s unfinished"
                     (String.concat ", " (List.map string_of_int leftover)));
            ])
        !statuses
    in
    if failures <> [] then raise (Worker_failed ("shard: " ^ String.concat "; " failures));
    advance ();
    Array.map (function Some front -> front | None -> assert false) results
  end

(** Random generation of canonical-form expressions.

    Every generated tree follows the derivation rules of the CAFFEINE
    grammar for the enabled operator set, with a hard depth budget so
    initialization cannot bloat. *)

module Expr = Caffeine_expr.Expr

val random_vc :
  Caffeine_util.Rng.t -> Opset.t -> dims:int -> max_vars:int -> Expr.vc
(** A variable combo touching 1..[max_vars] distinct variables, exponents
    drawn from the opset's allowed range with a bias towards ±1.
    Requires [opset.allow_vc]. *)

val random_basis :
  Caffeine_util.Rng.t -> Opset.t -> dims:int -> depth:int -> max_vc_vars:int -> Expr.basis
(** A basis function (REPVC derivation) within the remaining [depth]. *)

val random_wsum :
  Caffeine_util.Rng.t -> Opset.t -> dims:int -> depth:int -> max_vc_vars:int -> Expr.wsum
(** A weighted sum ('W' '+' REPADD derivation). *)

val random_individual :
  Caffeine_util.Rng.t -> Config.t -> dims:int -> Expr.basis array
(** A fresh individual: a small set (1..max(1, max_bases/3)) of basis
    functions. *)

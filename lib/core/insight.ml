module Expr = Caffeine_expr.Expr

let variables_used (model : Model.t) =
  let used = Hashtbl.create 16 in
  Array.iter
    (fun basis -> List.iter (fun i -> Hashtbl.replace used i ()) (Expr.variables_of_basis basis))
    model.Model.bases;
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) used [])

let unused_variables ~dims model =
  let used = variables_used model in
  List.filter (fun i -> not (List.mem i used)) (List.init dims (fun i -> i))

let sensitivities (model : Model.t) ~at =
  let dims = Array.length at in
  (* Compile the bases once; every probe is then a flat tape walk. *)
  let f = Model.evaluator model in
  let base_value = f at in
  let used = variables_used model in
  Array.init dims (fun i ->
      if not (List.mem i used) then 0.
      else begin
        let h = 1e-4 *. Float.max (Float.abs at.(i)) 1e-12 in
        let probe delta =
          let x = Array.copy at in
          x.(i) <- x.(i) +. delta;
          f x
        in
        let plus = probe h and minus = probe (-.h) in
        let derivative = (plus -. minus) /. (2. *. h) in
        if
          Float.is_finite derivative && Float.is_finite base_value && base_value <> 0.
        then derivative *. at.(i) /. base_value
        else Float.nan
      end)

let exact_sensitivities (model : Model.t) ~at =
  let ws =
    {
      Expr.bias = model.Model.intercept;
      terms =
        Array.to_list (Array.mapi (fun j basis -> (model.Model.weights.(j), basis)) model.Model.bases);
    }
  in
  let base_value = Model.predict_point model at in
  let gradient = Caffeine_expr.Deriv.gradient_wsum ws at in
  Array.mapi
    (fun i g ->
      if g = 0. then 0.
      else if Float.is_finite g && Float.is_finite base_value && base_value <> 0. then
        g *. at.(i) /. base_value
      else Float.nan)
    gradient

let dominant_variables ?(top = 5) model ~at =
  let s = sensitivities model ~at in
  let ranked =
    List.filter (fun (_, v) -> Float.is_finite v && v <> 0.)
      (Array.to_list (Array.mapi (fun i v -> (i, v)) s))
  in
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) ranked
  in
  List.filteri (fun k _ -> k < top) sorted

let sobol_first_order ?(samples = 1024) rng (model : Model.t) ~lo ~hi =
  let dims = Array.length lo in
  if Array.length hi <> dims then invalid_arg "Insight.sobol_first_order: bound width mismatch";
  if dims = 0 then [||]
  else begin
  let module Rng = Caffeine_util.Rng in
  let draw_point () = Array.init dims (fun i -> Rng.range rng lo.(i) hi.(i)) in
  (* Saltelli pick-freeze: f(A), f(B), and f(AB_i) where AB_i takes column i
     from B and the rest from A. *)
  let a = Array.init samples (fun _ -> draw_point ()) in
  let b = Array.init samples (fun _ -> draw_point ()) in
  (* Batch every response through the compiled engine: one dataset per
     sample matrix instead of a tree interpretation per point.  Each fresh
     dataset's columns are filled by one fused pass over the model's bases
     (shared subtrees computed once) before [predict] reads them. *)
  let batch rows =
    let data = Caffeine_io.Dataset.of_rows rows in
    Model.warm model data;
    Model.predict model data
  in
  let fa = batch a in
  let fb = batch b in
  let valid = Array.map Float.is_finite fa in
  let finite_values =
    Array.of_list (List.filteri (fun k _ -> valid.(k)) (Array.to_list fa))
  in
  if Array.length finite_values < 2 then Array.make dims 0.
  else begin
    let total_variance = Caffeine_util.Stats.variance finite_values in
    if total_variance <= 0. then Array.make dims 0.
    else begin
      (* Center the outputs before forming products: the Saltelli estimator
         E[f_B·(f_AB − f_A)] is exact in expectation but its Monte-Carlo
         error scales with the squared mean, which dwarfs the variance for
         offset-dominated models.  Subtracting the sample mean removes that
         amplification without changing the expectation. *)
      let mean = Caffeine_util.Stats.mean finite_values in
      Array.init dims (fun i ->
          let f_mixed_all =
            batch
              (Array.init samples (fun k ->
                   let mixed = Array.copy a.(k) in
                   mixed.(i) <- b.(k).(i);
                   mixed))
          in
          let acc = ref 0. in
          let count = ref 0 in
          for k = 0 to samples - 1 do
            if valid.(k) then begin
              let f_mixed = f_mixed_all.(k) in
              let f_b = fb.(k) in
              if Float.is_finite f_mixed && Float.is_finite f_b then begin
                (* Saltelli 2010: S_i = (1/N) Σ f(B)·(f(AB_i) − f(A)) / Var. *)
                acc := !acc +. ((f_b -. mean) *. (f_mixed -. fa.(k)));
                incr count
              end
            end
          done;
          if !count = 0 then 0.
          else
            let estimate = !acc /. float_of_int !count /. total_variance in
            Float.max 0. (Float.min 1. estimate))
    end
  end
  end

let usage_along_front models =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun model ->
      List.iter
        (fun i ->
          Hashtbl.replace counts i (1 + Option.value ~default:0 (Hashtbl.find_opt counts i)))
        (variables_used model))
    models;
  let entries = Hashtbl.fold (fun i n acc -> (i, n) :: acc) counts [] in
  List.sort (fun (i1, n1) (i2, n2) -> if n1 <> n2 then compare n2 n1 else compare i1 i2) entries

let report ~var_names ~at model =
  let buffer = Buffer.create 256 in
  let name i = if i < Array.length var_names then var_names.(i) else Printf.sprintf "x%d" i in
  Buffer.add_string buffer ("model: " ^ Model.to_string ~var_names model ^ "\n");
  let used = variables_used model in
  Buffer.add_string buffer
    ("variables used: "
    ^ (if used = [] then "(none — constant model)" else String.concat ", " (List.map name used))
    ^ "\n");
  let dominant = dominant_variables model ~at in
  if dominant <> [] then begin
    Buffer.add_string buffer "relative sensitivities at the given point:\n";
    List.iter
      (fun (i, s) -> Buffer.add_string buffer (Printf.sprintf "  %-8s %+.3f\n" (name i) s))
      dominant
  end;
  Buffer.contents buffer

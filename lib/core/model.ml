module Expr = Caffeine_expr.Expr
module Compiled = Caffeine_expr.Compiled
module Dataset = Caffeine_io.Dataset
module Linfit = Caffeine_regress.Linfit
module Stats = Caffeine_util.Stats

type t = {
  bases : Expr.basis array;
  intercept : float;
  weights : float array;
  train_error : float;
  complexity : float;
}

let complexity_of ~wb ~wvc bases =
  Array.fold_left
    (fun acc basis ->
      let vc_cost =
        List.fold_left
          (fun sum vc -> sum +. (wvc *. float_of_int (Array.fold_left (fun a e -> a + abs e) 0 vc)))
          0. (Expr.vcs_of_basis basis)
      in
      acc +. wb +. float_of_int (Expr.nnodes_basis basis) +. vc_cost)
    0. bases

let basis_columns bases data =
  let columns = Array.map (Dataset.basis_column data) bases in
  if Array.for_all Stats.is_finite_array columns then Some columns else None

let accept ~wb ~wvc bases fitted =
  if
    Float.is_finite fitted.Linfit.train_error
    && Float.is_finite fitted.Linfit.intercept
    && Stats.is_finite_array fitted.Linfit.weights
  then
    Some
      {
        bases;
        intercept = fitted.Linfit.intercept;
        weights = fitted.Linfit.weights;
        train_error = fitted.Linfit.train_error;
        complexity = complexity_of ~wb ~wvc bases;
      }
  else None

(* Out-of-core fit: the bordered Gram is accumulated (or served from the
   dot cache) in one pass over the chunks by [Dataset.gram], the solve is
   the same guarded Cholesky core as the dense path, and the prediction
   pass re-streams the chunks.  Every product and every prediction is
   bit-identical to the dense computation, so the two storage paths
   produce byte-identical fronts. *)
let fit_streamed ~wb ~wvc bases ~data ~targets =
  let g = Dataset.gram data bases ~targets in
  if not (Array.for_all Fun.id g.Dataset.finite_bases) then None
  else
    match
      Linfit.fit_stream
        ~dot:(fun i j -> g.Dataset.dots.(i).(j))
        ~dot_y:(fun i -> g.Dataset.dot_ys.(i))
        ~col_sum:(fun i -> g.Dataset.col_sums.(i))
        ~k:(Array.length bases) ~n:(Dataset.n_samples data)
        ~iter:(fun f -> Dataset.iter_basis_chunks data bases ~f)
        ~targets
    with
    | fitted -> accept ~wb ~wvc bases fitted
    | exception Caffeine_linalg.Decomp.Singular -> None

let fit ~wb ~wvc bases ~data ~targets =
  if Dataset.is_chunked data && Array.length bases > 0 then
    fit_streamed ~wb ~wvc bases ~data ~targets
  else
    match basis_columns bases data with
    | None -> None
    | Some columns -> (
        (* Per-individual fits go through the Gram fast path: every entry of
           the bordered Gram matrix is a dot product memoized on the dataset,
           so individuals whose bases recur across the population (the common
           case under set crossover) reuse cached products instead of
           refactorizing from scratch. *)
        match
          Linfit.fit_gram
            ~dot:(fun i j -> Dataset.dot data bases.(i) bases.(j))
            ~dot_y:(fun i -> Dataset.dot_target data bases.(i) ~targets)
            ~col_sum:(fun i -> Dataset.column_sum data bases.(i))
            ~basis_values:columns ~targets
        with
        | fitted -> accept ~wb ~wvc bases fitted
        | exception Caffeine_linalg.Decomp.Singular -> None)

let evaluator model =
  let compiled = Array.map Compiled.compile model.bases in
  fun x ->
    let acc = ref model.intercept in
    Array.iteri
      (fun j c -> acc := !acc +. (model.weights.(j) *. Compiled.eval_point c x))
      compiled;
    !acc

let predict_point model x = evaluator model x

let predict model data =
  let n = Dataset.n_samples data in
  let predictions = Array.make n model.intercept in
  Array.iteri
    (fun j basis ->
      let column = Dataset.basis_column data basis in
      let w = model.weights.(j) in
      for i = 0 to n - 1 do
        predictions.(i) <- predictions.(i) +. (w *. column.(i))
      done)
    model.bases;
  predictions

let warm model data = ignore (Dataset.warm_columns data model.bases : Dataset.fuse_stats)

let warm_front front data =
  ignore
    (Dataset.warm_columns data (Array.concat (List.map (fun m -> m.bases) front))
      : Dataset.fuse_stats)

let error_on model ~data ~targets =
  let predictions = predict model data in
  if Stats.is_finite_array predictions then Stats.normalized_error targets predictions
  else Float.infinity

let num_bases model = Array.length model.bases

let to_string ~var_names model =
  let terms =
    Array.to_list (Array.mapi (fun j basis -> (model.weights.(j), basis)) model.bases)
  in
  let visible = List.filter (fun (w, _) -> w <> 0.) terms in
  Expr.wsum_to_string ~var_names { Expr.bias = model.intercept; terms = visible }

let simplify ~wb ~wvc model =
  let intercept = ref model.intercept in
  let kept = ref [] in
  Array.iteri
    (fun j basis ->
      let weight = model.weights.(j) in
      if weight <> 0. then begin
        let scale, simplified = Expr.simplify_basis basis in
        match simplified with
        | None -> intercept := !intercept +. (weight *. scale)
        | Some b ->
            let w = weight *. scale in
            if w <> 0. then kept := (w, b) :: !kept
      end)
    model.bases;
  let kept = List.rev !kept in
  let bases = Array.of_list (List.map snd kept) in
  let weights = Array.of_list (List.map fst kept) in
  {
    bases;
    intercept = !intercept;
    weights;
    train_error = model.train_error;
    complexity = complexity_of ~wb ~wvc bases;
  }

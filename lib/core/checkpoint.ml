module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op
module Nsga2 = Caffeine_evo.Nsga2
module Dataset = Caffeine_io.Dataset
module Json = Caffeine_obs.Json
module Metrics = Caffeine_obs.Metrics

type population = Vary.individual Nsga2.individual array

type island =
  | Pending of Rng.state
  | In_progress of { gen : int; rng : Rng.state; population : population }
  | Done of Model.t list

type phase =
  | Evolving of island array
  | Simplifying of { front : Model.t list; processed : Model.t list }

type t = { fingerprint : string; seed : int; restarts : int; phase : phase }

let version = 1

let phase_name = function Evolving _ -> "evolving" | Simplifying _ -> "simplifying"

(* The fingerprint covers every input that determines the search result:
   all config fields except [jobs] (parallelism never changes results, and
   resuming at a different --jobs is a supported use), the operator set,
   and the full data and targets rendered with %.17g so the digest changes
   iff some bit of some input changes. *)
let fingerprint (config : Config.t) ~data ~targets =
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "v%d;pop=%d;gens=%d;max_bases=%d;max_depth=%d;" version config.pop_size config.generations
    config.max_bases config.max_depth;
  add "wb=%.17g;wvc=%.17g;pmw=%.17g;cx=%.17g;max_vc_vars=%d;" config.wb config.wvc
    config.param_mutation_weight config.crossover_probability config.max_vc_vars;
  let opset = config.opset in
  add "unops=%s;"
    (String.concat "," (List.map Op.unary_name (Array.to_list opset.Opset.unops)));
  add "binops=%s;"
    (String.concat "," (List.map Op.binary_name (Array.to_list opset.Opset.binops)));
  add "lte=%b;vc=%b;nonlinear=%b;max_exp=%d;min_exp=%d;" opset.Opset.allow_lte
    opset.Opset.allow_vc opset.Opset.allow_nonlinear opset.Opset.max_exponent
    opset.Opset.min_exponent;
  add "n=%d;dims=%d;vars=%s;" (Dataset.n_samples data) (Dataset.dims data)
    (String.concat "," (Array.to_list (Dataset.var_names data)));
  Array.iter (fun y -> add "%.17g," y) targets;
  for v = 0 to Dataset.dims data - 1 do
    Array.iter (fun x -> add "%.17g," x) (Dataset.column data v)
  done;
  Digest.to_hex (Digest.string (Buffer.contents buffer))

let validate t ~fingerprint ~seed ~restarts =
  if t.fingerprint <> fingerprint then
    Error "checkpoint fingerprint does not match this run's config, data or targets"
  else if t.seed <> seed then
    Error (Printf.sprintf "checkpoint was written with seed %d, not %d" t.seed seed)
  else if t.restarts <> restarts then
    Error (Printf.sprintf "checkpoint was written with %d island(s), not %d" t.restarts restarts)
  else Ok ()

(* {2 Expression encoding}

   A direct tree encoding with exact floats — models must survive a
   round-trip bit-identically, which rules out the pretty-printed infix of
   Model_io (it rounds weights for human eyes). *)

let rec add_basis buffer (basis : Expr.basis) =
  Buffer.add_string buffer "{\"vc\":";
  (match basis.Expr.vc with
  | None -> Buffer.add_string buffer "null"
  | Some vc ->
      Buffer.add_char buffer '[';
      Array.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_string buffer (string_of_int e))
        vc;
      Buffer.add_char buffer ']');
  Buffer.add_string buffer ",\"f\":[";
  List.iteri
    (fun i factor ->
      if i > 0 then Buffer.add_char buffer ',';
      add_factor buffer factor)
    basis.Expr.factors;
  Buffer.add_string buffer "]}"

and add_factor buffer = function
  | Expr.Unary (op, w) ->
      Buffer.add_string buffer "[\"u\",";
      Json.add_string buffer (Op.unary_name op);
      Buffer.add_char buffer ',';
      add_wsum buffer w;
      Buffer.add_char buffer ']'
  | Expr.Binary (op, a1, a2) ->
      Buffer.add_string buffer "[\"b\",";
      Json.add_string buffer (Op.binary_name op);
      Buffer.add_char buffer ',';
      add_arg buffer a1;
      Buffer.add_char buffer ',';
      add_arg buffer a2;
      Buffer.add_char buffer ']'
  | Expr.Lte { test; threshold; less; otherwise } ->
      Buffer.add_string buffer "[\"lte\",";
      add_wsum buffer test;
      Buffer.add_char buffer ',';
      add_arg buffer threshold;
      Buffer.add_char buffer ',';
      add_arg buffer less;
      Buffer.add_char buffer ',';
      add_arg buffer otherwise;
      Buffer.add_char buffer ']'

and add_arg buffer = function
  | Expr.Const c ->
      Buffer.add_string buffer "[\"c\",";
      Json.add_float buffer c;
      Buffer.add_char buffer ']'
  | Expr.Sum w ->
      Buffer.add_string buffer "[\"s\",";
      add_wsum buffer w;
      Buffer.add_char buffer ']'

and add_wsum buffer (w : Expr.wsum) =
  Buffer.add_string buffer "{\"bias\":";
  Json.add_float buffer w.Expr.bias;
  Buffer.add_string buffer ",\"t\":[";
  List.iteri
    (fun i (weight, basis) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_char buffer '[';
      Json.add_float buffer weight;
      Buffer.add_char buffer ',';
      add_basis buffer basis;
      Buffer.add_char buffer ']')
    w.Expr.terms;
  Buffer.add_string buffer "]}"

let rec basis_of json : Expr.basis =
  let fields = Json.obj json in
  let vc =
    match Json.member fields "vc" with
    | Json.Null -> None
    | Json.Arr elements -> Some (Array.of_list (List.map (Json.to_int "vc") elements))
    | _ -> raise (Json.Parse_error "field \"vc\" must be an array or null")
  in
  { Expr.vc; factors = List.map factor_of (Json.arr_of fields "f") }

and factor_of = function
  | Json.Arr [ Json.Str "u"; name; w ] -> (
      let name = Json.to_str "unary operator" name in
      match Op.unary_of_name name with
      | Some op -> Expr.Unary (op, wsum_of w)
      | None -> raise (Json.Parse_error (Printf.sprintf "unknown unary operator %S" name)))
  | Json.Arr [ Json.Str "b"; name; a1; a2 ] -> (
      let name = Json.to_str "binary operator" name in
      match Op.binary_of_name name with
      | Some op -> Expr.Binary (op, arg_of a1, arg_of a2)
      | None -> raise (Json.Parse_error (Printf.sprintf "unknown binary operator %S" name)))
  | Json.Arr [ Json.Str "lte"; test; threshold; less; otherwise ] ->
      Expr.Lte
        {
          test = wsum_of test;
          threshold = arg_of threshold;
          less = arg_of less;
          otherwise = arg_of otherwise;
        }
  | _ -> raise (Json.Parse_error "malformed factor")

and arg_of = function
  | Json.Arr [ Json.Str "c"; v ] -> Expr.Const (Json.to_float "constant" v)
  | Json.Arr [ Json.Str "s"; w ] -> Expr.Sum (wsum_of w)
  | _ -> raise (Json.Parse_error "malformed operator argument")

and wsum_of json : Expr.wsum =
  let fields = Json.obj json in
  {
    Expr.bias = Json.float_of fields "bias";
    terms =
      List.map
        (function
          | Json.Arr [ w; basis ] -> (Json.to_float "term weight" w, basis_of basis)
          | _ -> raise (Json.Parse_error "malformed weighted term"))
        (Json.arr_of fields "t");
  }

(* {2 Model / individual / rng-state encoding} *)

let add_float_array buffer values =
  Buffer.add_char buffer '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buffer ',';
      Json.add_float buffer v)
    values;
  Buffer.add_char buffer ']'

let float_array_of fields name =
  Array.of_list (List.map (Json.to_float name) (Json.arr_of fields name))

let add_model buffer (model : Model.t) =
  Buffer.add_string buffer "{\"bases\":[";
  Array.iteri
    (fun i basis ->
      if i > 0 then Buffer.add_char buffer ',';
      add_basis buffer basis)
    model.Model.bases;
  Buffer.add_string buffer "],\"intercept\":";
  Json.add_float buffer model.Model.intercept;
  Buffer.add_string buffer ",\"weights\":";
  add_float_array buffer model.Model.weights;
  Buffer.add_string buffer ",\"train_error\":";
  Json.add_float buffer model.Model.train_error;
  Buffer.add_string buffer ",\"complexity\":";
  Json.add_float buffer model.Model.complexity;
  Buffer.add_char buffer '}'

let model_of json : Model.t =
  let fields = Json.obj json in
  {
    Model.bases = Array.of_list (List.map basis_of (Json.arr_of fields "bases"));
    intercept = Json.float_of fields "intercept";
    weights = float_array_of fields "weights";
    train_error = Json.float_of fields "train_error";
    complexity = Json.float_of fields "complexity";
  }

let add_models buffer models =
  Buffer.add_char buffer '[';
  List.iteri
    (fun i model ->
      if i > 0 then Buffer.add_char buffer ',';
      add_model buffer model)
    models;
  Buffer.add_char buffer ']'

let models_of fields name = List.map model_of (Json.arr_of fields name)

let add_individual buffer (ind : Vary.individual Nsga2.individual) =
  Buffer.add_string buffer "{\"genome\":[";
  Array.iteri
    (fun i basis ->
      if i > 0 then Buffer.add_char buffer ',';
      add_basis buffer basis)
    ind.Nsga2.genome;
  Buffer.add_string buffer "],\"obj\":";
  add_float_array buffer ind.Nsga2.objectives;
  Buffer.add_string buffer ",\"rank\":";
  Buffer.add_string buffer (string_of_int ind.Nsga2.rank);
  Buffer.add_string buffer ",\"crowding\":";
  Json.add_float buffer ind.Nsga2.crowding;
  Buffer.add_char buffer '}'

let individual_of json : Vary.individual Nsga2.individual =
  let fields = Json.obj json in
  {
    Nsga2.genome = Array.of_list (List.map basis_of (Json.arr_of fields "genome"));
    objectives = float_array_of fields "obj";
    rank = Json.int_of fields "rank";
    crowding = Json.float_of fields "crowding";
  }

(* Generator words travel as decimal int64 strings: they use all 64 bits,
   which neither a JSON number nor an OCaml float can carry exactly. *)
let add_rng_state buffer (state : Rng.state) =
  let word w = Json.add_string buffer (Int64.to_string w) in
  Buffer.add_char buffer '[';
  word state.Rng.w0;
  Buffer.add_char buffer ',';
  word state.Rng.w1;
  Buffer.add_char buffer ',';
  word state.Rng.w2;
  Buffer.add_char buffer ',';
  word state.Rng.w3;
  Buffer.add_char buffer ']'

let rng_state_of fields name : Rng.state =
  let word = function
    | Json.Str s -> (
        match Int64.of_string_opt s with
        | Some w -> w
        | None -> raise (Json.Parse_error (Printf.sprintf "field %S: bad generator word" name)))
    | _ -> raise (Json.Parse_error (Printf.sprintf "field %S: generator word must be a string" name))
  in
  match Json.arr_of fields name with
  | [ a; b; c; d ] -> { Rng.w0 = word a; w1 = word b; w2 = word c; w3 = word d }
  | _ -> raise (Json.Parse_error (Printf.sprintf "field %S: expected 4 generator words" name))

(* {2 Snapshot lines} *)

let header_line t =
  let buffer = Buffer.create 160 in
  Buffer.add_string buffer "{\"type\":\"caffeine_checkpoint\",\"version\":";
  Buffer.add_string buffer (string_of_int version);
  Buffer.add_string buffer ",\"fingerprint\":";
  Json.add_string buffer t.fingerprint;
  Buffer.add_string buffer ",\"seed\":";
  Buffer.add_string buffer (string_of_int t.seed);
  Buffer.add_string buffer ",\"restarts\":";
  Buffer.add_string buffer (string_of_int t.restarts);
  Buffer.add_string buffer ",\"phase\":";
  Json.add_string buffer (phase_name t.phase);
  Buffer.add_char buffer '}';
  Buffer.contents buffer

let island_line index island =
  let buffer = Buffer.create 4096 in
  let open_line status =
    Buffer.add_string buffer "{\"type\":\"island\",\"index\":";
    Buffer.add_string buffer (string_of_int index);
    Buffer.add_string buffer ",\"status\":";
    Json.add_string buffer status
  in
  (match island with
  | Pending rng ->
      open_line "pending";
      Buffer.add_string buffer ",\"rng\":";
      add_rng_state buffer rng
  | In_progress { gen; rng; population } ->
      open_line "in_progress";
      Buffer.add_string buffer ",\"gen\":";
      Buffer.add_string buffer (string_of_int gen);
      Buffer.add_string buffer ",\"rng\":";
      add_rng_state buffer rng;
      Buffer.add_string buffer ",\"population\":[";
      Array.iteri
        (fun i ind ->
          if i > 0 then Buffer.add_char buffer ',';
          add_individual buffer ind)
        population;
      Buffer.add_char buffer ']'
  | Done front ->
      open_line "done";
      Buffer.add_string buffer ",\"front\":";
      add_models buffer front);
  Buffer.add_char buffer '}';
  Buffer.contents buffer

let sag_line front processed =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\"type\":\"sag\",\"front\":";
  add_models buffer front;
  Buffer.add_string buffer ",\"processed\":";
  add_models buffer processed;
  Buffer.add_char buffer '}';
  Buffer.contents buffer

(* The island line doubles as the wire format of the multi-process island
   backend (Shard): the coordinator sends each worker its assignments as
   island lines, and workers send progress and final fronts back as
   island lines, so a migrated front is byte-for-byte what the snapshot
   file would hold. *)
let island_to_line ~index island = island_line index island

let island_of fields =
  match Json.str_of fields "status" with
  | "pending" -> Pending (rng_state_of fields "rng")
  | "in_progress" ->
      In_progress
        {
          gen = Json.int_of fields "gen";
          rng = rng_state_of fields "rng";
          population = Array.of_list (List.map individual_of (Json.arr_of fields "population"));
        }
  | "done" -> Done (models_of fields "front")
  | status -> raise (Json.Parse_error (Printf.sprintf "unknown island status %S" status))

let island_of_json json =
  let fields = Json.obj json in
  if Json.str_of fields "type" <> "island" then raise (Json.Parse_error "not an island line");
  (Json.int_of fields "index", island_of fields)

(* {2 Save / load} *)

let m_written = Metrics.counter Metrics.default "checkpoint.written"

let save ~path t =
  let tmp = path ^ ".tmp" in
  let channel = open_out tmp in
  (try
     output_string channel (header_line t);
     output_char channel '\n';
     (match t.phase with
     | Evolving islands ->
         Array.iteri
           (fun index island ->
             output_string channel (island_line index island);
             output_char channel '\n')
           islands
     | Simplifying { front; processed } ->
         output_string channel (sag_line front processed);
         output_char channel '\n');
     close_out channel
   with exn ->
     close_out_noerr channel;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  (* The rename is atomic on POSIX: a crash leaves either the previous
     snapshot or the new one, never a torn file. *)
  Sys.rename tmp path;
  Metrics.incr m_written

let load ~path =
  match open_in path with
  | exception Sys_error message -> Error message
  | channel -> (
      let lines = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line channel in
           incr lineno;
           if String.trim line <> "" then lines := (!lineno, line) :: !lines
         done
       with
      | End_of_file -> close_in_noerr channel
      | exn ->
          close_in_noerr channel;
          raise exn);
      (* Errors carry the 1-based line they were detected on, so a truncated
         or hand-damaged snapshot reports [file:line: message] instead of a
         bare exception.  Defects with no single offending line (a missing
         island, a wrong line count) fall back to [file: message]. *)
      let exception Located of int * string in
      let at lineno f =
        try f () with Json.Parse_error message -> raise (Located (lineno, message))
      in
      match
        List.rev_map (fun (lineno, line) -> (lineno, at lineno (fun () -> Json.parse_exn line)))
          !lines
      with
      | exception Located (lineno, message) ->
          Error (Printf.sprintf "%s:%d: %s" path lineno message)
      | [] -> Error (path ^ ": empty checkpoint file")
      | (header_line, header) :: rest -> (
          try
            let fingerprint, seed, restarts, phase_name =
              at header_line (fun () ->
                  let fields = Json.obj header in
                  if Json.str_of fields "type" <> "caffeine_checkpoint" then
                    raise (Json.Parse_error "not a checkpoint file");
                  let file_version = Json.int_of fields "version" in
                  if file_version <> version then
                    raise
                      (Json.Parse_error
                         (Printf.sprintf
                            "unsupported snapshot version %d (this build reads version %d)"
                            file_version version));
                  let restarts = Json.int_of fields "restarts" in
                  if restarts < 0 then
                    raise
                      (Json.Parse_error (Printf.sprintf "invalid restarts count %d" restarts));
                  ( Json.str_of fields "fingerprint",
                    Json.int_of fields "seed",
                    restarts,
                    Json.str_of fields "phase" ))
            in
            let phase =
              match phase_name with
              | "evolving" ->
                  let islands = Array.make restarts None in
                  List.iter
                    (fun (lineno, line) ->
                      at lineno (fun () ->
                          let fields = Json.obj line in
                          if Json.str_of fields "type" <> "island" then
                            raise (Json.Parse_error "expected an island line");
                          let index = Json.int_of fields "index" in
                          if index < 0 || index >= restarts then
                            raise
                              (Json.Parse_error
                                 (Printf.sprintf "island index %d out of range" index));
                          islands.(index) <- Some (island_of fields)))
                    rest;
                  Evolving
                    (Array.mapi
                       (fun index island ->
                         match island with
                         | Some island -> island
                         | None ->
                             raise
                               (Json.Parse_error (Printf.sprintf "missing island %d" index)))
                       islands)
              | "simplifying" -> (
                  match rest with
                  | [ (lineno, line) ] ->
                      at lineno (fun () ->
                          let fields = Json.obj line in
                          if Json.str_of fields "type" <> "sag" then
                            raise (Json.Parse_error "expected a sag line");
                          Simplifying
                            {
                              front = models_of fields "front";
                              processed = models_of fields "processed";
                            })
                  | _ -> raise (Json.Parse_error "expected exactly one sag line"))
              | name ->
                  raise (Located (header_line, Printf.sprintf "unknown phase %S" name))
            in
            Ok { fingerprint; seed; restarts; phase }
          with
          | Located (lineno, message) -> Error (Printf.sprintf "%s:%d: %s" path lineno message)
          | Json.Parse_error message -> Error (path ^ ": " ^ message)))

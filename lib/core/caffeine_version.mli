(** Library version string. *)

val version : string

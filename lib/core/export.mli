(** Export fitted models as source code.

    Symbolic performance models are typically consumed by other tools — a
    sizing optimizer evaluating a C callback, or a behavioural simulation
    embedding the model as a Verilog-A expression.  This module renders a
    {!Model.t} as a self-contained function in either language.

    All canonical-form constructs are supported; the generated code guards
    the same domain errors the evaluator does (division by zero, logs of
    non-positive values) by emitting [NAN] through guarded helpers in C and
    relying on the simulator semantics in Verilog-A. *)

val to_c : name:string -> var_names:string array -> Model.t -> string
(** A C99 function [double <name>(const double *x)] with one comment line
    per design variable mapping names to indices.  Uses [math.h]
    functions; compiles standalone with [-lm]. *)

val to_c_front : name:string -> var_names:string array -> Model.t list -> string
(** A whole Pareto front as one C99 function
    [void <name>(const double *x, double *out)] filling [out.(k)] with
    model [k]'s response.  The front is hash-consed into a fused DAG
    ({!Caffeine_expr.Fused.compile_wsums}): every subexpression shared
    within or across models is emitted as exactly one [const double tN]
    local, in topological order — front neighbors overlap heavily, so the
    generated code is typically far smaller (and faster to evaluate) than
    the concatenation of per-model {!to_c} functions. *)

val to_verilog_a : name:string -> var_names:string array -> Model.t -> string
(** An analog function block [analog function real <name>; input ...] for
    inclusion in a Verilog-A module. *)

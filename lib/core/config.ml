type t = {
  pop_size : int;
  generations : int;
  max_bases : int;
  max_depth : int;
  wb : float;
  wvc : float;
  opset : Opset.t;
  param_mutation_weight : float;
  crossover_probability : float;
  max_vc_vars : int;
}

let paper =
  {
    pop_size = 200;
    generations = 5000;
    max_bases = 15;
    max_depth = 8;
    wb = 10.;
    wvc = 0.25;
    opset = Opset.default;
    param_mutation_weight = 5.;
    crossover_probability = 0.5;
    max_vc_vars = 3;
  }

let default = { paper with pop_size = 100; generations = 80 }

let scaled ?pop_size ?generations t =
  {
    t with
    pop_size = (match pop_size with Some p -> p | None -> t.pop_size);
    generations = (match generations with Some g -> g | None -> t.generations);
  }

type t = {
  pop_size : int;
  generations : int;
  max_bases : int;
  max_depth : int;
  wb : float;
  wvc : float;
  opset : Opset.t;
  param_mutation_weight : float;
  crossover_probability : float;
  max_vc_vars : int;
  jobs : int;
}

(* Default parallelism: the CAFFEINE_JOBS environment variable when set
   (this is how CI runs the whole test suite multi-domain), sequential
   otherwise.  Results are bit-identical either way; jobs = 0 requests
   auto-detection, and every value is clamped to the core count by
   Caffeine_par.Pool.effective_jobs before any domain is spawned. *)
let env_jobs =
  match Sys.getenv_opt "CAFFEINE_JOBS" with
  | Some value -> (
      match int_of_string_opt (String.trim value) with
      | Some jobs when jobs >= 1 -> jobs
      | Some _ | None -> 1)
  | None -> 1

let paper =
  {
    pop_size = 200;
    generations = 5000;
    max_bases = 15;
    max_depth = 8;
    wb = 10.;
    wvc = 0.25;
    opset = Opset.default;
    param_mutation_weight = 5.;
    crossover_probability = 0.5;
    max_vc_vars = 3;
    jobs = env_jobs;
  }

let default = { paper with pop_size = 100; generations = 80 }

let scaled ?pop_size ?generations ?jobs t =
  {
    t with
    pop_size = (match pop_size with Some p -> p | None -> t.pop_size);
    generations = (match generations with Some g -> g | None -> t.generations);
    jobs = (match jobs with Some j -> j | None -> t.jobs);
  }

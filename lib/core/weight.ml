module Rng = Caffeine_util.Rng

type t = float

let bound = 10.

let of_raw raw = Float.max (-2. *. bound) (Float.min (2. *. bound) raw)

let raw t = t

let value t = if t = 0. then 0. else Float.of_int (compare t 0.) *. (10. ** (Float.abs t -. bound))

(* Raw 0 is reserved for the exact-zero weight ([value] collapses it to 0),
   so nonzero magnitudes at or below the 1e-B boundary clamp to this
   positive floor instead: |raw| - bound still rounds to exactly -bound,
   so the interpreted value is +/-1e-B, sign preserved. *)
let min_raw = 1e-300

let of_value v =
  if v = 0. then 0.
  else begin
    let magnitude = Float.abs v in
    let raw = log10 magnitude +. bound in
    let clamped = Float.max min_raw (Float.min (2. *. bound) raw) in
    if v > 0. then clamped else -.clamped
  end

let random rng = Rng.range rng (-2. *. bound) (2. *. bound)

let mutate ?(scale = 1.0) rng t = of_raw (t +. Rng.cauchy ~scale rng)

let random_value rng = value (random rng)

let mutate_value ?scale rng v = value (mutate ?scale rng (of_value v))

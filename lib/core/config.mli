(** Run settings for a CAFFEINE search.

    {!paper} mirrors section 6.1 (population 200, 5000 generations, at most
    15 basis functions, maximum tree depth 8, w_b = 10, w_vc = 0.25,
    parameter mutation 5x more likely than the other operators).  {!default}
    keeps every algorithmic setting but trims the budget so that a run takes
    seconds rather than the paper's 12 hours. *)

type t = {
  pop_size : int;
  generations : int;
  max_bases : int;  (** maximum number of top-level basis functions *)
  max_depth : int;  (** maximum tree depth of one basis function *)
  wb : float;  (** complexity: minimum cost per basis function *)
  wvc : float;  (** complexity: cost per unit of VC exponent magnitude *)
  opset : Opset.t;
  param_mutation_weight : float;
      (** relative selection weight of parameter (Cauchy) mutation; the
          other operators have weight 1 *)
  crossover_probability : float;  (** probability a child mixes two parents *)
  max_vc_vars : int;  (** variables in a freshly generated VC *)
  jobs : int;
      (** parallelism of the search: domains used for objective evaluation,
          islands and SAG candidate scoring when the caller does not supply
          a pool.  [0] means auto — [CAFFEINE_JOBS] when set, else all
          cores; any request is clamped to the machine's core count
          ({!Caffeine_par.Pool.effective_jobs}).  Defaults to the
          [CAFFEINE_JOBS] environment variable when set to a positive
          integer, else 1 (sequential).  Results are bit-identical for any
          value. *)
}

val default : t
val paper : t

val scaled : ?pop_size:int -> ?generations:int -> ?jobs:int -> t -> t
(** Adjust only the search budget and parallelism. *)

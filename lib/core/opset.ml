module Op = Caffeine_expr.Op
module Grammar = Caffeine_grammar.Grammar

type t = {
  unops : Op.unary array;
  binops : Op.binary array;
  allow_lte : bool;
  allow_vc : bool;
  allow_nonlinear : bool;
  max_exponent : int;
  min_exponent : int;
}

let default =
  {
    unops = Array.of_list Op.all_unary;
    binops = Array.of_list Op.all_binary;
    allow_lte = true;
    allow_vc = true;
    allow_nonlinear = true;
    max_exponent = 2;
    min_exponent = -2;
  }

let rational =
  {
    default with
    unops = [||];
    binops = [||];
    allow_lte = false;
    allow_nonlinear = false;
  }

let polynomial = { rational with min_exponent = 0 }

let no_trig =
  {
    default with
    unops =
      Array.of_list
        (List.filter
           (fun op -> not (List.mem op [ Op.Sin; Op.Cos; Op.Tan ]))
           Op.all_unary);
  }

let of_grammar grammar =
  let terminal_names = Grammar.terminals grammar in
  let unops =
    Array.of_list (List.filter_map Op.unary_of_name terminal_names)
  in
  let binops =
    Array.of_list (List.filter_map Op.binary_of_name terminal_names)
  in
  let allow_lte = List.mem "LTE" terminal_names in
  let allow_vc = List.mem "VC" terminal_names in
  {
    default with
    unops;
    binops;
    allow_lte;
    allow_vc;
    allow_nonlinear = Array.length unops > 0 || Array.length binops > 0 || allow_lte;
  }

let exponent_choices t =
  if t.max_exponent < 1 then invalid_arg "Opset.exponent_choices: max_exponent < 1";
  if t.min_exponent > t.max_exponent then invalid_arg "Opset.exponent_choices: empty range";
  let choices = ref [] in
  for e = t.max_exponent downto t.min_exponent do
    if e <> 0 then choices := e :: !choices
  done;
  Array.of_list !choices

(** Design-insight queries over fitted models.

    The paper's motivation is understanding: "one can examine the equations
    in more detail to gain an understanding of how design variables in the
    topology affect performance".  This module makes those examinations
    executable: which variables a model actually uses, local relative
    sensitivities at a design point, and how variable usage evolves along
    an error/complexity tradeoff front.

    Point probes run through {!Model.evaluator} (bases compiled once per
    query) and the Sobol estimator batches its sample matrices through
    {!Model.predict} over column-major datasets — no tree interpretation
    anywhere. *)

val variables_used : Model.t -> int list
(** Sorted indices of the design variables appearing in the model (the
    paper: "each expression only contains a (sometimes small) subset of
    design variables"). *)

val unused_variables : dims:int -> Model.t -> int list
(** Complement of {!variables_used}. *)

val sensitivities : Model.t -> at:float array -> float array
(** Relative local sensitivities [S_i = (∂f/∂x_i) · x_i / f] by central
    finite differences at the point [at] (an [S_i] of 1 means "1% change in
    x_i moves f by 1%").  Entries are [nan] where the model or its
    perturbation is not finite, and 0 for unused variables. *)

val exact_sensitivities : Model.t -> at:float array -> float array
(** Like {!sensitivities} but with exact partial derivatives from
    forward-mode automatic differentiation ({!Caffeine_expr.Deriv}). *)

val dominant_variables : ?top:int -> Model.t -> at:float array -> (int * float) list
(** Variables ranked by |relative sensitivity|, strongest first, at most
    [top] entries (default 5); non-finite sensitivities are skipped. *)

val sobol_first_order :
  ?samples:int ->
  Caffeine_util.Rng.t ->
  Model.t ->
  lo:float array ->
  hi:float array ->
  float array
(** First-order Sobol' sensitivity indices over the box [\[lo, hi\]] by the
    Saltelli pick-freeze estimator ([samples] base points per matrix,
    default 1024): [S_i = Var(E[f|x_i]) / Var(f)] — the fraction of output
    variance explained by variable [i] alone, globally rather than at one
    point.  Indices are clamped to [\[0, 1\]]; all-zero when the model is
    constant over the box.  Sample points where the model is not finite are
    discarded. *)

val usage_along_front : Model.t list -> (int * int) list
(** For a front (or any model list): [(variable index, number of models
    using it)], sorted by decreasing count then index — the "which devices
    matter" summary of the paper's discussion. *)

val report :
  var_names:string array -> at:float array -> Model.t -> string
(** Human-readable one-model insight report: variables used, dominant
    sensitivities, expression. *)

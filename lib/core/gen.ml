module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Op = Caffeine_expr.Op

let random_exponent rng opset =
  let choices = Opset.exponent_choices opset in
  (* Bias towards +/-1 for interpretability; the paper's tables are
     dominated by simple ratios. *)
  let simple =
    Array.of_list (List.filter (fun e -> abs e = 1) (Array.to_list choices))
  in
  if Array.length simple > 0 && Rng.bernoulli rng 0.7 then Rng.choose rng simple
  else Rng.choose rng choices

let random_vc rng opset ~dims ~max_vars =
  if not opset.Opset.allow_vc then invalid_arg "Gen.random_vc: VCs disabled in opset";
  if dims < 1 then invalid_arg "Gen.random_vc: dims < 1";
  let upper = max 1 (min max_vars dims) in
  (* 1 variable most of the time, occasionally more. *)
  let count = 1 + (if upper > 1 && Rng.bernoulli rng 0.35 then Rng.int rng upper else 0) in
  let count = min count dims in
  let vars = Rng.sample_without_replacement rng count dims in
  let exponents = Array.make dims 0 in
  Array.iter (fun v -> exponents.(v) <- random_exponent rng opset) vars;
  exponents

let rec random_basis rng opset ~dims ~depth ~max_vc_vars =
  let can_nest = depth > 1 && opset.Opset.allow_nonlinear in
  let vc_only () =
    { Expr.vc = Some (random_vc rng opset ~dims ~max_vars:max_vc_vars); factors = [] }
  in
  if not can_nest then
    if opset.Opset.allow_vc then vc_only ()
    else invalid_arg "Gen.random_basis: opset allows neither VCs nor operators"
  else if not opset.Opset.allow_vc then
    { Expr.vc = None; factors = [ random_factor rng opset ~dims ~depth ~max_vc_vars ] }
  else begin
    let shape = Rng.uniform rng in
    if shape < 0.55 then vc_only ()
    else if shape < 0.8 then
      {
        Expr.vc = Some (random_vc rng opset ~dims ~max_vars:max_vc_vars);
        factors = [ random_factor rng opset ~dims ~depth ~max_vc_vars ];
      }
    else begin
      let extra =
        if Rng.bernoulli rng 0.2 then [ random_factor rng opset ~dims ~depth ~max_vc_vars ]
        else []
      in
      { Expr.vc = None; factors = random_factor rng opset ~dims ~depth ~max_vc_vars :: extra }
    end
  end

and random_factor rng opset ~dims ~depth ~max_vc_vars =
  let unary_count = Array.length opset.Opset.unops in
  let binary_count = Array.length opset.Opset.binops in
  let lte_weight = if opset.Opset.allow_lte then 1. else 0. in
  let choice =
    Rng.weighted_index rng [| float_of_int unary_count; float_of_int binary_count; lte_weight |]
  in
  match choice with
  | 0 ->
      let op = Rng.choose rng opset.Opset.unops in
      Expr.Unary (op, random_wsum rng opset ~dims ~depth:(depth - 1) ~max_vc_vars)
  | 1 ->
      let op = Rng.choose rng opset.Opset.binops in
      (* 2ARGS: exactly one side is a weighted sum; the other is MAYBEW. *)
      let sum_side = Expr.Sum (random_wsum rng opset ~dims ~depth:(depth - 1) ~max_vc_vars) in
      let maybe_side = random_maybew rng opset ~dims ~depth:(depth - 1) ~max_vc_vars in
      if Rng.bool rng then Expr.Binary (op, sum_side, maybe_side)
      else Expr.Binary (op, maybe_side, sum_side)
  | 2 ->
      Expr.Lte
        {
          test = random_wsum rng opset ~dims ~depth:(depth - 1) ~max_vc_vars;
          threshold = random_maybew rng opset ~dims ~depth:(depth - 1) ~max_vc_vars;
          less = random_maybew rng opset ~dims ~depth:(depth - 1) ~max_vc_vars;
          otherwise = random_maybew rng opset ~dims ~depth:(depth - 1) ~max_vc_vars;
        }
  | _ -> assert false

and random_maybew rng opset ~dims ~depth ~max_vc_vars =
  if Rng.bernoulli rng 0.5 then Expr.Const (Weight.random_value rng)
  else Expr.Sum (random_wsum rng opset ~dims ~depth ~max_vc_vars)

and random_wsum rng opset ~dims ~depth ~max_vc_vars =
  let term () =
    (Weight.random_value rng, random_basis rng opset ~dims ~depth:(max 0 (depth - 1)) ~max_vc_vars)
  in
  let terms = if Rng.bernoulli rng 0.3 then [ term (); term () ] else [ term () ] in
  { Expr.bias = Weight.random_value rng; terms }

let random_individual rng config ~dims =
  let upper = max 1 (config.Config.max_bases / 3) in
  let count = 1 + Rng.int rng upper in
  Array.init count (fun _ ->
      random_basis rng config.Config.opset ~dims ~depth:config.Config.max_depth
        ~max_vc_vars:config.Config.max_vc_vars)

module Rng = Caffeine_util.Rng
module Expr = Caffeine_expr.Expr
module Compiled = Caffeine_expr.Compiled
module Dataset = Caffeine_io.Dataset
module Metrics = Caffeine_obs.Metrics

(* Two-level objective-evaluation cache.

   L1 is exact: keyed by the full structural hash of the whole individual
   (every basis, weight and exponent participates), it returns the
   objectives computed the first time the structure was fitted —
   bit-identical to recomputation by construction, since objectives are a
   pure function of (structure, data, targets).

   L2 is behavioral and only consulted in [Behavioral] mode: each
   candidate is keyed by the raw IEEE words of its bases' outputs on a
   fixed probe subsample, in basis order.  Two individuals matching on
   that key assemble their regressions from bit-identical columns wherever
   the fit actually looks, so the cached training error is reused; the
   complexity objective is structural and is always recomputed for the
   candidate at hand.  Quantized probe outputs additionally serve as
   behavioral fingerprints for population-diversity accounting — never for
   result reuse, which demands the exact match.

   Both levels follow the dataset caches' concurrency design: sharded by
   key hash, each shard behind its own mutex, bounded by a wholesale
   per-shard reset.  The search gives every island a private instance and
   touches it only from the island's coordinating domain, but the sharding
   keeps the structure safe should a future caller share one. *)

type mode = Off | Exact | Behavioral

let mode_to_string = function Off -> "off" | Exact -> "exact" | Behavioral -> "behavioral"

let mode_of_string = function
  | "off" -> Ok Off
  | "exact" -> Ok Exact
  | "behavioral" -> Ok Behavioral
  | other ->
      Error (Printf.sprintf "unknown eval-cache mode %S (expected off, exact or behavioral)" other)

(* Process-wide effectiveness counters ([fit --metrics], trace summary). *)
let m_hits = Metrics.counter Metrics.default "eval.cache_hits"
let m_misses = Metrics.counter Metrics.default "eval.cache_misses"
let m_evictions = Metrics.counter Metrics.default "eval.cache_evictions"

module Individual_key = struct
  type t = Expr.basis array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i = n || (Expr.equal_basis a.(i) b.(i) && go (i + 1)) in
    go 0

  (* Order-sensitive FNV-style fold of the per-basis structural hashes:
     basis order affects the regression's pivoting, so permuted
     individuals are distinct keys. *)
  let hash individual =
    Array.fold_left (fun h b -> (h * 0x01000193) + Compiled.hash_basis b) 0x811c9dc5 individual
    land max_int
end

module L1_tbl = Hashtbl.Make (Individual_key)

module Signature_key = struct
  type t = float array

  (* Bit-level equality: NaN probe outputs must match themselves, and two
     values are interchangeable in a fit only when their IEEE words agree. *)
  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i = n || (Int64.bits_of_float a.(i) = Int64.bits_of_float b.(i) && go (i + 1))
    in
    go 0

  let hash signature =
    Array.fold_left
      (fun h v -> (h * 0x01000193) + Int64.to_int (Int64.bits_of_float v))
      0x811c9dc5 signature
    land max_int
end

module L2_tbl = Hashtbl.Make (Signature_key)

let shard_count = 16 (* power of two: shard selection is a mask *)

type l1_shard = {
  l1_lock : Mutex.t;
  l1_table : float array L1_tbl.t;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l1_evictions : int;
}

type l2_shard = {
  l2_lock : Mutex.t;
  l2_table : float L2_tbl.t;
  mutable l2_hits : int;
  mutable l2_evictions : int;
}

type t = {
  mode : mode;
  data : Dataset.t;
  wb : float;
  wvc : float;
  limit : int;
  probe_indices : int array;
  quantum : float;  (* quantization step of the diversity fingerprint *)
  l1_shards : l1_shard array;
  l2_shards : l2_shard array;
}

let default_limit = 65_536
let default_probe_size = 16
let default_probe_seed = 0xCAFE
let default_precision = 6

let create ?(limit = default_limit) ?(probe_size = default_probe_size)
    ?(probe_seed = default_probe_seed) ?(precision = default_precision) ~mode ~wb ~wvc ~data () =
  if limit < 1 then invalid_arg "Eval_cache.create: limit must be positive";
  if probe_size < 1 then invalid_arg "Eval_cache.create: probe_size must be positive";
  if precision < 0 then invalid_arg "Eval_cache.create: precision must be non-negative";
  (* The probe plan is fixed at creation from its own seeded generator:
     every island of a run (and every resumed run) draws the same indices,
     independent of the search stream. *)
  let n = Dataset.n_samples data in
  let k = Stdlib.min probe_size n in
  let probe_indices =
    Rng.sample_without_replacement (Rng.create ~seed:probe_seed ()) k n
  in
  Array.sort compare probe_indices;
  {
    mode;
    data;
    wb;
    wvc;
    limit;
    probe_indices;
    quantum = Float.pow 10. (float_of_int precision);
    l1_shards =
      Array.init shard_count (fun _ ->
          {
            l1_lock = Mutex.create ();
            l1_table = L1_tbl.create 64;
            l1_hits = 0;
            l1_misses = 0;
            l1_evictions = 0;
          });
    l2_shards =
      Array.init shard_count (fun _ ->
          {
            l2_lock = Mutex.create ();
            l2_table = L2_tbl.create 64;
            l2_hits = 0;
            l2_evictions = 0;
          });
  }

let mode t = t.mode
let probe_size t = Array.length t.probe_indices

(* --- probe signatures and fingerprints ----------------------------------- *)

(* Raw probe outputs of every basis, concatenated in basis order — the
   exact-match key of L2.  Probing goes through the fused evaluator
   ([Dataset.probe_many]) so subtrees shared between an individual's
   bases are walked once; its rows match per-basis [Dataset.probe] bit
   for bit in every cache state, so signatures are stable under
   column-cache eviction and identical to what per-basis probing would
   produce. *)
let signature t individual =
  Array.concat
    (Array.to_list (Dataset.probe_many t.data individual ~indices:t.probe_indices))

(* Diversity fingerprint: the signature quantized to the configured
   precision, as IEEE words.  Non-finite probe outputs collapse to
   canonical constants so every NaN payload counts as one behavior. *)
let fingerprint_of_signature t signature =
  Array.map
    (fun v ->
      if Float.is_nan v then Int64.min_int
      else if Float.is_finite v then
        Int64.bits_of_float (Float.round (v *. t.quantum) /. t.quantum)
      else Int64.bits_of_float v)
    signature

let fingerprint t individual = fingerprint_of_signature t (signature t individual)

let diversity t population =
  if t.mode <> Behavioral then -1
  else begin
    let seen = Hashtbl.create (Array.length population) in
    Array.iter
      (fun individual -> Hashtbl.replace seen (Array.to_list (fingerprint t individual)) ())
      population;
    Hashtbl.length seen
  end

(* --- the cache proper ----------------------------------------------------- *)

let l1_shard_of t individual = t.l1_shards.(Individual_key.hash individual land (shard_count - 1))
let l2_shard_of t signature = t.l2_shards.(Signature_key.hash signature land (shard_count - 1))

let l1_find t individual =
  let shard = l1_shard_of t individual in
  Mutex.lock shard.l1_lock;
  let found = L1_tbl.find_opt shard.l1_table individual in
  (match found with
  | Some _ -> shard.l1_hits <- shard.l1_hits + 1
  | None -> shard.l1_misses <- shard.l1_misses + 1);
  Mutex.unlock shard.l1_lock;
  found

let l1_add t individual objectives =
  let shard = l1_shard_of t individual in
  let per_shard_limit = Stdlib.max 1 (t.limit / shard_count) in
  Mutex.lock shard.l1_lock;
  if L1_tbl.length shard.l1_table >= per_shard_limit then begin
    (* Wholesale per-shard reset, like the dataset caches: misses simply
       recompute, values are unaffected. *)
    shard.l1_evictions <- shard.l1_evictions + L1_tbl.length shard.l1_table;
    Metrics.add m_evictions (L1_tbl.length shard.l1_table);
    L1_tbl.reset shard.l1_table
  end;
  if not (L1_tbl.mem shard.l1_table individual) then
    L1_tbl.add shard.l1_table individual objectives;
  Mutex.unlock shard.l1_lock

let l2_find t signature =
  let shard = l2_shard_of t signature in
  Mutex.lock shard.l2_lock;
  let found = L2_tbl.find_opt shard.l2_table signature in
  (match found with Some _ -> shard.l2_hits <- shard.l2_hits + 1 | None -> ());
  Mutex.unlock shard.l2_lock;
  found

let l2_add t signature train_error =
  let shard = l2_shard_of t signature in
  let per_shard_limit = Stdlib.max 1 (t.limit / shard_count) in
  Mutex.lock shard.l2_lock;
  if L2_tbl.length shard.l2_table >= per_shard_limit then begin
    shard.l2_evictions <- shard.l2_evictions + L2_tbl.length shard.l2_table;
    Metrics.add m_evictions (L2_tbl.length shard.l2_table);
    L2_tbl.reset shard.l2_table
  end;
  if not (L2_tbl.mem shard.l2_table signature) then L2_tbl.add shard.l2_table signature train_error;
  Mutex.unlock shard.l2_lock

let lookup t individual =
  match t.mode with
  | Off -> None
  | Exact | Behavioral -> (
      match l1_find t individual with
      | Some objectives ->
          Metrics.incr m_hits;
          Some (Array.copy objectives)
      | None when t.mode = Exact ->
          Metrics.incr m_misses;
          None
      | None -> (
          match l2_find t (signature t individual) with
          | Some train_error ->
              (* Behavioral reuse carries only the fitted error; complexity
                 is structural and belongs to this candidate, not the
                 twin's. *)
              let objectives = [| train_error; Model.complexity_of ~wb:t.wb ~wvc:t.wvc individual |] in
              Metrics.incr m_hits;
              l1_add t individual (Array.copy objectives);
              Some objectives
          | None ->
              Metrics.incr m_misses;
              None))

let store t individual objectives =
  match t.mode with
  | Off -> ()
  | Exact -> l1_add t individual (Array.copy objectives)
  | Behavioral ->
      l1_add t individual (Array.copy objectives);
      l2_add t (signature t individual) objectives.(0)

(* --- introspection -------------------------------------------------------- *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  l1_hits : int;
  l2_hits : int;
  entries : int;
}

let stats t =
  let l1_hits = ref 0 and l1_misses = ref 0 and evictions = ref 0 and entries = ref 0 in
  Array.iter
    (fun shard ->
      Mutex.lock shard.l1_lock;
      l1_hits := !l1_hits + shard.l1_hits;
      l1_misses := !l1_misses + shard.l1_misses;
      evictions := !evictions + shard.l1_evictions;
      entries := !entries + L1_tbl.length shard.l1_table;
      Mutex.unlock shard.l1_lock)
    t.l1_shards;
  let l2_hits = ref 0 in
  Array.iter
    (fun shard ->
      Mutex.lock shard.l2_lock;
      l2_hits := !l2_hits + shard.l2_hits;
      evictions := !evictions + shard.l2_evictions;
      entries := !entries + L2_tbl.length shard.l2_table;
      Mutex.unlock shard.l2_lock)
    t.l2_shards;
  {
    hits = !l1_hits + !l2_hits;
    misses = !l1_misses - !l2_hits;
    evictions = !evictions;
    l1_hits = !l1_hits;
    l2_hits = !l2_hits;
    entries = !entries;
  }

type global_stats = { total_hits : int; total_misses : int; total_evictions : int }

let global_stats () =
  {
    total_hits = Metrics.counter_value m_hits;
    total_misses = Metrics.counter_value m_misses;
    total_evictions = Metrics.counter_value m_evictions;
  }

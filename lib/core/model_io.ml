module Expr = Caffeine_expr.Expr
module Infix = Caffeine_expr.Infix

let parse_model ~var_names ~wb ~wvc source =
  match Infix.parse_wsum ~var_names source with
  | Error msg -> Error msg
  | Ok ws ->
      let bases = Array.of_list (List.map snd ws.Expr.terms) in
      let weights = Array.of_list (List.map fst ws.Expr.terms) in
      Ok
        {
          Model.bases;
          intercept = ws.Expr.bias;
          weights;
          train_error = Float.nan;
          complexity = Model.complexity_of ~wb ~wvc bases;
        }

let save ~path ~var_names models =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel "# caffeine models (one expression per line)\n";
      output_string channel
        ("vars: " ^ String.concat " " (Array.to_list var_names) ^ "\n");
      List.iter
        (fun model ->
          output_string channel (Model.to_string ~var_names model);
          output_char channel '\n')
        models)

let load ~path ~wb ~wvc =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line channel :: !lines
             done
           with End_of_file -> ());
          let lines = List.rev !lines in
          let var_names = ref [||] in
          let models = ref [] in
          let error = ref None in
          List.iteri
            (fun lineno line ->
              if !error = None then begin
                let trimmed = String.trim line in
                if trimmed = "" || trimmed.[0] = '#' then ()
                else if String.length trimmed > 5 && String.sub trimmed 0 5 = "vars:" then
                  var_names :=
                    Array.of_list
                      (List.filter
                         (fun s -> s <> "")
                         (String.split_on_char ' '
                            (String.sub trimmed 5 (String.length trimmed - 5))))
                else
                  match parse_model ~var_names:!var_names ~wb ~wvc trimmed with
                  | Ok model -> models := model :: !models
                  | Error msg ->
                      error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg)
              end)
            lines;
          match !error with
          | Some msg -> Error msg
          | None -> Ok (!var_names, List.rev !models))

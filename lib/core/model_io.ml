module Expr = Caffeine_expr.Expr
module Infix = Caffeine_expr.Infix

let parse_model ~var_names ~wb ~wvc source =
  match Infix.parse_wsum ~var_names source with
  | Error msg -> Error msg
  | Ok ws ->
      let bases = Array.of_list (List.map snd ws.Expr.terms) in
      let weights = Array.of_list (List.map fst ws.Expr.terms) in
      Ok
        {
          Model.bases;
          intercept = ws.Expr.bias;
          weights;
          train_error = Float.nan;
          complexity = Model.complexity_of ~wb ~wvc bases;
        }

(* [%.17g] round-trips every finite double through [float_of_string]; the
   three non-finite values use the lowercase spellings [float_of_string]
   accepts natively. *)
let encode_float v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "infinity"
  else if v = Float.neg_infinity then "-infinity"
  else Printf.sprintf "%.17g" v

let save ~path ~var_names models =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel "# caffeine models (one expression per line)\n";
      output_string channel
        ("vars: " ^ String.concat " " (Array.to_list var_names) ^ "\n");
      List.iter
        (fun model ->
          output_string channel
            (Printf.sprintf "#: train_error=%s\n" (encode_float model.Model.train_error));
          output_string channel (Model.to_string ~var_names model);
          output_char channel '\n')
        models)

let parse_directive trimmed =
  (* "#: key=value"; unknown keys are ignored for forward compatibility. *)
  let body = String.trim (String.sub trimmed 2 (String.length trimmed - 2)) in
  match String.index_opt body '=' with
  | None -> Error (Printf.sprintf "malformed metadata directive %S (expected key=value)" body)
  | Some eq -> (
      let key = String.trim (String.sub body 0 eq) in
      let value = String.trim (String.sub body (eq + 1) (String.length body - eq - 1)) in
      match key with
      | "train_error" -> (
          match float_of_string_opt value with
          | Some v -> Ok (Some v)
          | None -> Error (Printf.sprintf "invalid train_error value %S" value))
      | _ -> Ok None)

let load ~path ~wb ~wvc =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line channel :: !lines
             done
           with End_of_file -> ());
          let lines = List.rev !lines in
          let var_names = ref [||] in
          let models = ref [] in
          let pending_error = ref Float.nan in
          let error = ref None in
          let fail lineno msg =
            error := Some (Printf.sprintf "%s:%d: %s" path (lineno + 1) msg)
          in
          List.iteri
            (fun lineno line ->
              if !error = None then begin
                let trimmed = String.trim line in
                if String.length trimmed >= 2 && String.sub trimmed 0 2 = "#:" then (
                  match parse_directive trimmed with
                  | Ok (Some train_error) -> pending_error := train_error
                  | Ok None -> ()
                  | Error msg -> fail lineno msg)
                else if trimmed = "" || trimmed.[0] = '#' then ()
                else if String.length trimmed > 5 && String.sub trimmed 0 5 = "vars:" then
                  var_names :=
                    Array.of_list
                      (List.filter
                         (fun s -> s <> "")
                         (String.split_on_char ' '
                            (String.sub trimmed 5 (String.length trimmed - 5))))
                else
                  match parse_model ~var_names:!var_names ~wb ~wvc trimmed with
                  | Ok model ->
                      models := { model with Model.train_error = !pending_error } :: !models;
                      pending_error := Float.nan
                  | Error msg -> fail lineno msg
              end)
            lines;
          match !error with
          | Some msg -> Error msg
          | None -> Ok (!var_names, List.rev !models))

(** Simplification after generation (paper section 5.1) and final tradeoff
    filtering.

    After the evolutionary run, each model on the (train error, complexity)
    front is pruned by PRESS-guided forward regression — basis functions
    that harm leave-one-out predictive ability are dropped and the linear
    weights refit — then the set is evaluated on testing data and filtered
    down to the models on the (test error, complexity) tradeoff.

    All basis evaluation reuses the dataset's memoized compiled columns:
    passing the same {!Caffeine_io.Dataset.t} the search ran on makes SAG
    essentially free of re-evaluation. *)

module Dataset = Caffeine_io.Dataset

type scored = {
  model : Model.t;
  test_error : float;
}

val simplify_model :
  ?executor:Caffeine_par.Executor.t ->
  ?trace:Caffeine_obs.Trace.sink ->
  ?model_index:int ->
  wb:float ->
  wvc:float ->
  Model.t ->
  data:Dataset.t ->
  targets:float array ->
  Model.t
(** PRESS forward selection over the model's own basis functions, refit,
    then algebraic cleanup ({!Model.simplify}).  The result never has more
    bases than the input model.  Candidate PRESS scores are evaluated
    through [executor] (default sequential); the selected set is identical
    under every backend.  With [trace], every accepted forward-selection
    round is emitted as a {!Caffeine_obs.Trace.Sag_round} (PRESS before and
    after the round) and the overall pruning as a
    {!Caffeine_obs.Trace.Sag_model}, both tagged with [model_index]
    (default 0).  Trace content is deterministic: rounds commit on the
    calling domain in selection order whatever the pool size. *)

val process_front :
  ?executor:Caffeine_par.Executor.t ->
  ?trace:Caffeine_obs.Trace.sink ->
  ?already:Model.t list ->
  ?on_model:(int -> Model.t -> unit) ->
  ?fuse:bool ->
  wb:float ->
  wvc:float ->
  Model.t list ->
  data:Dataset.t ->
  targets:float array ->
  Model.t list
(** Apply {!simplify_model} to every front member (tagging records with the
    member's position in [front]) and re-extract the nondominated
    (train error, complexity) set, sorted by complexity.

    [already] (default [[]]) is a prefix of previously simplified results —
    a resumed run's checkpointed SAG progress: the first
    [List.length already] members are taken from it verbatim instead of
    being re-simplified.  [on_model] observes each freshly simplified
    member (index in [front], result) as it completes; the CLI checkpoints
    from this callback.

    [fuse] (default [true]) pre-warms the dataset's column cache with one
    fused evaluation of the whole front ({!Model.warm_front}) before the
    per-model selection loops; results are bit-identical either way. *)

val test_tradeoff :
  ?trace:Caffeine_obs.Trace.sink ->
  ?fuse:bool ->
  Model.t list ->
  data:Dataset.t ->
  targets:float array ->
  scored list
(** Score each model on testing data and keep only models on the
    (test error, complexity) tradeoff, sorted by increasing complexity.
    [fuse] (default [true]) warms the testing dataset's columns with one
    fused front evaluation first; scores are bit-identical either way.

    When {e every} model's test error is non-finite (the whole front blew
    up on out-of-range testing samples), an empty result would silently
    discard the run — instead the full front is returned ordered by
    (train error, complexity), and the condition is surfaced as a
    {!Caffeine_obs.Trace.Warning} on [trace] plus a warning on the
    ["caffeine.sag"] {!Logs} source. *)

val best_within :
  scored list -> train_cap:float -> test_cap:float -> scored option
(** The least complex model with train and test errors both at or below the
    caps (the paper's "all models with <10% error" query). *)

val at_train_error : scored list -> train_cap:float -> scored option
(** The model whose training error best matches (is at most, else closest
    to) [train_cap] — used to compare against the posynomial baseline at
    matched training error. *)

module Rng = Caffeine_util.Rng
module Stats = Caffeine_util.Stats
module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset
module Linfit = Caffeine_regress.Linfit
module Nsga2 = Caffeine_evo.Nsga2
module Executor = Caffeine_par.Executor
module Metrics = Caffeine_obs.Metrics
module Trace = Caffeine_obs.Trace

type outcome = {
  front : Model.t list;
  population_size : int;
  generations_run : int;
}

let log_src = Logs.Src.create "caffeine.search" ~doc:"CAFFEINE evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Per-basis evaluation columns and their pairwise dot products are
   memoized inside the dataset, keyed by the full structural hash
   (Compiled.Key) — weights included: a mutated weight is a different
   column.  Bases shared between individuals (the common case under set
   crossover) are compiled, evaluated and Gram-assembled once.  The
   dataset caches and scratch buffers are domain-safe, so the same closure
   serves the parallel evaluation paths unchanged. *)

let fit_cached ~wb ~wvc bases ~data ~targets = Model.fit ~wb ~wvc bases ~data ~targets

let validate_data ~data ~targets =
  let n = Dataset.n_samples data in
  if n < 2 then invalid_arg "Search.run: need at least 2 samples";
  if Array.length targets <> n then invalid_arg "Search.run: data/targets length mismatch";
  Dataset.dims data

(* Exact nondominated filter over (train error, complexity), deduplicated
   on identical objective pairs (keep the first), sorted by (complexity,
   train error) — a total order on the deduplicated front, so merged
   parallel-island fronts serialize identically however they arrive. *)
let dedup_and_sort models =
  let dominated (a : Model.t) (b : Model.t) =
    (* b dominates a *)
    b.Model.train_error <= a.Model.train_error
    && b.Model.complexity <= a.Model.complexity
    && (b.Model.train_error < a.Model.train_error || b.Model.complexity < a.Model.complexity)
  in
  let nondominated =
    List.filter (fun m -> not (List.exists (fun other -> dominated m other) models)) models
  in
  let deduped =
    List.fold_left
      (fun acc (m : Model.t) ->
        if
          List.exists
            (fun (kept : Model.t) ->
              kept.Model.train_error = m.Model.train_error
              && kept.Model.complexity = m.Model.complexity)
            acc
        then acc
        else m :: acc)
      [] nondominated
    |> List.rev
  in
  List.sort
    (fun (a : Model.t) b ->
      compare
        (a.Model.complexity, a.Model.train_error)
        (b.Model.complexity, b.Model.train_error))
    deduped

(* Run [f] with the executor the caller supplied, or a fresh domain-pool
   executor of [config.jobs] domains (which degrades to sequential when
   the effective jobs count is 1). *)
let with_search_executor ?executor config f =
  match executor with
  | Some executor -> f executor
  | None -> Executor.with_executor ~jobs:config.Config.jobs Executor.Domains f

let run_with_rng ~rng ?(executor = Executor.sequential) ?(trace = Trace.null) ?on_generation
    ?start ?on_checkpoint ?(eval_cache = Eval_cache.Off)
    ?(eval_cache_limit = Eval_cache.default_limit) ?(fuse = true) config ~data ~targets =
  let dims = validate_data ~data ~targets in
  let wb = config.Config.wb and wvc = config.Config.wvc in
  let objectives individual =
    match fit_cached ~wb ~wvc individual ~data ~targets with
    | Some model -> [| model.Model.train_error; model.Model.complexity |]
    | None -> [| Float.infinity; Model.complexity_of ~wb ~wvc individual |]
  in
  (* One cache per run_with_rng call, so every island — and, under the
     process backend, every forked worker — owns a private instance.  The
     cache is rebuildable derived state: it never enters checkpoint
     snapshots, and resumed runs simply start cold. *)
  let eval_cache =
    match eval_cache with
    | Eval_cache.Off -> None
    | mode -> Some (Eval_cache.create ~limit:eval_cache_limit ~mode ~wb ~wvc ~data ())
  in
  let nsga_cache =
    Option.map
      (fun c -> { Nsga2.lookup = Eval_cache.lookup c; store = Eval_cache.store c })
      eval_cache
  in
  (* Fused warming: before a chunk of genomes is evaluated, all of their
     bases are hash-consed into one Fused DAG and the missing columns are
     computed together (shared subtrees once), so the per-genome fits that
     follow hit the column cache.  Purely a throughput hint — warmed
     columns are bit-identical to lazily computed ones — so fronts do not
     move with fusion on or off.  The accumulators are atomics because
     [prepare] runs on pool domains; totals are drained per generation
     into a Fused_stats trace record (dropped by the deterministic
     projection, like the other effectiveness reports). *)
  let fused_batches = Atomic.make 0
  and fused_nodes_in = Atomic.make 0
  and fused_nodes_out = Atomic.make 0 in
  let prepare =
    if not fuse then None
    else
      Some
        (fun (chunk : Vary.individual array) ->
          let stats = Dataset.warm_columns data (Array.concat (Array.to_list chunk)) in
          if stats.Dataset.fused_bases > 0 then begin
            Atomic.incr fused_batches;
            ignore (Atomic.fetch_and_add fused_nodes_in stats.Dataset.nodes_in);
            ignore (Atomic.fetch_and_add fused_nodes_out stats.Dataset.nodes_out)
          end)
  in
  (* Record construction (objective sorts, variation tallies) happens only
     when someone listens — with the null sink and no callback a traced
     build costs one branch per generation. *)
  let observing = (not (Trace.is_null trace)) || Option.is_some on_generation in
  let vary_stats = Vary.fresh_stats () in
  let last_ns = ref (Metrics.now_ns ()) in
  let notify gen population =
    let best_error =
      Array.fold_left
        (fun acc (ind : Vary.individual Nsga2.individual) -> Float.min acc ind.Nsga2.objectives.(0))
        Float.infinity population
    in
    let front_size = Array.length (Nsga2.pareto_front population) in
    Log.debug (fun m ->
        m "generation %d: best train error %.4f, front size %d" gen best_error front_size);
    if observing then begin
      let stop_ns = Metrics.now_ns () in
      let wall_s = Int64.to_float (Int64.sub stop_ns !last_ns) /. 1e9 in
      last_ns := stop_ns;
      let errors =
        Array.map (fun (ind : Vary.individual Nsga2.individual) -> ind.Nsga2.objectives.(0)) population
      in
      let complexities =
        Array.map (fun (ind : Vary.individual Nsga2.individual) -> ind.Nsga2.objectives.(1)) population
      in
      let record =
        {
          Trace.gen;
          evals = config.Config.pop_size;
          front_size;
          best_nmse = best_error;
          median_nmse = Stats.median errors;
          complexity_min = Stats.min_value complexities;
          complexity_median = Stats.median complexities;
          complexity_max = Stats.max_value complexities;
          crossovers = vary_stats.Vary.crossovers;
          op_counts = Array.copy vary_stats.Vary.op_counts;
          depth_rejects = vary_stats.Vary.depth_rejects;
          behavioral_diversity =
            (match eval_cache with
            | Some cache ->
                Eval_cache.diversity cache
                  (Array.map
                     (fun (ind : Vary.individual Nsga2.individual) -> ind.Nsga2.genome)
                     population)
            | None -> -1);
          wall_s;
        }
      in
      let op_record : Trace.op_stats =
        {
          gen;
          applied = Array.copy vary_stats.Vary.op_counts;
          changed = Array.copy vary_stats.Vary.op_changed;
        }
      in
      Vary.reset_stats vary_stats;
      let fused_record : Trace.fused_stats option =
        if fuse then
          Some
            {
              gen;
              batches = Atomic.exchange fused_batches 0;
              nodes_in = Atomic.exchange fused_nodes_in 0;
              nodes_out = Atomic.exchange fused_nodes_out 0;
            }
        else None
      in
      if not (Trace.is_null trace) then begin
        Trace.emit trace (Trace.Generation record);
        Trace.emit trace (Trace.Op_stats op_record);
        match fused_record with
        | Some f -> Trace.emit trace (Trace.Fused_stats f)
        | None -> ()
      end;
      match on_generation with None -> () | Some f -> f record
    end;
    (* Checkpoint capture runs after the generation record so a traced,
       checkpointed run interleaves them in (Generation, Checkpoint_written)
       order.  Capturing here — right after environmental selection, before
       the next tournament draw — consumes no randomness, so the generator
       state the callback snapshots is exactly what generation [gen + 1]
       needs. *)
    match on_checkpoint with None -> () | Some f -> f gen population
  in
  let population =
    Nsga2.run ~on_generation:notify ~executor ?start ?cache:nsga_cache ?prepare ~rng
      {
        Nsga2.pop_size = config.Config.pop_size;
        generations = config.Config.generations;
        init = (fun rng -> Gen.random_individual rng config ~dims);
        objectives;
        vary = (fun rng p1 p2 -> Vary.vary ~stats:vary_stats rng config ~dims p1 p2);
      }
  in
  (* Refit the rank-0 genomes into models, always include the constant
     model, and keep an exact nondominated set sorted by complexity. *)
  let front_genomes = Nsga2.pareto_front population in
  let candidate_models =
    Array.to_list front_genomes
    |> List.filter_map (fun (ind : Vary.individual Nsga2.individual) ->
           fit_cached ~wb ~wvc ind.Nsga2.genome ~data ~targets)
  in
  let constant =
    let fitted = Linfit.fit_constant ~targets in
    {
      Model.bases = [||];
      intercept = fitted.Linfit.intercept;
      weights = [||];
      train_error = fitted.Linfit.train_error;
      complexity = 0.;
    }
  in
  {
    front = dedup_and_sort (constant :: candidate_models);
    population_size = config.Config.pop_size;
    generations_run = config.Config.generations;
  }

let emit_run_start trace ~seed config ~data =
  if not (Trace.is_null trace) then
    Trace.emit trace
      (Trace.Run_start
         {
           seed;
           pop_size = config.Config.pop_size;
           generations = config.Config.generations;
           max_bases = config.Config.max_bases;
           samples = Dataset.n_samples data;
           dims = Dataset.dims data;
         })

let emit_run_end trace ~start_ns outcome =
  if not (Trace.is_null trace) then
    Trace.emit trace
      (Trace.Run_end
         {
           front =
             List.map (fun (m : Model.t) -> (m.Model.complexity, m.Model.train_error)) outcome.front;
           total_wall_s =
             Int64.to_float (Int64.sub (Metrics.now_ns ()) start_ns) /. 1e9;
         })

let merge_fronts fronts = dedup_and_sort (List.concat fronts)

(* {2 Checkpointing}

   Both entry points drive the same island loop over a mutable
   [Checkpoint.island array]: each slot advances Pending -> In_progress ->
   Done, and every write serializes the whole array — so a snapshot always
   carries the finished fronts of earlier islands alongside the live one. *)

type checkpoint_ctx = {
  ckpt_path : string;
  ckpt_every : int;
  ckpt_fingerprint : string;
  ckpt_seed : int;
}

let m_resumed = Metrics.counter Metrics.default "checkpoint.resumed"

(* The file write and its trace mark are separate on purpose: the process
   backend writes snapshots eagerly as worker progress arrives but emits
   the marks through the island-ordered delivery queue, so the trace stays
   deterministic while the file on disk is always current. *)
let write_snapshot ctx islands =
  Checkpoint.save ~path:ctx.ckpt_path
    {
      Checkpoint.fingerprint = ctx.ckpt_fingerprint;
      seed = ctx.ckpt_seed;
      restarts = Array.length islands;
      phase = Checkpoint.Evolving islands;
    }

let written_mark ctx ~island ~gen =
  Trace.Checkpoint_written { path = ctx.ckpt_path; phase = "evolving"; island; gen }

let save_snapshot ~trace ctx islands ~island ~gen =
  write_snapshot ctx islands;
  if not (Trace.is_null trace) then Trace.emit trace (written_mark ctx ~island ~gen)

(* Initial island states: fresh generator snapshots, or (validated against
   this run's fingerprint, seed and island count) the snapshot's islands. *)
let resume_islands ?resume ~trace ~fingerprint ~seed ~restarts ~entry fresh_states =
  match resume with
  | None -> Array.map (fun state -> Checkpoint.Pending state) fresh_states
  | Some snapshot -> (
      (match Checkpoint.validate snapshot ~fingerprint ~seed ~restarts with
      | Ok () -> ()
      | Error message -> invalid_arg (entry ^ ": cannot resume: " ^ message));
      match snapshot.Checkpoint.phase with
      | Checkpoint.Simplifying _ ->
          invalid_arg
            (entry ^ ": cannot resume: checkpoint is in the simplifying phase, not the search")
      | Checkpoint.Evolving islands ->
          Metrics.incr m_resumed;
          if not (Trace.is_null trace) then begin
            (* Report the first island with work left: its index and last
               completed generation (-1 when it never started, and for both
               fields when every island already finished). *)
            let island = ref (-1) and gen = ref (-1) in
            (try
               Array.iteri
                 (fun k (state : Checkpoint.island) ->
                   match state with
                   | Checkpoint.Done _ -> ()
                   | Checkpoint.Pending _ ->
                       island := k;
                       raise Exit
                   | Checkpoint.In_progress { gen = g; _ } ->
                       island := k;
                       gen := g;
                       raise Exit)
                 islands
             with Exit -> ());
            Trace.emit trace
              (Trace.Run_resumed { phase = "evolving"; island = !island; gen = !gen })
          end;
          Array.copy islands)

(* {3 Island state decoding, shared by every backend} *)

let island_start = function
  | Checkpoint.Pending state -> (Rng.of_state state, None)
  | Checkpoint.In_progress { gen; rng; population } -> (Rng.of_state rng, Some (gen, population))
  | Checkpoint.Done _ -> assert false

(* {3 The multi-process island backend}

   Islands fan out across forked worker processes (Shard); the
   coordinator owns the snapshot file and the trace sink.  Workers
   compute exactly what the in-process path computes — same generator
   state, sequential inner execution — and stream generation records and
   checkpoint progress back over their result pipe; Shard releases those
   to [deliver] in island order, so the emitted trace is the sequential
   trace (plus one Migration record per island). *)
let run_islands_processes ~shards ~trace ?on_generation ?checkpoint ~eval_cache
    ~eval_cache_limit ~fuse islands config ~data ~targets =
  let generations = config.Config.generations in
  let observing = (not (Trace.is_null trace)) || Option.is_some on_generation in
  let run_island ~emit ~progress ~island:_ state =
    (* Worker-process side.  [emit]/[progress] write to the result pipe;
       everything else is the plain sequential search. *)
    match state with
    | Checkpoint.Done front -> front
    | Checkpoint.Pending _ | Checkpoint.In_progress _ ->
        let rng, start = island_start state in
        let worker_trace = if observing then Trace.of_fn emit else Trace.null in
        let on_checkpoint =
          Option.map
            (fun ctx gen population ->
              if gen > 0 && gen mod ctx.ckpt_every = 0 && gen < generations then
                progress ~gen ~rng:(Rng.to_state rng) ~population)
            checkpoint
        in
        let outcome =
          run_with_rng ~rng ~trace:worker_trace ?start ?on_checkpoint ~eval_cache
            ~eval_cache_limit ~fuse config ~data ~targets
        in
        outcome.front
  in
  let snapshot = Option.map (fun ctx () -> write_snapshot ctx islands) checkpoint in
  let on_progress = Option.map (fun write ~island:_ ~gen:_ -> write ()) snapshot in
  let on_done = Option.map (fun write ~island:_ -> write ()) snapshot in
  let mark ~island ~gen =
    match checkpoint with
    | Some ctx -> if not (Trace.is_null trace) then Trace.emit trace (written_mark ctx ~island ~gen)
    | None -> ()
  in
  let deliver ~island event =
    match event with
    | Shard.Record (Trace.Generation record) ->
        if not (Trace.is_null trace) then Trace.emit trace (Trace.Generation record);
        (match on_generation with None -> () | Some f -> f ~island record)
    | Shard.Record record -> if not (Trace.is_null trace) then Trace.emit trace record
    | Shard.Progress_saved gen -> mark ~island ~gen
    | Shard.Done_saved -> mark ~island ~gen:generations
  in
  Shard.run_islands ~shards ?on_progress ?on_done ~deliver ~run_island islands

(* {3 The in-process backends (sequential and domain pool)} *)

let run_islands_in_process ~executor ~trace ?on_generation ?checkpoint ~eval_cache
    ~eval_cache_limit ~fuse islands config ~data ~targets =
  let generations = config.Config.generations in
  let run_island k =
    match islands.(k) with
    | Checkpoint.Done front -> front
    | Checkpoint.Pending _ | Checkpoint.In_progress _ ->
        let rng, start = island_start islands.(k) in
        let on_checkpoint =
          Option.map
            (fun ctx gen population ->
              if gen > 0 && gen mod ctx.ckpt_every = 0 && gen < generations then begin
                islands.(k) <-
                  Checkpoint.In_progress { gen; rng = Rng.to_state rng; population };
                save_snapshot ~trace ctx islands ~island:k ~gen
              end)
            checkpoint
        in
        let on_generation = Option.map (fun f record -> f ~island:k record) on_generation in
        let outcome =
          (* Each island reuses the shared executor for its inner
             evaluation loop; when the islands themselves are fanned out
             below, those nested calls fall back to sequential evaluation
             inside the island. *)
          run_with_rng ~rng ~executor ~trace ?on_generation ?start ?on_checkpoint ~eval_cache
            ~eval_cache_limit ~fuse config ~data ~targets
        in
        (match checkpoint with
        | Some ctx ->
            islands.(k) <- Checkpoint.Done outcome.front;
            save_snapshot ~trace ctx islands ~island:k ~gen:generations
        | None -> ());
        outcome.front
  in
  let indices = Array.init (Array.length islands) (fun k -> k) in
  (* A live trace, a generation callback or a checkpoint file pins the
     islands to the calling domain, so records arrive in island order and
     snapshot writes never race — the same sequence at every jobs setting
     (the executor still parallelizes each island's inner evaluation
     loop).  Only the unobserved path fans whole islands out. *)
  if
    Array.length islands > 1 && Trace.is_null trace && Option.is_none on_generation
    && Option.is_none checkpoint
  then Executor.map executor run_island indices
  else Array.map run_island indices

let run_islands ~executor ~trace ?on_generation ?checkpoint ~eval_cache ~eval_cache_limit
    ~fuse islands config ~data ~targets =
  match Executor.backend executor with
  | Executor.Processes ->
      run_islands_processes ~shards:(Executor.shards executor) ~trace ?on_generation
        ?checkpoint ~eval_cache ~eval_cache_limit ~fuse islands config ~data ~targets
  | Executor.Seq | Executor.Domains ->
      run_islands_in_process ~executor ~trace ?on_generation ?checkpoint ~eval_cache
        ~eval_cache_limit ~fuse islands config ~data ~targets

let checkpoint_inputs ?checkpoint_path ?resume ~checkpoint_every ~seed ~entry config ~data
    ~targets =
  if checkpoint_every < 1 then invalid_arg (entry ^ ": checkpoint_every must be at least 1");
  let fingerprint =
    if Option.is_some checkpoint_path || Option.is_some resume then
      Checkpoint.fingerprint config ~data ~targets
    else ""
  in
  let checkpoint =
    Option.map
      (fun path ->
        {
          ckpt_path = path;
          ckpt_every = checkpoint_every;
          ckpt_fingerprint = fingerprint;
          ckpt_seed = seed;
        })
      checkpoint_path
  in
  (fingerprint, checkpoint)

let run ?(seed = 17) ?executor ?(trace = Trace.null) ?on_generation ?checkpoint_path
    ?(checkpoint_every = 10) ?resume ?(eval_cache = Eval_cache.Off)
    ?(eval_cache_limit = Eval_cache.default_limit) ?(fuse = true) config ~data ~targets =
  ignore (validate_data ~data ~targets);
  let fingerprint, checkpoint =
    checkpoint_inputs ?checkpoint_path ?resume ~checkpoint_every ~seed ~entry:"Search.run"
      config ~data ~targets
  in
  emit_run_start trace ~seed config ~data;
  let start_ns = Metrics.now_ns () in
  let fresh = [| Rng.to_state (Rng.create ~seed ()) |] in
  let islands =
    resume_islands ?resume ~trace ~fingerprint ~seed ~restarts:1 ~entry:"Search.run" fresh
  in
  let outcome =
    with_search_executor ?executor config @@ fun executor ->
    let on_generation = Option.map (fun f ~island:_ record -> f record) on_generation in
    let fronts =
      run_islands ~executor ~trace ?on_generation ?checkpoint ~eval_cache ~eval_cache_limit
        ~fuse islands config ~data ~targets
    in
    {
      front = fronts.(0);
      population_size = config.Config.pop_size;
      generations_run = config.Config.generations;
    }
  in
  emit_run_end trace ~start_ns outcome;
  outcome

let run_multi ?(seed = 17) ?executor ?(trace = Trace.null) ?on_generation ?checkpoint_path
    ?(checkpoint_every = 10) ?resume ?(eval_cache = Eval_cache.Off)
    ?(eval_cache_limit = Eval_cache.default_limit) ?(fuse = true) ~restarts config ~data ~targets =
  if restarts < 1 then invalid_arg "Search.run_multi: need at least 1 restart";
  ignore (validate_data ~data ~targets);
  let fingerprint, checkpoint =
    checkpoint_inputs ?checkpoint_path ?resume ~checkpoint_every ~seed
      ~entry:"Search.run_multi" config ~data ~targets
  in
  emit_run_start trace ~seed config ~data;
  let start_ns = Metrics.now_ns () in
  (* Island RNGs are split off the master sequentially before any parallel
     work, so island k sees the same stream whether the islands run
     back-to-back or fanned out across domains — and a [restarts = r] run
     shares its first r islands with any larger run of the same seed. *)
  let master = Rng.create ~seed () in
  let fresh = Array.make restarts (Rng.to_state master) in
  for k = 0 to restarts - 1 do
    fresh.(k) <- Rng.to_state (Rng.split master)
  done;
  let islands =
    resume_islands ?resume ~trace ~fingerprint ~seed ~restarts ~entry:"Search.run_multi" fresh
  in
  with_search_executor ?executor config @@ fun executor ->
  let fronts =
    run_islands ~executor ~trace ?on_generation ?checkpoint ~eval_cache ~eval_cache_limit
      ~fuse islands config ~data ~targets
  in
  let outcome =
    {
      front = merge_fronts (Array.to_list fronts);
      population_size = config.Config.pop_size;
      generations_run = config.Config.generations * restarts;
    }
  in
  emit_run_end trace ~start_ns outcome;
  outcome

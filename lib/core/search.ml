module Rng = Caffeine_util.Rng
module Stats = Caffeine_util.Stats
module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset
module Linfit = Caffeine_regress.Linfit
module Nsga2 = Caffeine_evo.Nsga2
module Pool = Caffeine_par.Pool
module Metrics = Caffeine_obs.Metrics
module Trace = Caffeine_obs.Trace

type outcome = {
  front : Model.t list;
  population_size : int;
  generations_run : int;
}

let log_src = Logs.Src.create "caffeine.search" ~doc:"CAFFEINE evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Per-basis evaluation columns and their pairwise dot products are
   memoized inside the dataset, keyed by the full structural hash
   (Compiled.Key) — weights included: a mutated weight is a different
   column.  Bases shared between individuals (the common case under set
   crossover) are compiled, evaluated and Gram-assembled once.  The
   dataset caches and scratch buffers are domain-safe, so the same closure
   serves the parallel evaluation paths unchanged. *)

let fit_cached ~wb ~wvc bases ~data ~targets = Model.fit ~wb ~wvc bases ~data ~targets

let validate_data ~data ~targets =
  let n = Dataset.n_samples data in
  if n < 2 then invalid_arg "Search.run: need at least 2 samples";
  if Array.length targets <> n then invalid_arg "Search.run: data/targets length mismatch";
  Dataset.dims data

(* Exact nondominated filter over (train error, complexity), deduplicated
   on identical objective pairs (keep the first), sorted by (complexity,
   train error) — a total order on the deduplicated front, so merged
   parallel-island fronts serialize identically however they arrive. *)
let dedup_and_sort models =
  let dominated (a : Model.t) (b : Model.t) =
    (* b dominates a *)
    b.Model.train_error <= a.Model.train_error
    && b.Model.complexity <= a.Model.complexity
    && (b.Model.train_error < a.Model.train_error || b.Model.complexity < a.Model.complexity)
  in
  let nondominated =
    List.filter (fun m -> not (List.exists (fun other -> dominated m other) models)) models
  in
  let deduped =
    List.fold_left
      (fun acc (m : Model.t) ->
        if
          List.exists
            (fun (kept : Model.t) ->
              kept.Model.train_error = m.Model.train_error
              && kept.Model.complexity = m.Model.complexity)
            acc
        then acc
        else m :: acc)
      [] nondominated
    |> List.rev
  in
  List.sort
    (fun (a : Model.t) b ->
      compare
        (a.Model.complexity, a.Model.train_error)
        (b.Model.complexity, b.Model.train_error))
    deduped

(* Run [f (Some pool)] with the pool the caller supplied, a fresh pool of
   [config.jobs] domains, or [f None] when both say sequential. *)
let with_search_pool ?pool config f =
  match pool with
  | Some _ -> f pool
  | None -> Pool.with_optional_pool ~jobs:config.Config.jobs f

let run_with_rng ~rng ?pool ?(trace = Trace.null) ?on_generation config ~data ~targets =
  let dims = validate_data ~data ~targets in
  let wb = config.Config.wb and wvc = config.Config.wvc in
  let objectives individual =
    match fit_cached ~wb ~wvc individual ~data ~targets with
    | Some model -> [| model.Model.train_error; model.Model.complexity |]
    | None -> [| Float.infinity; Model.complexity_of ~wb ~wvc individual |]
  in
  (* Record construction (objective sorts, variation tallies) happens only
     when someone listens — with the null sink and no callback a traced
     build costs one branch per generation. *)
  let observing = (not (Trace.is_null trace)) || Option.is_some on_generation in
  let vary_stats = Vary.fresh_stats () in
  let last_ns = ref (Metrics.now_ns ()) in
  let notify gen population =
    let best_error =
      Array.fold_left
        (fun acc (ind : Vary.individual Nsga2.individual) -> Float.min acc ind.Nsga2.objectives.(0))
        Float.infinity population
    in
    let front_size = Array.length (Nsga2.pareto_front population) in
    Log.debug (fun m ->
        m "generation %d: best train error %.4f, front size %d" gen best_error front_size);
    if observing then begin
      let stop_ns = Metrics.now_ns () in
      let wall_s = Int64.to_float (Int64.sub stop_ns !last_ns) /. 1e9 in
      last_ns := stop_ns;
      let errors =
        Array.map (fun (ind : Vary.individual Nsga2.individual) -> ind.Nsga2.objectives.(0)) population
      in
      let complexities =
        Array.map (fun (ind : Vary.individual Nsga2.individual) -> ind.Nsga2.objectives.(1)) population
      in
      let record =
        {
          Trace.gen;
          evals = config.Config.pop_size;
          front_size;
          best_nmse = best_error;
          median_nmse = Stats.median errors;
          complexity_min = Stats.min_value complexities;
          complexity_median = Stats.median complexities;
          complexity_max = Stats.max_value complexities;
          crossovers = vary_stats.Vary.crossovers;
          op_counts = Array.copy vary_stats.Vary.op_counts;
          depth_rejects = vary_stats.Vary.depth_rejects;
          wall_s;
        }
      in
      Vary.reset_stats vary_stats;
      if not (Trace.is_null trace) then Trace.emit trace (Trace.Generation record);
      match on_generation with None -> () | Some f -> f record
    end
  in
  let population =
    Nsga2.run ~on_generation:notify ?pool ~rng
      {
        Nsga2.pop_size = config.Config.pop_size;
        generations = config.Config.generations;
        init = (fun rng -> Gen.random_individual rng config ~dims);
        objectives;
        vary = (fun rng p1 p2 -> Vary.vary ~stats:vary_stats rng config ~dims p1 p2);
      }
  in
  (* Refit the rank-0 genomes into models, always include the constant
     model, and keep an exact nondominated set sorted by complexity. *)
  let front_genomes = Nsga2.pareto_front population in
  let candidate_models =
    Array.to_list front_genomes
    |> List.filter_map (fun (ind : Vary.individual Nsga2.individual) ->
           fit_cached ~wb ~wvc ind.Nsga2.genome ~data ~targets)
  in
  let constant =
    let fitted = Linfit.fit_constant ~targets in
    {
      Model.bases = [||];
      intercept = fitted.Linfit.intercept;
      weights = [||];
      train_error = fitted.Linfit.train_error;
      complexity = 0.;
    }
  in
  {
    front = dedup_and_sort (constant :: candidate_models);
    population_size = config.Config.pop_size;
    generations_run = config.Config.generations;
  }

let emit_run_start trace ~seed config ~data =
  if not (Trace.is_null trace) then
    Trace.emit trace
      (Trace.Run_start
         {
           seed;
           pop_size = config.Config.pop_size;
           generations = config.Config.generations;
           max_bases = config.Config.max_bases;
           samples = Dataset.n_samples data;
           dims = Dataset.dims data;
         })

let emit_run_end trace ~start_ns outcome =
  if not (Trace.is_null trace) then
    Trace.emit trace
      (Trace.Run_end
         {
           front =
             List.map (fun (m : Model.t) -> (m.Model.complexity, m.Model.train_error)) outcome.front;
           total_wall_s =
             Int64.to_float (Int64.sub (Metrics.now_ns ()) start_ns) /. 1e9;
         })

let run ?(seed = 17) ?pool ?(trace = Trace.null) ?on_generation config ~data ~targets =
  emit_run_start trace ~seed config ~data;
  let start_ns = Metrics.now_ns () in
  let outcome =
    with_search_pool ?pool config @@ fun pool ->
    run_with_rng ~rng:(Rng.create ~seed ()) ?pool ~trace ?on_generation config ~data ~targets
  in
  emit_run_end trace ~start_ns outcome;
  outcome

let merge_fronts fronts = dedup_and_sort (List.concat fronts)

let run_multi ?(seed = 17) ?pool ?(trace = Trace.null) ~restarts config ~data ~targets =
  if restarts < 1 then invalid_arg "Search.run_multi: need at least 1 restart";
  emit_run_start trace ~seed config ~data;
  let start_ns = Metrics.now_ns () in
  (* Island RNGs are split off the master sequentially before any parallel
     work, so island k sees the same stream whether the islands run
     back-to-back or fanned out across domains — and a [restarts = r] run
     shares its first r islands with any larger run of the same seed. *)
  let master = Rng.create ~seed () in
  let islands = Array.make restarts master in
  for k = 0 to restarts - 1 do
    islands.(k) <- Rng.split master
  done;
  with_search_pool ?pool config @@ fun pool ->
  let run_island rng =
    (* Each island reuses the shared pool for its inner evaluation loop;
       when the islands themselves are fanned out below, those nested
       calls fall back to sequential evaluation inside the island. *)
    run_with_rng ~rng ?pool ~trace config ~data ~targets
  in
  let outcomes =
    (* A live trace pins the islands to the calling domain so their
       generation records arrive in island order — the same sequence at
       every jobs setting (the pool still parallelizes each island's inner
       evaluation loop).  Only the untraced path fans whole islands out. *)
    match pool with
    | Some pool when restarts > 1 && Trace.is_null trace ->
        Pool.parallel_map pool run_island islands
    | Some _ | None -> Array.map run_island islands
  in
  let outcome =
    {
      front = merge_fronts (Array.to_list (Array.map (fun o -> o.front) outcomes));
      population_size = config.Config.pop_size;
      generations_run = config.Config.generations * restarts;
    }
  in
  emit_run_end trace ~start_ns outcome;
  outcome

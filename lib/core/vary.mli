(** Evolutionary operators on CAFFEINE individuals (sets of basis-function
    trees).

    These implement the paper's operator inventory: basis-function set
    crossover (take >0 bases from each of two parents), deleting / adding /
    copying basis functions, grammar-respecting subtree crossover (only
    same-nonterminal subtrees are exchanged — here, nested REPVC bases and
    inner weighted sums), zero-mean Cauchy mutation on weights (5x more
    likely than the rest), VC one-point crossover and exponent perturbation,
    and same-arity operator swaps.  Every operator returns a structurally
    valid individual within the configured bounds. *)

module Expr = Caffeine_expr.Expr

type individual = Expr.basis array

type op_stats = {
  mutable crossovers : int;  (** children whose basis sets were mixed *)
  op_counts : int array;  (** applied mutations, indexed by operator id *)
  op_changed : int array;
      (** mutations that structurally changed their input and survived the
          depth bound, by operator id — the success counts the adaptive
          operator-selection ROADMAP item consumes.  [op_counts] minus
          [op_changed] is the operator's silent no-op + rejection rate. *)
  mutable depth_rejects : int;  (** mutations discarded by the depth bound *)
}
(** Per-call tallies of {!vary} decisions.  Variation always runs
    sequentially on the caller's RNG (see {!Caffeine_evo.Nsga2.run}), so
    plain mutable fields suffice. *)

val num_ops : int
(** Number of variation operators ([Array.length op_counts]). *)

val fresh_stats : unit -> op_stats
val reset_stats : op_stats -> unit

val vary :
  ?stats:op_stats ->
  Caffeine_util.Rng.t ->
  Config.t ->
  dims:int ->
  individual ->
  individual ->
  individual
(** Produce a child from two parents: with the configured probability the
    basis-function sets are first mixed, then a randomly chosen mutation is
    applied (parameter mutation weighted by [param_mutation_weight]).
    When [stats] is given, the crossover decision, the applied operator and
    any depth-bound rejection are tallied into it. *)

(** The individual pieces are exposed for unit testing. *)

val crossover_bases :
  Caffeine_util.Rng.t -> max_bases:int -> individual -> individual -> individual
(** ">0 basis functions from each of 2 parents", truncated to [max_bases]. *)

val mutate_weight : Caffeine_util.Rng.t -> individual -> individual
(** Cauchy-perturb one randomly chosen inner weight (no-op when the
    individual has no inner weights). *)

val mutate_vc : Caffeine_util.Rng.t -> Opset.t -> individual -> individual
(** Add or subtract 1 from one exponent of one VC, keeping it within the
    opset's exponent range and never producing an all-zero VC. *)

val crossover_vc : Caffeine_util.Rng.t -> individual -> individual -> individual
(** One-point crossover between a VC of the child and a VC of the donor. *)

val swap_operator : Caffeine_util.Rng.t -> Opset.t -> individual -> individual
(** Replace one operator with another of the same arity. *)

val add_basis : Caffeine_util.Rng.t -> Config.t -> dims:int -> individual -> individual
(** Append a freshly generated basis function (no-op at [max_bases]). *)

val delete_basis : Caffeine_util.Rng.t -> individual -> individual
(** Remove one random basis function (no-op when only one remains). *)

val copy_basis_from : Caffeine_util.Rng.t -> max_bases:int -> individual -> individual -> individual
(** Copy a (possibly nested) subtree basis of the donor as a new top-level
    basis function of the child. *)

val subtree_crossover : Caffeine_util.Rng.t -> individual -> individual -> individual
(** Replace one nested basis of the child by a nested basis of the donor
    (same grammar nonterminal, REPVC). *)

val randomize_subtree :
  Caffeine_util.Rng.t -> Config.t -> dims:int -> individual -> individual
(** Replace one inner weighted sum with a freshly generated one. *)

val nested_bases : individual -> Expr.basis list
(** All bases appearing anywhere in the individual (top-level and nested);
    exposed for tests. *)

val equal_individual : individual -> individual -> bool
(** Structural equality: same length and pairwise
    {!Caffeine_expr.Expr.equal_basis} in order — the equality the
    evaluation cache's exact level keys on. *)

(** The CAFFEINE search loop: NSGA-II over (training error, complexity) with
    grammar-respecting initialization and variation.

    Basis-function evaluations are memoized per structural tree, so bases
    shared between individuals (the common case under set crossover) are
    evaluated on the training data only once. *)

module Expr = Caffeine_expr.Expr

type outcome = {
  front : Model.t list;
      (** the nondominated (train error, complexity) models, sorted by
          increasing complexity *)
  population_size : int;
  generations_run : int;
}

val run :
  ?seed:int ->
  ?on_generation:(int -> best_error:float -> front_size:int -> unit) ->
  Config.t ->
  inputs:float array array ->
  targets:float array ->
  outcome
(** Evolve symbolic models of [targets] as functions of [inputs] (row-major
    design points).  Requires at least 2 samples and width-consistent rows.
    The returned front always contains the constant model as its
    zero-complexity end.  Progress is logged on the ["caffeine.search"]
    {!Logs} source at debug level. *)

val run_multi :
  ?seed:int ->
  restarts:int ->
  Config.t ->
  inputs:float array array ->
  targets:float array ->
  outcome
(** Independent restarts (seeds [seed], [seed+1], ...) merged into a single
    nondominated front — the stochastic-search hedge the paper leaves to one
    run per goal ("the aim was proof-of-concept, not efficiency").
    Requires [restarts >= 1]. *)

val merge_fronts : Model.t list list -> Model.t list
(** The nondominated, deduplicated union of several fronts, sorted by
    complexity. *)

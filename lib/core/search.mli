(** The CAFFEINE search loop: NSGA-II over (training error, complexity) with
    grammar-respecting initialization and variation.

    Basis-function evaluation goes through the compiled batch engine: each
    distinct basis is lowered to a flat tape once and evaluated column-wise
    over the whole dataset, and the resulting columns are memoized in the
    dataset keyed by the full structural hash
    ({!Caffeine_expr.Compiled.Key} — not the depth-bounded polymorphic
    [Hashtbl.hash], which collides on deep bases sharing a prefix).  Bases
    shared between individuals, the common case under set crossover, are
    evaluated on the training data only once, and SAG or scoring passes
    that reuse the same dataset reuse the same columns.

    {2 Execution backends}

    Both entry points program against {!Caffeine_par.Executor}: objective
    evaluation inside each generation, and (for {!run_multi}) whole
    restarts as parallel islands.  Passing [?executor] reuses the
    caller's executor (and its pool, if any); otherwise a domain-pool
    executor of [config.Config.jobs] domains is created for the call
    (which degenerates to sequential when [jobs <= 1]).

    With a {!Caffeine_par.Executor.Processes} executor, {!run_multi}
    fans whole islands out across forked worker processes ({!Shard}):
    each island runs sequentially inside its worker — immune to OCaml
    5's cross-domain GC coupling — and streams generation records,
    checkpoint progress and its final front back to the coordinator over
    a pipe using the {!Checkpoint} island-line codec.  The coordinator
    re-serializes worker output into island order, so traces, generation
    callbacks and snapshots behave exactly as in a sequential run (plus
    one {!Caffeine_obs.Trace.Migration} record per arrived front).
    {!run} under the process backend runs its single island in one
    worker.

    Results are {b bit-identical} across every backend and every
    [jobs]/[shards] setting, including the sequential path: all
    random-number consumption stays on the coordinating side in a fixed
    order (or is replicated exactly in a worker), and only pure
    per-genome evaluation — or a whole island's deterministic loop — is
    distributed. *)

module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset

type outcome = {
  front : Model.t list;
      (** the nondominated (train error, complexity) models, sorted by
          increasing (complexity, train error) *)
  population_size : int;
  generations_run : int;
}

val run :
  ?seed:int ->
  ?executor:Caffeine_par.Executor.t ->
  ?trace:Caffeine_obs.Trace.sink ->
  ?on_generation:(Caffeine_obs.Trace.generation -> unit) ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume:Checkpoint.t ->
  ?eval_cache:Eval_cache.mode ->
  ?eval_cache_limit:int ->
  ?fuse:bool ->
  Config.t ->
  data:Dataset.t ->
  targets:float array ->
  outcome
(** Evolve symbolic models of [targets] as functions of the dataset's
    design variables.  Requires at least 2 samples.  The returned front
    always contains the constant model as its zero-complexity end.
    Progress is logged on the ["caffeine.search"] {!Logs} source at debug
    level.

    [trace] receives a {!Caffeine_obs.Trace.Run_start}, one
    {!Caffeine_obs.Trace.Generation} followed by one
    {!Caffeine_obs.Trace.Op_stats} (per-operator variation success
    tallies) per environmental selection (generation 0 = after
    initialization) and a {!Caffeine_obs.Trace.Run_end}; [on_generation]
    observes the same per-generation records directly.  Every field
    except [wall_s] is deterministic: for a fixed seed the record
    sequence is identical at every jobs setting.  With the default null
    sink and no callback, record construction is skipped entirely.

    [eval_cache] (default {!Eval_cache.Off}) puts a two-level memo in
    front of objective evaluation ({!Eval_cache}): the exact level keys on
    the individual's structural hash and is bit-identical to recomputation
    by construction, so the evolved front is the same with the cache on or
    off at every backend; the behavioral level additionally reuses results
    across structurally different candidates whose compiled probe outputs
    match exactly, and reports the population's distinct-fingerprint count
    in each generation record's [behavioral_diversity] field.  Each island
    — and, under the process backend, each forked worker — owns a private
    cache instance bounded by [eval_cache_limit] entries
    (default {!Eval_cache.default_limit}).  Caches are rebuildable derived
    state: they never enter checkpoint snapshots, and resumed runs start
    cold.

    [fuse] (default [true]) evaluates each generation's miss-batch
    through fused multi-expression tapes ({!Caffeine_expr.Fused}): the
    batch is split into one chunk per executor job (one chunk on
    sequential and process executors), each worker hash-conses its
    chunk's bases into a shared DAG, and subtrees shared across the chunk
    are evaluated once with cache-tiled kernels before the per-genome
    fits run against the warmed column cache.  Fused columns are
    bit-identical to per-expression ones, so the evolved front is the
    same with fusion on or off, at every backend and cache mode.  When
    observing, one {!Caffeine_obs.Trace.Fused_stats} record per
    generation reports the cross-tree CSE ratio (dropped by the
    deterministic projection).

    [checkpoint_path] makes the run durable: every [checkpoint_every]
    generations (default 10) and once when the search completes, the full
    run state — population with objectives, generation counter, generator
    words, fingerprint of config/data/targets — is written atomically to
    the path ({!Checkpoint.save}), and a
    {!Caffeine_obs.Trace.Checkpoint_written} record is emitted.  [resume]
    continues from a previously loaded snapshot: the run restarts at the
    checkpointed generation and produces a front {b bit-identical} to the
    uninterrupted run's, at any jobs setting.  Raises [Invalid_argument]
    when the snapshot does not match this run's fingerprint, seed or
    island count, or is in the simplifying phase ({!Sag} progress is
    resumed by the CLI layer, not here). *)

val run_multi :
  ?seed:int ->
  ?executor:Caffeine_par.Executor.t ->
  ?trace:Caffeine_obs.Trace.sink ->
  ?on_generation:(island:int -> Caffeine_obs.Trace.generation -> unit) ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume:Checkpoint.t ->
  ?eval_cache:Eval_cache.mode ->
  ?eval_cache_limit:int ->
  ?fuse:bool ->
  restarts:int ->
  Config.t ->
  data:Dataset.t ->
  targets:float array ->
  outcome
(** Independent restarts merged into a single nondominated front — the
    stochastic-search hedge the paper leaves to one run per goal ("the aim
    was proof-of-concept, not efficiency").  Each island's generator is
    split off a master seeded with [seed] ({!Caffeine_util.Rng.split})
    before any work starts, so a run with [restarts = r] executes exactly
    the first [r] islands of any longer run with the same seed, and the
    merged front is identical whether islands run sequentially or across
    pool domains.  The restarts share the dataset's basis-column cache.
    Requires [restarts >= 1].

    With a live [trace], an [on_generation] callback or a
    [checkpoint_path], the in-process backends run the islands
    back-to-back on the calling domain (each still fans its inner
    evaluation loop over the pool), so the generation records of island
    [k] precede those of island [k+1] at every jobs setting and snapshot
    writes never race — trading island-level parallelism for a
    deterministic record sequence.  The process backend keeps both: the
    {!Shard} coordinator buffers worker output and releases it in island
    order, so the observed sequence matches the sequential one while the
    islands still run concurrently.

    Checkpointing and resuming work as in {!run}; a snapshot holds one
    entry per island (pending, in-progress or finished), so a resumed run
    skips finished islands entirely and re-enters the interrupted one at
    its checkpointed generation. *)

val dedup_and_sort : Model.t list -> Model.t list
(** The exact nondominated subset over (train error, complexity),
    deduplicated on identical objective pairs, sorted by
    (complexity, train error) — a total order on the result, so equal
    inputs in any arrival order produce the same list. *)

val merge_fronts : Model.t list list -> Model.t list
(** [dedup_and_sort] of the concatenation of several fronts. *)

(** Two-level, domain-safe cache in front of NSGA-II objective evaluation.

    Most of a generation's budget is spent re-fitting candidates the search
    has already seen: variation frequently returns a child structurally
    equal to its parent (no-op mutations, depth-bound rejections), and GP
    populations collapse onto few behavioral clusters.  This cache skips
    those duplicate evaluations at two levels:

    - {b L1 (exact)} — bounded, sharded, keyed by the full structural hash
      of the whole individual ({!Caffeine_expr.Compiled.hash_basis} folded
      over the bases, {!Caffeine_expr.Expr.equal_basis} collision checks).
      A hit returns the objectives computed when the structure was first
      fitted, {e bit-identical to recomputation by construction}: the
      objectives are a pure function of (structure, data, targets), so the
      determinism-at-any-backend invariant survives with the cache on.

    - {b L2 (behavioral)} — only in {!Behavioral} mode.  Candidates are
      keyed by the raw IEEE words of their bases' outputs on a fixed,
      RNG-seeded probe subsample of the dataset ({!Caffeine_io.Dataset.probe},
      stable under column-cache eviction).  Results are reused across
      {e structurally different} candidates only on exact probe-output
      match, and only the fitted training error crosses over — complexity
      is structural and is recomputed for the candidate at hand.  Quantized
      probe outputs additionally serve as behavioral {!fingerprint}s for
      population {!diversity} accounting (never for reuse).

    Instances are rebuildable state: the search creates one per island per
    run, never serializes one into a checkpoint, and a resumed run simply
    starts cold.  Lookups and stores are sharded behind per-shard mutexes
    (the dataset caches' design), bounded by wholesale per-shard resets.

    Every instance also bumps the process-wide
    {!Caffeine_obs.Metrics.default} counters [eval.cache_hits],
    [eval.cache_misses] and [eval.cache_evictions]. *)

module Expr = Caffeine_expr.Expr
module Dataset = Caffeine_io.Dataset

type mode = Off | Exact | Behavioral

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) result
(** Parses ["off"], ["exact"], ["behavioral"] (the [--eval-cache] CLI
    values). *)

type t

val default_limit : int
(** Default bound on cached entries per level (65536). *)

val create :
  ?limit:int ->
  ?probe_size:int ->
  ?probe_seed:int ->
  ?precision:int ->
  mode:mode ->
  wb:float ->
  wvc:float ->
  data:Dataset.t ->
  unit ->
  t
(** [create ~mode ~wb ~wvc ~data ()] builds a cache over [data] with the
    complexity weights the search fits with.  [limit] bounds each level
    (default {!default_limit}); [probe_size] samples (default 16, clamped
    to the dataset) are drawn once from a generator seeded with
    [probe_seed] — independent of the search stream, so every island and
    every resumed run probes the same indices; [precision] is the number
    of decimal digits the diversity fingerprint quantizes to (default 6).
    Raises [Invalid_argument] on a non-positive [limit] or [probe_size]
    or a negative [precision]. *)

val mode : t -> mode

val probe_size : t -> int
(** Number of probe samples actually used ([min probe_size n_samples]). *)

val lookup : t -> Expr.basis array -> float array option
(** Previously computed [[| train_error; complexity |]] for this
    individual, or [None].  Exact hits are bit-identical to recomputation;
    behavioral hits reuse the training error of a probe-identical twin and
    recompute the structural complexity.  Always [None] in {!Off} mode. *)

val store : t -> Expr.basis array -> float array -> unit
(** Record freshly computed objectives (a defensive copy is taken).  In
    {!Behavioral} mode the training error is also indexed by the
    individual's probe signature.  No-op in {!Off} mode. *)

val fingerprint : t -> Expr.basis array -> int64 array
(** The quantized behavioral fingerprint: per-basis probe outputs in basis
    order, rounded to the configured precision, as IEEE words (non-finite
    outputs collapse to canonical constants).  A pure function of
    (individual, data, probe plan) — independent of cache contents and of
    the dataset's column-cache state. *)

val diversity : t -> Expr.basis array array -> int
(** Number of distinct {!fingerprint}s in the population — the
    per-generation behavioral-diversity statistic.  [-1] unless the cache
    is in {!Behavioral} mode. *)

type stats = {
  hits : int;  (** lookups served from either level *)
  misses : int;  (** lookups that fell through to a real evaluation *)
  evictions : int;  (** entries dropped by per-shard overflow resets *)
  l1_hits : int;  (** exact structural hits *)
  l2_hits : int;  (** behavioral (probe-signature) hits *)
  entries : int;  (** entries currently cached across both levels *)
}

val stats : t -> stats
(** Lifetime counters of this instance, for effectiveness reporting. *)

type global_stats = { total_hits : int; total_misses : int; total_evictions : int }

val global_stats : unit -> global_stats
(** Process-wide [eval.cache_*] counter values (all instances of this
    process combined — worker processes keep their own). *)

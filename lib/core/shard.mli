(** Multi-process island execution: each island of a search runs in a
    forked worker process, immune to OCaml 5's cross-domain GC coupling
    (every domain joins every minor collection, which is what makes the
    domain-pool backend lose on small workloads).

    {2 Topology}

    The coordinator forks [shards] workers (never more than there are
    unfinished islands) and deals the unfinished islands round-robin: the
    island at position [p] of the remaining work goes to worker
    [p mod shards].  Each worker gets two pipes.  Down the
    assignment pipe the coordinator writes a hello line followed by one
    {!Checkpoint.island_to_line} per assigned island (pending or
    in-progress — resumed populations travel to the worker), then closes
    it.  Up the result pipe the worker writes JSONL: verbatim
    {!Caffeine_obs.Trace} record lines interleaved with island lines —
    [in_progress] at every checkpoint boundary and [done] carrying the
    island's final elite front.  The coordinator demultiplexes by the
    JSON [type] field.

    {2 Determinism}

    Workers compute exactly what the sequential path computes (same
    generator state, same data inherited by fork, inner execution
    sequential), so final fronts are bit-identical at every [shards]
    setting.  Worker output arrives in any interleaving; the coordinator
    therefore buffers per island and releases events in island order —
    trace records, checkpoint marks and migration records reach the
    caller in exactly the sequence a sequential run would produce.
    Snapshot {e writes}, by contrast, happen eagerly on arrival (a crash
    must not lose progress a worker already reported); only their trace
    marks are reordered.

    {2 Failure}

    A worker that dies mid-island (signal, [Unix._exit], uncaught
    exception) closes its result pipe; the coordinator sees EOF before
    the island's [done] line, reaps every worker and raises
    {!Worker_failed} — never a hang.  If the coordinator itself dies, the
    closed assignment/result pipes kill the workers on their next read or
    write ([SIGPIPE] / [EPIPE]); an [at_exit] hook additionally kills
    live workers when the coordinator exits through [Stdlib.exit] from a
    callback.  [SIGPIPE] is ignored in the coordinator for the duration
    of the run (saved and restored).

    {2 Telemetry}

    Counters on {!Caffeine_obs.Metrics.default}: [shard.workers_spawned],
    [shard.migrations] (fronts received) and [shard.bytes_exchanged]
    (bytes moved through the pipes, both directions).  Every received
    front is also delivered as a {!Caffeine_obs.Trace.Migration} record.
    Metrics incremented {e inside} worker processes die with them — only
    coordinator-side counters and trace records survive. *)

exception Worker_failed of string
(** A worker process exited without finishing its islands, or exited
    abnormally.  The message lists the worker, its fate (exit code or
    signal) and the islands left unfinished. *)

(** Ordered, per-island events the coordinator releases in island order. *)
type event =
  | Record of Caffeine_obs.Trace.record
      (** a record the worker emitted, or the synthesized
          {!Caffeine_obs.Trace.Migration} for the island's arrived front *)
  | Progress_saved of int
      (** a snapshot carrying this island's progress through generation
          [gen] was written (only when [on_progress] is given) *)
  | Done_saved
      (** a snapshot carrying this island's final front was written (only
          when [on_done] is given) *)

val run_islands :
  shards:int ->
  ?on_progress:(island:int -> gen:int -> unit) ->
  ?on_done:(island:int -> unit) ->
  ?deliver:(island:int -> event -> unit) ->
  run_island:
    (emit:(Caffeine_obs.Trace.record -> unit) ->
    progress:
      (gen:int -> rng:Caffeine_util.Rng.state -> population:Checkpoint.population -> unit) ->
    island:int ->
    Checkpoint.island ->
    Model.t list) ->
  Checkpoint.island array ->
  Model.t list array
(** Run every non-[Done] island of [islands] across [shards] forked
    workers and return the final fronts in island order ([Done] islands
    pass through untouched).  [islands] is mutated in place as progress
    and fronts arrive, exactly as the sequential island loop mutates it,
    so a snapshot of the array is always current.

    [run_island] executes {e inside the worker process}: it must be
    deterministic, call [emit] for every trace record to forward (or
    never, when the run is unobserved), call [progress] at each
    checkpoint boundary, and return the island's final front.  Do not
    touch inherited channels or pools inside it.

    [on_progress]/[on_done] execute {e eagerly} on the coordinator, after
    [islands] has been updated — this is where the caller writes its
    snapshot file.  [deliver] executes on the coordinator in island
    order; exceptions it raises abort the run (workers are killed and
    reaped) and propagate.

    Must not be called while worker domains are alive in this process: a
    fork of a multi-domain OCaml runtime leaves the child's GC waiting on
    domains that do not exist there.  The search layer guarantees this by
    never combining the process backend with a domain pool. *)

(** Textual save/load of fitted models.

    A model is persisted as the exact expression string the library prints
    (paper-style infix), so saved files are both machine-readable and
    directly human-readable.  A models file holds one model per line,
    optionally preceded by [# comment] lines and a [vars: a b c] header
    naming the design variables. *)

val parse_model :
  var_names:string array -> wb:float -> wvc:float -> string -> (Model.t, string) result
(** Parse one printed expression back into a model.  The training error is
    not stored in the text and is returned as [nan]; the complexity is
    recomputed from the parsed structure. *)

val save :
  path:string -> var_names:string array -> Model.t list -> unit
(** Write a models file (header + one expression per line). *)

val load :
  path:string -> wb:float -> wvc:float -> (string array * Model.t list, string) result
(** Read a models file back: returns the variable names from the [vars:]
    header and the parsed models, in file order. *)

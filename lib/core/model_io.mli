(** Textual save/load of fitted models.

    A model is persisted as the exact expression string the library prints
    (paper-style infix), so saved files are both machine-readable and
    directly human-readable.  A models file holds one model per line,
    optionally preceded by [# comment] lines and a [vars: a b c] header
    naming the design variables.

    Metadata that has no infix rendering travels on [#:] directive lines
    immediately before the model they describe — currently
    [#: train_error=<v>] with [<v>] a [%.17g] float or the lowercase
    [nan] / [infinity] / [-infinity] spellings, so non-finite stored
    errors round-trip exactly.  Directive lines start with [#], so files
    carrying them still load under readers that only skip comments, and
    files without them load with [train_error = nan] as before. *)

val parse_model :
  var_names:string array -> wb:float -> wvc:float -> string -> (Model.t, string) result
(** Parse one printed expression back into a model.  The training error is
    not stored in the expression text and is returned as [nan]; the
    complexity is recomputed from the parsed structure. *)

val save :
  path:string -> var_names:string array -> Model.t list -> unit
(** Write a models file (header + per-model [#:] metadata + expression). *)

val load :
  path:string -> wb:float -> wvc:float -> (string array * Model.t list, string) result
(** Read a models file back: returns the variable names from the [vars:]
    header and the parsed models, in file order.  Errors are one-line
    [file:line: message] strings naming the offending input. *)

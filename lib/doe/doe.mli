(** Design-of-experiments sampling plans.

    The paper samples design points with "full orthogonal-hypercube DOE"
    around a nominal design: each of the 13 design variables takes three
    levels (center, center·(1−dx), center·(1+dx)) and 243 = 3⁵ runs are
    arranged as a strength-2 orthogonal array.  This module provides that
    plan plus full factorial and Latin hypercube designs. *)

type design = int array array
(** [runs x factors] level matrix; every entry is a level index in
    [\[0, levels)]. *)

val full_factorial : levels:int -> factors:int -> design
(** Every combination of levels; [levels ** factors] runs.  Raises
    [Invalid_argument] when the run count would exceed [10^7]. *)

val max_oa_factors : runs_exponent:int -> int
(** Number of 3-level columns available from a [3^k]-run linear orthogonal
    array: [(3^k - 1) / 2]. *)

val orthogonal_array : runs_exponent:int -> factors:int -> design
(** [orthogonal_array ~runs_exponent:k ~factors:d] is a strength-2 orthogonal
    array with [3^k] runs and [d] 3-level columns, built from the GF(3)
    linear code whose column generators are the distinct nonzero vectors of
    GF(3)^k up to scalar multiples.  Every pair of columns contains each of
    the 9 level pairs equally often.  Raises [Invalid_argument] when
    [d > max_oa_factors ~runs_exponent:k]. *)

val smallest_runs_exponent : factors:int -> int
(** Smallest [k] such that a [3^k]-run array supports [factors] columns. *)

val scale_levels : center:float array -> dx:float -> design -> float array array
(** Map a 3-level design to real design points: level [0 -> c·(1-dx)],
    [1 -> c], [2 -> c·(1+dx)] per variable, the paper's "scaled dx"
    hypercube. *)

val scale_levels_additive : center:float array -> delta:float array -> design -> float array array
(** Additive variant: level [0 -> c-δ], [1 -> c], [2 -> c+δ]. *)

val latin_hypercube : Caffeine_util.Rng.t -> samples:int -> dims:int -> float array array
(** Latin hypercube sample of the unit cube [\[0,1\]^dims]: one point per
    stratum per dimension, uniformly jittered within strata. *)

val map_unit_to_box :
  lo:float array -> hi:float array -> float array array -> float array array
(** Affinely rescale unit-cube points into the box [\[lo, hi\]]. *)

type design = int array array

let full_factorial ~levels ~factors =
  if levels < 2 then invalid_arg "Doe.full_factorial: need at least 2 levels";
  if factors < 1 then invalid_arg "Doe.full_factorial: need at least 1 factor";
  let runs =
    let rec power acc i = if i = 0 then acc else power (acc * levels) (i - 1) in
    power 1 factors
  in
  if runs > 10_000_000 then invalid_arg "Doe.full_factorial: design too large";
  Array.init runs (fun r ->
      let digits = Array.make factors 0 in
      let rest = ref r in
      for f = factors - 1 downto 0 do
        digits.(f) <- !rest mod levels;
        rest := !rest / levels
      done;
      digits)

let pow3 k =
  let rec power acc i = if i = 0 then acc else power (acc * 3) (i - 1) in
  power 1 k

let max_oa_factors ~runs_exponent =
  if runs_exponent < 1 then invalid_arg "Doe.max_oa_factors: exponent must be positive";
  (pow3 runs_exponent - 1) / 2

(* Column generators: all nonzero vectors of GF(3)^k whose first nonzero
   coordinate is 1 (one representative per projective point). *)
let column_generators k =
  let total = pow3 k in
  let vectors = ref [] in
  for code = 1 to total - 1 do
    let digits = Array.make k 0 in
    let rest = ref code in
    for i = k - 1 downto 0 do
      digits.(i) <- !rest mod 3;
      rest := !rest / 3
    done;
    let rec first_nonzero i = if digits.(i) <> 0 then digits.(i) else first_nonzero (i + 1) in
    if first_nonzero 0 = 1 then vectors := digits :: !vectors
  done;
  Array.of_list (List.rev !vectors)

let orthogonal_array ~runs_exponent ~factors =
  if factors < 1 then invalid_arg "Doe.orthogonal_array: need at least 1 factor";
  let available = max_oa_factors ~runs_exponent in
  if factors > available then
    invalid_arg
      (Printf.sprintf "Doe.orthogonal_array: %d factors exceed the %d available columns" factors
         available);
  let k = runs_exponent in
  let generators = column_generators k in
  let runs = pow3 k in
  Array.init runs (fun r ->
      let u = Array.make k 0 in
      let rest = ref r in
      for i = k - 1 downto 0 do
        u.(i) <- !rest mod 3;
        rest := !rest / 3
      done;
      Array.init factors (fun f ->
          let g = generators.(f) in
          let acc = ref 0 in
          for i = 0 to k - 1 do
            acc := !acc + (u.(i) * g.(i))
          done;
          !acc mod 3))

let smallest_runs_exponent ~factors =
  let rec search k = if max_oa_factors ~runs_exponent:k >= factors then k else search (k + 1) in
  search 1

let check_design_width name center design =
  Array.iter
    (fun run ->
      if Array.length run <> Array.length center then invalid_arg (name ^ ": width mismatch"))
    design

let scale_levels ~center ~dx design =
  check_design_width "Doe.scale_levels" center design;
  let level_value c = function
    | 0 -> c *. (1. -. dx)
    | 1 -> c
    | 2 -> c *. (1. +. dx)
    | l -> invalid_arg (Printf.sprintf "Doe.scale_levels: level %d outside 3-level design" l)
  in
  Array.map (fun run -> Array.mapi (fun i l -> level_value center.(i) l) run) design

let scale_levels_additive ~center ~delta design =
  check_design_width "Doe.scale_levels_additive" center design;
  if Array.length delta <> Array.length center then
    invalid_arg "Doe.scale_levels_additive: delta width mismatch";
  let level_value c d = function
    | 0 -> c -. d
    | 1 -> c
    | 2 -> c +. d
    | l ->
        invalid_arg (Printf.sprintf "Doe.scale_levels_additive: level %d outside 3-level design" l)
  in
  Array.map (fun run -> Array.mapi (fun i l -> level_value center.(i) delta.(i) l) run) design

let latin_hypercube rng ~samples ~dims =
  if samples < 1 || dims < 1 then invalid_arg "Doe.latin_hypercube: empty design";
  let points = Array.make_matrix samples dims 0. in
  for d = 0 to dims - 1 do
    let order = Caffeine_util.Rng.permutation rng samples in
    for s = 0 to samples - 1 do
      let stratum = float_of_int order.(s) in
      points.(s).(d) <- (stratum +. Caffeine_util.Rng.uniform rng) /. float_of_int samples
    done
  done;
  points

let map_unit_to_box ~lo ~hi points =
  let dims = Array.length lo in
  if Array.length hi <> dims then invalid_arg "Doe.map_unit_to_box: bound width mismatch";
  Array.map
    (fun p ->
      if Array.length p <> dims then invalid_arg "Doe.map_unit_to_box: point width mismatch";
      Array.mapi (fun i x -> lo.(i) +. (x *. (hi.(i) -. lo.(i)))) p)
    points

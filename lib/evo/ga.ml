module Rng = Caffeine_util.Rng

type 'a individual = {
  genome : 'a;
  fitness : float;
}

type 'a config = {
  pop_size : int;
  generations : int;
  elite : int;
  tournament : int;
  init : Rng.t -> 'a;
  fitness : 'a -> float;
  vary : Rng.t -> 'a -> 'a -> 'a;
}

let sanitize fitness = if Float.is_nan fitness then Float.infinity else fitness

let sort_population (population : _ individual array) =
  Array.sort (fun (a : _ individual) b -> compare a.fitness b.fitness) population;
  population

let run ?on_generation ~rng config =
  if config.pop_size < 2 then invalid_arg "Ga.run: pop_size must be at least 2";
  if config.elite < 0 || config.elite >= config.pop_size then
    invalid_arg "Ga.run: elite must be in [0, pop_size)";
  if config.tournament < 1 then invalid_arg "Ga.run: tournament must be at least 1";
  let evaluate genome = { genome; fitness = sanitize (config.fitness genome) } in
  let population =
    ref (sort_population (Array.init config.pop_size (fun _ -> evaluate (config.init rng))))
  in
  (match on_generation with Some f -> f 0 ~best:!population.(0) | None -> ());
  for gen = 1 to config.generations do
    let current = !population in
    let select () =
      let champion = ref current.(Rng.int rng config.pop_size) in
      for _ = 2 to config.tournament do
        let challenger = current.(Rng.int rng config.pop_size) in
        if challenger.fitness < !champion.fitness then champion := challenger
      done;
      !champion
    in
    let next =
      Array.init config.pop_size (fun i ->
          if i < config.elite then current.(i)
          else begin
            let p1 = select () and p2 = select () in
            evaluate (config.vary rng p1.genome p2.genome)
          end)
    in
    population := sort_population next;
    match on_generation with Some f -> f gen ~best:!population.(0) | None -> ()
  done;
  !population

let best population =
  if Array.length population = 0 then invalid_arg "Ga.best: empty population";
  population.(0)

(** A plain single-objective generational GA with elitism.

    Used as the ablation counterpart to {!Nsga2}: instead of evolving a
    Pareto set over (error, complexity), a scalarized fitness
    [error + λ·complexity] is minimized.  Comparing the two quantifies what
    the paper's multi-objective formulation buys. *)

type 'a individual = {
  genome : 'a;
  fitness : float;  (** minimized; non-finite values are treated as worst *)
}

type 'a config = {
  pop_size : int;
  generations : int;
  elite : int;  (** individuals copied unchanged into the next generation *)
  tournament : int;  (** tournament size for parent selection *)
  init : Caffeine_util.Rng.t -> 'a;
  fitness : 'a -> float;
  vary : Caffeine_util.Rng.t -> 'a -> 'a -> 'a;
}

val run :
  ?on_generation:(int -> best:'a individual -> unit) ->
  rng:Caffeine_util.Rng.t ->
  'a config ->
  'a individual array
(** Returns the final population sorted by fitness (best first).  The best
    fitness is monotonically non-increasing across generations (elitism).
    Raises [Invalid_argument] for inconsistent sizes
    ([pop_size < 2], [elite >= pop_size], [tournament < 1]). *)

val best : 'a individual array -> 'a individual
(** First element; raises [Invalid_argument] on an empty population. *)

module Rng = Caffeine_util.Rng
module Executor = Caffeine_par.Executor

type 'a individual = {
  genome : 'a;
  objectives : float array;
  rank : int;
  crowding : float;
}

let sanitize objectives =
  Array.map (fun v -> if Float.is_nan v then Float.infinity else v) objectives

let dominates a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let no_worse = ref true and strictly_better = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false else if a.(i) < b.(i) then strictly_better := true
  done;
  !no_worse && !strictly_better

let fast_nondominated_sort objectives =
  let n = Array.length objectives in
  let dominated_by = Array.make n [] in
  let domination_count = Array.make n 0 in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      if dominates objectives.(p) objectives.(q) then begin
        dominated_by.(p) <- q :: dominated_by.(p);
        domination_count.(q) <- domination_count.(q) + 1
      end
      else if dominates objectives.(q) objectives.(p) then begin
        dominated_by.(q) <- p :: dominated_by.(q);
        domination_count.(p) <- domination_count.(p) + 1
      end
    done
  done;
  let fronts = ref [] in
  let current = ref [] in
  for p = 0 to n - 1 do
    if domination_count.(p) = 0 then current := p :: !current
  done;
  while !current <> [] do
    fronts := List.rev !current :: !fronts;
    let next = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            domination_count.(q) <- domination_count.(q) - 1;
            if domination_count.(q) = 0 then next := q :: !next)
          dominated_by.(p))
      !current;
    current := List.rev !next
  done;
  Array.of_list (List.rev !fronts)

let crowding_distances objectives front =
  match front with
  | [] -> []
  | [ only ] -> [ (only, Float.infinity) ]
  | _ :: _ :: _ ->
      let members = Array.of_list front in
      let count = Array.length members in
      let distance = Hashtbl.create count in
      Array.iter (fun i -> Hashtbl.replace distance i 0.) members;
      let num_objectives = Array.length objectives.(members.(0)) in
      for m = 0 to num_objectives - 1 do
        let sorted = Array.copy members in
        Array.sort (fun a b -> compare objectives.(a).(m) objectives.(b).(m)) sorted;
        let lo = objectives.(sorted.(0)).(m) in
        let hi = objectives.(sorted.(count - 1)).(m) in
        Hashtbl.replace distance sorted.(0) Float.infinity;
        Hashtbl.replace distance sorted.(count - 1) Float.infinity;
        let span = hi -. lo in
        if span > 0. && Float.is_finite span then
          for k = 1 to count - 2 do
            let gap =
              (objectives.(sorted.(k + 1)).(m) -. objectives.(sorted.(k - 1)).(m)) /. span
            in
            let previous = Hashtbl.find distance sorted.(k) in
            Hashtbl.replace distance sorted.(k) (previous +. gap)
          done
      done;
      List.map (fun i -> (i, Hashtbl.find distance i)) front

let pareto_front population = Array.of_list (List.filter (fun ind -> ind.rank = 0) (Array.to_list population))

type 'a config = {
  pop_size : int;
  generations : int;
  init : Rng.t -> 'a;
  objectives : 'a -> float array;
  vary : Rng.t -> 'a -> 'a -> 'a;
}

(* Rank the raw (genome, objectives) pairs and keep the best [target] of
   them, truncating the split front by crowding distance. *)
let environmental_selection genomes objectives target =
  let fronts = fast_nondominated_sort objectives in
  let selected = ref [] in
  let remaining = ref target in
  Array.iteri
    (fun rank front ->
      if !remaining > 0 then begin
        let scored = crowding_distances objectives front in
        let scored =
          if List.length scored <= !remaining then scored
          else begin
            let sorted =
              List.sort (fun (_, c1) (_, c2) -> compare c2 c1) scored
            in
            List.filteri (fun k _ -> k < !remaining) sorted
          end
        in
        List.iter
          (fun (i, crowding) ->
            selected :=
              { genome = genomes.(i); objectives = objectives.(i); rank; crowding } :: !selected)
          scored;
        remaining := !remaining - List.length scored
      end)
    fronts;
  let population = Array.of_list (List.rev !selected) in
  Array.sort
    (fun a b -> if a.rank <> b.rank then compare a.rank b.rank else compare b.crowding a.crowding)
    population;
  population

let binary_tournament rng population =
  let pick () = population.(Rng.int rng (Array.length population)) in
  let a = pick () and b = pick () in
  if a.rank < b.rank then a
  else if b.rank < a.rank then b
  else if a.crowding > b.crowding then a
  else b

type 'a cache = {
  lookup : 'a -> float array option;
  store : 'a -> float array -> unit;
}

let run ?on_generation ?(executor = Executor.sequential) ?start ?cache ?prepare ~rng config =
  if config.pop_size < 2 then invalid_arg "Nsga2.run: pop_size must be at least 2";
  let evaluate genome = sanitize (config.objectives genome) in
  (* Objective evaluation is the dominant cost and is independent per
     genome, so it fans out across the executor; initialization,
     tournament selection and variation stay on the caller's RNG in
     sequential order, which keeps results bit-identical to the
     sequential path.

     With a cache, lookups and stores happen sequentially on the calling
     domain, in genome order, and only the missing genomes fan out — the
     cache never sees concurrent access from pool workers, and the result
     array is the same whether a value was cached or recomputed (the
     cache contract). *)
  let eval_indices genomes indices =
    match prepare with
    | None -> Executor.map executor (fun i -> evaluate genomes.(i)) indices
    | Some prepare ->
        (* Batched path: split the miss-batch into contiguous chunks — one
           per executor slot, doubled for load balance — and let each
           worker run [prepare] on its own chunk before evaluating it.
           [prepare] must be a pure throughput hint (fused cache warming):
           chunk boundaries vary with the jobs setting, so results must
           not depend on which genomes were prepared together.  Seq and
           process executors report one job, giving a single maximal
           batch. *)
        let total = Array.length indices in
        if total = 0 then [||]
        else begin
          let chunk_count = Stdlib.min total (Stdlib.max 1 (2 * Executor.jobs executor)) in
          let chunks =
            Array.init chunk_count (fun c ->
                let lo = c * total / chunk_count and hi = (c + 1) * total / chunk_count in
                Array.sub indices lo (hi - lo))
          in
          let results =
            Executor.map executor
              (fun chunk ->
                prepare (Array.map (fun i -> genomes.(i)) chunk);
                Array.map (fun i -> evaluate genomes.(i)) chunk)
              chunks
          in
          Array.concat (Array.to_list results)
        end
  in
  let evaluate_all genomes =
    match cache with
    | None -> (
        match prepare with
        | None -> Executor.map executor evaluate genomes
        | Some _ -> eval_indices genomes (Array.init (Array.length genomes) Fun.id))
    | Some cache ->
        let n = Array.length genomes in
        let results = Array.make n [||] in
        let missing = ref [] in
        for i = n - 1 downto 0 do
          match cache.lookup genomes.(i) with
          | Some objectives -> results.(i) <- sanitize objectives
          | None -> missing := i :: !missing
        done;
        let missing = Array.of_list !missing in
        let computed = eval_indices genomes missing in
        Array.iteri
          (fun k i ->
            results.(i) <- computed.(k);
            cache.store genomes.(i) computed.(k))
          missing;
        results
  in
  (* Resuming from a checkpointed (generation, population) skips
     initialization entirely: the caller's rng must hold the state captured
     right after that generation's environmental selection, so the next
     tournament draw continues the original stream. *)
  let population, first_gen =
    match start with
    | Some (gen0, resumed) ->
        if gen0 < 0 || gen0 > config.generations then
          invalid_arg "Nsga2.run: start generation out of range";
        if Array.length resumed <> config.pop_size then
          invalid_arg "Nsga2.run: start population size does not match pop_size";
        (ref resumed, gen0 + 1)
    | None ->
        let genomes = Array.init config.pop_size (fun _ -> config.init rng) in
        let objectives = evaluate_all genomes in
        let population = ref (environmental_selection genomes objectives config.pop_size) in
        (match on_generation with Some f -> f 0 !population | None -> ());
        (population, 1)
  in
  for gen = first_gen to config.generations do
    let parents = !population in
    let children =
      Array.init config.pop_size (fun _ ->
          let p1 = binary_tournament rng parents in
          let p2 = binary_tournament rng parents in
          config.vary rng p1.genome p2.genome)
    in
    let child_objectives = evaluate_all children in
    let merged_genomes = Array.append (Array.map (fun ind -> ind.genome) parents) children in
    let merged_objectives =
      Array.append (Array.map (fun (ind : _ individual) -> ind.objectives) parents) child_objectives
    in
    population := environmental_selection merged_genomes merged_objectives config.pop_size;
    match on_generation with Some f -> f gen !population | None -> ()
  done;
  !population

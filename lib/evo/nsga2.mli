(** NSGA-II, the fast elitist non-dominated sorting genetic algorithm of Deb
    et al. (PPSN VI, 2000), generic over the genome type.

    All objectives are minimized.  Non-finite objective values are treated as
    [infinity] (worst), so invalid genomes are dominated away rather than
    crashing the sort. *)

type 'a individual = {
  genome : 'a;
  objectives : float array;  (** sanitized: nan replaced by [infinity] *)
  rank : int;  (** 0 = Pareto-optimal within the population *)
  crowding : float;  (** crowding distance within its front *)
}

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse in every objective and strictly better
    in at least one. *)

val fast_nondominated_sort : float array array -> int list array
(** Partition indices into fronts; element 0 is the non-dominated front. *)

val crowding_distances : float array array -> int list -> (int * float) list
(** Crowding distance of each member of one front (boundary points get
    [infinity]). *)

val pareto_front : 'a individual array -> 'a individual array
(** Members with [rank = 0]. *)

type 'a config = {
  pop_size : int;
  generations : int;
  init : Caffeine_util.Rng.t -> 'a;
  objectives : 'a -> float array;
  vary : Caffeine_util.Rng.t -> 'a -> 'a -> 'a;
      (** Produce one child from two (tournament-selected) parents; expected
          to perform crossover and/or mutation internally. *)
}

type 'a cache = {
  lookup : 'a -> float array option;
  store : 'a -> float array -> unit;
}
(** Optional memo in front of [objectives].  The contract is exactness:
    [lookup g] must return either [None] or the same values (after NaN
    sanitization) that [objectives g] would compute, so caching never
    changes the evolved population.  {!run} consults and fills the cache
    sequentially on the calling domain — lookups in genome order before
    the parallel evaluation of the misses, stores in genome order after —
    so implementations are never called from pool workers and see a
    deterministic access sequence. *)

val run :
  ?on_generation:(int -> 'a individual array -> unit) ->
  ?executor:Caffeine_par.Executor.t ->
  ?start:int * 'a individual array ->
  ?cache:'a cache ->
  ?prepare:('a array -> unit) ->
  rng:Caffeine_util.Rng.t ->
  'a config ->
  'a individual array
(** Full NSGA-II loop: initialize, then per generation create [pop_size]
    children by binary tournament on (rank, crowding), merge parents and
    children, and keep the best [pop_size] by non-dominated rank with
    crowding-distance truncation of the split front.  Returns the final
    population sorted by (rank, crowding desc).  [on_generation] observes
    the population after each environmental selection.

    The initial and per-generation objective evaluations fan out through
    [executor] (default {!Caffeine_par.Executor.sequential}); with a
    domain-pool executor, [objectives] must be safe to call from any
    domain.  Initialization, selection and variation always stay on the
    caller's [rng] in sequential order, so for a fixed seed the returned
    population is bit-identical under every backend.

    [prepare], when given, turns per-genome evaluation into batched
    evaluation: each generation's to-evaluate set (the cache misses, when
    a cache is present) is split into contiguous chunks — roughly two per
    executor job, so a single chunk on sequential and process executors —
    and each worker calls [prepare] on its chunk's genomes before
    evaluating them one by one.  This is the seam the search uses to warm
    the dataset's column cache through one fused tape per chunk.
    [prepare] must not affect results: it runs on pool domains (so it must
    be domain-safe) and chunk boundaries change with the jobs setting, so
    anything it precomputes must be bit-identical to what evaluation
    would compute on its own.

    [start = (gen0, population)] resumes an interrupted run: [population]
    must be the population returned by an earlier [on_generation gen0]
    callback (rank and crowding included) and [rng] must carry the state
    the generator had at that instant; generations [gen0 + 1] through
    [generations] then replay the exact remaining stream of the
    uninterrupted run.  [on_generation] fires only for the resumed
    generations.  Raises [Invalid_argument] when [gen0] is out of range or
    the population size does not match [pop_size]. *)

module Mos = Caffeine_spice.Mos
module Circuit = Caffeine_spice.Circuit
module Dc = Caffeine_spice.Dc

type device_report = {
  name : string;
  designed_current : float;
  solved_current : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

type report = {
  output_voltage : float;
  tail_voltage : float;
  iterations : int;
  devices : device_report list;
}

let nmos = Mos.default_nmos
let pmos = Mos.default_pmos
let length = 3e-6
let vdd = Ota.supply_voltage
let common_mode = 2.0
let cascode_headroom = 0.5

(* Node map:
   0 gnd, 1 vdd, 2 bias gate, 3 tail, 4 input common mode,
   5 drain M1a / diode M2a, 6 drain M1b / diode M2b,
   7 diode M3 / gate M4, 8 cascode internal, 9 output, 10 cascode gate,
   11 driven input gate (M1a; M1b stays at the common mode). *)
let n_gnd = 0
and n_vdd = 1
and n_bias = 2
and n_tail = 3
and n_cm = 4
and n_d1a = 5
and n_d1b = 6
and n_mirror = 7
and n_casc = 8
and n_out = 9
and n_cascgate = 10
and n_inp = 11

let overdrive params v_drive =
  let vov = v_drive -. Float.abs params.Mos.vth0 in
  if vov <= 0.02 then Error "device in or near cutoff (overdrive <= 20 mV)" else Ok vov

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let netlist x =
  if Array.length x <> Ota.dims then invalid_arg "Testbench.netlist: design point width";
  let value name =
    let rec find i =
      if i >= Array.length Ota.var_names then invalid_arg ("Testbench: no variable " ^ name)
      else if Ota.var_names.(i) = name then x.(i)
      else find (i + 1)
    in
    find 0
  in
  let id1 = value "id1" and id2 = value "id2" and ib = value "ib" in
  if id1 <= 0. || id2 <= 0. || ib <= 0. then Error "non-positive branch current"
  else
    let* vov1 = overdrive pmos (value "vsg1") in
    let* vov2 = overdrive nmos (value "vgs2") in
    let* vov3 = overdrive pmos (value "vsg3") in
    let* vov4 = overdrive pmos (value "vsg4") in
    let* vov5 = overdrive pmos (value "vsg5") in
    let* vov6 = overdrive pmos (value "vgs6") in
    let size params ~id ~vov = Mos.size_for_current params ~id ~vov ~l:length in
    let w1 = size pmos ~id:id1 ~vov:vov1 in
    let w2 = size nmos ~id:id1 ~vov:vov2 in
    let w2k = size nmos ~id:id2 ~vov:vov2 in
    let w3 = size pmos ~id:id2 ~vov:vov3 in
    let w4 = size pmos ~id:id2 ~vov:vov4 in
    let w5 = size pmos ~id:id2 ~vov:vov5 in
    let w6 = size pmos ~id:(2. *. id1) ~vov:vov6 in
    let w7 = size pmos ~id:ib ~vov:vov6 in
    let vcasc = vdd -. cascode_headroom -. (vov5 +. Float.abs pmos.Mos.vth0) in
    let mosfet name drain gate source bulk params w =
      Circuit.Mosfet { name; drain; gate; source; bulk; params; w; l = length }
    in
    Ok
      (Circuit.make
         [
           Circuit.Vsource { name = "vdd"; pos = n_vdd; neg = n_gnd; dc = vdd; ac = 0. };
           Circuit.Vsource { name = "vcm"; pos = n_cm; neg = n_gnd; dc = common_mode; ac = 0. };
           Circuit.Vsource { name = "vinp"; pos = n_inp; neg = n_gnd; dc = common_mode; ac = 1. };
           Circuit.Vsource
             { name = "vcasc"; pos = n_cascgate; neg = n_gnd; dc = vcasc; ac = 0. };
           (* Bias branch: ib through the diode-connected PMOS M7. *)
           Circuit.Isource { name = "ibias"; from_node = n_bias; to_node = n_gnd; amps = ib };
           mosfet "m7" n_bias n_bias n_vdd n_vdd pmos w7;
           (* Tail source M6 mirrors the bias branch scaled to 2 id1. *)
           mosfet "m6" n_tail n_bias n_vdd n_vdd pmos w6;
           (* PMOS input pair. *)
           mosfet "m1a" n_d1a n_inp n_tail n_vdd pmos w1;
           mosfet "m1b" n_d1b n_cm n_tail n_vdd pmos w1;
           (* NMOS diode loads and their scaled mirror outputs. *)
           mosfet "m2a" n_d1a n_d1a n_gnd n_gnd nmos w2;
           mosfet "m2b" n_d1b n_d1b n_gnd n_gnd nmos w2;
           mosfet "m2c" n_mirror n_d1a n_gnd n_gnd nmos w2k;
           mosfet "m2d" n_out n_d1b n_gnd n_gnd nmos w2k;
           (* PMOS mirror and cascode to the output. *)
           mosfet "m3" n_mirror n_mirror n_vdd n_vdd pmos w3;
           mosfet "m4" n_casc n_mirror n_vdd n_vdd pmos w4;
           mosfet "m5" n_out n_cascgate n_casc n_vdd pmos w5;
           (* Weak DC anchor for the high-impedance output node. *)
           Circuit.Resistor { name = "ranchor"; n1 = n_out; n2 = n_cm; ohms = 1e8 };
           Circuit.Capacitor { name = "cl"; n1 = n_out; n2 = n_gnd; farads = Ota.load_capacitance };
         ])

let initial_guess x =
  let value name =
    let rec find i =
      if Ota.var_names.(i) = name then x.(i) else find (i + 1)
    in
    find 0
  in
  let guesses = Array.make 12 0. in
  guesses.(n_vdd) <- vdd;
  guesses.(n_bias) <- vdd -. value "vgs6";
  guesses.(n_tail) <- common_mode +. value "vsg1";
  guesses.(n_cm) <- common_mode;
  guesses.(n_d1a) <- value "vgs2";
  guesses.(n_d1b) <- value "vgs2";
  guesses.(n_mirror) <- vdd -. value "vsg3";
  guesses.(n_casc) <- vdd -. cascode_headroom;
  guesses.(n_out) <- common_mode;
  guesses.(n_cascgate) <- vdd -. cascode_headroom -. value "vsg5";
  guesses.(n_inp) <- common_mode;
  guesses

let validate x =
  let* circuit = netlist x in
  match Dc.solve ~initial:(initial_guess x) circuit with
  | Error msg -> Error ("DC solve failed: " ^ msg)
  | Ok solution ->
      let value name =
        let rec find i =
          if Ota.var_names.(i) = name then x.(i) else find (i + 1)
        in
        find 0
      in
      let id1 = value "id1" and id2 = value "id2" and ib = value "ib" in
      let designed =
        [
          ("m1a", id1); ("m1b", id1); ("m2a", id1); ("m2b", id1);
          ("m2c", id2); ("m2d", id2); ("m3", id2); ("m4", id2); ("m5", id2);
          ("m6", 2. *. id1); ("m7", ib);
        ]
      in
      let devices =
        List.map
          (fun (name, designed_current) ->
            let bias = Dc.mos_bias solution name in
            {
              name;
              designed_current;
              solved_current = Float.abs bias.Dc.op.Mos.ids;
              region = bias.Dc.op.Mos.region;
            })
          designed
      in
      Ok
        {
          output_voltage = Dc.node_voltage solution n_out;
          tail_voltage = Dc.node_voltage solution n_tail;
          iterations = solution.Dc.iterations;
          devices;
        }

let transient_slew ?(step_voltage = 0.4) ?(duration = 400e-9) x =
  let* circuit = netlist x in
  match Dc.solve ~initial:(initial_guess x) circuit with
  | Error msg -> Error ("DC solve failed: " ^ msg)
  | Ok operating_point ->
      let run direction =
        (* The input pair is PMOS with the inverting path through the
           mirrors: a negative gate step raises the output. *)
        let stimulus name t =
          if name = "vinp" && t > 0. then Some (common_mode +. (direction *. step_voltage))
          else None
        in
        match
          Caffeine_spice.Tran.simulate ~stimulus ~initial:operating_point ~circuit
            ~step:(duration /. 400.) ~duration ()
        with
        | Error msg -> Error ("transient failed: " ^ msg)
        | Ok waveform -> Ok (Caffeine_spice.Tran.slew_rates waveform ~node:n_out)
      in
      let* rising_pair = run (-1.) in
      let* falling_pair = run 1. in
      let rising, _ = rising_pair in
      let _, falling = falling_pair in
      Ok (rising, falling)

let max_current_mismatch report =
  List.fold_left
    (fun acc d ->
      let relative =
        Float.abs (d.solved_current -. d.designed_current) /. Float.max 1e-12 d.designed_current
      in
      Float.max acc relative)
    0. report.devices

module Mos = Caffeine_spice.Mos
module Circuit = Caffeine_spice.Circuit
module Dc = Caffeine_spice.Dc
module Ac = Caffeine_spice.Ac
module Doe = Caffeine_doe.Doe
module Rng = Caffeine_util.Rng

type performance =
  | Alf
  | Fu
  | Pm
  | Power

let all_performances = [ Alf; Fu; Pm; Power ]

let performance_name = function
  | Alf -> "ALF"
  | Fu -> "fu"
  | Pm -> "PM"
  | Power -> "power"

let var_names = [| "id1"; "id2"; "vgs1"; "vsg3"; "vgs5"; "vgs7"; "cc"; "cl" |]
let dims = Array.length var_names

let i_id1 = 0
and i_id2 = 1
and i_vgs1 = 2
and i_vsg3 = 3
and i_vgs5 = 4
and i_vgs7 = 5
and i_cc = 6
and i_cl = 7

let nominal = [| 20e-6; 200e-6; 1.00; 1.10; 1.10; 1.00; 2e-12; 5e-12 |]

let supply_voltage = 5.0
let device_length = 2e-6

let nmos = Mos.default_nmos
let pmos = Mos.default_pmos

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let overdrive params v_drive =
  let vov = v_drive -. Float.abs params.Mos.vth0 in
  if vov <= 0.02 then Error "device in or near cutoff (overdrive <= 20 mV)" else Ok vov

(* First stage: NMOS pair (gm1) with PMOS mirror load into node 2; second
   stage: inverting common-source PMOS (gm5) with NMOS current-source load
   into node 3; Miller capacitor cc across the second stage. *)
let small_signal_circuit x =
  if Array.length x <> dims then invalid_arg "Miller: design point width";
  let id1 = x.(i_id1) and id2 = x.(i_id2) in
  if id1 <= 0. || id2 <= 0. then Error "non-positive stage current"
  else if x.(i_cc) <= 0. || x.(i_cl) <= 0. then Error "non-positive capacitance"
  else
    let* vov1 = overdrive nmos x.(i_vgs1) in
    let* vov3 = overdrive pmos x.(i_vsg3) in
    let* vov5 = overdrive pmos x.(i_vgs5) in
    let* vov7 = overdrive nmos x.(i_vgs7) in
    let gm1 = Mos.saturation_gm ~id:id1 ~vov:vov1 in
    let gm5 = Mos.saturation_gm ~id:id2 ~vov:vov5 in
    let gds_stage1 = (nmos.Mos.lambda +. pmos.Mos.lambda) *. id1 in
    let gds_stage2 = (nmos.Mos.lambda +. pmos.Mos.lambda) *. id2 in
    let w3 = Mos.size_for_current pmos ~id:id1 ~vov:vov3 ~l:device_length in
    let w5 = Mos.size_for_current pmos ~id:id2 ~vov:vov5 ~l:device_length in
    let w7 = Mos.size_for_current nmos ~id:id2 ~vov:vov7 ~l:device_length in
    (* Parasitics at the stage-1 output: second-stage gate plus mirror
       drain; at the output: both drain junctions. *)
    let c_stage1 =
      Mos.cgs pmos ~w:w5 ~l:device_length +. Mos.cdb pmos ~w:w3 +. Mos.cgd pmos ~w:w3
    in
    let c_output = Mos.cdb pmos ~w:w5 +. Mos.cdb nmos ~w:w7 in
    Ok
      (Circuit.make
         [
           Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 1. };
           (* Stage 1 (inverting). *)
           Circuit.Vccs { name = "gm1"; out_pos = 2; out_neg = 0; in_pos = 1; in_neg = 0; gm = gm1 };
           Circuit.Resistor { name = "ro1"; n1 = 2; n2 = 0; ohms = 1. /. gds_stage1 };
           Circuit.Capacitor { name = "c1"; n1 = 2; n2 = 0; farads = c_stage1 };
           (* Stage 2 (inverting). *)
           Circuit.Vccs { name = "gm2"; out_pos = 3; out_neg = 0; in_pos = 2; in_neg = 0; gm = gm5 };
           Circuit.Resistor { name = "ro2"; n1 = 3; n2 = 0; ohms = 1. /. gds_stage2 };
           Circuit.Capacitor { name = "cout"; n1 = 3; n2 = 0; farads = c_output };
           (* Miller compensation and load. *)
           Circuit.Capacitor { name = "cc"; n1 = 2; n2 = 3; farads = x.(i_cc) };
           Circuit.Capacitor { name = "cl"; n1 = 3; n2 = 0; farads = x.(i_cl) };
         ])

let evaluate x =
  let* circuit = small_signal_circuit x in
  let dc =
    match Dc.solve circuit with
    | Ok solution -> solution
    | Error msg -> failwith ("Miller: linear DC cannot fail: " ^ msg)
  in
  let freqs = Ac.log_frequencies ~start_hz:10. ~stop_hz:1e10 ~points_per_decade:12 in
  let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:3 ~freqs in
  let alf_db = Ac.low_frequency_gain_db sweep in
  match (Ac.unity_gain_frequency sweep, Ac.phase_margin_deg sweep) with
  | Some fu, Some pm ->
      let power = supply_voltage *. ((2. *. x.(i_id1)) +. x.(i_id2)) in
      Ok [| alf_db; fu; pm; power |]
  | None, _ | _, None -> Error "no unity-gain crossing"

let dataset rng ~samples ~spread =
  let unit_points = Doe.latin_hypercube rng ~samples ~dims in
  let lo = Array.map (fun v -> v *. (1. -. spread)) nominal in
  let hi = Array.map (fun v -> v *. (1. +. spread)) nominal in
  let points = Doe.map_unit_to_box ~lo ~hi unit_points in
  let keep = ref [] in
  Array.iter
    (fun x ->
      match evaluate x with
      | Ok outputs -> keep := (x, outputs) :: !keep
      | Error _ -> ())
    points;
  let rows = Array.of_list (List.rev !keep) in
  (Array.map fst rows, Array.map snd rows)

module Mos = Caffeine_spice.Mos
module Circuit = Caffeine_spice.Circuit
module Dc = Caffeine_spice.Dc
module Ac = Caffeine_spice.Ac
module Doe = Caffeine_doe.Doe

type performance =
  | Alf
  | Fu
  | Pm
  | Voffset
  | Srp
  | Srn

let all_performances = [ Alf; Fu; Pm; Voffset; Srp; Srn ]

let performance_name = function
  | Alf -> "ALF"
  | Fu -> "fu"
  | Pm -> "PM"
  | Voffset -> "voffset"
  | Srp -> "SRp"
  | Srn -> "SRn"

let performance_of_name name =
  List.find_opt (fun p -> performance_name p = name) all_performances

(* Design-variable indices: the operating-point formulation uses the branch
   currents and the drive / drain voltages of each device as free variables.
   All values are positive magnitudes (PMOS voltages are source-referred). *)
let var_names =
  [|
    "id1"; "id2"; "ib"; "vsg1"; "vgs2"; "vsg3"; "vsg4"; "vsg5"; "vds1"; "vds2"; "vsd5"; "vgs6";
    "vds6";
  |]

let dims = Array.length var_names

let i_id1 = 0
and i_id2 = 1
and _i_ib = 2 (* bias-branch current: a deliberate nuisance variable that no
                 performance depends on; the symbolic models should exclude
                 it, as the paper's do *)
and i_vsg1 = 3
and i_vgs2 = 4
and i_vsg3 = 5
and i_vsg4 = 6
and i_vsg5 = 7
and i_vds1 = 8
and i_vds2 = 9
and i_vsd5 = 10
and i_vgs6 = 11
and i_vds6 = 12

let nominal =
  [| 10e-6; 100e-6; 20e-6; 1.10; 1.10; 1.15; 1.15; 1.20; 1.20; 1.50; 1.40; 1.05; 0.90 |]

let supply_voltage = 5.0
let load_capacitance = 10e-12
let device_length = 3e-6

let nmos = Mos.default_nmos
let pmos = Mos.default_pmos

(* Square-law small-signal identities at a forced operating point: the
   current and the drive voltage determine gm and the device size (hence its
   capacitances); the drain voltage sets the output conductance through
   channel-length modulation. *)
type device = {
  gm : float;
  gds : float;
  cgs : float;
  cgd : float;
  cdb : float;
}

let device_of params ~id ~v_drive ~vds =
  let vth = Float.abs params.Mos.vth0 in
  let vov = v_drive -. vth in
  if id <= 0. then Error "non-positive drain current"
  else if vov <= 0.02 then Error "device in or near cutoff (overdrive <= 20 mV)"
  else begin
    let w = Mos.size_for_current params ~id ~vov ~l:device_length in
    Ok
      {
        gm = Mos.saturation_gm ~id ~vov;
        gds = params.Mos.lambda *. id /. (1. +. (params.Mos.lambda *. vds));
        cgs = Mos.cgs params ~w ~l:device_length;
        cgd = Mos.cgd params ~w;
        cdb = Mos.cdb params ~w;
      }
  end

type bias = {
  m1 : device;  (** PMOS input pair device (each side carries id1) *)
  m2 : device;  (** NMOS diode load (id1) *)
  m2k : device;  (** NMOS mirror output (id2 = K·id1) *)
  m3 : device;  (** PMOS mirror diode (id2) *)
  m4 : device;  (** PMOS mirror output (id2) *)
  m5 : device;  (** PMOS cascode (id2) *)
  m6 : device;  (** NMOS tail source (2·id1) *)
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let bias_of x =
  if Array.length x <> dims then invalid_arg "Ota: design point has wrong width";
  let id1 = x.(i_id1) and id2 = x.(i_id2) in
  let* m1 = device_of pmos ~id:id1 ~v_drive:x.(i_vsg1) ~vds:x.(i_vds1) in
  let* m2 = device_of nmos ~id:id1 ~v_drive:x.(i_vgs2) ~vds:x.(i_vgs2) in
  let* m2k = device_of nmos ~id:id2 ~v_drive:x.(i_vgs2) ~vds:x.(i_vds2) in
  let* m3 = device_of pmos ~id:id2 ~v_drive:x.(i_vsg3) ~vds:x.(i_vsg3) in
  let* m4 = device_of pmos ~id:id2 ~v_drive:x.(i_vsg4) ~vds:x.(i_vsg4) in
  let* m5 = device_of pmos ~id:id2 ~v_drive:x.(i_vsg5) ~vds:x.(i_vsd5) in
  let* m6 = device_of nmos ~id:(2. *. id1) ~v_drive:x.(i_vgs6) ~vds:x.(i_vds6) in
  Ok { m1; m2; m2k; m3; m4; m5; m6 }

(* Small-signal node numbering:
   1 input gate (M1a)         2 tail (sources of M1a/M1b)
   3 drain M1a = diode M2a    4 drain M1b = diode M2b
   5 mirror node (M3 diode, gate of M4)
   6 cascode internal node (drain M4, source M5)
   7 output node (drain M5, drain M2d, CL). *)
let small_signal_circuit x =
  let* b = bias_of x in
  let resistor name n1 n2 conductance =
    Circuit.Resistor { name; n1; n2; ohms = 1. /. conductance }
  in
  let cap name n1 n2 farads = Circuit.Capacitor { name; n1; n2; farads } in
  let vccs name out_pos out_neg in_pos in_neg gm =
    Circuit.Vccs { name; out_pos; out_neg; in_pos; in_neg; gm }
  in
  Ok
    (Circuit.make
       [
         Circuit.Vsource { name = "vin"; pos = 1; neg = 0; dc = 0.; ac = 1. };
         (* M1a: PMOS input device, gate = 1, source = tail, drain = 3. *)
         vccs "gm1a" 3 2 1 2 b.m1.gm;
         resistor "gds1a" 3 2 b.m1.gds;
         cap "cgs1a" 1 2 b.m1.cgs;
         cap "cgd1a" 1 3 b.m1.cgd;
         cap "cdb1a" 3 0 b.m1.cdb;
         (* M1b: gate at AC ground, drain = 4. *)
         vccs "gm1b" 4 2 0 2 b.m1.gm;
         resistor "gds1b" 4 2 b.m1.gds;
         cap "cgs1b" 2 0 b.m1.cgs;
         cap "cgd1b" 4 0 b.m1.cgd;
         cap "cdb1b" 4 0 b.m1.cdb;
         (* M2a / M2b: NMOS diode loads. *)
         resistor "gm2a" 3 0 (b.m2.gm +. b.m2.gds);
         cap "cgs2a" 3 0 b.m2.cgs;
         cap "cdb2a" 3 0 b.m2.cdb;
         resistor "gm2b" 4 0 (b.m2.gm +. b.m2.gds);
         cap "cgs2b" 4 0 b.m2.cgs;
         cap "cdb2b" 4 0 b.m2.cdb;
         (* M2c: NMOS mirror output into the PMOS diode M3 (node 5). *)
         vccs "gm2c" 5 0 3 0 b.m2k.gm;
         resistor "gds2c" 5 0 b.m2k.gds;
         cap "cgs2c" 3 0 b.m2k.cgs;
         cap "cgd2c" 3 5 b.m2k.cgd;
         cap "cdb2c" 5 0 b.m2k.cdb;
         (* M2d: NMOS mirror output pulling the output node. *)
         vccs "gm2d" 7 0 4 0 b.m2k.gm;
         resistor "gds2d" 7 0 b.m2k.gds;
         cap "cgs2d" 4 0 b.m2k.cgs;
         cap "cgd2d" 4 7 b.m2k.cgd;
         cap "cdb2d" 7 0 b.m2k.cdb;
         (* M3: PMOS diode at node 5 (source at AC-ground VDD). *)
         resistor "gm3" 5 0 (b.m3.gm +. b.m3.gds);
         cap "cgs3" 5 0 b.m3.cgs;
         cap "cdb3" 5 0 b.m3.cdb;
         (* M4: PMOS mirror output, gate = 5, drain = 6. *)
         vccs "gm4" 6 0 5 0 b.m4.gm;
         resistor "gds4" 6 0 b.m4.gds;
         cap "cgs4" 5 0 b.m4.cgs;
         cap "cgd4" 5 6 b.m4.cgd;
         cap "cdb4" 6 0 b.m4.cdb;
         (* M5: PMOS cascode, gate AC ground, source = 6, drain = 7. *)
         vccs "gm5" 7 6 0 6 b.m5.gm;
         resistor "gds5" 7 6 b.m5.gds;
         cap "cgs5" 6 0 b.m5.cgs;
         cap "cgd5" 7 0 b.m5.cgd;
         cap "cdb5" 7 0 b.m5.cdb;
         (* M6: tail current source. *)
         resistor "gds6" 2 0 b.m6.gds;
         cap "cdb6" 2 0 b.m6.cdb;
         cap "cgd6" 2 0 b.m6.cgd;
         (* Load. *)
         cap "cl" 7 0 load_capacitance;
       ])

let ac_measurements x =
  let* circuit = small_signal_circuit x in
  let dc =
    match Dc.solve circuit with
    | Ok solution -> solution
    | Error _ ->
        (* The small-signal netlist is linear with zero DC sources; a solve
           failure would indicate a disconnected node. *)
        { Dc.voltages = Array.make (Circuit.num_nodes circuit + 1) 0.;
          branch_currents = List.map (fun n -> (n, 0.)) (Circuit.vsource_names circuit);
          iterations = 0;
          mos_biases = [];
        }
  in
  let freqs = Ac.log_frequencies ~start_hz:100. ~stop_hz:1e10 ~points_per_decade:12 in
  let sweep = Ac.transfer ~circuit ~dc ~input:"vin" ~output:7 ~freqs in
  let alf_db = Ac.low_frequency_gain_db sweep in
  match (Ac.unity_gain_frequency sweep, Ac.phase_margin_deg sweep) with
  | Some fu, Some pm -> Ok (alf_db, fu, pm)
  | None, _ | _, None -> Error "no unity-gain crossing (simulation did not converge)"

(* Systematic input-referred offset: threshold mismatch of the input pair
   plus load mismatch referred through gm2/gm1, plus a mirror-ratio error
   term.  Deterministic — the same "systematic offset" every run, weakly
   dependent on the operating point (the paper's voffset is ~ -2 mV and is
   fitted well by a constant). *)
let delta_vth_p = -1.6e-3
let delta_vth_n = -0.5e-3
let mirror_ratio_error = 0.004

let offset_voltage x b =
  let vov1 = x.(i_vsg1) -. Float.abs pmos.Mos.vth0 in
  delta_vth_p
  +. (delta_vth_n *. b.m2.gm /. b.m1.gm)
  +. (mirror_ratio_error *. vov1 /. 2.)

(* Slew rates: the output can source/sink 2·id2 when the pair is fully
   steered (tail current 2·id1 mirrored by K = id2/id1); internal mirror
   nodes slew with the available side current id1 against their own
   capacitance, which adds a delay term.  The two directions differ in which
   internal node limits. *)
let slew_rates x b =
  let id1 = x.(i_id1) and id2 = x.(i_id2) in
  let output_limit = load_capacitance /. (2. *. id2) in
  let mirror_cap = b.m3.cgs +. b.m4.cgs +. b.m2k.cdb +. b.m2k.cgd in
  let diode_cap = b.m2.cgs +. b.m2k.cgs +. b.m1.cdb in
  let vswing = 0.5 (* representative internal swing during slewing *) in
  let srp = 1. /. (output_limit +. (mirror_cap *. vswing /. (2. *. id1))) in
  let srn = 1. /. (output_limit +. (diode_cap *. vswing /. (2. *. id1))) in
  (srp, -.srn)

let evaluate x =
  let* b = bias_of x in
  let* alf_db, fu, pm = ac_measurements x in
  if pm <= 0. then Error "negative phase margin (simulation did not converge)"
  else begin
    let voffset = offset_voltage x b in
    let srp, srn = slew_rates x b in
    Ok [| alf_db; fu; pm; voffset; srp; srn |]
  end

let performance_index p =
  let rec find i = function
    | [] -> assert false
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 all_performances

let evaluate_performance p x =
  let* values = evaluate x in
  Ok values.(performance_index p)

type dataset = {
  inputs : float array array;
  outputs : float array array;
}

let doe_dataset ~dx =
  let design = Doe.orthogonal_array ~runs_exponent:5 ~factors:dims in
  let points = Doe.scale_levels ~center:nominal ~dx design in
  let keep = ref [] in
  Array.iter
    (fun x ->
      match evaluate x with
      | Ok outputs -> keep := (x, outputs) :: !keep
      | Error _ -> ())
    points;
  let rows = Array.of_list (List.rev !keep) in
  { inputs = Array.map fst rows; outputs = Array.map snd rows }

let targets dataset p =
  let index = performance_index p in
  Array.map (fun row -> row.(index)) dataset.outputs

let modeling_target p value = match p with Fu -> log10 value | Alf | Pm | Voffset | Srp | Srn -> value

let modeling_target_inverse p value =
  match p with Fu -> 10. ** value | Alf | Pm | Voffset | Srp | Srn -> value

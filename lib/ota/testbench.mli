(** Transistor-level DC testbench for the OTA.

    The operating-point formulation ({!Ota}) *asserts* a bias point: drain
    currents and drive voltages are design variables and the device sizes
    are derived.  This module closes the loop: it builds the full
    transistor-level netlist of the symmetrical OTA with exactly those
    derived sizes, solves it with the nonlinear Newton engine of
    {!Caffeine_spice.Dc}, and reports how closely the solved currents match
    the asserted ones — the consistency check a designer would run before
    trusting the small-signal model. *)

type device_report = {
  name : string;
  designed_current : float;  (** the current asserted by the design point *)
  solved_current : float;  (** drain current from the Newton solution *)
  region : [ `Cutoff | `Triode | `Saturation ];
}

type report = {
  output_voltage : float;
  tail_voltage : float;
  iterations : int;
  devices : device_report list;
}

val netlist : float array -> (Caffeine_spice.Circuit.t, string) result
(** Transistor-level netlist (supply, bias mirror, input pair, load mirrors,
    cascode, output) for a design point, with device sizes derived from the
    square law.  [Error] when the point cannot be biased. *)

val validate : float array -> (report, string) result
(** Build and DC-solve the netlist, then compare solved vs designed drain
    currents device by device. *)

val max_current_mismatch : report -> float
(** Largest relative |solved - designed| / designed across devices. *)

val transient_slew :
  ?step_voltage:float ->
  ?duration:float ->
  float array ->
  (float * float, string) result
(** Measure the output slew rates by *large-signal transient simulation* of
    the transistor-level netlist: a ±[step_voltage] (default 0.4 V) step on
    the input fully steers the pair, and the output ramp against the 10 pF
    load is current-limited.  Returns [(rising, falling)] in V/s (falling
    negative).  This is the ground truth the analytic slew expressions in
    {!Ota} approximate. *)

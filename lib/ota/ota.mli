(** The paper's test circuit: a high-speed CMOS OTA in a 0.7 µm, 5 V
    technology with a 10 pF load, modeled by the operating-point-driven
    formulation of Leyn et al. — drain currents and transistor drive
    voltages are the design variables, and device sizes are derived from
    the square law.

    The topology is a symmetrical OTA: PMOS input pair (M1a/M1b, current
    [id1] each) into NMOS diode loads (M2a/M2b), NMOS mirrors scaled by
    [K = id2/id1] (M2c/M2d), a PMOS mirror (M3 diode, M4 output) and a PMOS
    cascode (M5) stacking onto the output node, and an NMOS tail source
    (M6).  Substitution note (see DESIGN.md): where the paper ran HSPICE on
    the authors' netlist, we linearize this topology at the operating point
    implied by the design variables and run the small-signal AC engine of
    {!Caffeine_spice.Ac}; slew rates and offset come from large-signal
    current limits and a systematic mismatch model.

    Six performances are extracted, matching the paper: low-frequency gain
    ALF (dB), unity-gain frequency fu (Hz), phase margin PM (degrees),
    input-referred offset voltage voffset (V), and positive/negative slew
    rates SRp/SRn (V/s). *)

type performance =
  | Alf
  | Fu
  | Pm
  | Voffset
  | Srp
  | Srn

val all_performances : performance list

val performance_name : performance -> string
(** ["ALF"], ["fu"], ["PM"], ["voffset"], ["SRp"], ["SRn"]. *)

val performance_of_name : string -> performance option

val dims : int
(** Number of design variables (13). *)

val var_names : string array
(** Operating-point design-variable names, e.g. ["id1"], ["vsg1"], ["vds2"]. *)

val nominal : float array
(** Nominal design point (currents in A, voltages in V, all positive
    magnitudes). *)

val supply_voltage : float
(** 5.0 V. *)

val load_capacitance : float
(** 10 pF. *)

val small_signal_circuit : float array -> (Caffeine_spice.Circuit.t, string) result
(** Linearized netlist at the operating point implied by a design point;
    [Error] when some device cannot be biased (non-positive overdrive or
    current). *)

val evaluate : float array -> (float array, string) result
(** All six performances of a design point, in {!all_performances} order.
    [Error] mirrors a non-converging SPICE run (infeasible bias, no unity
    crossing, ...). *)

val evaluate_performance : performance -> float array -> (float, string) result

type dataset = {
  inputs : float array array;  (** design points, row-major *)
  outputs : float array array;  (** per row: six performances *)
}

val doe_dataset : dx:float -> dataset
(** The paper's sampling plan: 243-run (3⁵) orthogonal-hypercube DOE around
    {!nominal} with relative perturbation [dx] per variable (0.10 for
    training, 0.03 for testing).  Rows whose evaluation fails are dropped,
    mirroring the paper's non-converged samples. *)

val targets : dataset -> performance -> float array
(** Column extraction. *)

val modeling_target : performance -> float -> float
(** The paper's scaling: identity for all performances except [Fu], which is
    log₁₀-scaled "so that mean-squared error calculations and linear
    learning are not wrongly biased towards high-magnitude samples". *)

val modeling_target_inverse : performance -> float -> float
(** Inverse of {!modeling_target} (10^x for [Fu]). *)

(** A second modeling target: a Miller-compensated two-stage op-amp.

    The paper argues CAFFEINE applies to "any nonlinear circuits and circuit
    characteristics"; this testbench backs that claim with a different
    topology — NMOS differential pair with PMOS mirror load (first stage),
    common-source PMOS second stage, and a Miller compensation capacitor
    whose pole-splitting and right-half-plane zero give the AC response a
    qualitatively different character from the symmetrical OTA.

    Design variables (operating-point formulation, 8 variables): the two
    stage currents, four drive voltages, the compensation capacitor, and the
    load capacitor.  Performances: ALF (dB), fu (Hz), PM (degrees), and
    static power (W). *)

type performance =
  | Alf
  | Fu
  | Pm
  | Power

val all_performances : performance list

val performance_name : performance -> string

val dims : int
(** 8 design variables. *)

val var_names : string array
(** [id1; id2; vgs1; vsg3; vgs5; vgs7; cc; cl] — currents in A, drive
    voltages in V, capacitors in F. *)

val nominal : float array

val evaluate : float array -> (float array, string) result
(** The four performances at a design point, in {!all_performances} order. *)

val dataset :
  Caffeine_util.Rng.t -> samples:int -> spread:float -> float array array * float array array
(** Latin-hypercube sample of the box [nominal · (1 ± spread)]; rows that
    fail to evaluate are dropped.  Returns (inputs, outputs). *)

(* A reusable pool of worker domains.

   Coordination is built for back-to-back batch submission (one batch per
   NSGA-II generation): the submitter publishes a batch (a work-stealing
   thunk every domain runs) with a single atomic epoch bump, and workers
   spin briefly on the epoch before falling back to a mutex + condition
   sleep.  In the steady state — batches arriving faster than the spin
   budget runs out — a generation costs two atomic operations per worker
   and no syscalls; the mutex path only engages when the pool goes idle.
   The epoch is an [Atomic], so its bump publishes the submitter's plain
   writes (batch closure, input array) to any worker that observes it, per
   the OCaml 5 memory model; the completion countdown publishes the
   workers' result writes back to the submitter the same way.

   Work distribution inside a batch is an atomic chunk index over [0, n):
   each domain repeatedly claims the next chunk of indices and writes
   results to its own slots, so the result array is position-for-position
   what the sequential map would produce. *)

module Metrics = Caffeine_obs.Metrics

(* Handles into the default registry, created eagerly at module
   initialization on the main domain ([Lazy] would be unsafe to force from
   several domains at once).  Updates are single atomic operations on the
   hot path. *)
let m_batches = Metrics.counter Metrics.default "pool.batches"
let m_tasks = Metrics.counter Metrics.default "pool.tasks"
let m_sequential_fallbacks = Metrics.counter Metrics.default "pool.sequential_fallbacks"
let m_tasks_abandoned = Metrics.counter Metrics.default "pool.tasks_abandoned"
let m_task_imbalance = Metrics.gauge Metrics.default "pool.task_imbalance"
let m_batch_timer = Metrics.timer Metrics.default "pool.batch"
let m_env_invalid = Metrics.counter Metrics.default "pool.env_jobs_invalid"

type t = {
  size : int;  (* total parallelism, including the submitting domain *)
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  epoch : int Atomic.t;  (* bumped once per batch; publishes [batch] *)
  mutable batch : (unit -> unit) option;  (* never raises *)
  active : int Atomic.t;  (* workers still inside the current batch *)
  sleepers : int Atomic.t;  (* workers blocked on [work_ready] *)
  stopping : bool Atomic.t;
  busy : bool Atomic.t;  (* a batch is in flight: nested calls go sequential *)
}

(* OCaml 5 domains oversubscribe badly: every domain joins every minor GC
   synchronization, so running more domains than cores makes the whole
   program slower, not just the pool (BENCH_parallel.json on a 1-core host
   showed jobs=8 running 7x slower than jobs=1).  Every jobs request is
   therefore clamped to the hardware before any domain is spawned. *)

(* An invalid CAFFEINE_JOBS is a misconfiguration the user should hear
   about once, not a silent fall-through to all cores: the warning goes to
   stderr immediately, bumps [pool.env_jobs_invalid], and is parked for a
   caller that owns a trace sink to surface as a [Trace.Warning]
   ({!take_env_warning}).  Deduplicated per value so a long run does not
   repeat itself on every pool creation. *)
let env_warned : string option Atomic.t = Atomic.make None
let env_warning : string option Atomic.t = Atomic.make None

let take_env_warning () = Atomic.exchange env_warning None

let env_jobs cores =
  match Sys.getenv_opt "CAFFEINE_JOBS" with
  | None -> None
  | Some value -> (
      match int_of_string_opt (String.trim value) with
      | Some jobs when jobs >= 1 -> Some jobs
      | Some _ | None ->
          if Atomic.get env_warned <> Some value then begin
            Atomic.set env_warned (Some value);
            let message =
              Printf.sprintf "CAFFEINE_JOBS=%S is not a positive integer; using all %d core(s)"
                value cores
            in
            Metrics.incr m_env_invalid;
            Atomic.set env_warning (Some message);
            Printf.eprintf "caffeine: warning: %s\n%!" message
          end;
          None)

let effective_jobs requested =
  let cores = Domain.recommended_domain_count () in
  let requested =
    if requested >= 1 then requested
    else
      (* 0 (or negative) = auto: CAFFEINE_JOBS when set, else all cores. *)
      match env_jobs cores with Some jobs -> jobs | None -> cores
  in
  Stdlib.max 1 (Stdlib.min requested cores)

let default_jobs () = effective_jobs 0

(* How many [Domain.cpu_relax] iterations a domain burns waiting for the
   next batch (worker side) or for batch completion (submitter side)
   before falling back to the mutex.  Large enough to cover the
   inter-generation gap of the search loop, small enough that an idle pool
   parks within microseconds. *)
let spin_budget = 4096

let worker_loop pool =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    (* Fast path: spin briefly for the next batch before sleeping. *)
    let spins = ref 0 in
    while
      Atomic.get pool.epoch = !seen
      && (not (Atomic.get pool.stopping))
      && !spins < spin_budget
    do
      Domain.cpu_relax ();
      incr spins
    done;
    if Atomic.get pool.epoch = !seen && not (Atomic.get pool.stopping) then begin
      Mutex.lock pool.mutex;
      Atomic.incr pool.sleepers;
      while Atomic.get pool.epoch = !seen && not (Atomic.get pool.stopping) do
        Condition.wait pool.work_ready pool.mutex
      done;
      Atomic.decr pool.sleepers;
      Mutex.unlock pool.mutex
    end;
    if Atomic.get pool.stopping then running := false
    else begin
      seen := Atomic.get pool.epoch;
      let batch = Option.get pool.batch in
      batch ();
      if Atomic.fetch_and_add pool.active (-1) = 1 then begin
        (* Last worker out: the submitter may already be past its spin
           budget and blocked, so take the mutex before signalling — a
           broadcast outside it could slip between the submitter's check
           and its wait. *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.batch_done;
        Mutex.unlock pool.mutex
      end
    end
  done

let create ?jobs () =
  let size = effective_jobs (match jobs with Some j -> j | None -> 0) in
  let pool =
    {
      size;
      workers = [||];
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      epoch = Atomic.make 0;
      batch = None;
      active = Atomic.make 0;
      sleepers = Atomic.make 0;
      stopping = Atomic.make false;
      busy = Atomic.make false;
    }
  in
  if size > 1 then
    pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.size

let shutdown pool =
  let workers = pool.workers in
  if Array.length workers > 0 then begin
    Atomic.set pool.stopping true;
    Mutex.lock pool.mutex;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    pool.workers <- [||];
    Array.iter Domain.join workers
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let with_optional_pool ?jobs f =
  let jobs = effective_jobs (match jobs with Some j -> j | None -> 0) in
  if jobs <= 1 then f None else with_pool ~jobs (fun pool -> f (Some pool))

(* Run [batch] on every domain of the pool (workers + caller) and wait for
   all of them to finish.  [batch] must not raise. *)
let run_batch pool batch =
  pool.batch <- Some batch;
  Atomic.set pool.active (Array.length pool.workers);
  Atomic.incr pool.epoch;
  (* Only wake domains that actually went to sleep; spinning workers have
     already seen the epoch move.  A worker between its spin and its
     sleep rechecks the epoch under the mutex after bumping [sleepers],
     so reading [sleepers = 0] here never strands it. *)
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex
  end;
  batch ();
  let spins = ref 0 in
  while Atomic.get pool.active > 0 && !spins < spin_budget do
    Domain.cpu_relax ();
    incr spins
  done;
  if Atomic.get pool.active > 0 then begin
    Mutex.lock pool.mutex;
    while Atomic.get pool.active > 0 do
      Condition.wait pool.batch_done pool.mutex
    done;
    Mutex.unlock pool.mutex
  end;
  pool.batch <- None

let parallel_map pool f input =
  let n = Array.length input in
  if n <= 1 then Array.map f input
  else if Array.length pool.workers = 0 then Array.map f input
  else if not (Atomic.compare_and_set pool.busy false true) then begin
    (* Nested call from inside a batch, or concurrent submitter: run on
       the calling domain. *)
    Metrics.incr m_sequential_fallbacks;
    Array.map f input
  end
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let chunk = Stdlib.max 1 (n / (pool.size * 8)) in
    (* One slot per participating domain (workers + submitter), claimed at
       batch entry; per-slot tallies feed the imbalance gauge. *)
    let slots = Atomic.make 0 in
    let processed = Array.init pool.size (fun _ -> Atomic.make 0) in
    let batch () =
      let slot = Atomic.fetch_and_add slots 1 in
      let mine = ref 0 in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get failure <> None then continue := false
        else
          let stop = Stdlib.min n (start + chunk) in
          let i = ref start in
          while !i < stop && Atomic.get failure = None do
            (match f input.(!i) with
            | value ->
                results.(!i) <- Some value;
                incr mine
            | exception exn ->
                let backtrace = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (exn, backtrace))));
            incr i
          done
      done;
      Atomic.set processed.(slot) !mine
    in
    let start_ns = Metrics.now_ns () in
    run_batch pool batch;
    Metrics.record_span m_batch_timer ~start_ns ~stop_ns:(Metrics.now_ns ());
    Atomic.set pool.busy false;
    Metrics.incr m_batches;
    let completed = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 processed in
    Metrics.add m_tasks completed;
    let most = Array.fold_left (fun acc c -> Stdlib.max acc (Atomic.get c)) 0 processed in
    let least = Array.fold_left (fun acc c -> Stdlib.min acc (Atomic.get c)) max_int processed in
    (* 0 = every domain processed the same share; k = the spread between the
       busiest and idlest domain was k ideal shares. *)
    Metrics.set_gauge m_task_imbalance
      (float_of_int (most - least) *. float_of_int pool.size /. float_of_int n);
    match Atomic.get failure with
    | Some (exn, backtrace) ->
        (* Everything not completed by the time the workers drained is
           abandoned: at least the failing element itself. *)
        Metrics.add m_tasks_abandoned (n - completed);
        Printexc.raise_with_backtrace exn backtrace
    | None -> Array.map (function Some value -> value | None -> assert false) results
  end

let parallel_init pool n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  parallel_map pool f (Array.init n Fun.id)

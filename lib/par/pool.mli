(** Fixed-size domain pool for data-parallel array operations.

    OCaml 5 domains are expensive to spawn (hundreds of microseconds plus a
    slice of every GC), so the evolutionary search creates one pool up front
    and reuses it across generations, restarts and SAG passes.  Work is
    distributed by an atomic chunk index over the input array — no
    [domainslib] dependency — and results are written to distinct slots, so
    a [parallel_map] of a pure function returns exactly what [Array.map]
    returns: callers that need reproducibility only have to keep the mapped
    function deterministic per element.

    Batch hand-off is amortized for back-to-back submission (one batch per
    search generation): workers spin briefly on an atomic epoch before
    parking on a condition variable, and the submitter wakes only domains
    that actually parked — in the steady state a generation boundary costs
    a few atomic operations per domain and no syscalls.

    Nesting and concurrent use are safe by construction: a [parallel_map]
    issued while the pool is already running a batch (for example from
    inside a worker, as happens when parallel islands each try to
    parallelize their inner evaluation loop) silently degrades to a
    sequential [Array.map] on the calling domain.

    {2 Metrics}

    The pool reports utilization into
    {!Caffeine_obs.Metrics.default}: counters [pool.batches],
    [pool.tasks] (elements completed in parallel batches),
    [pool.sequential_fallbacks] (parallel calls that degraded to the
    calling domain because a batch was already in flight) and
    [pool.tasks_abandoned] (elements left undone when a batch raised —
    always at least the failing element) and [pool.env_jobs_invalid]
    (rejected [CAFFEINE_JOBS] values); the timer [pool.batch]
    (submitter wall time per batch); and the gauge [pool.task_imbalance]
    (spread between the busiest and idlest domain of the last batch, in
    ideal per-domain shares: 0 = perfectly balanced). *)

type t
(** A pool of worker domains (possibly zero) plus the calling domain. *)

val effective_jobs : int -> int
(** The parallelism a jobs request actually gets: [0] (or negative) means
    auto — the [CAFFEINE_JOBS] environment variable when set to a positive
    integer, else all cores — and every request is clamped to
    [\[1, Domain.recommended_domain_count ()\]].  Domains beyond the core
    count participate in every GC synchronization while adding no
    throughput, so a pool never spawns more than the hardware offers.

    A [CAFFEINE_JOBS] value that is not a positive integer (["abc"],
    ["-2"]) is a misconfiguration, not an auto request: it still falls
    back to all cores, but warns on stderr (once per distinct value),
    bumps the [pool.env_jobs_invalid] counter, and parks the message for
    {!take_env_warning}. *)

val take_env_warning : unit -> string option
(** The warning text of the most recent invalid [CAFFEINE_JOBS] value, if
    one was rejected since the last call — consumed by callers that own a
    trace sink so the misconfiguration also lands in the run trace as a
    [Trace.Warning] (context ["pool.effective_jobs"]).  Clears on read. *)

val default_jobs : unit -> int
(** [effective_jobs 0]: the parallelism used when the caller does not
    say. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [effective_jobs jobs - 1] worker domains (the
    submitting domain is the remaining worker).  [jobs] defaults to auto
    ({!default_jobs}); [jobs = 0] is auto explicitly; the result never
    exceeds the machine's core count.  An effective size of 1 spawns
    nothing and makes every operation purely sequential.  Pools must be
    released with {!shutdown} (or use {!with_pool}) — live worker domains
    keep the process alive. *)

val jobs : t -> int
(** Total parallelism, including the submitting domain. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f input] is [Array.map f input] with the elements
    evaluated across the pool's domains.  [f] must be safe to call from any
    domain; element order of the result is preserved.  If any application
    raises, the first exception observed is re-raised in the caller after
    all workers have stopped (remaining elements may be skipped).  Inputs
    of length [<= 1], sequential pools, and nested/concurrent calls run on
    the calling domain. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f] evaluated across the
    pool, under the same contract as {!parallel_map}. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool degrades to a
    sequential pool afterwards (further maps run on the calling domain). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown}, including on exception. *)

val with_optional_pool : ?jobs:int -> (t option -> 'a) -> 'a
(** Like {!with_pool}, but runs [f None] — creating no pool and no domains
    at all — when [effective_jobs jobs] is 1 (including any request made
    on a single-core host).  Convenient for threading [?pool] arguments
    from a jobs count. *)

(** The execution backend seam: one value that says {e how} the search
    runs, threaded through every layer that used to take a raw [?pool].

    An executor carries a backend choice plus whatever runtime it needs:

    - {!Seq} — everything on the calling domain; no domains, no
      processes.  The reference semantics every other backend must
      reproduce bit-for-bit.
    - {!Domains} — a shared {!Pool.t} of worker domains; data-parallel
      maps (objective evaluation, PRESS candidate scoring) fan out across
      it.  Bound by OCaml 5's cross-domain GC coupling: all domains join
      every minor collection, so it only pays off when the work between
      synchronizations is large.
    - {!Processes} — island-level fan-out across forked OS processes
      (see {!Caffeine.Shard}), immune to that GC coupling.  Inside each
      worker process, and for any data-parallel {!map} issued on the
      coordinator, execution is sequential: the parallelism lives at the
      island level.

    Executors are cheap immutable handles; the only resource they may own
    is the domain pool, released by {!shutdown} / {!with_executor}.
    Nested use is safe everywhere: a {!map} issued from inside another
    {!map} (or from inside a worker process) degrades to [Array.map] on
    the calling domain, never to deadlock. *)

type backend =
  | Seq
  | Domains
  | Processes

val backend_name : backend -> string
(** ["seq"], ["domains"] or ["processes"] — the [--backend] CLI spelling. *)

val backend_of_string : string -> (backend, string) result
(** Inverse of {!backend_name}; the error lists the valid spellings. *)

type t

val sequential : t
(** The {!Seq} executor: [map] is [Array.map], no resources owned. *)

val create : ?jobs:int -> ?shards:int -> backend -> t
(** Build an executor.

    For {!Domains}, [jobs] (default auto, clamped by
    {!Pool.effective_jobs}) sets the pool size; an effective size of 1
    spawns no domains.  For {!Processes}, [shards] sets how many worker
    processes an island run forks (default/0 = one per core; never more
    than there are islands); [jobs] is ignored — in-process maps stay
    sequential.  For {!Seq} both are ignored.  Executors that spawned a
    pool must be released with {!shutdown} (or use {!with_executor}). *)

val of_pool : Pool.t -> t
(** A {!Domains} executor borrowing the caller's pool.  The caller keeps
    ownership: {!shutdown} on the result is a no-op. *)

val with_executor : ?jobs:int -> ?shards:int -> backend -> (t -> 'a) -> 'a
(** [create] scoped with a guaranteed {!shutdown}, including on
    exception. *)

val shutdown : t -> unit
(** Release the executor's owned resources (the domain pool, when it
    spawned one).  Idempotent; borrowed pools are left alone. *)

val backend : t -> backend

val jobs : t -> int
(** Within-process parallelism: the pool size for {!Domains}, else 1. *)

val shards : t -> int
(** Worker-process fan-out for {!Processes}, else 1. *)

val pool : t -> Pool.t option
(** The underlying domain pool, when the backend has one. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map exec f input] is [Array.map f input], fanned across the domain
    pool when the executor has one ({!Pool.parallel_map} contract: [f]
    domain-safe, element order preserved, first exception re-raised).
    On {!Seq} and {!Processes} executors it runs on the calling domain. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init exec n f] is [Array.init n f] under the same contract as
    {!map}. *)

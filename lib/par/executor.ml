type backend =
  | Seq
  | Domains
  | Processes

let backend_name = function Seq -> "seq" | Domains -> "domains" | Processes -> "processes"

let backend_of_string = function
  | "seq" -> Ok Seq
  | "domains" -> Ok Domains
  | "processes" -> Ok Processes
  | other -> Error (Printf.sprintf "unknown backend %S (expected seq, domains or processes)" other)

type t = {
  backend : backend;
  shards : int;
  pool : Pool.t option;
  owned : bool;  (* [shutdown] releases the pool only if we spawned it *)
}

let sequential = { backend = Seq; shards = 1; pool = None; owned = false }

let create ?jobs ?shards backend =
  match backend with
  | Seq -> sequential
  | Domains ->
      let jobs = Pool.effective_jobs (match jobs with Some j -> j | None -> 0) in
      let pool = if jobs > 1 then Some (Pool.create ~jobs ()) else None in
      { backend = Domains; shards = 1; pool; owned = Option.is_some pool }
  | Processes ->
      (* Worker processes do not join the coordinator's GC, so the only
         cost of oversubscription is OS scheduling — still, one worker per
         core is the sensible default.  The island count caps the fan-out
         at run time (Shard), not here. *)
      let shards =
        match shards with
        | Some s when s >= 1 -> s
        | Some _ | None -> Domain.recommended_domain_count ()
      in
      { backend = Processes; shards; pool = None; owned = false }

let of_pool pool = { backend = Domains; shards = 1; pool = Some pool; owned = false }

let shutdown t = if t.owned then Option.iter Pool.shutdown t.pool

let with_executor ?jobs ?shards backend f =
  let t = create ?jobs ?shards backend in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let backend t = t.backend
let jobs t = match t.pool with Some pool -> Pool.jobs pool | None -> 1
let shards t = t.shards
let pool t = t.pool

let map t f input =
  match t.pool with Some pool -> Pool.parallel_map pool f input | None -> Array.map f input

let init t n f =
  match t.pool with
  | Some pool -> Pool.parallel_init pool n f
  | None ->
      if n < 0 then invalid_arg "Executor.init: negative length";
      Array.init n f

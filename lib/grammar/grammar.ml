type symbol =
  | Terminal of string
  | Nonterminal of string

type production = symbol list

type t = { start : string; order : string list; rules : (string, production list) Hashtbl.t }

let of_rules ~start rules =
  let table = Hashtbl.create 16 in
  let order =
    List.map
      (fun (lhs, alternatives) ->
        if Hashtbl.mem table lhs then
          invalid_arg ("Grammar.of_rules: duplicate rule for " ^ lhs);
        Hashtbl.add table lhs alternatives;
        lhs)
      rules
  in
  if not (Hashtbl.mem table start) then
    invalid_arg ("Grammar.of_rules: start symbol " ^ start ^ " has no rule");
  { start; order; rules = table }

let start g = g.start
let productions g name = Hashtbl.find g.rules name
let has_nonterminal g name = Hashtbl.mem g.rules name
let nonterminals g = g.order

let terminals g =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun lhs ->
      List.iter
        (fun production ->
          List.iter
            (function
              | Terminal name ->
                  if not (Hashtbl.mem seen name) then begin
                    Hashtbl.add seen name ();
                    out := name :: !out
                  end
              | Nonterminal _ -> ())
            production)
        (productions g lhs))
    g.order;
  List.rev !out

(* --- text format --- *)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let i = ref 0 in
  let error msg = Error (Printf.sprintf "%s (at column %d of %S)" msg !i line) in
  let result = ref None in
  while !result = None && !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '\'' then begin
      match String.index_from_opt line (!i + 1) '\'' with
      | None -> result := Some (error "unterminated quote")
      | Some close ->
          tokens := `Term (String.sub line (!i + 1) (close - !i - 1)) :: !tokens;
          i := close + 1
    end
    else if c = '|' then begin
      tokens := `Bar :: !tokens;
      incr i
    end
    else if !i + 1 < n && c = '=' && line.[!i + 1] = '>' then begin
      tokens := `Arrow :: !tokens;
      i := !i + 2
    end
    else begin
      let start_pos = !i in
      while
        !i < n
        &&
        let c = line.[!i] in
        c <> ' ' && c <> '\t' && c <> '\'' && c <> '|' && not (c = '=' && !i + 1 < n && line.[!i + 1] = '>')
      do
        incr i
      done;
      tokens := `Word (String.sub line start_pos (!i - start_pos)) :: !tokens
    end
  done;
  match !result with Some err -> err | None -> Ok (List.rev !tokens)

let split_alternatives tokens =
  let rec loop current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | `Bar :: rest -> loop [] (List.rev current :: acc) rest
    | `Term name :: rest -> loop (Terminal name :: current) acc rest
    | `Word name :: rest -> loop (Nonterminal name :: current) acc rest
    | `Arrow :: _ -> invalid_arg "unexpected =>"
  in
  loop [] [] tokens

let parse text =
  let lines = String.split_on_char '\n' text in
  (* Merge continuation lines (starting with |) into the previous rule. *)
  let logical = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then begin
        let line = strip_comment raw in
        let trimmed = String.trim line in
        if trimmed <> "" then
          if trimmed.[0] = '|' then
            match !logical with
            | [] -> error := Some (Printf.sprintf "line %d: continuation with no rule" (lineno + 1))
            | head :: rest -> logical := (head ^ " " ^ trimmed) :: rest
          else logical := trimmed :: !logical
      end)
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      let logical = List.rev !logical in
      let parse_rule line =
        match tokenize line with
        | Error msg -> Error msg
        | Ok tokens -> (
            match tokens with
            | `Word lhs :: `Arrow :: rest -> (
                match split_alternatives rest with
                | alternatives ->
                    if List.exists (fun alt -> alt = []) alternatives then
                      Error (Printf.sprintf "empty alternative in rule for %s" lhs)
                    else Ok (lhs, alternatives)
                | exception Invalid_argument msg -> Error msg)
            | _ -> Error (Printf.sprintf "expected NONTERM => ... in %S" line))
      in
      let rec build acc = function
        | [] -> (
            match List.rev acc with
            | [] -> Error "no rules"
            | ((first, _) :: _ as rules) -> (
                match of_rules ~start:first rules with
                | g -> Ok g
                | exception Invalid_argument msg -> Error msg))
        | line :: rest -> (
            match parse_rule line with
            | Error msg -> Error msg
            | Ok rule -> build (rule :: acc) rest)
      in
      build [] logical

let parse_exn text =
  match parse text with Ok g -> g | Error msg -> failwith ("Grammar.parse: " ^ msg)

let to_text g =
  let buffer = Buffer.create 256 in
  List.iter
    (fun lhs ->
      Buffer.add_string buffer lhs;
      Buffer.add_string buffer " => ";
      let alternatives = productions g lhs in
      List.iteri
        (fun i production ->
          if i > 0 then Buffer.add_string buffer " | ";
          List.iteri
            (fun j symbol ->
              if j > 0 then Buffer.add_char buffer ' ';
              match symbol with
              | Terminal name -> Buffer.add_string buffer ("'" ^ name ^ "'")
              | Nonterminal name -> Buffer.add_string buffer name)
            production)
        alternatives;
      Buffer.add_char buffer '\n')
    g.order;
  Buffer.contents buffer

(* --- validation --- *)

let reachable g =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      if has_nonterminal g name then
        List.iter
          (fun production ->
            List.iter
              (function Nonterminal n -> visit n | Terminal _ -> ())
              production)
          (productions g name)
    end
  in
  visit g.start;
  seen

let productive_set g =
  let productive = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun lhs ->
        if not (Hashtbl.mem productive lhs) then
          let usable production =
            List.for_all
              (function
                | Terminal _ -> true
                | Nonterminal n -> Hashtbl.mem productive n)
              production
          in
          if List.exists usable (productions g lhs) then begin
            Hashtbl.add productive lhs ();
            changed := true
          end)
      g.order
  done;
  productive

let validate g =
  let errors = ref [] in
  let note msg = errors := msg :: !errors in
  let reached = reachable g in
  List.iter
    (fun lhs ->
      List.iter
        (fun production ->
          List.iter
            (function
              | Nonterminal n when not (has_nonterminal g n) ->
                  note (Printf.sprintf "undefined nonterminal %s (used by %s)" n lhs)
              | Nonterminal _ | Terminal _ -> ())
            production)
        (productions g lhs))
    g.order;
  List.iter
    (fun lhs ->
      if not (Hashtbl.mem reached lhs) then
        note (Printf.sprintf "nonterminal %s unreachable from %s" lhs g.start))
    g.order;
  let productive = productive_set g in
  List.iter
    (fun lhs ->
      if Hashtbl.mem reached lhs && not (Hashtbl.mem productive lhs) then
        note (Printf.sprintf "nonterminal %s cannot derive a finite string" lhs))
    g.order;
  List.iter
    (fun lhs ->
      if Hashtbl.mem reached lhs && productions g lhs = [] then
        note (Printf.sprintf "nonterminal %s has no alternatives" lhs))
    g.order;
  match List.rev !errors with [] -> Ok () | msgs -> Error msgs

let filter_alternatives g ~keep_production =
  let rules =
    List.map (fun lhs -> (lhs, List.filter keep_production (productions g lhs))) g.order
  in
  let filtered = of_rules ~start:g.start rules in
  match validate filtered with
  | Ok () -> filtered
  | Error msgs ->
      invalid_arg ("Grammar: rule removal breaks the grammar: " ^ String.concat "; " msgs)

let remove_terminal g name =
  let keep_production production =
    not (List.exists (function Terminal t -> t = name | Nonterminal _ -> false) production)
  in
  filter_alternatives g ~keep_production

let restrict_terminals g ~keep =
  let keep_production production =
    List.for_all (function Terminal t -> keep t | Nonterminal _ -> true) production
  in
  filter_alternatives g ~keep_production

let caffeine_text =
  "# CAFFEINE canonical-form grammar (McConaghy et al., DATE 2005, section 5)\n\
   # with the operator set of the experimental setup (section 6.1).\n\
   REPVC => 'VC' | REPVC '*' REPOP | REPOP\n\
   REPOP => REPOP '*' REPOP\n\
   | 1OP '(' 'W' '+' REPADD ')'\n\
   | 2OP '(' 2ARGS ')'\n\
   | 'LTE' '(' 'W' '+' REPADD ',' MAYBEW ',' MAYBEW ',' MAYBEW ')'\n\
   2ARGS => 'W' '+' REPADD ',' MAYBEW | MAYBEW ',' 'W' '+' REPADD\n\
   MAYBEW => 'W' | 'W' '+' REPADD\n\
   REPADD => 'W' '*' REPVC | REPADD '+' REPADD\n\
   1OP => 'SQRT' | 'LOGE' | 'LOG10' | 'INV' | 'ABS' | 'SQUARE'\n\
   | 'SIN' | 'COS' | 'TAN' | 'MAX0' | 'MIN0' | 'EXP2' | 'EXP10'\n\
   2OP => 'DIVIDE' | 'POW' | 'MAX' | 'MIN'\n"

let caffeine = parse_exn caffeine_text

(** Context-free grammars for canonical-form functions.

    The CAFFEINE prototype "defined the grammar in a separate text file and
    parsed it"; this module reproduces that workflow.  A grammar is a start
    symbol plus derivation rules mapping each nonterminal to alternatives
    (sequences of symbols).  Terminals are written in single quotes in the
    text format, exactly as printed in the paper:

    {v
    REPVC => 'VC' | REPVC '*' REPOP | REPOP
    REPOP => 1OP '(' 'W' '+' REPADD ')' | 2OP '(' 2ARGS ')'
    2OP => 'DIVIDE' | 'POW'
    v}

    The designer can "turn off any of the rules if they are considered
    unwanted or unneeded" — see {!remove_terminal} and {!restrict_terminals}. *)

type symbol =
  | Terminal of string
  | Nonterminal of string

type production = symbol list
(** One alternative of a derivation rule. *)

type t
(** A grammar: start symbol + rules. *)

val of_rules : start:string -> (string * production list) list -> t
(** Build a grammar directly.  Raises [Invalid_argument] when the start symbol
    has no rule or a nonterminal is defined twice. *)

val start : t -> string

val productions : t -> string -> production list
(** Alternatives for a nonterminal.  Raises [Not_found] for an unknown one. *)

val has_nonterminal : t -> string -> bool

val nonterminals : t -> string list
(** Defined nonterminals, in rule order. *)

val terminals : t -> string list
(** All distinct terminal names, in first-appearance order. *)

val parse : string -> (t, string) result
(** Parse the text format.  Rules are [NONTERM => alt | alt | ...], one rule
    per line; lines beginning with [|] continue the previous rule's
    alternatives; [#] starts a comment; quoted tokens are terminals; the
    first rule's left-hand side is the start symbol. *)

val parse_exn : string -> t
(** Like {!parse} but raises [Failure] with the error message. *)

val to_text : t -> string
(** Render back to the text format ({!parse} ∘ {!to_text} is the identity up
    to whitespace). *)

val validate : t -> (unit, string list) result
(** Check that every referenced nonterminal is defined, every nonterminal is
    reachable from the start symbol, and every nonterminal can derive a
    finite terminal string. *)

val remove_terminal : t -> string -> t
(** [remove_terminal g name] drops every alternative that mentions the
    terminal [name] — the designer's rule-toggle.  Raises [Invalid_argument]
    if this would leave some reachable nonterminal with no alternatives. *)

val restrict_terminals : t -> keep:(string -> bool) -> t
(** Keep only alternatives whose terminals all satisfy [keep]. *)

val caffeine_text : string
(** The paper's canonical-form grammar (section 5) in text form, with the
    full operator set of the experimental setup (section 6.1). *)

val caffeine : t
(** Parsed {!caffeine_text}. *)

module Matrix = Caffeine_linalg.Matrix
module Decomp = Caffeine_linalg.Decomp

type mos_bias = {
  name : string;
  vgs : float;
  vds : float;
  vbs : float;
  op : Mos.operating_point;
}

type solution = {
  voltages : float array;
  branch_currents : (string * float) list;
  iterations : int;
  mos_biases : mos_bias list;
}

let node_voltage sol n = sol.voltages.(n)

let branch_current sol name = List.assoc name sol.branch_currents

let mos_bias sol name = List.find (fun b -> b.name = name) sol.mos_biases

(* Unknown layout: x.(i) for i < n is the voltage of node i+1; x.(n + k) is
   the branch current of the k-th voltage source. *)
let stamp_system ?vsource_value ?extra_stamp circuit x =
  let n = Circuit.num_nodes circuit in
  let sources = Circuit.vsource_names circuit in
  let m = List.length sources in
  let size = n + m in
  let g = Matrix.create (max size 1) (max size 1) in
  let b = Array.make (max size 1) 0. in
  let voltage node = if node = 0 then 0. else x.(node - 1) in
  let add_g row col value =
    if row > 0 && col > 0 then Matrix.set g (row - 1) (col - 1) (Matrix.get g (row - 1) (col - 1) +. value)
  in
  let add_branch_g row branch value =
    (* [branch] indexes rows/columns past the node block; always present. *)
    if row > 0 then begin
      Matrix.set g (row - 1) (n + branch) (Matrix.get g (row - 1) (n + branch) +. value);
      Matrix.set g (n + branch) (row - 1) (Matrix.get g (n + branch) (row - 1) +. value)
    end
  in
  let add_b row value = if row > 0 then b.(row - 1) <- b.(row - 1) +. value in
  let branch = ref 0 in
  List.iter
    (fun element ->
      match element with
      | Circuit.Resistor { n1; n2; ohms; _ } ->
          let conductance = 1. /. ohms in
          add_g n1 n1 conductance;
          add_g n2 n2 conductance;
          add_g n1 n2 (-.conductance);
          add_g n2 n1 (-.conductance)
      | Circuit.Capacitor _ -> ()
      | Circuit.Vsource { name; pos; neg; dc; _ } ->
          add_branch_g pos !branch 1.;
          add_branch_g neg !branch (-1.);
          let value =
            match vsource_value with
            | None -> dc
            | Some override -> ( match override name with Some v -> v | None -> dc)
          in
          b.(n + !branch) <- value;
          incr branch
      | Circuit.Isource { from_node; to_node; amps; _ } ->
          add_b from_node (-.amps);
          add_b to_node amps
      | Circuit.Vccs { out_pos; out_neg; in_pos; in_neg; gm; _ } ->
          add_g out_pos in_pos gm;
          add_g out_pos in_neg (-.gm);
          add_g out_neg in_pos (-.gm);
          add_g out_neg in_neg gm
      | Circuit.Mosfet { drain; gate; source; bulk; params; w; l; _ } ->
          let vgs = voltage gate -. voltage source in
          let vds = voltage drain -. voltage source in
          let vbs = voltage bulk -. voltage source in
          let op = Mos.evaluate params ~w ~l ~vgs ~vds ~vbs in
          (* Companion model: I_d(v) ≈ ids + gm Δvgs + gds Δvds + gmb Δvbs. *)
          add_g drain gate op.gm;
          add_g drain drain op.gds;
          add_g drain bulk op.gmb;
          add_g drain source (-.(op.gm +. op.gds +. op.gmb));
          add_g source gate (-.op.gm);
          add_g source drain (-.op.gds);
          add_g source bulk (-.op.gmb);
          add_g source source (op.gm +. op.gds +. op.gmb);
          let equivalent = op.ids -. (op.gm *. vgs) -. (op.gds *. vds) -. (op.gmb *. vbs) in
          add_b drain (-.equivalent);
          add_b source equivalent)
    (Circuit.elements circuit);
  (match extra_stamp with
  | None -> ()
  | Some stamp -> stamp ~add_g ~add_b);
  (g, b, size)

let mos_biases_of circuit x =
  let voltage node = if node = 0 then 0. else x.(node - 1) in
  List.filter_map
    (fun element ->
      match element with
      | Circuit.Mosfet { name; drain; gate; source; bulk; params; w; l } ->
          let vgs = voltage gate -. voltage source in
          let vds = voltage drain -. voltage source in
          let vbs = voltage bulk -. voltage source in
          Some { name; vgs; vds; vbs; op = Mos.evaluate params ~w ~l ~vgs ~vds ~vbs }
      | Circuit.Resistor _ | Circuit.Capacitor _ | Circuit.Vsource _ | Circuit.Isource _
      | Circuit.Vccs _ -> None)
    (Circuit.elements circuit)

(* Damping limit per Newton update.  Square-law devices have polynomial
   currents (no exponentials), so generous steps are safe; the limit only
   prevents wild excursions from a poor starting point. *)
let max_step = 2.0

let solve_with ?(max_iterations = 300) ?(tolerance = 1e-9) ?initial ?vsource_value ?extra_stamp
    circuit =
  let n = Circuit.num_nodes circuit in
  let sources = Circuit.vsource_names circuit in
  let m = List.length sources in
  let size = n + m in
  let x =
    match initial with
    | None -> Array.make (max size 1) 0.
    | Some given ->
        if Array.length given <> n + 1 then
          invalid_arg "Dc.solve: initial must have num_nodes + 1 entries";
        Array.init (max size 1) (fun i -> if i < n then given.(i + 1) else 0.)
  in
  let rec iterate iteration =
    if iteration > max_iterations then Error (Printf.sprintf "no convergence in %d iterations" max_iterations)
    else begin
      let g, b, _ = stamp_system ?vsource_value ?extra_stamp circuit x in
      match Decomp.lu_solve g b with
      | exception Decomp.Singular -> Error "singular MNA system"
      | fresh ->
          (* Damp: limit each node-voltage move to [max_step]. *)
          let worst = ref 0. in
          for i = 0 to size - 1 do
            let delta = fresh.(i) -. x.(i) in
            let damped =
              if i < n then Float.max (-.max_step) (Float.min max_step delta) else delta
            in
            if i < n then worst := Float.max !worst (Float.abs damped);
            x.(i) <- x.(i) +. damped
          done;
          if !worst < tolerance then begin
            let voltages = Array.init (n + 1) (fun i -> if i = 0 then 0. else x.(i - 1)) in
            let branch_currents = List.mapi (fun k name -> (name, x.(n + k))) sources in
            Ok { voltages; branch_currents; iterations = iteration; mos_biases = mos_biases_of circuit x }
          end
          else iterate (iteration + 1)
    end
  in
  iterate 1

let solve ?max_iterations ?tolerance ?initial circuit =
  solve_with ?max_iterations ?tolerance ?initial circuit

let sweep ?max_iterations ?tolerance ~circuit ~source ~values () =
  if Array.length values = 0 then invalid_arg "Dc.sweep: empty value list";
  (match Circuit.vsource_index circuit source with
  | _ -> ()
  | exception Not_found -> invalid_arg ("Dc.sweep: unknown voltage source " ^ source));
  let results = Array.make (Array.length values) None in
  let previous = ref None in
  let failed = ref None in
  Array.iteri
    (fun k value ->
      if !failed = None then begin
        let vsource_value name = if name = source then Some value else None in
        match solve_with ?max_iterations ?tolerance ?initial:!previous ~vsource_value circuit with
        | Error msg -> failed := Some (Printf.sprintf "at %s = %g: %s" source value msg)
        | Ok solution ->
            previous := Some solution.voltages;
            results.(k) <- Some (value, solution)
      end)
    values;
  match !failed with
  | Some msg -> Error msg
  | None ->
      Ok
        (Array.map
           (fun entry -> match entry with Some pair -> pair | None -> assert false)
           results)

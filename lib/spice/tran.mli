(** Nonlinear transient analysis.

    Fixed-step time integration of the full nonlinear circuit: capacitors
    are replaced by their companion models (backward Euler or trapezoidal)
    and the resulting resistive circuit is Newton-solved at every timestep,
    warm-started from the previous solution.  Voltage sources may be driven
    by arbitrary time-domain stimuli.

    This is the engine that measures genuinely large-signal behaviour —
    e.g. slew rate, where device current limiting (not small-signal
    bandwidth) sets the output ramp. *)

type integration =
  | Backward_euler  (** robust, first order *)
  | Trapezoidal  (** second order *)

type waveform = {
  times : float array;
  voltages : float array array;  (** [voltages.(k).(node)] at [times.(k)] *)
}

val node_waveform : waveform -> int -> float array
(** One node's voltage trace. *)

val simulate_stream :
  ?integration:integration ->
  ?stimulus:(string -> float -> float option) ->
  ?initial:Dc.solution ->
  circuit:Circuit.t ->
  step:float ->
  duration:float ->
  on_step:(k:int -> time:float -> float array -> unit) ->
  unit ->
  (int, string) result
(** Streaming form of {!simulate}: instead of materializing the whole
    waveform (an [num_steps x nodes] matrix), [on_step ~k ~time voltages]
    is called once per solved time point in order, starting with the
    operating point at [k = 0].  The voltage array is only valid during
    the callback and must not be mutated — copy what must outlive it.
    Returns the number of integration steps taken.  This is the native
    producer for million-sample waveform datasets: each solved step can
    be appended straight to a {!Caffeine_io.Colstore} writer with O(1)
    resident memory.  {!simulate} is implemented on top of this. *)

val simulate :
  ?integration:integration ->
  ?stimulus:(string -> float -> float option) ->
  ?initial:Dc.solution ->
  circuit:Circuit.t ->
  step:float ->
  duration:float ->
  unit ->
  (waveform, string) result
(** [simulate ~circuit ~step ~duration ()] integrates from an operating
    point (computed by {!Dc.solve} unless [initial] is given) for
    [duration] seconds in steps of [step].  [stimulus name t] overrides the
    voltage of the source [name] at time [t] ([None] keeps its DC value);
    the operating point uses the stimulus at t = 0.  Default integration is
    {!Trapezoidal}.  Returns [Error] if any timestep fails to converge. *)

val slew_rates : waveform -> node:int -> float * float
(** [(max rising dv/dt, max falling dv/dt)] of a node trace (the falling
    value is negative).  Requires at least two time points. *)

val settling_time :
  waveform -> node:int -> target:float -> tolerance:float -> float option
(** First time after which the node stays within [tolerance] (absolute) of
    [target] for the rest of the simulation. *)

type polarity =
  | Nmos
  | Pmos

type params = {
  polarity : polarity;
  vth0 : float;
  kp : float;
  lambda : float;
  gamma : float;
  phi : float;
  cox : float;
  cov : float;
  cj : float;
}

let default_nmos =
  {
    polarity = Nmos;
    vth0 = 0.76;
    kp = 100e-6;
    lambda = 0.06;
    gamma = 0.45;
    phi = 0.65;
    cox = 2.4e-3;
    cov = 0.25e-9;
    cj = 0.4e-3;
  }

let default_pmos =
  {
    polarity = Pmos;
    vth0 = -0.75;
    kp = 35e-6;
    lambda = 0.08;
    gamma = 0.4;
    phi = 0.65;
    cox = 2.4e-3;
    cov = 0.25e-9;
    cj = 0.5e-3;
  }

type operating_point = {
  ids : float;
  gm : float;
  gds : float;
  gmb : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

let gmin = 1e-12

(* Core equations for an N-type device with vds >= 0.  Body effect raises the
   threshold with source-bulk reverse bias vsb = -vbs. *)
let evaluate_ntype p ~beta ~vgs ~vds ~vbs =
  let vsb = Float.max 0. (-.vbs) in
  let sqrt_phi = sqrt p.phi in
  let sqrt_phi_vsb = sqrt (p.phi +. vsb) in
  let vth = p.vth0 +. (p.gamma *. (sqrt_phi_vsb -. sqrt_phi)) in
  let vov = vgs -. vth in
  (* d vth / d vsb, used for gmb = gm * dvth/dvsb.  Zero when the vsb >= 0
     clamp is active, so the reported derivative matches the clamped model. *)
  let dvth_dvsb = if -.vbs > 0. then p.gamma /. (2. *. sqrt_phi_vsb) else 0. in
  if vov <= 0. then
    { ids = gmin *. vds; gm = 0.; gds = gmin; gmb = 0.; region = `Cutoff }
  else begin
    let clm = 1. +. (p.lambda *. vds) in
    if vds < vov then begin
      let core = (vov *. vds) -. (vds *. vds /. 2.) in
      let ids = beta *. core *. clm in
      let gm = beta *. vds *. clm in
      let gds = (beta *. (vov -. vds) *. clm) +. (beta *. core *. p.lambda) +. gmin in
      { ids = ids +. (gmin *. vds); gm; gds; gmb = gm *. dvth_dvsb; region = `Triode }
    end
    else begin
      let half_beta = beta /. 2. in
      let ids = half_beta *. vov *. vov *. clm in
      let gm = beta *. vov *. clm in
      let gds = (half_beta *. vov *. vov *. p.lambda) +. gmin in
      { ids = ids +. (gmin *. vds); gm; gds; gmb = gm *. dvth_dvsb; region = `Saturation }
    end
  end

(* N-type evaluation valid for either sign of vds.  For vds < 0 the source
   and drain exchange roles: ids(vgs, vds, vbs) = -ids'(vgs - vds, -vds,
   vbs - vds) where ids' is the forward evaluation.  The chain rule then
   gives gm = -gm', gds = gm' + gds' + gmb', gmb = -gmb' — the returned
   fields are always the true partial derivatives of the drain→source
   current with respect to (vgs, vds, vbs). *)
let evaluate_ntype_any p ~beta ~vgs ~vds ~vbs =
  if vds >= 0. then evaluate_ntype p ~beta ~vgs ~vds ~vbs
  else begin
    let m = evaluate_ntype p ~beta ~vgs:(vgs -. vds) ~vds:(-.vds) ~vbs:(vbs -. vds) in
    {
      ids = -.m.ids;
      gm = -.m.gm;
      gds = m.gm +. m.gds +. m.gmb;
      gmb = -.m.gmb;
      region = m.region;
    }
  end

let evaluate p ~w ~l ~vgs ~vds ~vbs =
  if w <= 0. || l <= 0. then invalid_arg "Mos.evaluate: non-positive dimensions";
  let beta = p.kp *. w /. l in
  match p.polarity with
  | Nmos -> evaluate_ntype_any p ~beta ~vgs ~vds ~vbs
  | Pmos ->
      (* Reflect the P-device onto the N-type equations: ids_P(v) =
         -ids_N(-v) with |vth0|.  Every first derivative picks up two sign
         flips (outer negation and inner argument negation), so gm, gds and
         gmb carry over unchanged. *)
      let reflected = { p with polarity = Nmos; vth0 = -.p.vth0 } in
      let inner = evaluate_ntype_any reflected ~beta ~vgs:(-.vgs) ~vds:(-.vds) ~vbs:(-.vbs) in
      { inner with ids = -.inner.ids }

let size_for_current p ~id ~vov ~l =
  if id <= 0. then invalid_arg "Mos.size_for_current: current must be positive";
  if vov <= 0. then invalid_arg "Mos.size_for_current: overdrive must be positive";
  2. *. id *. l /. (p.kp *. vov *. vov)

let saturation_gm ~id ~vov =
  if vov <= 0. then invalid_arg "Mos.saturation_gm: overdrive must be positive";
  2. *. id /. vov

let saturation_gds p ~id = p.lambda *. Float.abs id

let cgs p ~w ~l = (2. /. 3. *. w *. l *. p.cox) +. (p.cov *. w)

let cgd p ~w = p.cov *. w

(* Drain diffusion assumed 1 µm deep regardless of technology detail. *)
let cdb p ~w = p.cj *. w *. 1e-6

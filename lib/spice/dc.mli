(** Nonlinear DC operating-point analysis.

    Modified nodal analysis with Newton–Raphson iteration: MOSFETs are
    replaced by their linearized companion models each iteration, the linear
    MNA system is solved, and the update is damped until the node voltages
    stop moving.  Capacitors are open circuits at DC. *)

type mos_bias = {
  name : string;
  vgs : float;
  vds : float;
  vbs : float;
  op : Mos.operating_point;
}

type solution = {
  voltages : float array;  (** node voltages; index 0 is ground (0 V) *)
  branch_currents : (string * float) list;
      (** per voltage source: current flowing from its [pos] node through
          the source *)
  iterations : int;
  mos_biases : mos_bias list;  (** per-MOSFET operating point, element order *)
}

val node_voltage : solution -> int -> float

val branch_current : solution -> string -> float
(** Raises [Not_found] for an unknown source name. *)

val mos_bias : solution -> string -> mos_bias
(** Raises [Not_found] for an unknown device name. *)

val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?initial:float array ->
  Circuit.t ->
  (solution, string) result
(** Newton solve from [initial] node voltages (default all zero).  Defaults:
    [max_iterations = 300], [tolerance = 1e-9] (absolute, on the node-voltage
    update).  Returns [Error] on non-convergence or a singular system. *)

val solve_with :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?initial:float array ->
  ?vsource_value:(string -> float option) ->
  ?extra_stamp:(add_g:(int -> int -> float -> unit) -> add_b:(int -> float -> unit) -> unit) ->
  Circuit.t ->
  (solution, string) result
(** Generalized Newton solve used by the transient engine:
    [vsource_value name] overrides a voltage source's DC value (e.g. a
    stimulus evaluated at the current timestep); [extra_stamp] contributes
    additional linear stamps each iteration ([add_g row col g] accumulates
    into the conductance matrix, [add_b row i] into the right-hand side;
    rows/columns are node indices, ground = 0 ignored) — e.g. capacitor
    companion models. *)

val sweep :
  ?max_iterations:int ->
  ?tolerance:float ->
  circuit:Circuit.t ->
  source:string ->
  values:float array ->
  unit ->
  ((float * solution) array, string) result
(** The classic [.dc] sweep: solve the circuit for each value of the named
    voltage source, warm-starting every solve from the previous solution
    (continuation), which lets Newton track the curve through strongly
    nonlinear regions.  Returns [(value, solution)] pairs in sweep order;
    fails on the first non-converging point.  Raises [Invalid_argument] for
    an unknown source or empty value list. *)

type t = {
  circuit : Circuit.t;
  node_names : (string * int) list;
  title : string option;
}

let lowercase = String.lowercase_ascii

(* --- engineering notation ------------------------------------------------ *)

let suffix_multipliers =
  [
    ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6); ("m", 1e-3);
    ("k", 1e3); ("g", 1e9); ("t", 1e12);
  ]

let parse_value text =
  let text = lowercase (String.trim text) in
  if text = "" then None
  else begin
    (* Longest suffix first ("meg" before "m"). *)
    let rec try_suffixes = function
      | [] -> float_of_string_opt text
      | (suffix, multiplier) :: rest ->
          let ls = String.length suffix and lt = String.length text in
          if lt > ls && String.sub text (lt - ls) ls = suffix then
            match float_of_string_opt (String.sub text 0 (lt - ls)) with
            | Some base -> Some (base *. multiplier)
            | None -> try_suffixes rest
          else try_suffixes rest
    in
    try_suffixes suffix_multipliers
  end

(* --- deck parsing --------------------------------------------------------- *)

type parse_state = {
  mutable next_node : int;
  nodes : (string, int) Hashtbl.t;
  models : (string, Mos.params) Hashtbl.t;
  mutable elements : Circuit.element list;
  mutable title : string option;
}

let node_index state name =
  let key = lowercase name in
  if key = "0" || key = "gnd" then 0
  else
    match Hashtbl.find_opt state.nodes key with
    | Some index -> index
    | None ->
        let index = state.next_node in
        state.next_node <- index + 1;
        Hashtbl.add state.nodes key index;
        index

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let value_or_error lineno what text =
  match parse_value text with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: bad %s value %S" lineno what text)

(* Split "W=10u" style assignments. *)
let parse_assignment token =
  match String.index_opt token '=' with
  | None -> None
  | Some i ->
      Some (lowercase (String.sub token 0 i), String.sub token (i + 1) (String.length token - i - 1))

let default_models =
  [ ("nmos", Mos.default_nmos); ("pmos", Mos.default_pmos) ]

let parse_model_card state lineno tokens =
  (* .model NAME NMOS|PMOS (K=V ...) — parentheses optional. *)
  match tokens with
  | _model :: name :: kind :: rest ->
      let base =
        match lowercase kind with
        | "nmos" -> Ok Mos.default_nmos
        | "pmos" -> Ok Mos.default_pmos
        | other -> Error (Printf.sprintf "line %d: unknown model kind %S" lineno other)
      in
      let* base = base in
      let cleaned =
        List.filter_map
          (fun token ->
            let stripped =
              String.concat ""
                (String.split_on_char '(' (String.concat "" (String.split_on_char ')' token)))
            in
            if stripped = "" then None else Some stripped)
          rest
      in
      let apply params token =
        match parse_assignment token with
        | None -> Error (Printf.sprintf "line %d: expected KEY=VALUE, got %S" lineno token)
        | Some (key, text) -> (
            let* v = value_or_error lineno key text in
            match key with
            | "vto" | "vth" -> Ok { params with Mos.vth0 = v }
            | "kp" -> Ok { params with Mos.kp = v }
            | "lambda" -> Ok { params with Mos.lambda = v }
            | "gamma" -> Ok { params with Mos.gamma = v }
            | "phi" -> Ok { params with Mos.phi = v }
            | "cox" -> Ok { params with Mos.cox = v }
            | "cov" -> Ok { params with Mos.cov = v }
            | "cj" -> Ok { params with Mos.cj = v }
            | other -> Error (Printf.sprintf "line %d: unknown model parameter %S" lineno other))
      in
      let rec fold params = function
        | [] -> Ok params
        | token :: rest ->
            let* params = apply params token in
            fold params rest
      in
      let* params = fold base cleaned in
      Hashtbl.replace state.models (lowercase name) params;
      Ok ()
  | _ -> Error (Printf.sprintf "line %d: malformed .model card" lineno)

let parse_element state lineno tokens =
  match tokens with
  | [] -> Ok ()
  | name :: rest -> (
      let kind = Char.lowercase_ascii name.[0] in
      let node = node_index state in
      let add e = state.elements <- e :: state.elements in
      match (kind, rest) with
      | 'r', [ n1; n2; v ] ->
          let* ohms = value_or_error lineno "resistance" v in
          if ohms <= 0. then Error (Printf.sprintf "line %d: non-positive resistance" lineno)
          else Ok (add (Circuit.Resistor { name; n1 = node n1; n2 = node n2; ohms }))
      | 'c', [ n1; n2; v ] ->
          let* farads = value_or_error lineno "capacitance" v in
          if farads <= 0. then Error (Printf.sprintf "line %d: non-positive capacitance" lineno)
          else Ok (add (Circuit.Capacitor { name; n1 = node n1; n2 = node n2; farads }))
      | 'v', pos :: neg :: rest ->
          (* Forms: V n+ n- <dc>, V n+ n- DC <dc> [AC <ac>]. *)
          let rec scan dc ac = function
            | [] -> Ok (dc, ac)
            | "DC" :: v :: more | "dc" :: v :: more ->
                let* dc = value_or_error lineno "dc" v in
                scan dc ac more
            | "AC" :: v :: more | "ac" :: v :: more ->
                let* ac = value_or_error lineno "ac" v in
                scan dc ac more
            | v :: more ->
                let* dc = value_or_error lineno "dc" v in
                scan dc ac more
          in
          let* dc, ac = scan 0. 0. rest in
          Ok (add (Circuit.Vsource { name; pos = node pos; neg = node neg; dc; ac }))
      | 'i', [ n1; n2; v ] ->
          (* SPICE convention: current flows from n1 through the source to
             n2 (out of n1, into n2). *)
          let* amps = value_or_error lineno "current" v in
          Ok (add (Circuit.Isource { name; from_node = node n1; to_node = node n2; amps }))
      | 'g', [ op; on; ip; in_; v ] ->
          let* gm = value_or_error lineno "transconductance" v in
          Ok
            (add
               (Circuit.Vccs
                  {
                    name;
                    out_pos = node op;
                    out_neg = node on;
                    in_pos = node ip;
                    in_neg = node in_;
                    gm;
                  }))
      | 'm', d :: g :: s :: b :: model :: params ->
          let* mos_params =
            match Hashtbl.find_opt state.models (lowercase model) with
            | Some p -> Ok p
            | None -> (
                match List.assoc_opt (lowercase model) default_models with
                | Some p -> Ok p
                | None -> Error (Printf.sprintf "line %d: unknown MOS model %S" lineno model))
          in
          let rec scan w l = function
            | [] -> Ok (w, l)
            | token :: more -> (
                match parse_assignment token with
                | Some ("w", v) ->
                    let* w = value_or_error lineno "width" v in
                    scan (Some w) l more
                | Some ("l", v) ->
                    let* l = value_or_error lineno "length" v in
                    scan w (Some l) more
                | Some (other, _) ->
                    Error (Printf.sprintf "line %d: unknown device parameter %S" lineno other)
                | None -> Error (Printf.sprintf "line %d: expected W=/L=, got %S" lineno token))
          in
          let* w, l = scan None None params in
          let* w = match w with Some w -> Ok w | None -> Error (Printf.sprintf "line %d: missing W=" lineno) in
          let* l = match l with Some l -> Ok l | None -> Error (Printf.sprintf "line %d: missing L=" lineno) in
          Ok
            (add
               (Circuit.Mosfet
                  {
                    name;
                    drain = node d;
                    gate = node g;
                    source = node s;
                    bulk = node b;
                    params = mos_params;
                    w;
                    l;
                  }))
      | ('r' | 'c' | 'v' | 'i' | 'g' | 'm'), _ ->
          Error (Printf.sprintf "line %d: wrong number of fields for element %s" lineno name)
      | _ -> Error (Printf.sprintf "line %d: unknown element type %S" lineno name))

let is_card line =
  match line.[0] with
  | 'r' | 'R' | 'c' | 'C' | 'v' | 'V' | 'i' | 'I' | 'g' | 'G' | 'm' | 'M' | '.' -> true
  | _ -> false

let parse source =
  let state =
    {
      next_node = 1;
      nodes = Hashtbl.create 16;
      models = Hashtbl.create 4;
      elements = [];
      title = None;
    }
  in
  let lines = String.split_on_char '\n' source in
  (* Pass 1: tokenize cards, handle directives, and register every .model —
     SPICE decks may reference a model before its card appears.  Element
     cards are deferred to pass 2. *)
  let rec collect acc lineno first = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let line =
          (* strip comments: '*' at start, ';' anywhere *)
          match String.index_opt raw ';' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = String.trim line in
        if line = "" || line.[0] = '*' then collect acc (lineno + 1) first rest
        else if first && not (is_card line) then begin
          state.title <- Some line;
          collect acc (lineno + 1) false rest
        end
        else begin
          let tokens = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
          let tokens = List.concat_map (String.split_on_char '\t') tokens in
          let tokens = List.filter (fun s -> s <> "") tokens in
          match tokens with
          | [] -> collect acc (lineno + 1) false rest
          | first_token :: _ -> (
              let directive = lowercase first_token in
              if directive = ".end" then Ok (List.rev acc)
              else if directive = ".model" then
                let* () = parse_model_card state lineno tokens in
                collect acc (lineno + 1) false rest
              else if String.length directive > 0 && directive.[0] = '.' then
                Error (Printf.sprintf "line %d: unsupported directive %s" lineno first_token)
              else collect ((lineno, tokens) :: acc) (lineno + 1) false rest)
        end)
  in
  let* element_cards = collect [] 1 true lines in
  let rec build = function
    | [] -> Ok ()
    | (lineno, tokens) :: rest ->
        let* () = parse_element state lineno tokens in
        build rest
  in
  let* () = build element_cards in
  match List.rev state.elements with
  | [] -> Error "no elements in the deck"
  | elements -> (
      match Circuit.make elements with
      | circuit ->
          let node_names = Hashtbl.fold (fun name index acc -> (name, index) :: acc) state.nodes [] in
          Ok { circuit; node_names = List.sort compare node_names; title = state.title }
      | exception Invalid_argument msg -> Error msg)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () -> parse (really_input_string channel (in_channel_length channel)))

let node t name =
  let key = lowercase name in
  if key = "0" || key = "gnd" then 0
  else
    match List.assoc_opt key t.node_names with
    | Some index -> index
    | None -> raise Not_found

(** SPICE-format netlist parsing.

    Accepts the classic card syntax so circuits can be described in ordinary
    [.sp] decks rather than built programmatically:

    {v
    * high-speed OTA testbench
    VDD vdd 0 DC 5
    VIN in 0 DC 2.5 AC 1
    R1 n1 n2 10k
    C1 out 0 10p
    IB 0 nb 20u
    G1 out 0 in 0 1m
    M1 d g s b NMOS W=10u L=1u
    .model NMOS NMOS (VTO=0.76 KP=100u LAMBDA=0.06 GAMMA=0.45 PHI=0.65)
    .end
    v}

    Element type is selected by the first letter of the name (R, C, V, I,
    G = VCCS, M = MOSFET), node names are arbitrary identifiers ([0], [gnd]
    and [GND] are ground), and values take engineering suffixes
    (f p n u m k meg g t).  A first line that does not begin with a card
    letter or [.] is taken as the deck title.  [.model] cards define MOS
    parameter sets (they may appear after the devices that use them); a
    MOSFET referring to an undefined model named [NMOS]/[PMOS] gets the
    built-in defaults. *)

type t = {
  circuit : Circuit.t;
  node_names : (string * int) list;  (** name → node index, ground omitted *)
  title : string option;  (** first line when it is not a card *)
}

val parse : string -> (t, string) result
(** Parse a whole deck.  Errors carry the line number. *)

val parse_file : string -> (t, string) result
(** {!parse} on a file's contents. *)

val node : t -> string -> int
(** Look up a node by name ([0]/[gnd]/[GND] return 0).
    Raises [Not_found]. *)

val parse_value : string -> float option
(** Engineering-notation number: ["10k"] is 1e4, ["2.5u"] is 2.5e-6,
    ["3meg"] is 3e6; a bare number passes through.  [None] when
    unparseable. *)

type node = int

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of { name : string; pos : node; neg : node; dc : float; ac : float }
  | Isource of { name : string; from_node : node; to_node : node; amps : float }
  | Vccs of {
      name : string;
      out_pos : node;
      out_neg : node;
      in_pos : node;
      in_neg : node;
      gm : float;
    }
  | Mosfet of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      bulk : node;
      params : Mos.params;
      w : float;
      l : float;
    }

type t = { elements : element list; num_nodes : int }

let element_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vccs { name; _ }
  | Mosfet { name; _ } -> name

let element_nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } -> [ n1; n2 ]
  | Vsource { pos; neg; _ } -> [ pos; neg ]
  | Isource { from_node; to_node; _ } -> [ from_node; to_node ]
  | Vccs { out_pos; out_neg; in_pos; in_neg; _ } -> [ out_pos; out_neg; in_pos; in_neg ]
  | Mosfet { drain; gate; source; bulk; _ } -> [ drain; gate; source; bulk ]

let validate_element e =
  let positive what v = if v <= 0. then invalid_arg (Printf.sprintf "Circuit.make: %s of %s must be positive" what (element_name e)) in
  let finite what v =
    if not (Float.is_finite v) then
      invalid_arg (Printf.sprintf "Circuit.make: %s of %s is not finite" what (element_name e))
  in
  (match e with
  | Resistor { ohms; _ } -> positive "resistance" ohms
  | Capacitor { farads; _ } -> positive "capacitance" farads
  | Vsource { dc; ac; _ } ->
      finite "dc value" dc;
      finite "ac value" ac
  | Isource { amps; _ } -> finite "current" amps
  | Vccs { gm; _ } -> finite "gm" gm
  | Mosfet { w; l; _ } ->
      positive "width" w;
      positive "length" l);
  List.iter
    (fun n -> if n < 0 then invalid_arg ("Circuit.make: negative node in " ^ element_name e))
    (element_nodes e)

let make elements =
  if elements = [] then invalid_arg "Circuit.make: empty netlist";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = element_name e in
      if Hashtbl.mem seen name then invalid_arg ("Circuit.make: duplicate element name " ^ name);
      Hashtbl.add seen name ();
      validate_element e)
    elements;
  let num_nodes =
    List.fold_left (fun acc e -> List.fold_left max acc (element_nodes e)) 0 elements
  in
  { elements; num_nodes }

let elements c = c.elements
let num_nodes c = c.num_nodes

let vsource_names c =
  List.filter_map (function Vsource { name; _ } -> Some name | _ -> None) c.elements

let vsource_index c name =
  let rec search i = function
    | [] -> raise Not_found
    | candidate :: rest -> if candidate = name then i else search (i + 1) rest
  in
  search 0 (vsource_names c)

let mosfets c = List.filter (function Mosfet _ -> true | _ -> false) c.elements

(** Small-signal AC analysis.

    Linearizes every MOSFET at a DC operating point (transconductance,
    output conductance, body transconductance, gate and junction
    capacitances), stamps the complex nodal admittance matrix at each
    frequency, and solves for the transfer function from one voltage source
    to one node.  Helper measurements extract the quantities the paper
    models: low-frequency gain, unity-gain frequency and phase margin. *)

type point = {
  freq_hz : float;
  response : Complex.t;  (** output node voltage per unit AC input *)
}

type sweep = point array

val log_frequencies : start_hz:float -> stop_hz:float -> points_per_decade:int -> float array
(** Logarithmically spaced frequency grid, inclusive of [start_hz]. *)

val transfer :
  circuit:Circuit.t ->
  dc:Dc.solution ->
  input:string ->
  output:int ->
  freqs:float array ->
  sweep
(** [transfer ~circuit ~dc ~input ~output ~freqs]: the AC response at node
    [output] when the voltage source named [input] drives a unit AC signal
    and all other sources are AC grounds.  Raises [Invalid_argument] when
    [input] is unknown; raises {!Caffeine_linalg.Decomp.Singular} if the
    admittance matrix is singular at some frequency. *)

val gain_db : sweep -> float array
val phase_deg_unwrapped : sweep -> float array
(** Phase in degrees, unwrapped to be continuous across the sweep. *)

val low_frequency_gain_db : sweep -> float
(** Gain magnitude at the first sweep point, in dB. *)

val unity_gain_frequency : sweep -> float option
(** First |H| = 1 crossing, interpolated in log-frequency/dB coordinates;
    [None] when the magnitude never crosses unity within the sweep. *)

val phase_margin_deg : sweep -> float option
(** [180° + (unwrapped phase at f_u − unwrapped phase at the first point)],
    the stability margin for unity-feedback around the DC-referenced phase;
    [None] when there is no unity crossing. *)

type integration =
  | Backward_euler
  | Trapezoidal

type waveform = {
  times : float array;
  voltages : float array array;
}

let node_waveform w node = Array.map (fun row -> row.(node)) w.voltages

type capacitor = { n1 : int; n2 : int; farads : float }

let capacitors_of circuit =
  List.filter_map
    (fun element ->
      match element with
      | Circuit.Capacitor { n1; n2; farads; _ } -> Some { n1; n2; farads }
      | Circuit.Resistor _ | Circuit.Vsource _ | Circuit.Isource _ | Circuit.Vccs _
      | Circuit.Mosfet _ -> None)
    (Circuit.elements circuit)

let simulate_stream ?(integration = Trapezoidal) ?stimulus ?initial ~circuit ~step ~duration
    ~on_step () =
  if step <= 0. || duration <= 0. then invalid_arg "Tran.simulate: step and duration must be positive";
  let vsource_value time =
    match stimulus with
    | None -> fun _ -> None
    | Some f -> fun name -> f name time
  in
  let operating_point =
    match initial with
    | Some solution -> Ok solution
    | None -> Dc.solve_with ~vsource_value:(vsource_value 0.) circuit
  in
  match operating_point with
  | Error msg -> Error ("transient: no operating point: " ^ msg)
  | Ok start ->
      let caps = capacitors_of circuit in
      let num_steps = int_of_float (ceil (duration /. step)) in
      let first = Array.copy start.Dc.voltages in
      on_step ~k:0 ~time:0. first;
      (* Per-capacitor branch current, needed by the trapezoidal companion;
         zero at the operating point. *)
      let cap_currents = Array.make (List.length caps) 0. in
      let failed = ref None in
      let previous = ref first in
      let k = ref 1 in
      while !failed = None && !k <= num_steps do
        let prev = !previous in
        (* The very first step always uses backward Euler (standard SPICE
           practice after a breakpoint): it needs no capacitor-current
           history, which is unknown or discontinuous at t = 0. *)
        let integration = if !k = 1 then Backward_euler else integration in
        let companion ~add_g ~add_b =
          List.iteri
            (fun index { n1; n2; farads } ->
              let v_prev = prev.(n1) -. prev.(n2) in
              match integration with
              | Backward_euler ->
                  let geq = farads /. step in
                  add_g n1 n1 geq;
                  add_g n2 n2 geq;
                  add_g n1 n2 (-.geq);
                  add_g n2 n1 (-.geq);
                  add_b n1 (geq *. v_prev);
                  add_b n2 (-.(geq *. v_prev))
              | Trapezoidal ->
                  let geq = 2. *. farads /. step in
                  let ieq = (geq *. v_prev) +. cap_currents.(index) in
                  add_g n1 n1 geq;
                  add_g n2 n2 geq;
                  add_g n1 n2 (-.geq);
                  add_g n2 n1 (-.geq);
                  add_b n1 ieq;
                  add_b n2 (-.ieq))
            caps
        in
        let time = float_of_int !k *. step in
        (match
           Dc.solve_with ~initial:prev ~vsource_value:(vsource_value time) ~extra_stamp:companion
             circuit
         with
        | Error msg -> failed := Some (Printf.sprintf "t = %g s: %s" time msg)
        | Ok solution ->
            let fresh = solution.Dc.voltages in
            List.iteri
              (fun index { n1; n2; farads } ->
                let v_new = fresh.(n1) -. fresh.(n2) in
                let v_prev = prev.(n1) -. prev.(n2) in
                let current =
                  match integration with
                  | Backward_euler -> farads /. step *. (v_new -. v_prev)
                  | Trapezoidal ->
                      (2. *. farads /. step *. (v_new -. v_prev)) -. cap_currents.(index)
                in
                cap_currents.(index) <- current)
              caps;
            on_step ~k:!k ~time fresh;
            previous := fresh;
            incr k);
        ()
      done;
      (match !failed with Some msg -> Error msg | None -> Ok num_steps)

let simulate ?integration ?stimulus ?initial ~circuit ~step ~duration () =
  if step <= 0. || duration <= 0. then invalid_arg "Tran.simulate: step and duration must be positive";
  let num_steps = int_of_float (ceil (duration /. step)) in
  let times = Array.init (num_steps + 1) (fun k -> float_of_int k *. step) in
  let rows = Array.make (num_steps + 1) [||] in
  match
    simulate_stream ?integration ?stimulus ?initial ~circuit ~step ~duration
      ~on_step:(fun ~k ~time:_ voltages -> rows.(k) <- Array.copy voltages)
      ()
  with
  | Error _ as e -> e
  | Ok (_ : int) -> Ok { times; voltages = rows }

let slew_rates waveform ~node =
  let trace = node_waveform waveform node in
  let n = Array.length trace in
  if n < 2 then invalid_arg "Tran.slew_rates: need at least two time points";
  let rising = ref Float.neg_infinity and falling = ref Float.infinity in
  for k = 1 to n - 1 do
    let dt = waveform.times.(k) -. waveform.times.(k - 1) in
    if dt > 0. then begin
      let rate = (trace.(k) -. trace.(k - 1)) /. dt in
      rising := Float.max !rising rate;
      falling := Float.min !falling rate
    end
  done;
  (!rising, !falling)

let settling_time waveform ~node ~target ~tolerance =
  let trace = node_waveform waveform node in
  let n = Array.length trace in
  let rec last_violation k best =
    if k < 0 then best
    else if Float.abs (trace.(k) -. target) > tolerance then k
    else last_violation (k - 1) best
  in
  let violation = last_violation (n - 1) (-1) in
  if violation < 0 then Some waveform.times.(0)
  else if violation = n - 1 then None
  else Some waveform.times.(violation + 1)

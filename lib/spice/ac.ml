module Cmatrix = Caffeine_linalg.Cmatrix

type point = { freq_hz : float; response : Complex.t }

type sweep = point array

let log_frequencies ~start_hz ~stop_hz ~points_per_decade =
  if start_hz <= 0. || stop_hz <= start_hz then invalid_arg "Ac.log_frequencies: bad range";
  if points_per_decade < 1 then invalid_arg "Ac.log_frequencies: need at least 1 point/decade";
  let decades = log10 (stop_hz /. start_hz) in
  let count = int_of_float (ceil (decades *. float_of_int points_per_decade)) + 1 in
  Array.init count (fun i ->
      start_hz *. (10. ** (float_of_int i /. float_of_int points_per_decade)))

(* Linearized stamps for one frequency.  Same unknown layout as Dc. *)
let stamp_ac circuit dc omega =
  let n = Circuit.num_nodes circuit in
  let sources = Circuit.vsource_names circuit in
  let m = List.length sources in
  let size = n + m in
  let y = Cmatrix.create (max size 1) (max size 1) in
  let rhs = Array.make (max size 1) Complex.zero in
  let add_y row col value = if row > 0 && col > 0 then Cmatrix.add_entry y (row - 1) (col - 1) value in
  let real g = { Complex.re = g; im = 0. } in
  let imaginary c = { Complex.re = 0.; im = c } in
  let add_conductance n1 n2 g =
    add_y n1 n1 (real g);
    add_y n2 n2 (real g);
    add_y n1 n2 (real (-.g));
    add_y n2 n1 (real (-.g))
  in
  let add_capacitance n1 n2 c =
    let admittance = omega *. c in
    add_y n1 n1 (imaginary admittance);
    add_y n2 n2 (imaginary admittance);
    add_y n1 n2 (imaginary (-.admittance));
    add_y n2 n1 (imaginary (-.admittance))
  in
  let add_vccs out_pos out_neg in_pos in_neg gm =
    add_y out_pos in_pos (real gm);
    add_y out_pos in_neg (real (-.gm));
    add_y out_neg in_pos (real (-.gm));
    add_y out_neg in_neg (real gm)
  in
  let branch = ref 0 in
  List.iter
    (fun element ->
      match element with
      | Circuit.Resistor { n1; n2; ohms; _ } -> add_conductance n1 n2 (1. /. ohms)
      | Circuit.Capacitor { n1; n2; farads; _ } -> add_capacitance n1 n2 farads
      | Circuit.Vsource { pos; neg; ac; _ } ->
          let k = n + !branch in
          if pos > 0 then begin
            Cmatrix.add_entry y (pos - 1) k Complex.one;
            Cmatrix.add_entry y k (pos - 1) Complex.one
          end;
          if neg > 0 then begin
            Cmatrix.add_entry y (neg - 1) k { Complex.re = -1.; im = 0. };
            Cmatrix.add_entry y k (neg - 1) { Complex.re = -1.; im = 0. }
          end;
          rhs.(k) <- { Complex.re = ac; im = 0. };
          incr branch
      | Circuit.Isource _ -> ()
      | Circuit.Vccs { out_pos; out_neg; in_pos; in_neg; gm; _ } ->
          add_vccs out_pos out_neg in_pos in_neg gm
      | Circuit.Mosfet { name; drain; gate; source; bulk; params; w; l } ->
          let bias = Dc.mos_bias dc name in
          let op = bias.Dc.op in
          add_vccs drain source gate source op.Mos.gm;
          add_conductance drain source op.Mos.gds;
          add_vccs drain source bulk source op.Mos.gmb;
          add_capacitance gate source (Mos.cgs params ~w ~l);
          add_capacitance gate drain (Mos.cgd params ~w);
          add_capacitance drain bulk (Mos.cdb params ~w);
          add_capacitance source bulk (Mos.cdb params ~w))
    (Circuit.elements circuit);
  (y, rhs, size)

let transfer ~circuit ~dc ~input ~output ~freqs =
  let input_index =
    match Circuit.vsource_index circuit input with
    | index -> index
    | exception Not_found -> invalid_arg ("Ac.transfer: unknown voltage source " ^ input)
  in
  if output <= 0 || output > Circuit.num_nodes circuit then
    invalid_arg "Ac.transfer: output node out of range";
  (* Drive the chosen source with unit AC; silence the others. *)
  let adjusted =
    Circuit.make
      (List.map
         (fun element ->
           match element with
           | Circuit.Vsource ({ name; _ } as v) ->
               Circuit.Vsource { v with ac = (if Circuit.vsource_index circuit name = input_index then 1. else 0.) }
           | Circuit.Resistor _ | Circuit.Capacitor _ | Circuit.Isource _ | Circuit.Vccs _
           | Circuit.Mosfet _ -> element)
         (Circuit.elements circuit))
  in
  Array.map
    (fun freq_hz ->
      let omega = 2. *. Float.pi *. freq_hz in
      let y, rhs, _ = stamp_ac adjusted dc omega in
      let solution = Cmatrix.solve y rhs in
      { freq_hz; response = solution.(output - 1) })
    freqs

let gain_db sweep =
  Array.map (fun p -> 20. *. log10 (Float.max (Complex.norm p.response) 1e-300)) sweep

let phase_deg_unwrapped sweep =
  let n = Array.length sweep in
  let out = Array.make n 0. in
  let previous = ref 0. in
  for i = 0 to n - 1 do
    let raw = Complex.arg sweep.(i).response in
    let unwrapped =
      if i = 0 then raw
      else begin
        (* Shift by multiples of 2π to stay within π of the previous point. *)
        let delta = raw -. !previous in
        let wraps = Float.round (delta /. (2. *. Float.pi)) in
        raw -. (wraps *. 2. *. Float.pi)
      end
    in
    previous := unwrapped;
    out.(i) <- unwrapped *. 180. /. Float.pi
  done;
  out

let low_frequency_gain_db sweep =
  if Array.length sweep = 0 then invalid_arg "Ac.low_frequency_gain_db: empty sweep";
  (gain_db sweep).(0)

let unity_gain_frequency sweep =
  let db = gain_db sweep in
  let n = Array.length sweep in
  let rec scan i =
    if i >= n then None
    else if db.(i) <= 0. then
      if i = 0 then Some sweep.(0).freq_hz
      else begin
        (* Interpolate the 0 dB crossing in (log f, dB) coordinates. *)
        let f1 = sweep.(i - 1).freq_hz and f2 = sweep.(i).freq_hz in
        let g1 = db.(i - 1) and g2 = db.(i) in
        let t = if g1 = g2 then 0. else g1 /. (g1 -. g2) in
        Some (10. ** (log10 f1 +. (t *. (log10 f2 -. log10 f1))))
      end
    else scan (i + 1)
  in
  scan 0

let phase_margin_deg sweep =
  match unity_gain_frequency sweep with
  | None -> None
  | Some fu ->
      let phases = phase_deg_unwrapped sweep in
      let n = Array.length sweep in
      (* Interpolate the unwrapped phase at fu. *)
      let rec locate i =
        if i >= n then phases.(n - 1)
        else if sweep.(i).freq_hz >= fu then
          if i = 0 then phases.(0)
          else begin
            let f1 = log10 sweep.(i - 1).freq_hz and f2 = log10 sweep.(i).freq_hz in
            let t = if f1 = f2 then 0. else (log10 fu -. f1) /. (f2 -. f1) in
            phases.(i - 1) +. (t *. (phases.(i) -. phases.(i - 1)))
          end
        else locate (i + 1)
      in
      let phase_at_fu = locate 0 in
      Some (180. +. (phase_at_fu -. phases.(0)))

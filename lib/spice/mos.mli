(** Level-1 (square-law) MOSFET model with channel-length modulation and
    body effect — the classic hand-analysis model, adequate for the 0.7 µm
    technology of the paper's test circuit.

    Conventions: for NMOS, [ids] flows drain→source and is non-negative in
    normal operation; the PMOS equations are obtained by sign reflection.
    All voltages in volts, currents in amperes, dimensions in meters. *)

type polarity =
  | Nmos
  | Pmos

type params = {
  polarity : polarity;
  vth0 : float;  (** zero-bias threshold; positive for NMOS, negative for PMOS *)
  kp : float;  (** transconductance parameter µCox (A/V²) *)
  lambda : float;  (** channel-length modulation (1/V) *)
  gamma : float;  (** body-effect coefficient (V^0.5) *)
  phi : float;  (** surface potential (V) *)
  cox : float;  (** gate oxide capacitance per area (F/m²) *)
  cov : float;  (** gate-drain/source overlap capacitance per width (F/m) *)
  cj : float;  (** junction capacitance per area of drain/source (F/m²) *)
}

val default_nmos : params
(** Representative 0.7 µm NMOS: vth0 = 0.76 V (the paper's technology). *)

val default_pmos : params
(** Representative 0.7 µm PMOS: vth0 = −0.75 V. *)

type operating_point = {
  ids : float;  (** drain current, drain→source (source→drain for PMOS) *)
  gm : float;  (** ∂ids/∂vgs *)
  gds : float;  (** ∂ids/∂vds *)
  gmb : float;  (** ∂ids/∂vbs *)
  region : [ `Cutoff | `Triode | `Saturation ];
}

val evaluate : params -> w:float -> l:float -> vgs:float -> vds:float -> vbs:float -> operating_point
(** Large-signal current and small-signal conductances at the given bias.
    Handles source/drain reflection ([vds < 0] for NMOS) and includes a
    tiny [gmin] leakage so Newton iterations never see an exactly-singular
    Jacobian. *)

val size_for_current :
  params -> id:float -> vov:float -> l:float -> float
(** [size_for_current p ~id ~vov ~l] is the width [w] such that the device in
    saturation with overdrive [vov] carries drain current [id] — the inverse
    square law used by the operating-point-driven formulation (currents and
    drive voltages as design variables, device sizes derived).  Requires
    [id > 0], [vov > 0]. *)

val saturation_gm : id:float -> vov:float -> float
(** [2·id / vov], the square-law transconductance identity. *)

val saturation_gds : params -> id:float -> float
(** [λ·id], the square-law output conductance. *)

val cgs : params -> w:float -> l:float -> float
(** Gate-source capacitance in saturation: [2/3·w·l·cox + cov·w]. *)

val cgd : params -> w:float -> float
(** Gate-drain overlap capacitance: [cov·w]. *)

val cdb : params -> w:float -> float
(** Drain-bulk junction capacitance (fixed-depth drain diffusion). *)

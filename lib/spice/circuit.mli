(** Circuit netlists.

    Nodes are non-negative integers with node [0] as ground.  A circuit is an
    immutable list of elements; {!make} validates connectivity and computes
    the node count.  Sign conventions follow SPICE:

    - a voltage source's branch current flows from the [pos] node through the
      source to the [neg] node;
    - a current source drives [amps] from node [from_node] through itself
      into node [to_node];
    - a VCCS drives [gm·(v in_pos − v in_neg)] from [out_pos] through itself
      into [out_neg]. *)

type node = int

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of { name : string; pos : node; neg : node; dc : float; ac : float }
  | Isource of { name : string; from_node : node; to_node : node; amps : float }
  | Vccs of {
      name : string;
      out_pos : node;
      out_neg : node;
      in_pos : node;
      in_neg : node;
      gm : float;
    }
  | Mosfet of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      bulk : node;
      params : Mos.params;
      w : float;
      l : float;
    }

type t

val make : element list -> t
(** Validates: non-empty, unique element names, non-negative node indices,
    positive resistor/capacitor values and device dimensions.  Raises
    [Invalid_argument] on violations. *)

val elements : t -> element list

val num_nodes : t -> int
(** Highest node index (= number of non-ground nodes, assuming dense
    numbering). *)

val vsource_names : t -> string list
(** Voltage source names in element order (their branch currents extend the
    MNA unknown vector in this order). *)

val vsource_index : t -> string -> int
(** Position of a voltage source in {!vsource_names}.
    Raises [Not_found] for an unknown name. *)

val element_name : element -> string

val mosfets : t -> element list
(** The MOSFET elements, in element order. *)

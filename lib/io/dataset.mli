(** Column-major sample datasets for batch evaluation.

    The search, SAG pruning, insight queries, CLI and bench all evaluate
    basis functions over the same sample matrices.  This type stores those
    matrices struct-of-arrays (one contiguous column per design variable),
    carries the variable names, and memoizes per-basis value columns keyed
    by the full structural hash ({!Caffeine_expr.Compiled.Key}) — so a
    basis shared between individuals, or revisited by SAG after the
    search, is compiled and evaluated on a given dataset exactly once.

    Datasets are safe to evaluate from multiple domains concurrently (the
    parallel search evaluates NSGA-II candidates and whole islands against
    one shared dataset): the column cache is sharded behind per-shard
    mutexes and the evaluation scratch buffers are domain-local.  Column
    values are pure functions of (basis, data), so concurrency never
    changes a returned column — a racing duplicate evaluation is only
    wasted work.  The cache is bounded ({!set_cache_limit}); overflowing
    shards are dropped wholesale and simply re-evaluate on the next miss. *)

module Expr = Caffeine_expr.Expr
module Compiled = Caffeine_expr.Compiled

type t

val of_columns : ?var_names:string array -> float array array -> t
(** [of_columns columns] with [columns.(v).(i)] = variable [v] at sample
    [i].  Columns must be non-empty and of equal length; the arrays are
    owned by the dataset afterwards (not copied).  Default names are
    [x0, x1, ...].  Raises [Invalid_argument] on width/name mismatch. *)

val of_rows : ?var_names:string array -> float array array -> t
(** Transpose row-major design points (the DOE / simulator layout) into a
    dataset.  Rows must be non-empty and width-consistent. *)

val of_table : ?exclude:string list -> Csv.table -> t
(** Every CSV column whose name is not excluded becomes a design variable,
    in header order — the direct CSV-to-dataset path used by the CLI. *)

val n_samples : t -> int
val dims : t -> int
val var_names : t -> string array

val column : t -> int -> float array
(** The stored column for one variable — shared, do not mutate. *)

val point : t -> int -> float array
(** A fresh row: all variables at one sample. *)

val rows : t -> float array array
(** Fresh row-major copy (for row-oriented consumers, e.g. the posynomial
    baseline). *)

val split : t -> at:int -> t * t
(** Train/test split at a sample index: samples [0..at-1] and [at..n-1],
    each with fresh caches.  Raises [Invalid_argument] unless
    [0 < at < n_samples]. *)

val eval_column : Compiled.t -> t -> float array
(** Evaluate a compiled basis over every sample (fresh result column, no
    memoization); the tape's scratch buffers are reused across calls on
    the same dataset. *)

val basis_column : t -> Expr.basis -> float array
(** Memoized: compile the basis (first time only) and evaluate it over the
    dataset.  Subsequent calls with a structurally equal basis return the
    cached column — shared, do not mutate.  Agrees with
    {!Expr.eval_basis} on every sample. *)

val cached_columns : t -> int
(** Number of distinct bases memoized so far (cache introspection). *)

val clear_cache : t -> unit
(** Drop every memoized column.  Useful between independent experiments on
    one dataset (e.g. benchmark repetitions) and after a long run whose
    cache is no longer worth its memory. *)

val cache_limit : t -> int
(** Current bound on the number of memoized columns (default 32768). *)

val set_cache_limit : t -> int -> unit
(** Cap the memo table at [limit] columns (must be positive).  The cache
    grows per-basis across generations and restarts; with parallel islands
    multiplying the churn this bound keeps memory flat.  Exceeding shards
    are reset; subsequent lookups re-evaluate and re-fill. *)

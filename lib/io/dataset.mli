(** Column-major sample datasets for batch evaluation.

    The search, SAG pruning, insight queries, CLI and bench all evaluate
    basis functions over the same sample matrices.  This type stores those
    matrices struct-of-arrays (one contiguous column per design variable),
    carries the variable names, and memoizes per-basis value columns keyed
    by the full structural hash ({!Caffeine_expr.Compiled.Key}) — so a
    basis shared between individuals, or revisited by SAG after the
    search, is compiled and evaluated on a given dataset exactly once.

    Datasets are safe to evaluate from multiple domains concurrently (the
    parallel search evaluates NSGA-II candidates and whole islands against
    one shared dataset): the column cache is sharded behind per-shard
    mutexes and the evaluation scratch buffers are domain-local.  Column
    values are pure functions of (basis, data), so concurrency never
    changes a returned column — a racing duplicate evaluation is only
    wasted work.  The cache is bounded ({!set_cache_limit}); overflowing
    shards are dropped wholesale and simply re-evaluate on the next miss.

    On top of the column cache sits a bounded, sharded dot-product cache
    feeding the incremental regression engine: {!dot} memoizes
    [⟨col_i, col_j⟩] under an unordered structural-hash pair key, and
    {!dot_target} memoizes [⟨col_i, y⟩] per registered target array, so
    the Gram matrix of an individual whose bases recur across the
    population is assembled from cached entries.  Both caches expose
    hit/miss/eviction counters through {!stats}. *)

module Expr = Caffeine_expr.Expr
module Compiled = Caffeine_expr.Compiled
module Fused = Caffeine_expr.Fused

type t

val of_columns : ?var_names:string array -> float array array -> t
(** [of_columns columns] with [columns.(v).(i)] = variable [v] at sample
    [i].  Columns must be non-empty and of equal length; the arrays are
    owned by the dataset afterwards (not copied).  Default names are
    [x0, x1, ...].  Raises [Invalid_argument] on width/name mismatch. *)

val of_rows : ?var_names:string array -> float array array -> t
(** Transpose row-major design points (the DOE / simulator layout) into a
    dataset.  Rows must be non-empty and width-consistent. *)

val of_table : ?exclude:string list -> Csv.table -> t
(** Every CSV column whose name is not excluded becomes a design variable,
    in header order — the direct CSV-to-dataset path used by the CLI.
    Raises [Invalid_argument] on a table with no data rows (header
    only). *)

val chunked_of_columns : ?var_names:string array -> chunk_rows:int -> float array array -> t
(** The same data as {!of_columns}, but served through the chunked
    (streaming) storage path in [chunk_rows]-row slices — an in-memory
    stand-in for a {!Colstore} file, used to pin streaming ≡ dense
    equivalence in tests without touching disk.  All evaluation goes
    through the chunk source: columns are never cached, dots accumulate
    chunk by chunk (bit-identical to the dense sequential products — see
    {!gram}). *)

val of_colstore : ?exclude:string list -> Colstore.t -> t
(** A streaming dataset over an open column store: every store variable
    whose name is not excluded becomes a design variable, in store order.
    The dataset keeps the store handle alive inside its chunk source —
    target columns should be pulled separately with {!Colstore.column}.
    Raises [Invalid_argument] when every column is excluded or the store
    is empty. *)

val n_samples : t -> int
val dims : t -> int
val var_names : t -> string array

val is_chunked : t -> bool
(** Whether this dataset streams from a chunk source (out-of-core path)
    rather than holding resident columns. *)

val chunk_rows : t -> int
(** Rows per chunk of the streaming source; [n_samples] for dense
    storage (one whole-dataset "chunk"). *)

val column : t -> int -> float array
(** The stored column for one variable — shared, do not mutate.  On
    chunked storage the column is materialized fresh on every call
    (checkpoint fingerprints are the intended consumer). *)

val point : t -> int -> float array
(** A fresh row: all variables at one sample. *)

val rows : t -> float array array
(** Fresh row-major copy (for row-oriented consumers, e.g. the posynomial
    baseline).  Raises [Invalid_argument] on chunked storage — an
    out-of-core dataset has no in-memory row matrix. *)

val split : t -> at:int -> t * t
(** Train/test split at a sample index: samples [0..at-1] and [at..n-1],
    each with fresh caches.  Raises [Invalid_argument] unless
    [0 < at < n_samples], or on chunked storage (split the source file
    instead). *)

val eval_column : Compiled.t -> t -> float array
(** Evaluate a compiled basis over every sample (fresh result column, no
    memoization); the tape's scratch buffers are reused across calls on
    the same dataset. *)

val basis_column : t -> Expr.basis -> float array
(** Memoized: compile the basis (first time only) and evaluate it over the
    dataset.  Subsequent calls with a structurally equal basis return the
    cached column — shared, do not mutate.  Agrees with
    {!Expr.eval_basis} on every sample. *)

val probe : t -> Expr.basis -> indices:int array -> float array
(** [probe data basis ~indices] is the basis value at the selected sample
    indices — the raw material of behavioral fingerprints.  Reuses a
    memoized column when one is present and otherwise evaluates the tape
    at the probe points only, {e without} filling the column cache; both
    paths return the same IEEE words, so probe outputs do not depend on
    cache state ({!clear_cache} mid-run included). *)

type fuse_stats = {
  fused_bases : int;  (** distinct bases that had no memoized column *)
  nodes_in : int;  (** DAG nodes before cross-tree sharing *)
  nodes_out : int;  (** distinct DAG nodes actually evaluated *)
}

val warm_columns : t -> Expr.basis array -> fuse_stats
(** [warm_columns data bases] fills the column cache for every basis that
    has no memoized column yet, by hash-consing all of the missing bases
    into one {!Caffeine_expr.Fused} DAG and evaluating shared subtrees
    exactly once with tiled kernels.  Each installed column is
    bit-identical to what {!basis_column} would have computed, so warming
    is purely a throughput optimization: subsequent {!basis_column} /
    {!dot} / {!probe} calls return the same IEEE words whether or not a
    batch was warmed (and under the same bounded-shard eviction policy).
    Bumps the [fused.nodes_in] / [fused.nodes_out] counters and the
    [fused.cse_ratio] gauge; the returned stats cover this call only. *)

val probe_many : t -> Expr.basis array -> indices:int array -> float array array
(** [probe_many data bases ~indices] is [probe] for every basis at once,
    through one fused DAG — row [k] equals [probe data bases.(k) ~indices]
    bit for bit, in every cache state.  Used by behavioral fingerprinting
    so probing an individual evaluates subtrees shared between its bases
    once.  Never fills the column cache. *)

val dot : t -> Expr.basis -> Expr.basis -> float
(** [dot data b1 b2] is the dot product of the two bases' value columns
    over every sample, memoized under an unordered pair key:
    [dot data a b] and [dot data b a] share one cache entry.  Agrees with
    computing the product from {!basis_column} directly. *)

val dot_target : t -> Expr.basis -> targets:float array -> float
(** [dot_target data basis ~targets] is [⟨basis column, targets⟩],
    memoized per (basis, target array).  Target arrays are identified
    physically ([==]) in a small registry — pass the same array across
    calls, as the search loop does; a fresh array per call would grow the
    registry without reuse.  Raises [Invalid_argument] when [targets]
    does not have one entry per sample. *)

val column_sum : t -> Expr.basis -> float
(** [Σ_i col.(i)] of the basis column — the border row of the regression
    engine's Gram matrix ([⟨col, 1⟩], cached like any target product). *)

type gram = {
  dots : float array array;  (** [k x k] symmetric: [⟨colᵢ, colⱼ⟩] *)
  dot_ys : float array;  (** [⟨colᵢ, y⟩] *)
  col_sums : float array;  (** [⟨colᵢ, 1⟩] *)
  finite_bases : bool array;  (** whether column [i] is finite everywhere *)
}

val gram : t -> Expr.basis array -> targets:float array -> gram
(** Every product {!Caffeine_regress.Linfit.fit_gram} needs for one
    individual, in one batch.  On chunked storage this is the streaming
    workhorse: entries already memoized in the dot cache are reused
    without touching the data; the remaining entries are accumulated by
    {!Caffeine_regress.Gram_stream} in a single pass over the chunks
    (each scalar carried across chunk boundaries in row order, hence
    bit-identical to the dense sequential products), then installed into
    the caches.  Per-basis finiteness is screened in the same pass and
    cached separately, so a fully-warm cache means no data pass at all.
    On dense storage the entries come from {!dot} / {!dot_target} /
    {!column_sum} directly.  Raises [Invalid_argument] when [targets]
    does not have one entry per sample. *)

val iter_basis_chunks :
  t ->
  Expr.basis array ->
  f:(row0:int -> len:int -> float array array -> unit) ->
  unit
(** Visit the bases' value columns as row chunks in order — the
    [iter] argument of {!Caffeine_regress.Linfit.fit_stream}.
    [columns.(j)] holds basis [j]'s values for rows [row0 .. row0+len-1]
    in its first [len] cells; buffers are only valid during the callback.
    Chunked storage evaluates all bases through one fused tape per chunk
    (never materializing a full column); dense storage makes a single
    whole-dataset call from memoized columns.  Raises [Invalid_argument]
    on an empty basis array. *)

val cached_columns : t -> int
(** Number of distinct bases memoized so far (cache introspection). *)

type cache_stats = {
  columns_cached : int;  (** basis columns currently memoized *)
  column_hits : int;
  column_misses : int;
  column_evictions : int;  (** entries dropped by shard overflow *)
  dots_cached : int;  (** pair + target products currently memoized *)
  dot_hits : int;
  dot_misses : int;
  dot_evictions : int;
}

val stats : t -> cache_stats
(** Lifetime counters of both caches (since creation or the last process
    start — {!clear_cache} drops entries but keeps counters), for cache
    effectiveness reporting ([fit --verbose], perf PRs). *)

val publish_metrics : t -> unit
(** Snapshot {!stats} into the {!Caffeine_obs.Metrics.default} registry as
    gauges [dataset.columns_cached], [dataset.column_hits],
    [dataset.column_misses], [dataset.column_evictions],
    [dataset.dots_cached], [dataset.dot_hits], [dataset.dot_misses] and
    [dataset.dot_evictions] (each call overwrites the previous snapshot).
    The values depend on evaluation-order races between pool domains, so
    they are reporting data, not part of the determinism contract. *)

val clear_cache : t -> unit
(** Drop every memoized column and dot product.  Useful between
    independent experiments on one dataset (e.g. benchmark repetitions)
    and after a long run whose cache is no longer worth its memory. *)

val cache_limit : t -> int
(** Current bound on the number of memoized columns (default 32768). *)

val set_cache_limit : t -> int -> unit
(** Cap the memo table at [limit] columns (must be positive).  The cache
    grows per-basis across generations and restarts; with parallel islands
    multiplying the churn this bound keeps memory flat.  Exceeding shards
    are reset; subsequent lookups re-evaluate and re-fill. *)

val dot_cache_limit : t -> int
(** Current bound on the number of memoized dot products (default
    131072 — products are single floats, far cheaper than columns). *)

val set_dot_cache_limit : t -> int -> unit
(** Cap the dot-product cache at [limit] entries (must be positive), with
    the same wholesale per-shard eviction policy as the column cache. *)

(** Chunked on-disk column store for out-of-core datasets.

    A store holds [n] rows of [dims] named variables as fixed-size row
    chunks; within a chunk each variable's values are contiguous
    little-endian float64, so a chunk loads with one sequential read per
    variable and evaluates like a short in-memory dataset.  The format is
    self-describing (magic ["CAFSTOR1"], header with names and geometry)
    and the data region is page-aligned so it can optionally be mmap'd.

    See DESIGN.md §7j for how [Dataset] drives this during streaming
    Gram accumulation. *)

module Writer : sig
  type t

  val create : path:string -> var_names:string array -> ?chunk_rows:int -> unit -> t
  (** Start a store at [path].  [chunk_rows] defaults to 65536 (512 KiB
      per variable per chunk).  Raises [Invalid_argument] on empty
      [var_names], an empty name, or [chunk_rows < 1]. *)

  val append_row : t -> float array -> unit
  (** Append one row ([dims] values, variable order as [var_names]).
      Buffers at most one chunk in memory. *)

  val close : t -> unit
  (** Flush the partial chunk and patch the header's row count.  The
      store is unreadable until closed.  Idempotent. *)
end

type t

val openfile : ?mmap:bool -> string -> t
(** Open a store for reading.  With [mmap:true] the data region is
    memory-mapped read-only (shared, page-cache backed); the default is
    buffered channel reads, which keep resident memory bounded by one
    chunk.  Buffered readers keep one channel per (process, domain) so
    domains and forked workers never share a file offset.  Raises
    [Invalid_argument] on a malformed file. *)

val var_names : t -> string array
val n_rows : t -> int
val chunk_rows : t -> int

val iter_chunks :
  t -> f:(row0:int -> len:int -> float array array -> unit) -> unit
(** Visit every chunk in row order.  [columns.(d)] holds variable [d]'s
    values for rows [row0 .. row0+len-1] in its first [len] cells.  The
    arrays are reused across chunks (allocated once per pass at
    [chunk_rows] length) — copy anything that must outlive the call. *)

val gather : t -> indices:int array -> float array array
(** [gather t ~indices] returns [dims] fresh arrays with the variables'
    values at the given rows, in index order — the random-access path for
    probe evaluation.  Raises [Invalid_argument] on an out-of-range row. *)

val column : t -> int -> float array
(** Materialize one variable as a fresh [n_rows] array. *)

val close : t -> unit
(** Close this (process, domain)'s buffered channel, if any.  Mapped
    regions are unmapped by the GC. *)

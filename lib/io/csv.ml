type table = {
  header : string array;
  rows : float array array;
}

let write ~path table =
  let width = Array.length table.header in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Csv.write: row width mismatch")
    table.rows;
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel (String.concat "," (Array.to_list table.header));
      output_char channel '\n';
      Array.iter
        (fun row ->
          let cells = Array.to_list (Array.map (fun v -> Printf.sprintf "%.17g" v) row) in
          output_string channel (String.concat "," cells);
          output_char channel '\n')
        table.rows)

let read ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () ->
          let lines = ref [] in
          let lineno = ref 0 in
          (try
             while true do
               let line = input_line channel in
               incr lineno;
               lines := (!lineno, line) :: !lines
             done
           with End_of_file -> ());
          (* Blank lines are skipped, but every kept line remembers its
             position in the file, so error messages point at the real line
             even when blank lines precede it. *)
          let lines = List.filter (fun (_, line) -> String.trim line <> "") (List.rev !lines) in
          match lines with
          | [] -> Error "empty file"
          | [ (_, _) ] -> Error "no data rows: the file contains only a header"
          | (_, header_line) :: data_lines ->
              let header =
                Array.of_list (List.map String.trim (String.split_on_char ',' header_line))
              in
              let width = Array.length header in
              let parse_row lineno line =
                let cells = String.split_on_char ',' line in
                if List.length cells <> width then
                  Error (Printf.sprintf "line %d: expected %d cells, found %d" lineno width
                           (List.length cells))
                else
                  let values = Array.make width 0. in
                  let failed = ref None in
                  List.iteri
                    (fun i cell ->
                      match float_of_string_opt (String.trim cell) with
                      | Some v -> values.(i) <- v
                      | None ->
                          if !failed = None then
                            failed := Some (Printf.sprintf "line %d: bad number %S" lineno cell))
                    cells;
                  match !failed with Some msg -> Error msg | None -> Ok values
              in
              let rec parse_all acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | (lineno, line) :: rest -> (
                    match parse_row lineno line with
                    | Ok row -> parse_all (row :: acc) rest
                    | Error _ as e -> e)
              in
              (match parse_all [] data_lines with
              | Ok rows -> Ok { header; rows }
              | Error msg -> Error msg))

let column_index table name =
  let rec search i =
    if i >= Array.length table.header then raise Not_found
    else if table.header.(i) = name then i
    else search (i + 1)
  in
  search 0

let column table name =
  let index = column_index table name in
  Array.map (fun row -> row.(index)) table.rows

let columns_except table excluded =
  let keep = ref [] in
  Array.iteri
    (fun i name -> if not (List.mem name excluded) then keep := i :: !keep)
    table.header;
  let indices = Array.of_list (List.rev !keep) in
  let names = Array.map (fun i -> table.header.(i)) indices in
  let rows = Array.map (fun row -> Array.map (fun i -> row.(i)) indices) table.rows in
  (names, rows)

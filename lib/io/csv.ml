type table = {
  header : string array;
  rows : float array array;
}

let write ~path table =
  let width = Array.length table.header in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Csv.write: row width mismatch")
    table.rows;
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel (String.concat "," (Array.to_list table.header));
      output_char channel '\n';
      Array.iter
        (fun row ->
          let cells = Array.to_list (Array.map (fun v -> Printf.sprintf "%.17g" v) row) in
          output_string channel (String.concat "," cells);
          output_char channel '\n')
        table.rows)

(* Files written on Windows (or passed through tools that normalize line
   endings) terminate lines with "\r\n"; [input_line] only strips the
   '\n', so every last cell would otherwise carry a trailing '\r' into
   number parsing and error messages. *)
let strip_cr line =
  let len = String.length line in
  if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line

let check_duplicate_header header =
  let seen = Hashtbl.create (Array.length header) in
  let duplicate = ref None in
  Array.iteri
    (fun i name ->
      if !duplicate = None then
        match Hashtbl.find_opt seen name with
        | Some first ->
            (* Columns are bound by name downstream (--target, exclusion
               lists); a duplicate would silently resolve to the first
               occurrence and bind the wrong data. *)
            duplicate :=
              Some
                (Printf.sprintf "duplicate column name %S (columns %d and %d)" name (first + 1)
                   (i + 1))
        | None -> Hashtbl.add seen name i)
    header;
  !duplicate

let parse_row ~width lineno line =
  let cells = String.split_on_char ',' line in
  if List.length cells <> width then
    Error
      (Printf.sprintf "line %d: expected %d cells, found %d" lineno width (List.length cells))
  else begin
    let values = Array.make width 0. in
    let failed = ref None in
    List.iteri
      (fun i cell ->
        let cell = String.trim cell in
        match float_of_string_opt cell with
        | Some v -> values.(i) <- v
        | None ->
            if !failed = None then
              failed := Some (Printf.sprintf "line %d: bad number %S" lineno cell))
      cells;
    match !failed with Some msg -> Error msg | None -> Ok values
  end

(* Incremental driver shared by {!stream} and {!read}: one line in memory
   at a time, blank lines skipped but counted (error messages use real
   file positions), trailing '\r' stripped before any parsing. *)
let stream ~path ~header ~row =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () ->
          let lineno = ref 0 in
          let next_line () =
            (* Next non-blank line, or None at end of file. *)
            let rec go () =
              match input_line channel with
              | exception End_of_file -> None
              | line ->
                  incr lineno;
                  let line = strip_cr line in
                  if String.trim line = "" then go () else Some line
            in
            go ()
          in
          match next_line () with
          | None -> Error "empty file"
          | Some header_line -> (
              let names =
                Array.of_list (List.map String.trim (String.split_on_char ',' header_line))
              in
              match check_duplicate_header names with
              | Some msg -> Error msg
              | None -> (
                  match header names with
                  | Error _ as e -> e
                  | Ok () ->
                      let width = Array.length names in
                      let rec drain saw_row =
                        match next_line () with
                        | None ->
                            if saw_row then Ok ()
                            else Error "no data rows: the file contains only a header"
                        | Some line -> (
                            match parse_row ~width !lineno line with
                            | Error _ as e -> e
                            | Ok values -> (
                                match row ~lineno:!lineno values with
                                | Error _ as e -> e
                                | Ok () -> drain true))
                      in
                      drain false)))

let read ~path =
  let header = ref [||] in
  let rows = ref [] in
  match
    stream ~path
      ~header:(fun names ->
        header := names;
        Ok ())
      ~row:(fun ~lineno:_ values ->
        rows := values :: !rows;
        Ok ())
  with
  | Error _ as e -> e
  | Ok () -> Ok { header = !header; rows = Array.of_list (List.rev !rows) }

let column_index table name =
  let rec search i =
    if i >= Array.length table.header then raise Not_found
    else if table.header.(i) = name then begin
      (* Tables read through {!read} can no longer carry duplicates, but the
         type is public: refuse to guess between two same-named columns. *)
      let rec dup j =
        if j >= Array.length table.header then ()
        else if table.header.(j) = name then
          invalid_arg
            (Printf.sprintf "Csv.column_index: duplicate column name %S (columns %d and %d)"
               name i j)
        else dup (j + 1)
      in
      dup (i + 1);
      i
    end
    else search (i + 1)
  in
  search 0

let column table name =
  let index = column_index table name in
  Array.map (fun row -> row.(index)) table.rows

let columns_except table excluded =
  let keep = ref [] in
  Array.iteri
    (fun i name -> if not (List.mem name excluded) then keep := i :: !keep)
    table.header;
  let indices = Array.of_list (List.rev !keep) in
  let names = Array.map (fun i -> table.header.(i)) indices in
  let rows = Array.map (fun row -> Array.map (fun i -> row.(i)) indices) table.rows in
  (names, rows)

(** Minimal CSV reading/writing for numeric datasets with a header row.

    The format is deliberately simple — comma-separated, no quoting, one
    header line of column names, numeric cells — which is all the sampled
    circuit data needs. *)

type table = {
  header : string array;
  rows : float array array;  (** every row has [Array.length header] cells *)
}

val write : path:string -> table -> unit
(** Raises [Invalid_argument] when a row width disagrees with the header;
    [Sys_error] on IO failure. *)

val read : path:string -> (table, string) result
(** Parse a file written by {!write} (or compatible).  Blank lines are
    skipped; error messages still use the line's position in the file,
    blank lines included.  Lines may end in ["\r\n"]; the carriage return
    is stripped before parsing.  Duplicate header names are rejected with
    an error naming the column and both positions.  A file whose only
    non-blank line is the header is rejected ("no data rows").  Returns
    [Error] with a line-numbered message on malformed input. *)

val stream :
  path:string ->
  header:(string array -> (unit, string) result) ->
  row:(lineno:int -> float array -> (unit, string) result) ->
  (unit, string) result
(** Incremental variant of {!read}: the file is parsed one line at a time
    (never buffered whole), [header] is called once with the column names,
    then [row] once per data row with its 1-based file line number.  Either
    callback may return [Error] to abort the scan.  Same validation rules
    as {!read} — {!read} is implemented on top of this. *)

val column : table -> string -> float array
(** Extract a column by name.  Raises [Not_found]. *)

val columns_except : table -> string list -> string array * float array array
(** [(names, rows)] of all columns whose name is not listed — used to split
    a table into design variables vs the target column. *)

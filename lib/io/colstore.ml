(* Chunked on-disk column store ("CAFSTOR1").

   Layout:
     offset 0   magic "CAFSTOR1" (8 bytes)
     offset 8   n_rows      int64 LE (patched on Writer.close)
     offset 16  dims        int64 LE
     offset 24  chunk_rows  int64 LE
     offset 32  data_offset int64 LE (multiple of 4096, so mmap offsets
                                      are page-aligned)
     offset 40  per variable: [name length int64 LE][name bytes]
     ...        zero padding up to data_offset
     data       chunks in row order; chunk [c] holds rows
                [c*chunk_rows, min n ((c+1)*chunk_rows)) and stores, for
                each variable in order, that variable's values as
                contiguous little-endian float64.  Every chunk except the
                last has exactly [chunk_rows] rows, so chunk [c] starts at
                [data_offset + c * chunk_rows * dims * 8]; the last chunk
                is written compactly. *)

let magic = "CAFSTOR1"
let header_fixed = 40
let page = 4096

let default_chunk_rows = 65536

let round_up v align = (v + align - 1) / align * align

let fail fmt = Printf.ksprintf (fun msg -> invalid_arg ("Colstore: " ^ msg)) fmt

module Writer = struct
  type t = {
    path : string;
    channel : out_channel;
    dims : int;
    chunk_rows : int;
    buffer : float array array;  (* dims x chunk_rows, current partial chunk *)
    scratch : Bytes.t;  (* chunk_rows * 8, encode one variable block *)
    mutable filled : int;  (* rows buffered, < chunk_rows *)
    mutable written : int;  (* rows already flushed to disk *)
    mutable closed : bool;
  }

  let write_int64 channel v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    output_bytes channel b

  let create ~path ~var_names ?(chunk_rows = default_chunk_rows) () =
    let dims = Array.length var_names in
    if dims = 0 then fail "zero variables";
    if chunk_rows < 1 then fail "chunk_rows %d < 1" chunk_rows;
    Array.iter
      (fun name -> if String.length name = 0 then fail "empty variable name")
      var_names;
    let header_len =
      Array.fold_left (fun acc name -> acc + 8 + String.length name) header_fixed var_names
    in
    let data_offset = round_up header_len page in
    let channel = open_out_bin path in
    output_string channel magic;
    write_int64 channel 0;  (* n_rows, patched on close *)
    write_int64 channel dims;
    write_int64 channel chunk_rows;
    write_int64 channel data_offset;
    Array.iter
      (fun name ->
        write_int64 channel (String.length name);
        output_string channel name)
      var_names;
    output_bytes channel (Bytes.make (data_offset - header_len) '\000');
    {
      path;
      channel;
      dims;
      chunk_rows;
      buffer = Array.init dims (fun _ -> Array.make chunk_rows 0.);
      scratch = Bytes.create (chunk_rows * 8);
      filled = 0;
      written = 0;
      closed = false;
    }

  let flush_chunk w =
    if w.filled > 0 then begin
      for d = 0 to w.dims - 1 do
        let column = w.buffer.(d) in
        for i = 0 to w.filled - 1 do
          Bytes.set_int64_le w.scratch (i * 8) (Int64.bits_of_float column.(i))
        done;
        output_bytes w.channel (Bytes.sub w.scratch 0 (w.filled * 8))
      done;
      w.written <- w.written + w.filled;
      w.filled <- 0
    end

  let append_row w row =
    if w.closed then fail "writer for %s is closed" w.path;
    if Array.length row <> w.dims then
      fail "row has %d cells, store %s has %d variables" (Array.length row) w.path w.dims;
    for d = 0 to w.dims - 1 do
      w.buffer.(d).(w.filled) <- row.(d)
    done;
    w.filled <- w.filled + 1;
    if w.filled = w.chunk_rows then flush_chunk w

  let close w =
    if not w.closed then begin
      w.closed <- true;
      flush_chunk w;
      (* Patch the row count now that it is known. *)
      seek_out w.channel 8;
      write_int64 w.channel w.written;
      close_out w.channel
    end
end

type t = {
  path : string;
  var_names : string array;
  n : int;
  dims : int;
  chunk_rows : int;
  data_offset : int;
  mapped : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t option;
  (* Buffered reads go through a per-(pid, domain) channel: domains must
     not share an [in_channel] (its buffer is not thread-safe), and the
     processes backend forks workers, which would otherwise share the
     parent's file offset through the inherited descriptor. *)
  channel_key : (int * in_channel) option ref Domain.DLS.key;
}

let read_int64 channel =
  let b = Bytes.create 8 in
  really_input channel b 0 8;
  Int64.to_int (Bytes.get_int64_le b 0)

let chunk_count t = (t.n + t.chunk_rows - 1) / t.chunk_rows
let chunk_len t c = min t.chunk_rows (t.n - (c * t.chunk_rows))
let chunk_offset t c = t.data_offset + (c * t.chunk_rows * t.dims * 8)

let openfile ?(mmap = false) path =
  let channel = open_in_bin path in
  let header =
    Fun.protect
      ~finally:(fun () -> if mmap then close_in channel)
      (fun () ->
        let m = really_input_string channel (String.length magic) in
        if m <> magic then fail "%s: bad magic (not a CAFSTOR1 file)" path;
        let n = read_int64 channel in
        let dims = read_int64 channel in
        let chunk_rows = read_int64 channel in
        let data_offset = read_int64 channel in
        if dims < 1 || chunk_rows < 1 || n < 0 || data_offset < header_fixed then
          fail "%s: corrupt header" path;
        let var_names =
          Array.init dims (fun _ ->
              let len = read_int64 channel in
              if len < 1 || len > data_offset then fail "%s: corrupt header" path;
              really_input_string channel len)
        in
        (n, dims, chunk_rows, data_offset, var_names))
  in
  let n, dims, chunk_rows, data_offset, var_names = header in
  let mapped =
    if not mmap then None
    else begin
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let total_floats =
        if n = 0 then 0
        else begin
          let chunks = (n + chunk_rows - 1) / chunk_rows in
          (((chunks - 1) * chunk_rows) + (n - ((chunks - 1) * chunk_rows))) * dims
        end
      in
      let map =
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.map_file fd ~pos:(Int64.of_int data_offset) Bigarray.float64
              Bigarray.c_layout false [| total_floats |])
      in
      Some (Bigarray.array1_of_genarray map)
    end
  in
  let t =
    {
      path;
      var_names;
      n;
      dims;
      chunk_rows;
      data_offset;
      mapped;
      channel_key = Domain.DLS.new_key (fun () -> ref None);
    }
  in
  if not mmap then begin
    (* Seed the opening thread's slot with the channel used for the header. *)
    let slot = Domain.DLS.get t.channel_key in
    slot := Some (Unix.getpid (), channel)
  end;
  t

let var_names t = t.var_names
let n_rows t = t.n
let chunk_rows t = t.chunk_rows

let channel t =
  let slot = Domain.DLS.get t.channel_key in
  let pid = Unix.getpid () in
  match !slot with
  | Some (owner, chan) when owner = pid -> chan
  | stale ->
      (match stale with
      | Some (_, chan) -> (try close_in chan with Sys_error _ -> ())
      | None -> ());
      let chan = open_in_bin t.path in
      slot := Some (pid, chan);
      chan

(* Absolute float index of (chunk, variable, row-in-chunk) in the mapped
   data region; mirrors the on-disk layout arithmetic. *)
let mapped_index t c d r = (c * t.chunk_rows * t.dims) + (d * chunk_len t c) + r

let iter_chunks t ~f =
  let chunks = chunk_count t in
  if chunks > 0 then begin
    let columns = Array.init t.dims (fun _ -> Array.make t.chunk_rows 0.) in
    match t.mapped with
    | Some map ->
        for c = 0 to chunks - 1 do
          let len = chunk_len t c in
          for d = 0 to t.dims - 1 do
            let base = mapped_index t c d 0 in
            let column = columns.(d) in
            for i = 0 to len - 1 do
              column.(i) <- Bigarray.Array1.unsafe_get map (base + i)
            done
          done;
          f ~row0:(c * t.chunk_rows) ~len columns
        done
    | None ->
        let chan = channel t in
        let scratch = Bytes.create (t.chunk_rows * 8) in
        for c = 0 to chunks - 1 do
          let len = chunk_len t c in
          seek_in chan (chunk_offset t c);
          for d = 0 to t.dims - 1 do
            really_input chan scratch 0 (len * 8);
            let column = columns.(d) in
            for i = 0 to len - 1 do
              column.(i) <- Int64.float_of_bits (Bytes.get_int64_le scratch (i * 8))
            done
          done;
          f ~row0:(c * t.chunk_rows) ~len columns
        done
  end

let gather t ~indices =
  let k = Array.length indices in
  let out = Array.init t.dims (fun _ -> Array.make k 0.) in
  (match t.mapped with
  | Some map ->
      Array.iteri
        (fun j i ->
          if i < 0 || i >= t.n then fail "%s: row %d out of bounds" t.path i;
          let c = i / t.chunk_rows and r = i mod t.chunk_rows in
          for d = 0 to t.dims - 1 do
            out.(d).(j) <- Bigarray.Array1.get map (mapped_index t c d r)
          done)
        indices
  | None ->
      let chan = channel t in
      let cell = Bytes.create 8 in
      Array.iteri
        (fun j i ->
          if i < 0 || i >= t.n then fail "%s: row %d out of bounds" t.path i;
          let c = i / t.chunk_rows and r = i mod t.chunk_rows in
          let len = chunk_len t c in
          for d = 0 to t.dims - 1 do
            seek_in chan (chunk_offset t c + (((d * len) + r) * 8));
            really_input chan cell 0 8;
            out.(d).(j) <- Int64.float_of_bits (Bytes.get_int64_le cell 0)
          done)
        indices);
  out

let column t d =
  if d < 0 || d >= t.dims then fail "%s: variable index %d out of bounds" t.path d;
  let out = Array.make t.n 0. in
  iter_chunks t ~f:(fun ~row0 ~len columns ->
      Array.blit columns.(d) 0 out row0 len);
  out

let close t =
  (match t.mapped with Some _ -> () | None -> ());
  let slot = Domain.DLS.get t.channel_key in
  match !slot with
  | Some (owner, chan) when owner = Unix.getpid () ->
      (try close_in chan with Sys_error _ -> ());
      slot := None
  | _ -> ()
